// Static HMM initialization (the STILO technique extended with context and
// clustering): hidden states come from the (possibly clustered) aggregated
// call-transition matrix, A from inter-cluster transition mass, B from
// member observation weights, pi from the program-entry distribution.
//
// With identity clustering and ObservationEncoding::kContextFree this is
// exactly STILO; with real clustering and kContextSensitive it is CMarkov.
#pragma once

#include <string>
#include <vector>

#include "src/hmm/alphabet.hpp"
#include "src/hmm/hmm.hpp"
#include "src/reduction/reconstruct.hpp"

namespace cmarkov::hmm {

struct StaticInitOptions {
  /// Smoothing mixed into every row after construction (keeps unseen
  /// transitions/emissions strictly positive for Baum-Welch).
  double smoothing = 1e-4;
};

struct StaticInitResult {
  Hmm model;
  /// For diagnostics: the member call symbols behind each hidden state.
  std::vector<std::vector<analysis::CallSymbol>> state_members;
  /// Human-readable state label ("read@f" or "cluster{...}").
  std::vector<std::string> state_labels;
};

/// Builds the statically initialized HMM.
///
/// `alphabet` is extended with every observation symbol the static model
/// emits; callers should pre-intern the symbols seen in training traces so
/// the emission matrix covers the union (dynamically-observed symbols the
/// static analysis missed start at the smoothing floor and are learned by
/// Baum-Welch).
StaticInitResult statically_initialized_hmm(
    const reduction::ReducedModel& reduced, ObservationEncoding encoding,
    Alphabet& alphabet, const StaticInitOptions& options = {});

}  // namespace cmarkov::hmm
