// Per-run stage tracing: a RunProfile accumulates a tree of named
// TraceSpans (analyze → reduce → init → train-iteration → score) that
// exporters render as the machine-readable JSON profile behind
// `cmarkov train --profile-json`.
//
// Spans with the same name under the same parent merge: seconds accumulate
// and the count ticks, so a 30-iteration training run yields ONE
// "train-iteration" span with count=30 rather than 30 siblings. A
// RunProfile is owned and driven by one orchestrating thread (worker
// threads report through MetricsRegistry instead); it is not thread-safe.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/util/stopwatch.hpp"

namespace cmarkov::obs {

struct TraceSpan {
  std::string name;
  double seconds = 0.0;
  std::uint64_t count = 0;
  std::vector<TraceSpan> children;

  /// Child span by name, or nullptr when absent.
  const TraceSpan* child(std::string_view child_name) const;
};

class RunProfile {
 public:
  explicit RunProfile(std::string root_name = "run");
  RunProfile(const RunProfile&) = delete;
  RunProfile& operator=(const RunProfile&) = delete;

  /// Opens a span nested under the currently open one (merging with an
  /// existing same-named sibling) and makes it current.
  void begin(std::string_view name);
  /// Adds `seconds` to the current span and returns to its parent. Throws
  /// std::logic_error when only the root is open.
  void end(double seconds);
  /// begin() + end() in one call — a leaf stage timed externally.
  void record(std::string_view name, double seconds);

  /// Closes the root span with the wall time since construction (or with
  /// an explicit total). Open child spans are an error.
  void finish();
  void finish(double total_seconds);

  const TraceSpan& root() const { return root_; }
  double elapsed_seconds() const { return watch_.seconds(); }
  /// Number of currently open spans, root included (1 = only root open).
  std::size_t open_depth() const { return stack_.size(); }

 private:
  // Single-owner contract guard: debug builds assert that every mutation
  // happens on the constructing thread (release builds compile this away).
  void assert_owner() const {
    assert(std::this_thread::get_id() == owner_ &&
           "RunProfile is single-owner: mutate it only from the thread "
           "that constructed it (workers report via MetricsRegistry)");
  }

  TraceSpan root_;
  // Pointers into the open root→current path. Safe against reallocation:
  // begin() only appends to the CURRENT span's children, and no pointer to
  // an element of that vector is on the stack (only the path above it).
  std::vector<TraceSpan*> stack_;
  Stopwatch watch_;
  std::thread::id owner_ = std::this_thread::get_id();
};

/// RAII span: opens `name` on construction, closes it with the scope's
/// wall time on destruction. A null profile disables it (instrumented code
/// paths stay unconditional).
class ScopedTimer {
 public:
  ScopedTimer(RunProfile* profile, std::string_view name) : profile_(profile) {
    if (profile_ != nullptr) profile_->begin(name);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (profile_ != nullptr) profile_->end(watch_.seconds());
  }

 private:
  RunProfile* profile_;
  Stopwatch watch_;
};

}  // namespace cmarkov::obs
