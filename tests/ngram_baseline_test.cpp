// Tests for the STIDE-style n-gram baseline.
#include <gtest/gtest.h>

#include "src/eval/metrics.hpp"
#include "src/eval/ngram_baseline.hpp"

namespace cmarkov::eval {
namespace {

TEST(NgramTest, RejectsZeroN) {
  EXPECT_THROW(NgramDetector(0), std::invalid_argument);
}

TEST(NgramTest, AcceptsTrainedGrams) {
  NgramDetector detector(3);
  detector.train({{1, 2, 3, 4, 5}});
  EXPECT_TRUE(detector.accepts({1, 2, 3}));
  EXPECT_TRUE(detector.accepts({2, 3, 4}));
  EXPECT_TRUE(detector.accepts({3, 4, 5}));
  EXPECT_FALSE(detector.accepts({1, 2, 4}));
  EXPECT_EQ(detector.distinct_grams(), 3u);
}

TEST(NgramTest, ScoreCountsUnseenGrams) {
  NgramDetector detector(3);
  detector.train({{1, 2, 3, 4}});
  // Segment 1 2 3 4 9: grams 123 (ok) 234 (ok) 349 (unseen).
  EXPECT_DOUBLE_EQ(detector.score({1, 2, 3, 4, 9}), -1.0);
  // Fully known segment.
  EXPECT_DOUBLE_EQ(detector.score({1, 2, 3, 4}), 0.0);
  // Fully unknown segment: 3 unseen grams.
  EXPECT_DOUBLE_EQ(detector.score({7, 8, 9, 7, 8}), -3.0);
}

TEST(NgramTest, ShortSegmentsMatchWholeGrams) {
  NgramDetector detector(6);
  detector.train({{1, 2, 3}});
  EXPECT_TRUE(detector.accepts({1, 2, 3}));
  EXPECT_FALSE(detector.accepts({1, 2}));
  EXPECT_DOUBLE_EQ(detector.score({}), 0.0);
}

TEST(NgramTest, MoreTrainingNeverDecreasesScores) {
  NgramDetector small(4);
  NgramDetector large(4);
  const std::vector<hmm::ObservationSeq> base = {{1, 2, 3, 4, 5, 6}};
  const std::vector<hmm::ObservationSeq> extra = {{6, 5, 4, 3, 2, 1}};
  small.train(base);
  large.train(base);
  large.train(extra);
  const std::vector<hmm::ObservationSeq> probes = {
      {1, 2, 3, 4}, {6, 5, 4, 3}, {9, 9, 9, 9}, {3, 4, 5, 6, 5, 4}};
  for (const auto& probe : probes) {
    EXPECT_GE(large.score(probe), small.score(probe));
  }
}

TEST(NgramTest, WorksWithScoreSetMetrics) {
  // The score interface plugs into the Eq. 3/4 machinery.
  NgramDetector detector(3);
  detector.train({{1, 2, 3, 4, 5, 1, 2, 3}});
  ScoreSet scores;
  scores.normal = {detector.score({1, 2, 3, 4}),
                   detector.score({2, 3, 4, 5})};
  scores.abnormal = {detector.score({9, 8, 7, 6}),
                     detector.score({5, 5, 5, 5})};
  EXPECT_DOUBLE_EQ(fn_at_fp(scores, 0.0), 0.0);  // separable
}

}  // namespace
}  // namespace cmarkov::eval
