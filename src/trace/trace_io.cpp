#include "src/trace/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "src/util/strings.hpp"

namespace cmarkov::trace {

TraceFormatError::TraceFormatError(const std::string& message,
                                   std::size_t line)
    : std::runtime_error(message + " at line " + std::to_string(line)),
      line_(line) {}

void write_trace(std::ostream& out, const Trace& trace) {
  out << "# program: " << trace.program << "\n";
  for (const auto& event : trace.events) {
    out << (event.kind == ir::CallKind::kSyscall ? "sys" : "lib") << " "
        << event.name << " 0x" << std::hex << event.site_address << std::dec;
    if (!event.caller.empty()) {
      out << " [" << event.caller << "]";
    }
    out << "\n";
  }
}

std::string trace_to_string(const Trace& trace) {
  std::ostringstream out;
  write_trace(out, trace);
  return out.str();
}

void write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_trace_file: cannot open '" + path + "'");
  }
  write_trace(out, trace);
}

Trace parse_trace(std::istream& in) {
  Trace trace;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == '#') {
      constexpr std::string_view kProgramTag = "# program:";
      if (starts_with(trimmed, kProgramTag)) {
        trace.program = std::string(trim(trimmed.substr(kProgramTag.size())));
      }
      continue;  // other comments ignored
    }

    std::istringstream fields{std::string(trimmed)};
    std::string kind_tag;
    std::string name;
    std::string address_text;
    if (!(fields >> kind_tag >> name >> address_text)) {
      throw TraceFormatError("malformed event line", line_number);
    }
    CallEvent event;
    if (kind_tag == "sys") {
      event.kind = ir::CallKind::kSyscall;
    } else if (kind_tag == "lib") {
      event.kind = ir::CallKind::kLibcall;
    } else {
      throw TraceFormatError("unknown stream tag '" + kind_tag + "'",
                             line_number);
    }
    event.name = std::move(name);
    if (!starts_with(address_text, "0x")) {
      throw TraceFormatError("address must start with 0x", line_number);
    }
    try {
      std::size_t consumed = 0;
      event.site_address = std::stoull(address_text.substr(2), &consumed, 16);
      if (consumed != address_text.size() - 2) {
        throw TraceFormatError("trailing junk in address", line_number);
      }
    } catch (const std::invalid_argument&) {
      throw TraceFormatError("invalid hexadecimal address", line_number);
    } catch (const std::out_of_range&) {
      throw TraceFormatError("address out of range", line_number);
    }

    std::string rest;
    std::getline(fields, rest);
    const std::string_view caller_part = trim(rest);
    if (!caller_part.empty()) {
      if (caller_part.front() != '[' || caller_part.back() != ']') {
        throw TraceFormatError("caller must be bracketed", line_number);
      }
      event.caller =
          std::string(caller_part.substr(1, caller_part.size() - 2));
    }
    trace.events.push_back(std::move(event));
  }
  return trace;
}

Trace parse_trace(const std::string& text) {
  std::istringstream in(text);
  return parse_trace(in);
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_trace_file: cannot open '" + path + "'");
  }
  return parse_trace(in);
}

}  // namespace cmarkov::trace
