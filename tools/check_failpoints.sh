#!/usr/bin/env sh
# Lints the failpoint sites (src/util/failpoint.hpp) planted in the source
# tree:
#   - every CMARKOV_FAILPOINT("name") literal appears at EXACTLY one site
#     (two sites sharing a name would double-count the trigger ordinal and
#     make every:N / after:N policies fire at surprising places);
#   - sites live only under src/serve/ — the chaos harness owns the serving
#     path's risk surfaces; a failpoint sprouting in core scoring code is a
#     design smell that needs a review, not a silent merge;
#   - names are dot-separated lowercase tokens ("snapshot.write_fail"), so
#     the exported cmarkov_failpoint_<name>_hits_total counters stay valid
#     metric names after the dot-to-underscore mapping.
#
# src/util/failpoint.hpp itself is exempt: it defines the macro and quotes
# an example in its documentation.
#
# Wired into CTest as `check_failpoints` (label: robust).
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

matches="$(grep -rnoE 'CMARKOV_FAILPOINT\("[^"]*"\)' \
  "$repo_root/src" --include='*.cpp' --include='*.hpp' \
  | grep -v '/src/util/failpoint\.hpp:' || true)"

if [ -z "$matches" ]; then
  echo "error: no failpoint sites found; the grep pattern has rotted" >&2
  exit 1
fi

printf '%s\n' "$matches" | awk -v root="$repo_root/" '
{
  if (!match($0, /CMARKOV_FAILPOINT\("[^"]*"\)/)) next;
  call = substr($0, RSTART, RLENGTH);
  loc = substr($0, 1, RSTART - 1);
  sub(/:$/, "", loc);
  sub(root, "", loc);
  q = index(call, "\"");
  name = substr(call, q + 1, length(call) - q - 2);
  total += 1;

  if (name !~ /^[a-z0-9_]+(\.[a-z0-9_]+)+$/) {
    print loc ": failpoint \"" name "\" must be dot-separated lowercase " \
          "tokens (it becomes a cmarkov_failpoint_*_hits_total metric)";
    bad += 1;
  }
  if (loc !~ /^src\/serve\//) {
    print loc ": failpoint \"" name "\" planted outside src/serve/ " \
          "(the chaos harness only owns the serving path)";
    bad += 1;
  }
  if (name in sites) {
    print loc ": failpoint \"" name "\" already planted at " sites[name] \
          " (each name must have exactly one site)";
    bad += 1;
  } else {
    sites[name] = loc;
  }
}
END {
  if (bad > 0) exit 1;
  print "ok: " total " failpoint site(s), all unique, all under src/serve/";
}
'
