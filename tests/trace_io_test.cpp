// Tests for the strace-like trace serialization format.
#include <gtest/gtest.h>

#include "src/trace/trace_io.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::trace {
namespace {

Trace sample_trace() {
  Trace trace;
  trace.program = "sample";
  trace.events = {
      {ir::CallKind::kSyscall, "read", 0x40012c, "fill_window"},
      {ir::CallKind::kLibcall, "memcpy", 0x400188, "deflate_block"},
      {ir::CallKind::kSyscall, "write", 0x4001f0, ""},
  };
  return trace;
}

TEST(TraceIoTest, WritesExpectedFormat) {
  const std::string text = trace_to_string(sample_trace());
  EXPECT_NE(text.find("# program: sample"), std::string::npos);
  EXPECT_NE(text.find("sys read 0x40012c [fill_window]"), std::string::npos);
  EXPECT_NE(text.find("lib memcpy 0x400188 [deflate_block]"),
            std::string::npos);
  // Unsymbolized events carry no bracket part.
  EXPECT_NE(text.find("sys write 0x4001f0\n"), std::string::npos);
}

TEST(TraceIoTest, RoundTripsExactly) {
  const Trace original = sample_trace();
  const Trace parsed = parse_trace(trace_to_string(original));
  EXPECT_EQ(parsed.program, original.program);
  ASSERT_EQ(parsed.events.size(), original.events.size());
  for (std::size_t i = 0; i < parsed.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i].kind, original.events[i].kind);
    EXPECT_EQ(parsed.events[i].name, original.events[i].name);
    EXPECT_EQ(parsed.events[i].site_address, original.events[i].site_address);
    EXPECT_EQ(parsed.events[i].caller, original.events[i].caller);
  }
}

TEST(TraceIoTest, RoundTripsRealSuiteTraces) {
  const workload::ProgramSuite suite = workload::make_sed_suite();
  const auto collection = workload::collect_traces(suite, 3, 5);
  for (const auto& trace : collection.traces) {
    const Trace parsed = parse_trace(trace_to_string(trace));
    ASSERT_EQ(parsed.events.size(), trace.events.size());
    for (std::size_t i = 0; i < parsed.events.size(); ++i) {
      EXPECT_EQ(parsed.events[i].name, trace.events[i].name);
      EXPECT_EQ(parsed.events[i].caller, trace.events[i].caller);
    }
  }
}

TEST(TraceIoTest, IgnoresBlankLinesAndComments) {
  const Trace parsed = parse_trace(
      "# program: p\n\n# a comment\nsys open 0x10 [main]\n\n");
  EXPECT_EQ(parsed.program, "p");
  ASSERT_EQ(parsed.events.size(), 1u);
  EXPECT_EQ(parsed.events[0].name, "open");
}

TEST(TraceIoTest, RejectsMalformedLinesWithLineNumbers) {
  auto expect_error_at = [](const std::string& text, std::size_t line) {
    try {
      parse_trace(text);
      FAIL() << "expected TraceFormatError for: " << text;
    } catch (const TraceFormatError& e) {
      EXPECT_EQ(e.line(), line) << text;
    }
  };
  expect_error_at("sys read\n", 1);                       // missing address
  expect_error_at("net read 0x10\n", 1);                  // bad stream tag
  expect_error_at("sys read 40 [f]\n", 1);                // missing 0x
  expect_error_at("sys read 0xZZ [f]\n", 1);              // bad hex
  expect_error_at("sys ok 0x10 [f]\nsys bad 0x10 f\n", 2);  // bad caller
}

TEST(TraceIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/trace_io_test.trace";
  write_trace_file(path, sample_trace());
  const Trace loaded = read_trace_file(path);
  EXPECT_EQ(loaded.events.size(), 3u);
  EXPECT_THROW(read_trace_file("/nonexistent/file.trace"),
               std::runtime_error);
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  Trace empty;
  empty.program = "nothing";
  const Trace parsed = parse_trace(trace_to_string(empty));
  EXPECT_EQ(parsed.program, "nothing");
  EXPECT_TRUE(parsed.events.empty());
}

}  // namespace
}  // namespace cmarkov::trace
