#include "src/serve/session_manager.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "src/util/logging.hpp"

namespace cmarkov::serve {

namespace {
/// Items a worker moves out of its queue per lock acquisition.
constexpr std::size_t kBatchSize = 64;
}  // namespace

const char* backpressure_policy_name(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kDropOldest:
      return "drop-oldest";
    case BackpressurePolicy::kReject:
      return "reject";
  }
  return "?";
}

std::optional<BackpressurePolicy> parse_backpressure_policy(
    std::string_view name) {
  if (name == "block") return BackpressurePolicy::kBlock;
  if (name == "drop-oldest") return BackpressurePolicy::kDropOldest;
  if (name == "reject") return BackpressurePolicy::kReject;
  return std::nullopt;
}

struct SessionManager::Session {
  Session(std::string id, std::string model_name,
          std::shared_ptr<const core::Detector> detector_ptr,
          std::size_t shard, core::MonitorOptions options)
      : id(std::move(id)),
        model_name(std::move(model_name)),
        detector(std::move(detector_ptr)),
        shard(shard),
        monitor(*detector, nullptr, options) {}

  const std::string id;
  const std::string model_name;
  /// Keeps the detector alive even if the registry hot-swaps the name.
  const std::shared_ptr<const core::Detector> detector;
  const std::size_t shard;

  std::atomic<std::uint64_t> enqueued{0};
  std::atomic<std::uint64_t> processed{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> rejected{0};

  /// Guards `monitor`: held by the owning worker while scoring and by stats
  /// readers while snapshotting (uncontended in steady state — one worker
  /// owns the session's shard).
  mutable std::mutex monitor_mu;
  core::OnlineMonitor monitor;
};

struct SessionManager::Item {
  std::shared_ptr<Session> session;
  trace::CallEvent event;
  double enqueue_micros = 0.0;
  /// Protocol tid= value; stamped into any decision record produced.
  std::string trace_id;
  /// Admitted by the tracer's sampling guard at submit time.
  bool traced = false;
  /// Correlates this event's queue/score/reply spans.
  std::uint64_t seq = 0;
};

struct SessionManager::Worker {
  mutable std::mutex mu;
  std::condition_variable cv_nonempty;  // producer -> worker
  std::condition_variable cv_space;     // worker -> blocked producers
  std::condition_variable cv_idle;      // worker -> drain()
  std::deque<Item> queue;
  std::size_t in_flight = 0;  // items popped but not yet processed
  bool stop = false;
  std::thread thread;
};

SessionManager::SessionManager(const ModelRegistry& registry,
                               ServiceConfig config)
    : registry_(registry), config_(config) {
  if (config_.num_workers == 0) {
    throw std::invalid_argument("SessionManager: num_workers must be > 0");
  }
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument("SessionManager: queue_capacity must be > 0");
  }
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  enqueued_total_ = &metrics_->counter("cmarkov_serve_events_enqueued_total");
  processed_total_ =
      &metrics_->counter("cmarkov_serve_events_processed_total");
  dropped_total_ = &metrics_->counter("cmarkov_serve_events_dropped_total");
  rejected_total_ = &metrics_->counter("cmarkov_serve_events_rejected_total");
  windows_total_ = &metrics_->counter("cmarkov_serve_windows_total");
  alarms_total_ = &metrics_->counter("cmarkov_serve_alarms_total");
  latency_micros_ = &metrics_->histogram("cmarkov_serve_latency_micros",
                                         latency_bucket_bounds());
  uptime_gauge_ = &metrics_->gauge("cmarkov_serve_uptime_seconds");
  sessions_gauge_ = &metrics_->gauge("cmarkov_serve_sessions_open");
  queue_depth_gauges_.reserve(config_.num_workers);
  for (std::size_t i = 0; i < config_.num_workers; ++i) {
    queue_depth_gauges_.push_back(
        &metrics_->gauge("cmarkov_serve_queue_depth_w" + std::to_string(i)));
  }
  tracer_ = std::make_unique<obs::Tracer>(config_.tracing);
  decision_log_ =
      std::make_unique<obs::DecisionLog>(config_.decision_log_capacity);
  spans_total_ = &metrics_->counter("cmarkov_trace_spans_total");
  spans_dropped_total_ = &metrics_->counter("cmarkov_trace_spans_dropped_total");
  decisions_total_ = &metrics_->counter("cmarkov_trace_decisions_total");
  decisions_dropped_total_ =
      &metrics_->counter("cmarkov_trace_decisions_dropped_total");
  workers_.reserve(config_.num_workers);
  for (std::size_t i = 0; i < config_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  if (!config_.manual_pump) {
    for (auto& worker : workers_) {
      worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
    }
  }
}

SessionManager::~SessionManager() {
  for (auto& worker : workers_) {
    {
      const std::lock_guard lock(worker->mu);
      worker->stop = true;
    }
    worker->cv_nonempty.notify_all();
    worker->cv_space.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void SessionManager::open_session(const std::string& id,
                                  const std::string& model,
                                  std::optional<core::MonitorOptions> options) {
  auto detector = registry_.require(model);
  const std::size_t shard =
      std::hash<std::string>{}(id) % workers_.size();
  auto session = std::make_shared<Session>(
      id, model, std::move(detector), shard,
      options.value_or(config_.monitor));
  const std::unique_lock lock(sessions_mu_);
  if (!sessions_.emplace(id, std::move(session)).second) {
    throw std::invalid_argument("SessionManager: session '" + id +
                                "' is already open");
  }
}

SubmitResult SessionManager::submit(const std::string& id,
                                    trace::CallEvent event) {
  return submit(id, std::move(event), std::string());
}

SubmitResult SessionManager::submit(const std::string& id,
                                    trace::CallEvent event,
                                    const std::string& trace_id,
                                    std::uint64_t* seq_out) {
  const std::shared_ptr<Session> session = find_session(id);
  if (!session) return SubmitResult::kUnknownSession;

  // One sampling decision per event, taken before the queue so the queue
  // span covers the full wait; explicit trace ids always trace.
  bool traced = false;
  std::uint64_t seq = 0;
  if (tracer_->enabled()) {
    traced = tracer_->sample(!trace_id.empty());
    if (traced) {
      seq = tracer_->next_seq();
      if (seq_out != nullptr) *seq_out = seq;
    }
  }

  Worker& worker = *workers_[session->shard];
  SubmitResult result = SubmitResult::kAccepted;
  {
    std::unique_lock lock(worker.mu);
    if (worker.queue.size() >= config_.queue_capacity) {
      switch (config_.policy) {
        case BackpressurePolicy::kBlock:
          if (config_.manual_pump) {
            // No worker thread will ever make room: pump inline instead.
            lock.unlock();
            pump_worker(worker);
            lock.lock();
          } else {
            worker.cv_space.wait(lock, [&] {
              return worker.queue.size() < config_.queue_capacity ||
                     worker.stop;
            });
            if (worker.stop) return SubmitResult::kRejected;
          }
          break;
        case BackpressurePolicy::kDropOldest: {
          Item& victim = worker.queue.front();
          victim.session->dropped.fetch_add(1, std::memory_order_relaxed);
          dropped_total_->add(1);
          worker.queue.pop_front();
          result = SubmitResult::kDroppedOldest;
          break;
        }
        case BackpressurePolicy::kReject:
          session->rejected.fetch_add(1, std::memory_order_relaxed);
          rejected_total_->add(1);
          return SubmitResult::kRejected;
      }
    }
    worker.queue.push_back(Item{session, std::move(event), clock_.micros(),
                                trace_id, traced, seq});
  }
  worker.cv_nonempty.notify_one();
  session->enqueued.fetch_add(1, std::memory_order_relaxed);
  enqueued_total_->add(1);
  return result;
}

bool SessionManager::has_session(const std::string& id) const {
  return find_session(id) != nullptr;
}

SessionStats SessionManager::session_stats(const std::string& id) const {
  const auto session = find_session(id);
  if (!session) {
    throw std::invalid_argument("SessionManager: no session '" + id + "'");
  }
  return snapshot(*session);
}

std::vector<SessionStats> SessionManager::all_session_stats() const {
  std::vector<std::shared_ptr<Session>> sessions;
  {
    const std::shared_lock lock(sessions_mu_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) sessions.push_back(session);
  }
  std::vector<SessionStats> out;
  out.reserve(sessions.size());
  for (const auto& session : sessions) out.push_back(snapshot(*session));
  return out;
}

SessionStats SessionManager::close_session(const std::string& id) {
  const auto session = find_session(id);
  if (!session) {
    throw std::invalid_argument("SessionManager: no session '" + id + "'");
  }
  drain();
  SessionStats stats = snapshot(*session);
  const std::unique_lock lock(sessions_mu_);
  sessions_.erase(id);
  return stats;
}

void SessionManager::drain() {
  for (auto& worker : workers_) {
    if (config_.manual_pump) {
      pump_worker(*worker);
      continue;
    }
    std::unique_lock lock(worker->mu);
    worker->cv_idle.wait(lock, [&] {
      return worker->queue.empty() && worker->in_flight == 0;
    });
  }
}

ServiceMetrics SessionManager::metrics() const {
  ServiceMetrics m;
  m.uptime_seconds = clock_.seconds();
  {
    const std::shared_lock lock(sessions_mu_);
    m.sessions_open = sessions_.size();
  }
  m.events_enqueued = enqueued_total_->value();
  m.events_processed = processed_total_->value();
  m.events_dropped = dropped_total_->value();
  m.events_rejected = rejected_total_->value();
  m.windows_scored = windows_total_->value();
  m.alarms = alarms_total_->value();
  if (m.uptime_seconds > 0.0) {
    m.events_per_second =
        static_cast<double>(m.events_processed) / m.uptime_seconds;
  }
  m.queue_depths.reserve(workers_.size());
  for (const auto& worker : workers_) {
    const std::lock_guard lock(worker->mu);
    m.queue_depths.push_back(worker->queue.size());
  }
  m.latency_samples = latency_micros_->count();
  m.p50_latency_micros = latency_micros_->quantile(0.50);
  m.p99_latency_micros = latency_micros_->quantile(0.99);
  return m;
}

void SessionManager::refresh_gauges() {
  uptime_gauge_->set(clock_.seconds());
  {
    const std::shared_lock lock(sessions_mu_);
    sessions_gauge_->set(static_cast<double>(sessions_.size()));
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const std::lock_guard lock(workers_[i]->mu);
    queue_depth_gauges_[i]->set(
        static_cast<double>(workers_[i]->queue.size()));
  }
}

const obs::MetricsRegistry& SessionManager::metrics_registry() {
  refresh_gauges();
  return *metrics_;
}

std::string SessionManager::next_session_id() {
  return "s" + std::to_string(
                   next_id_.fetch_add(1, std::memory_order_relaxed) + 1);
}

std::shared_ptr<SessionManager::Session> SessionManager::find_session(
    const std::string& id) const {
  const std::shared_lock lock(sessions_mu_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

void SessionManager::process_item(Item& item) {
  const double dequeue_micros = clock_.micros();
  core::MonitorUpdate update;
  obs::DecisionRecord decision;
  bool has_decision = false;
  {
    const std::lock_guard lock(item.session->monitor_mu);
    update = item.session->monitor.on_event(std::move(item.event));
    if (update.decision != nullptr) {
      // Stamp ids into the monitor's ring copy (served by TRACE) and take
      // a copy for the service-wide JSONL log while still under the lock.
      // Once the flight-recorder log is full the copy would only be
      // dropped, so skip it and count the drop instead.
      obs::DecisionRecord* record = item.session->monitor.last_decision();
      record->session = item.session->id;
      record->trace_id = item.trace_id;
      if (decision_log_->full()) {
        decision_log_->drop();
        decisions_dropped_total_->add(1);
      } else {
        decision = *record;
        has_decision = true;
      }
    }
  }
  if (has_decision) {
    if (decision_log_->append(std::move(decision))) {
      decisions_total_->add(1);
    } else {
      decisions_dropped_total_->add(1);
    }
  }
  item.session->processed.fetch_add(1, std::memory_order_relaxed);
  processed_total_->add(1);
  if (update.window_complete) {
    windows_total_->add(1);
  }
  if (update.alarm) {
    alarms_total_->add(1);
    log_debug() << "alarm session=" << item.session->id
                << " model=" << item.session->model_name
                << (update.unknown_symbol ? " cause=unknown-context"
                                          : " cause=low-likelihood");
  }
  const double done_micros = clock_.micros();
  latency_micros_->record(done_micros - item.enqueue_micros);
  if (item.traced) {
    if (tracer_->full()) {
      // Flight recorder exhausted: skip span construction, keep the drop
      // accounting exact (one queue + one score span per traced event).
      tracer_->drop(2);
      spans_dropped_total_->add(2);
      item.session.reset();
      return;
    }
    const auto make_span = [&](const char* name, double start, double end) {
      obs::SpanRecord span;
      span.name = name;
      span.session = item.session->id;
      span.trace_id = item.trace_id;
      span.seq = item.seq;
      span.start_micros = start;
      span.duration_micros = end - start;
      span.thread = item.session->shard;
      return span;
    };
    record_span(make_span("queue", item.enqueue_micros, dequeue_micros));
    record_span(make_span("score", dequeue_micros, done_micros));
  }
  item.session.reset();
}

void SessionManager::record_span(obs::SpanRecord span) {
  if (tracer_->record(std::move(span))) {
    spans_total_->add(1);
  } else {
    spans_dropped_total_->add(1);
  }
}

std::vector<obs::DecisionRecord> SessionManager::recent_decisions(
    const std::string& id, std::size_t n) const {
  const auto session = find_session(id);
  if (!session) {
    throw std::invalid_argument("SessionManager: no session '" + id + "'");
  }
  std::vector<obs::DecisionRecord> out;
  const std::lock_guard lock(session->monitor_mu);
  const auto& ring = session->monitor.recent_decisions();
  const std::size_t count = std::min(n, ring.size());
  out.reserve(count);
  for (std::size_t i = ring.size() - count; i < ring.size(); ++i) {
    out.push_back(ring[i]);
    out.back().session = session->id;
  }
  return out;
}

void SessionManager::pump_worker(Worker& worker) {
  for (;;) {
    Item item;
    {
      const std::lock_guard lock(worker.mu);
      if (worker.queue.empty()) return;
      item = std::move(worker.queue.front());
      worker.queue.pop_front();
    }
    process_item(item);
  }
}

void SessionManager::worker_loop(Worker& worker) {
  std::vector<Item> batch;
  batch.reserve(kBatchSize);
  for (;;) {
    {
      std::unique_lock lock(worker.mu);
      worker.cv_nonempty.wait(
          lock, [&] { return worker.stop || !worker.queue.empty(); });
      if (worker.queue.empty()) return;  // stop requested, queue drained
      while (!worker.queue.empty() && batch.size() < kBatchSize) {
        batch.push_back(std::move(worker.queue.front()));
        worker.queue.pop_front();
      }
      worker.in_flight = batch.size();
    }
    worker.cv_space.notify_all();
    for (Item& item : batch) process_item(item);
    batch.clear();
    {
      const std::lock_guard lock(worker.mu);
      worker.in_flight = 0;
      if (worker.queue.empty()) worker.cv_idle.notify_all();
    }
  }
}

SessionStats SessionManager::snapshot(const Session& session) const {
  SessionStats stats;
  stats.id = session.id;
  stats.model = session.model_name;
  stats.enqueued = session.enqueued.load(std::memory_order_relaxed);
  stats.processed = session.processed.load(std::memory_order_relaxed);
  stats.dropped = session.dropped.load(std::memory_order_relaxed);
  stats.rejected = session.rejected.load(std::memory_order_relaxed);
  {
    const std::lock_guard lock(session.monitor_mu);
    stats.monitor = session.monitor.stats();
  }
  return stats;
}

}  // namespace cmarkov::serve
