#include "src/attack/payloads.hpp"

namespace cmarkov::attack {

namespace {

std::vector<PlannedCall> sys_seq(std::initializer_list<const char*> names) {
  std::vector<PlannedCall> out;
  for (const char* name : names) {
    out.emplace_back(ir::CallKind::kSyscall, name);
  }
  return out;
}

ExploitPayload payload(std::string vulnerability, std::string name,
                       std::vector<PlannedCall> calls) {
  return ExploitPayload{std::move(vulnerability), std::move(name),
                        std::move(calls)};
}

constexpr const char* kBackdoor = "Backdoor (proftpd, OSVDB-69562)";
constexpr const char* kOverflowGzip = "Buffer Overflow (gzip)";
constexpr const char* kOverflowProftpd =
    "Buffer Overflow (proftpd, CVE-2010-4221)";

}  // namespace

std::vector<ExploitPayload> gzip_payloads() {
  return {
      payload(kOverflowGzip, "ROP", gzip_rop_q1()),
      payload(kOverflowGzip, "syscall_chain", syscall_chain_payload()),
  };
}

std::vector<ExploitPayload> proftpd_backdoor_payloads() {
  return {
      // Bind a perl shell on a listening port.
      payload(kBackdoor, "bind_perl",
              sys_seq({"socket", "bind", "listen", "accept", "dup2", "dup2",
                       "dup2", "fork", "execve"})),
      // Same over IPv6 (extra socket option dance).
      payload(kBackdoor, "bind_perl_ipv6",
              sys_seq({"socket", "setsockopt", "bind", "listen", "accept",
                       "dup2", "dup2", "dup2", "fork", "execve"})),
      // One-shot command execution.
      payload(kBackdoor, "generic cmd execution",
              sys_seq({"fork", "execve", "wait4", "write"})),
      // Two reverse TCP channels back to the attacker.
      payload(kBackdoor, "double reverse TCP",
              sys_seq({"socket", "connect", "socket", "connect", "dup2",
                       "dup2", "dup2", "execve"})),
      // Reverse perl shell.
      payload(kBackdoor, "reverse_perl",
              sys_seq({"socket", "connect", "dup2", "dup2", "dup2",
                       "execve"})),
      // Reverse perl shell over SSL (handshake traffic precedes the dup).
      payload(kBackdoor, "reverse_perl_ssl",
              sys_seq({"socket", "connect", "write", "read", "write", "read",
                       "dup2", "dup2", "dup2", "execve"})),
      // Double telnet over SSL channels.
      payload(kBackdoor, "reverse_ssl_double_telnet",
              sys_seq({"socket", "connect", "socket", "connect", "read",
                       "write", "dup2", "dup2", "execve"})),
  };
}

ExploitPayload proftpd_buffer_overflow_payload() {
  // Stack smash in mod_site_misc: ROP to mprotect + staged shell.
  return payload(kOverflowProftpd, "staged_shell",
                 sys_seq({"mprotect", "read", "socket", "connect", "dup2",
                          "dup2", "dup2", "execve"}));
}

std::vector<ExploitPayload> all_table4_payloads() {
  std::vector<ExploitPayload> out = gzip_payloads();
  auto backdoors = proftpd_backdoor_payloads();
  out.insert(out.end(), std::make_move_iterator(backdoors.begin()),
             std::make_move_iterator(backdoors.end()));
  out.push_back(proftpd_buffer_overflow_payload());
  return out;
}

}  // namespace cmarkov::attack
