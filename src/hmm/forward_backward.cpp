#include "src/hmm/forward_backward.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cmarkov::hmm {

ForwardResult forward_scaled(const Hmm& model,
                             std::span<const std::size_t> observations) {
  const std::size_t n = model.num_states();
  const std::size_t t_len = observations.size();
  ForwardResult result;
  if (t_len == 0) {
    result.log_likelihood = 0.0;
    return result;
  }
  for (std::size_t symbol : observations) {
    if (symbol >= model.num_symbols()) {
      throw std::out_of_range("forward_scaled: observation id out of range");
    }
  }

  result.alpha = Matrix(t_len, n);
  result.scales.resize(t_len, 0.0);

  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = model.initial[i] * model.emission(i, observations[0]);
    result.alpha(0, i) = v;
    scale += v;
  }
  if (scale <= 0.0) {
    result.impossible = true;
    result.log_likelihood = -std::numeric_limits<double>::infinity();
    return result;
  }
  result.scales[0] = scale;
  for (std::size_t i = 0; i < n; ++i) result.alpha(0, i) /= scale;

  for (std::size_t t = 1; t < t_len; ++t) {
    scale = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        sum += result.alpha(t - 1, i) * model.transition(i, j);
      }
      const double v = sum * model.emission(j, observations[t]);
      result.alpha(t, j) = v;
      scale += v;
    }
    if (scale <= 0.0) {
      result.impossible = true;
      result.log_likelihood = -std::numeric_limits<double>::infinity();
      return result;
    }
    result.scales[t] = scale;
    for (std::size_t j = 0; j < n; ++j) result.alpha(t, j) /= scale;
  }

  double log_lik = 0.0;
  for (double c : result.scales) log_lik += std::log(c);
  result.log_likelihood = log_lik;
  return result;
}

Matrix backward_scaled(const Hmm& model,
                       std::span<const std::size_t> observations,
                       std::span<const double> scales) {
  const std::size_t n = model.num_states();
  const std::size_t t_len = observations.size();
  if (scales.size() != t_len) {
    throw std::invalid_argument("backward_scaled: scales size mismatch");
  }
  Matrix beta(t_len, n);
  if (t_len == 0) return beta;

  for (std::size_t i = 0; i < n; ++i) {
    beta(t_len - 1, i) = 1.0 / scales[t_len - 1];
  }
  for (std::size_t t = t_len - 1; t-- > 0;) {
    for (std::size_t i = 0; i < n; ++i) {
      double sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        sum += model.transition(i, j) *
               model.emission(j, observations[t + 1]) * beta(t + 1, j);
      }
      beta(t, i) = sum / scales[t];
    }
  }
  return beta;
}

void HmmKernelCache::rebuild(const Hmm& model) {
  transition_t = model.transition.transposed();
  emission_t = model.emission.transposed();
}

ForwardResult forward_scaled(const Hmm& model,
                             std::span<const std::size_t> observations,
                             const HmmKernelCache& cache) {
  // Mirrors the uncached forward_scaled exactly — same operations, same
  // summation order — so the two are bit-identical; only the memory layout
  // of the transition/emission reads differs (contiguous rows of the
  // transposed copies instead of strided columns).
  const std::size_t n = model.num_states();
  const std::size_t t_len = observations.size();
  ForwardResult result;
  if (t_len == 0) {
    result.log_likelihood = 0.0;
    return result;
  }
  for (std::size_t symbol : observations) {
    if (symbol >= model.num_symbols()) {
      throw std::out_of_range("forward_scaled: observation id out of range");
    }
  }

  result.alpha = Matrix(t_len, n);
  result.scales.resize(t_len, 0.0);

  double scale = 0.0;
  {
    const auto emission_col = cache.emission_t.row(observations[0]);
    for (std::size_t i = 0; i < n; ++i) {
      const double v = model.initial[i] * emission_col[i];
      result.alpha(0, i) = v;
      scale += v;
    }
  }
  if (scale <= 0.0) {
    result.impossible = true;
    result.log_likelihood = -std::numeric_limits<double>::infinity();
    return result;
  }
  result.scales[0] = scale;
  for (std::size_t i = 0; i < n; ++i) result.alpha(0, i) /= scale;

  for (std::size_t t = 1; t < t_len; ++t) {
    scale = 0.0;
    const auto prev_alpha = result.alpha.row(t - 1);
    const auto emission_col = cache.emission_t.row(observations[t]);
    for (std::size_t j = 0; j < n; ++j) {
      const auto into_j = cache.transition_t.row(j);
      double sum = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        sum += prev_alpha[i] * into_j[i];
      }
      const double v = sum * emission_col[j];
      result.alpha(t, j) = v;
      scale += v;
    }
    if (scale <= 0.0) {
      result.impossible = true;
      result.log_likelihood = -std::numeric_limits<double>::infinity();
      return result;
    }
    result.scales[t] = scale;
    for (std::size_t j = 0; j < n; ++j) result.alpha(t, j) /= scale;
  }

  double log_lik = 0.0;
  for (double c : result.scales) log_lik += std::log(c);
  result.log_likelihood = log_lik;
  return result;
}

Matrix backward_scaled(const Hmm& model,
                       std::span<const std::size_t> observations,
                       std::span<const double> scales,
                       const HmmKernelCache& cache) {
  // Same contract as the uncached backward_scaled, bit-identical results.
  const std::size_t n = model.num_states();
  const std::size_t t_len = observations.size();
  if (scales.size() != t_len) {
    throw std::invalid_argument("backward_scaled: scales size mismatch");
  }
  Matrix beta(t_len, n);
  if (t_len == 0) return beta;

  for (std::size_t i = 0; i < n; ++i) {
    beta(t_len - 1, i) = 1.0 / scales[t_len - 1];
  }
  for (std::size_t t = t_len - 1; t-- > 0;) {
    const auto emission_col = cache.emission_t.row(observations[t + 1]);
    const auto next_beta = beta.row(t + 1);
    for (std::size_t i = 0; i < n; ++i) {
      const auto out_of_i = model.transition.row(i);
      double sum = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        sum += out_of_i[j] * emission_col[j] * next_beta[j];
      }
      beta(t, i) = sum / scales[t];
    }
  }
  return beta;
}

std::vector<double> per_symbol_log_contributions(const ForwardResult& result) {
  std::vector<double> contributions(result.scales.size(), 0.0);
  bool dead = false;
  for (std::size_t t = 0; t < result.scales.size(); ++t) {
    if (dead) continue;
    const double c = result.scales[t];
    if (c <= 0.0) {
      // forward_scaled stops at the first zero-probability prefix; that
      // step absorbs the whole -infinity and later steps contribute 0 so
      // the sum still equals log_likelihood.
      contributions[t] = -std::numeric_limits<double>::infinity();
      dead = true;
    } else {
      contributions[t] = std::log(c);
    }
  }
  return contributions;
}

std::vector<std::size_t> per_symbol_argmax_states(const ForwardResult& result) {
  const std::size_t t_len = result.alpha.rows();
  const std::size_t n = result.alpha.cols();
  std::vector<std::size_t> states(t_len, 0);
  for (std::size_t t = 0; t < t_len; ++t) {
    std::size_t best = 0;
    double best_value = n > 0 ? result.alpha(t, 0) : 0.0;
    for (std::size_t i = 1; i < n; ++i) {
      if (result.alpha(t, i) > best_value) {
        best_value = result.alpha(t, i);
        best = i;
      }
    }
    states[t] = best;
  }
  return states;
}

double sequence_log_likelihood(const Hmm& model,
                               std::span<const std::size_t> observations) {
  return forward_scaled(model, observations).log_likelihood;
}

double sequence_probability(const Hmm& model,
                            std::span<const std::size_t> observations) {
  const double log_lik = sequence_log_likelihood(model, observations);
  return std::isinf(log_lik) ? 0.0 : std::exp(log_lik);
}

}  // namespace cmarkov::hmm
