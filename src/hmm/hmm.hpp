// Hidden Markov model data type: N hidden states over an M-symbol discrete
// observation alphabet, with transition matrix A, emission matrix B and
// initial distribution pi (Section II-B).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/linalg/matrix.hpp"

namespace cmarkov::hmm {

/// An observation sequence is a vector of alphabet ids.
using ObservationSeq = std::vector<std::size_t>;

struct Hmm {
  Matrix transition;            ///< N x N, rows sum to 1
  Matrix emission;              ///< N x M, rows sum to 1
  std::vector<double> initial;  ///< length N, sums to 1

  std::size_t num_states() const { return transition.rows(); }
  std::size_t num_symbols() const { return emission.cols(); }

  /// Throws std::invalid_argument when shapes disagree or any stochastic
  /// constraint is violated beyond `tolerance`.
  void validate(double tolerance = 1e-6) const;

  /// Mixes every row of A, B and pi with the uniform distribution:
  /// row = (1 - eps) * row + eps * uniform. Guarantees strictly positive
  /// parameters so no single unseen transition zeroes out a whole segment.
  void smooth(double epsilon);
};

}  // namespace cmarkov::hmm
