#include "src/hmm/baum_welch.hpp"

#include <cmath>
#include <stdexcept>

#include "src/hmm/forward_backward.hpp"

namespace cmarkov::hmm {

double mean_log_likelihood(const Hmm& model,
                           const std::vector<ObservationSeq>& sequences,
                           double impossible_penalty) {
  if (sequences.empty()) return 0.0;
  double total = 0.0;
  for (const auto& seq : sequences) {
    const double ll = sequence_log_likelihood(model, seq);
    total += std::isinf(ll) ? impossible_penalty : ll;
  }
  return total / static_cast<double>(sequences.size());
}

namespace {

struct Accumulators {
  Matrix transition_num;     // N x N
  std::vector<double> transition_den;  // N
  Matrix emission_num;       // N x M
  std::vector<double> emission_den;    // N
  std::vector<double> initial;         // N

  Accumulators(std::size_t n, std::size_t m)
      : transition_num(n, n),
        transition_den(n, 0.0),
        emission_num(n, m),
        emission_den(n, 0.0),
        initial(n, 0.0) {}
};

/// Accumulates expected counts for one sequence; returns false if the
/// sequence is impossible under the current model.
bool accumulate_sequence(const Hmm& model, const ObservationSeq& seq,
                         Accumulators& acc) {
  if (seq.empty()) return false;
  const ForwardResult fwd = forward_scaled(model, seq);
  if (fwd.impossible) return false;
  const Matrix beta = backward_scaled(model, seq, fwd.scales);

  const std::size_t n = model.num_states();
  const std::size_t t_len = seq.size();

  // gamma(t, i) = alpha(t, i) * beta(t, i) * c_t (scaled quantities).
  auto gamma = [&](std::size_t t, std::size_t i) {
    return fwd.alpha(t, i) * beta(t, i) * fwd.scales[t];
  };

  for (std::size_t i = 0; i < n; ++i) acc.initial[i] += gamma(0, i);

  for (std::size_t t = 0; t + 1 < t_len; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      const double alpha_ti = fwd.alpha(t, i);
      if (alpha_ti == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        // xi(t, i, j): scaled alpha/beta make the normalizer 1.
        const double xi = alpha_ti * model.transition(i, j) *
                          model.emission(j, seq[t + 1]) * beta(t + 1, j);
        acc.transition_num(i, j) += xi;
      }
    }
  }
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      const double g = gamma(t, i);
      acc.emission_num(i, seq[t]) += g;
      acc.emission_den[i] += g;
      if (t + 1 < t_len) acc.transition_den[i] += g;
    }
  }
  return true;
}

void reestimate(Hmm& model, const Accumulators& acc, double pseudocount,
                std::size_t observed_sequences) {
  const std::size_t n = model.num_states();
  const std::size_t m = model.num_symbols();

  for (std::size_t i = 0; i < n; ++i) {
    const double den =
        acc.transition_den[i] + pseudocount * static_cast<double>(n);
    for (std::size_t j = 0; j < n; ++j) {
      model.transition(i, j) = (acc.transition_num(i, j) + pseudocount) / den;
    }
    const double eden =
        acc.emission_den[i] + pseudocount * static_cast<double>(m);
    for (std::size_t k = 0; k < m; ++k) {
      model.emission(i, k) = (acc.emission_num(i, k) + pseudocount) / eden;
    }
  }
  const double iden = static_cast<double>(observed_sequences) +
                      pseudocount * static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    model.initial[i] = (acc.initial[i] + pseudocount) / iden;
  }
}

}  // namespace

TrainingReport baum_welch_train(Hmm& model,
                                const std::vector<ObservationSeq>& sequences,
                                const std::vector<ObservationSeq>& holdout,
                                const TrainingOptions& options) {
  model.validate();
  TrainingReport report;
  if (sequences.empty()) return report;

  double best_score = holdout.empty()
                          ? mean_log_likelihood(model, sequences)
                          : mean_log_likelihood(model, holdout);
  std::size_t stall = 0;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    Accumulators acc(model.num_states(), model.num_symbols());
    std::size_t observed = 0;
    std::size_t skipped = 0;
    for (const auto& seq : sequences) {
      if (accumulate_sequence(model, seq, acc)) {
        ++observed;
      } else {
        ++skipped;
      }
    }
    report.skipped_sequences = skipped;
    if (observed == 0) break;  // model rejects everything; nothing to learn

    reestimate(model, acc, options.pseudocount, observed);
    report.iterations = iter + 1;
    report.train_log_likelihood.push_back(
        mean_log_likelihood(model, sequences));

    const double score = holdout.empty()
                             ? report.train_log_likelihood.back()
                             : mean_log_likelihood(model, holdout);
    if (!holdout.empty()) report.holdout_log_likelihood.push_back(score);

    if (score - best_score < options.min_improvement) {
      ++stall;
      if (stall > options.patience) {
        report.converged = true;
        break;
      }
    } else {
      stall = 0;
    }
    if (score > best_score) best_score = score;
  }
  return report;
}

}  // namespace cmarkov::hmm
