// proftpd analogue: FTP server session loop — accept, authenticate, then
// dispatch client commands (CWD/LIST/RETR/STOR/MKD/DELE/...) over a
// control/data-connection pair. Matches the paper's proftpd workload:
// navigating directories, creating/deleting files, uploads and downloads.
#include "src/workload/program_suite.hpp"

namespace cmarkov::workload {

namespace {

const char* const kProftpdSource = R"(
fn main() {
  startup();
  bind_control_socket();
  var sessions = input() % 4 + 1;
  while (sessions > 0) {
    handle_session();
    sessions = sessions - 1;
  }
  shutdown_server();
  sys("exit_group");
}

fn startup() {
  sys("brk");
  sys("brk");
  lib("setlocale");
  lib("getenv");
  sys("rt_sigaction");
  sys("rt_sigaction");
  sys("rt_sigaction");
  sys("rt_sigaction");
  lib("malloc");
  load_config();
  sys("setuid");
}

fn load_config() {
  var fd = sys("open");
  if (fd < 1) {
    lib("fprintf");
    return;
  }
  var directives = input() % 8 + 2;
  while (directives > 0) {
    sys("read");
    parse_directive();
    directives = directives - 1;
  }
  sys("close");
}

fn parse_directive() {
  lib("strtok");
  lib("strcmp");
  var known = input() % 6;
  if (known > 0) {
    lib("malloc");
    lib("strcpy");
  }
}

fn bind_control_socket() {
  sys("socket");
  sys("setsockopt");
  sys("bind");
  sys("listen");
}

fn handle_session() {
  var fd = sys("accept");
  if (fd < 1) {
    return;
  }
  send_banner();
  var authed = authenticate();
  if (authed > 0) {
    command_loop();
  }
  sys("close");
}

fn send_banner() {
  lib("sprintf");
  sys("send");
}

fn authenticate() {
  var attempts = input() % 3 + 1;
  while (attempts > 0) {
    read_command_line();
    read_command_line();
    var ok = check_password();
    if (ok > 0) {
      send_reply();
      open_user_context();
      return 1;
    }
    send_reply();
    attempts = attempts - 1;
  }
  return 0;
}

fn read_command_line() {
  var n = sys("recv");
  lib("memchr");
  lib("strtok");
  return n;
}

fn check_password() {
  sys("open");
  sys("read");
  sys("close");
  lib("crypt");
  var r = lib("strcmp");
  if (r == 0) {
    return 1;
  }
  return 0;
}

fn open_user_context() {
  sys("chdir");
  sys("getcwd");
  lib("malloc");
}

fn command_loop() {
  var commands = input() % 10 + 2;
  while (commands > 0) {
    var n = read_command_line();
    if (n > 0) {
      dispatch_command();
    }
    commands = commands - 1;
  }
}

fn dispatch_command() {
  var cmd = input() % 12;
  if (cmd == 0) {
    cmd_cwd();
  } else {
    if (cmd == 1) {
      cmd_list();
    } else {
      if (cmd == 2) {
        cmd_retr();
      } else {
        if (cmd == 3) {
          cmd_stor();
        } else {
          if (cmd == 4) {
            cmd_mkd();
          } else {
            if (cmd == 5) {
              cmd_dele();
            } else {
              if (cmd == 6) {
                cmd_size();
              } else {
                if (cmd == 7) {
                  cmd_rename();
                } else {
                  if (cmd == 8) {
                    cmd_appe();
                  } else {
                    if (cmd == 9) {
                      cmd_site();
                    } else {
                      if (cmd == 10) {
                        cmd_mdtm();
                      } else {
                        cmd_pwd();
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
}

fn cmd_rename() {
  check_path_access();
  read_command_line();
  check_path_access();
  var r = sys("rename");
  if (r < 12) {
    log_transfer();
  }
  send_reply();
}

fn cmd_appe() {
  check_path_access();
  var fd = sys("open");
  if (fd < 1) {
    send_reply();
    return;
  }
  sys("lseek");
  var data = open_data_connection();
  if (data > 0) {
    var chunks = input() % 6 + 1;
    while (chunks > 0) {
      sys("recv");
      sys("write");
      chunks = chunks - 1;
    }
    close_data_connection();
  }
  sys("close");
  send_reply();
}

fn cmd_site() {
  var sub = input() % 3;
  if (sub == 0) {
    check_path_access();
    sys("chmod");
  } else {
    if (sub == 1) {
      sys("getcwd");
      lib("sprintf");
    } else {
      lib("strcmp");
    }
  }
  send_reply();
}

fn cmd_mdtm() {
  check_path_access();
  var r = sys("stat");
  if (r < 12) {
    sys("time");
    lib("sprintf");
  }
  send_reply();
}

fn cmd_cwd() {
  check_path_access();
  var r = sys("chdir");
  if (r < 12) {
    sys("getcwd");
  }
  send_reply();
}

fn cmd_list() {
  var data = open_data_connection();
  if (data > 0) {
    sys("openat");
    var entries = input() % 8 + 1;
    while (entries > 0) {
      sys("getdents");
      format_list_entry();
      sys("send");
      entries = entries - 1;
    }
    sys("close");
    close_data_connection();
  }
  send_reply();
}

fn format_list_entry() {
  sys("stat");
  lib("sprintf");
  lib("strcat");
}

fn cmd_retr() {
  check_path_access();
  var fd = sys("open");
  if (fd < 1) {
    send_reply();
    return;
  }
  sys("fstat");
  var data = open_data_connection();
  if (data > 0) {
    var chunks = input() % 8 + 1;
    while (chunks > 0) {
      sys("read");
      sys("send");
      chunks = chunks - 1;
    }
    close_data_connection();
  }
  sys("close");
  send_reply();
  log_transfer();
}

fn cmd_stor() {
  check_path_access();
  var fd = sys("open");
  if (fd < 1) {
    send_reply();
    return;
  }
  var data = open_data_connection();
  if (data > 0) {
    var chunks = input() % 8 + 1;
    while (chunks > 0) {
      sys("recv");
      sys("write");
      chunks = chunks - 1;
    }
    close_data_connection();
  }
  sys("close");
  sys("chmod");
  send_reply();
  log_transfer();
}

fn cmd_mkd() {
  check_path_access();
  sys("mkdir");
  send_reply();
}

fn cmd_dele() {
  check_path_access();
  var is_dir = input() % 2;
  if (is_dir == 1) {
    sys("rmdir");
  } else {
    sys("unlink");
  }
  send_reply();
}

fn cmd_size() {
  sys("stat");
  lib("sprintf");
  send_reply();
}

fn cmd_pwd() {
  sys("getcwd");
  send_reply();
}

fn check_path_access() {
  lib("strlen");
  lib("strstr");
  sys("stat");
}

fn open_data_connection() {
  var passive = input() % 2;
  if (passive == 1) {
    sys("socket");
    sys("bind");
    sys("listen");
    var fd = sys("accept");
    return fd;
  }
  sys("socket");
  var c = sys("connect");
  return c;
}

fn close_data_connection() {
  sys("shutdown");
  sys("close");
}

fn send_reply() {
  lib("sprintf");
  sys("send");
}

fn log_transfer() {
  sys("time");
  lib("sprintf");
  sys("write");
}

fn shutdown_server() {
  sys("close");
  lib("free");
  lib("free");
}
)";

}  // namespace

ProgramSuite make_proftpd_suite() {
  SuiteInfo info;
  info.name = "proftpd";
  info.description =
      "FTP server: session accept/auth loop, control+data connections, "
      "directory and transfer commands";
  info.paper_test_cases = 400;  // session workload, Section V-A
  InputSpec spec;
  spec.min_inputs = 16;
  spec.max_inputs = 96;
  spec.max_value = 99;
  return ProgramSuite(info, kProftpdSource, spec);
}

}  // namespace cmarkov::workload
