// Cross-validation plumbing for the paper's evaluation protocol: duplicate
// segments removed, 20% of normal data held out as the training-termination
// set, 10-fold cross validation over the rest.
#pragma once

#include <cstddef>
#include <vector>

#include "src/hmm/hmm.hpp"
#include "src/util/exec_context.hpp"
#include "src/util/rng.hpp"

namespace cmarkov::eval {

struct FoldSplit {
  std::vector<hmm::ObservationSeq> train;
  /// Held-out set that decides Baum-Welch termination (20% of non-test
  /// data, per the paper).
  std::vector<hmm::ObservationSeq> termination;
  /// This fold's normal test segments (FP measurement).
  std::vector<hmm::ObservationSeq> test;
};

struct CrossValidationOptions {
  std::size_t folds = 10;
  double termination_fraction = 0.2;
  /// Cap on training segments per fold after the split (0 = unlimited);
  /// quick-mode benches use this to bound Baum-Welch cost.
  std::size_t max_train_segments = 0;
  /// Execution context: exec.threads parallelizes materializing the
  /// per-fold segment copies (0 = one per hardware core). Splits are
  /// identical at any value: the shuffle happens once on the calling thread
  /// and each fold is built independently from it.
  ExecContext exec;
};

/// Splits unique segments into k folds. Segments are shuffled
/// deterministically by `rng`; every fold's train/termination/test sets are
/// disjoint. Requires at least `folds` segments.
std::vector<FoldSplit> k_fold_splits(std::vector<hmm::ObservationSeq> segments,
                                     Rng& rng,
                                     const CrossValidationOptions& options);

}  // namespace cmarkov::eval
