// Tests for the four-model zoo, parameterized over every model kind.
#include <gtest/gtest.h>

#include <cmath>

#include "src/eval/model_zoo.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::eval {
namespace {

struct Fixture {
  workload::ProgramSuite suite = workload::make_gzip_suite();
  workload::TraceCollection collection =
      workload::collect_traces(suite, 15, 21);
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

class ModelKindTest : public ::testing::TestWithParam<ModelKind> {};

TEST_P(ModelKindTest, BuildsValidModel) {
  auto& f = fixture();
  ModelBuildOptions options;
  options.filter = analysis::CallFilter::kSyscalls;
  Rng rng(1);
  const BuiltModel model =
      build_model(GetParam(), f.suite, f.collection.traces, options, rng);
  EXPECT_EQ(model.kind, GetParam());
  EXPECT_NO_THROW(model.hmm.validate());
  EXPECT_GT(model.num_states, 0u);
  EXPECT_GT(model.alphabet.size(), 0u);
  EXPECT_EQ(model.hmm.num_symbols(), model.alphabet.size());
}

TEST_P(ModelKindTest, EncodingMatchesKind) {
  EXPECT_EQ(encoding_of(GetParam()) ==
                hmm::ObservationEncoding::kContextSensitive,
            GetParam() == ModelKind::kCMarkov ||
                GetParam() == ModelKind::kRegularContext);
}

TEST_P(ModelKindTest, ScoresNormalSegmentsFinitely) {
  auto& f = fixture();
  ModelBuildOptions options;
  options.filter = analysis::CallFilter::kSyscalls;
  Rng rng(2);
  const BuiltModel model =
      build_model(GetParam(), f.suite, f.collection.traces, options, rng);
  const auto encoded = model.encode(f.collection.traces.front());
  ASSERT_GE(encoded.size(), 15u);
  const hmm::ObservationSeq segment(encoded.begin(), encoded.begin() + 15);
  const double score = model.score(segment);
  EXPECT_TRUE(std::isfinite(score));
  EXPECT_LT(score, 0.0);
}

TEST_P(ModelKindTest, UnknownContextScoresImpossible) {
  auto& f = fixture();
  ModelBuildOptions options;
  options.filter = analysis::CallFilter::kSyscalls;
  Rng rng(3);
  const BuiltModel model =
      build_model(GetParam(), f.suite, f.collection.traces, options, rng);
  attack::EventSegment segment(15);
  for (auto& event : segment) {
    event.kind = ir::CallKind::kSyscall;
    event.name = "read";
    event.caller = "totally_bogus_function";
  }
  const double score = model.score(model.encode(segment));
  if (encoding_of(GetParam()) ==
      hmm::ObservationEncoding::kContextSensitive) {
    // read@totally_bogus_function is out of alphabet -> impossible.
    EXPECT_TRUE(std::isinf(score));
  } else {
    // Context-free models cannot see the wrong caller.
    EXPECT_TRUE(std::isfinite(score));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ModelKindTest, ::testing::ValuesIn(all_model_kinds()),
    [](const auto& info) {
      std::string name = model_kind_name(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(ModelZooTest, KindMetadata) {
  EXPECT_EQ(model_kind_name(ModelKind::kCMarkov), "CMarkov");
  EXPECT_EQ(model_kind_name(ModelKind::kStilo), "STILO");
  EXPECT_EQ(model_kind_name(ModelKind::kRegularContext), "Regular-context");
  EXPECT_EQ(model_kind_name(ModelKind::kRegularBasic), "Regular-basic");
  EXPECT_TRUE(is_statically_initialized(ModelKind::kCMarkov));
  EXPECT_TRUE(is_statically_initialized(ModelKind::kStilo));
  EXPECT_FALSE(is_statically_initialized(ModelKind::kRegularContext));
  EXPECT_FALSE(is_statically_initialized(ModelKind::kRegularBasic));
  EXPECT_EQ(all_model_kinds().size(), 4u);
}

TEST(ModelZooTest, RegularModelStateCountEqualsObservedCalls) {
  auto& f = fixture();
  ModelBuildOptions options;
  options.filter = analysis::CallFilter::kLibcalls;
  Rng rng(4);
  const BuiltModel model = build_model(
      ModelKind::kRegularBasic, f.suite, f.collection.traces, options, rng);
  // Section V-A: hidden states = number of distinct calls in traces.
  EXPECT_EQ(model.num_states, model.alphabet.size());
}

TEST(ModelZooTest, FinerContextGranularitiesGrowTheAlphabet) {
  auto& f = fixture();
  ModelBuildOptions options;
  options.filter = analysis::CallFilter::kLibcalls;
  Rng rng(9);
  const BuiltModel caller = build_model(
      ModelKind::kRegularContext, f.suite, f.collection.traces, options, rng);
  const BuiltModel site = build_model(
      ModelKind::kRegularSite, f.suite, f.collection.traces, options, rng);
  const BuiltModel deep = build_model(
      ModelKind::kRegularDeep, f.suite, f.collection.traces, options, rng);
  // Finer context can only split observation classes further.
  EXPECT_GE(site.alphabet.size(), caller.alphabet.size());
  EXPECT_GE(deep.alphabet.size(), caller.alphabet.size());
  EXPECT_EQ(extended_model_kinds().size(), 6u);
  EXPECT_EQ(model_kind_name(ModelKind::kRegularDeep), "Regular-deep");
}

TEST(ModelZooTest, ContextModelsHaveRicherAlphabets) {
  auto& f = fixture();
  ModelBuildOptions options;
  options.filter = analysis::CallFilter::kLibcalls;
  Rng rng(5);
  const BuiltModel basic = build_model(
      ModelKind::kRegularBasic, f.suite, f.collection.traces, options, rng);
  const BuiltModel context =
      build_model(ModelKind::kRegularContext, f.suite, f.collection.traces,
                  options, rng);
  EXPECT_GT(context.alphabet.size(), basic.alphabet.size());
}

TEST(ModelZooTest, StiloRecordsStaticCallsWithoutContext) {
  auto& f = fixture();
  ModelBuildOptions options;
  options.filter = analysis::CallFilter::kSyscalls;
  Rng rng(6);
  const BuiltModel cmarkov = build_model(
      ModelKind::kCMarkov, f.suite, f.collection.traces, options, rng);
  const BuiltModel stilo = build_model(
      ModelKind::kStilo, f.suite, f.collection.traces, options, rng);
  EXPECT_GT(cmarkov.static_calls, 0u);
  EXPECT_GT(stilo.static_calls, 0u);
  // Context merging can only shrink the distinct-call set.
  EXPECT_LE(stilo.static_calls, cmarkov.static_calls);
}

TEST(ModelZooTest, ClusteringReducesCMarkovStates) {
  auto& f = fixture();
  ModelBuildOptions options;
  options.filter = analysis::CallFilter::kLibcalls;
  options.clustering.min_calls_for_reduction = 0;  // force reduction
  Rng rng(7);
  const BuiltModel clustered = build_model(
      ModelKind::kCMarkov, f.suite, f.collection.traces, options, rng);
  EXPECT_LT(clustered.num_states, clustered.static_calls);
  // Roughly the paper's 1/3 target.
  EXPECT_NEAR(static_cast<double>(clustered.num_states),
              static_cast<double>(clustered.static_calls) / 3.0, 2.0);
}

TEST(ModelZooTest, RegularModelRejectsEmptyTraces) {
  auto& f = fixture();
  ModelBuildOptions options;
  options.filter = analysis::CallFilter::kSyscalls;
  Rng rng(8);
  EXPECT_THROW(
      build_model(ModelKind::kRegularBasic, f.suite, {}, options, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace cmarkov::eval
