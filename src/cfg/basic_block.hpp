// Basic blocks and the three-address instruction set MiniC lowers to.
//
// Lowering splits a block after every call instruction, so a basic block
// contains at most one call. This matches the granularity of the paper's
// analysis (Definition 1/4: a CFG node "makes a call").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/ir/ast.hpp"

namespace cmarkov::cfg {

using BlockId = std::uint32_t;
using RegId = std::uint32_t;

inline constexpr BlockId kInvalidBlock = static_cast<BlockId>(-1);

/// dst = constant
struct ConstInstr {
  RegId dst;
  std::int64_t value;
  int line = 0;
};

/// dst = src
struct MoveInstr {
  RegId dst;
  RegId src;
  int line = 0;
};

/// dst = lhs <op> rhs (strict evaluation; && and || are non-short-circuit)
struct BinInstr {
  ir::BinaryOp op;
  RegId dst;
  RegId lhs;
  RegId rhs;
  int line = 0;
};

/// dst = <op> src
struct UnInstr {
  ir::UnaryOp op;
  RegId dst;
  RegId src;
  int line = 0;
};

/// dst = next test-case input value
struct InputInstr {
  RegId dst;
  int line = 0;
};

/// dst = sys("callee")/lib("callee") — an observable external call.
/// `address` is the synthetic code address of the call site; the tracer
/// records it and the symbolizer maps it back to the caller function,
/// mirroring the paper's strace/ltrace + addr2line pipeline.
struct ExternalCallInstr {
  ir::CallKind kind;
  std::string callee;
  RegId dst;
  std::vector<RegId> args;
  std::uint32_t site_id = 0;
  std::uint64_t address = 0;
  int line = 0;
};

/// dst = callee(args) for a MiniC-defined function.
struct InternalCallInstr {
  std::string callee;
  RegId dst;
  std::vector<RegId> args;
  std::uint32_t site_id = 0;
  std::uint64_t address = 0;
  int line = 0;
};

using Instr = std::variant<ConstInstr, MoveInstr, BinInstr, UnInstr,
                           InputInstr, ExternalCallInstr, InternalCallInstr>;

/// Unconditional edge.
struct JumpTerm {
  BlockId target = kInvalidBlock;
};

/// Two-way conditional edge (condition != 0 → if_true).
struct BranchTerm {
  RegId condition;
  BlockId if_true = kInvalidBlock;
  BlockId if_false = kInvalidBlock;
  int line = 0;
};

/// Function return.
struct ReturnTerm {
  std::optional<RegId> value;
};

using Terminator = std::variant<JumpTerm, BranchTerm, ReturnTerm>;

struct BasicBlock {
  BlockId id = kInvalidBlock;
  std::vector<Instr> instructions;
  Terminator terminator = ReturnTerm{};

  /// Successor block ids implied by the terminator (0, 1 or 2).
  std::vector<BlockId> successors() const;

  /// Pointer to this block's call instruction, or nullptr. At most one call
  /// per block by construction.
  const ExternalCallInstr* external_call() const;
  const InternalCallInstr* internal_call() const;

  /// True if the block contains any call instruction.
  bool makes_call() const;
};

/// Returns the source line of an instruction (for coverage accounting).
int instr_line(const Instr& instr);

}  // namespace cmarkov::cfg
