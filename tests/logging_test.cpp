// Tests for the leveled logging facility: line format (level, monotonic
// timestamp, thread ordinal) and race-freedom under concurrent writers.
#include <gtest/gtest.h>

#include <regex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "src/util/logging.hpp"

namespace cmarkov {
namespace {

/// Captures std::cerr for the duration of a scope.
class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

// "[LEVEL <seconds>.<6 digits> t<ordinal>] <message>"
const std::regex& line_pattern() {
  static const std::regex pattern(
      R"(\[([A-Z]+) (\d+\.\d{6}) t(\d+)\] (.*))");
  return pattern;
}

struct ParsedLine {
  std::string level;
  double seconds = 0.0;
  int thread_ordinal = 0;
  std::string message;
};

ParsedLine parse_line(const std::string& line) {
  std::smatch match;
  EXPECT_TRUE(std::regex_match(line, match, line_pattern()))
      << "malformed log line: '" << line << "'";
  ParsedLine parsed;
  if (match.size() == 5) {
    parsed.level = match[1];
    parsed.seconds = std::stod(match[2]);
    parsed.thread_ordinal = std::stoi(match[3]);
    parsed.message = match[4];
  }
  return parsed;
}

std::vector<std::string> captured_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) lines.push_back(line);
  return lines;
}

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kInfo); }
};

TEST_F(LoggingTest, MessagesCarryLevelTimestampAndThreadPrefix) {
  set_log_level(LogLevel::kDebug);
  CerrCapture capture;
  log_message(LogLevel::kWarn, "watch out");
  const auto lines = captured_lines(capture.text());
  ASSERT_EQ(lines.size(), 1u);
  const ParsedLine parsed = parse_line(lines[0]);
  EXPECT_EQ(parsed.level, "WARN");
  EXPECT_EQ(parsed.message, "watch out");
  EXPECT_GE(parsed.seconds, 0.0);
  EXPECT_GE(parsed.thread_ordinal, 1);
}

TEST_F(LoggingTest, LevelsBelowThresholdAreDropped) {
  set_log_level(LogLevel::kWarn);
  CerrCapture capture;
  log_message(LogLevel::kDebug, "noise");
  log_message(LogLevel::kInfo, "more noise");
  log_message(LogLevel::kError, "signal");
  const auto lines = captured_lines(capture.text());
  ASSERT_EQ(lines.size(), 1u);
  const ParsedLine parsed = parse_line(lines[0]);
  EXPECT_EQ(parsed.level, "ERROR");
  EXPECT_EQ(parsed.message, "signal");
}

TEST_F(LoggingTest, StreamStyleBuildersFlushOnDestruction) {
  set_log_level(LogLevel::kDebug);
  CerrCapture capture;
  log_info() << "value=" << 42 << " ratio=" << 1.5;
  const auto lines = captured_lines(capture.text());
  ASSERT_EQ(lines.size(), 1u);
  const ParsedLine parsed = parse_line(lines[0]);
  EXPECT_EQ(parsed.level, "INFO");
  EXPECT_EQ(parsed.message, "value=42 ratio=1.5");
}

TEST_F(LoggingTest, BuilderRespectsLevel) {
  set_log_level(LogLevel::kError);
  CerrCapture capture;
  log_debug() << "hidden";
  log_warn() << "also hidden";
  log_error() << "visible";
  const auto lines = captured_lines(capture.text());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(parse_line(lines[0]).message, "visible");
}

TEST_F(LoggingTest, TimestampsAreMonotonicAcrossLines) {
  set_log_level(LogLevel::kDebug);
  CerrCapture capture;
  for (int i = 0; i < 50; ++i) log_info() << "tick " << i;
  const auto lines = captured_lines(capture.text());
  ASSERT_EQ(lines.size(), 50u);
  double previous = -1.0;
  for (const auto& line : lines) {
    const ParsedLine parsed = parse_line(line);
    EXPECT_GE(parsed.seconds, previous);
    previous = parsed.seconds;
  }
}

TEST_F(LoggingTest, LevelIsQueryable) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

// The cmarkovd worker pool logs from many threads at once: every line must
// come out whole (no interleaving), carry its writer's ordinal, and keep
// timestamps non-decreasing in output order.
TEST_F(LoggingTest, ConcurrentWritersNeverInterleave) {
  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 200;
  set_log_level(LogLevel::kDebug);
  CerrCapture capture;
  {
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([t] {
        for (int i = 0; i < kLinesPerThread; ++i) {
          log_info() << "writer " << t << " line " << i;
        }
      });
    }
    for (auto& writer : writers) writer.join();
  }

  const auto lines = captured_lines(capture.text());
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads * kLinesPerThread));
  const std::regex message_pattern(R"(writer (\d+) line (\d+))");
  std::vector<int> per_writer_next(kThreads, 0);
  std::set<int> ordinals_seen;
  double previous_seconds = -1.0;
  for (const auto& line : lines) {
    const ParsedLine parsed = parse_line(line);
    EXPECT_GE(parsed.seconds, previous_seconds);
    previous_seconds = parsed.seconds;
    ordinals_seen.insert(parsed.thread_ordinal);
    std::smatch match;
    ASSERT_TRUE(std::regex_match(parsed.message, match, message_pattern))
        << "torn message: '" << parsed.message << "'";
    const int writer = std::stoi(match[1]);
    // Each writer's own lines arrive in its program order.
    EXPECT_EQ(std::stoi(match[2]), per_writer_next[writer]);
    per_writer_next[writer] += 1;
  }
  for (int next : per_writer_next) EXPECT_EQ(next, kLinesPerThread);
  EXPECT_EQ(ordinals_seen.size(), static_cast<std::size_t>(kThreads));
}

}  // namespace
}  // namespace cmarkov
