#include "src/ir/token.hpp"

namespace cmarkov::ir {

std::string token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "<eof>";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kInteger: return "integer";
    case TokenKind::kString: return "string";
    case TokenKind::kFn: return "'fn'";
    case TokenKind::kVar: return "'var'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kWhile: return "'while'";
    case TokenKind::kReturn: return "'return'";
    case TokenKind::kSys: return "'sys'";
    case TokenKind::kLib: return "'lib'";
    case TokenKind::kInput: return "'input'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEqEq: return "'=='";
    case TokenKind::kNotEq: return "'!='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kNot: return "'!'";
  }
  return "<unknown>";
}

}  // namespace cmarkov::ir
