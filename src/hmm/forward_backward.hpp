// Scaled forward/backward recursions. Scaling (Rabiner's c_t normalization)
// keeps 15-call segment likelihoods representable; log-likelihood is
// recovered as -sum(log c_t). A segment containing a symbol the model gives
// zero probability scores -infinity (the "impossible" verdict that drives
// the paper's detection of out-of-alphabet / out-of-context calls).
#pragma once

#include <span>

#include "src/hmm/hmm.hpp"

namespace cmarkov::hmm {

struct ForwardResult {
  /// alpha(t, i): scaled probability of being in state i after t+1 symbols.
  Matrix alpha;
  /// Scale factors c_t; empty iff the sequence was empty.
  std::vector<double> scales;
  /// log P(observations | model); -infinity when impossible.
  double log_likelihood = 0.0;
  /// True when some prefix had zero total probability.
  bool impossible = false;
};

/// Forward pass. Observations must be valid alphabet ids (< num_symbols).
ForwardResult forward_scaled(const Hmm& model,
                             std::span<const std::size_t> observations);

/// Cache-friendly companion layout for repeated forward/backward passes
/// against one fixed model (the Baum-Welch inner loop runs thousands of
/// passes per iteration over the same parameters):
///   - transition_t(j, i) = transition(i, j): the forward recursion's inner
///     sum over predecessor states i reads a contiguous row instead of
///     striding down a column;
///   - emission_t(k, j) = emission(j, k): the per-timestep emission column
///     for the observed symbol k is a contiguous row.
/// The cached kernels perform the exact same floating-point operations in
/// the exact same order as the uncached ones — results are bit-identical
/// (asserted by parallel_training_test). Rebuild after every parameter
/// update.
struct HmmKernelCache {
  Matrix transition_t;  ///< N x N transposed transition matrix.
  Matrix emission_t;    ///< M x N transposed emission matrix.

  HmmKernelCache() = default;
  explicit HmmKernelCache(const Hmm& model) { rebuild(model); }
  void rebuild(const Hmm& model);
};

/// Forward pass reading the transposed layouts; bit-identical to
/// forward_scaled(model, observations).
ForwardResult forward_scaled(const Hmm& model,
                             std::span<const std::size_t> observations,
                             const HmmKernelCache& cache);

/// Backward pass reusing the forward scale factors. Returns beta(t, i).
/// Must not be called for impossible sequences.
Matrix backward_scaled(const Hmm& model,
                       std::span<const std::size_t> observations,
                       std::span<const double> scales);

/// Backward pass reading the transposed emission layout; bit-identical to
/// backward_scaled(model, observations, scales).
Matrix backward_scaled(const Hmm& model,
                       std::span<const std::size_t> observations,
                       std::span<const double> scales,
                       const HmmKernelCache& cache);

/// Additive per-symbol decomposition of the log-likelihood: entry t is
/// log(c_t), the log-probability of symbol t given the (scaled) state
/// distribution after t symbols, and the entries sum to
/// `result.log_likelihood` exactly (same values, same summation order).
/// For impossible sequences the first zero-scale step contributes
/// -infinity and every later step 0 — the sum is still -infinity.
std::vector<double> per_symbol_log_contributions(const ForwardResult& result);

/// Most likely hidden state after each symbol: argmax over the scaled
/// alpha row (ties break to the lowest state id). For impossible
/// sequences, steps at and after the zero-scale point report state 0.
std::vector<std::size_t> per_symbol_argmax_states(const ForwardResult& result);

/// Convenience: log P(observations | model), -infinity when impossible.
double sequence_log_likelihood(const Hmm& model,
                               std::span<const std::size_t> observations);

/// P(observations | model) in linear space (may underflow to 0 for long
/// sequences; fine for the paper's 15-call segments).
double sequence_probability(const Hmm& model,
                            std::span<const std::size_t> observations);

}  // namespace cmarkov::hmm
