// Definition 3 / Equation 1: the reachability probability of each CFG node,
// i.e. the likelihood that a single execution of the function reaches the
// node.
//
// Two semantics are provided:
//  - kAcyclicCut (paper-literal): back edges are removed and Eq. 1 is
//    evaluated top-down over the resulting DAG. Loop repetitions are not
//    modeled ("learned from traces" per the paper).
//  - kIterativeFixpoint (extension): the full cyclic equation system is
//    solved by damped Jacobi iteration; the result is the expected number of
//    visits per invocation, which weights loop bodies by their expected trip
//    mass. The ablation bench compares both.
#pragma once

#include <vector>

#include "src/analysis/conditional_probability.hpp"
#include "src/cfg/cfg.hpp"

namespace cmarkov::analysis {

enum class PropagationMode { kAcyclicCut, kIterativeFixpoint };

struct ReachabilityOptions {
  PropagationMode mode = PropagationMode::kAcyclicCut;
  /// Fixpoint-mode controls.
  std::size_t max_iterations = 500;
  double tolerance = 1e-12;
};

/// reachability[i] = P^r of block i (expected visits in fixpoint mode).
/// The entry block always gets 1.0 injected. Unreachable blocks get 0.
std::vector<double> reachability_probabilities(
    const cfg::FunctionCfg& cfg, const EdgeProbabilities& edges,
    const ReachabilityOptions& options = {});

}  // namespace cmarkov::analysis
