#include "src/linalg/matrix.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cmarkov {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != m.cols_) {
      throw std::invalid_argument("Matrix::from_rows: ragged rows");
    }
    for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

std::span<const double> Matrix::row(std::size_t r) const {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.data() + r * cols_, cols_};
}

std::span<double> Matrix::row(std::size_t r) {
  if (r >= rows_) throw std::out_of_range("Matrix::row");
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::col(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::col");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix::multiply: dimension mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double lhs_rk = (*this)(r, k);
      if (lhs_rk == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c) {
        out(r, c) += lhs_rk * rhs(k, c);
      }
    }
  }
  return out;
}

double Matrix::row_sum(std::size_t r) const {
  double total = 0.0;
  for (double v : row(r)) total += v;
  return total;
}

double Matrix::col_sum(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::col_sum");
  double total = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) total += (*this)(r, c);
  return total;
}

void Matrix::normalize_rows() {
  for (std::size_t r = 0; r < rows_; ++r) {
    const double total = row_sum(r);
    if (total <= 0.0) {
      const double uniform = 1.0 / static_cast<double>(cols_);
      for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = uniform;
    } else {
      for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) /= total;
    }
  }
}

double Matrix::max_abs_diff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::max_abs_diff: shape mismatch");
  }
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

double Matrix::frobenius_norm() const {
  double total = 0.0;
  for (double v : data_) total += v * v;
  return std::sqrt(total);
}

std::string Matrix::to_string(int precision) const {
  std::string out;
  char buf[64];
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      std::snprintf(buf, sizeof(buf), "%s%.*f", c > 0 ? " " : "", precision,
                    (*this)(r, c));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

double euclidean_distance(std::span<const double> a,
                          std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("euclidean_distance: length mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return std::sqrt(total);
}

std::vector<double> column_means(const Matrix& m) {
  if (m.empty()) throw std::invalid_argument("column_means: empty matrix");
  std::vector<double> means(m.cols(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) means[c] += m(r, c);
  }
  for (double& v : means) v /= static_cast<double>(m.rows());
  return means;
}

Matrix covariance(const Matrix& m) {
  if (m.rows() < 2) {
    throw std::invalid_argument("covariance: need at least 2 samples");
  }
  const auto means = column_means(m);
  Matrix cov(m.cols(), m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t i = 0; i < m.cols(); ++i) {
      const double di = m(r, i) - means[i];
      if (di == 0.0) continue;
      for (std::size_t j = i; j < m.cols(); ++j) {
        cov(i, j) += di * (m(r, j) - means[j]);
      }
    }
  }
  const double denom = static_cast<double>(m.rows() - 1);
  for (std::size_t i = 0; i < m.cols(); ++i) {
    for (std::size_t j = i; j < m.cols(); ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  }
  return cov;
}

}  // namespace cmarkov
