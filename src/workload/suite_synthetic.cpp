// Synthetic large-program generator: produces MiniC programs of
// parameterizable size so paper-scale models (hundreds to >1000
// context-sensitive calls) can be exercised — in particular the N > 800
// clustering gate of Section III, which the eight hand-written analogues
// are too small to trigger.
//
// Structure: `modules` subsystems of `functions_per_module` functions each.
// Functions call earlier-defined functions (a DAG, so sema and aggregation
// stay exact) and make lib/sys calls drawn from per-module slices of the
// vocabulary, giving every module its own context flavor the way real
// subsystems (parser, allocator, I/O layer, ...) do.
#include "src/workload/suite_synthetic.hpp"

#include "src/util/rng.hpp"

namespace cmarkov::workload {

namespace {

std::string fn_name(std::size_t module, std::size_t index) {
  return "m" + std::to_string(module) + "_f" + std::to_string(index);
}

}  // namespace

ProgramSuite make_synthetic_suite(const SyntheticConfig& config) {
  Rng rng(config.seed ^ 0x5f37e);
  std::string source;
  std::vector<std::string> defined;  // callable so far (earlier functions)
  std::vector<std::string> module_entries;

  for (std::size_t m = 0; m < config.modules; ++m) {
    const std::size_t lib_base =
        (m * config.libcall_vocab / config.modules);
    const std::size_t lib_span =
        std::max<std::size_t>(config.libcall_vocab / config.modules + 8, 8);
    const std::size_t sys_base =
        (m * config.syscall_vocab / config.modules);
    const std::size_t sys_span =
        std::max<std::size_t>(config.syscall_vocab / config.modules + 4, 4);

    for (std::size_t f = 0; f < config.functions_per_module; ++f) {
      const std::string name = fn_name(m, f);
      source += "fn " + name + "() {\n";
      const std::size_t stmts = 2 + rng.index(4);
      for (std::size_t s = 0; s < stmts; ++s) {
        switch (rng.index(6)) {
          case 0:
          case 1: {
            const std::size_t lib =
                (lib_base + rng.index(lib_span)) % config.libcall_vocab;
            source += "  lib(\"lib" + std::to_string(lib) + "\");\n";
            break;
          }
          case 2: {
            const std::size_t sys =
                (sys_base + rng.index(sys_span)) % config.syscall_vocab;
            source += "  sys(\"sys" + std::to_string(sys) + "\");\n";
            break;
          }
          case 3: {
            if (defined.empty()) {
              source += "  lib(\"lib" + std::to_string(lib_base) + "\");\n";
            } else {
              // Prefer recent functions (same module) for call depth.
              const std::size_t window =
                  std::min<std::size_t>(defined.size(), 12);
              const std::string& callee =
                  defined[defined.size() - 1 - rng.index(window)];
              source += "  " + callee + "();\n";
            }
            break;
          }
          case 4: {
            const std::size_t lib =
                (lib_base + rng.index(lib_span)) % config.libcall_vocab;
            source += "  if (input() % " +
                      std::to_string(2 + rng.index(4)) + " == 0) { lib(\"lib" +
                      std::to_string(lib) + "\"); }\n";
            break;
          }
          default: {
            const std::size_t sys =
                (sys_base + rng.index(sys_span)) % config.syscall_vocab;
            source += "  var n" + std::to_string(s) + " = input() % 3;\n";
            source += "  while (n" + std::to_string(s) + " > 0) { sys(\"sys" +
                      std::to_string(sys) + "\"); n" + std::to_string(s) +
                      " = n" + std::to_string(s) + " - 1; }\n";
            break;
          }
        }
      }
      source += "}\n";
      defined.push_back(name);
    }

    // Module dispatcher: reaches every function of the module, so the whole
    // program is live from main (real subsystems are driven by command
    // dispatch the same way).
    const std::string entry = "m" + std::to_string(m) + "_entry";
    source += "fn " + entry + "() {\n";
    source += "  var cmd = input() % " +
              std::to_string(config.functions_per_module) + ";\n";
    for (std::size_t f = 0; f < config.functions_per_module; ++f) {
      source += "  if (cmd == " + std::to_string(f) + ") { " +
                fn_name(m, f) + "(); }\n";
    }
    source += "}\n";
    defined.push_back(entry);
    module_entries.push_back(entry);
  }

  source += "fn main() {\n";
  source += "  var rounds = input() % 6 + 2;\n";
  source += "  while (rounds > 0) {\n";
  for (const auto& entry : module_entries) {
    source += "    if (input() % 3 > 0) { " + entry + "(); }\n";
  }
  source += "    rounds = rounds - 1;\n";
  source += "  }\n";
  source += "}\n";

  SuiteInfo info;
  info.name = "synthetic-" + std::to_string(config.modules) + "x" +
              std::to_string(config.functions_per_module);
  info.description =
      "generated large program (" +
      std::to_string(config.modules * config.functions_per_module) +
      " functions) for paper-scale model-size experiments";
  info.paper_test_cases = 0;  // not one of the paper's programs
  InputSpec spec;
  spec.min_inputs = 48;
  spec.max_inputs = 160;
  spec.max_value = 99;
  return ProgramSuite(info, std::move(source), spec);
}

}  // namespace cmarkov::workload
