// Tests for the streaming OnlineMonitor.
#include <gtest/gtest.h>

#include "src/attack/exploit_driver.hpp"
#include "src/core/online_monitor.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::core {
namespace {

struct Fixture {
  workload::ProgramSuite suite = workload::make_gzip_suite();
  Detector detector = [this] {
    DetectorConfig config;
    config.pipeline.filter = analysis::CallFilter::kSyscalls;
    config.training.max_iterations = 8;
    config.target_fp = 0.001;
    Detector d = Detector::build(suite.module(), config);
    d.train(workload::collect_traces(suite, 40, 91).traces);
    return d;
  }();
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(OnlineMonitorTest, RequiresTrainedDetector) {
  DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  const Detector untrained =
      Detector::build(fixture().suite.module(), config);
  EXPECT_THROW((OnlineMonitor{untrained}), std::invalid_argument);
  MonitorOptions bad;
  bad.windows_to_alarm = 0;
  EXPECT_THROW(OnlineMonitor(fixture().detector, nullptr, bad),
               std::invalid_argument);
}

TEST(OnlineMonitorTest, WindowFillsBeforeScoring) {
  OnlineMonitor monitor(fixture().detector);
  const auto collection = workload::collect_traces(fixture().suite, 1, 7);
  const auto& events = collection.traces.front().events;
  const std::size_t window =
      fixture().detector.config().segments.length;
  std::size_t syscalls_fed = 0;
  for (const auto& event : events) {
    const auto update = monitor.on_event(event);
    if (analysis::filter_matches(analysis::CallFilter::kSyscalls,
                                 event.kind)) {
      ++syscalls_fed;
      // On-stream events complete the window once `window` of them arrived.
      EXPECT_EQ(update.window_complete, syscalls_fed >= window);
    } else {
      // Off-stream events never produce a scored window.
      EXPECT_FALSE(update.window_complete);
    }
    if (syscalls_fed >= window + 3) break;
  }
}

TEST(OnlineMonitorTest, BenignStreamRaisesFewAlarms) {
  OnlineMonitor monitor(fixture().detector);
  const auto collection = workload::collect_traces(fixture().suite, 10, 77);
  std::size_t alarms = 0;
  for (const auto& trace : collection.traces) {
    alarms += monitor.on_trace(trace);
    monitor.reset_window();
  }
  const auto& stats = monitor.stats();
  EXPECT_GT(stats.windows_scored, 100u);
  // Calibrated at 0.1% segment FP.
  EXPECT_LT(static_cast<double>(stats.windows_flagged) /
                static_cast<double>(stats.windows_scored),
            0.05);
  EXPECT_EQ(stats.alarms, alarms);
}

TEST(OnlineMonitorTest, AttackStreamRaisesAlarm) {
  OnlineMonitor monitor(fixture().detector);
  const auto attacks = attack::build_attack_traces(
      fixture().suite, attack::gzip_payloads(), 5);
  std::size_t alarms = 0;
  for (const auto& attack : attacks) {
    alarms += monitor.on_trace(attack.trace);
    monitor.reset_window();
  }
  EXPECT_GT(alarms, 0u);
}

TEST(OnlineMonitorTest, SymbolizerResolvesRawEvents) {
  const trace::Symbolizer symbolizer(fixture().suite.cfg());
  OnlineMonitor monitor(fixture().detector, &symbolizer);
  auto collection = workload::collect_traces(fixture().suite, 2, 13);
  std::size_t flagged = 0;
  std::size_t scored = 0;
  for (auto& trace : collection.traces) {
    for (auto event : trace.events) {
      event.caller.clear();  // arrives raw, as from a kernel feed
      const auto update = monitor.on_event(event);
      if (update.window_complete) {
        ++scored;
        flagged += update.flagged;
      }
    }
  }
  ASSERT_GT(scored, 10u);
  // With on-the-fly symbolization the benign stream still mostly passes.
  EXPECT_LT(static_cast<double>(flagged) / static_cast<double>(scored),
            0.1);
}

TEST(OnlineMonitorTest, HysteresisRequiresConsecutiveWindows) {
  MonitorOptions options;
  options.windows_to_alarm = 1000000;  // effectively never
  OnlineMonitor monitor(fixture().detector, nullptr, options);
  const auto attacks = attack::build_attack_traces(
      fixture().suite, attack::gzip_payloads(), 5);
  std::size_t alarms = 0;
  for (const auto& attack : attacks) {
    alarms += monitor.on_trace(attack.trace);
  }
  EXPECT_EQ(alarms, 0u);
  EXPECT_GT(monitor.stats().windows_flagged, 0u);
}

TEST(OnlineMonitorTest, CooldownSuppressesAlarmBursts) {
  MonitorOptions noisy;
  noisy.cooldown_events = 0;
  MonitorOptions calm;
  calm.cooldown_events = 1000000;

  const auto attacks = attack::build_attack_traces(
      fixture().suite, attack::gzip_payloads(), 3);

  OnlineMonitor monitor_noisy(fixture().detector, nullptr, noisy);
  OnlineMonitor monitor_calm(fixture().detector, nullptr, calm);
  std::size_t noisy_alarms = 0;
  std::size_t calm_alarms = 0;
  for (const auto& attack : attacks) {
    noisy_alarms += monitor_noisy.on_trace(attack.trace);
    calm_alarms += monitor_calm.on_trace(attack.trace);
  }
  EXPECT_LE(calm_alarms, noisy_alarms);
  EXPECT_LE(calm_alarms, 1u);
}

TEST(OnlineMonitorTest, OffStreamEventsAreIgnoredButCounted) {
  OnlineMonitor monitor(fixture().detector);  // syscall model
  trace::CallEvent libcall;
  libcall.kind = ir::CallKind::kLibcall;
  libcall.name = "malloc";
  libcall.caller = "main";
  for (int i = 0; i < 50; ++i) {
    const auto update = monitor.on_event(libcall);
    EXPECT_FALSE(update.window_complete);
  }
  EXPECT_EQ(monitor.stats().events_seen, 50u);
  EXPECT_EQ(monitor.stats().events_observed, 0u);
}

}  // namespace
}  // namespace cmarkov::core
