#include "src/workload/testcase_generator.hpp"

#include "src/trace/interpreter.hpp"
#include "src/trace/symbolizer.hpp"

namespace cmarkov::workload {

TraceCollection collect_traces(const ProgramSuite& suite, std::size_t count,
                               std::uint64_t seed) {
  TraceCollection out;
  const trace::Interpreter interpreter(suite.cfg());
  const trace::Symbolizer symbolizer(suite.cfg());
  trace::CoverageTracker coverage(suite.cfg());

  for (const TestCase& tc : suite.make_test_cases(count, seed)) {
    trace::SeededEnvironment environment(tc.environment_seed);
    trace::RunResult run =
        interpreter.run(tc.inputs, environment, &coverage);
    if (!run.completed) {
      ++out.incomplete_runs;
      continue;
    }
    symbolizer.symbolize(run.trace);
    out.total_events += run.trace.events.size();
    out.traces.push_back(std::move(run.trace));
  }
  out.coverage = coverage.summary();
  return out;
}

}  // namespace cmarkov::workload
