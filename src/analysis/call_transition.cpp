#include "src/analysis/call_transition.hpp"

#include <cmath>
#include <set>
#include <unordered_map>

namespace cmarkov::analysis {

std::unique_ptr<BranchHeuristic> make_branch_heuristic(
    BranchHeuristicKind kind, double loop_probability) {
  switch (kind) {
    case BranchHeuristicKind::kUniform:
      return make_uniform_heuristic();
    case BranchHeuristicKind::kLoopBiased:
      return make_loop_biased_heuristic(loop_probability);
  }
  return make_uniform_heuristic();
}

namespace {

/// Distribution over "first call node reached"; targets are block ids, with
/// block_count() standing for function exit.
using TargetDist = std::unordered_map<std::size_t, double>;

/// True when the block is a call node under the filter. Filtered-out
/// external calls behave like plain computation.
bool is_call_node(const cfg::BasicBlock& block, CallFilter filter) {
  if (block.internal_call() != nullptr) return true;
  const auto* ext = block.external_call();
  return ext != nullptr && filter_matches(filter, ext->kind);
}

/// g(n): distribution of the first call node at-or-after n. δ_n for call
/// nodes; for others, the edge-probability mix of successors' g, with the
/// exit sentinel for return blocks.
std::vector<TargetDist> first_call_distributions(
    const cfg::FunctionCfg& cfg, const EdgeProbabilities& edges,
    CallFilter filter, const FunctionMatrixOptions& options) {
  const std::size_t n = cfg.block_count();
  const std::size_t kExitTarget = n;
  std::vector<TargetDist> dist(n);

  auto combine_successors = [&](cfg::BlockId node,
                                const std::vector<TargetDist>& source,
                                const std::set<std::pair<cfg::BlockId,
                                                         cfg::BlockId>>*
                                    cut_edges) {
    TargetDist out;
    const auto& succs = edges.outgoing[node];
    if (succs.empty()) {
      out[kExitTarget] = 1.0;
      return out;
    }
    for (const auto& [succ, p] : succs) {
      if (cut_edges != nullptr && cut_edges->contains({node, succ})) continue;
      if (is_call_node(cfg.block(succ), filter)) {
        out[succ] += p;
      } else {
        for (const auto& [target, q] : source[succ]) out[target] += p * q;
      }
    }
    return out;
  };

  if (options.mode == PropagationMode::kAcyclicCut) {
    const auto backs = cfg.back_edges();
    const std::set<std::pair<cfg::BlockId, cfg::BlockId>> back_set(
        backs.begin(), backs.end());
    // Process in reverse RPO (i.e. topological order from the leaves), so
    // successors are ready when a node combines them.
    const auto rpo = cfg.reverse_post_order();
    for (auto it = rpo.rbegin(); it != rpo.rend(); ++it) {
      const cfg::BlockId node = *it;
      if (is_call_node(cfg.block(node), filter)) {
        dist[node][node] = 1.0;
      } else {
        dist[node] = combine_successors(node, dist, &back_set);
      }
    }
    return dist;
  }

  // Fixpoint mode: Jacobi-iterate the same equations over the cyclic graph.
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double delta = 0.0;
    std::vector<TargetDist> next(n);
    for (cfg::BlockId node = 0; node < n; ++node) {
      if (is_call_node(cfg.block(node), filter)) {
        next[node][node] = 1.0;
      } else {
        next[node] = combine_successors(node, dist, nullptr);
      }
      for (const auto& [target, p] : next[node]) {
        auto it = dist[node].find(target);
        const double before = it == dist[node].end() ? 0.0 : it->second;
        delta = std::max(delta, std::abs(p - before));
      }
    }
    dist = std::move(next);
    if (delta < options.tolerance) break;
  }
  return dist;
}

CallSymbol block_symbol(const cfg::FunctionCfg& cfg,
                        const cfg::BasicBlock& block) {
  if (const auto* ext = block.external_call()) {
    return CallSymbol::external(ext->kind, ext->callee, cfg.name);
  }
  const auto* internal = block.internal_call();
  return CallSymbol::internal(internal->callee);
}

}  // namespace

CallTransitionMatrix function_call_transitions(
    const cfg::FunctionCfg& cfg, const BranchHeuristic& heuristic,
    const FunctionMatrixOptions& options) {
  const EdgeProbabilities edges = conditional_probabilities(cfg, heuristic);

  ReachabilityOptions reach_options;
  reach_options.mode = options.mode;
  reach_options.max_iterations = options.max_iterations;
  reach_options.tolerance = options.tolerance;
  const std::vector<double> reach =
      reachability_probabilities(cfg, edges, reach_options);

  const auto dist =
      first_call_distributions(cfg, edges, options.filter, options);

  const std::size_t kExitTarget = cfg.block_count();

  CallTransitionMatrix matrix;
  const std::size_t entry_idx =
      matrix.add_symbol(CallSymbol::entry(cfg.name));
  const std::size_t exit_idx = matrix.add_symbol(CallSymbol::exit(cfg.name));

  auto target_index = [&](std::size_t target) {
    if (target == kExitTarget) return exit_idx;
    return matrix.add_symbol(block_symbol(cfg, cfg.block(target)));
  };

  // ENTRY row: first call reached from the function entry with prob 1.
  if (is_call_node(cfg.block(cfg.entry), options.filter)) {
    matrix.add_prob(entry_idx, target_index(cfg.entry), 1.0);
  } else {
    for (const auto& [target, p] : dist[cfg.entry]) {
      matrix.add_prob(entry_idx, target_index(target), p);
    }
  }

  // One row per call node, weighted by its reachability (Equation 2).
  std::set<std::pair<cfg::BlockId, cfg::BlockId>> back_set;
  if (options.mode == PropagationMode::kAcyclicCut) {
    const auto backs = cfg.back_edges();
    back_set.insert(backs.begin(), backs.end());
  }
  for (const auto& block : cfg.blocks) {
    if (!is_call_node(block, options.filter)) continue;
    const double mass = reach[block.id];
    if (mass <= 0.0) {
      // Unreachable call node: register the symbol so the alphabet is
      // complete, but contribute no probability.
      matrix.add_symbol(block_symbol(cfg, block));
      continue;
    }
    const std::size_t from = matrix.add_symbol(block_symbol(cfg, block));
    const auto& succs = edges.outgoing[block.id];
    if (succs.empty()) {
      matrix.add_prob(from, exit_idx, mass);
      continue;
    }
    for (const auto& [succ, p] : succs) {
      if (options.mode == PropagationMode::kAcyclicCut &&
          back_set.contains({block.id, succ})) {
        continue;  // loop repetitions are learned from traces
      }
      if (is_call_node(cfg.block(succ), options.filter)) {
        matrix.add_prob(from, target_index(succ), mass * p);
      } else {
        for (const auto& [target, q] : dist[succ]) {
          matrix.add_prob(from, target_index(target), mass * p * q);
        }
      }
    }
  }
  return matrix;
}

}  // namespace cmarkov::analysis
