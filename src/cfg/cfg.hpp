// Per-function control-flow graphs and the module-level container the
// analysis pipeline consumes (the paper's Definition 1).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/cfg/basic_block.hpp"

namespace cmarkov::cfg {

/// CFG of one MiniC function after lowering to three-address code.
class FunctionCfg {
 public:
  std::string name;
  std::vector<std::string> params;  // parameter i lives in register i
  BlockId entry = kInvalidBlock;
  std::vector<BasicBlock> blocks;
  std::size_t num_registers = 0;
  /// Synthetic load address of the function's code (symbolizer ranges).
  std::uint64_t base_address = 0;
  /// One past the highest instruction address in the function.
  std::uint64_t end_address = 0;

  const BasicBlock& block(BlockId id) const;
  BasicBlock& block(BlockId id);

  std::size_t block_count() const { return blocks.size(); }

  /// Total number of CFG edges.
  std::size_t edge_count() const;

  /// Predecessor lists, indexed by block id.
  std::vector<std::vector<BlockId>> predecessors() const;

  /// Back edges (u, v) found by DFS from the entry: edge u->v where v is on
  /// the current DFS stack. Cutting these yields the acyclic subgraph the
  /// probability propagation runs on (the paper defers loop behaviour to
  /// dynamic training).
  std::vector<std::pair<BlockId, BlockId>> back_edges() const;

  /// Blocks in reverse post order over forward (non-back) edges, starting at
  /// the entry. Unreachable blocks are excluded.
  std::vector<BlockId> reverse_post_order() const;

  /// Set of distinct source lines covered by the function's instructions
  /// and branch terminators (denominator of line coverage, Table I).
  std::vector<int> source_lines() const;
};

/// All function CFGs of a program, plus entry-point metadata.
class ModuleCfg {
 public:
  std::string program_name;
  std::string entry_point;
  std::vector<FunctionCfg> functions;

  const FunctionCfg* find(const std::string& name) const;
  const FunctionCfg& require(const std::string& name) const;

  /// function name -> index into `functions`.
  std::map<std::string, std::size_t> index_by_name() const;

  /// Total basic blocks across all functions.
  std::size_t total_blocks() const;
};

}  // namespace cmarkov::cfg
