// Unit tests for the Hmm data type (validation, smoothing) and the random
// initializer behind the Regular baselines.
#include <gtest/gtest.h>

#include "src/hmm/hmm.hpp"
#include "src/hmm/random_init.hpp"

namespace cmarkov::hmm {
namespace {

Hmm tiny_valid_hmm() {
  Hmm model;
  model.transition = Matrix::from_rows({{0.7, 0.3}, {0.4, 0.6}});
  model.emission = Matrix::from_rows({{0.9, 0.1}, {0.2, 0.8}});
  model.initial = {0.6, 0.4};
  return model;
}

TEST(HmmTest, ValidModelPassesValidation) {
  EXPECT_NO_THROW(tiny_valid_hmm().validate());
}

TEST(HmmTest, ValidationCatchesShapeErrors) {
  Hmm model = tiny_valid_hmm();
  model.emission = Matrix::from_rows({{1.0, 0.0}});  // 1 row for 2 states
  EXPECT_THROW(model.validate(), std::invalid_argument);

  model = tiny_valid_hmm();
  model.initial = {1.0};
  EXPECT_THROW(model.validate(), std::invalid_argument);

  model = tiny_valid_hmm();
  model.transition = Matrix(2, 3, 1.0 / 3.0);
  EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(HmmTest, ValidationCatchesNonStochasticRows) {
  Hmm model = tiny_valid_hmm();
  model.transition(0, 0) = 0.9;  // row 0 now sums to 1.2
  EXPECT_THROW(model.validate(), std::invalid_argument);

  model = tiny_valid_hmm();
  model.emission(1, 0) = -0.2;
  model.emission(1, 1) = 1.2;
  EXPECT_THROW(model.validate(), std::invalid_argument);

  model = tiny_valid_hmm();
  model.initial = {0.5, 0.4};
  EXPECT_THROW(model.validate(), std::invalid_argument);
}

TEST(HmmTest, ValidationToleranceIsRespected) {
  Hmm model = tiny_valid_hmm();
  model.initial = {0.6 + 1e-9, 0.4};
  EXPECT_NO_THROW(model.validate(1e-6));
  EXPECT_THROW(model.validate(1e-12), std::invalid_argument);
}

TEST(HmmTest, SmoothKeepsStochasticityAndPositivity) {
  Hmm model;
  model.transition = Matrix::from_rows({{1.0, 0.0}, {0.0, 1.0}});
  model.emission = Matrix::from_rows({{1.0, 0.0}, {0.0, 1.0}});
  model.initial = {1.0, 0.0};
  model.smooth(0.01);
  model.validate();
  EXPECT_GT(model.transition(0, 1), 0.0);
  EXPECT_GT(model.emission(1, 0), 0.0);
  EXPECT_GT(model.initial[1], 0.0);
  // Dominant entries stay dominant.
  EXPECT_GT(model.transition(0, 0), 0.9);
}

TEST(HmmTest, SmoothZeroIsNoOp) {
  Hmm model = tiny_valid_hmm();
  const Hmm before = model;
  model.smooth(0.0);
  EXPECT_EQ(model.transition, before.transition);
  EXPECT_EQ(model.emission, before.emission);
}

TEST(RandomInitTest, ProducesValidModelOfRequestedShape) {
  Rng rng(1);
  const Hmm model = randomly_initialized_hmm(7, 11, rng);
  EXPECT_EQ(model.num_states(), 7u);
  EXPECT_EQ(model.num_symbols(), 11u);
  EXPECT_NO_THROW(model.validate());
}

TEST(RandomInitTest, ParametersStrictlyPositive) {
  Rng rng(2);
  const Hmm model = randomly_initialized_hmm(5, 5, rng);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_GT(model.initial[i], 0.0);
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_GT(model.transition(i, j), 0.0);
      EXPECT_GT(model.emission(i, j), 0.0);
    }
  }
}

TEST(RandomInitTest, DeterministicPerSeed) {
  Rng a(3);
  Rng b(3);
  const Hmm ma = randomly_initialized_hmm(4, 6, a);
  const Hmm mb = randomly_initialized_hmm(4, 6, b);
  EXPECT_EQ(ma.transition, mb.transition);
  EXPECT_EQ(ma.emission, mb.emission);
  EXPECT_EQ(ma.initial, mb.initial);
}

TEST(RandomInitTest, RejectsDegenerateArguments) {
  Rng rng(4);
  EXPECT_THROW(randomly_initialized_hmm(0, 3, rng), std::invalid_argument);
  EXPECT_THROW(randomly_initialized_hmm(3, 0, rng), std::invalid_argument);
  RandomInitOptions options;
  options.min_weight = 0.0;
  EXPECT_THROW(randomly_initialized_hmm(3, 3, rng, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace cmarkov::hmm
