// cmarkov::core::Detector — the library's public facade.
//
// Lifecycle mirrors the paper's two phases:
//   1. Detector::build(program)     — static analysis, state reduction, HMM
//                                     initialization;
//   2. detector.train(traces)       — Baum-Welch on normal traces (20%
//                                     termination split) and threshold
//                                     calibration at a target FP;
// then detector.classify(trace) flags any execution whose 15-call segments
// fall below the calibrated probability threshold (or contain calls the
// model has never seen in that calling context).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/core/pipeline.hpp"
#include "src/hmm/baum_welch.hpp"
#include "src/hmm/forward_backward.hpp"
#include "src/hmm/trainer.hpp"
#include "src/obs/trace/decision_record.hpp"
#include "src/trace/event.hpp"
#include "src/trace/segmenter.hpp"

namespace cmarkov::core {

struct DetectorConfig {
  PipelineConfig pipeline;
  hmm::TrainingOptions training;
  trace::SegmentOptions segments;
  /// Calibration: the threshold is set so this fraction of held-out normal
  /// segments would be (wrongly) flagged.
  double target_fp = 0.01;
  /// Fraction of unique training segments held out for both Baum-Welch
  /// termination and threshold calibration.
  double holdout_fraction = 0.2;
  std::uint64_t seed = 1;
  /// When set, train() retains the hmm::TrainerState (corpus + iteration-0
  /// prefix accumulators) so callers can serialize it and later resume
  /// incremental training (`cmarkov train --save-state`, drift refresh).
  /// Off by default: the state holds a copy of the training corpus.
  bool keep_trainer_state = false;
};

/// Threshold calibration at a target false-positive budget: scores the
/// calibration segments under `model`, sorts, and picks the score at the
/// target_fp quantile (+infinity when the budget covers every segment).
/// Shared by Detector::train and the drift-refresh path — serve code must
/// not run raw forward passes itself (tools/check_scoring_kernel.sh).
double calibrate_threshold(const hmm::Hmm& model,
                           const std::vector<hmm::ObservationSeq>& calibration,
                           double target_fp);

struct SegmentVerdict {
  double log_likelihood = 0.0;
  bool flagged = false;
  /// True when the segment contains an observation the model cannot emit
  /// (unknown call or unknown calling context).
  bool unknown_symbol = false;
};

struct TraceVerdict {
  bool anomalous = false;
  std::size_t total_segments = 0;
  std::size_t flagged_segments = 0;
  /// Lowest segment log-likelihood seen in the trace.
  double min_log_likelihood = 0.0;
  std::vector<SegmentVerdict> segments;
};

class Detector {
 public:
  /// Phase 1: builds the statically initialized model from a program.
  static Detector build(const ir::ProgramModule& program,
                        DetectorConfig config = {});

  /// Reassembles a detector from persisted parts (see model_io.hpp).
  static Detector from_parts(DetectorConfig config, hmm::Hmm model,
                             hmm::Alphabet alphabet, double threshold,
                             bool trained);

  /// Phase 2: trains on symbolized normal traces and calibrates the
  /// threshold (hmm::Trainer batch fit under the hood). Throws if the
  /// traces yield no segments.
  hmm::TrainingReport train(const std::vector<trace::Trace>& normal_traces);

  /// The resumable training state of the last train() call when
  /// DetectorConfig::keep_trainer_state was set; null otherwise (and for
  /// from_parts detectors). Serialize with core::save_trainer_state.
  const std::shared_ptr<const hmm::TrainerState>& trainer_state() const {
    return trainer_state_;
  }

  /// Frozen-alphabet segment encoding of one trace: the unique segments a
  /// trained model would score, with out-of-vocabulary observations mapped
  /// to the unknown sentinel. The incremental-absorption path (CLI
  /// --incremental, drift refresh) feeds these to Trainer::partial_fit.
  std::vector<hmm::ObservationSeq> encode_trace_segments(
      const trace::Trace& trace) const;

  /// A new trained detector with this detector's config/alphabet but a
  /// refreshed model (e.g. from Trainer::partial_fit) and a threshold
  /// recalibrated on `calibration` at config().target_fp. The model's
  /// emission width must still cover the alphabet.
  Detector rebuilt_with(hmm::Hmm model,
                        const std::vector<hmm::ObservationSeq>& calibration)
      const;

  /// Scores one segment (alphabet-frozen encoding).
  SegmentVerdict score_segment(const hmm::ObservationSeq& segment) const;

  /// Scores one segment and exposes the forward pass (for decision
  /// tracing). Same cost as the plain overload — the likelihood already
  /// requires the full forward recursion. For segments with unknown
  /// observations (which the forward pass cannot consume) `forward` comes
  /// back empty with impossible=true and log_likelihood=-infinity.
  SegmentVerdict score_segment(const hmm::ObservationSeq& segment,
                               hmm::ForwardResult* forward) const;

  /// Assembles the `cmarkov.decision.v1` audit record for a segment scored
  /// via the forward-exposing overload: per-symbol log c_t contributions
  /// (summing exactly to verdict.log_likelihood), argmax hidden states,
  /// unknown-call marks, and the threshold margin. session / trace_id /
  /// window_index / alarm / sampled are left for the caller to fill.
  obs::DecisionRecord make_decision_record(
      const hmm::ObservationSeq& segment, const SegmentVerdict& verdict,
      const hmm::ForwardResult& forward) const;

  /// Viterbi attribution: the most likely hidden-state path for a segment,
  /// rendered with the static state labels ("read@fill_window",
  /// "cluster{...}") when available, "state<i>" otherwise. Segments with
  /// unknown observations return an empty path (no state explains them —
  /// that absence is itself the explanation).
  std::vector<std::string> explain_segment(
      const hmm::ObservationSeq& segment) const;

  /// Classifies a full symbolized trace.
  TraceVerdict classify(const trace::Trace& trace) const;

  /// Lowest segment log-likelihood of a trace (quick score).
  double score(const trace::Trace& trace) const;

  bool trained() const { return trained_; }
  double threshold() const { return threshold_; }
  void set_threshold(double threshold) { threshold_ = threshold; }

  const hmm::Hmm& model() const { return hmm_; }
  const hmm::Alphabet& alphabet() const { return alphabet_; }
  const DetectorConfig& config() const { return config_; }

  /// Hidden-state count (after clustering, for CMarkov configs).
  std::size_t num_states() const { return hmm_.num_states(); }

  /// Static-analysis phase timings (empty for from_parts detectors).
  const PhaseTimer& build_timings() const { return build_timings_; }

  /// Human-readable hidden-state labels (empty for from_parts detectors).
  const std::vector<std::string>& state_labels() const {
    return state_labels_;
  }

 private:
  Detector() = default;

  hmm::ObservationSeq encode(const trace::Trace& trace) const;

  DetectorConfig config_;
  hmm::Hmm hmm_;
  hmm::Alphabet alphabet_;
  double threshold_ = 0.0;
  bool trained_ = false;
  PhaseTimer build_timings_;
  std::vector<std::string> state_labels_;
  std::shared_ptr<const hmm::TrainerState> trainer_state_;
};

}  // namespace cmarkov::core
