// Context-sensitive call symbols and the labeled sparse matrix that stores
// call-transition probabilities (Definition 5).
//
// A symbol is one row/column of a call-transition matrix:
//   kExternal  — an observable sys/lib call, carrying its 1-level calling
//                context ("read@f"); context may be empty in the
//                context-insensitive (STILO) projection.
//   kInternal  — a call to a MiniC function, a placeholder that aggregation
//                resolves away by inlining the callee's matrix.
//   kEntry/kExit — virtual begin/end of a function (or of the program after
//                aggregation); they carry entry→first-call, last-call→exit
//                and silent pass-through probabilities, which is what makes
//                callee inlining compositional.
#pragma once

#include <compare>
#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/ast.hpp"
#include "src/linalg/matrix.hpp"

namespace cmarkov::analysis {

struct CallSymbol {
  enum class Kind { kEntry, kExit, kExternal, kInternal };

  Kind kind = Kind::kExternal;
  /// Trace stream of an external call; ignored for other kinds.
  ir::CallKind call_kind = ir::CallKind::kSyscall;
  /// Call name (external), callee function (internal), or owning function
  /// (entry/exit).
  std::string name;
  /// Immediate caller function; empty for entry/exit and for
  /// context-insensitive symbols.
  std::string context;

  auto operator<=>(const CallSymbol&) const = default;

  /// "read@f" for externals with context, "read" without; "ENTRY"/"EXIT";
  /// "<fn>" for internals.
  std::string to_string() const;

  static CallSymbol entry(std::string function = {});
  static CallSymbol exit(std::string function = {});
  static CallSymbol external(ir::CallKind kind, std::string name,
                             std::string context);
  static CallSymbol internal(std::string callee);

  /// Copy with the context field cleared (STILO projection).
  CallSymbol without_context() const;
};

/// Which external calls a model observes. The paper trains separate HMMs on
/// strace (syscall) and ltrace (libcall) streams.
enum class CallFilter { kSyscalls, kLibcalls, kAll };

/// True if an external call of `kind` is visible under `filter`.
bool filter_matches(CallFilter filter, ir::CallKind kind);

std::string call_filter_name(CallFilter filter);

/// Sparse labeled matrix of call-transition probabilities. Cell (a, b) is
/// the expected number of "call a, then next call b" events per invocation
/// (Definition 5 extended with virtual entry/exit rows).
class CallTransitionMatrix {
 public:
  /// Adds a symbol if absent; returns its index either way.
  std::size_t add_symbol(const CallSymbol& symbol);

  /// Index of a present symbol; throws std::out_of_range if absent.
  std::size_t index_of(const CallSymbol& symbol) const;

  bool contains(const CallSymbol& symbol) const;

  std::size_t size() const { return symbols_.size(); }

  const CallSymbol& symbol(std::size_t index) const;
  const std::vector<CallSymbol>& symbols() const { return symbols_; }

  /// Probability for a cell, 0 when unset.
  double prob(std::size_t from, std::size_t to) const;
  double prob(const CallSymbol& from, const CallSymbol& to) const;

  /// Accumulates into a cell.
  void add_prob(std::size_t from, std::size_t to, double delta);

  /// Overwrites a cell.
  void set_prob(std::size_t from, std::size_t to, double value);

  /// Sparse row access: unordered (index, probability) pairs.
  const std::unordered_map<std::size_t, double>& row(std::size_t from) const;

  /// Sum of a row / column.
  double row_sum(std::size_t from) const;
  double col_sum(std::size_t to) const;

  /// Indices of external-call symbols, in symbol order.
  std::vector<std::size_t> external_indices() const;

  /// Dense copy (rows/cols in symbol-index order).
  Matrix to_dense() const;

  /// Number of non-zero cells.
  std::size_t nonzero_count() const;

  /// Multi-line debug rendering of non-zero cells.
  std::string to_string() const;

 private:
  std::vector<CallSymbol> symbols_;
  std::map<CallSymbol, std::size_t> index_;
  std::vector<std::unordered_map<std::size_t, double>> rows_;
};

/// Merges contexts away: every external symbol keeps only its call name,
/// probabilities of merged symbols are summed. Entry/exit and internal
/// symbols are preserved as-is. This turns a CMarkov matrix into the STILO
/// (context-insensitive) matrix.
CallTransitionMatrix project_context_insensitive(
    const CallTransitionMatrix& matrix);

}  // namespace cmarkov::analysis
