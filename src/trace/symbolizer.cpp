#include "src/trace/symbolizer.hpp"

#include <algorithm>
#include <stdexcept>

namespace cmarkov::trace {

Symbolizer::Symbolizer(const cfg::ModuleCfg& module) {
  for (const auto& fn : module.functions) {
    // Functions with no instructions still occupy their base address.
    const std::uint64_t end = std::max(fn.end_address, fn.base_address + 1);
    ranges_.push_back({fn.base_address, end, fn.name});
  }
  std::sort(ranges_.begin(), ranges_.end(),
            [](const Range& a, const Range& b) { return a.begin < b.begin; });
  for (std::size_t i = 1; i < ranges_.size(); ++i) {
    if (ranges_[i].begin < ranges_[i - 1].end) {
      throw std::invalid_argument("Symbolizer: overlapping function ranges");
    }
  }
}

std::optional<std::string> Symbolizer::resolve(std::uint64_t address) const {
  // First range with begin > address, then step back.
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), address,
      [](std::uint64_t addr, const Range& r) { return addr < r.begin; });
  if (it == ranges_.begin()) return std::nullopt;
  --it;
  if (address >= it->begin && address < it->end) return it->function;
  return std::nullopt;
}

void Symbolizer::symbolize(Trace& trace) const {
  for (auto& event : trace.events) {
    event.caller = resolve(event.site_address).value_or(kUnknownCaller);
    // Grandparent context: "-" at the entry function (no caller's caller),
    // "?" for forged/unmapped stack contents.
    if (event.grandparent_address == 0) {
      event.grandcaller = kNoGrandcaller;
    } else {
      event.grandcaller =
          resolve(event.grandparent_address).value_or(kUnknownCaller);
    }
  }
}

std::optional<std::pair<std::uint64_t, std::uint64_t>> Symbolizer::range_of(
    const std::string& function) const {
  for (const auto& r : ranges_) {
    if (r.function == function) return std::make_pair(r.begin, r.end);
  }
  return std::nullopt;
}

}  // namespace cmarkov::trace
