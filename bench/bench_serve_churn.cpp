// Churn bench for the cmarkovd session lifecycle: many more sessions than
// the resident budget, producers sweeping across all of them so every
// touch of a cold session restores it from the snapshot store and pushes
// an idle one out (approximate-LRU eviction). Measures sustained scoring
// throughput WITH the lifecycle machinery in the hot path, the eviction/
// restore rate, and the measured bytes/session against an explicit budget.
//
//   bench_serve_churn [--sessions K] [--resident R] [--sweeps N]
//                     [--burst B] [--producers P] [--workers W]
//                     [--queue C] [--budget BYTES] [--target EV_PER_SEC]
//                     [--full]
//
// --resident >= --sessions disables eviction entirely: run that first to
// measure the host's no-churn ceiling, then compare — the lifecycle
// machinery's cost is the gap between the two, independent of how fast
// the container happens to be that day.
//
// Acceptance (ISSUE 6): sustain >= ~450k events/sec single-core under
// live connect/evict/restore churn, and keep the per-session resident
// state within the bytes/session budget. Results land in BENCH_serve.json.
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/session_manager.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/strings.hpp"
#include "src/util/table_printer.hpp"
#include "src/workload/testcase_generator.hpp"

using namespace cmarkov;

namespace {

/// ISSUE 6 acceptance figure, calibrated on the reference CI host. The
/// container fleet's per-core speed varies ~2x run to run; --target
/// overrides for slower hosts (compare against the no-churn ceiling).
constexpr double kTargetEventsPerSecond = 450e3;

core::Detector train_detector(const workload::ProgramSuite& suite,
                              std::uint64_t seed) {
  core::DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  config.training.max_iterations = 6;
  core::Detector detector = core::Detector::build(suite.module(), config);
  detector.train(workload::collect_traces(suite, 30, seed).traces);
  return detector;
}

/// Cycles a suite's benign trace events into a feed of exactly `count`.
std::vector<trace::CallEvent> build_feed(const workload::ProgramSuite& suite,
                                         std::size_t count,
                                         std::uint64_t seed) {
  std::vector<trace::CallEvent> pool;
  for (const auto& trace : workload::collect_traces(suite, 5, seed).traces) {
    pool.insert(pool.end(), trace.events.begin(), trace.events.end());
  }
  std::vector<trace::CallEvent> feed;
  feed.reserve(count);
  while (feed.size() < count) {
    feed.insert(feed.end(), pool.begin(),
                pool.begin() + static_cast<std::ptrdiff_t>(std::min(
                                   pool.size(), count - feed.size())));
  }
  return feed;
}

std::string arg_value(int argc, char** argv, const std::string& flag,
                      const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full =
      has_flag(argc, argv, "--full") || std::getenv("CMARKOV_FULL") != nullptr;
  const auto sessions = std::stoul(arg_value(argc, argv, "--sessions", "64"));
  const auto resident = std::stoul(arg_value(argc, argv, "--resident", "16"));
  const auto sweeps =
      std::stoul(arg_value(argc, argv, "--sweeps", full ? "40" : "12"));
  const auto burst = std::stoul(arg_value(argc, argv, "--burst", "512"));
  const auto producers_n =
      std::stoul(arg_value(argc, argv, "--producers", "4"));
  const auto bytes_budget =
      std::stoul(arg_value(argc, argv, "--budget", "16384"));
  const double target = std::stod(arg_value(
      argc, argv, "--target", std::to_string(kTargetEventsPerSecond)));
  serve::ServiceConfig config;
  config.num_workers = std::stoul(arg_value(argc, argv, "--workers", "2"));
  config.queue_capacity = std::stoul(arg_value(argc, argv, "--queue", "4096"));
  config.policy = serve::BackpressurePolicy::kBlock;
  config.max_resident_sessions = resident;

  std::cout << "cmarkovd churn generator: " << sessions << " sessions, "
            << resident << " resident, " << producers_n << " producers x "
            << sweeps << " sweeps x " << burst << " event bursts, "
            << config.num_workers << " workers, queue="
            << config.queue_capacity << "\n";

  const workload::ProgramSuite gzip = workload::make_gzip_suite();
  serve::ModelRegistry registry;
  registry.add("gzip", train_detector(gzip, 91));

  // One burst-sized feed per producer (sessions of one producer replay the
  // same events; what varies under churn is WHICH session is resident).
  std::vector<std::vector<trace::CallEvent>> feeds;
  for (std::size_t p = 0; p < producers_n; ++p) {
    feeds.push_back(build_feed(gzip, burst, 300 + p));
  }

  serve::SessionManager manager(registry, config);
  for (std::size_t i = 0; i < sessions; ++i) {
    manager.open_session("churn-" + std::to_string(i), "gzip");
  }

  // Producers own disjoint session slices and sweep them round-robin: with
  // sessions >> resident every burst lands on an evicted session, so each
  // burst pays one restore and (via the residency budget) one eviction.
  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(producers_n);
  for (std::size_t p = 0; p < producers_n; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t sweep = 0; sweep < sweeps; ++sweep) {
        for (std::size_t i = p; i < sessions; i += producers_n) {
          const std::string id = "churn-" + std::to_string(i);
          for (const auto& event : feeds[p]) manager.submit(id, event);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  manager.drain();
  const double elapsed = watch.seconds();

  const serve::ServiceMetrics metrics = manager.metrics();
  manager.metrics_registry();  // refresh gauges (bytes/session, residency)
  obs::MetricsRegistry& instruments = manager.instruments();
  const std::uint64_t evictions =
      instruments.counter("cmarkov_serve_sessions_evicted_total").value();
  const std::uint64_t restores =
      instruments.counter("cmarkov_serve_sessions_restored_total").value();
  const double bytes_per_session =
      instruments.gauge("cmarkov_serve_session_state_bytes").value();

  const double events_per_second =
      static_cast<double>(metrics.events_processed) / elapsed;
  const double evictions_per_second =
      static_cast<double>(evictions) / elapsed;
  const double events_per_eviction =
      evictions == 0 ? 0.0
                     : static_cast<double>(metrics.events_processed) /
                           static_cast<double>(evictions);

  TablePrinter table({"Metric", "Value"});
  table.add_row({"events processed", std::to_string(metrics.events_processed)});
  table.add_row({"elapsed seconds", format_double(elapsed, 2)});
  table.add_row({"events/sec", format_double(events_per_second, 0)});
  table.add_row({"evictions", std::to_string(evictions)});
  table.add_row({"restores", std::to_string(restores)});
  table.add_row({"evictions/sec", format_double(evictions_per_second, 0)});
  table.add_row({"events/eviction", format_double(events_per_eviction, 0)});
  table.add_row({"resident sessions",
                 std::to_string(manager.resident_sessions())});
  table.add_row({"bytes/session (avg)", format_double(bytes_per_session, 0)});
  table.add_row({"snapshot store size",
                 std::to_string(manager.snapshot_store().size())});
  table.add_row({"state pool entries",
                 std::to_string(manager.state_pool().size())});
  table.add_row({"p50 latency us",
                 format_double(metrics.p50_latency_micros, 0)});
  table.add_row({"p99 latency us",
                 format_double(metrics.p99_latency_micros, 0)});
  table.print();

  if (metrics.events_dropped != 0 || metrics.events_rejected != 0) {
    std::cout << "WARNING: block policy dropped/rejected events ("
              << metrics.events_dropped << "/" << metrics.events_rejected
              << ")\n";
  }

  const bool throughput_ok = events_per_second >= target;
  const bool bytes_ok =
      bytes_per_session > 0 &&
      bytes_per_session <= static_cast<double>(bytes_budget);
  std::cout << "target " << format_double(target, 0)
            << " events/sec under churn: "
            << (throughput_ok ? "PASS" : "FAIL") << "\n";
  std::cout << "bytes/session " << format_double(bytes_per_session, 0)
            << " within " << bytes_budget
            << " byte budget: " << (bytes_ok ? "PASS" : "FAIL") << "\n";
  return throughput_ok && bytes_ok ? 0 : 1;
}
