// Baum-Welch training options/report types and the mean log-likelihood
// scorer. The training engine itself lives in hmm::Trainer
// (src/hmm/trainer.hpp); tools/check_trainer_api.sh keeps the old free
// training entry point from coming back.
//
// Convergence follows the paper's protocol: 20% of the normal data is held
// out as a termination set; after each iteration the model is evaluated on
// it and training stops when the average held-out log-likelihood no longer
// improves significantly. Accumulators carry a small pseudocount so that
// training never zeroes an entire row.
//
// The E-step is parallel over sequences (TrainingOptions::exec.threads):
// per-sequence forward/backward passes are independent given fixed
// parameters and the expected-count accumulators are additive. Sequences
// are distributed round-robin over a fixed number of merge slots (16,
// independent of the thread count), each slot is accumulated by exactly one
// worker in ascending sequence order, and slots are merged in slot-index
// order on the calling thread — so the trained model and the TrainingReport
// are bit-identical for every thread count, including the sequential path.
// docs/ALGORITHMS.md §7 has the full argument.
#pragma once

#include <cstddef>
#include <vector>

#include "src/hmm/hmm.hpp"
#include "src/util/exec_context.hpp"

namespace cmarkov::hmm {

struct TrainingOptions {
  std::size_t max_iterations = 30;
  /// Minimum improvement of mean held-out log-likelihood per iteration for
  /// training to continue.
  double min_improvement = 1e-3;
  /// Dirichlet-style pseudocount added to every accumulator cell.
  double pseudocount = 1e-6;
  /// Consecutive non-improving iterations tolerated before stopping.
  std::size_t patience = 1;
  /// Execution context: exec.threads drives the E-step and holdout scoring
  /// fan-out; exec.metrics/exec.profile receive per-iteration E/M timings,
  /// LL deltas, and pool utilization when set.
  ExecContext exec;
  /// Log-likelihood stand-in for sequences the current model rejects
  /// (impossible or empty), keeping reported means finite.
  double impossible_penalty = -1e4;
};

struct TrainingReport {
  std::size_t iterations = 0;
  bool converged = false;
  /// Mean train log-likelihood of the model *entering* each iteration,
  /// reused from the E-step forward passes (no separate scoring sweep);
  /// entry 0 is the initial model's mean train log-likelihood.
  std::vector<double> train_log_likelihood;
  /// Mean held-out log-likelihood after each iteration (empty if no
  /// held-out data was supplied).
  std::vector<double> holdout_log_likelihood;
  /// Sequences skipped because the current model scored them impossible
  /// (or they were empty).
  std::size_t skipped_sequences = 0;
};

/// Mean per-sequence log-likelihood over a set. Impossible and empty
/// sequences count with a large negative penalty instead of -infinity/0 so
/// means stay finite and match the training-time rejection of such
/// sequences. Scoring fans out over `num_threads` workers (0 = one per
/// hardware core); the mean is reduced in sequence order, so the result is
/// identical at any thread count.
double mean_log_likelihood(const Hmm& model,
                           const std::vector<ObservationSeq>& sequences,
                           double impossible_penalty = -1e4,
                           std::size_t num_threads = 1);

}  // namespace cmarkov::hmm
