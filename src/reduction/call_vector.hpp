// Definition 6: the call-transition vector of a call c is the concatenation
// of its outgoing row and incoming column in the aggregated call-transition
// matrix (length 2n). These vectors are the clustering features of
// Algorithm 1.
#pragma once

#include <vector>

#include "src/analysis/context.hpp"
#include "src/linalg/matrix.hpp"

namespace cmarkov::reduction {

struct CallVectors {
  /// External call symbols, one per row of `features`.
  std::vector<analysis::CallSymbol> calls;
  /// |calls| x 2n feature matrix (row ‖ column per Definition 6).
  Matrix features;
};

/// Extracts call-transition vectors for every external call in `matrix`.
/// ENTRY/EXIT participate in the feature dimensions (they are columns of
/// the matrix) but get no row of their own.
CallVectors build_call_vectors(const analysis::CallTransitionMatrix& matrix);

}  // namespace cmarkov::reduction
