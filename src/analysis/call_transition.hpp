// Definitions 4 & 5 / Equation 2: the call-transition matrix of a single
// function.
//
// The matrix rows/columns are the function's context-sensitive calls plus
// virtual ENTRY/EXIT symbols. Cell (a, b) is the expected number of
// "call a, then the next call is b" events per invocation of the function:
//     P^cf_ab = P^r_a * P[first call after a is b]
// The second factor sums conditional edge probabilities over all paths from
// a to b that pass through no other call node (Equation 2).
//
// Internal (MiniC-to-MiniC) calls appear as placeholder symbols that the
// aggregation step (aggregation.hpp) resolves by inlining callee matrices.
#pragma once

#include "src/analysis/branch_heuristics.hpp"
#include "src/analysis/context.hpp"
#include "src/analysis/reachability.hpp"
#include "src/cfg/cfg.hpp"

namespace cmarkov::analysis {

/// Which branch-probability heuristic the analysis uses (Definition 2).
enum class BranchHeuristicKind {
  kUniform,     ///< the paper's prototype choice: 0.5/0.5
  kLoopBiased,  ///< Ball-Larus-style: loop-entering edges preferred
};

/// Instantiates the heuristic for a kind. `loop_probability` only affects
/// kLoopBiased.
std::unique_ptr<BranchHeuristic> make_branch_heuristic(
    BranchHeuristicKind kind, double loop_probability = 0.8);

struct FunctionMatrixOptions {
  /// Which external calls are observable; filtered-out calls are treated as
  /// ordinary non-call nodes (a syscall model does not see libcalls).
  CallFilter filter = CallFilter::kAll;
  /// Loop treatment for reachability and next-call propagation.
  PropagationMode mode = PropagationMode::kAcyclicCut;
  std::size_t max_iterations = 500;
  double tolerance = 1e-12;
  /// Branch-probability heuristic used by pipeline-level entry points
  /// (run_static_pipeline, build_model); the lower-level functions that
  /// take an explicit BranchHeuristic ignore this field.
  BranchHeuristicKind heuristic = BranchHeuristicKind::kUniform;
  double loop_probability = 0.8;
};

/// Computes the call-transition matrix of one function. The result contains
/// ENTRY(f) and EXIT(f) symbols, external symbols `name@f`, and internal
/// placeholder symbols for each distinct callee.
CallTransitionMatrix function_call_transitions(
    const cfg::FunctionCfg& cfg, const BranchHeuristic& heuristic,
    const FunctionMatrixOptions& options = {});

}  // namespace cmarkov::analysis
