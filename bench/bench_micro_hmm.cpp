// Microbenchmarks (google-benchmark): HMM kernel costs underlying the
// paper's performance notes — 15-call segment scoring (paper: 0.038 ms for
// the glibc CMarkov model) and the O(T S^2) Baum-Welch iteration that
// motivates state reduction.
#include <benchmark/benchmark.h>

#include <string>

#include "src/core/pipeline.hpp"
#include "src/hmm/trainer.hpp"
#include "src/obs/metrics_registry.hpp"
#include "src/obs/run_profile.hpp"
#include "src/hmm/forward_backward.hpp"
#include "src/hmm/random_init.hpp"
#include "src/hmm/viterbi.hpp"
#include "src/trace/segmenter.hpp"
#include "src/workload/testcase_generator.hpp"

namespace {

using namespace cmarkov;

hmm::Hmm model_with_states(std::size_t states) {
  Rng rng(states * 17 + 1);
  return hmm::randomly_initialized_hmm(states, states, rng);
}

hmm::ObservationSeq segment_for(const hmm::Hmm& model, std::size_t length) {
  Rng rng(99);
  hmm::ObservationSeq seq(length);
  for (auto& s : seq) s = rng.index(model.num_symbols());
  return seq;
}

void BM_SegmentScoring(benchmark::State& state) {
  const auto model = model_with_states(static_cast<std::size_t>(state.range(0)));
  const auto segment = segment_for(model, 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmm::sequence_log_likelihood(model, segment));
  }
  state.SetLabel("15-call segment");
}
BENCHMARK(BM_SegmentScoring)->Arg(32)->Arg(128)->Arg(372)->Arg(455);

void BM_ViterbiDecode(benchmark::State& state) {
  const auto model = model_with_states(static_cast<std::size_t>(state.range(0)));
  const auto segment = segment_for(model, 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmm::viterbi_decode(model, segment));
  }
}
BENCHMARK(BM_ViterbiDecode)->Arg(32)->Arg(128);

void BM_BaumWelchIteration(benchmark::State& state) {
  const auto model = model_with_states(static_cast<std::size_t>(state.range(0)));
  std::vector<hmm::ObservationSeq> data;
  for (int i = 0; i < 50; ++i) data.push_back(segment_for(model, 15));
  hmm::TrainingOptions options;
  options.max_iterations = 1;
  options.min_improvement = -1.0;
  for (auto _ : state) {
    hmm::Trainer trainer(model, options);
    trainer.fit(data);
    benchmark::DoNotOptimize(trainer.model());
  }
  state.SetLabel("50 segments x 1 iteration");
}
// The O(T S^2) scaling the Table II reduction exploits: 3x fewer states ->
// ~9x faster iterations.
BENCHMARK(BM_BaumWelchIteration)->Arg(40)->Arg(120)->Arg(360);

void BM_BaumWelchIterationThreads(benchmark::State& state) {
  const auto model = model_with_states(static_cast<std::size_t>(state.range(0)));
  std::vector<hmm::ObservationSeq> data;
  for (int i = 0; i < 50; ++i) data.push_back(segment_for(model, 15));
  hmm::TrainingOptions options;
  options.max_iterations = 1;
  options.min_improvement = -1.0;
  options.exec.threads = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    hmm::Trainer trainer(model, options);
    trainer.fit(data);
    benchmark::DoNotOptimize(trainer.model());
  }
  state.SetLabel("50 segments x 1 iteration, " +
                 std::to_string(state.range(1)) + " threads");
}
// Thread scaling of the parallel E-step at the paper's two largest model
// sizes (glibc CMarkov: 372 states). Re-estimation stays sequential, so
// expect sub-linear but substantial speedup on multi-core hosts; results
// are bit-identical at every thread count.
BENCHMARK(BM_BaumWelchIterationThreads)
    ->Args({128, 1})
    ->Args({128, 2})
    ->Args({128, 4})
    ->Args({128, 8})
    ->Args({372, 1})
    ->Args({372, 2})
    ->Args({372, 4})
    ->Args({372, 8});

void BM_BaumWelchIterationMetrics(benchmark::State& state) {
  const auto model = model_with_states(static_cast<std::size_t>(state.range(0)));
  std::vector<hmm::ObservationSeq> data;
  for (int i = 0; i < 50; ++i) data.push_back(segment_for(model, 15));
  obs::MetricsRegistry registry;
  obs::RunProfile profile("bench");
  hmm::TrainingOptions options;
  options.max_iterations = 1;
  options.min_improvement = -1.0;
  options.exec.threads = static_cast<std::size_t>(state.range(1));
  options.exec.metrics = &registry;
  options.exec.profile = &profile;
  for (auto _ : state) {
    hmm::Trainer trainer(model, options);
    trainer.fit(data);
    benchmark::DoNotOptimize(trainer.model());
  }
  state.SetLabel("50 segments x 1 iteration, " +
                 std::to_string(state.range(1)) +
                 " threads, metrics+profile on");
}
// Same workload as BM_BaumWelchIterationThreads but with the observability
// sinks attached — the delta between the two is the instrumentation
// overhead (budget: within 3%; BENCH_obs.json records the measurement).
BENCHMARK(BM_BaumWelchIterationMetrics)
    ->Args({128, 1})
    ->Args({128, 4})
    ->Args({372, 1})
    ->Args({372, 4});

void BM_StaticPipeline(benchmark::State& state) {
  const workload::ProgramSuite suite = workload::make_bash_suite();
  core::PipelineConfig config;
  config.filter = analysis::CallFilter::kLibcalls;
  config.clustering.min_calls_for_reduction = 0;
  for (auto _ : state) {
    Rng rng(1);
    benchmark::DoNotOptimize(
        core::run_static_pipeline(suite.module(), config, rng));
  }
  state.SetLabel("bash libcall, clustered");
}
BENCHMARK(BM_StaticPipeline);

void BM_TraceCollection(benchmark::State& state) {
  const workload::ProgramSuite suite = workload::make_nginx_suite();
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::collect_traces(suite, 5, 3));
  }
  state.SetLabel("nginx, 5 test cases");
}
BENCHMARK(BM_TraceCollection);

}  // namespace

BENCHMARK_MAIN();
