// Plain-text persistence for trained detectors: HMM parameters, alphabet,
// threshold and the config bits needed to re-encode traces. The format is a
// line-oriented key/value + matrix dump, versioned for forward evolution.
#pragma once

#include <iosfwd>
#include <string>

#include "src/core/detector.hpp"

namespace cmarkov::core {

/// Serializes a detector (trained or not) to a stream / file.
void save_detector(std::ostream& out, const Detector& detector);
void save_detector_file(const std::string& path, const Detector& detector);

/// Loads a detector. Throws std::runtime_error on malformed input or
/// version mismatch; messages name the offending key, matrix tag, or
/// value (a serving registry must reject bad model files loudly).
Detector load_detector(std::istream& in);
Detector load_detector_file(const std::string& path);

}  // namespace cmarkov::core
