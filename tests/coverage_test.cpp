// Unit tests for branch/line coverage accounting (Table I measurements).
#include <gtest/gtest.h>

#include "src/cfg/cfg_builder.hpp"
#include "src/ir/module.hpp"
#include "src/trace/coverage.hpp"
#include "src/trace/interpreter.hpp"

namespace cmarkov::trace {
namespace {

cfg::ModuleCfg lower(const char* source) {
  return cfg::build_module_cfg(ir::ProgramModule::from_source("t", source));
}

TEST(CoverageTest, NoBranchesMeansFullBranchCoverage) {
  const auto module = lower("fn main() { var x = 1; }");
  CoverageTracker tracker(module);
  const CoverageSummary summary = tracker.summary();
  EXPECT_EQ(summary.branch_edges_total, 0u);
  EXPECT_DOUBLE_EQ(summary.branch_coverage(), 1.0);
}

TEST(CoverageTest, BranchTotalsCountBothDirections) {
  const auto module = lower(R"(
fn main() {
  if (input()) { } else { }
  while (input()) { }
}
)");
  CoverageTracker tracker(module);
  EXPECT_EQ(tracker.summary().branch_edges_total, 4u);
}

TEST(CoverageTest, SingleRunCoversOneBranchDirection) {
  const auto module = lower(R"(
fn main() {
  if (input() > 5) { sys("a"); } else { sys("b"); }
}
)");
  const Interpreter interpreter(module);
  SeededEnvironment environment(1);
  CoverageTracker tracker(module);
  interpreter.run(std::vector<std::int64_t>{9}, environment, &tracker);
  const auto summary = tracker.summary();
  EXPECT_EQ(summary.branch_edges_covered, 1u);
  EXPECT_DOUBLE_EQ(summary.branch_coverage(), 0.5);
}

TEST(CoverageTest, BothDirectionsAccumulateAcrossRuns) {
  const auto module = lower(R"(
fn main() {
  if (input() > 5) { sys("a"); } else { sys("b"); }
}
)");
  const Interpreter interpreter(module);
  SeededEnvironment environment(1);
  CoverageTracker tracker(module);
  interpreter.run(std::vector<std::int64_t>{9}, environment, &tracker);
  interpreter.run(std::vector<std::int64_t>{1}, environment, &tracker);
  EXPECT_DOUBLE_EQ(tracker.summary().branch_coverage(), 1.0);
}

TEST(CoverageTest, LineCoverageGrowsWithExecution) {
  const auto module = lower(R"(
fn main() {
  var x = input();
  if (x > 50) {
    sys("rare");
    sys("rare2");
  }
  sys("common");
}
)");
  const Interpreter interpreter(module);
  SeededEnvironment environment(1);
  CoverageTracker tracker(module);
  interpreter.run(std::vector<std::int64_t>{10}, environment, &tracker);
  const auto partial = tracker.summary();
  EXPECT_LT(partial.line_coverage(), 1.0);
  EXPECT_GT(partial.line_coverage(), 0.0);

  interpreter.run(std::vector<std::int64_t>{99}, environment, &tracker);
  const auto full = tracker.summary();
  EXPECT_GT(full.lines_covered, partial.lines_covered);
  EXPECT_DOUBLE_EQ(full.line_coverage(), 1.0);
}

TEST(CoverageTest, UnknownFunctionMarksAreIgnored) {
  const auto module = lower("fn main() { }");
  CoverageTracker tracker(module);
  tracker.on_block("ghost", 0);
  tracker.on_block("main", 99);
  EXPECT_EQ(tracker.summary().lines_covered, 0u);
}

TEST(CoverageTest, MultiFunctionTotalsAggregate) {
  const auto module = lower(R"(
fn a() { if (input()) { } }
fn b() { if (input()) { } }
fn main() { a(); b(); }
)");
  CoverageTracker tracker(module);
  EXPECT_EQ(tracker.summary().branch_edges_total, 4u);
  EXPECT_GT(tracker.summary().lines_total, 0u);
}

}  // namespace
}  // namespace cmarkov::trace
