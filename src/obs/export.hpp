// Exporters for the observability layer:
//  - to_prometheus(): Prometheus text exposition (one scrape page),
//  - to_kv_line():    the versioned single-line `v=1 key=value ...` schema
//                     used by the cmarkovd STATS/METRICS protocol verbs,
//  - run_profile_json(): the machine-readable profile behind
//                     `cmarkov train --profile-json`.
// All output is deterministic for a given registry/profile state (sorted
// names, locale-independent number formatting) so golden-file tests can
// pin the formats.
#pragma once

#include <string>

#include "src/obs/metrics_registry.hpp"
#include "src/obs/run_profile.hpp"

namespace cmarkov::obs {

/// Version stamped into every to_kv_line() reply (`v=1 ...`). Bump when a
/// key changes meaning; adding keys is backward compatible.
inline constexpr int kKvSchemaVersion = 1;

/// Prometheus text exposition: `# TYPE` header per metric, histograms
/// expanded to cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
std::string to_prometheus(const MetricsRegistry& registry);

/// One-line `v=1 name=value ...` rendering of the registry, names sorted;
/// histograms contribute `<name>_count/_sum/_p50/_p99` keys.
std::string to_kv_line(const MetricsRegistry& registry);

/// JSON document {"schema":"cmarkov.profile.v1", "total_seconds":...,
/// "profile":{span tree}, "metrics":{...}}; `registry` may be null to omit
/// the metrics section.
std::string run_profile_json(const RunProfile& profile,
                             const MetricsRegistry* registry);

/// Locale-independent shortest-ish rendering used by all exporters
/// (printf %.10g, so "1.5" not "1.500000").
std::string format_metric_value(double value);

}  // namespace cmarkov::obs
