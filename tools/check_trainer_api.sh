#!/usr/bin/env sh
# Guards the PR-9 training API redesign: all training goes through the
# stateful hmm::Trainer (fit / partial_fit / publish). The free function
# baum_welch_train lived on for exactly one PR as a deprecated delegating
# shim and is now gone — the symbol may not appear anywhere (declaration,
# definition, or call site), so it cannot quietly come back.
#
# Wired into CTest as `check_trainer_api` (label: train).
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

# The trailing guard keeps identifiers that merely share the prefix (the
# "baum_welch_training" benchmark label) out of scope: only the exact
# symbol is forbidden.
bad="$(grep -rnE 'baum_welch_train([^A-Za-z0-9_]|$)' \
  "$repo_root/src" "$repo_root/tests" "$repo_root/tools" \
  "$repo_root/bench" "$repo_root/examples" \
  --include='*.hpp' --include='*.h' --include='*.cpp' \
  | grep -v "^$repo_root/tools/check_trainer_api.sh:" || true)"

if [ -n "$bad" ]; then
  echo "error: train through hmm::Trainer (fit/partial_fit); the removed" >&2
  echo "baum_welch_train entry point may not reappear:" >&2
  echo "$bad" >&2
  exit 1
fi
echo "ok: baum_welch_train is gone for good (hmm::Trainer everywhere)"
