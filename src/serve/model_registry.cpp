#include "src/serve/model_registry.hpp"

#include <filesystem>
#include <functional>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "src/core/model_io.hpp"
#include "src/util/logging.hpp"

namespace cmarkov::serve {

namespace {

/// Content identity of a detector: a hash over its serialized form, stable
/// across processes (model_io's text format is deterministic). Computed
/// once per add — the reload path, never the scoring path.
std::uint64_t fingerprint_detector(const core::Detector& detector) {
  std::ostringstream out;
  core::save_detector(out, detector);
  const std::string text = out.str();
  // FNV-1a, fixed parameters — std::hash is not stable across libraries.
  std::uint64_t hash = 1469598103934665603ull;
  for (const unsigned char c : text) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace

void ModelRegistry::add(const std::string& name, core::Detector detector) {
  add_shared(name,
             std::make_shared<const core::Detector>(std::move(detector)));
}

void ModelRegistry::add_shared(
    const std::string& name,
    std::shared_ptr<const core::Detector> detector) {
  if (!detector) {
    throw std::invalid_argument("ModelRegistry: null detector for '" + name +
                                "'");
  }
  if (!detector->trained()) {
    throw std::invalid_argument("ModelRegistry: detector '" + name +
                                "' is not trained");
  }
  const std::uint64_t fingerprint = fingerprint_detector(*detector);
  // Compile the scoring image outside the lock — kernel compilation walks
  // the full model, and readers must never block on it.
  auto kernel = core::ScoringKernel::compile(*detector);
  const std::unique_lock lock(mu_);
  Entry& entry = models_[name];
  if (entry.detector != nullptr) {
    // Hot swap: retire the outgoing references under the pre-bump epoch so
    // reclaim_retired can tell late readers of the old version apart from
    // readers that resolved after the swap. The kernel rides along: it is
    // only ever reached through the version that owns it.
    retired_.push_back(
        {std::move(entry.detector), std::move(entry.kernel),
         reload_epoch_.load(std::memory_order_relaxed)});
  }
  entry.detector = std::move(detector);
  entry.kernel = std::move(kernel);
  entry.version += 1;
  entry.fingerprint = fingerprint;
  reload_epoch_.fetch_add(1, std::memory_order_release);
}

void ModelRegistry::load_file(const std::string& name,
                              const std::string& path) {
  add(name, core::load_detector_file(path));
  log_info() << "registry: loaded model '" << name << "' from " << path;
}

std::size_t ModelRegistry::load_directory(const std::string& dir) {
  std::size_t loaded = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".model") {
      continue;
    }
    load_file(entry.path().stem().string(), entry.path().string());
    ++loaded;
  }
  return loaded;
}

std::shared_ptr<const core::Detector> ModelRegistry::get(
    const std::string& name) const {
  const std::shared_lock lock(mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second.detector;
}

std::shared_ptr<const core::Detector> ModelRegistry::require(
    const std::string& name) const {
  auto detector = get(name);
  if (!detector) {
    throw std::invalid_argument("ModelRegistry: no model named '" + name +
                                "'");
  }
  return detector;
}

VersionedModel ModelRegistry::get_versioned(const std::string& name) const {
  const std::shared_lock lock(mu_);
  const auto it = models_.find(name);
  if (it == models_.end()) return {};
  return {it->second.detector, it->second.kernel, it->second.version,
          it->second.fingerprint};
}

VersionedModel ModelRegistry::require_versioned(
    const std::string& name) const {
  VersionedModel model = get_versioned(name);
  if (!model.detector) {
    throw std::invalid_argument("ModelRegistry: no model named '" + name +
                                "'");
  }
  return model;
}

std::vector<std::string> ModelRegistry::names() const {
  const std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, entry] : models_) out.push_back(name);
  return out;
}

std::size_t ModelRegistry::size() const {
  const std::shared_lock lock(mu_);
  return models_.size();
}

std::size_t ModelRegistry::reclaim_retired(std::uint64_t min_active_epoch) {
  const std::unique_lock lock(mu_);
  std::size_t reclaimed = 0;
  for (std::size_t i = 0; i < retired_.size();) {
    if (retired_[i].epoch < min_active_epoch) {
      retired_[i] = std::move(retired_.back());
      retired_.pop_back();
      ++reclaimed;
    } else {
      ++i;
    }
  }
  return reclaimed;
}

std::size_t ModelRegistry::retired_count() const {
  const std::shared_lock lock(mu_);
  return retired_.size();
}

std::size_t ModelRegistry::kernel_image_bytes() const {
  const std::shared_lock lock(mu_);
  std::size_t total = 0;
  for (const auto& [name, entry] : models_) {
    if (entry.kernel != nullptr) total += entry.kernel->image_bytes();
  }
  return total;
}

}  // namespace cmarkov::serve
