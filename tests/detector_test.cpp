// Tests for the public Detector facade: build/train/classify lifecycle and
// detection of context-violating attacks.
#include <gtest/gtest.h>

#include <cmath>

#include "src/attack/exploit_driver.hpp"
#include "src/core/detector.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::core {
namespace {

struct Fixture {
  workload::ProgramSuite suite = workload::make_gzip_suite();
  workload::TraceCollection collection =
      workload::collect_traces(suite, 30, 77);
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

DetectorConfig quick_config() {
  DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  config.training.max_iterations = 8;
  config.target_fp = 0.01;
  return config;
}

TEST(DetectorTest, BuildProducesUntrainedModel) {
  const Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  EXPECT_FALSE(detector.trained());
  EXPECT_GT(detector.num_states(), 0u);
  EXPECT_NO_THROW(detector.model().validate());
  EXPECT_GT(detector.build_timings().total("probability"), 0.0);
}

TEST(DetectorTest, ClassifyBeforeTrainingThrows) {
  const Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  EXPECT_THROW(detector.classify(fixture().collection.traces.front()),
               std::logic_error);
}

TEST(DetectorTest, TrainCalibratesThreshold) {
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  const auto report = detector.train(fixture().collection.traces);
  EXPECT_TRUE(detector.trained());
  EXPECT_GE(report.iterations, 1u);
  EXPECT_TRUE(std::isfinite(detector.threshold()));
}

TEST(DetectorTest, NormalTracesMostlyPass) {
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  detector.train(fixture().collection.traces);
  const auto fresh = workload::collect_traces(fixture().suite, 10, 555);
  std::size_t flagged_segments = 0;
  std::size_t total_segments = 0;
  for (const auto& trace : fresh.traces) {
    const TraceVerdict verdict = detector.classify(trace);
    flagged_segments += verdict.flagged_segments;
    total_segments += verdict.total_segments;
  }
  ASSERT_GT(total_segments, 0u);
  // Segment-level FP should be in the vicinity of the calibration target.
  EXPECT_LT(static_cast<double>(flagged_segments) /
                static_cast<double>(total_segments),
            0.1);
}

TEST(DetectorTest, DetectsRopAttacks) {
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  detector.train(fixture().collection.traces);
  const auto attacks =
      attack::build_attack_traces(fixture().suite, attack::gzip_payloads(),
                                  1234);
  ASSERT_FALSE(attacks.empty());
  for (const auto& attack : attacks) {
    const TraceVerdict verdict = detector.classify(attack.trace);
    EXPECT_TRUE(verdict.anomalous) << attack.payload_name;
    // At least one segment should be impossible (unknown context).
    bool unknown = false;
    for (const auto& sv : verdict.segments) {
      unknown = unknown || sv.unknown_symbol;
    }
    EXPECT_TRUE(unknown) << attack.payload_name;
  }
}

TEST(DetectorTest, ScoreReturnsMinSegmentLogLikelihood) {
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  detector.train(fixture().collection.traces);
  const auto& trace = fixture().collection.traces.front();
  const TraceVerdict verdict = detector.classify(trace);
  EXPECT_DOUBLE_EQ(detector.score(trace), verdict.min_log_likelihood);
}

TEST(DetectorTest, ThresholdOverrideChangesVerdicts) {
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  detector.train(fixture().collection.traces);
  const auto& trace = fixture().collection.traces.front();
  detector.set_threshold(-std::numeric_limits<double>::infinity());
  EXPECT_FALSE(detector.classify(trace).anomalous);
  detector.set_threshold(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(detector.classify(trace).anomalous);
}

TEST(DetectorTest, ContextInsensitiveVariantBuilds) {
  DetectorConfig config = quick_config();
  config.pipeline.context_sensitive = false;
  Detector detector = Detector::build(fixture().suite.module(), config);
  detector.train(fixture().collection.traces);
  const auto verdict = detector.classify(fixture().collection.traces[1]);
  EXPECT_GT(verdict.total_segments, 0u);
}

TEST(DetectorTest, ExplainSegmentAttributesStates) {
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  detector.train(fixture().collection.traces);
  ASSERT_FALSE(detector.state_labels().empty());

  // A known-good segment decodes to a full path of labeled states.
  const auto& trace = fixture().collection.traces.front();
  hmm::ObservationSeq encoded;
  for (const auto& event : trace.events) {
    if (event.kind != ir::CallKind::kSyscall) continue;
    const auto id = detector.alphabet().find(
        hmm::encode_observation(event.name, event.caller,
                                hmm::ObservationEncoding::kContextSensitive));
    ASSERT_TRUE(id.has_value());
    encoded.push_back(*id);
    if (encoded.size() == 15) break;
  }
  ASSERT_EQ(encoded.size(), 15u);
  const auto path = detector.explain_segment(encoded);
  ASSERT_EQ(path.size(), 15u);
  // The decoded states should mostly be the states whose labels match the
  // observations (near-deterministic emissions after static init).
  std::size_t matching = 0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (path[i] == detector.alphabet().name(encoded[i])) ++matching;
  }
  EXPECT_GT(matching, 10u);

  // Unknown observations yield an empty explanation.
  hmm::ObservationSeq unknown = encoded;
  unknown[3] = detector.alphabet().size();
  EXPECT_TRUE(detector.explain_segment(unknown).empty());
}

TEST(DetectorTest, TrainOnEmptyTracesThrows) {
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  EXPECT_THROW(detector.train({}), std::invalid_argument);
}

TEST(DetectorTest, DynamicOnlySymbolsExtendEmission) {
  // Train with traces containing symbols the static model never saw: the
  // emission matrix must widen to cover them.
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  const std::size_t before = detector.model().num_symbols();
  auto traces = fixture().collection.traces;
  trace::CallEvent weird;
  weird.kind = ir::CallKind::kSyscall;
  weird.name = "exotic_syscall";
  weird.caller = "main";
  for (int i = 0; i < 20; ++i) traces[0].events.push_back(weird);
  detector.train(traces);
  EXPECT_GT(detector.model().num_symbols(), before);
  EXPECT_NO_THROW(detector.model().validate());
}

}  // namespace
}  // namespace cmarkov::core
