// CmarkovService — cmarkovd's engine: a model registry plus a sharded
// session manager behind the line protocol's front door. Transports (stdin,
// TCP, in-memory test harnesses) each run one ProtocolSession; the service
// itself is transport-agnostic.
#pragma once

#include <iosfwd>

#include "src/serve/model_registry.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/session_manager.hpp"

namespace cmarkov::serve {

class CmarkovService {
 public:
  explicit CmarkovService(ServiceConfig config = {});

  /// Load models here before (or while) sessions connect; the registry is
  /// thread-safe.
  ModelRegistry& registry() { return registry_; }
  const ModelRegistry& registry() const { return registry_; }

  SessionManager& sessions() { return sessions_; }
  const SessionManager& sessions() const { return sessions_; }

  ServiceMetrics metrics() const { return sessions_.metrics(); }

  /// Registry of cmarkov_serve_* instruments (gauges refreshed); render
  /// with obs::to_kv_line or obs::to_prometheus.
  const obs::MetricsRegistry& metrics_registry() {
    return sessions_.metrics_registry();
  }

  /// Runs one protocol conversation over a line stream (the stdio
  /// front-end): reads request lines from `in`, writes one response line
  /// per request to `out` (flushed per line). Returns after BYE or when
  /// `in` reaches end of stream.
  void serve_stream(std::istream& in, std::ostream& out);

 private:
  ModelRegistry registry_;
  SessionManager sessions_;
};

}  // namespace cmarkov::serve
