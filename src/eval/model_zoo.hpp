// The four compared detection models (Section V-A):
//   CMarkov         — static init, context-sensitive observations,
//                     clustering-based state reduction;
//   STILO           — static init, context-free observations;
//   Regular-context — random init, context-sensitive observations;
//   Regular-basic   — random init, context-free observations (the classic
//                     Warrender-style HMM detector).
#pragma once

#include <string>
#include <vector>

#include "src/analysis/aggregation.hpp"
#include "src/attack/abnormal_s.hpp"
#include "src/hmm/alphabet.hpp"
#include "src/hmm/hmm.hpp"
#include "src/hmm/random_init.hpp"
#include "src/hmm/static_init.hpp"
#include "src/reduction/cluster_calls.hpp"
#include "src/trace/event.hpp"
#include "src/util/exec_context.hpp"
#include "src/workload/program_suite.hpp"

namespace cmarkov::eval {

/// kRegularSite and kRegularDeep are extensions beyond the paper's four
/// models: random init with site-granular (program-counter) respectively
/// 2-level stack-context observations, testing the paper's claim that
/// context finer than the immediate caller adds no detection capability
/// while inflating the model.
enum class ModelKind {
  kCMarkov,
  kStilo,
  kRegularContext,
  kRegularBasic,
  kRegularSite,
  kRegularDeep,
};

std::string model_kind_name(ModelKind kind);

/// Context-sensitive kinds observe name@caller; kRegularSite observes
/// name@caller+site.
hmm::ObservationEncoding encoding_of(ModelKind kind);

/// Static kinds are initialized from program analysis.
bool is_statically_initialized(ModelKind kind);

/// The paper's four compared models (Figures 2-5).
const std::vector<ModelKind>& all_model_kinds();

/// The four paper models plus the site-sensitive extension.
const std::vector<ModelKind>& extended_model_kinds();

struct ModelBuildOptions {
  analysis::CallFilter filter = analysis::CallFilter::kLibcalls;
  /// Execution context: exec.threads drives the clustering phase (0 = one
  /// per hardware core) and is authoritative over clustering.exec. Built
  /// models are identical at any value.
  ExecContext exec;
  /// Static-analysis controls (propagation mode, etc.).
  analysis::FunctionMatrixOptions matrix;
  /// Clustering controls for CMarkov (min_calls_for_reduction gates it).
  reduction::ClusteringOptions clustering;
  hmm::StaticInitOptions static_init;
  hmm::RandomInitOptions random_init;
};

/// A built (untrained) model plus everything needed to encode traces.
struct BuiltModel {
  ModelKind kind = ModelKind::kCMarkov;
  analysis::CallFilter filter = analysis::CallFilter::kLibcalls;
  hmm::ObservationEncoding encoding =
      hmm::ObservationEncoding::kContextSensitive;
  hmm::Hmm hmm;
  hmm::Alphabet alphabet;
  /// Distinct static calls before clustering (Table II column).
  std::size_t static_calls = 0;
  /// Hidden-state count of the model.
  std::size_t num_states = 0;
  /// Hidden-state diagnostics (static kinds only).
  std::vector<std::string> state_labels;

  /// Encodes a symbolized trace without extending the alphabet; unknown
  /// observations map to an id the model cannot emit.
  hmm::ObservationSeq encode(const trace::Trace& trace) const;

  /// Encodes an event segment the same way.
  hmm::ObservationSeq encode(const attack::EventSegment& segment) const;

  /// log P(segment | model); -infinity when any observation is unknown.
  double score(const hmm::ObservationSeq& segment) const;
};

/// Builds one untrained model. Static kinds run the full analysis pipeline
/// on the suite; regular kinds size themselves from the training traces
/// (their alphabet and state count are the distinct observed calls, per the
/// paper). The alphabet always covers the union of trace and static
/// symbols.
BuiltModel build_model(ModelKind kind, const workload::ProgramSuite& suite,
                       const std::vector<trace::Trace>& training_traces,
                       const ModelBuildOptions& options, Rng& rng);

}  // namespace cmarkov::eval
