// cmarkov::core::Detector — the library's public facade.
//
// Lifecycle mirrors the paper's two phases:
//   1. Detector::build(program)     — static analysis, state reduction, HMM
//                                     initialization;
//   2. detector.train(traces)       — Baum-Welch on normal traces (20%
//                                     termination split) and threshold
//                                     calibration at a target FP;
// then detector.classify(trace) flags any execution whose 15-call segments
// fall below the calibrated probability threshold (or contain calls the
// model has never seen in that calling context).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/core/pipeline.hpp"
#include "src/hmm/baum_welch.hpp"
#include "src/hmm/forward_backward.hpp"
#include "src/obs/trace/decision_record.hpp"
#include "src/trace/event.hpp"
#include "src/trace/segmenter.hpp"

namespace cmarkov::core {

struct DetectorConfig {
  PipelineConfig pipeline;
  hmm::TrainingOptions training;
  trace::SegmentOptions segments;
  /// Calibration: the threshold is set so this fraction of held-out normal
  /// segments would be (wrongly) flagged.
  double target_fp = 0.01;
  /// Fraction of unique training segments held out for both Baum-Welch
  /// termination and threshold calibration.
  double holdout_fraction = 0.2;
  std::uint64_t seed = 1;
};

struct SegmentVerdict {
  double log_likelihood = 0.0;
  bool flagged = false;
  /// True when the segment contains an observation the model cannot emit
  /// (unknown call or unknown calling context).
  bool unknown_symbol = false;
};

struct TraceVerdict {
  bool anomalous = false;
  std::size_t total_segments = 0;
  std::size_t flagged_segments = 0;
  /// Lowest segment log-likelihood seen in the trace.
  double min_log_likelihood = 0.0;
  std::vector<SegmentVerdict> segments;
};

class Detector {
 public:
  /// Phase 1: builds the statically initialized model from a program.
  static Detector build(const ir::ProgramModule& program,
                        DetectorConfig config = {});

  /// Reassembles a detector from persisted parts (see model_io.hpp).
  static Detector from_parts(DetectorConfig config, hmm::Hmm model,
                             hmm::Alphabet alphabet, double threshold,
                             bool trained);

  /// Phase 2: trains on symbolized normal traces and calibrates the
  /// threshold. Throws if the traces yield no segments.
  hmm::TrainingReport train(const std::vector<trace::Trace>& normal_traces);

  /// Scores one segment (alphabet-frozen encoding).
  SegmentVerdict score_segment(const hmm::ObservationSeq& segment) const;

  /// Scores one segment and exposes the forward pass (for decision
  /// tracing). Same cost as the plain overload — the likelihood already
  /// requires the full forward recursion. For segments with unknown
  /// observations (which the forward pass cannot consume) `forward` comes
  /// back empty with impossible=true and log_likelihood=-infinity.
  SegmentVerdict score_segment(const hmm::ObservationSeq& segment,
                               hmm::ForwardResult* forward) const;

  /// Assembles the `cmarkov.decision.v1` audit record for a segment scored
  /// via the forward-exposing overload: per-symbol log c_t contributions
  /// (summing exactly to verdict.log_likelihood), argmax hidden states,
  /// unknown-call marks, and the threshold margin. session / trace_id /
  /// window_index / alarm / sampled are left for the caller to fill.
  obs::DecisionRecord make_decision_record(
      const hmm::ObservationSeq& segment, const SegmentVerdict& verdict,
      const hmm::ForwardResult& forward) const;

  /// Viterbi attribution: the most likely hidden-state path for a segment,
  /// rendered with the static state labels ("read@fill_window",
  /// "cluster{...}") when available, "state<i>" otherwise. Segments with
  /// unknown observations return an empty path (no state explains them —
  /// that absence is itself the explanation).
  std::vector<std::string> explain_segment(
      const hmm::ObservationSeq& segment) const;

  /// Classifies a full symbolized trace.
  TraceVerdict classify(const trace::Trace& trace) const;

  /// Lowest segment log-likelihood of a trace (quick score).
  double score(const trace::Trace& trace) const;

  bool trained() const { return trained_; }
  double threshold() const { return threshold_; }
  void set_threshold(double threshold) { threshold_ = threshold; }

  const hmm::Hmm& model() const { return hmm_; }
  const hmm::Alphabet& alphabet() const { return alphabet_; }
  const DetectorConfig& config() const { return config_; }

  /// Hidden-state count (after clustering, for CMarkov configs).
  std::size_t num_states() const { return hmm_.num_states(); }

  /// Static-analysis phase timings (empty for from_parts detectors).
  const PhaseTimer& build_timings() const { return build_timings_; }

  /// Human-readable hidden-state labels (empty for from_parts detectors).
  const std::vector<std::string>& state_labels() const {
    return state_labels_;
  }

 private:
  Detector() = default;

  hmm::ObservationSeq encode(const trace::Trace& trace) const;

  DetectorConfig config_;
  hmm::Hmm hmm_;
  hmm::Alphabet alphabet_;
  double threshold_ = 0.0;
  bool trained_ = false;
  PhaseTimer build_timings_;
  std::vector<std::string> state_labels_;
};

}  // namespace cmarkov::core
