// Unit tests for the worker pool and the deterministic chunking helpers
// that underpin the parallel training engine.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/util/parallel.hpp"

namespace cmarkov {
namespace {

TEST(ResolveNumThreadsTest, ZeroMeansHardwareConcurrency) {
  EXPECT_GE(resolve_num_threads(0), 1u);
  EXPECT_EQ(resolve_num_threads(1), 1u);
  EXPECT_EQ(resolve_num_threads(7), 7u);
}

TEST(WorkerPoolTest, ExecutesEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 5u}) {
    WorkerPool pool(threads);
    std::vector<std::atomic<int>> hits(100);
    pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                   << " threads";
    }
  }
}

TEST(WorkerPoolTest, EmptyRangeIsNoOp) {
  WorkerPool pool(4);
  bool called = false;
  pool.run(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(WorkerPoolTest, MoreThreadsThanItems) {
  WorkerPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPoolTest, ReusableAcrossRuns) {
  WorkerPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 20; ++round) {
    pool.run(10, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200);
}

TEST(WorkerPoolTest, LowestIndexExceptionWins) {
  WorkerPool pool(4);
  for (int round = 0; round < 5; ++round) {
    try {
      pool.run(50, [&](std::size_t i) {
        if (i % 10 == 3) {
          throw std::runtime_error("item " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "item 3");
    }
    // The pool stays usable after a throwing run.
    std::atomic<int> count{0};
    pool.run(7, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 7);
  }
}

TEST(WorkerPoolTest, SingleThreadRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const auto caller = std::this_thread::get_id();
  pool.run(4, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelForTest, CoversRangeAtAnyThreadCount) {
  for (std::size_t threads : {1u, 2u, 6u}) {
    std::vector<std::atomic<int>> hits(37);
    parallel_for(threads, hits.size(),
                 [&](std::size_t i) { hits[i].fetch_add(1); });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(4, 10,
                   [](std::size_t i) {
                     if (i == 2) throw std::invalid_argument("boom");
                   }),
      std::invalid_argument);
}

TEST(ChunkingTest, GeometryCoversEveryItemOnce) {
  for (std::size_t count : {0u, 1u, 63u, 64u, 65u, 200u}) {
    const std::size_t chunks = chunk_count(count, 64);
    std::vector<int> seen(count, 0);
    for (std::size_t c = 0; c < chunks; ++c) {
      const ChunkRange range = chunk_range(count, 64, c);
      EXPECT_LE(range.begin, range.end);
      EXPECT_LE(range.end, count);
      for (std::size_t i = range.begin; i < range.end; ++i) seen[i] += 1;
    }
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(seen[i], 1) << "count " << count << " item " << i;
    }
  }
  EXPECT_EQ(chunk_count(0, 64), 0u);
  EXPECT_EQ(chunk_count(64, 64), 1u);
  EXPECT_EQ(chunk_count(65, 64), 2u);
}

TEST(ChunkingTest, GeometryIndependentOfThreadCount) {
  // The determinism argument: chunk boundaries are a pure function of
  // (count, chunk_size). Summing per-chunk partials in chunk order gives
  // the same floating-point result no matter how many workers computed
  // the partials.
  const std::size_t count = 1000;
  std::vector<double> values(count);
  for (std::size_t i = 0; i < count; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto chunked_sum = [&](std::size_t threads) {
    const std::size_t chunks = chunk_count(count, 64);
    std::vector<double> partial(chunks, 0.0);
    parallel_for(threads, chunks, [&](std::size_t c) {
      const ChunkRange range = chunk_range(count, 64, c);
      double sum = 0.0;
      for (std::size_t i = range.begin; i < range.end; ++i) sum += values[i];
      partial[c] = sum;
    });
    double total = 0.0;
    for (double p : partial) total += p;
    return total;
  };
  const double reference = chunked_sum(1);
  EXPECT_EQ(chunked_sum(2), reference);
  EXPECT_EQ(chunked_sum(8), reference);
}

}  // namespace
}  // namespace cmarkov
