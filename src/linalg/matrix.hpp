// Dense row-major matrix and the handful of operations the reduction and
// HMM layers need. Self-contained: the paper's pipeline (PCA + K-means +
// HMM parameter matrices) requires no external linear-algebra dependency.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace cmarkov {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer data; all rows must have equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Unchecked element access for hot loops.
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// View of row r.
  std::span<const double> row(std::size_t r) const;
  std::span<double> row(std::size_t r);

  /// Copy of column c.
  std::vector<double> col(std::size_t c) const;

  Matrix transposed() const;
  Matrix multiply(const Matrix& rhs) const;

  /// Sum of a row / column.
  double row_sum(std::size_t r) const;
  double col_sum(std::size_t c) const;

  /// Scales every row to sum to 1; rows that sum to zero become uniform.
  /// This is the normalization step used when turning an aggregated
  /// call-transition matrix into an HMM transition matrix.
  void normalize_rows();

  /// Max |a_ij - b_ij| between two equally sized matrices.
  double max_abs_diff(const Matrix& other) const;

  /// Frobenius norm.
  double frobenius_norm() const;

  bool operator==(const Matrix& other) const = default;

  /// Debug rendering with fixed precision.
  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean distance between two equal-length vectors.
double euclidean_distance(std::span<const double> a, std::span<const double> b);

/// Mean of each column; `m` must be non-empty.
std::vector<double> column_means(const Matrix& m);

/// Sample covariance matrix of the rows of `m` (columns are variables).
/// Requires at least 2 rows.
Matrix covariance(const Matrix& m);

}  // namespace cmarkov
