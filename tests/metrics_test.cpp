// Unit tests for Equations 3/4 and the derived ROC utilities.
#include <gtest/gtest.h>

#include <limits>

#include "src/eval/metrics.hpp"

namespace cmarkov::eval {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

ScoreSet separable_scores() {
  ScoreSet scores;
  scores.normal = {-1, -2, -3, -4, -5, -6, -7, -8, -9, -10};
  scores.abnormal = {-50, -60, -70, -80};
  return scores;
}

TEST(MetricsTest, FpRateIsFractionBelowThreshold) {
  const ScoreSet scores = separable_scores();
  EXPECT_DOUBLE_EQ(fp_rate(scores, -kInf), 0.0);
  EXPECT_DOUBLE_EQ(fp_rate(scores, kInf), 1.0);
  EXPECT_DOUBLE_EQ(fp_rate(scores, -5.5), 0.5);  // -6..-10 below
  // Strict inequality: a score exactly at T is not flagged (Eq. 4: P < T).
  EXPECT_DOUBLE_EQ(fp_rate(scores, -10.0), 0.0);
}

TEST(MetricsTest, FnRateIsFractionAboveThreshold) {
  const ScoreSet scores = separable_scores();
  EXPECT_DOUBLE_EQ(fn_rate(scores, -kInf), 1.0);
  EXPECT_DOUBLE_EQ(fn_rate(scores, kInf), 0.0);
  EXPECT_DOUBLE_EQ(fn_rate(scores, -65.0), 0.5);  // -50, -60 above
  // Strict inequality (Eq. 3: P > T).
  EXPECT_DOUBLE_EQ(fn_rate(scores, -50.0), 0.0);
}

TEST(MetricsTest, EmptySetsAreZeroRates) {
  ScoreSet empty;
  EXPECT_DOUBLE_EQ(fp_rate(empty, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(fn_rate(empty, 0.0), 0.0);
}

TEST(MetricsTest, MinusInfinityScoresAlwaysCaught) {
  ScoreSet scores;
  scores.normal = {-1.0, -2.0};
  scores.abnormal = {-kInf, -kInf, -5.0};
  // Even at a very low threshold, -inf abnormal segments are flagged.
  EXPECT_DOUBLE_EQ(fn_rate(scores, -1e9), 1.0 / 3.0);
}

TEST(MetricsTest, SeparableScoresAdmitPerfectOperatingPoint) {
  const ScoreSet scores = separable_scores();
  const double fn = fn_at_fp(scores, 0.0);
  EXPECT_DOUBLE_EQ(fn, 0.0);  // threshold fits between -10 and -50
}

TEST(MetricsTest, FnAtFpRespectsBudget) {
  ScoreSet scores;
  // Overlapping distributions.
  scores.normal = {-1, -2, -3, -4, -5, -6, -7, -8, -9, -10};
  scores.abnormal = {-3.5, -5.5, -7.5, -9.5, -11.5};
  const double threshold = threshold_for_fp(scores, 0.2);
  EXPECT_LE(fp_rate(scores, threshold), 0.2);
  const double fn = fn_at_fp(scores, 0.2);
  EXPECT_DOUBLE_EQ(fn, fn_rate(scores, threshold));
  // A larger FP budget can only reduce FN.
  EXPECT_LE(fn_at_fp(scores, 0.5), fn);
}

TEST(MetricsTest, FnAtFullBudgetIsZero) {
  const ScoreSet scores = separable_scores();
  EXPECT_DOUBLE_EQ(fn_at_fp(scores, 1.0), 0.0);
}

TEST(MetricsTest, RocCurveIsMonotone) {
  ScoreSet scores;
  for (int i = 0; i < 100; ++i) {
    scores.normal.push_back(-static_cast<double>(i % 17));
    scores.abnormal.push_back(-static_cast<double>(10 + i % 23));
  }
  const auto curve = roc_curve(scores, 25);
  ASSERT_GE(curve.size(), 2u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fp, curve[i - 1].fp);
    EXPECT_LE(curve[i].fn, curve[i - 1].fn + 1e-12);
  }
  EXPECT_DOUBLE_EQ(curve.front().fp, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().fn, 0.0);
}

TEST(MetricsTest, RocCurveRejectsTooFewPoints) {
  EXPECT_THROW(roc_curve(separable_scores(), 1), std::invalid_argument);
}

TEST(MetricsTest, AucIsOneForPerfectSeparation) {
  EXPECT_NEAR(detection_auc(separable_scores()), 1.0, 1e-9);
}

TEST(MetricsTest, AucIsLowForInvertedScores) {
  ScoreSet inverted;
  inverted.normal = {-50, -60, -70, -80};
  inverted.abnormal = {-1, -2, -3, -4};
  EXPECT_LT(detection_auc(inverted), 0.3);
}

TEST(MetricsTest, AucBetweenZeroAndOne) {
  ScoreSet mixed;
  for (int i = 0; i < 50; ++i) {
    mixed.normal.push_back(-static_cast<double>(i));
    mixed.abnormal.push_back(-static_cast<double>(i) - 0.5);
  }
  const double auc = detection_auc(mixed);
  EXPECT_GT(auc, 0.0);
  EXPECT_LE(auc, 1.0);
}

}  // namespace
}  // namespace cmarkov::eval
