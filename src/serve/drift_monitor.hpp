// Score-distribution drift detection and incremental model refresh for
// cmarkovd (armed by the --drift flag; ROADMAP item 3).
//
// DriftMonitor watches the per-window log-likelihood stream of one served
// model. The first `baseline_windows` completed windows freeze a baseline
// obs::Histogram whose bucket bounds come from the baseline's empirical
// quantiles; subsequent windows fill a recent-epoch histogram over the
// same bounds. Every `recent_windows` windows the two distributions are
// compared with a windowed KS-style statistic — the maximum CDF gap across
// bucket boundaries — and `consecutive_epochs` breaching epochs in a row
// arm a refresh. Alongside, the monitor buffers the most recent *clean*
// windows (not flagged, no unknown symbols): those are the evidence that
// the score shift is benign workload drift rather than an attack, and
// they become the partial_fit absorption batch.
//
// DriftRefresher closes the loop: poll() (driven by cmarkovd's idle loop,
// or directly by tests) absorbs the buffered segments through
// hmm::Trainer::partial_fit, publishes via the trainer's publish hook —
// which rebuilds the detector with a recalibrated threshold
// (core::calibrate_threshold, inside src/core so the serve tier never
// runs raw forward passes) and hot-reloads it through
// SessionManager::reload_model (PR 6 path: zero accepted-event loss, the
// registry compiles the new ScoringKernel) — then re-baselines the
// monitor against the refreshed model.
//
// Instruments (registered lazily, only when a DriftMonitor exists, so the
// METRICS golden of drift-less deployments is unchanged):
//   cmarkov_drift_windows_total     windows observed
//   cmarkov_drift_epochs_total      recent-epoch KS evaluations
//   cmarkov_drift_breaches_total    epochs whose KS exceeded the threshold
//   cmarkov_drift_refreshes_total   models published by the refresher
//   cmarkov_drift_ks_ratio          last epoch's KS statistic
//   cmarkov_drift_absorb_depth_ratio  absorb buffer fill fraction
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/hmm/trainer.hpp"
#include "src/obs/metrics_registry.hpp"
#include "src/serve/session_manager.hpp"

namespace cmarkov::serve {

struct DriftOptions {
  /// Completed windows that freeze the baseline histogram.
  std::size_t baseline_windows = 512;
  /// Windows per evaluation epoch compared against the baseline.
  std::size_t recent_windows = 256;
  /// Histogram buckets (bounds from baseline empirical quantiles).
  std::size_t buckets = 16;
  /// KS statistic (max CDF gap, in [0,1]) that counts as a breach.
  double ks_threshold = 0.2;
  /// Consecutive breaching epochs before a refresh is requested.
  std::size_t consecutive_epochs = 2;
  /// Clean windows required in the absorb buffer before a refresh may
  /// run (too few would retrain on noise).
  std::size_t min_absorb_segments = 32;
  /// Absorb buffer capacity; once full, the oldest clean window is
  /// replaced (the buffer tracks the *current* workload).
  std::size_t max_absorb_segments = 4096;
  /// Histogram stand-in for -infinity window log-likelihoods (impossible
  /// windows); matches TrainingOptions::impossible_penalty. Their mass
  /// piling into the lowest bucket is itself the drift signal.
  double ll_penalty = -1e4;
};

class DriftMonitor {
 public:
  /// `metrics` receives the cmarkov_drift_* instruments (may be null).
  explicit DriftMonitor(DriftOptions options,
                        obs::MetricsRegistry* metrics = nullptr);

  /// Feeds one completed window. Called by SessionManager::process_item
  /// under the session's monitor_mu; an internal mutex serializes feeds
  /// across shard workers. Log-likelihoods of impossible windows are
  /// clamped to `penalty_` for histogram purposes (their mass landing in
  /// the lowest bucket IS the drift signal); unknown-symbol windows are
  /// never absorbed.
  void observe(double log_likelihood, bool flagged, bool unknown_symbol,
               const hmm::ObservationSeq& window);

  /// True when drift has been confirmed (consecutive breaching epochs)
  /// AND enough clean windows are buffered to retrain on.
  bool refresh_due() const;

  /// Hands the buffered clean windows to the caller and disarms the
  /// pending refresh (the breach streak restarts).
  std::vector<hmm::ObservationSeq> take_absorb_buffer();

  /// Forgets baseline, epochs and buffers: the next observed windows
  /// build a fresh baseline. Called after a model refresh (old scores are
  /// not comparable under the new model).
  void reset_for_new_model();

  // Introspection (tests, STATS).
  bool baseline_ready() const;
  double last_ks() const;
  std::uint64_t epochs_evaluated() const;
  std::uint64_t breach_streak() const;
  std::size_t absorb_depth() const;

 private:
  void freeze_baseline_locked();
  void evaluate_epoch_locked();

  const DriftOptions options_;
  const double penalty_;

  mutable std::mutex mu_;
  /// Baseline collection phase: raw samples until baseline_windows.
  std::vector<double> baseline_samples_;
  /// Frozen after collection: both histograms share the quantile bounds.
  std::unique_ptr<obs::Histogram> baseline_;
  std::unique_ptr<obs::Histogram> recent_;
  std::size_t recent_count_ = 0;
  std::uint64_t epochs_ = 0;
  std::uint64_t breach_streak_ = 0;
  bool refresh_armed_ = false;
  double last_ks_ = 0.0;
  /// Ring of recent clean windows (absorption batch).
  std::vector<hmm::ObservationSeq> absorb_;
  std::size_t absorb_next_ = 0;  // overwrite cursor once full

  // Lazily registered instruments; null without a registry.
  obs::Counter* windows_total_ = nullptr;
  obs::Counter* epochs_total_ = nullptr;
  obs::Counter* breaches_total_ = nullptr;
  obs::Gauge* ks_gauge_ = nullptr;
  obs::Gauge* absorb_depth_gauge_ = nullptr;
};

/// Drives the drift -> partial_fit -> hot-reload loop for one model.
/// Construction installs a publish hook on the trainer that rebuilds the
/// served detector (same config/alphabet, refreshed HMM, recalibrated
/// threshold) and reloads it through the session manager.
class DriftRefresher {
 public:
  /// `trainer` must carry the state that trained the served model
  /// (`cmarkov train --save-state`, or Detector::trainer_state()). The
  /// manager and its registry must outlive the refresher.
  DriftRefresher(SessionManager& manager, ModelRegistry& registry,
                 std::string model_name, hmm::Trainer trainer,
                 DriftOptions options = {});

  DriftMonitor& monitor() { return monitor_; }
  const DriftMonitor& monitor() const { return monitor_; }

  /// When the monitor has confirmed drift: absorbs the buffered clean
  /// windows via partial_fit, publishes the refreshed model version and
  /// re-baselines the monitor. Returns true when a version was published.
  /// Call from one thread (cmarkovd's idle loop); not reentrant.
  bool poll();

  std::uint64_t refreshes() const { return refreshes_; }
  const hmm::Trainer& trainer() const { return trainer_; }

 private:
  SessionManager& manager_;
  ModelRegistry& registry_;
  const std::string model_name_;
  hmm::Trainer trainer_;
  DriftMonitor monitor_;
  std::uint64_t refreshes_ = 0;
  obs::Counter* refreshes_total_ = nullptr;
};

}  // namespace cmarkov::serve
