// ROP-style attack trace construction (Section V-D). A code-reuse chain
// invokes legitimate call names, but each call is issued from a gadget
// address — inside some unrelated function of the image (wrong caller
// context) or outside every function (missing context). After the
// symbolizer runs, such events carry caller names the program's model never
// associated with the call, which is exactly what context-sensitive
// detection keys on (the paper's q1/q2 experiment).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/cfg/cfg.hpp"
#include "src/ir/ast.hpp"
#include "src/trace/event.hpp"
#include "src/util/rng.hpp"

namespace cmarkov::attack {

/// One call the attacker wants to make: (stream, name).
using PlannedCall = std::pair<ir::CallKind, std::string>;

struct RopChainOptions {
  /// Fraction of gadget addresses that land inside a mapped function (the
  /// rest fall outside the image and symbolize to "?").
  double mapped_gadget_fraction = 0.75;
  /// Fraction of calls the chain routes through a genuine call site of the
  /// same name (payload stages that call through the program's own PLT
  /// wrappers — these observe a legitimate context). Keeps the
  /// abnormal-context share of exploit traces in the paper's 30-90% band.
  double reuse_legitimate_site_fraction = 0.25;
};

/// Builds an unsymbolized attack trace for the planned calls, assigning
/// each event a gadget address per the options. Run a Symbolizer over the
/// result to obtain the attacker-visible contexts.
trace::Trace build_rop_trace(const cfg::ModuleCfg& module,
                             const std::vector<PlannedCall>& calls, Rng& rng,
                             const RopChainOptions& options = {});

/// The paper's q1 segment reproduced against gzip (uname/brk/rt_sigaction
/// prologue mimicry followed by file tampering).
std::vector<PlannedCall> gzip_rop_q1();

/// The paper's q2 segment (sigaction/stat/openat/getdents directory sweep).
std::vector<PlannedCall> gzip_rop_q2();

/// A classic code-injection syscall chain (shellcode behaviour): mprotect
/// the stack, dup the descriptors, execve a shell.
std::vector<PlannedCall> syscall_chain_payload();

/// Builds the strongest code-reuse mimicry against a flow-sensitive model:
/// the call-NAME sequence is copied verbatim from a window of a recorded
/// normal trace, so a context-insensitive model sees a benign n-gram; only
/// the gadget-derived caller contexts differ (the q1/q2 experiment of
/// Section V-D). Throws if the filtered trace is shorter than
/// start + length.
std::vector<PlannedCall> mimic_chain_from_trace(const trace::Trace& normal,
                                                analysis::CallFilter filter,
                                                std::size_t length,
                                                std::size_t start = 0);

}  // namespace cmarkov::attack
