#include "src/hmm/hmm.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace cmarkov::hmm {

namespace {

void check_stochastic_rows(const Matrix& m, const char* what,
                           double tolerance) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const double v = m(r, c);
      if (v < -tolerance || std::isnan(v)) {
        throw std::invalid_argument(std::string("Hmm: ") + what + " row " +
                                    std::to_string(r) +
                                    " has a negative/NaN entry");
      }
      total += v;
    }
    if (std::abs(total - 1.0) > tolerance) {
      throw std::invalid_argument(std::string("Hmm: ") + what + " row " +
                                  std::to_string(r) + " sums to " +
                                  std::to_string(total));
    }
  }
}

}  // namespace

void Hmm::validate(double tolerance) const {
  const std::size_t n = num_states();
  if (n == 0) throw std::invalid_argument("Hmm: no states");
  if (transition.cols() != n) {
    throw std::invalid_argument("Hmm: transition matrix not square");
  }
  if (emission.rows() != n) {
    throw std::invalid_argument("Hmm: emission rows != states");
  }
  if (num_symbols() == 0) throw std::invalid_argument("Hmm: no symbols");
  if (initial.size() != n) {
    throw std::invalid_argument("Hmm: initial distribution size != states");
  }
  check_stochastic_rows(transition, "transition", tolerance);
  check_stochastic_rows(emission, "emission", tolerance);
  double total = 0.0;
  for (double v : initial) {
    if (v < -tolerance || std::isnan(v)) {
      throw std::invalid_argument("Hmm: initial has a negative/NaN entry");
    }
    total += v;
  }
  if (std::abs(total - 1.0) > tolerance) {
    throw std::invalid_argument("Hmm: initial sums to " +
                                std::to_string(total));
  }
}

void Hmm::smooth(double epsilon) {
  if (epsilon <= 0.0) return;
  auto smooth_matrix = [epsilon](Matrix& m) {
    const double uniform = 1.0 / static_cast<double>(m.cols());
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t c = 0; c < m.cols(); ++c) {
        m(r, c) = (1.0 - epsilon) * m(r, c) + epsilon * uniform;
      }
    }
  };
  smooth_matrix(transition);
  smooth_matrix(emission);
  const double uniform = 1.0 / static_cast<double>(initial.size());
  for (double& v : initial) v = (1.0 - epsilon) * v + epsilon * uniform;
}

}  // namespace cmarkov::hmm
