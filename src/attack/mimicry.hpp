// Mimicry-attack probe (Section II-A): the attack model the paper
// explicitly discusses. A mimicry attacker must embed a malicious goal
// sequence (e.g. open a socket, dup descriptors, execve) inside a segment
// while keeping the segment's likelihood above the detection threshold,
// using only observations the model knows. craft_mimicry runs a beam
// search for the attacker's best padding — an upper-bound estimate of
// mimicry headroom under a given model. Comparing that headroom across
// models quantifies the paper's claim that probabilistic scoring plus
// context sensitivity makes effective mimicries hard to build.
#pragma once

#include <string>
#include <vector>

#include "src/eval/model_zoo.hpp"

namespace cmarkov::attack {

struct MimicryOptions {
  std::size_t segment_length = 15;
  /// Beam width of the search.
  std::size_t beam_width = 16;
  /// Padding candidates considered per step (the most probable next
  /// observations under the model); bounds the branching factor.
  std::size_t candidates_per_step = 12;
};

struct MimicryResult {
  /// Best segment found (alphabet ids of the target model).
  hmm::ObservationSeq segment;
  /// Its log-likelihood under the model (-infinity if no embedding was
  /// possible, e.g. a goal observation is outside the model's alphabet).
  double log_likelihood = 0.0;
  /// True when every goal observation was embedded in order.
  bool goal_embedded = false;
  /// Goal observations missing from the model's alphabet (these make the
  /// attack impossible without tripping the unknown-symbol detector).
  std::vector<std::string> unknown_goals;
};

/// Finds the attacker's best segment embedding `goal_observations` (strings
/// under the model's encoding, e.g. "execve@spawn_child" for context
/// models, "execve" for basic ones) in order.
MimicryResult craft_mimicry(const eval::BuiltModel& model,
                            const std::vector<std::string>& goal_observations,
                            const MimicryOptions& options = {});

}  // namespace cmarkov::attack
