#include "src/attack/abnormal_s.hpp"

#include <set>
#include <stdexcept>

namespace cmarkov::attack {

std::vector<LegitimateCall> legitimate_call_set(
    const std::vector<trace::Trace>& traces, analysis::CallFilter filter) {
  std::set<LegitimateCall> distinct;
  for (const auto& trace : traces) {
    for (const auto& event : trace.events) {
      if (!analysis::filter_matches(filter, event.kind)) continue;
      // First insertion wins; its addresses become the representatives.
      distinct.insert({event.name, event.caller, event.kind,
                       event.site_address, event.grandparent_address,
                       event.grandcaller});
    }
  }
  return {distinct.begin(), distinct.end()};
}

std::vector<EventSegment> event_segments(
    const std::vector<trace::Trace>& traces, analysis::CallFilter filter,
    std::size_t length) {
  if (length == 0) throw std::invalid_argument("event_segments: length == 0");
  std::vector<EventSegment> out;
  for (const auto& trace : traces) {
    EventSegment filtered;
    for (const auto& event : trace.events) {
      if (analysis::filter_matches(filter, event.kind)) {
        filtered.push_back(event);
      }
    }
    if (filtered.size() < length) continue;
    for (std::size_t start = 0; start + length <= filtered.size(); ++start) {
      out.emplace_back(filtered.begin() + static_cast<std::ptrdiff_t>(start),
                       filtered.begin() +
                           static_cast<std::ptrdiff_t>(start + length));
    }
  }
  return out;
}

namespace {

trace::CallEvent to_event(const LegitimateCall& call) {
  trace::CallEvent event;
  event.kind = call.kind;
  event.name = call.name;
  event.caller = call.caller;
  // Representative legitimate contexts: keeps site-/deep-granular
  // encodings honest (the replaced calls look legitimate at every context
  // granularity).
  event.site_address = call.site_address;
  event.grandparent_address = call.grandparent_address;
  event.grandcaller = call.grandcaller;
  return event;
}

bool same_calls(const EventSegment& a, const EventSegment& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].caller != b[i].caller ||
        a[i].kind != b[i].kind) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<EventSegment> generate_abnormal_s(
    const std::vector<EventSegment>& normal_segments,
    const std::vector<LegitimateCall>& legitimate, std::size_t count,
    Rng& rng, const AbnormalSOptions& options) {
  if (normal_segments.empty()) {
    throw std::invalid_argument("generate_abnormal_s: no normal segments");
  }
  if (legitimate.empty()) {
    throw std::invalid_argument("generate_abnormal_s: empty legitimate set");
  }
  if (options.tail_length == 0 ||
      options.tail_length > options.segment_length) {
    throw std::invalid_argument("generate_abnormal_s: bad tail length");
  }

  std::vector<EventSegment> out;
  out.reserve(count);
  while (out.size() < count) {
    const EventSegment& base = rng.pick(normal_segments);
    EventSegment mutated = base;
    if (mutated.size() > options.segment_length) {
      mutated.resize(options.segment_length);
    }
    const std::size_t tail =
        std::min(options.tail_length, mutated.size());
    bool changed = false;
    for (std::size_t attempt = 0; attempt < 8 && !changed; ++attempt) {
      for (std::size_t i = mutated.size() - tail; i < mutated.size(); ++i) {
        mutated[i] = to_event(rng.pick(legitimate));
      }
      changed = !same_calls(mutated, base);
    }
    if (!changed) continue;  // degenerate call set; try another base
    out.push_back(std::move(mutated));
  }
  return out;
}

}  // namespace cmarkov::attack
