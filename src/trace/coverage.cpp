#include "src/trace/coverage.hpp"

#include <variant>

namespace cmarkov::trace {

CoverageTracker::CoverageTracker(const cfg::ModuleCfg& module)
    : module_(module) {
  for (const auto& fn : module.functions) {
    for (const auto& block : fn.blocks) {
      if (std::holds_alternative<cfg::BranchTerm>(block.terminator)) {
        branch_edges_total_ += 2;
      }
    }
    lines_total_ += fn.source_lines().size();
  }
}

void CoverageTracker::on_block(const std::string& function,
                               cfg::BlockId block) {
  const cfg::FunctionCfg* fn = module_.find(function);
  if (fn == nullptr || block >= fn->block_count()) return;
  for (const auto& instr : fn->block(block).instructions) {
    const int line = cfg::instr_line(instr);
    if (line > 0) lines_covered_.emplace(function, line);
  }
  if (const auto* branch =
          std::get_if<cfg::BranchTerm>(&fn->block(block).terminator)) {
    if (branch->line > 0) lines_covered_.emplace(function, branch->line);
  }
}

void CoverageTracker::on_branch(const std::string& function,
                                cfg::BlockId block, bool taken) {
  branches_covered_.emplace(function, block, taken);
}

CoverageSummary CoverageTracker::summary() const {
  CoverageSummary out;
  out.branch_edges_total = branch_edges_total_;
  out.branch_edges_covered = branches_covered_.size();
  out.lines_total = lines_total_;
  out.lines_covered = lines_covered_.size();
  return out;
}

}  // namespace cmarkov::trace
