// Tests for the eight program suites: parameterized over every suite to
// verify each one parses, lowers, runs, and produces usable traces.
#include <gtest/gtest.h>

#include "src/workload/program_suite.hpp"
#include "src/workload/suite_synthetic.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::workload {
namespace {

class SuiteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteTest, BuildsValidProgram) {
  const ProgramSuite suite = make_suite(GetParam());
  EXPECT_EQ(suite.info().name, GetParam());
  EXPECT_GE(suite.module().stats().functions, 10u);
  EXPECT_GT(suite.module().stats().syscall_sites, 0u);
  EXPECT_GT(suite.module().stats().libcall_sites, 0u);
  EXPECT_GT(suite.info().paper_test_cases, 0u);
}

TEST_P(SuiteTest, EntryFunctionIsMainAndReachesCallGraph) {
  const ProgramSuite suite = make_suite(GetParam());
  EXPECT_NE(suite.cfg().find("main"), nullptr);
  const auto reachable = suite.call_graph().reachable_from("main");
  // Most functions should be reachable from main (no dead scaffolding).
  EXPECT_GE(reachable.size(), suite.cfg().functions.size() - 2);
}

TEST_P(SuiteTest, TestCasesAreDeterministic) {
  const ProgramSuite suite = make_suite(GetParam());
  const TestCase a = suite.make_test_case(3, 42);
  const TestCase b = suite.make_test_case(3, 42);
  EXPECT_EQ(a.inputs, b.inputs);
  EXPECT_EQ(a.environment_seed, b.environment_seed);
  const TestCase c = suite.make_test_case(4, 42);
  EXPECT_NE(a.inputs, c.inputs);
}

TEST_P(SuiteTest, TracesAreRichAndComplete) {
  const ProgramSuite suite = make_suite(GetParam());
  const TraceCollection collection = collect_traces(suite, 10, 7);
  EXPECT_EQ(collection.incomplete_runs, 0u);
  ASSERT_EQ(collection.traces.size(), 10u);
  // Every trace is symbolized and contains both call streams.
  std::size_t sys_events = 0;
  std::size_t lib_events = 0;
  for (const auto& trace : collection.traces) {
    for (const auto& event : trace.events) {
      EXPECT_FALSE(event.caller.empty());
      EXPECT_NE(event.caller, "?");
    }
    sys_events += trace.count(analysis::CallFilter::kSyscalls);
    lib_events += trace.count(analysis::CallFilter::kLibcalls);
  }
  EXPECT_GT(sys_events, 100u);
  EXPECT_GT(lib_events, 100u);
}

TEST_P(SuiteTest, DifferentTestCasesProduceDifferentTraces) {
  const ProgramSuite suite = make_suite(GetParam());
  const TraceCollection collection = collect_traces(suite, 6, 11);
  std::set<std::size_t> lengths;
  for (const auto& trace : collection.traces) {
    lengths.insert(trace.events.size());
  }
  EXPECT_GT(lengths.size(), 1u) << "all traces identical";
}

TEST_P(SuiteTest, CoverageIsSubstantial) {
  const ProgramSuite suite = make_suite(GetParam());
  const TraceCollection collection = collect_traces(suite, 25, 3);
  EXPECT_GT(collection.coverage.branch_coverage(), 0.5);
  EXPECT_GT(collection.coverage.line_coverage(), 0.7);
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, SuiteTest,
                         ::testing::ValuesIn(all_suite_names()),
                         [](const auto& info) { return info.param; });

TEST(SuiteRegistryTest, NameListsArePartition) {
  const auto& all = all_suite_names();
  const auto& utilities = utility_suite_names();
  const auto& servers = server_suite_names();
  EXPECT_EQ(all.size(), 8u);
  EXPECT_EQ(utilities.size(), 6u);
  EXPECT_EQ(servers.size(), 2u);
  for (const auto& name : utilities) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end());
  }
  for (const auto& name : servers) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end());
  }
}

TEST(SuiteRegistryTest, UnknownNameThrows) {
  EXPECT_THROW(make_suite("emacs"), std::invalid_argument);
}

TEST(SyntheticSuiteTest, SmallConfigIsRunnableAndDeterministic) {
  SyntheticConfig config;
  config.modules = 4;
  config.functions_per_module = 5;
  config.libcall_vocab = 30;
  config.syscall_vocab = 10;
  const ProgramSuite a = make_synthetic_suite(config);
  const ProgramSuite b = make_synthetic_suite(config);
  EXPECT_EQ(a.module().source(), b.module().source());
  // 4*5 functions + 4 dispatchers + main.
  EXPECT_EQ(a.module().stats().functions, 25u);

  const TraceCollection collection = collect_traces(a, 8, 3);
  EXPECT_EQ(collection.incomplete_runs, 0u);
  EXPECT_GT(collection.total_events, 100u);
}

TEST(SyntheticSuiteTest, EveryFunctionReachableFromMain) {
  SyntheticConfig config;
  config.modules = 5;
  config.functions_per_module = 6;
  const ProgramSuite suite = make_synthetic_suite(config);
  const auto reachable = suite.call_graph().reachable_from("main");
  EXPECT_EQ(reachable.size(), suite.cfg().functions.size());
}

TEST(SyntheticSuiteTest, SeedChangesTheProgram) {
  SyntheticConfig a;
  a.modules = 3;
  a.functions_per_module = 4;
  SyntheticConfig b = a;
  b.seed = a.seed + 1;
  EXPECT_NE(make_synthetic_suite(a).module().source(),
            make_synthetic_suite(b).module().source());
}

TEST(SuiteRegistryTest, ServerSuitesUseNetworkCalls) {
  for (const auto& name : server_suite_names()) {
    const ProgramSuite suite = make_suite(name);
    const TraceCollection collection = collect_traces(suite, 8, 5);
    bool saw_network = false;
    for (const auto& trace : collection.traces) {
      for (const auto& event : trace.events) {
        if (event.name == "accept" || event.name == "recv" ||
            event.name == "send") {
          saw_network = true;
        }
      }
    }
    EXPECT_TRUE(saw_network) << name;
  }
}

}  // namespace
}  // namespace cmarkov::workload
