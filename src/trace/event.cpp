#include "src/trace/event.hpp"

#include <stdexcept>

namespace cmarkov::trace {

std::size_t Trace::count(analysis::CallFilter filter) const {
  std::size_t total = 0;
  for (const auto& event : events) {
    if (analysis::filter_matches(filter, event.kind)) ++total;
  }
  return total;
}

namespace {

void require_symbolized(const CallEvent& event,
                        hmm::ObservationEncoding encoding) {
  if (encoding != hmm::ObservationEncoding::kContextFree &&
      event.caller.empty()) {
    throw std::invalid_argument(
        "encode_trace: context-sensitive encoding needs a symbolized trace "
        "(event '" +
        event.name + "' has no caller)");
  }
}

std::string event_observation(const CallEvent& event,
                              hmm::ObservationEncoding encoding) {
  if (encoding == hmm::ObservationEncoding::kSiteSensitive) {
    return hmm::encode_site_observation(event.name, event.caller,
                                        event.site_address);
  }
  if (encoding == hmm::ObservationEncoding::kDeepContext) {
    return event.name + "@" + event.caller + "@" +
           (event.grandcaller.empty() ? "-" : event.grandcaller);
  }
  return hmm::encode_observation(event.name, event.caller, encoding);
}

}  // namespace

hmm::ObservationSeq encode_trace(const Trace& trace,
                                 analysis::CallFilter filter,
                                 hmm::ObservationEncoding encoding,
                                 hmm::Alphabet& alphabet) {
  hmm::ObservationSeq out;
  for (const auto& event : trace.events) {
    if (!analysis::filter_matches(filter, event.kind)) continue;
    require_symbolized(event, encoding);
    out.push_back(alphabet.intern(event_observation(event, encoding)));
  }
  return out;
}

hmm::ObservationSeq encode_trace_frozen(const Trace& trace,
                                        analysis::CallFilter filter,
                                        hmm::ObservationEncoding encoding,
                                        const hmm::Alphabet& alphabet,
                                        std::size_t unknown_id) {
  hmm::ObservationSeq out;
  for (const auto& event : trace.events) {
    if (!analysis::filter_matches(filter, event.kind)) continue;
    require_symbolized(event, encoding);
    const auto id = alphabet.find(event_observation(event, encoding));
    out.push_back(id.value_or(unknown_id));
  }
  return out;
}

}  // namespace cmarkov::trace
