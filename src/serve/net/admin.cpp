#include "src/serve/net/admin.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstring>
#include <stdexcept>

#include "src/obs/export.hpp"
#include "src/obs/timeseries.hpp"
#include "src/serve/drift_monitor.hpp"

namespace cmarkov::serve::net {

namespace {

// Header block cap: admin clients are curl/Prometheus/`cmarkov top`; a
// bigger block is a confused (or hostile) peer, not a legitimate scrape.
constexpr std::size_t kMaxHeaderBytes = 16 * 1024;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

std::string ascii_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) s.remove_suffix(1);
  return s;
}

std::string overload_json(const OverloadGovernor& governor) {
  const OverloadLevel level = governor.level();
  std::string out = "{\"enabled\":";
  out += governor.enabled() ? "true" : "false";
  out += ",\"level\":" + std::to_string(static_cast<int>(level));
  out += ",\"name\":\"";
  out += overload_level_name(level);
  out += "\",\"retry_after_ms\":" + std::to_string(governor.retry_after_ms());
  out += "}";
  return out;
}

std::string drift_json(const DriftMonitor* drift) {
  if (drift == nullptr) return "{\"armed\":false}";
  std::string out = "{\"armed\":true,\"baseline_ready\":";
  out += drift->baseline_ready() ? "true" : "false";
  out += ",\"last_ks\":" + obs::format_metric_value(drift->last_ks());
  out += ",\"epochs_evaluated\":" + std::to_string(drift->epochs_evaluated());
  out += ",\"breach_streak\":" + std::to_string(drift->breach_streak());
  out += ",\"absorb_depth\":" + std::to_string(drift->absorb_depth());
  out += "}";
  return out;
}

void encode_response(const HttpResponse& resp, bool keep_alive,
                     std::string& out) {
  out += "HTTP/1.1 " + std::to_string(resp.status) + " " +
         status_text(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += resp.body;
}

}  // namespace

AdminHandler::AdminHandler(SessionManager& manager) : manager_(manager) {
  obs::MetricsRegistry& m = manager.instruments();
  requests_total_ = &m.counter("cmarkov_admin_requests_total");
  errors_total_ = &m.counter("cmarkov_admin_errors_total");
  request_micros_ =
      &m.histogram("cmarkov_admin_request_micros", latency_bucket_bounds());
}

void AdminHandler::set_collector(const obs::TimeSeriesCollector* collector) {
  collector_ = collector;
}

void AdminHandler::set_drift_monitor(const DriftMonitor* drift) {
  drift_ = drift;
}

void AdminHandler::set_loop_status_fn(
    std::function<std::vector<LoopStatus>()> fn) {
  loop_status_ = std::move(fn);
}

std::string AdminHandler::healthz_json() {
  const ServiceMetrics metrics = manager_.metrics();
  std::size_t queued = 0;
  for (const std::size_t d : metrics.queue_depths) queued += d;
  std::string out = "{\"schema\":\"cmarkov.healthz.v1\",\"status\":\"ok\"";
  out += ",\"uptime_seconds\":" + obs::format_metric_value(metrics.uptime_seconds);
  out += ",\"sessions_open\":" + std::to_string(metrics.sessions_open);
  out += ",\"queued_events\":" + std::to_string(queued);
  out += ",\"overload\":" + overload_json(manager_.overload_governor());
  out += ",\"drift\":" + drift_json(drift_);
  out += "}";
  return out;
}

std::string AdminHandler::statusz_json() {
  const ServiceMetrics metrics = manager_.metrics();
  const ServiceConfig& config = manager_.config();
  std::string out = "{\"schema\":\"cmarkov.statusz.v1\"";
  out += ",\"uptime_seconds\":" + obs::format_metric_value(metrics.uptime_seconds);
  out += ",\"sessions_open\":" + std::to_string(metrics.sessions_open);
  out += ",\"events_processed\":" + std::to_string(metrics.events_processed);
  out += ",\"workers\":" + std::to_string(config.num_workers);
  out += ",\"queue_capacity\":" + std::to_string(config.queue_capacity);
  out += ",\"policy\":\"";
  out += backpressure_policy_name(config.policy);
  out += "\",\"shards\":[";
  bool first = true;
  for (const ShardStatus& shard : manager_.shard_status()) {
    if (!first) out += ',';
    first = false;
    const double bytes_per_session =
        shard.sessions > 0 ? static_cast<double>(shard.state_bytes) /
                                 static_cast<double>(shard.sessions)
                           : 0.0;
    out += "{\"shard\":" + std::to_string(shard.shard);
    out += ",\"sessions\":" + std::to_string(shard.sessions);
    out += ",\"queue_depth\":" + std::to_string(shard.queue_depth);
    out += ",\"processed\":" + std::to_string(shard.processed);
    out += ",\"evicted_sessions\":" + std::to_string(shard.evicted_sessions);
    out += ",\"state_bytes\":" + std::to_string(shard.state_bytes);
    out += ",\"bytes_per_session\":" + obs::format_metric_value(bytes_per_session);
    out += "}";
  }
  out += "],\"loops\":[";
  first = true;
  if (loop_status_) {
    for (const LoopStatus& loop : loop_status_()) {
      if (!first) out += ',';
      first = false;
      out += "{\"loop\":" + std::to_string(loop.loop);
      out += ",\"connections_open\":" +
             obs::format_metric_value(loop.connections_open);
      out += ",\"bytes_read\":" + std::to_string(loop.bytes_read);
      out += ",\"bytes_written\":" + std::to_string(loop.bytes_written);
      out += ",\"units\":" + std::to_string(loop.units);
      out += "}";
    }
  }
  out += "],\"overload\":" + overload_json(manager_.overload_governor());
  out += ",\"drift\":" + drift_json(drift_);
  out += "}";
  return out;
}

HttpResponse AdminHandler::handle(const HttpRequest& request) {
  const double start_micros = manager_.now_micros();
  HttpResponse resp;
  if (request.method != "GET") {
    resp.status = 405;
    resp.body = "{\"error\":\"method not allowed\"}";
  } else if (request.target == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4";
    resp.body = obs::to_prometheus(manager_.metrics_registry());
  } else if (request.target == "/healthz") {
    resp.body = healthz_json();
  } else if (request.target == "/varz") {
    // Refresh the gauges the collector would sample so a direct scrape and
    // a ring sample describe the same instant.
    manager_.metrics_registry();
    if (collector_ == nullptr) {
      resp.status = 503;
      resp.body = "{\"error\":\"collector not running\"}";
    } else {
      resp.body = collector_->varz_json();
    }
  } else if (request.target == "/statusz") {
    resp.body = statusz_json();
  } else {
    resp.status = 404;
    resp.body = "{\"error\":\"not found\"}";
  }
  requests_total_->add(1);
  if (resp.status >= 400) errors_total_->add(1);
  request_micros_->record(manager_.now_micros() - start_micros);
  return resp;
}

bool AdminConn::consume(std::string& inbuf, std::string& out) {
  for (;;) {
    const std::size_t end = inbuf.find("\r\n\r\n");
    std::size_t header_len, terminator_len;
    if (end != std::string::npos) {
      header_len = end;
      terminator_len = 4;
    } else {
      const std::size_t lf = inbuf.find("\n\n");
      if (lf == std::string::npos) {
        if (inbuf.size() > kMaxHeaderBytes) {
          encode_response(HttpResponse{431, "application/json",
                                       "{\"error\":\"headers too large\"}"},
                          false, out);
          inbuf.clear();
          return false;
        }
        return true;  // incomplete request; wait for more bytes
      }
      header_len = lf;
      terminator_len = 2;
    }
    const std::string_view header(inbuf.data(), header_len);

    // Request line: METHOD SP TARGET SP VERSION.
    const std::size_t line_end = std::min(header.find('\n'), header.size());
    std::string_view line = trim(header.substr(0, line_end));
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? std::string_view::npos
                                      : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
      encode_response(HttpResponse{400, "application/json",
                                   "{\"error\":\"malformed request line\"}"},
                      false, out);
      inbuf.clear();
      return false;
    }
    HttpRequest request;
    request.method = std::string(line.substr(0, sp1));
    std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string_view version = trim(line.substr(sp2 + 1));
    const std::size_t query = target.find('?');
    if (query != std::string_view::npos) target = target.substr(0, query);
    request.target = std::string(target);

    // Headers we care about: Connection (keep-alive decision) and
    // Content-Length (bodies are not supported on the admin plane).
    bool keep_alive = version != "HTTP/1.0";
    bool has_body = false;
    std::size_t cursor = line_end == header.size() ? header.size() : line_end + 1;
    while (cursor < header.size()) {
      std::size_t eol = header.find('\n', cursor);
      if (eol == std::string_view::npos) eol = header.size();
      const std::string_view raw = header.substr(cursor, eol - cursor);
      cursor = eol + 1;
      const std::size_t colon = raw.find(':');
      if (colon == std::string_view::npos) continue;
      const std::string name = ascii_lower(trim(raw.substr(0, colon)));
      const std::string value = ascii_lower(trim(raw.substr(colon + 1)));
      if (name == "connection") {
        if (value == "close") keep_alive = false;
        if (value == "keep-alive") keep_alive = true;
      } else if (name == "content-length") {
        if (value != "0") has_body = true;
      } else if (name == "transfer-encoding") {
        has_body = true;
      }
    }
    inbuf.erase(0, header_len + terminator_len);

    if (has_body) {
      encode_response(HttpResponse{400, "application/json",
                                   "{\"error\":\"request bodies unsupported\"}"},
                      false, out);
      inbuf.clear();
      return false;
    }

    encode_response(handler_.handle(request), keep_alive, out);
    ++requests_;
    if (!keep_alive) {
      inbuf.clear();
      return false;
    }
    if (inbuf.empty()) return true;
    // Loop: a pipelining client may have queued the next request already.
  }
}

HttpGetResult admin_http_get(const std::string& host, std::uint16_t port,
                             const std::string& path, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("admin_http_get: socket() failed");
  struct FdGuard {
    int fd;
    ~FdGuard() { ::close(fd); }
  } guard{fd};

  const timeval tv{timeout_ms / 1000, (timeout_ms % 1000) * 1000};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("admin_http_get: bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw std::runtime_error("admin_http_get: connect to " + host + ":" +
                             std::to_string(port) + " failed");
  }

  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) throw std::runtime_error("admin_http_get: send failed");
    sent += static_cast<std::size_t>(n);
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) throw std::runtime_error("admin_http_get: recv failed");
    if (n == 0) break;  // Connection: close — EOF delimits the response
    raw.append(buf, static_cast<std::size_t>(n));
  }

  const std::size_t status_start = raw.find(' ');
  if (raw.compare(0, 5, "HTTP/") != 0 || status_start == std::string::npos) {
    throw std::runtime_error("admin_http_get: malformed response");
  }
  HttpGetResult result;
  result.status = std::atoi(raw.c_str() + status_start + 1);
  const std::size_t body = raw.find("\r\n\r\n");
  if (body == std::string::npos) {
    throw std::runtime_error("admin_http_get: truncated response header");
  }
  result.body = raw.substr(body + 4);
  return result;
}

}  // namespace cmarkov::serve::net
