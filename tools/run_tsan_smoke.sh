#!/usr/bin/env bash
# ThreadSanitizer smoke for the concurrent subsystems: builds the repo with
# CMARKOV_SANITIZE=thread and runs the concurrency-sensitive tests — the
# cmarkovd serving layer (serve_test's LiveReloadSwapsSharedKernelUnderTraffic
# drives concurrent shard workers scoring through one shared ScoringKernel
# image while RELOAD hot-swaps model + kernel under the epoch-reclamation
# scheme), the epoll TCP front-end (serve_net_test drives concurrent
# connects across event loops, session eviction/restore, and hot model
# reload under live producer traffic), the parallel training engine
# (worker pool, multi-threaded Baum-Welch/k-means/PCA — including the
# incremental hmm::Trainer whose partial_fit must stay bit-identical at
# every thread count, and the drift-armed refresh loop in serve_test's
# DriftRefreshTest feeding DriftMonitor from shard workers), and the obs
# layer
# (sharded counters/histograms under concurrent writers plus the threaded
# pipeline-with-metrics smoke in obs_test), and the chaos harness
# (chaos_test exercises failpoint arming/firing, crash-restart snapshot
# recovery, and the overload ladder's governor transitions against the
# worker pool), and the admin plane (admin_test's scrape hammer runs
# concurrent /metrics + /varz + /statusz pollers against the collector
# thread and live traffic with eviction churn). Any TSan report fails the
# run (halt_on_error). Usage:
#
#   tools/run_tsan_smoke.sh            # build into build-tsan/ and run
#   BUILD_DIR=/tmp/tsan tools/run_tsan_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-tsan}"
TESTS='^(serve_test|serve_net_test|admin_test|chaos_test|logging_test|parallel_test|parallel_training_test|incremental_training_test|obs_test)$'

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMARKOV_SANITIZE=thread
cmake --build "$BUILD_DIR" -j"$(nproc)" \
  --target serve_test serve_net_test admin_test chaos_test logging_test \
  --target parallel_test parallel_training_test incremental_training_test \
  --target obs_test

(cd "$BUILD_DIR" && \
  TSAN_OPTIONS="halt_on_error=1 abort_on_error=1" \
  ctest --output-on-failure -R "$TESTS")

echo "TSan smoke: clean"
