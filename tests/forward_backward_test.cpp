// Unit tests for the scaled forward/backward recursions, checked against
// brute-force enumeration over all hidden-state paths.
#include <gtest/gtest.h>

#include <cmath>

#include "src/hmm/forward_backward.hpp"

namespace cmarkov::hmm {
namespace {

Hmm weather_model() {
  // Classic 2-state (rain/sun) model with 2 observations (walk/shop).
  Hmm model;
  model.transition = Matrix::from_rows({{0.7, 0.3}, {0.4, 0.6}});
  model.emission = Matrix::from_rows({{0.1, 0.9}, {0.8, 0.2}});
  model.initial = {0.5, 0.5};
  return model;
}

/// Brute-force P(obs) by summing over every state path.
double brute_force_probability(const Hmm& model,
                               const std::vector<std::size_t>& obs) {
  const std::size_t n = model.num_states();
  const std::size_t t_len = obs.size();
  double total = 0.0;
  std::vector<std::size_t> path(t_len, 0);
  while (true) {
    double p = model.initial[path[0]] * model.emission(path[0], obs[0]);
    for (std::size_t t = 1; t < t_len; ++t) {
      p *= model.transition(path[t - 1], path[t]) *
           model.emission(path[t], obs[t]);
    }
    total += p;
    // Odometer increment over paths.
    std::size_t pos = 0;
    while (pos < t_len && ++path[pos] == n) {
      path[pos] = 0;
      ++pos;
    }
    if (pos == t_len) break;
  }
  return total;
}

TEST(ForwardTest, MatchesBruteForceOnShortSequences) {
  const Hmm model = weather_model();
  const std::vector<std::vector<std::size_t>> sequences = {
      {0}, {1}, {0, 1}, {1, 1, 0}, {0, 0, 1, 1, 0}};
  for (const auto& obs : sequences) {
    const double expected = brute_force_probability(model, obs);
    EXPECT_NEAR(sequence_probability(model, obs), expected, 1e-12);
    EXPECT_NEAR(sequence_log_likelihood(model, obs), std::log(expected),
                1e-10);
  }
}

TEST(ForwardTest, EmptySequenceHasLogLikelihoodZero) {
  const Hmm model = weather_model();
  const std::vector<std::size_t> empty;
  EXPECT_DOUBLE_EQ(sequence_log_likelihood(model, empty), 0.0);
}

TEST(ForwardTest, SingleSymbolIsWeightedEmission) {
  const Hmm model = weather_model();
  const std::vector<std::size_t> obs = {0};
  // P = 0.5*0.1 + 0.5*0.8.
  EXPECT_NEAR(sequence_probability(model, obs), 0.45, 1e-14);
}

TEST(ForwardTest, ImpossibleObservationYieldsMinusInfinity) {
  Hmm model = weather_model();
  // State emissions never produce symbol 1 from anywhere.
  model.emission = Matrix::from_rows({{1.0, 0.0}, {1.0, 0.0}});
  const std::vector<std::size_t> obs = {0, 1, 0};
  const ForwardResult result = forward_scaled(model, obs);
  EXPECT_TRUE(result.impossible);
  EXPECT_TRUE(std::isinf(result.log_likelihood));
  EXPECT_LT(result.log_likelihood, 0.0);
  EXPECT_DOUBLE_EQ(sequence_probability(model, obs), 0.0);
}

TEST(ForwardTest, RejectsOutOfRangeObservation) {
  const Hmm model = weather_model();
  const std::vector<std::size_t> obs = {0, 2};
  EXPECT_THROW(forward_scaled(model, obs), std::out_of_range);
}

TEST(ForwardTest, ScalingHandlesLongSequences) {
  const Hmm model = weather_model();
  std::vector<std::size_t> obs(500);
  for (std::size_t i = 0; i < obs.size(); ++i) obs[i] = i % 2;
  const double log_lik = sequence_log_likelihood(model, obs);
  EXPECT_TRUE(std::isfinite(log_lik));
  EXPECT_LT(log_lik, -100.0);  // far below raw double underflow territory
}

TEST(ForwardTest, AlphaRowsAreNormalized) {
  const Hmm model = weather_model();
  const std::vector<std::size_t> obs = {0, 1, 1, 0};
  const ForwardResult result = forward_scaled(model, obs);
  for (std::size_t t = 0; t < obs.size(); ++t) {
    double total = 0.0;
    for (std::size_t i = 0; i < model.num_states(); ++i) {
      total += result.alpha(t, i);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(BackwardTest, GammaSumsToOneEachStep) {
  // With Rabiner scaling, alpha(t,i)*beta(t,i)*c_t is the posterior
  // gamma(t,i), which must sum to 1 over states at every t.
  const Hmm model = weather_model();
  const std::vector<std::size_t> obs = {1, 0, 0, 1, 0};
  const ForwardResult fwd = forward_scaled(model, obs);
  const Matrix beta = backward_scaled(model, obs, fwd.scales);
  for (std::size_t t = 0; t < obs.size(); ++t) {
    double total = 0.0;
    for (std::size_t i = 0; i < model.num_states(); ++i) {
      total += fwd.alpha(t, i) * beta(t, i) * fwd.scales[t];
    }
    EXPECT_NEAR(total, 1.0, 1e-10) << "t=" << t;
  }
}

TEST(BackwardTest, RejectsMismatchedScales) {
  const Hmm model = weather_model();
  const std::vector<std::size_t> obs = {0, 1};
  const std::vector<double> wrong_scales = {0.5};
  EXPECT_THROW(backward_scaled(model, obs, wrong_scales),
               std::invalid_argument);
}

TEST(ForwardTest, DeterministicChainScoresExactly) {
  // Deterministic left-to-right 3-state chain emitting its own id.
  Hmm model;
  model.transition =
      Matrix::from_rows({{0, 1, 0}, {0, 0, 1}, {0, 0, 1}});
  model.emission = Matrix::identity(3);
  model.initial = {1.0, 0.0, 0.0};
  const std::vector<std::size_t> good = {0, 1, 2};
  EXPECT_NEAR(sequence_probability(model, good), 1.0, 1e-12);
  const std::vector<std::size_t> bad = {0, 2, 1};
  EXPECT_DOUBLE_EQ(sequence_probability(model, bad), 0.0);
}

}  // namespace
}  // namespace cmarkov::hmm
