#include "src/analysis/context.hpp"

#include <sstream>
#include <stdexcept>

namespace cmarkov::analysis {

std::string CallSymbol::to_string() const {
  switch (kind) {
    case Kind::kEntry:
      return name.empty() ? "ENTRY" : "ENTRY(" + name + ")";
    case Kind::kExit:
      return name.empty() ? "EXIT" : "EXIT(" + name + ")";
    case Kind::kInternal:
      return "<" + name + ">";
    case Kind::kExternal:
      break;
  }
  std::string out = ir::call_kind_name(call_kind) + ":" + name;
  if (!context.empty()) out += "@" + context;
  return out;
}

CallSymbol CallSymbol::entry(std::string function) {
  CallSymbol s;
  s.kind = Kind::kEntry;
  s.name = std::move(function);
  return s;
}

CallSymbol CallSymbol::exit(std::string function) {
  CallSymbol s;
  s.kind = Kind::kExit;
  s.name = std::move(function);
  return s;
}

CallSymbol CallSymbol::external(ir::CallKind kind, std::string name,
                                std::string context) {
  CallSymbol s;
  s.kind = Kind::kExternal;
  s.call_kind = kind;
  s.name = std::move(name);
  s.context = std::move(context);
  return s;
}

CallSymbol CallSymbol::internal(std::string callee) {
  CallSymbol s;
  s.kind = Kind::kInternal;
  s.name = std::move(callee);
  return s;
}

CallSymbol CallSymbol::without_context() const {
  CallSymbol s = *this;
  s.context.clear();
  return s;
}

bool filter_matches(CallFilter filter, ir::CallKind kind) {
  switch (filter) {
    case CallFilter::kSyscalls:
      return kind == ir::CallKind::kSyscall;
    case CallFilter::kLibcalls:
      return kind == ir::CallKind::kLibcall;
    case CallFilter::kAll:
      return true;
  }
  return false;
}

std::string call_filter_name(CallFilter filter) {
  switch (filter) {
    case CallFilter::kSyscalls:
      return "syscall";
    case CallFilter::kLibcalls:
      return "libcall";
    case CallFilter::kAll:
      return "all";
  }
  return "?";
}

std::size_t CallTransitionMatrix::add_symbol(const CallSymbol& symbol) {
  auto it = index_.find(symbol);
  if (it != index_.end()) return it->second;
  const std::size_t idx = symbols_.size();
  symbols_.push_back(symbol);
  index_.emplace(symbol, idx);
  rows_.emplace_back();
  return idx;
}

std::size_t CallTransitionMatrix::index_of(const CallSymbol& symbol) const {
  auto it = index_.find(symbol);
  if (it == index_.end()) {
    throw std::out_of_range("CallTransitionMatrix: unknown symbol " +
                            symbol.to_string());
  }
  return it->second;
}

bool CallTransitionMatrix::contains(const CallSymbol& symbol) const {
  return index_.contains(symbol);
}

const CallSymbol& CallTransitionMatrix::symbol(std::size_t index) const {
  if (index >= symbols_.size()) {
    throw std::out_of_range("CallTransitionMatrix::symbol");
  }
  return symbols_[index];
}

double CallTransitionMatrix::prob(std::size_t from, std::size_t to) const {
  if (from >= rows_.size() || to >= symbols_.size()) {
    throw std::out_of_range("CallTransitionMatrix::prob");
  }
  auto it = rows_[from].find(to);
  return it == rows_[from].end() ? 0.0 : it->second;
}

double CallTransitionMatrix::prob(const CallSymbol& from,
                                  const CallSymbol& to) const {
  return prob(index_of(from), index_of(to));
}

void CallTransitionMatrix::add_prob(std::size_t from, std::size_t to,
                                    double delta) {
  if (from >= rows_.size() || to >= symbols_.size()) {
    throw std::out_of_range("CallTransitionMatrix::add_prob");
  }
  if (delta == 0.0) return;
  rows_[from][to] += delta;
}

void CallTransitionMatrix::set_prob(std::size_t from, std::size_t to,
                                    double value) {
  if (from >= rows_.size() || to >= symbols_.size()) {
    throw std::out_of_range("CallTransitionMatrix::set_prob");
  }
  if (value == 0.0) {
    rows_[from].erase(to);
  } else {
    rows_[from][to] = value;
  }
}

const std::unordered_map<std::size_t, double>& CallTransitionMatrix::row(
    std::size_t from) const {
  if (from >= rows_.size()) throw std::out_of_range("CallTransitionMatrix::row");
  return rows_[from];
}

double CallTransitionMatrix::row_sum(std::size_t from) const {
  double total = 0.0;
  for (const auto& [to, p] : row(from)) {
    (void)to;
    total += p;
  }
  return total;
}

double CallTransitionMatrix::col_sum(std::size_t to) const {
  if (to >= symbols_.size()) {
    throw std::out_of_range("CallTransitionMatrix::col_sum");
  }
  double total = 0.0;
  for (const auto& row : rows_) {
    auto it = row.find(to);
    if (it != row.end()) total += it->second;
  }
  return total;
}

std::vector<std::size_t> CallTransitionMatrix::external_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < symbols_.size(); ++i) {
    if (symbols_[i].kind == CallSymbol::Kind::kExternal) out.push_back(i);
  }
  return out;
}

Matrix CallTransitionMatrix::to_dense() const {
  Matrix dense(symbols_.size(), symbols_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (const auto& [c, p] : rows_[r]) dense(r, c) = p;
  }
  return dense;
}

std::size_t CallTransitionMatrix::nonzero_count() const {
  std::size_t count = 0;
  for (const auto& row : rows_) count += row.size();
  return count;
}

std::string CallTransitionMatrix::to_string() const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    // Render cells in column order for stable output.
    std::map<std::size_t, double> ordered(rows_[r].begin(), rows_[r].end());
    for (const auto& [c, p] : ordered) {
      os << symbols_[r].to_string() << " -> " << symbols_[c].to_string()
         << " : " << p << "\n";
    }
  }
  return os.str();
}

CallTransitionMatrix project_context_insensitive(
    const CallTransitionMatrix& matrix) {
  CallTransitionMatrix out;
  std::vector<std::size_t> remap(matrix.size());
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const CallSymbol& sym = matrix.symbol(i);
    remap[i] = out.add_symbol(sym.kind == CallSymbol::Kind::kExternal
                                  ? sym.without_context()
                                  : sym);
  }
  for (std::size_t r = 0; r < matrix.size(); ++r) {
    for (const auto& [c, p] : matrix.row(r)) {
      out.add_prob(remap[r], remap[c], p);
    }
  }
  return out;
}

}  // namespace cmarkov::analysis
