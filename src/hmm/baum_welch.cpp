#include "src/hmm/baum_welch.hpp"

#include <cmath>

#include "src/hmm/forward_backward.hpp"
#include "src/util/parallel.hpp"

namespace cmarkov::hmm {

namespace {

/// Sequences per work item of the parallel scoring pass.
constexpr std::size_t kScoreChunk = 64;

}  // namespace

double mean_log_likelihood(const Hmm& model,
                           const std::vector<ObservationSeq>& sequences,
                           double impossible_penalty,
                           std::size_t num_threads) {
  if (sequences.empty()) return 0.0;
  const HmmKernelCache cache(model);
  WorkerPool pool(num_threads);
  std::vector<double> per_sequence(sequences.size());
  pool.run(chunk_count(sequences.size(), kScoreChunk), [&](std::size_t c) {
    const ChunkRange range = chunk_range(sequences.size(), kScoreChunk, c);
    for (std::size_t s = range.begin; s < range.end; ++s) {
      if (sequences[s].empty()) {
        per_sequence[s] = impossible_penalty;
        continue;
      }
      const double ll =
          forward_scaled(model, sequences[s], cache).log_likelihood;
      per_sequence[s] = std::isinf(ll) ? impossible_penalty : ll;
    }
  });
  double total = 0.0;
  for (double ll : per_sequence) total += ll;
  return total / static_cast<double>(sequences.size());
}

}  // namespace cmarkov::hmm
