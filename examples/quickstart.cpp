// Quickstart: the five-minute tour of the public API.
//
//  1. Write (or load) a MiniC program — the stand-in for a monitored binary.
//  2. Build a CMarkov detector: static control-flow analysis initializes a
//     context-sensitive HMM.
//  3. Collect normal traces by running the program, and train the detector.
//  4. Classify fresh executions and a code-reuse attack.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "src/attack/rop_chain.hpp"
#include "src/cfg/cfg_builder.hpp"
#include "src/core/detector.hpp"
#include "src/trace/interpreter.hpp"
#include "src/trace/symbolizer.hpp"
#include "src/util/strings.hpp"

using namespace cmarkov;

int main() {
  // 1. A tiny "file transfer" program. sys("...") marks system calls,
  //    lib("...") library calls, input() reads the test-case input stream.
  const char* source = R"(
fn read_request() {
  sys("recv");
  lib("strtok");
  return input() % 3;
}
fn send_file() {
  var fd = sys("open");
  if (fd < 1) { lib("strerror"); return; }
  var chunks = input() % 5 + 1;
  while (chunks > 0) {
    sys("read");
    sys("send");
    chunks = chunks - 1;
  }
  sys("close");
}
fn store_file() {
  var fd = sys("open");
  var chunks = input() % 5 + 1;
  while (chunks > 0) {
    sys("recv");
    sys("write");
    chunks = chunks - 1;
  }
  sys("close");
  sys("chmod");
}
fn main() {
  var requests = input() % 6 + 2;
  while (requests > 0) {
    var kind = read_request();
    if (kind == 0) { send_file(); } else { store_file(); }
    requests = requests - 1;
  }
  sys("exit_group");
}
)";
  const ir::ProgramModule program =
      ir::ProgramModule::from_source("mini-ftp", source);
  std::cout << "Program: " << program.name() << " ("
            << program.stats().functions << " functions, "
            << program.stats().syscall_sites << " syscall sites)\n";

  // 2. Static phase: CFG + call-graph analysis -> context-sensitive
  //    call-transition matrix -> statically initialized HMM.
  core::DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  config.target_fp = 0.005;
  core::Detector detector = core::Detector::build(program, config);
  std::cout << "Detector built: " << detector.num_states()
            << " hidden states, alphabet " << detector.alphabet().size()
            << " context-sensitive calls\n";

  // 3. Dynamic phase: run the program on 40 seeded workloads, record
  //    traces (the strace+addr2line pipeline), train and calibrate.
  const auto module_cfg = cfg::build_module_cfg(program);
  const trace::Interpreter interpreter(module_cfg);
  const trace::Symbolizer symbolizer(module_cfg);
  std::vector<trace::Trace> normal_traces;
  Rng rng(2024);
  for (int i = 0; i < 40; ++i) {
    std::vector<std::int64_t> inputs;
    for (int j = 0; j < 48; ++j) inputs.push_back(rng.uniform_int(0, 99));
    trace::SeededEnvironment environment(rng.engine()());
    auto run = interpreter.run(inputs, environment);
    symbolizer.symbolize(run.trace);
    normal_traces.push_back(std::move(run.trace));
  }
  const auto report = detector.train(normal_traces);
  std::cout << "Trained in " << report.iterations
            << " Baum-Welch iterations; threshold (log-likelihood) = "
            << format_double(detector.threshold(), 2) << "\n\n";

  // 4a. A fresh legitimate execution.
  {
    std::vector<std::int64_t> inputs(48, 7);
    trace::SeededEnvironment environment(4242);
    auto run = interpreter.run(inputs, environment);
    symbolizer.symbolize(run.trace);
    const auto verdict = detector.classify(run.trace);
    std::cout << "Fresh normal run: " << verdict.total_segments
              << " segments, " << verdict.flagged_segments << " flagged -> "
              << (verdict.anomalous ? "ANOMALY" : "normal") << "\n";
  }

  // 4b. A code-reuse attack: the same syscall NAMES a normal session uses,
  //     but issued from gadget addresses (wrong callers).
  {
    const std::vector<attack::PlannedCall> chain = {
        {ir::CallKind::kSyscall, "recv"},  {ir::CallKind::kSyscall, "open"},
        {ir::CallKind::kSyscall, "read"},  {ir::CallKind::kSyscall, "send"},
        {ir::CallKind::kSyscall, "close"}, {ir::CallKind::kSyscall, "chmod"},
        {ir::CallKind::kSyscall, "recv"},  {ir::CallKind::kSyscall, "open"},
        {ir::CallKind::kSyscall, "write"}, {ir::CallKind::kSyscall, "close"},
        {ir::CallKind::kSyscall, "chmod"}, {ir::CallKind::kSyscall, "recv"},
        {ir::CallKind::kSyscall, "send"},  {ir::CallKind::kSyscall, "send"},
        {ir::CallKind::kSyscall, "exit_group"},
    };
    trace::Trace rop = attack::build_rop_trace(module_cfg, chain, rng);
    symbolizer.symbolize(rop);
    const auto verdict = detector.classify(rop);
    std::cout << "ROP chain:        " << verdict.total_segments
              << " segments, " << verdict.flagged_segments << " flagged -> "
              << (verdict.anomalous ? "ANOMALY" : "normal") << "\n";
    std::cout << "\nThe chain reuses only legitimate call names; the wrong\n"
                 "caller contexts (e.g. ";
    for (std::size_t i = 0; i < 3 && i < rop.events.size(); ++i) {
      std::cout << rop.events[i].name << "@" << rop.events[i].caller << " ";
    }
    std::cout << "...) give it away.\n";
  }
  return 0;
}
