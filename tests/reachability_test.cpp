// Unit tests for Definition 3 / Equation 1: reachability probabilities in
// both acyclic-cut (paper) and iterative-fixpoint (extension) modes.
#include <gtest/gtest.h>

#include "src/analysis/reachability.hpp"
#include "src/cfg/cfg_builder.hpp"
#include "src/ir/module.hpp"

namespace cmarkov::analysis {
namespace {

struct Prepared {
  cfg::ModuleCfg module;
  EdgeProbabilities edges;
  std::vector<double> reach;
};

Prepared prepare(const char* source, PropagationMode mode) {
  Prepared out;
  out.module =
      cfg::build_module_cfg(ir::ProgramModule::from_source("t", source));
  const auto& fn = out.module.require("main");
  static const UniformBranchHeuristic heuristic;
  out.edges = conditional_probabilities(fn, heuristic);
  ReachabilityOptions options;
  options.mode = mode;
  out.reach = reachability_probabilities(fn, out.edges, options);
  return out;
}

/// Reachability of the block making the named call.
double call_reach(const Prepared& p, const std::string& call) {
  const auto& fn = p.module.require("main");
  for (const auto& block : fn.blocks) {
    const auto* ext = block.external_call();
    if (ext != nullptr && ext->callee == call) return p.reach[block.id];
  }
  ADD_FAILURE() << "no call " << call;
  return -1.0;
}

TEST(ReachabilityTest, EntryIsOne) {
  const auto p = prepare("fn main() { }", PropagationMode::kAcyclicCut);
  const auto& fn = p.module.require("main");
  EXPECT_DOUBLE_EQ(p.reach[fn.entry], 1.0);
}

TEST(ReachabilityTest, StraightLinePropagatesFullMass) {
  const auto p = prepare("fn main() { sys(\"a\"); sys(\"b\"); sys(\"c\"); }",
                         PropagationMode::kAcyclicCut);
  EXPECT_DOUBLE_EQ(call_reach(p, "a"), 1.0);
  EXPECT_DOUBLE_EQ(call_reach(p, "b"), 1.0);
  EXPECT_DOUBLE_EQ(call_reach(p, "c"), 1.0);
}

TEST(ReachabilityTest, BranchHalvesMass) {
  const auto p = prepare(R"(
fn main() {
  if (input()) { sys("a"); } else { sys("b"); }
  sys("c");
}
)",
                         PropagationMode::kAcyclicCut);
  EXPECT_DOUBLE_EQ(call_reach(p, "a"), 0.5);
  EXPECT_DOUBLE_EQ(call_reach(p, "b"), 0.5);
  // The merge point recovers the full mass (Equation 1 sums over parents).
  EXPECT_DOUBLE_EQ(call_reach(p, "c"), 1.0);
}

TEST(ReachabilityTest, NestedBranchesQuarterMass) {
  const auto p = prepare(R"(
fn main() {
  if (input()) {
    if (input()) { sys("deep"); }
  }
}
)",
                         PropagationMode::kAcyclicCut);
  EXPECT_DOUBLE_EQ(call_reach(p, "deep"), 0.25);
}

TEST(ReachabilityTest, AcyclicCutGivesLoopBodySingleIterationMass) {
  const auto p = prepare(R"(
fn main() {
  var n = input();
  while (n > 0) { sys("body"); n = n - 1; }
  sys("after");
}
)",
                         PropagationMode::kAcyclicCut);
  // One pass through the header: body gets 0.5 (uniform branch), and the
  // post-loop call gets only the direct-exit mass because the back edge is
  // cut.
  EXPECT_DOUBLE_EQ(call_reach(p, "body"), 0.5);
  EXPECT_DOUBLE_EQ(call_reach(p, "after"), 0.5);
}

TEST(ReachabilityTest, FixpointGivesExpectedVisits) {
  const auto p = prepare(R"(
fn main() {
  var n = input();
  while (n > 0) { sys("body"); n = n - 1; }
  sys("after");
}
)",
                         PropagationMode::kIterativeFixpoint);
  // Geometric loop with continuation 0.5: expected body visits =
  // 0.5 + 0.25 + ... = 1.0; the post-loop call is always reached.
  EXPECT_NEAR(call_reach(p, "body"), 1.0, 1e-9);
  EXPECT_NEAR(call_reach(p, "after"), 1.0, 1e-9);
}

TEST(ReachabilityTest, UnreachableBlocksGetZero) {
  const auto p = prepare("fn main() { return; sys(\"dead\"); }",
                         PropagationMode::kAcyclicCut);
  EXPECT_DOUBLE_EQ(call_reach(p, "dead"), 0.0);
}

TEST(ReachabilityTest, ModesAgreeOnAcyclicFunctions) {
  const char* source = R"(
fn main() {
  if (input()) { sys("a"); } else { if (input()) { sys("b"); } }
  sys("c");
}
)";
  const auto acyclic = prepare(source, PropagationMode::kAcyclicCut);
  const auto fixpoint = prepare(source, PropagationMode::kIterativeFixpoint);
  for (std::size_t i = 0; i < acyclic.reach.size(); ++i) {
    EXPECT_NEAR(acyclic.reach[i], fixpoint.reach[i], 1e-9) << "block " << i;
  }
}

TEST(ReachabilityTest, MassIsConservedAtMergePoints) {
  // Three-way nested diamond: every path ends at the final call.
  const auto p = prepare(R"(
fn main() {
  if (input()) {
    if (input()) { sys("p"); } else { sys("q"); }
  } else {
    sys("r");
  }
  sys("end");
}
)",
                         PropagationMode::kAcyclicCut);
  EXPECT_DOUBLE_EQ(call_reach(p, "p"), 0.25);
  EXPECT_DOUBLE_EQ(call_reach(p, "q"), 0.25);
  EXPECT_DOUBLE_EQ(call_reach(p, "r"), 0.5);
  EXPECT_DOUBLE_EQ(call_reach(p, "end"), 1.0);
}

}  // namespace
}  // namespace cmarkov::analysis
