#include "src/util/failpoint.hpp"

#include <algorithm>
#include <cstdlib>

#include "src/util/logging.hpp"
#include "src/util/strings.hpp"

namespace cmarkov::util {

std::atomic<std::uint64_t> FailpointRegistry::armed_count_{0};

std::optional<FailpointSpec> parse_failpoint_spec(std::string_view text) {
  if (text == "off") return FailpointSpec{FailpointMode::kOff, 0};
  if (text == "always") return FailpointSpec{FailpointMode::kAlways, 0};
  if (text == "once") return FailpointSpec{FailpointMode::kOnce, 0};
  const auto parse_n = [](std::string_view digits,
                          std::uint64_t& out) -> bool {
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string_view::npos) {
      return false;
    }
    out = 0;
    for (const char c : digits) {
      out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
  };
  std::uint64_t n = 0;
  if (text.rfind("every:", 0) == 0 && parse_n(text.substr(6), n) && n > 0) {
    return FailpointSpec{FailpointMode::kEveryNth, n};
  }
  if (text.rfind("after:", 0) == 0 && parse_n(text.substr(6), n)) {
    return FailpointSpec{FailpointMode::kAfterN, n};
  }
  return std::nullopt;
}

std::string failpoint_spec_name(const FailpointSpec& spec) {
  switch (spec.mode) {
    case FailpointMode::kOff:
      return "off";
    case FailpointMode::kAlways:
      return "always";
    case FailpointMode::kOnce:
      return "once";
    case FailpointMode::kEveryNth:
      return "every:" + std::to_string(spec.n);
    case FailpointMode::kAfterN:
      return "after:" + std::to_string(spec.n);
  }
  return "?";
}

bool Failpoint::should_fire() {
  const FailpointMode mode = mode_.load(std::memory_order_relaxed);
  if (mode == FailpointMode::kOff) return false;
  // Every armed evaluation gets a deterministic ordinal (1-based); the
  // policies below are pure functions of it, so concurrent sites agree on
  // exactly which evaluations fire.
  const std::uint64_t call =
      calls_.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  switch (mode) {
    case FailpointMode::kOff:
      break;
    case FailpointMode::kAlways:
      fire = true;
      break;
    case FailpointMode::kOnce:
      fire = call == 1;
      if (fire) disarm();
      break;
    case FailpointMode::kEveryNth: {
      const std::uint64_t n = n_.load(std::memory_order_relaxed);
      fire = n > 0 && call % n == 0;
      break;
    }
    case FailpointMode::kAfterN:
      fire = call > n_.load(std::memory_order_relaxed);
      break;
  }
  if (fire) hits_.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

FailpointSpec Failpoint::spec() const {
  const std::lock_guard lock(mu_);
  return FailpointSpec{mode_.load(std::memory_order_relaxed),
                       n_.load(std::memory_order_relaxed)};
}

void Failpoint::arm(FailpointSpec spec) {
  const std::lock_guard lock(mu_);
  if (spec.mode == FailpointMode::kOff) {
    if (mode_.exchange(FailpointMode::kOff, std::memory_order_relaxed) !=
        FailpointMode::kOff) {
      FailpointRegistry::armed_count_.fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
  n_.store(spec.n, std::memory_order_relaxed);
  calls_.store(0, std::memory_order_relaxed);
  if (mode_.exchange(spec.mode, std::memory_order_relaxed) ==
      FailpointMode::kOff) {
    FailpointRegistry::armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Failpoint::disarm() {
  // Lock-free: should_fire (kOnce self-disarm) runs on hot paths while the
  // registry may be arming concurrently; the exchange keeps armed_count_
  // exact either way.
  if (mode_.exchange(FailpointMode::kOff, std::memory_order_relaxed) !=
      FailpointMode::kOff) {
    FailpointRegistry::armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

FailpointRegistry& FailpointRegistry::instance() {
  static FailpointRegistry registry;
  return registry;
}

Failpoint& FailpointRegistry::point(std::string_view name) {
  const std::lock_guard lock(mu_);
  for (const auto& point : points_) {
    if (point->name() == name) return *point;
  }
  points_.push_back(std::make_unique<Failpoint>(std::string(name)));
  return *points_.back();
}

void FailpointRegistry::arm(std::string_view name, FailpointSpec spec) {
  point(name).arm(spec);
}

bool FailpointRegistry::disarm(std::string_view name) {
  const std::lock_guard lock(mu_);
  for (const auto& point : points_) {
    if (point->name() == name) {
      point->disarm();
      return true;
    }
  }
  return false;
}

void FailpointRegistry::disarm_all() {
  const std::lock_guard lock(mu_);
  for (const auto& point : points_) point->disarm();
}

std::vector<FailpointInfo> FailpointRegistry::snapshot() const {
  std::vector<FailpointInfo> out;
  {
    const std::lock_guard lock(mu_);
    out.reserve(points_.size());
    for (const auto& point : points_) {
      out.push_back(FailpointInfo{point->name(), point->spec(), point->hits()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FailpointInfo& a, const FailpointInfo& b) {
              return a.name < b.name;
            });
  return out;
}

std::size_t arm_failpoints_from_env() {
  const char* env = std::getenv("CMARKOV_FAILPOINTS");
  if (env == nullptr || *env == '\0') return 0;
  std::size_t armed = 0;
  std::string_view rest(env);
  while (!rest.empty()) {
    const std::size_t sep = rest.find_first_of(",;");
    std::string_view entry = rest.substr(0, sep);
    rest = sep == std::string_view::npos ? std::string_view()
                                         : rest.substr(sep + 1);
    entry = trim(entry);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    const std::string_view name =
        eq == std::string_view::npos ? entry : entry.substr(0, eq);
    const std::string_view spec_text =
        eq == std::string_view::npos ? std::string_view("always")
                                     : entry.substr(eq + 1);
    const auto spec = parse_failpoint_spec(spec_text);
    if (name.empty() || !spec) {
      log_error() << "failpoint: ignoring malformed CMARKOV_FAILPOINTS "
                     "entry '"
                  << entry << "' (want name=off|always|once|every:N|after:N)";
      continue;
    }
    FailpointRegistry::instance().arm(name, *spec);
    log_info() << "failpoint: armed '" << name << "' "
               << failpoint_spec_name(*spec) << " (from env)";
    ++armed;
  }
  return armed;
}

}  // namespace cmarkov::util
