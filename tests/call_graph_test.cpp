// Unit tests for call-graph construction, SCC condensation order, and
// reachability.
#include <gtest/gtest.h>

#include <map>

#include "src/cfg/call_graph.hpp"
#include "src/cfg/cfg_builder.hpp"
#include "src/cfg/dot_export.hpp"
#include "src/ir/module.hpp"

namespace cmarkov::cfg {
namespace {

CallGraph graph_of(const char* source) {
  const ModuleCfg module =
      build_module_cfg(ir::ProgramModule::from_source("test", source));
  return CallGraph::build(module);
}

TEST(CallGraphTest, EdgesAndSiteCounts) {
  const CallGraph graph = graph_of(R"(
fn leaf() { sys("x"); }
fn mid() { leaf(); leaf(); }
fn main() { mid(); leaf(); }
)");
  EXPECT_TRUE(graph.has_edge("main", "mid"));
  EXPECT_TRUE(graph.has_edge("main", "leaf"));
  EXPECT_TRUE(graph.has_edge("mid", "leaf"));
  EXPECT_FALSE(graph.has_edge("leaf", "mid"));

  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  for (const auto& edge : graph.edges()) {
    counts[{edge.caller, edge.callee}] = edge.site_count;
  }
  EXPECT_EQ((counts[{"mid", "leaf"}]), 2u);
  EXPECT_EQ((counts[{"main", "leaf"}]), 1u);
}

TEST(CallGraphTest, CalleesAndCallers) {
  const CallGraph graph = graph_of(R"(
fn a() { }
fn b() { a(); }
fn main() { a(); b(); }
)");
  EXPECT_EQ(graph.callees("main"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(graph.callers("a"), (std::vector<std::string>{"b", "main"}));
  EXPECT_TRUE(graph.callees("a").empty());
  EXPECT_TRUE(graph.callers("main").empty());
}

TEST(CallGraphTest, SccOrderIsCalleesFirst) {
  const CallGraph graph = graph_of(R"(
fn c() { }
fn b() { c(); }
fn a() { b(); }
fn main() { a(); }
)");
  std::map<std::string, std::size_t> position;
  const auto& order = graph.scc_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    for (const auto& fn : order[i]) position[fn] = i;
  }
  EXPECT_LT(position["c"], position["b"]);
  EXPECT_LT(position["b"], position["a"]);
  EXPECT_LT(position["a"], position["main"]);
}

TEST(CallGraphTest, MutualRecursionFormsOneScc) {
  const CallGraph graph = graph_of(R"(
fn even(n) { if (n == 0) { return 1; } return odd(n - 1); }
fn odd(n) { if (n == 0) { return 0; } return even(n - 1); }
fn main() { even(4); }
)");
  EXPECT_TRUE(graph.in_cycle_with("even", "odd"));
  EXPECT_TRUE(graph.in_cycle_with("even", "even"));
  EXPECT_FALSE(graph.in_cycle_with("main", "even"));
  // even/odd share an SCC that precedes main's.
  bool found_pair_scc = false;
  for (const auto& scc : graph.scc_order()) {
    if (scc.size() == 2) found_pair_scc = true;
  }
  EXPECT_TRUE(found_pair_scc);
}

TEST(CallGraphTest, SelfRecursionIsACycle) {
  const CallGraph graph = graph_of(R"(
fn f(n) { if (n > 0) { f(n - 1); } return n; }
fn main() { f(3); }
)");
  EXPECT_TRUE(graph.in_cycle_with("f", "f"));
  EXPECT_FALSE(graph.in_cycle_with("main", "main"));
}

TEST(CallGraphTest, ReachableFromEntry) {
  const CallGraph graph = graph_of(R"(
fn used() { }
fn unused() { }
fn main() { used(); }
)");
  const auto reachable = graph.reachable_from("main");
  EXPECT_TRUE(reachable.contains("main"));
  EXPECT_TRUE(reachable.contains("used"));
  EXPECT_FALSE(reachable.contains("unused"));
}

TEST(CallGraphTest, EveryFunctionAppearsInExactlyOneScc) {
  const CallGraph graph = graph_of(R"(
fn a() { b(); }
fn b() { a(); c(); }
fn c() { }
fn main() { a(); }
)");
  std::map<std::string, int> seen;
  for (const auto& scc : graph.scc_order()) {
    for (const auto& fn : scc) seen[fn] += 1;
  }
  EXPECT_EQ(seen.size(), 4u);
  for (const auto& [fn, count] : seen) {
    EXPECT_EQ(count, 1) << fn;
  }
}

TEST(CallGraphTest, DotExportMentionsEveryEdge) {
  const CallGraph graph = graph_of(R"(
fn helper() { }
fn main() { helper(); }
)");
  const std::string dot = to_dot(graph);
  EXPECT_NE(dot.find("\"main\" -> \"helper\""), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(CfgDotExportTest, RendersCallLabels) {
  const ModuleCfg module = build_module_cfg(
      ir::ProgramModule::from_source("test", R"(
fn main() { if (input()) { sys("read"); } }
)"));
  const std::string dot = to_dot(module.require("main"));
  EXPECT_NE(dot.find("sys:read@main"), std::string::npos);
  EXPECT_NE(dot.find("[label=\"T\"]"), std::string::npos);
}

}  // namespace
}  // namespace cmarkov::cfg
