// Principal Component Analysis over call-transition vectors (Section III-C).
// The paper maps sparse high-dimension call-transition vectors to a compact
// space before K-means clustering; this is a textbook covariance-eigenvector
// PCA built on the Jacobi solver.
#pragma once

#include <cstddef>

#include "src/linalg/matrix.hpp"
#include "src/util/exec_context.hpp"

namespace cmarkov {

/// How many output dimensions PCA keeps.
struct PcaOptions {
  /// Hard cap on components; 0 means "no cap, use variance target".
  std::size_t max_components = 0;
  /// Keep the smallest number of components whose cumulative explained
  /// variance reaches this fraction (ignored if max_components != 0 and
  /// smaller).
  double variance_to_explain = 0.95;
  /// Above this input dimensionality, exact covariance+Jacobi (O(d^3))
  /// would dominate the whole pipeline (paper-scale models have d = 2n >
  /// 1600); a truncated orthogonal-iteration solver extracting at most
  /// `truncated_components` axes is used instead.
  std::size_t exact_dimension_limit = 160;
  std::size_t truncated_components = 40;
  /// Orthogonal-iteration controls.
  std::size_t power_iterations = 12;
  /// Execution context. exec.threads drives the truncated path's covariance
  /// accumulation and transform() (0 = one per hardware core); results are
  /// identical at any value: parallel tasks write disjoint rows, and
  /// per-cell sums keep their sequential order. exec.seed seeds the
  /// orthogonal-iteration start basis (the former `seed` field) and is
  /// preserved by ExecContext::adopt_runtime().
  ExecContext exec{.threads = 1, .seed = 0x9ca};
};

/// A fitted PCA model: mean vector + projection basis.
class Pca {
 public:
  /// Fits on the rows of `samples` (one sample per row). Requires >= 2 rows.
  static Pca fit(const Matrix& samples, const PcaOptions& options = {});

  /// Projects samples (rows) into the principal subspace; the result is the
  /// paper's "post-PCA matrix", one row per call-transition vector. Rows
  /// project independently over `num_threads` workers (0 = one per
  /// hardware core); the output is identical at any thread count.
  Matrix transform(const Matrix& samples, std::size_t num_threads = 1) const;

  std::size_t input_dimension() const { return mean_.size(); }
  std::size_t output_dimension() const { return basis_.rows(); }

  /// Fraction of total variance captured by the retained components.
  double explained_variance_ratio() const { return explained_ratio_; }

  const Matrix& basis() const { return basis_; }

 private:
  std::vector<double> mean_;
  Matrix basis_;  // output_dim x input_dim, rows are principal axes
  double explained_ratio_ = 0.0;
};

}  // namespace cmarkov
