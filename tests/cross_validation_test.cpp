// Unit tests for the k-fold / termination-set splitting protocol.
#include <gtest/gtest.h>

#include <set>

#include "src/eval/cross_validation.hpp"

namespace cmarkov::eval {
namespace {

std::vector<hmm::ObservationSeq> numbered_segments(std::size_t n) {
  std::vector<hmm::ObservationSeq> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back({i});
  return out;
}

TEST(CrossValidationTest, FoldCountAndSizes) {
  Rng rng(1);
  CrossValidationOptions options;
  options.folds = 5;
  const auto splits = k_fold_splits(numbered_segments(100), rng, options);
  ASSERT_EQ(splits.size(), 5u);
  for (const auto& split : splits) {
    EXPECT_EQ(split.test.size(), 20u);
    EXPECT_EQ(split.termination.size(), 16u);  // 20% of 80
    EXPECT_EQ(split.train.size(), 64u);
  }
}

TEST(CrossValidationTest, TestFoldsPartitionTheData) {
  Rng rng(2);
  CrossValidationOptions options;
  options.folds = 4;
  const auto segments = numbered_segments(41);
  const auto splits = k_fold_splits(segments, rng, options);
  std::multiset<std::size_t> seen;
  for (const auto& split : splits) {
    for (const auto& segment : split.test) seen.insert(segment[0]);
  }
  EXPECT_EQ(seen.size(), 41u);
  for (std::size_t i = 0; i < 41; ++i) {
    EXPECT_EQ(seen.count(i), 1u) << "segment " << i;
  }
}

TEST(CrossValidationTest, SplitsAreDisjointWithinAFold) {
  Rng rng(3);
  CrossValidationOptions options;
  options.folds = 3;
  const auto splits = k_fold_splits(numbered_segments(60), rng, options);
  for (const auto& split : splits) {
    std::set<std::size_t> ids;
    for (const auto* part : {&split.train, &split.termination, &split.test}) {
      for (const auto& segment : *part) {
        EXPECT_TRUE(ids.insert(segment[0]).second)
            << "segment " << segment[0] << " in two parts";
      }
    }
    EXPECT_EQ(ids.size(), 60u);
  }
}

TEST(CrossValidationTest, TrainCapApplies) {
  Rng rng(4);
  CrossValidationOptions options;
  options.folds = 2;
  options.max_train_segments = 10;
  const auto splits = k_fold_splits(numbered_segments(100), rng, options);
  for (const auto& split : splits) {
    EXPECT_EQ(split.train.size(), 10u);
  }
}

TEST(CrossValidationTest, ZeroTerminationFraction) {
  Rng rng(5);
  CrossValidationOptions options;
  options.folds = 2;
  options.termination_fraction = 0.0;
  const auto splits = k_fold_splits(numbered_segments(10), rng, options);
  for (const auto& split : splits) {
    EXPECT_TRUE(split.termination.empty());
    EXPECT_EQ(split.train.size() + split.test.size(), 10u);
  }
}

TEST(CrossValidationTest, DeterministicGivenSeed) {
  Rng a(6);
  Rng b(6);
  CrossValidationOptions options;
  options.folds = 3;
  const auto sa = k_fold_splits(numbered_segments(30), a, options);
  const auto sb = k_fold_splits(numbered_segments(30), b, options);
  for (std::size_t f = 0; f < 3; ++f) {
    EXPECT_EQ(sa[f].train, sb[f].train);
    EXPECT_EQ(sa[f].test, sb[f].test);
  }
}

TEST(CrossValidationTest, RejectsInvalidArguments) {
  Rng rng(7);
  CrossValidationOptions options;
  options.folds = 1;
  EXPECT_THROW(k_fold_splits(numbered_segments(10), rng, options),
               std::invalid_argument);
  options.folds = 20;
  EXPECT_THROW(k_fold_splits(numbered_segments(10), rng, options),
               std::invalid_argument);
  options.folds = 2;
  options.termination_fraction = 1.0;
  EXPECT_THROW(k_fold_splits(numbered_segments(10), rng, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace cmarkov::eval
