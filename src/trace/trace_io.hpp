// Text serialization of traces in an strace-like line format:
//
//   # program: gzip
//   sys read 0x40012c [fill_window]
//   lib memcpy 0x400188 [deflate_block]
//
// One event per line: stream tag, call name, hexadecimal site address and,
// when the trace has been symbolized, the caller in brackets. The format
// round-trips through parse_trace and is what the CLI's `trace` and `scan`
// commands exchange. Like strace output, it carries 1-level context only;
// the 2-level (grandparent) extension fields are not serialized.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "src/trace/event.hpp"

namespace cmarkov::trace {

class TraceFormatError : public std::runtime_error {
 public:
  TraceFormatError(const std::string& message, std::size_t line);

  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Writes a trace (one event per line, header comment with the program
/// name).
void write_trace(std::ostream& out, const Trace& trace);
std::string trace_to_string(const Trace& trace);
void write_trace_file(const std::string& path, const Trace& trace);

/// Parses the format back. Unsymbolized events (no bracket part) get an
/// empty caller. Throws TraceFormatError with a 1-based line number.
Trace parse_trace(std::istream& in);
Trace parse_trace(const std::string& text);
Trace read_trace_file(const std::string& path);

}  // namespace cmarkov::trace
