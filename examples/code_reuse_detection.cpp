// The paper's Section II-C example, executable: two call sequences with
// identical call names — S1 with correct caller contexts, S2 a code-reuse
// attack issuing the same calls from the wrong functions. A flow-sensitive
// (context-free) model accepts both; the context-sensitive model separates
// them.
//
//   S1: ... read@g  read@f  write@f   execve@g   ...   (normal)
//   S2: ... read@g  read@f  write@foo execve@bar ...   (attack)
#include <iomanip>
#include <iostream>

#include "src/cfg/cfg_builder.hpp"
#include "src/core/detector.hpp"
#include "src/trace/interpreter.hpp"
#include "src/trace/symbolizer.hpp"
#include "src/util/strings.hpp"

using namespace cmarkov;

namespace {

// A program shaped like the paper's Figure 1 example: g() reads a command,
// f() processes data with read/write, g() may execve a helper. foo() and
// bar() exist but never make these calls — they are the wrong contexts the
// attack will claim.
const char* kSource = R"(
fn f() {
  sys("read");
  lib("memcpy");
  sys("write");
}
fn g() {
  sys("read");
  f();
  if (input() % 4 == 0) {
    sys("execve");
  }
}
fn foo() {
  lib("strlen");
  lib("strcmp");
}
fn bar() {
  lib("malloc");
  lib("free");
}
fn main() {
  var rounds = input() % 8 + 4;
  while (rounds > 0) {
    g();
    if (input() % 3 == 0) { foo(); }
    if (input() % 5 == 0) { bar(); }
    rounds = rounds - 1;
  }
}
)";

trace::Trace hand_trace(
    std::vector<std::pair<std::string, std::string>> calls) {
  trace::Trace trace;
  trace.program = "figure1";
  for (auto& [name, caller] : calls) {
    trace::CallEvent event;
    event.kind = ir::CallKind::kSyscall;
    event.name = std::move(name);
    event.caller = std::move(caller);
    trace.events.push_back(std::move(event));
  }
  return trace;
}

}  // namespace

int main() {
  const ir::ProgramModule program =
      ir::ProgramModule::from_source("figure1", kSource);

  // Train two detectors on the same normal traces: context-sensitive
  // (CMarkov) and context-insensitive (STILO-style).
  auto make_detector = [&](bool context) {
    core::DetectorConfig config;
    config.pipeline.filter = analysis::CallFilter::kSyscalls;
    config.pipeline.context_sensitive = context;
    config.segments.length = 4;  // short segments match the tiny example
    config.target_fp = 0.002;
    return core::Detector::build(program, config);
  };
  core::Detector cmarkov = make_detector(true);
  core::Detector flow_only = make_detector(false);

  const auto module_cfg = cfg::build_module_cfg(program);
  const trace::Interpreter interpreter(module_cfg);
  const trace::Symbolizer symbolizer(module_cfg);
  std::vector<trace::Trace> normal;
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    std::vector<std::int64_t> inputs;
    for (int j = 0; j < 32; ++j) inputs.push_back(rng.uniform_int(0, 99));
    trace::SeededEnvironment environment(rng.engine()());
    auto run = interpreter.run(inputs, environment);
    symbolizer.symbolize(run.trace);
    normal.push_back(std::move(run.trace));
  }
  cmarkov.train(normal);
  flow_only.train(normal);

  // The paper's S1/S2 sequences.
  const trace::Trace s1 = hand_trace({{"read", "g"},
                                      {"read", "f"},
                                      {"write", "f"},
                                      {"execve", "g"}});
  const trace::Trace s2 = hand_trace({{"read", "g"},
                                      {"read", "f"},
                                      {"write", "foo"},
                                      {"execve", "bar"}});

  auto report = [&](const char* label, const trace::Trace& trace) {
    const auto ctx = cmarkov.classify(trace);
    const auto flow = flow_only.classify(trace);
    std::cout << label << "\n";
    std::cout << "  calls:";
    for (const auto& e : trace.events) {
      std::cout << " " << e.name << "@" << e.caller;
    }
    std::cout << "\n  context-sensitive model:   "
              << (ctx.anomalous ? "ANOMALY" : "normal")
              << "  (min log-likelihood "
              << format_double(ctx.min_log_likelihood, 2) << ")\n";
    std::cout << "  context-insensitive model: "
              << (flow.anomalous ? "ANOMALY" : "normal")
              << "  (min log-likelihood "
              << format_double(flow.min_log_likelihood, 2) << ")\n\n";
  };

  std::cout << "Section II-C: distinguishing code reuse with 1-level "
               "calling context\n\n";
  report("S1 (normal sequence):", s1);
  report("S2 (code-reuse attack, same call names, wrong callers):", s2);

  std::cout << "Both models see the same call-name sequence read read "
               "write execve;\nonly the context-sensitive model can reject "
               "S2, because write@foo and\nexecve@bar never occur in the "
               "program's behaviour model.\n";
  return 0;
}
