// Token definitions for MiniC, the small imperative language whose programs
// stand in for the paper's analyzed binaries (see DESIGN.md substitutions).
//
// MiniC has integer variables, arithmetic/comparison expressions, if/while
// control flow, user function calls, and two external-call intrinsics:
//   sys("read")   -- a system call observation
//   lib("malloc") -- a library call observation
// plus input() which reads the next value from the test-case input stream.
#pragma once

#include <cstdint>
#include <string>

namespace cmarkov::ir {

enum class TokenKind {
  kEnd,
  kIdentifier,
  kInteger,
  kString,
  // Keywords.
  kFn,
  kVar,
  kIf,
  kElse,
  kWhile,
  kReturn,
  kSys,
  kLib,
  kInput,
  // Punctuation and operators.
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kAssign,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kLt,
  kLe,
  kGt,
  kGe,
  kEqEq,
  kNotEq,
  kAndAnd,
  kOrOr,
  kNot,
};

/// One lexical token with its source position (1-based line/column).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // identifier spelling or string literal contents
  std::int64_t int_value = 0;  // valid when kind == kInteger
  int line = 0;
  int column = 0;
};

/// Human-readable token-kind name for diagnostics.
std::string token_kind_name(TokenKind kind);

}  // namespace cmarkov::ir
