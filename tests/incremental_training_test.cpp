// Tests for the stateful hmm::Trainer (PR 9): the bit-identity contract
// between batch fit and incremental partial_fit, resumable TrainerState
// round trips through core::model_io, and the TrainingReport ergonomics.
//
// Bit identity means exact double equality (EXPECT_EQ on every matrix
// cell, no tolerance): fit(A ++ B) and fit(A); partial_fit(B) must walk
// the same floating-point trajectory at every thread count.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/core/model_io.hpp"
#include "src/hmm/random_init.hpp"
#include "src/hmm/trainer.hpp"
#include "src/util/rng.hpp"

namespace cmarkov::hmm {
namespace {

std::vector<ObservationSeq> sample_sequences(const Hmm& model, Rng& rng,
                                             std::size_t count,
                                             std::size_t length) {
  std::vector<ObservationSeq> out;
  for (std::size_t s = 0; s < count; ++s) {
    ObservationSeq seq;
    std::vector<double> init = model.initial;
    std::size_t state = rng.weighted_index(init);
    for (std::size_t t = 0; t < length; ++t) {
      std::vector<double> em(model.num_symbols());
      for (std::size_t k = 0; k < em.size(); ++k) {
        em[k] = model.emission(state, k);
      }
      seq.push_back(rng.weighted_index(em));
      std::vector<double> tr(model.num_states());
      for (std::size_t j = 0; j < tr.size(); ++j) {
        tr[j] = model.transition(state, j);
      }
      state = rng.weighted_index(tr);
    }
    out.push_back(std::move(seq));
  }
  return out;
}

Hmm ground_truth() {
  Hmm model;
  model.transition = Matrix::from_rows({{0.85, 0.1, 0.05},
                                        {0.1, 0.8, 0.1},
                                        {0.05, 0.15, 0.8}});
  model.emission = Matrix::from_rows({{0.8, 0.1, 0.05, 0.05},
                                      {0.1, 0.7, 0.1, 0.1},
                                      {0.05, 0.05, 0.8, 0.1}});
  model.initial = {0.6, 0.3, 0.1};
  return model;
}

void expect_same_matrix(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j), b(i, j)) << what << " cell (" << i << "," << j << ")";
    }
  }
}

void expect_same_model(const Hmm& a, const Hmm& b) {
  expect_same_matrix(a.transition, b.transition, "transition");
  expect_same_matrix(a.emission, b.emission, "emission");
  ASSERT_EQ(a.initial.size(), b.initial.size());
  for (std::size_t i = 0; i < a.initial.size(); ++i) {
    EXPECT_EQ(a.initial[i], b.initial[i]) << "initial[" << i << "]";
  }
}

TrainingOptions options_with_threads(std::size_t threads) {
  TrainingOptions options;
  options.max_iterations = 12;
  options.min_improvement = 1e-6;
  options.patience = 2;
  options.exec.threads = threads;
  return options;
}

// fit(A ++ B) == fit(A); partial_fit(B), exactly, at 1/4/8 threads — and
// the batch and incremental sides may even run at *different* thread
// counts (the PR 2 guarantee composes with the prefix cache).
TEST(IncrementalTrainingTest, PartialFitIsBitIdenticalToBatchFit) {
  Rng rng(11);
  const Hmm truth = ground_truth();
  const auto corpus = sample_sequences(truth, rng, 60, 25);
  const Hmm initial = randomly_initialized_hmm(3, 4, rng);

  const std::vector<ObservationSeq> base(corpus.begin(), corpus.begin() + 45);
  const std::vector<ObservationSeq> extra(corpus.begin() + 45, corpus.end());

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Trainer batch(initial, options_with_threads(1));
    batch.fit(corpus);

    Trainer incremental(initial, options_with_threads(threads));
    incremental.fit(base);
    const TrainingReport report = incremental.partial_fit(extra);

    expect_same_model(batch.model(), incremental.model());
    EXPECT_EQ(batch.last_report().iterations, report.iterations);
    EXPECT_EQ(batch.last_report().train_log_likelihood,
              report.train_log_likelihood);
  }
}

// Chained partial_fits land on the same bits as one batch fit of the whole
// concatenation, and the batch ledger records each absorption.
TEST(IncrementalTrainingTest, ChainedPartialFitsMatchSingleBatch) {
  Rng rng(12);
  const auto corpus = sample_sequences(ground_truth(), rng, 48, 20);
  const Hmm initial = randomly_initialized_hmm(3, 4, rng);

  Trainer batch(initial, options_with_threads(1));
  batch.fit(corpus);

  Trainer incremental(initial, options_with_threads(4));
  incremental.fit({corpus.begin(), corpus.begin() + 16});
  incremental.partial_fit({corpus.begin() + 16, corpus.begin() + 31});
  incremental.partial_fit({corpus.begin() + 31, corpus.end()});

  expect_same_model(batch.model(), incremental.model());
  ASSERT_EQ(incremental.state().batches.size(), 3u);
  EXPECT_EQ(incremental.state().batches[0].id, 0u);
  EXPECT_EQ(incremental.state().batches[1].id, 1u);
  EXPECT_EQ(incremental.state().batches[2].id, 2u);
  EXPECT_EQ(incremental.state().batches[0].train_count, 16u);
  EXPECT_EQ(incremental.state().batches[1].train_count, 15u);
  EXPECT_EQ(incremental.state().batches[2].train_count, 17u);
  EXPECT_EQ(incremental.state().train.size(), corpus.size());
  // One report per run, oldest first (TrainingReport ergonomics).
  ASSERT_EQ(incremental.history().size(), 3u);
  EXPECT_EQ(&incremental.history().back(), &incremental.last_report());
}

// Serialize mid-training, reload in a "new process", partial_fit the rest:
// bit-identical to the uninterrupted trainer. This is the crash-resume
// story model_io exists for.
TEST(IncrementalTrainingTest, SerializedResumeIsBitIdentical) {
  Rng rng(13);
  const auto corpus = sample_sequences(ground_truth(), rng, 50, 22);
  const auto holdout = sample_sequences(ground_truth(), rng, 10, 22);
  const Hmm initial = randomly_initialized_hmm(3, 4, rng);

  const std::vector<ObservationSeq> base(corpus.begin(), corpus.begin() + 40);
  const std::vector<ObservationSeq> extra(corpus.begin() + 40, corpus.end());

  Trainer uninterrupted(initial, options_with_threads(4));
  uninterrupted.fit(base, holdout);
  uninterrupted.partial_fit(extra);

  Trainer first_process(initial, options_with_threads(4));
  first_process.fit(base, holdout);
  std::stringstream wire;
  core::save_trainer_state(wire, first_process.state());

  Trainer second_process(core::load_trainer_state(wire),
                         options_with_threads(8));
  const TrainingReport resumed = second_process.partial_fit(extra);

  expect_same_model(uninterrupted.model(), second_process.model());
  EXPECT_EQ(uninterrupted.last_report().iterations, resumed.iterations);
  EXPECT_EQ(uninterrupted.last_report().holdout_log_likelihood,
            resumed.holdout_log_likelihood);
  // The resumed trainer rematerializes the model lazily; after the run it
  // must report one.
  EXPECT_TRUE(second_process.has_model());
}

// The prefix cache is an optimization, never a semantic: a resumed state
// whose cache was cleared still produces the same bits (it just pays the
// full iteration-0 price again).
TEST(IncrementalTrainingTest, ClearedPrefixCacheChangesNothing) {
  Rng rng(14);
  const auto corpus = sample_sequences(ground_truth(), rng, 36, 18);
  const Hmm initial = randomly_initialized_hmm(3, 4, rng);

  const std::vector<ObservationSeq> base(corpus.begin(), corpus.begin() + 24);
  const std::vector<ObservationSeq> extra(corpus.begin() + 24, corpus.end());

  Trainer cached(initial, options_with_threads(1));
  cached.fit(base);

  TrainerState cold = cached.state();
  cold.cached_count = 0;
  cold.slot_prefix.clear();
  cold.ll_sum_prefix = 0.0;
  cold.observed_prefix = 0;
  cold.holdout_cached = 0;
  cold.holdout_ll_sum = 0.0;

  cached.partial_fit(extra);
  Trainer uncached(std::move(cold), options_with_threads(1));
  uncached.partial_fit(extra);

  expect_same_model(cached.model(), uncached.model());
}

// partial_fit may grow the holdout set; termination then evaluates the
// concatenated holdout exactly as a batch fit would.
TEST(IncrementalTrainingTest, HoldoutGrowsWithPartialFit) {
  Rng rng(15);
  const auto corpus = sample_sequences(ground_truth(), rng, 40, 20);
  const auto holdout = sample_sequences(ground_truth(), rng, 12, 20);
  const Hmm initial = randomly_initialized_hmm(3, 4, rng);

  const std::vector<ObservationSeq> base_h(holdout.begin(),
                                           holdout.begin() + 8);
  const std::vector<ObservationSeq> extra_h(holdout.begin() + 8,
                                            holdout.end());

  Trainer batch(initial, options_with_threads(1));
  batch.fit(corpus, holdout);

  Trainer incremental(initial, options_with_threads(4));
  incremental.fit({corpus.begin(), corpus.begin() + 30}, base_h);
  incremental.partial_fit({corpus.begin() + 30, corpus.end()}, extra_h);

  expect_same_model(batch.model(), incremental.model());
  EXPECT_EQ(incremental.state().holdout.size(), holdout.size());
  EXPECT_EQ(incremental.state().batches.back().holdout_count, 4u);
}

// Vocabulary growth needs a batch fit: symbols outside θ₀'s emission
// width are rejected loudly rather than silently mis-trained.
TEST(IncrementalTrainingTest, OutOfVocabularySymbolThrows) {
  Rng rng(16);
  Trainer trainer(randomly_initialized_hmm(3, 4, rng),
                  options_with_threads(1));
  trainer.fit(sample_sequences(ground_truth(), rng, 8, 10));
  const std::vector<ObservationSeq> bad = {{0, 1, 4}};  // symbol 4 >= M=4
  EXPECT_THROW(trainer.partial_fit(bad), std::invalid_argument);
}

// An empty partial_fit re-derives the same model (replay over the same
// corpus) and absorbs nothing.
TEST(IncrementalTrainingTest, EmptyPartialFitIsIdempotent) {
  Rng rng(17);
  const auto corpus = sample_sequences(ground_truth(), rng, 20, 15);
  Trainer trainer(randomly_initialized_hmm(3, 4, rng),
                  options_with_threads(1));
  trainer.fit(corpus);
  const Hmm before = trainer.model();
  trainer.partial_fit({});
  expect_same_model(before, trainer.model());
  EXPECT_EQ(trainer.state().train.size(), corpus.size());
}

// Model access before any run throws; the initial model is immutable.
TEST(IncrementalTrainingTest, ModelAccessBeforeTrainingThrows) {
  Rng rng(18);
  const Hmm initial = randomly_initialized_hmm(3, 4, rng);
  Trainer trainer(initial, options_with_threads(1));
  EXPECT_FALSE(trainer.has_model());
  EXPECT_THROW(trainer.model(), std::logic_error);
  EXPECT_THROW(trainer.last_report(), std::logic_error);
  trainer.fit(sample_sequences(ground_truth(), rng, 10, 12));
  expect_same_model(trainer.initial_model(), initial);
}

// After a run, the prefix cache covers the whole absorbed corpus, and the
// per-run entry/final LLs in the batch ledger are coherent.
TEST(IncrementalTrainingTest, StateBookkeepingAfterRuns) {
  Rng rng(19);
  const auto corpus = sample_sequences(ground_truth(), rng, 30, 16);
  Trainer trainer(randomly_initialized_hmm(3, 4, rng),
                  options_with_threads(4));
  trainer.fit({corpus.begin(), corpus.begin() + 20});
  trainer.partial_fit({corpus.begin() + 20, corpus.end()});

  const TrainerState& state = trainer.state();
  EXPECT_EQ(state.cached_count, state.train.size());
  EXPECT_EQ(state.slot_prefix.size(), kTrainerMergeSlots);
  EXPECT_LE(state.observed_prefix, state.cached_count);
  EXPECT_NO_THROW(state.validate());
  for (const BatchRecord& record : state.batches) {
    EXPECT_GE(record.iterations, 1u);
    EXPECT_GE(record.final_train_ll, record.entry_train_ll - 1e-6)
        << "batch " << record.id;
  }
}

// publish() inverts control to the serving tier; without a hook or a
// model it must refuse.
TEST(IncrementalTrainingTest, PublishRequiresHookAndModel) {
  Rng rng(20);
  Trainer trainer(randomly_initialized_hmm(3, 4, rng),
                  options_with_threads(1));
  EXPECT_THROW(trainer.publish(), std::logic_error);  // no hook, no model
  int published = 0;
  trainer.set_publish_hook([&](const Trainer& t) {
    EXPECT_TRUE(t.has_model());
    ++published;
  });
  EXPECT_THROW(trainer.publish(), std::logic_error);  // hook but no model
  trainer.fit(sample_sequences(ground_truth(), rng, 8, 10));
  trainer.publish();
  EXPECT_EQ(published, 1);
}

}  // namespace
}  // namespace cmarkov::hmm
