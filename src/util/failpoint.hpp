// Deterministic fault injection for chaos testing: named failpoints that
// production code plants at its risk surfaces (disk writes, accept loops,
// queue admission, model reload) and tests arm at runtime to force the
// failure path to execute.
//
//   if (CMARKOV_FAILPOINT("snapshot.write_fail")) {
//     // behave exactly as if ::write had failed
//   }
//
// The macro is an expression that evaluates to true when the failpoint
// "fires". Disabled cost is one relaxed load of a process-wide armed
// counter (nothing per point is touched until something, anywhere, is
// armed) — measured at well under the 1% serve-throughput budget in
// BENCH_serve.json. There is no compile-time stripping: the chaos suite
// must exercise the exact binary that ships.
//
// Trigger policies (FailpointSpec), all deterministic:
//   always    fire on every evaluation
//   once      fire on the first evaluation, then disarm
//   every:N   fire on every Nth evaluation (N, 2N, 3N, ...)
//   after:N   skip the first N evaluations, then fire on every one
//   off       disarm
//
// Activation paths:
//   - env: CMARKOV_FAILPOINTS="name=spec,name=spec" read by
//     arm_failpoints_from_env() at daemon startup;
//   - protocol: the FAILPOINT admin verb (docs/SERVING.md);
//   - tests: FailpointRegistry::instance().arm(...) directly, with a
//     ScopedFailpoint guard so one test's arming never leaks into the next.
//
// Each name must be planted at exactly one source site, only under the
// directories the chaos harness owns (tools/check_failpoints.sh, enforced
// by the check_failpoints CTest). Hit counts are exported onto the obs
// registry as cmarkov_failpoint_<name>_hits_total counters by the serve
// layer's gauge refresh.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cmarkov::util {

enum class FailpointMode : std::uint8_t {
  kOff,
  kAlways,
  kOnce,
  kEveryNth,
  kAfterN,
};

struct FailpointSpec {
  FailpointMode mode = FailpointMode::kOff;
  /// The N of every:N / after:N; ignored otherwise.
  std::uint64_t n = 0;
};

/// Parses "off" | "always" | "once" | "every:N" | "after:N" (N > 0 for
/// every; N >= 0 for after). Returns nullopt on anything else.
std::optional<FailpointSpec> parse_failpoint_spec(std::string_view text);

/// Renders a spec back into its canonical string form.
std::string failpoint_spec_name(const FailpointSpec& spec);

/// One named injection site. Stable address for the lifetime of the
/// process (sites cache a reference); all members are safe to poke from
/// any thread.
class Failpoint {
 public:
  explicit Failpoint(std::string name) : name_(std::move(name)) {}
  Failpoint(const Failpoint&) = delete;
  Failpoint& operator=(const Failpoint&) = delete;

  const std::string& name() const { return name_; }

  /// Evaluates the trigger policy. Called only while something is armed
  /// process-wide (the macro's outer guard); off points return false after
  /// one relaxed load.
  bool should_fire();

  /// Times this point has fired since process start (monotonic across
  /// re-arms — it is an observability counter, not policy state).
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }

  FailpointSpec spec() const;

 private:
  friend class FailpointRegistry;
  void arm(FailpointSpec spec);      // registry-managed (armed accounting)
  void disarm();                     // idempotent

  const std::string name_;
  mutable std::mutex mu_;            // guards spec transitions only
  std::atomic<FailpointMode> mode_{FailpointMode::kOff};
  std::atomic<std::uint64_t> n_{0};
  /// Evaluations since the last arm (policy input; reset by arm()).
  std::atomic<std::uint64_t> calls_{0};
  std::atomic<std::uint64_t> hits_{0};
};

struct FailpointInfo {
  std::string name;
  FailpointSpec spec;
  std::uint64_t hits = 0;
};

/// Process-wide name-keyed registry. Sites self-register on first
/// execution (the macro's function-local static); arming an unseen name
/// pre-creates the point so env/protocol activation works regardless of
/// which code path runs first.
class FailpointRegistry {
 public:
  static FailpointRegistry& instance();

  /// True once any point is armed — the macro's one-load fast path.
  static bool any_armed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Returns the point named `name`, creating it if needed. Sites call
  /// this once (cached in a function-local static).
  Failpoint& point(std::string_view name);

  /// Arms `name` with `spec` (creating the point if unseen). A spec of
  /// mode kOff disarms.
  void arm(std::string_view name, FailpointSpec spec);

  /// Disarms one point; false when the name was never seen nor armed.
  bool disarm(std::string_view name);

  /// Disarms everything (test teardown).
  void disarm_all();

  /// Every known point with its current spec and lifetime hit count,
  /// sorted by name (deterministic FAILPOINT listings and metric export).
  std::vector<FailpointInfo> snapshot() const;

 private:
  friend class Failpoint;
  FailpointRegistry() = default;

  /// Armed-point count backing any_armed(); maintained by Failpoint
  /// arm/disarm transitions.
  static std::atomic<std::uint64_t> armed_count_;

  mutable std::mutex mu_;
  /// unique_ptr for address stability across map growth.
  std::vector<std::unique_ptr<Failpoint>> points_;
};

/// Arms every "name=spec" entry of the CMARKOV_FAILPOINTS environment
/// variable (comma- or semicolon-separated). Returns the number armed;
/// malformed entries are reported via log_error and skipped — a typo in
/// the chaos config must not take the daemon down with it.
std::size_t arm_failpoints_from_env();

/// RAII arming for tests: arms on construction, disarms the same point on
/// destruction (regardless of how many times it fired or re-armed).
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string name, FailpointSpec spec) : name_(std::move(name)) {
    FailpointRegistry::instance().arm(name_, spec);
  }
  ScopedFailpoint(std::string name, std::string_view spec)
      : ScopedFailpoint(std::move(name), *parse_failpoint_spec(spec)) {}
  ~ScopedFailpoint() { FailpointRegistry::instance().disarm(name_); }
  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string name_;
};

}  // namespace cmarkov::util

/// Plants the failpoint `name` here; evaluates to true when it fires.
/// `name` must be a string literal, used at exactly one site
/// (tools/check_failpoints.sh).
#define CMARKOV_FAILPOINT(name)                                            \
  (::cmarkov::util::FailpointRegistry::any_armed() &&                      \
   ([]() -> ::cmarkov::util::Failpoint& {                                  \
     static ::cmarkov::util::Failpoint& cmarkov_fp =                       \
         ::cmarkov::util::FailpointRegistry::instance().point(name);       \
     return cmarkov_fp;                                                    \
   }())                                                                    \
       .should_fire())
