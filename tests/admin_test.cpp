// Tests for the operational introspection plane: TimeSeriesRing windowing
// and derived rates, bucket_quantile parity with the live Histogram, the
// TimeSeriesCollector (manual sample_now drive and the real thread), the
// strict JSON parser behind `cmarkov top`, AdminConn HTTP/1.1 parsing
// (keep-alive, pipelining, partial input, hostile requests), end-to-end
// scrapes against a live EpollServer, per-shard /statusz ground truth
// under churn, and a concurrent scrape hammer proving a scrape never
// stalls admission.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <functional>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics_registry.hpp"
#include "src/obs/timeseries.hpp"
#include "src/serve/net/admin.hpp"
#include "src/serve/net/epoll_server.hpp"
#include "src/serve/session_manager.hpp"
#include "src/util/json.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::serve::net {
namespace {

core::Detector train_detector(const workload::ProgramSuite& suite,
                              std::uint64_t seed) {
  core::DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  config.training.max_iterations = 4;
  core::Detector detector = core::Detector::build(suite.module(), config);
  detector.train(workload::collect_traces(suite, 20, seed).traces);
  return detector;
}

struct Fixture {
  workload::ProgramSuite gzip = workload::make_gzip_suite();
  std::shared_ptr<const core::Detector> gzip_model =
      std::make_shared<const core::Detector>(train_detector(gzip, 91));

  std::vector<trace::CallEvent> events_for(std::uint64_t seed,
                                           std::size_t runs = 3) const {
    std::vector<trace::CallEvent> events;
    for (const auto& trace :
         workload::collect_traces(gzip, runs, seed).traces) {
      events.insert(events.end(), trace.events.begin(), trace.events.end());
    }
    return events;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::unique_ptr<ModelRegistry> make_registry() {
  auto registry = std::make_unique<ModelRegistry>();
  registry->add_shared("gzip", fixture().gzip_model);
  return registry;
}

/// The shard a session id hashes onto (must mirror SessionManager).
std::size_t shard_of(const std::string& id, std::size_t num_workers) {
  return std::hash<std::string>{}(id) % num_workers;
}

// -- TimeSeriesRing --------------------------------------------------------

TEST(TimeSeriesRingTest, EmptyAndSingleSampleDeriveZero) {
  obs::TimeSeriesRing ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.latest(), 0.0);
  EXPECT_EQ(ring.delta(), 0.0);
  EXPECT_EQ(ring.rate_per_second(), 0.0);

  ring.push(1.0, 100.0);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.latest(), 100.0);
  EXPECT_EQ(ring.delta(), 0.0);  // needs two samples for a window
  EXPECT_EQ(ring.rate_per_second(), 0.0);
}

TEST(TimeSeriesRingTest, WrapAroundKeepsNewestAndDerivesWindowedRate) {
  obs::TimeSeriesRing ring(3);
  for (int i = 0; i < 7; ++i) {
    ring.push(static_cast<double>(i), static_cast<double>(i) * 10.0);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.oldest().t_seconds, 4.0);
  EXPECT_EQ(ring.newest().t_seconds, 6.0);
  EXPECT_EQ(ring.latest(), 60.0);
  EXPECT_EQ(ring.delta(), 20.0);          // 60 - 40 over the retained window
  EXPECT_EQ(ring.rate_per_second(), 10.0);  // 20 over 2 seconds

  const auto samples = ring.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples.front().value, 40.0);  // oldest first
  EXPECT_EQ(samples.back().value, 60.0);
}

TEST(TimeSeriesRingTest, ZeroWidthWindowRateIsZero) {
  obs::TimeSeriesRing ring(4);
  ring.push(5.0, 1.0);
  ring.push(5.0, 9.0);  // same timestamp: delta defined, rate guarded
  EXPECT_EQ(ring.delta(), 8.0);
  EXPECT_EQ(ring.rate_per_second(), 0.0);
}

// -- bucket_quantile -------------------------------------------------------

TEST(BucketQuantileTest, MatchesLiveHistogramQuantile) {
  const std::vector<double> bounds = {1.0, 2.0, 5.0, 10.0};
  obs::Histogram live{std::span<const double>(bounds)};
  for (double v : {0.5, 0.7, 1.5, 1.6, 1.9, 3.0, 4.0, 4.5, 8.0, 25.0}) {
    live.record(v);
  }
  const std::vector<std::uint64_t> counts = live.bucket_counts();
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(obs::bucket_quantile(bounds, counts, q), live.quantile(q))
        << "q=" << q;
  }
}

TEST(BucketQuantileTest, EmptyDistributionAndOverflowSaturation) {
  const std::vector<double> bounds = {1.0, 2.0};
  EXPECT_EQ(obs::bucket_quantile(bounds, {0, 0, 0}, 0.5), 0.0);
  // All mass in the overflow bucket: saturate at the last finite bound.
  EXPECT_EQ(obs::bucket_quantile(bounds, {0, 0, 7}, 0.99), 2.0);
}

// -- TimeSeriesCollector ---------------------------------------------------

TEST(TimeSeriesCollectorTest, DerivesCounterRatesFromManualSamples) {
  obs::MetricsRegistry registry;
  obs::Counter& events = registry.counter("cmarkov_test_events_total");
  obs::Gauge& depth = registry.gauge("cmarkov_test_depth_open");

  obs::TimeSeriesCollector collector(registry);
  events.add(100);
  depth.set(3.0);
  collector.sample_now(0.0);
  events.add(50);
  depth.set(7.0);
  collector.sample_now(10.0);

  EXPECT_EQ(collector.samples_taken(), 2u);
  EXPECT_EQ(collector.counter_latest("cmarkov_test_events_total"), 150.0);
  EXPECT_EQ(collector.counter_rate("cmarkov_test_events_total"), 5.0);
  EXPECT_EQ(collector.gauge_latest("cmarkov_test_depth_open"), 7.0);
  EXPECT_EQ(collector.counter_rate("cmarkov_unknown_total"), 0.0);
}

TEST(TimeSeriesCollectorTest, HistogramWindowUsesDeltasNotLifetime) {
  obs::MetricsRegistry registry;
  const std::vector<double> bounds = {1.0, 10.0, 100.0};
  obs::Histogram& hist = registry.histogram(
      "cmarkov_test_latency_micros", std::span<const double>(bounds));

  // 1000 fast recordings before the window opens...
  for (int i = 0; i < 1000; ++i) hist.record(0.5);
  obs::TimeSeriesCollector collector(registry);
  collector.sample_now(0.0);
  // ...and 10 slow ones inside it: windowed quantiles must see only these.
  for (int i = 0; i < 10; ++i) hist.record(50.0);
  collector.sample_now(5.0);

  const obs::HistogramWindow window =
      collector.histogram_window("cmarkov_test_latency_micros");
  EXPECT_EQ(window.count, 1010u);
  EXPECT_EQ(window.count_delta, 10u);
  EXPECT_EQ(window.rate_per_second, 2.0);
  EXPECT_EQ(window.p50, 100.0);  // all windowed mass in the (10,100] bucket
  EXPECT_EQ(window.p99, 100.0);
  // Lifetime distribution would have said p50 = 1.0:
  EXPECT_EQ(hist.quantile(0.5), 1.0);
}

TEST(TimeSeriesCollectorTest, SingleSampleFallsBackToLifetimeQuantiles) {
  obs::MetricsRegistry registry;
  const std::vector<double> bounds = {1.0, 10.0};
  obs::Histogram& hist = registry.histogram(
      "cmarkov_test_wait_micros", std::span<const double>(bounds));
  for (int i = 0; i < 8; ++i) hist.record(0.5);
  obs::TimeSeriesCollector collector(registry);
  collector.sample_now(0.0);
  const obs::HistogramWindow window =
      collector.histogram_window("cmarkov_test_wait_micros");
  EXPECT_EQ(window.count, 8u);
  EXPECT_EQ(window.count_delta, 0u);
  EXPECT_EQ(window.p50, 1.0);  // lifetime fallback until the ring has 2
}

TEST(TimeSeriesCollectorTest, VarzJsonParsesWithSchemaAndDerivations) {
  obs::MetricsRegistry registry;
  registry.counter("cmarkov_test_events_total").add(30);
  obs::TimeSeriesCollector collector(registry);
  collector.sample_now(0.0);
  registry.counter("cmarkov_test_events_total").add(30);
  collector.sample_now(3.0);

  const util::JsonValue varz = util::parse_json(collector.varz_json());
  ASSERT_TRUE(varz.is_object());
  EXPECT_EQ(varz.find("schema")->string_or(""), "cmarkov.varz.v1");
  EXPECT_EQ(varz.find("samples")->number_or(0), 2.0);
  const util::JsonValue* series =
      varz.find_path("counters.cmarkov_test_events_total");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->find("value")->number_or(0), 60.0);
  EXPECT_EQ(series->find("delta")->number_or(0), 30.0);
  EXPECT_EQ(series->find("rate_per_second")->number_or(0), 10.0);
}

TEST(TimeSeriesCollectorTest, FilterLimitsSampledInstruments) {
  obs::MetricsRegistry registry;
  registry.counter("cmarkov_keep_total").add(1);
  registry.counter("cmarkov_skip_total").add(1);
  obs::CollectorOptions options;
  options.filter = [](std::string_view name) {
    return name.find("keep") != std::string_view::npos;
  };
  obs::TimeSeriesCollector collector(registry, options);
  collector.sample_now(0.0);
  EXPECT_EQ(collector.counter_latest("cmarkov_keep_total"), 1.0);
  EXPECT_EQ(collector.counter_latest("cmarkov_skip_total"), 0.0);
}

TEST(TimeSeriesCollectorTest, ThreadSamplesAndRunsPreSampleHook) {
  obs::MetricsRegistry registry;
  registry.counter("cmarkov_test_ticks_total").add(1);
  std::atomic<int> hook_runs{0};
  obs::CollectorOptions options;
  options.period_seconds = 0.005;
  options.pre_sample = [&hook_runs] { hook_runs.fetch_add(1); };
  obs::TimeSeriesCollector collector(registry, options);
  collector.start();
  collector.start();  // idempotent
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (collector.samples_taken() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  collector.stop();
  collector.stop();  // idempotent
  EXPECT_GE(collector.samples_taken(), 3u);
  EXPECT_GE(hook_runs.load(), 3);
  EXPECT_EQ(collector.counter_latest("cmarkov_test_ticks_total"), 1.0);
}

// -- JSON parser -----------------------------------------------------------

TEST(JsonParserTest, ParsesNestedDocument) {
  const util::JsonValue doc = util::parse_json(
      R"({"a": 1.5, "b": [true, false, null, -2e3],
          "nested": {"deep": {"x": "hi\nthere"}}, "empty": {}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("a")->number_or(0), 1.5);
  const util::JsonValue* array = doc.find("b");
  ASSERT_TRUE(array->is_array());
  ASSERT_EQ(array->array.size(), 4u);
  EXPECT_TRUE(array->array[0].boolean);
  EXPECT_EQ(array->array[1].kind, util::JsonValue::Kind::kBool);
  EXPECT_EQ(array->array[2].kind, util::JsonValue::Kind::kNull);
  EXPECT_EQ(array->array[3].number_or(0), -2000.0);
  EXPECT_EQ(doc.find_path("nested.deep.x")->string_or(""), "hi\nthere");
  EXPECT_EQ(doc.find_path("nested.missing.x"), nullptr);
  EXPECT_EQ(doc.find("zzz"), nullptr);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  EXPECT_THROW(util::parse_json(""), std::invalid_argument);
  EXPECT_THROW(util::parse_json("{\"a\":}"), std::invalid_argument);
  EXPECT_THROW(util::parse_json("{} trailing"), std::invalid_argument);
  EXPECT_THROW(util::parse_json("{\"a\":1,}"), std::invalid_argument);
  EXPECT_THROW(util::parse_json("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(util::parse_json("01"), std::invalid_argument);
  EXPECT_THROW(util::parse_json("nul"), std::invalid_argument);
  // Depth bomb: past the parser's nesting cap.
  std::string bomb;
  for (int i = 0; i < 80; ++i) bomb += '[';
  for (int i = 0; i < 80; ++i) bomb += ']';
  EXPECT_THROW(util::parse_json(bomb), std::invalid_argument);
}

TEST(JsonParserTest, RoundTripsAdminNumbers) {
  const util::JsonValue doc =
      util::parse_json(R"({"v": 1234567.25, "neg": -0.5, "exp": 2.5e-3})");
  EXPECT_EQ(doc.find("v")->number_or(0), 1234567.25);
  EXPECT_EQ(doc.find("neg")->number_or(0), -0.5);
  EXPECT_EQ(doc.find("exp")->number_or(0), 0.0025);
}

// -- AdminConn HTTP parsing (no sockets) -----------------------------------

struct HandlerHarness {
  std::unique_ptr<ModelRegistry> registry = make_registry();
  std::unique_ptr<SessionManager> manager;
  std::unique_ptr<AdminHandler> handler;

  explicit HandlerHarness(std::size_t num_workers = 2) {
    ServiceConfig config;
    config.num_workers = num_workers;
    config.manual_pump = true;
    manager = std::make_unique<SessionManager>(*registry, config);
    handler = std::make_unique<AdminHandler>(*manager);
  }
};

/// Splits a response buffer into (status line, body) for one response.
int parse_status(const std::string& out, std::size_t from = 0) {
  const std::size_t sp = out.find(' ', from);
  return sp == std::string::npos ? -1 : std::atoi(out.c_str() + sp + 1);
}

std::string body_of(const std::string& out) {
  const std::size_t body = out.find("\r\n\r\n");
  return body == std::string::npos ? "" : out.substr(body + 4);
}

TEST(AdminConnTest, HealthzKeepAliveRequest) {
  HandlerHarness h;
  AdminConn conn(*h.handler);
  std::string in = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
  std::string out;
  EXPECT_TRUE(conn.consume(in, out));
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(parse_status(out), 200);
  EXPECT_NE(out.find("Connection: keep-alive"), std::string::npos);
  EXPECT_EQ(conn.requests_handled(), 1u);

  const util::JsonValue health = util::parse_json(body_of(out));
  EXPECT_EQ(health.find("schema")->string_or(""), "cmarkov.healthz.v1");
  EXPECT_EQ(health.find("status")->string_or(""), "ok");
  EXPECT_EQ(health.find_path("drift.armed")->kind,
            util::JsonValue::Kind::kBool);
}

TEST(AdminConnTest, PipelinedAndPartialRequests) {
  HandlerHarness h;
  AdminConn conn(*h.handler);
  std::string out;
  // Two pipelined requests land in one feed...
  std::string in =
      "GET /healthz HTTP/1.1\r\n\r\nGET /statusz HTTP/1.1\r\n\r\nGET /sta";
  EXPECT_TRUE(conn.consume(in, out));
  EXPECT_EQ(conn.requests_handled(), 2u);
  EXPECT_EQ(in, "GET /sta");  // the partial third request waits
  // ...and the tail completes on the next feed.
  in += "tusz HTTP/1.1\r\n\r\n";
  EXPECT_TRUE(conn.consume(in, out));
  EXPECT_EQ(conn.requests_handled(), 3u);
  EXPECT_TRUE(in.empty());
}

TEST(AdminConnTest, BareLfTerminatorAndQueryStringAccepted) {
  HandlerHarness h;
  AdminConn conn(*h.handler);
  std::string in = "GET /healthz?probe=1 HTTP/1.1\n\n";
  std::string out;
  EXPECT_TRUE(conn.consume(in, out));
  EXPECT_EQ(parse_status(out), 200);
}

TEST(AdminConnTest, ConnectionCloseAndHttp10Close) {
  HandlerHarness h;
  {
    AdminConn conn(*h.handler);
    std::string in = "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
    std::string out;
    EXPECT_FALSE(conn.consume(in, out));
    EXPECT_NE(out.find("Connection: close"), std::string::npos);
  }
  {
    AdminConn conn(*h.handler);
    std::string in = "GET /healthz HTTP/1.0\r\n\r\n";
    std::string out;
    EXPECT_FALSE(conn.consume(in, out));
    EXPECT_EQ(parse_status(out), 200);
  }
}

TEST(AdminConnTest, HostileRequestsAreRejected) {
  HandlerHarness h;
  {  // non-GET method
    AdminConn conn(*h.handler);
    std::string in = "POST /healthz HTTP/1.1\r\n\r\n";
    std::string out;
    conn.consume(in, out);
    EXPECT_EQ(parse_status(out), 405);
  }
  {  // unknown target
    AdminConn conn(*h.handler);
    std::string in = "GET /nope HTTP/1.1\r\n\r\n";
    std::string out;
    EXPECT_TRUE(conn.consume(in, out));
    EXPECT_EQ(parse_status(out), 404);
  }
  {  // malformed request line closes the connection
    AdminConn conn(*h.handler);
    std::string in = "GARBAGE\r\n\r\n";
    std::string out;
    EXPECT_FALSE(conn.consume(in, out));
    EXPECT_EQ(parse_status(out), 400);
  }
  {  // request bodies are unsupported on the admin plane
    AdminConn conn(*h.handler);
    std::string in = "GET /healthz HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
    std::string out;
    EXPECT_FALSE(conn.consume(in, out));
    EXPECT_EQ(parse_status(out), 400);
  }
  {  // unbounded header block
    AdminConn conn(*h.handler);
    std::string in = "GET /healthz HTTP/1.1\r\nX-Pad: ";
    in.append(20 * 1024, 'a');
    std::string out;
    EXPECT_FALSE(conn.consume(in, out));
    EXPECT_EQ(parse_status(out), 431);
  }
}

TEST(AdminConnTest, VarzWithoutCollectorIs503) {
  HandlerHarness h;
  AdminConn conn(*h.handler);
  std::string in = "GET /varz HTTP/1.1\r\n\r\n";
  std::string out;
  EXPECT_TRUE(conn.consume(in, out));
  EXPECT_EQ(parse_status(out), 503);
}

TEST(AdminConnTest, MetricsEndpointServesPrometheusText) {
  HandlerHarness h;
  AdminConn conn(*h.handler);
  std::string in = "GET /metrics HTTP/1.1\r\n\r\n";
  std::string out;
  EXPECT_TRUE(conn.consume(in, out));
  EXPECT_EQ(parse_status(out), 200);
  EXPECT_NE(out.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(body_of(out).find("cmarkov_serve_events_processed_total"),
            std::string::npos);
  // The admin plane's own instruments are on the same surface.
  EXPECT_NE(body_of(out).find("cmarkov_admin_requests_total"),
            std::string::npos);
}

// -- /statusz ground truth (manual pump: exact queue depths) ---------------

TEST(StatuszTest, PerShardCountsMatchGroundTruthExactly) {
  HandlerHarness h(2);
  SessionManager& manager = *h.manager;
  const std::vector<trace::CallEvent> events = fixture().events_for(7, 1);
  ASSERT_GE(events.size(), 4u);

  const std::vector<std::string> ids = {"alpha", "bravo", "charlie", "delta",
                                        "echo"};
  std::vector<std::size_t> want_sessions(2, 0);
  std::vector<std::size_t> want_depth(2, 0);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    manager.open_session(ids[i], "gzip");
    const std::size_t shard = shard_of(ids[i], 2);
    want_sessions[shard] += 1;
    // i+1 events per session, queued but not pumped: exact depths.
    for (std::size_t e = 0; e <= i; ++e) {
      ASSERT_EQ(manager.submit(ids[i], events[e % events.size()]),
                SubmitResult::kAccepted);
      want_depth[shard] += 1;
    }
  }

  auto statusz = [&] {
    return util::parse_json(
        h.handler->handle({"GET", "/statusz"}).body);
  };
  {
    const util::JsonValue doc = statusz();
    const util::JsonValue* shards = doc.find("shards");
    ASSERT_TRUE(shards != nullptr && shards->is_array());
    ASSERT_EQ(shards->array.size(), 2u);
    for (std::size_t s = 0; s < 2; ++s) {
      const util::JsonValue& shard = shards->array[s];
      EXPECT_EQ(shard.find("shard")->number_or(-1),
                static_cast<double>(s));
      EXPECT_EQ(shard.find("sessions")->number_or(-1),
                static_cast<double>(want_sessions[s]))
          << "shard " << s;
      EXPECT_EQ(shard.find("queue_depth")->number_or(-1),
                static_cast<double>(want_depth[s]))
          << "shard " << s;
      EXPECT_EQ(shard.find("processed")->number_or(-1), 0.0);
    }
    EXPECT_EQ(doc.find("sessions_open")->number_or(0),
              static_cast<double>(ids.size()));
  }

  // Drain and evict: queues empty, processed counts land on the right
  // shard, and the eviction is charged to the evicted id's shard.
  manager.drain();
  ASSERT_TRUE(manager.evict_session("alpha"));
  {
    const util::JsonValue doc = statusz();
    const util::JsonValue* shards = doc.find("shards");
    std::uint64_t processed = 0;
    for (std::size_t s = 0; s < 2; ++s) {
      const util::JsonValue& shard = shards->array[s];
      EXPECT_EQ(shard.find("queue_depth")->number_or(-1), 0.0);
      processed +=
          static_cast<std::uint64_t>(shard.find("processed")->number_or(0));
      EXPECT_EQ(shard.find("evicted_sessions")->number_or(-1),
                s == shard_of("alpha", 2) ? 1.0 : 0.0);
      // Resident sessions hold scoring state; the evicted one released its.
      if (shard.find("sessions")->number_or(0) > 0) {
        EXPECT_GT(shard.find("state_bytes")->number_or(0), 0.0);
      }
    }
    std::size_t want_events = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) want_events += i + 1;
    EXPECT_EQ(processed, want_events);
    EXPECT_EQ(doc.find("sessions_open")->number_or(0),
              static_cast<double>(ids.size() - 1));
  }
}

// -- End-to-end over sockets -----------------------------------------------

struct AdminServerHarness {
  std::unique_ptr<ModelRegistry> registry = make_registry();
  std::unique_ptr<SessionManager> manager;
  std::unique_ptr<AdminHandler> admin;
  std::unique_ptr<obs::TimeSeriesCollector> collector;
  std::unique_ptr<EpollServer> server;

  explicit AdminServerHarness(std::size_t num_workers = 2,
                              std::size_t max_resident = 0,
                              std::size_t num_loops = 2) {
    ServiceConfig config;
    config.num_workers = num_workers;
    config.max_resident_sessions = max_resident;
    manager = std::make_unique<SessionManager>(*registry, config);
    admin = std::make_unique<AdminHandler>(*manager);
    obs::CollectorOptions copts;
    copts.period_seconds = 0.02;
    collector =
        std::make_unique<obs::TimeSeriesCollector>(manager->instruments(),
                                                   std::move(copts));
    admin->set_collector(collector.get());
    NetOptions net;
    net.port = 0;
    net.num_loops = num_loops;
    net.admin = admin.get();
    net.admin_port = 0;
    server = std::make_unique<EpollServer>(*manager, net);
    server->start();
    admin->set_loop_status_fn(
        [srv = server.get()] { return srv->loop_status(); });
    collector->start();
  }
  ~AdminServerHarness() {
    collector->stop();
    server->stop();
  }
};

TEST(AdminEndToEndTest, ScrapesAllEndpointsOverHttp) {
  AdminServerHarness harness;
  const std::uint16_t port = harness.server->admin_port();
  ASSERT_GT(port, 0);

  const auto health = admin_http_get("127.0.0.1", port, "/healthz");
  EXPECT_EQ(health.status, 200);
  const util::JsonValue health_doc = util::parse_json(health.body);
  EXPECT_EQ(health_doc.find("schema")->string_or(""), "cmarkov.healthz.v1");
  EXPECT_EQ(health_doc.find_path("overload.level")->number_or(-1), 0.0);

  const auto metrics = admin_http_get("127.0.0.1", port, "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("cmarkov_net_connections_total"),
            std::string::npos);

  // The collector thread needs at least one tick before /varz has data.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (harness.collector->samples_taken() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto varz = admin_http_get("127.0.0.1", port, "/varz");
  EXPECT_EQ(varz.status, 200);
  const util::JsonValue varz_doc = util::parse_json(varz.body);
  EXPECT_EQ(varz_doc.find("schema")->string_or(""), "cmarkov.varz.v1");
  EXPECT_NE(varz_doc.find_path(
                "counters.cmarkov_serve_events_processed_total"),
            nullptr);

  const auto statusz = admin_http_get("127.0.0.1", port, "/statusz");
  EXPECT_EQ(statusz.status, 200);
  const util::JsonValue statusz_doc = util::parse_json(statusz.body);
  const util::JsonValue* loops = statusz_doc.find("loops");
  ASSERT_TRUE(loops != nullptr && loops->is_array());
  EXPECT_EQ(loops->array.size(), 2u);

  const auto missing = admin_http_get("127.0.0.1", port, "/nope");
  EXPECT_EQ(missing.status, 404);
}

TEST(AdminEndToEndTest, StatuszTracksSessionsUnderLiveTrafficAndChurn) {
  // Residency budget of 3 forces eviction churn while sessions open.
  AdminServerHarness harness(2, 3);
  const std::uint16_t port = harness.server->admin_port();
  SessionManager& manager = *harness.manager;
  const std::vector<trace::CallEvent> events = fixture().events_for(11, 1);

  for (int i = 0; i < 8; ++i) {
    const std::string id = "churn-" + std::to_string(i);
    manager.open_session(id, "gzip");
    for (std::size_t e = 0; e < 16 && e < events.size(); ++e) {
      manager.submit(id, events[e]);
    }
    // Residency is only enforced against idle sessions (pending == 0):
    // drain between opens so each enforcement pass has evictable victims
    // and the cap holds deterministically.
    manager.drain();
  }

  const auto statusz = admin_http_get("127.0.0.1", port, "/statusz");
  ASSERT_EQ(statusz.status, 200);
  const util::JsonValue doc = util::parse_json(statusz.body);
  const util::JsonValue* shards = doc.find("shards");
  ASSERT_TRUE(shards != nullptr && shards->is_array());

  std::size_t resident = 0, evicted = 0;
  for (const util::JsonValue& shard : shards->array) {
    resident += static_cast<std::size_t>(
        shard.find("sessions")->number_or(0));
    evicted += static_cast<std::size_t>(
        shard.find("evicted_sessions")->number_or(0));
    EXPECT_EQ(shard.find("queue_depth")->number_or(-1), 0.0);
  }
  EXPECT_EQ(resident, manager.resident_sessions());
  EXPECT_LE(resident, 3u);
  EXPECT_EQ(evicted, 8u - resident);  // every non-resident session evicted
  EXPECT_EQ(doc.find("sessions_open")->number_or(0),
            static_cast<double>(resident));
}

// -- Concurrent scrape hammer ----------------------------------------------

/// Metric names on a Prometheus page (every non-comment line's first
/// token, label block stripped) — the stability key for concurrent
/// scrapes: values move, the name set must not.
std::set<std::string> prometheus_names(const std::string& page) {
  std::set<std::string> names;
  std::istringstream in(page);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t cut = line.find_first_of("{ ");
    names.insert(line.substr(0, cut));
  }
  return names;
}

TEST(AdminEndToEndTest, ConcurrentScrapesNeverStallTrafficOrChangeKeys) {
  AdminServerHarness harness(2, 4);
  const std::uint16_t admin_port = harness.server->admin_port();
  const std::uint16_t port = harness.server->port();
  const std::vector<trace::CallEvent> events = fixture().events_for(23, 1);

  // Baseline key set after the server is fully wired (all instruments are
  // registered eagerly in constructors, so no scrape may mint new names).
  const std::set<std::string> baseline =
      prometheus_names(admin_http_get("127.0.0.1", admin_port,
                                      "/metrics").body);
  ASSERT_FALSE(baseline.empty());

  std::atomic<int> scrape_failures{0};
  std::atomic<int> keyset_changes{0};
  std::atomic<bool> stop_scraping{false};
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 3; ++s) {
    scrapers.emplace_back([&, s] {
      while (!stop_scraping.load()) {
        try {
          const auto metrics =
              admin_http_get("127.0.0.1", admin_port, "/metrics");
          const auto varz = admin_http_get("127.0.0.1", admin_port, "/varz");
          const auto statusz =
              admin_http_get("127.0.0.1", admin_port, "/statusz");
          if (metrics.status != 200 || varz.status != 200 ||
              statusz.status != 200) {
            scrape_failures.fetch_add(1);
          }
          if (prometheus_names(metrics.body) != baseline) {
            keyset_changes.fetch_add(1);
          }
          util::parse_json(varz.body);    // throws on malformed JSON
          util::parse_json(statusz.body);
        } catch (const std::exception&) {
          scrape_failures.fetch_add(1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1 + s));
      }
    });
  }

  // Live traffic under the scrape hammer: text and binary sessions with
  // eviction churn (residency budget 4, 12 distinct ids).
  auto tcp_events = [&](const std::string& id, std::uint64_t salt) {
    std::string lines = "HELLO gzip " + id + "\n";
    for (std::size_t e = 0; e < 24 && e < events.size(); ++e) {
      const auto& event = events[(e + salt) % events.size()];
      const std::string site = event.caller.empty() ? "?" : event.caller;
      lines += "EV " + site + " " + event.name + " " +
               (event.kind == ir::CallKind::kLibcall ? "lib" : "sys") + "\n";
    }
    lines += "BYE\n";
    return lines;
  };
  std::vector<std::thread> clients;
  std::atomic<int> traffic_failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < 3; ++round) {
        const std::string id =
            "hammer-" + std::to_string(c) + "-" + std::to_string(round);
        try {
          if (c % 2 == 0) {
            // Direct submits exercise the manager-side churn path.
            SessionManager& manager = *harness.manager;
            manager.open_session(id, "gzip");
            for (std::size_t e = 0; e < 24 && e < events.size(); ++e) {
              manager.submit(id, events[e]);
            }
          } else {
            // Text-protocol client through the real socket path.
            struct Client {
              int fd;
              explicit Client(std::uint16_t p) {
                fd = ::socket(AF_INET, SOCK_STREAM, 0);
                sockaddr_in addr{};
                addr.sin_family = AF_INET;
                addr.sin_port = htons(p);
                addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
                if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                              sizeof(addr)) != 0) {
                  throw std::runtime_error("connect failed");
                }
              }
              ~Client() { ::close(fd); }
              void send_all(const std::string& data) {
                std::size_t sent = 0;
                while (sent < data.size()) {
                  const ssize_t n = ::send(fd, data.data() + sent,
                                           data.size() - sent, 0);
                  if (n <= 0) throw std::runtime_error("send failed");
                  sent += static_cast<std::size_t>(n);
                }
              }
              std::string recv_some() {
                char buf[4096];
                const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
                return n > 0 ? std::string(buf, static_cast<std::size_t>(n))
                             : std::string();
              }
            } client(port);
            client.send_all(tcp_events(id, static_cast<std::uint64_t>(c)));
            (void)client.recv_some();  // at least one reply chunk landed
          }
        } catch (const std::exception&) {
          traffic_failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  harness.manager->drain();
  stop_scraping.store(true);
  for (auto& t : scrapers) t.join();

  EXPECT_EQ(scrape_failures.load(), 0);
  EXPECT_EQ(keyset_changes.load(), 0);
  EXPECT_EQ(traffic_failures.load(), 0);
  EXPECT_GT(harness.manager->metrics().events_processed, 0u);
  // One final scrape post-churn: still the same instrument surface.
  EXPECT_EQ(prometheus_names(
                admin_http_get("127.0.0.1", admin_port, "/metrics").body),
            baseline);
}

}  // namespace
}  // namespace cmarkov::serve::net
