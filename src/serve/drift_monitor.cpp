#include "src/serve/drift_monitor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/core/detector.hpp"
#include "src/util/logging.hpp"

namespace cmarkov::serve {

DriftMonitor::DriftMonitor(DriftOptions options, obs::MetricsRegistry* metrics)
    : options_(options), penalty_(options.ll_penalty) {
  if (options_.baseline_windows == 0 || options_.recent_windows == 0 ||
      options_.buckets == 0 || options_.consecutive_epochs == 0 ||
      options_.max_absorb_segments == 0) {
    throw std::invalid_argument("DriftMonitor: window/bucket/epoch knobs "
                                "must be positive");
  }
  baseline_samples_.reserve(options_.baseline_windows);
  if (metrics != nullptr) {
    windows_total_ = &metrics->counter("cmarkov_drift_windows_total");
    epochs_total_ = &metrics->counter("cmarkov_drift_epochs_total");
    breaches_total_ = &metrics->counter("cmarkov_drift_breaches_total");
    ks_gauge_ = &metrics->gauge("cmarkov_drift_ks_ratio");
    absorb_depth_gauge_ =
        &metrics->gauge("cmarkov_drift_absorb_depth_ratio");
  }
}

void DriftMonitor::freeze_baseline_locked() {
  // Bucket bounds from the baseline's empirical quantiles, deduplicated to
  // satisfy the Histogram contract (strictly increasing, finite). Ties —
  // e.g. a dominant repeated window score — collapse buckets; at least one
  // bound always survives.
  std::vector<double> sorted = baseline_samples_;
  std::sort(sorted.begin(), sorted.end());
  std::vector<double> bounds;
  bounds.reserve(options_.buckets);
  for (std::size_t b = 1; b < options_.buckets; ++b) {
    const std::size_t at = (b * sorted.size()) / options_.buckets;
    const double bound = sorted[std::min(at, sorted.size() - 1)];
    if (bounds.empty() || bound > bounds.back()) bounds.push_back(bound);
  }
  if (bounds.empty() || sorted.back() > bounds.back()) {
    bounds.push_back(sorted.back());
  }
  baseline_ = std::make_unique<obs::Histogram>(
      std::span<const double>(bounds));
  recent_ = std::make_unique<obs::Histogram>(
      std::span<const double>(bounds));
  for (double sample : baseline_samples_) baseline_->record(sample);
  baseline_samples_.clear();
  baseline_samples_.shrink_to_fit();
}

void DriftMonitor::evaluate_epoch_locked() {
  // Windowed KS-style statistic: the maximum gap between the baseline and
  // recent-epoch empirical CDFs, evaluated at every bucket boundary (the
  // finest resolution two fixed-bucket histograms support).
  const std::vector<std::uint64_t> base_counts = baseline_->bucket_counts();
  const std::vector<std::uint64_t> recent_counts = recent_->bucket_counts();
  const double base_total = static_cast<double>(baseline_->count());
  const double recent_total = static_cast<double>(recent_->count());
  double ks = 0.0;
  double base_cum = 0.0;
  double recent_cum = 0.0;
  for (std::size_t b = 0; b < base_counts.size(); ++b) {
    base_cum += static_cast<double>(base_counts[b]) / base_total;
    recent_cum += static_cast<double>(recent_counts[b]) / recent_total;
    ks = std::max(ks, std::abs(base_cum - recent_cum));
  }
  last_ks_ = ks;
  epochs_ += 1;
  if (epochs_total_ != nullptr) epochs_total_->add(1);
  if (ks_gauge_ != nullptr) ks_gauge_->set(ks);

  if (ks > options_.ks_threshold) {
    breach_streak_ += 1;
    if (breaches_total_ != nullptr) breaches_total_->add(1);
    if (breach_streak_ >= options_.consecutive_epochs) refresh_armed_ = true;
  } else {
    breach_streak_ = 0;
  }

  // Fresh epoch over the same bounds.
  recent_ = std::make_unique<obs::Histogram>(
      std::span<const double>(baseline_->bounds()));
  recent_count_ = 0;
}

void DriftMonitor::observe(double log_likelihood, bool flagged,
                           bool unknown_symbol,
                           const hmm::ObservationSeq& window) {
  const double sample =
      std::isfinite(log_likelihood) ? log_likelihood : penalty_;
  const std::lock_guard lock(mu_);
  if (windows_total_ != nullptr) windows_total_->add(1);

  if (baseline_ == nullptr) {
    baseline_samples_.push_back(sample);
    if (baseline_samples_.size() >= options_.baseline_windows) {
      freeze_baseline_locked();
    }
  } else {
    recent_->record(sample);
    recent_count_ += 1;
    if (recent_count_ >= options_.recent_windows) evaluate_epoch_locked();
  }

  if (!flagged && !unknown_symbol) {
    if (absorb_.size() < options_.max_absorb_segments) {
      absorb_.push_back(window);
    } else {
      // Full: overwrite the oldest so the batch tracks the current
      // workload, not the first windows after the last refresh.
      absorb_[absorb_next_] = window;
      absorb_next_ = (absorb_next_ + 1) % options_.max_absorb_segments;
    }
    if (absorb_depth_gauge_ != nullptr) {
      absorb_depth_gauge_->set(
          static_cast<double>(absorb_.size()) /
          static_cast<double>(options_.max_absorb_segments));
    }
  }
}

bool DriftMonitor::refresh_due() const {
  const std::lock_guard lock(mu_);
  return refresh_armed_ && absorb_.size() >= options_.min_absorb_segments;
}

std::vector<hmm::ObservationSeq> DriftMonitor::take_absorb_buffer() {
  const std::lock_guard lock(mu_);
  std::vector<hmm::ObservationSeq> batch = std::move(absorb_);
  absorb_.clear();
  absorb_next_ = 0;
  refresh_armed_ = false;
  breach_streak_ = 0;
  if (absorb_depth_gauge_ != nullptr) absorb_depth_gauge_->set(0.0);
  return batch;
}

void DriftMonitor::reset_for_new_model() {
  const std::lock_guard lock(mu_);
  baseline_samples_.clear();
  baseline_samples_.reserve(options_.baseline_windows);
  baseline_.reset();
  recent_.reset();
  recent_count_ = 0;
  breach_streak_ = 0;
  refresh_armed_ = false;
  last_ks_ = 0.0;
  absorb_.clear();
  absorb_next_ = 0;
  if (absorb_depth_gauge_ != nullptr) absorb_depth_gauge_->set(0.0);
  if (ks_gauge_ != nullptr) ks_gauge_->set(0.0);
}

bool DriftMonitor::baseline_ready() const {
  const std::lock_guard lock(mu_);
  return baseline_ != nullptr;
}

double DriftMonitor::last_ks() const {
  const std::lock_guard lock(mu_);
  return last_ks_;
}

std::uint64_t DriftMonitor::epochs_evaluated() const {
  const std::lock_guard lock(mu_);
  return epochs_;
}

std::uint64_t DriftMonitor::breach_streak() const {
  const std::lock_guard lock(mu_);
  return breach_streak_;
}

std::size_t DriftMonitor::absorb_depth() const {
  const std::lock_guard lock(mu_);
  return absorb_.size();
}

DriftRefresher::DriftRefresher(SessionManager& manager,
                               ModelRegistry& registry,
                               std::string model_name, hmm::Trainer trainer,
                               DriftOptions options)
    : manager_(manager),
      registry_(registry),
      model_name_(std::move(model_name)),
      trainer_(std::move(trainer)),
      monitor_(options, &manager.instruments()),
      refreshes_total_(
          &manager.instruments().counter("cmarkov_drift_refreshes_total")) {
  // The publish hook is where the layers meet: hmm::Trainer hands over the
  // refreshed model, core rebuilds the detector (recalibrated threshold),
  // and the PR 6 reload path swaps it under live traffic with zero
  // accepted-event loss (the registry compiles the new ScoringKernel).
  trainer_.set_publish_hook([this](const hmm::Trainer& t) {
    const std::shared_ptr<const core::Detector> base =
        registry_.require(model_name_);
    const hmm::TrainerState& state = t.state();
    const std::vector<hmm::ObservationSeq>& calibration =
        state.holdout.empty() ? state.train : state.holdout;
    auto refreshed = std::make_shared<const core::Detector>(
        base->rebuilt_with(t.model(), calibration));
    const ReloadReport report =
        manager_.reload_model(model_name_, std::move(refreshed));
    monitor_.reset_for_new_model();
    log_info() << "drift refresh: model=" << model_name_ << " version="
               << report.version << " sessions=" << report.sessions_rebound;
  });
}

bool DriftRefresher::poll() {
  if (!monitor_.refresh_due()) return false;
  std::vector<hmm::ObservationSeq> batch = monitor_.take_absorb_buffer();
  if (batch.empty()) return false;
  trainer_.partial_fit(batch);
  trainer_.publish();
  refreshes_ += 1;
  refreshes_total_->add(1);
  return true;
}

}  // namespace cmarkov::serve
