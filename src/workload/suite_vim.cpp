// vim analogue: modal editor event loop — buffer loading, normal/insert/ex
// command dispatch, undo recording, screen redraw, swap-file syncing and
// file write-out. Deep per-feature call chains give libc calls many
// contexts (the paper's vim libcall model has 829 states).
#include "src/workload/program_suite.hpp"

namespace cmarkov::workload {

namespace {

const char* const kVimSource = R"(
fn main() {
  startup();
  load_buffer();
  var events = input() % 14 + 2;
  while (events > 0) {
    var key = sys("read");
    dispatch_key(key);
    maybe_redraw();
    events = events - 1;
  }
  quit_editor();
  sys("exit_group");
}

fn startup() {
  sys("brk");
  sys("brk");
  lib("setlocale");
  lib("getenv");
  lib("getenv");
  sys("ioctl");
  sys("ioctl");
  sys("rt_sigaction");
  sys("rt_sigaction");
  sys("rt_sigaction");
  lib("malloc");
  init_highlighting();
  open_swap_file();
}

fn init_highlighting() {
  var groups = input() % 5 + 2;
  while (groups > 0) {
    lib("malloc");
    lib("strcpy");
    groups = groups - 1;
  }
}

fn open_swap_file() {
  sys("open");
  sys("fstat");
  sys("write");
}

fn load_buffer() {
  var fd = sys("open");
  if (fd < 1) {
    new_empty_buffer();
    return;
  }
  sys("fstat");
  var chunks = input() % 8 + 1;
  while (chunks > 0) {
    sys("read");
    append_lines();
    chunks = chunks - 1;
  }
  sys("close");
}

fn new_empty_buffer() {
  lib("calloc");
  lib("memset");
}

fn append_lines() {
  var lines = input() % 4 + 1;
  while (lines > 0) {
    lib("malloc");
    lib("memcpy");
    lines = lines - 1;
  }
}

fn dispatch_key(key) {
  var mode = key % 6;
  if (mode == 0) {
    normal_command(key);
  } else {
    if (mode == 1) {
      insert_text();
    } else {
      if (mode == 2) {
        ex_command();
      } else {
        if (mode == 3) {
          visual_selection();
        } else {
          if (mode == 4) {
            replay_macro();
          } else {
            move_cursor();
          }
        }
      }
    }
  }
}

fn visual_selection() {
  var motions = input() % 4 + 1;
  while (motions > 0) {
    move_cursor();
    highlight_region();
    motions = motions - 1;
  }
  var op = input() % 3;
  if (op == 0) {
    delete_text();
  } else {
    if (op == 1) {
      yank_text();
    } else {
      indent_region();
    }
  }
}

fn highlight_region() {
  lib("memset");
}

fn indent_region() {
  record_undo();
  var lines = input() % 4 + 1;
  while (lines > 0) {
    lib("memmove");
    lines = lines - 1;
  }
  mark_dirty();
}

fn replay_macro() {
  var keys = input() % 5 + 1;
  while (keys > 0) {
    var key = lib("memchr");
    normal_command(key);
    keys = keys - 1;
  }
}

fn normal_command(key) {
  var op = key % 5;
  if (op == 0) {
    delete_text();
  } else {
    if (op == 1) {
      yank_text();
    } else {
      if (op == 2) {
        paste_text();
      } else {
        if (op == 3) {
          search_pattern();
        } else {
          move_cursor();
        }
      }
    }
  }
}

fn delete_text() {
  record_undo();
  lib("memmove");
  lib("free");
  mark_dirty();
}

fn yank_text() {
  lib("malloc");
  lib("memcpy");
}

fn paste_text() {
  record_undo();
  lib("malloc");
  lib("memcpy");
  mark_dirty();
}

fn insert_text() {
  record_undo();
  var chars = input() % 5 + 1;
  while (chars > 0) {
    lib("memmove");
    chars = chars - 1;
  }
  mark_dirty();
}

fn search_pattern() {
  lib("regcomp");
  var lines = input() % 6 + 1;
  while (lines > 0) {
    var r = lib("regexec");
    if (r == 0) {
      return;
    }
    lines = lines - 1;
  }
  lib("fprintf");
}

fn move_cursor() {
  lib("memchr");
}

fn ex_command() {
  var kind = input() % 7;
  if (kind == 0) {
    write_buffer();
  } else {
    if (kind == 1) {
      substitute_lines();
    } else {
      if (kind == 2) {
        set_option();
      } else {
        if (kind == 3) {
          edit_other_file();
        } else {
          if (kind == 4) {
            jump_to_tag();
          } else {
            if (kind == 5) {
              spell_check();
            } else {
              shell_filter();
            }
          }
        }
      }
    }
  }
}

fn edit_other_file() {
  var modified = input() % 2;
  if (modified == 1) {
    write_buffer();
  }
  lib("free");
  load_buffer();
}

fn jump_to_tag() {
  var fd = sys("open");
  if (fd < 1) {
    lib("fprintf");
    return;
  }
  var entries = input() % 5 + 1;
  while (entries > 0) {
    sys("read");
    var r = lib("strcmp");
    if (r == 0) {
      sys("close");
      edit_other_file();
      return;
    }
    entries = entries - 1;
  }
  sys("close");
  lib("fprintf");
}

fn spell_check() {
  load_spell_file();
  var words = input() % 6 + 1;
  var bad = 0;
  while (words > 0) {
    var r = lib("bsearch");
    if (r == 0) {
      bad = bad + 1;
      highlight_region();
    }
    words = words - 1;
  }
  if (bad > 0) {
    lib("sprintf");
    sys("write");
  }
}

fn load_spell_file() {
  var loaded = input() % 3;
  if (loaded == 0) {
    sys("open");
    sys("mmap");
    sys("close");
  }
}

fn write_buffer() {
  var fd = sys("open");
  if (fd < 1) {
    lib("fprintf");
    return;
  }
  var chunks = input() % 6 + 1;
  while (chunks > 0) {
    sys("write");
    chunks = chunks - 1;
  }
  sys("fsync");
  sys("close");
  clear_dirty();
}

fn substitute_lines() {
  lib("regcomp");
  var lines = input() % 5 + 1;
  while (lines > 0) {
    var r = lib("regexec");
    if (r == 0) {
      record_undo();
      lib("memcpy");
      mark_dirty();
    }
    lines = lines - 1;
  }
}

fn set_option() {
  lib("strcmp");
  lib("strcpy");
}

fn shell_filter() {
  sys("pipe");
  sys("fork");
  var child = input() % 2;
  if (child == 1) {
    sys("dup2");
    sys("execve");
  }
  sys("wait4");
  sys("read");
  record_undo();
}

fn record_undo() {
  lib("malloc");
  lib("memcpy");
}

fn mark_dirty() {
  sync_swap();
}

fn clear_dirty() {
  lib("memset");
}

fn sync_swap() {
  var due = input() % 3;
  if (due == 0) {
    sys("lseek");
    sys("write");
  }
}

fn maybe_redraw() {
  var dirty = input() % 2;
  if (dirty == 1) {
    draw_screen();
  }
}

fn draw_screen() {
  var rows = input() % 5 + 1;
  while (rows > 0) {
    lib("memcpy");
    rows = rows - 1;
  }
  sys("write");
}

fn quit_editor() {
  var modified = input() % 2;
  if (modified == 1) {
    write_buffer();
  }
  sys("unlink");
  sys("ioctl");
  lib("free");
  lib("free");
}
)";

}  // namespace

ProgramSuite make_vim_suite() {
  SuiteInfo info;
  info.name = "vim";
  info.description =
      "modal editor: event loop over normal/insert/ex commands, undo log, "
      "swap syncing, screen redraw";
  info.paper_test_cases = 936;
  InputSpec spec;
  spec.min_inputs = 16;
  spec.max_inputs = 96;
  spec.max_value = 99;
  return ProgramSuite(info, kVimSource, spec);
}

}  // namespace cmarkov::workload
