// Unit tests for the CFG interpreter: arithmetic semantics, control flow,
// call/return plumbing, input streams, trace emission and guard rails.
#include <gtest/gtest.h>

#include "src/cfg/cfg_builder.hpp"
#include "src/ir/module.hpp"
#include "src/trace/interpreter.hpp"

namespace cmarkov::trace {
namespace {

/// Environment that returns a fixed value for every external call.
class FixedEnvironment final : public ExternalEnvironment {
 public:
  explicit FixedEnvironment(std::int64_t value) : value_(value) {}
  std::int64_t on_external_call(ir::CallKind, const std::string&,
                                std::span<const std::int64_t>) override {
    return value_;
  }

 private:
  std::int64_t value_;
};

/// Environment recording call arguments.
class RecordingEnvironment final : public ExternalEnvironment {
 public:
  std::int64_t on_external_call(ir::CallKind, const std::string&,
                                std::span<const std::int64_t> args) override {
    last_args.assign(args.begin(), args.end());
    return 0;
  }
  std::vector<std::int64_t> last_args;
};

RunResult run(const char* source, std::vector<std::int64_t> inputs = {},
              std::int64_t external_value = 0,
              InterpreterOptions options = {}) {
  const auto module =
      cfg::build_module_cfg(ir::ProgramModule::from_source("t", source));
  const Interpreter interpreter(module, options);
  FixedEnvironment environment(external_value);
  return interpreter.run(inputs, environment);
}

TEST(InterpreterTest, ReturnsExitValue) {
  const RunResult result = run("fn main() { return 41 + 1; }");
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.exit_value, 42);
}

TEST(InterpreterTest, ArithmeticSemantics) {
  const RunResult result =
      run("fn main() { return 7 * 3 - 10 / 2 + 9 % 4; }");
  EXPECT_EQ(result.exit_value, 21 - 5 + 1);
}

TEST(InterpreterTest, DivisionAndModuloByZeroYieldZero) {
  EXPECT_EQ(run("fn main() { return 5 / 0; }").exit_value, 0);
  EXPECT_EQ(run("fn main() { return 5 % 0; }").exit_value, 0);
}

TEST(InterpreterTest, ComparisonAndLogicalOperators) {
  EXPECT_EQ(run("fn main() { return 2 < 3; }").exit_value, 1);
  EXPECT_EQ(run("fn main() { return 3 <= 2; }").exit_value, 0);
  EXPECT_EQ(run("fn main() { return 5 == 5; }").exit_value, 1);
  EXPECT_EQ(run("fn main() { return 5 != 5; }").exit_value, 0);
  EXPECT_EQ(run("fn main() { return 1 && 7; }").exit_value, 1);
  EXPECT_EQ(run("fn main() { return 0 || 0; }").exit_value, 0);
  EXPECT_EQ(run("fn main() { return !3; }").exit_value, 0);
  EXPECT_EQ(run("fn main() { return - (2 + 3); }").exit_value, -5);
}

TEST(InterpreterTest, BranchFollowsCondition) {
  const char* source = R"(
fn main() {
  if (input() > 5) { return 100; } else { return 200; }
}
)";
  EXPECT_EQ(run(source, {9}).exit_value, 100);
  EXPECT_EQ(run(source, {3}).exit_value, 200);
}

TEST(InterpreterTest, WhileLoopIterates) {
  const RunResult result = run(R"(
fn main() {
  var n = input();
  var total = 0;
  while (n > 0) {
    total = total + n;
    n = n - 1;
  }
  return total;
}
)",
                               {5});
  EXPECT_EQ(result.exit_value, 15);
}

TEST(InterpreterTest, FunctionCallsPassArgsAndReturnValues) {
  const RunResult result = run(R"(
fn add(a, b) { return a + b; }
fn twice(x) { return add(x, x); }
fn main() { return twice(21); }
)");
  EXPECT_EQ(result.exit_value, 42);
}

TEST(InterpreterTest, RecursionWorks) {
  const RunResult result = run(R"(
fn fact(n) {
  if (n <= 1) { return 1; }
  return n * fact(n - 1);
}
fn main() { return fact(6); }
)");
  EXPECT_EQ(result.exit_value, 720);
}

TEST(InterpreterTest, InputStreamExhaustionYieldsDefault) {
  const RunResult result = run(R"(
fn main() { return input() + input() + input(); }
)",
                               {10, 20});
  EXPECT_EQ(result.exit_value, 30);  // third input() -> 0
}

TEST(InterpreterTest, ExternalCallsEmitEventsInOrder) {
  const RunResult result = run(R"(
fn main() {
  sys("open");
  lib("malloc");
  sys("close");
}
)");
  ASSERT_EQ(result.trace.events.size(), 3u);
  EXPECT_EQ(result.trace.events[0].name, "open");
  EXPECT_EQ(result.trace.events[0].kind, ir::CallKind::kSyscall);
  EXPECT_EQ(result.trace.events[1].name, "malloc");
  EXPECT_EQ(result.trace.events[1].kind, ir::CallKind::kLibcall);
  EXPECT_EQ(result.trace.events[2].name, "close");
  // Events carry distinct site addresses.
  EXPECT_NE(result.trace.events[0].site_address,
            result.trace.events[2].site_address);
}

TEST(InterpreterTest, ExternalCallResultsFlowIntoProgram) {
  const RunResult result = run("fn main() { return sys(\"read\") * 2; }", {},
                               /*external_value=*/21);
  EXPECT_EQ(result.exit_value, 42);
}

TEST(InterpreterTest, ExternalCallArgumentsAreEvaluated) {
  const auto module = cfg::build_module_cfg(ir::ProgramModule::from_source(
      "t", "fn main() { sys(\"write\", 1 + 2, 10); }"));
  const Interpreter interpreter(module);
  RecordingEnvironment environment;
  interpreter.run({}, environment);
  EXPECT_EQ(environment.last_args,
            (std::vector<std::int64_t>{3, 10}));
}

TEST(InterpreterTest, StepLimitGuardsInfiniteLoops) {
  InterpreterOptions options;
  options.max_steps = 1000;
  const RunResult result =
      run("fn main() { while (1) { } }", {}, 0, options);
  EXPECT_FALSE(result.completed);
  EXPECT_TRUE(result.hit_step_limit);
}

TEST(InterpreterTest, DepthLimitTurnsCallsIntoZero) {
  InterpreterOptions options;
  options.max_call_depth = 16;
  const RunResult result = run(R"(
fn forever(n) { return forever(n + 1); }
fn main() { return forever(0); }
)",
                               {}, 0, options);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.hit_depth_limit);
}

TEST(InterpreterTest, SeededEnvironmentIsDeterministic) {
  const auto module = cfg::build_module_cfg(ir::ProgramModule::from_source(
      "t", "fn main() { return sys(\"a\") + sys(\"b\") * 100; }"));
  const Interpreter interpreter(module);
  SeededEnvironment env_a(123);
  SeededEnvironment env_b(123);
  EXPECT_EQ(interpreter.run({}, env_a).exit_value,
            interpreter.run({}, env_b).exit_value);
}

TEST(InterpreterTest, VarWithoutInitializerIsZero) {
  EXPECT_EQ(run("fn main() { var x; return x; }").exit_value, 0);
}

}  // namespace
}  // namespace cmarkov::trace
