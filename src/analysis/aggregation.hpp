// Aggregation of call transitions (Section IV): inlines callee functions'
// call-transition matrices into their callers, bottom-up over the call
// graph, producing one program-wide matrix over external calls only.
//
// Each internal call-site symbol s (callee g) is eliminated algebraically:
//  - the callee summary provides E(c) = P[first call in g is c], pass =
//    P[g makes no visible call], X(c) = expected (c -> return) events and
//    inner c -> c' transition counts, all per g-invocation;
//  - chains of silent invocations (pass-through, including s -> s repeats)
//    are closed in geometric form, so x -> s -> ... -> y mass lands on
//    x -> y exactly;
//  - callee matrices keep the original context of every call (write@g stays
//    write@g after inlining into f — the paper's 1-level context rule).
// Call-graph cycles (recursion) are collapsed: a call into the current SCC
// is treated as pass-through (pass = 1), deferring recursive behaviour to
// dynamic training, as the paper prescribes.
#pragma once

#include <map>
#include <string>

#include "src/analysis/call_transition.hpp"
#include "src/cfg/call_graph.hpp"
#include "src/cfg/cfg.hpp"
#include "src/util/stopwatch.hpp"

namespace cmarkov::analysis {

/// Per-callee behaviour summary extracted from a fully resolved matrix.
struct CalleeSummary {
  /// First-call distribution E(c) (externals only).
  std::vector<std::pair<CallSymbol, double>> entry_dist;
  /// P[no visible call during the invocation].
  double pass_through = 0.0;
  /// Expected (c -> return) events per invocation.
  std::vector<std::pair<CallSymbol, double>> exit_counts;
  /// Inner transition counts c -> c' per invocation.
  std::vector<std::tuple<CallSymbol, CallSymbol, double>> inner;
};

/// Builds a summary from a resolved (internal-free) matrix.
CalleeSummary summarize_callee(const CallTransitionMatrix& resolved);

/// Removes one internal call-site symbol from `matrix`. `summary` may be
/// null (recursive callee), which inlines pure pass-through behaviour.
CallTransitionMatrix resolve_internal_symbol(const CallTransitionMatrix& matrix,
                                             const CallSymbol& site,
                                             const CalleeSummary* summary);

/// Result of whole-program aggregation.
struct AggregatedProgram {
  /// Program-level matrix (ENTRY/EXIT of the entry function + externals).
  CallTransitionMatrix program_matrix;
  /// Fully resolved matrix per function (useful for inspection/tests).
  std::map<std::string, CallTransitionMatrix> per_function;
};

/// Runs the full bottom-up aggregation for the module. When `timings` is
/// non-null, wall time is recorded under the "probability" (per-function
/// matrix computation) and "aggregation" (inlining) phases — the Table V
/// runtime breakdown.
AggregatedProgram aggregate_program(const cfg::ModuleCfg& module,
                                    const cfg::CallGraph& call_graph,
                                    const BranchHeuristic& heuristic,
                                    const FunctionMatrixOptions& options = {},
                                    PhaseTimer* timings = nullptr);

}  // namespace cmarkov::analysis
