// Tracer — per-event span recording for the serving tier (ISSUE 5). One
// event flowing through cmarkovd leaves up to three spans: "queue" (submit
// to worker pickup), "score" (OnlineMonitor::on_event) and "reply" (the
// protocol turnaround for explicitly traced EV lines). Spans carry the
// trace_id threaded from the protocol's tid= field, the session id, and a
// per-event sequence number so a single event's spans correlate.
//
// Recording goes through a lock-free BoundedLog (drop-accounted flight
// recorder); the sampling guard (`sample_every`, with explicitly traced
// events always admitted) keeps the hot-path cost to one relaxed
// fetch_add per event when enabled and one branch when disabled.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "src/obs/trace/bounded_log.hpp"

namespace cmarkov::obs {

struct TracerOptions {
  /// Master switch; a disabled tracer records nothing and samples nothing.
  bool enabled = false;
  /// Admit every Nth sampling candidate (1 = every event, 0 = only events
  /// that force tracing via an explicit trace id).
  std::uint64_t sample_every = 100;
  /// Span slots in the bounded log; appends beyond this are dropped and
  /// counted.
  std::size_t capacity = 8192;
};

/// One recorded span. Times are microseconds on the owning service's
/// monotonic clock; `thread` is the worker shard (or 0 for transport-side
/// spans) and becomes the Chrome-trace tid.
struct SpanRecord {
  std::string name;      ///< "queue" | "score" | "reply"
  std::string session;
  std::string trace_id;
  std::uint64_t seq = 0;  ///< correlates the spans of one event
  double start_micros = 0.0;
  double duration_micros = 0.0;
  std::uint64_t thread = 0;
};

class Tracer {
 public:
  explicit Tracer(TracerOptions options)
      : options_(options), log_(options.enabled ? options.capacity : 0) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return options_.enabled; }
  const TracerOptions& options() const { return options_; }

  /// Sampling guard, called once per event at submit time: explicitly
  /// traced events (`force`, i.e. a tid= was supplied) are always admitted;
  /// otherwise every `sample_every`-th candidate is.
  bool sample(bool force) {
    if (!options_.enabled) return false;
    if (force) return true;
    if (options_.sample_every == 0) return false;
    return candidates_.fetch_add(1, std::memory_order_relaxed) %
               options_.sample_every ==
           0;
  }

  /// Fresh per-event sequence number (correlates an event's spans).
  std::uint64_t next_seq() {
    return seq_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Wait-free append; false (and a counted drop) when full or disabled.
  bool record(SpanRecord span) {
    if (!options_.enabled) return false;
    return log_.append(std::move(span));
  }

  /// True once the span log can never accept another record (flight
  /// recorder: slots are not reclaimed). Callers on the hot path may skip
  /// constructing spans entirely and call drop() instead.
  bool full() const { return !options_.enabled || log_.full(); }

  /// Drop accounting for spans skipped via the full() fast path.
  void drop(std::uint64_t n = 1) {
    if (options_.enabled) log_.drop(n);
  }

  std::uint64_t recorded() const { return log_.appended(); }
  std::uint64_t dropped() const { return log_.dropped(); }

  /// Published spans in claim order (deterministic when production is).
  std::vector<SpanRecord> snapshot() const { return log_.snapshot(); }

 private:
  TracerOptions options_;
  BoundedLog<SpanRecord> log_;
  std::atomic<std::uint64_t> candidates_{0};
  std::atomic<std::uint64_t> seq_{0};
};

}  // namespace cmarkov::obs
