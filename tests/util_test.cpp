// Unit tests for src/util: rng determinism and distributions, stopwatch,
// strings, table printer.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/util/rng.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/strings.hpp"
#include "src/util/table_printer.hpp"

namespace cmarkov {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.uniform_int(0, 1 << 30) != b.uniform_int(0, 1 << 30)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(RngTest, IndexCoversAllBuckets) {
  Rng rng(3);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(13);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::size_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) counts[rng.weighted_index(weights)] += 1;
  EXPECT_EQ(counts[1], 0u);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(RngTest, WeightedIndexRejectsDegenerateInput) {
  Rng rng(13);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(zeros), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index(std::vector<double>{}),
               std::invalid_argument);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = items;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, items);
}

TEST(RngTest, PickRejectsEmpty) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(100);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.uniform_int(0, 1 << 30) == child.uniform_int(0, 1 << 30)) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(watch.millis(), 5.0);
  watch.reset();
  EXPECT_LT(watch.millis(), 5.0);
}

TEST(PhaseTimerTest, AccumulatesPhases) {
  PhaseTimer timer;
  timer.add("a", 1.0);
  timer.add("a", 2.0);
  timer.add("b", 0.5);
  EXPECT_DOUBLE_EQ(timer.total("a"), 3.0);
  EXPECT_EQ(timer.count("a"), 2u);
  EXPECT_DOUBLE_EQ(timer.mean("a"), 1.5);
  EXPECT_DOUBLE_EQ(timer.total("missing"), 0.0);
  EXPECT_DOUBLE_EQ(timer.mean("missing"), 0.0);
}

TEST(ScopedPhaseTest, RecordsOnDestruction) {
  PhaseTimer timer;
  {
    ScopedPhase phase(timer, "scope");
  }
  EXPECT_EQ(timer.count("scope"), 1u);
}

TEST(StringsTest, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringsTest, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringsTest, JoinConcatenatesWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StringsTest, PrefixSuffixChecks) {
  EXPECT_TRUE(starts_with("read@main", "read"));
  EXPECT_FALSE(starts_with("read", "read@"));
  EXPECT_TRUE(ends_with("read@main", "@main"));
  EXPECT_FALSE(ends_with("main", "@main"));
}

TEST(StringsTest, FormatHelpers) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_probability(0.0), "0");
  EXPECT_EQ(format_probability(0.00032), "3.2e-04");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Program", "N"});
  table.add_row({"gzip", "21"});
  table.add_row({"bash", "1366"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("Program  N"), std::string::npos);
  EXPECT_NE(out.find("gzip"), std::string::npos);
  EXPECT_NE(out.find("1366"), std::string::npos);
}

TEST(TablePrinterTest, PadsMissingCellsAndRejectsWideRows) {
  TablePrinter table({"a", "b", "c"});
  table.add_row({"x"});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_THROW(table.add_row({"1", "2", "3", "4"}), std::invalid_argument);
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
}

}  // namespace
}  // namespace cmarkov
