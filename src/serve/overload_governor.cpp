#include "src/serve/overload_governor.hpp"

#include <algorithm>
#include <stdexcept>

namespace cmarkov::serve {

const char* overload_level_name(OverloadLevel level) {
  switch (level) {
    case OverloadLevel::kNormal:
      return "normal";
    case OverloadLevel::kShedTraces:
      return "shed-traces";
    case OverloadLevel::kShedHellos:
      return "shed-hellos";
    case OverloadLevel::kShedIdle:
      return "shed-idle";
  }
  return "?";
}

OverloadGovernor::OverloadGovernor(OverloadOptions options)
    : options_(options) {
  if (options_.high_water_ratio <= options_.low_water_ratio) {
    throw std::invalid_argument(
        "OverloadGovernor: high_water_ratio must exceed low_water_ratio");
  }
  if (options_.shed_resident_fraction <= 0.0 ||
      options_.shed_resident_fraction > 1.0) {
    throw std::invalid_argument(
        "OverloadGovernor: shed_resident_fraction must be in (0, 1]");
  }
}

double OverloadGovernor::pressure(std::size_t queued, std::size_t capacity,
                                  double est_service_micros) const {
  double p = capacity == 0 ? 0.0
                           : static_cast<double>(queued) /
                                 static_cast<double>(capacity);
  if (options_.event_deadline_micros > 0.0 && est_service_micros > 0.0) {
    const double est_delay =
        static_cast<double>(queued) * est_service_micros;
    p = std::max(p, est_delay / options_.event_deadline_micros);
  }
  return p;
}

OverloadGovernor::Update OverloadGovernor::update(double now_micros,
                                                  std::size_t queued,
                                                  std::size_t capacity,
                                                  double est_service_micros) {
  Update result;
  if (!options_.enabled) return result;
  const double p = pressure(queued, capacity, est_service_micros);
  const std::lock_guard lock(mu_);
  int level = level_.load(std::memory_order_relaxed);
  if (p >= options_.high_water_ratio) {
    relief_since_ = -1.0;
    if (breach_since_ < 0.0) breach_since_ = now_micros;
    if (level < static_cast<int>(OverloadLevel::kShedIdle) &&
        now_micros - breach_since_ >= options_.sustain_micros) {
      ++level;
      ++result.transitions;
      breach_since_ = now_micros;  // the next rung needs its own sustain
    }
  } else if (p <= options_.low_water_ratio) {
    breach_since_ = -1.0;
    if (level > 0) {
      if (relief_since_ < 0.0) relief_since_ = now_micros;
      if (now_micros - relief_since_ >= options_.sustain_micros) {
        --level;
        ++result.transitions;
        relief_since_ = now_micros;  // recovery is one rung at a time too
      }
    } else {
      relief_since_ = -1.0;
    }
  } else {
    // Hysteresis hold band: neither timer runs, the ladder stays put.
    breach_since_ = -1.0;
    relief_since_ = -1.0;
  }
  level_.store(level, std::memory_order_relaxed);
  result.level = static_cast<OverloadLevel>(level);
  return result;
}

}  // namespace cmarkov::serve
