// The Table IV exploit payload library: reproductions of the real-world
// attack payloads the paper evaluates — a gzip buffer-overflow ROP /
// syscall chain, and the proftpd backdoor (OSVDB-69562) / buffer overflow
// (CVE-2010-4221) payload family (bind shells, reverse shells, command
// execution over telnet/IPv6/TCP/SSL channels).
//
// Each payload is the characteristic system-call sequence its Metasploit
// counterpart produces on the victim side.
#pragma once

#include <string>
#include <vector>

#include "src/attack/rop_chain.hpp"

namespace cmarkov::attack {

struct ExploitPayload {
  /// Vulnerability it rides on (Table IV column 1).
  std::string vulnerability;
  /// Payload name (Table IV column 2).
  std::string name;
  /// Victim-side call sequence of the payload body.
  std::vector<PlannedCall> calls;
};

/// The two gzip buffer-overflow payloads (ROP, syscall_chain).
std::vector<ExploitPayload> gzip_payloads();

/// The seven proftpd backdoor payloads of Table IV.
std::vector<ExploitPayload> proftpd_backdoor_payloads();

/// The proftpd CVE-2010-4221 buffer-overflow payload.
ExploitPayload proftpd_buffer_overflow_payload();

/// All payloads of Table IV in row order.
std::vector<ExploitPayload> all_table4_payloads();

}  // namespace cmarkov::attack
