#include "src/eval/ngram_baseline.hpp"

#include <stdexcept>

namespace cmarkov::eval {

NgramDetector::NgramDetector(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("NgramDetector: n must be > 0");
}

void NgramDetector::train(const std::vector<hmm::ObservationSeq>& sequences) {
  for (const auto& seq : sequences) {
    if (seq.empty()) continue;
    if (seq.size() <= n_) {
      grams_.insert(seq);
      continue;
    }
    for (std::size_t start = 0; start + n_ <= seq.size(); ++start) {
      grams_.insert(hmm::ObservationSeq(
          seq.begin() + static_cast<std::ptrdiff_t>(start),
          seq.begin() + static_cast<std::ptrdiff_t>(start + n_)));
    }
  }
}

double NgramDetector::score(const hmm::ObservationSeq& segment) const {
  if (segment.empty()) return 0.0;
  if (segment.size() <= n_) {
    return grams_.contains(segment) ? 0.0 : -1.0;
  }
  std::size_t unseen = 0;
  for (std::size_t start = 0; start + n_ <= segment.size(); ++start) {
    const hmm::ObservationSeq gram(
        segment.begin() + static_cast<std::ptrdiff_t>(start),
        segment.begin() + static_cast<std::ptrdiff_t>(start + n_));
    if (!grams_.contains(gram)) ++unseen;
  }
  return -static_cast<double>(unseen);
}

bool NgramDetector::accepts(const hmm::ObservationSeq& segment) const {
  return score(segment) == 0.0;
}

}  // namespace cmarkov::eval
