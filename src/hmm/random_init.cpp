#include "src/hmm/random_init.hpp"

#include <stdexcept>

namespace cmarkov::hmm {

namespace {

void fill_random_stochastic_row(std::span<double> row, Rng& rng,
                                double min_weight) {
  double total = 0.0;
  for (double& v : row) {
    v = rng.uniform(min_weight, 1.0);
    total += v;
  }
  for (double& v : row) v /= total;
}

}  // namespace

Hmm randomly_initialized_hmm(std::size_t num_states, std::size_t num_symbols,
                             Rng& rng, const RandomInitOptions& options) {
  if (num_states == 0 || num_symbols == 0) {
    throw std::invalid_argument(
        "randomly_initialized_hmm: need at least one state and symbol");
  }
  if (options.min_weight <= 0.0 || options.min_weight >= 1.0) {
    throw std::invalid_argument(
        "randomly_initialized_hmm: min_weight must be in (0, 1)");
  }
  Hmm model;
  model.transition = Matrix(num_states, num_states);
  model.emission = Matrix(num_states, num_symbols);
  model.initial.resize(num_states);
  for (std::size_t i = 0; i < num_states; ++i) {
    fill_random_stochastic_row(model.transition.row(i), rng,
                               options.min_weight);
    fill_random_stochastic_row(model.emission.row(i), rng,
                               options.min_weight);
  }
  fill_random_stochastic_row(model.initial, rng, options.min_weight);
  model.validate();
  return model;
}

}  // namespace cmarkov::hmm
