#include "src/serve/net/binary_session.hpp"

#include <exception>
#include <utility>

#include "src/obs/export.hpp"
#include "src/obs/trace/decision_record.hpp"
#include "src/serve/protocol.hpp"

namespace cmarkov::serve::net {

BinarySession::BinarySession(SessionManager& manager) : manager_(manager) {}

BinarySession::~BinarySession() {
  if (!session_id_.empty() && !closed_) {
    try {
      manager_.close_session(session_id_);
    } catch (const std::exception&) {
      // Disconnect raced with an explicit close; nothing left to release.
    }
  }
}

BinarySession::Output BinarySession::reply(std::string line) const {
  return {encode_frame(FrameOp::kReply, 0, line), false};
}

BinarySession::Output BinarySession::protocol_error(std::string reason) const {
  return {encode_frame(FrameOp::kError, 0, reason), true};
}

BinarySession::Output BinarySession::handle_frame(const Frame& frame) {
  if (closed_) return reply("ERR session closed (BYE already processed)");
  try {
    switch (frame.op) {
      case FrameOp::kHello:
        return handle_hello(frame);
      case FrameOp::kEventBatch:
        return handle_event_batch(frame);
      case FrameOp::kStats: {
        if (session_id_.empty()) {
          return reply("ERR no session (send HELLO first)");
        }
        manager_.drain();  // verdicts are async; settle before reporting
        return reply(
            format_session_stats(manager_.session_stats(session_id_)));
      }
      case FrameOp::kMetrics: {
        manager_.drain();
        return reply("METRICS " +
                     obs::to_kv_line(manager_.metrics_registry()));
      }
      case FrameOp::kTrace: {
        if (session_id_.empty()) {
          return reply("ERR no session (send HELLO first)");
        }
        const std::uint32_t n = decode_trace_payload(frame.payload);
        if (n == 0) return reply("ERR TRACE n must be > 0");
        manager_.drain();
        const std::vector<obs::DecisionRecord> records =
            manager_.recent_decisions(session_id_, n);
        std::string body = "TRACE v=1 session=" + session_id_ +
                           " n=" + std::to_string(records.size());
        for (const obs::DecisionRecord& record : records) {
          body += '\n';
          body += obs::decision_record_json(record);
        }
        return reply(std::move(body));
      }
      case FrameOp::kEvict: {
        if (session_id_.empty()) {
          return reply("ERR no session (send HELLO first)");
        }
        manager_.evict_session(session_id_);
        return reply("OK session=" + session_id_ + " evicted_dropped=" +
                     std::to_string(manager_.session_stats(session_id_)
                                        .evicted_dropped));
      }
      case FrameOp::kBye: {
        if (session_id_.empty()) {
          return reply("ERR no session (send HELLO first)");
        }
        const SessionStats stats = manager_.close_session(session_id_);
        closed_ = true;
        Output out = reply(
            "OK session=" + stats.id +
            " alarms=" + std::to_string(stats.monitor.alarms) +
            " processed=" + std::to_string(stats.processed));
        out.close = true;
        return out;
      }
      case FrameOp::kReply:
      case FrameOp::kError:
        return protocol_error("frame: server-side op " +
                              std::to_string(static_cast<int>(frame.op)) +
                              " sent by client");
    }
    return protocol_error("frame: unknown op " +
                          std::to_string(static_cast<int>(frame.op)));
  } catch (const std::runtime_error& e) {
    // Payload decoders throw runtime_error on malformed bytes — a framing
    // violation, not an application error: drop the connection.
    return protocol_error(e.what());
  } catch (const std::exception& e) {
    return reply(std::string("ERR ") + e.what());
  }
}

BinarySession::Output BinarySession::handle_hello(const Frame& frame) {
  if (!session_id_.empty()) {
    return reply("ERR session already bound to '" + session_id_ + "'");
  }
  const HelloRequest request = decode_hello_payload(frame.payload);
  const std::string id = request.session.empty()
                             ? manager_.next_session_id()
                             : request.session;
  manager_.open_session(id, request.model);
  session_id_ = id;
  trace_id_ = request.trace_id;
  std::string line = "OK session=" + id + " model=" + request.model;
  if (!trace_id_.empty()) line += " tid=" + trace_id_;
  return reply(std::move(line));
}

BinarySession::Output BinarySession::handle_event_batch(const Frame& frame) {
  if (session_id_.empty()) return reply("ERR no session (send HELLO first)");
  const std::vector<trace::CallEvent> events =
      decode_event_batch_payload(frame.payload);
  std::uint64_t accepted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t rejected = 0;
  for (trace::CallEvent event : events) {
    switch (manager_.submit(session_id_, std::move(event), trace_id_)) {
      case SubmitResult::kAccepted:
        ++accepted;
        break;
      case SubmitResult::kDroppedOldest:
        ++accepted;  // this event got in; an older one paid for it
        ++dropped;
        break;
      case SubmitResult::kRejected:
        ++rejected;
        break;
      case SubmitResult::kUnknownSession:
        return reply("ERR session vanished");
    }
  }
  if (frame.flags & kFlagNoReply) return {};
  return reply("OK n=" + std::to_string(accepted) +
               " dropped=" + std::to_string(dropped) +
               " rejected=" + std::to_string(rejected));
}

}  // namespace cmarkov::serve::net
