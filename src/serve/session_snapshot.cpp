#include "src/serve/session_snapshot.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/util/logging.hpp"

namespace cmarkov::serve {

namespace {

constexpr const char* kMagic = "cmarkov-session";
constexpr int kVersion = 1;
/// Sanity bound for the length-prefixed string fields (id/model). Far
/// above anything the wire protocol admits; guards the decoder against
/// allocating ahead of a lying length in a corrupted file.
constexpr std::uint64_t kMaxStringField = 1 << 20;

std::uint64_t read_u64(std::istream& in, const char* key) {
  std::uint64_t value = 0;
  if (!(in >> value)) {
    throw std::runtime_error(std::string("session_snapshot: malformed '") +
                             key + "' value");
  }
  return value;
}

void expect_key(std::istream& in, const char* key) {
  std::string seen;
  if (!(in >> seen) || seen != key) {
    throw std::runtime_error(
        std::string("session_snapshot: expected key '") + key + "'");
  }
}

/// Reads a length-prefixed string field: "<len> <len bytes>". The CMKB
/// HELLO admits arbitrary bytes in session/model names (spaces, newlines),
/// so these fields cannot be whitespace-tokenized.
std::string read_sized_string(std::istream& in, const char* key) {
  const std::uint64_t length = read_u64(in, key);
  if (length > kMaxStringField) {
    throw std::runtime_error(std::string("session_snapshot: '") + key +
                             "' length " + std::to_string(length) +
                             " exceeds the " +
                             std::to_string(kMaxStringField) + " byte cap");
  }
  if (in.get() != ' ') {
    throw std::runtime_error(std::string("session_snapshot: malformed '") +
                             key + "' value");
  }
  std::string value(static_cast<std::size_t>(length), '\0');
  if (length > 0 &&
      !in.read(value.data(), static_cast<std::streamsize>(length))) {
    throw std::runtime_error(std::string("session_snapshot: truncated '") +
                             key + "' value");
  }
  return value;
}

/// Session ids come from the wire; keep the on-disk name filesystem-safe.
std::string sanitize_for_filename(const std::string& id) {
  std::string out;
  out.reserve(id.size());
  for (const char c : id) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    if (safe) {
      out.push_back(c);
    } else {
      static const char* hex = "0123456789abcdef";
      out.push_back('%');
      out.push_back(hex[static_cast<unsigned char>(c) >> 4]);
      out.push_back(hex[static_cast<unsigned char>(c) & 0xf]);
    }
  }
  return out;
}

}  // namespace

std::string encode_session_snapshot(const SessionSnapshot& snapshot) {
  std::ostringstream out;
  out << kMagic << " " << kVersion << "\n";
  // id/model are length-prefixed: the wire allows arbitrary bytes in them.
  out << "id " << snapshot.id.size() << " " << snapshot.id << "\n";
  out << "model " << snapshot.model.size() << " " << snapshot.model << "\n";
  out << "model_version " << snapshot.model_version << "\n";
  out << "model_fingerprint " << snapshot.model_fingerprint << "\n";
  out << "enqueued " << snapshot.enqueued << "\n";
  out << "processed " << snapshot.processed << "\n";
  out << "dropped " << snapshot.dropped << "\n";
  out << "rejected " << snapshot.rejected << "\n";
  out << "evicted_dropped " << snapshot.evicted_dropped << "\n";
  out << "windows_to_alarm " << snapshot.windows_to_alarm << "\n";
  out << "cooldown_events " << snapshot.cooldown_events << "\n";
  out << "consecutive_flagged " << snapshot.monitor.consecutive_flagged
      << "\n";
  out << "cooldown_remaining " << snapshot.monitor.cooldown_remaining << "\n";
  out << "events_seen " << snapshot.monitor.stats.events_seen << "\n";
  out << "events_observed " << snapshot.monitor.stats.events_observed << "\n";
  out << "windows_scored " << snapshot.monitor.stats.windows_scored << "\n";
  out << "windows_flagged " << snapshot.monitor.stats.windows_flagged << "\n";
  out << "alarms " << snapshot.monitor.stats.alarms << "\n";
  out << "window " << snapshot.monitor.window.size();
  for (const std::size_t id : snapshot.monitor.window) out << " " << id;
  out << "\n";
  return out.str();
}

SessionSnapshot decode_session_snapshot(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  if (!(in >> magic) || magic != kMagic) {
    throw std::runtime_error(
        "session_snapshot: not a cmarkov session snapshot");
  }
  int version = 0;
  if (!(in >> version)) {
    throw std::runtime_error("session_snapshot: malformed version");
  }
  if (version != kVersion) {
    throw std::runtime_error("session_snapshot: unsupported version " +
                             std::to_string(version));
  }
  SessionSnapshot snapshot;
  expect_key(in, "id");
  snapshot.id = read_sized_string(in, "id");
  expect_key(in, "model");
  snapshot.model = read_sized_string(in, "model");
  expect_key(in, "model_version");
  snapshot.model_version = read_u64(in, "model_version");
  expect_key(in, "model_fingerprint");
  snapshot.model_fingerprint = read_u64(in, "model_fingerprint");
  expect_key(in, "enqueued");
  snapshot.enqueued = read_u64(in, "enqueued");
  expect_key(in, "processed");
  snapshot.processed = read_u64(in, "processed");
  expect_key(in, "dropped");
  snapshot.dropped = read_u64(in, "dropped");
  expect_key(in, "rejected");
  snapshot.rejected = read_u64(in, "rejected");
  expect_key(in, "evicted_dropped");
  snapshot.evicted_dropped = read_u64(in, "evicted_dropped");
  expect_key(in, "windows_to_alarm");
  snapshot.windows_to_alarm = read_u64(in, "windows_to_alarm");
  expect_key(in, "cooldown_events");
  snapshot.cooldown_events = read_u64(in, "cooldown_events");
  expect_key(in, "consecutive_flagged");
  snapshot.monitor.consecutive_flagged =
      static_cast<std::size_t>(read_u64(in, "consecutive_flagged"));
  expect_key(in, "cooldown_remaining");
  snapshot.monitor.cooldown_remaining =
      static_cast<std::size_t>(read_u64(in, "cooldown_remaining"));
  expect_key(in, "events_seen");
  snapshot.monitor.stats.events_seen =
      static_cast<std::size_t>(read_u64(in, "events_seen"));
  expect_key(in, "events_observed");
  snapshot.monitor.stats.events_observed =
      static_cast<std::size_t>(read_u64(in, "events_observed"));
  expect_key(in, "windows_scored");
  snapshot.monitor.stats.windows_scored =
      static_cast<std::size_t>(read_u64(in, "windows_scored"));
  expect_key(in, "windows_flagged");
  snapshot.monitor.stats.windows_flagged =
      static_cast<std::size_t>(read_u64(in, "windows_flagged"));
  expect_key(in, "alarms");
  snapshot.monitor.stats.alarms =
      static_cast<std::size_t>(read_u64(in, "alarms"));
  expect_key(in, "window");
  const std::uint64_t count = read_u64(in, "window");
  snapshot.monitor.window.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::size_t id = 0;
    if (!(in >> id)) {
      throw std::runtime_error(
          "session_snapshot: truncated window at entry " + std::to_string(i));
    }
    snapshot.monitor.window.push_back(id);
  }
  return snapshot;
}

SnapshotStore::SnapshotStore(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("SnapshotStore: cannot create directory '" +
                             dir_ + "': " + ec.message());
  }
}

std::string SnapshotStore::file_path(const std::string& id) const {
  return dir_ + "/" + sanitize_for_filename(id) + ".session";
}

void SnapshotStore::put(SessionSnapshot snapshot) {
  // Disk mirroring happens outside mu_ so stats readers (peek/contains)
  // never queue behind file I/O; put/take themselves are serialized by the
  // manager's lifecycle lock. An I/O failure degrades this snapshot to
  // memory-only with a logged error — put() is called from the eviction
  // path, and throwing there would surface as a protocol violation to
  // whichever client's submit() triggered the eviction.
  if (!dir_.empty()) {
    const std::string path = file_path(snapshot.id);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) {
      out << encode_session_snapshot(snapshot);
      out.flush();
    }
    if (!out) {
      log_error() << "snapshot store: cannot write '" << path
                  << "'; keeping session snapshot in memory only";
    }
  }
  const std::lock_guard lock(mu_);
  snapshots_[snapshot.id] = std::move(snapshot);
}

std::optional<SessionSnapshot> SnapshotStore::take(const std::string& id) {
  const std::lock_guard lock(mu_);
  const auto it = snapshots_.find(id);
  if (it == snapshots_.end()) return std::nullopt;
  SessionSnapshot snapshot = std::move(it->second);
  snapshots_.erase(it);
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove(file_path(id), ec);  // best effort
  }
  return snapshot;
}

std::optional<SessionSnapshot> SnapshotStore::peek(
    const std::string& id) const {
  const std::lock_guard lock(mu_);
  const auto it = snapshots_.find(id);
  if (it == snapshots_.end()) return std::nullopt;
  return it->second;
}

bool SnapshotStore::contains(const std::string& id) const {
  const std::lock_guard lock(mu_);
  return snapshots_.find(id) != snapshots_.end();
}

std::size_t SnapshotStore::size() const {
  const std::lock_guard lock(mu_);
  return snapshots_.size();
}

std::size_t SnapshotStore::load_directory() {
  if (dir_.empty()) return 0;
  const std::lock_guard lock(mu_);
  std::size_t loaded = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".session") {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      SessionSnapshot snapshot = decode_session_snapshot(buffer.str());
      snapshots_[snapshot.id] = std::move(snapshot);
    } catch (const std::exception& e) {
      // One corrupt (or adversarial) file must not abort daemon startup:
      // skip it, keep every healthy session.
      log_error() << "snapshot store: skipping malformed " << entry.path()
                  << ": " << e.what();
      continue;
    }
    ++loaded;
  }
  if (loaded > 0) {
    log_info() << "snapshot store: restored " << loaded
               << " session snapshot(s) from " << dir_;
  }
  return loaded;
}

}  // namespace cmarkov::serve
