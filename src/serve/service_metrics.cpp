#include "src/serve/service_metrics.hpp"

#include <sstream>

#include "src/util/strings.hpp"

namespace cmarkov::serve {

std::span<const double> latency_bucket_bounds() {
  static constexpr double kBounds[] = {
      1,   2,   5,   10,  20,  50,  100, 200, 500, 1e3,
      2e3, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, 5e5, 1e6, 2e6};
  return kBounds;
}

std::string ServiceMetrics::to_line() const {
  std::ostringstream out;
  out << "v=1 uptime_s=" << format_double(uptime_seconds, 3)
      << " sessions=" << sessions_open << " enqueued=" << events_enqueued
      << " processed=" << events_processed << " dropped=" << events_dropped
      << " rejected=" << events_rejected << " windows=" << windows_scored
      << " alarms=" << alarms
      << " events_per_s=" << format_double(events_per_second, 0)
      << " p50_us=" << format_double(p50_latency_micros, 0)
      << " p99_us=" << format_double(p99_latency_micros, 0) << " qdepth=";
  for (std::size_t i = 0; i < queue_depths.size(); ++i) {
    if (i > 0) out << ",";
    out << queue_depths[i];
  }
  return out.str();
}

}  // namespace cmarkov::serve
