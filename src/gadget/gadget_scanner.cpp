#include "src/gadget/gadget_scanner.hpp"

namespace cmarkov::gadget {

namespace {

bool breaks_gadget(Opcode op) {
  switch (op) {
    case Opcode::kCall:
    case Opcode::kJump:
    case Opcode::kBranch:
    case Opcode::kRet:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::vector<Gadget> find_syscall_ret_gadgets(const BinaryImage& image,
                                             std::size_t max_length) {
  std::vector<Gadget> out;
  const auto& instrs = image.instructions();
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    if (instrs[i].op != Opcode::kSyscall) continue;
    // Walk forward to the first control transfer.
    for (std::size_t j = i + 1;
         j < instrs.size() && j - i + 1 <= max_length; ++j) {
      if (instrs[j].op == Opcode::kRet) {
        out.push_back({instrs[i].address, instrs[j].address, j - i + 1,
                       instrs[i].syscall_name});
        break;
      }
      if (breaks_gadget(instrs[j].op)) break;
    }
  }
  return out;
}

GadgetCounts count_gadgets(
    const BinaryImage& image, std::size_t max_length,
    const trace::Symbolizer* symbolizer,
    const std::set<attack::LegitimateCall>& legitimate) {
  GadgetCounts counts;
  for (const auto& gadget : find_syscall_ret_gadgets(image, max_length)) {
    ++counts.raw;
    if (symbolizer == nullptr || gadget.syscall_name.empty()) continue;
    const auto caller = symbolizer->resolve(gadget.syscall_address);
    if (!caller.has_value()) continue;
    if (legitimate.contains({gadget.syscall_name, *caller,
                             ir::CallKind::kSyscall})) {
      ++counts.context_compatible;
    }
  }
  return counts;
}

}  // namespace cmarkov::gadget
