// Tests for the mimicry-attack probe (Section II-A attack model).
#include <gtest/gtest.h>

#include <cmath>

#include "src/attack/mimicry.hpp"
#include "src/hmm/trainer.hpp"
#include "src/trace/segmenter.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::attack {
namespace {

struct Fixture {
  workload::ProgramSuite suite = workload::make_proftpd_suite();
  workload::TraceCollection collection =
      workload::collect_traces(suite, 25, 3);

  eval::BuiltModel trained(eval::ModelKind kind) {
    eval::ModelBuildOptions options;
    options.filter = analysis::CallFilter::kSyscalls;
    Rng rng(7);
    eval::BuiltModel model =
        eval::build_model(kind, suite, collection.traces, options, rng);
    trace::SegmentSet set;
    for (const auto& trace : collection.traces) {
      set.add_trace(model.encode(trace));
    }
    auto segments = set.to_vector();
    if (segments.size() > 250) segments.resize(250);
    hmm::TrainingOptions training;
    training.max_iterations = 6;
    hmm::Trainer trainer(model.hmm, training);
    trainer.fit(segments);
    model.hmm = trainer.model();
    return model;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(MimicryTest, UnknownGoalDefeatsTheAttack) {
  const auto model = fixture().trained(eval::ModelKind::kCMarkov);
  const MimicryResult result = craft_mimicry(
      model, {"execve@attacker_function"});
  EXPECT_FALSE(result.goal_embedded);
  EXPECT_TRUE(std::isinf(result.log_likelihood));
  ASSERT_EQ(result.unknown_goals.size(), 1u);
  EXPECT_EQ(result.unknown_goals[0], "execve@attacker_function");
}

TEST(MimicryTest, EmbedsKnownGoalsInOrder) {
  const auto model = fixture().trained(eval::ModelKind::kRegularBasic);
  // proftpd makes socket/connect/send in normal operation.
  const MimicryResult result =
      craft_mimicry(model, {"socket", "connect"});
  ASSERT_TRUE(result.goal_embedded);
  EXPECT_TRUE(std::isfinite(result.log_likelihood));
  EXPECT_EQ(result.segment.size(), 15u);
  const auto socket_id = model.alphabet.find("socket").value();
  const auto connect_id = model.alphabet.find("connect").value();
  const auto socket_pos =
      std::find(result.segment.begin(), result.segment.end(), socket_id);
  const auto connect_pos =
      std::find(socket_pos, result.segment.end(), connect_id);
  EXPECT_NE(socket_pos, result.segment.end());
  EXPECT_NE(connect_pos, result.segment.end());
}

TEST(MimicryTest, GoalsLongerThanSegmentAreImpossible) {
  const auto model = fixture().trained(eval::ModelKind::kRegularBasic);
  std::vector<std::string> goals(20, "socket");
  MimicryOptions options;
  options.segment_length = 15;
  const MimicryResult result = craft_mimicry(model, goals, options);
  EXPECT_FALSE(result.goal_embedded);
}

TEST(MimicryTest, MoreGoalsCannotIncreaseBestLikelihood) {
  const auto model = fixture().trained(eval::ModelKind::kRegularBasic);
  const double one = craft_mimicry(model, {"dup2"}).log_likelihood;
  const double three =
      craft_mimicry(model, {"dup2", "dup2", "execve"}).log_likelihood;
  EXPECT_GE(one, three - 1e-9);
}

TEST(MimicryTest, ContextModelLeavesLessMimicryHeadroom) {
  // The paper's claim: quantitative scoring + context sensitivity makes
  // effective mimicry hard. The attacker wants a backdoor-ish goal chain;
  // compare the best achievable (per-call) likelihood under the basic model
  // vs the context model restricted to legitimate pairs.
  auto& f = fixture();
  const auto basic = f.trained(eval::ModelKind::kRegularBasic);
  const auto cmarkov = f.trained(eval::ModelKind::kCMarkov);

  const MimicryResult basic_attack =
      craft_mimicry(basic, {"socket", "connect", "dup2", "execve"});

  // Context attacker must pick legitimate contexts for each goal call; use
  // the ones observed in traces (spawn-like contexts do not exist for this
  // chain in proftpd's behaviour, so expect degradation or impossibility).
  const auto legit = legitimate_call_set(f.collection.traces,
                                         analysis::CallFilter::kSyscalls);
  auto context_goal = [&](const std::string& name) -> std::string {
    for (const auto& call : legit) {
      if (call.name == name) return name + "@" + call.caller;
    }
    return name + "@<none>";
  };
  const MimicryResult context_attack = craft_mimicry(
      cmarkov, {context_goal("socket"), context_goal("connect"),
                context_goal("dup2"), context_goal("execve")});

  if (!context_attack.goal_embedded) {
    // Strongest outcome: no legitimate-context embedding exists at all.
    SUCCEED();
    return;
  }
  // Otherwise the context model must make the best mimicry less likely
  // than the basic model does (normalized per symbol).
  EXPECT_LT(context_attack.log_likelihood, basic_attack.log_likelihood);
}

TEST(MimicryTest, PaddingPrefersLikelySymbols) {
  const auto model = fixture().trained(eval::ModelKind::kRegularBasic);
  const MimicryResult result = craft_mimicry(model, {"send"});
  ASSERT_TRUE(result.goal_embedded);
  // The crafted segment's likelihood should beat a naive segment that
  // repeats the goal everywhere.
  const auto send_id = model.alphabet.find("send").value();
  const hmm::ObservationSeq naive(15, send_id);
  EXPECT_GE(result.log_likelihood,
            model.score(naive) - 1e-9);
}

}  // namespace
}  // namespace cmarkov::attack
