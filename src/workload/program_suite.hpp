// Program suites: the synthetic equivalents of the paper's eight evaluated
// programs. Each suite bundles a MiniC program modeled on the real
// program's call behaviour (gzip compresses buffers, proftpd serves FTP
// sessions, ...) with a seeded test-case generator standing in for the SIR
// test suites / server workloads (see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/cfg/call_graph.hpp"
#include "src/cfg/cfg.hpp"
#include "src/ir/module.hpp"
#include "src/trace/coverage.hpp"
#include "src/trace/event.hpp"
#include "src/util/rng.hpp"

namespace cmarkov::workload {

struct SuiteInfo {
  std::string name;
  std::string description;
  /// Test-case count the paper reports for this program (Table I; servers
  /// use the session counts implied by Section V-A).
  std::size_t paper_test_cases = 0;
};

/// Distribution of interpreter input streams for a suite's test cases.
struct InputSpec {
  std::size_t min_inputs = 16;
  std::size_t max_inputs = 96;
  std::int64_t min_value = 0;
  std::int64_t max_value = 99;
};

struct TestCase {
  std::size_t index = 0;
  std::vector<std::int64_t> inputs;
  /// Seed of the external-call environment for this run.
  std::uint64_t environment_seed = 0;
};

/// One evaluated program with its lowered CFGs and test-case generator.
class ProgramSuite {
 public:
  /// Parses, checks and lowers the MiniC source. Throws on invalid source.
  ProgramSuite(SuiteInfo info, std::string minic_source, InputSpec inputs);

  const SuiteInfo& info() const { return info_; }
  const ir::ProgramModule& module() const { return module_; }
  const cfg::ModuleCfg& cfg() const { return cfg_; }
  const cfg::CallGraph& call_graph() const { return call_graph_; }
  const InputSpec& input_spec() const { return inputs_; }

  /// Deterministic test case: same (index, base_seed) -> same inputs.
  TestCase make_test_case(std::size_t index, std::uint64_t base_seed) const;

  std::vector<TestCase> make_test_cases(std::size_t count,
                                        std::uint64_t base_seed) const;

 private:
  SuiteInfo info_;
  InputSpec inputs_;
  ir::ProgramModule module_;
  cfg::ModuleCfg cfg_;
  cfg::CallGraph call_graph_;
};

// One factory per evaluated program (defined in suite_<name>.cpp).
ProgramSuite make_flex_suite();
ProgramSuite make_grep_suite();
ProgramSuite make_gzip_suite();
ProgramSuite make_sed_suite();
ProgramSuite make_bash_suite();
ProgramSuite make_vim_suite();
ProgramSuite make_proftpd_suite();
ProgramSuite make_nginx_suite();

/// Builds a suite by program name; throws std::invalid_argument for unknown
/// names.
ProgramSuite make_suite(const std::string& name);

/// Names of all eight suites, utilities first (Table I order).
const std::vector<std::string>& all_suite_names();

/// Names of the six SIR utility programs (Figures 2-3).
const std::vector<std::string>& utility_suite_names();

/// Names of the two server programs (Figures 4-5).
const std::vector<std::string>& server_suite_names();

}  // namespace cmarkov::workload
