// DecisionLog — the service-wide JSONL sink for DecisionRecords: a
// lock-free BoundedLog plus the `cmarkov.decision.v1` rendering. cmarkovd
// appends every recorded decision here (scoring workers, wait-free) and
// dumps the log as one JSON line per record on demand (--decision-log,
// tests). Output is byte-deterministic for a deterministic append order.
#pragma once

#include <string>

#include "src/obs/trace/bounded_log.hpp"
#include "src/obs/trace/decision_record.hpp"

namespace cmarkov::obs {

class DecisionLog {
 public:
  explicit DecisionLog(std::size_t capacity) : log_(capacity) {}

  /// Wait-free append; false (and a counted drop) once full.
  bool append(DecisionRecord record) { return log_.append(std::move(record)); }

  std::uint64_t appended() const { return log_.appended(); }
  std::uint64_t dropped() const { return log_.dropped(); }
  std::size_t capacity() const { return log_.capacity(); }

  /// True once the log can never accept another record; hot-path callers
  /// may skip the record copy and call drop() instead.
  bool full() const { return log_.full(); }

  /// Drop accounting for records skipped via the full() fast path.
  void drop(std::uint64_t n = 1) { log_.drop(n); }

  std::vector<DecisionRecord> snapshot() const { return log_.snapshot(); }

  /// All published records, one `cmarkov.decision.v1` JSON line each
  /// (trailing newline per line).
  std::string to_jsonl() const;

 private:
  BoundedLog<DecisionRecord> log_;
};

}  // namespace cmarkov::obs
