// Unit tests for the dense matrix type and the Jacobi eigen-solver.
#include <gtest/gtest.h>

#include <cmath>

#include "src/linalg/eigen.hpp"
#include "src/linalg/matrix.hpp"

namespace cmarkov {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m.at(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 0), 7.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 3), std::out_of_range);
}

TEST(MatrixTest, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1.0, 2.0}, {3.0}}), std::invalid_argument);
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, IdentityAndMultiply) {
  const Matrix id = Matrix::identity(3);
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  EXPECT_EQ(m.multiply(id), m);
  EXPECT_EQ(id.multiply(m), m);

  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{5, 6}, {7, 8}});
  const Matrix ab = a.multiply(b);
  EXPECT_DOUBLE_EQ(ab(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(ab(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(ab(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(ab(1, 1), 50.0);
  EXPECT_THROW(a.multiply(Matrix(3, 2)), std::invalid_argument);
}

TEST(MatrixTest, TransposeRoundTrips) {
  const Matrix m = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), m);
}

TEST(MatrixTest, RowAndColSums) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m.row_sum(0), 3.0);
  EXPECT_DOUBLE_EQ(m.col_sum(1), 6.0);
}

TEST(MatrixTest, NormalizeRowsMakesStochastic) {
  Matrix m = Matrix::from_rows({{2, 2}, {0, 0}, {1, 3}});
  m.normalize_rows();
  EXPECT_DOUBLE_EQ(m(0, 0), 0.5);
  // Zero rows become uniform.
  EXPECT_DOUBLE_EQ(m(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(m(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(m(2, 1), 0.75);
}

TEST(MatrixTest, MaxAbsDiffAndNorm) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  Matrix b = a;
  b(1, 1) = 4.5;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.5);
  EXPECT_THROW(a.max_abs_diff(Matrix(1, 2)), std::invalid_argument);
  const Matrix unit = Matrix::from_rows({{3, 4}});
  EXPECT_DOUBLE_EQ(unit.frobenius_norm(), 5.0);
}

TEST(MatrixTest, EuclideanDistance) {
  const std::vector<double> a = {0.0, 3.0};
  const std::vector<double> b = {4.0, 0.0};
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 5.0);
  const std::vector<double> c = {1.0};
  EXPECT_THROW(euclidean_distance(a, c), std::invalid_argument);
}

TEST(MatrixTest, ColumnMeansAndCovariance) {
  const Matrix samples = Matrix::from_rows({{1, 10}, {3, 14}});
  const auto means = column_means(samples);
  EXPECT_DOUBLE_EQ(means[0], 2.0);
  EXPECT_DOUBLE_EQ(means[1], 12.0);

  const Matrix cov = covariance(samples);
  // var(x) = ((1-2)^2 + (3-2)^2) / 1 = 2, cov(x,y) = 4, var(y) = 8.
  EXPECT_DOUBLE_EQ(cov(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(cov(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(cov(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(cov(1, 1), 8.0);
  EXPECT_THROW(covariance(Matrix(1, 2)), std::invalid_argument);
}

TEST(JacobiTest, DiagonalMatrixIsItsOwnSpectrum) {
  const Matrix d = Matrix::from_rows({{3, 0}, {0, 1}});
  const auto eig = jacobi_eigen(d);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
}

TEST(JacobiTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/sqrt2,
  // (1,-1)/sqrt2.
  const Matrix m = Matrix::from_rows({{2, 1}, {1, 2}});
  const auto eig = jacobi_eigen(m);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
  EXPECT_NEAR(std::abs(eig.vectors[0][0]), 1.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(std::abs(eig.vectors[0][1]), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(JacobiTest, ReconstructsMatrix) {
  const Matrix m =
      Matrix::from_rows({{4, 1, 0.5}, {1, 3, 0.25}, {0.5, 0.25, 2}});
  const auto eig = jacobi_eigen(m);
  // Rebuild sum(lambda_k v_k v_k^T) and compare.
  Matrix rebuilt(3, 3);
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        rebuilt(i, j) += eig.values[k] * eig.vectors[k][i] * eig.vectors[k][j];
      }
    }
  }
  EXPECT_LT(m.max_abs_diff(rebuilt), 1e-8);
}

TEST(JacobiTest, EigenvectorsAreOrthonormal) {
  const Matrix m = Matrix::from_rows({{5, 2, 1}, {2, 4, 0}, {1, 0, 3}});
  const auto eig = jacobi_eigen(m);
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = 0; b < 3; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < 3; ++i) {
        dot += eig.vectors[a][i] * eig.vectors[b][i];
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(JacobiTest, RejectsNonSquareAndAsymmetric) {
  EXPECT_THROW(jacobi_eigen(Matrix(2, 3)), std::invalid_argument);
  const Matrix asym = Matrix::from_rows({{1, 2}, {0, 1}});
  EXPECT_THROW(jacobi_eigen(asym), std::invalid_argument);
}

}  // namespace
}  // namespace cmarkov
