#include "src/core/pipeline.hpp"

#include "src/cfg/cfg_builder.hpp"

namespace cmarkov::core {

StaticPipelineResult run_static_pipeline(const ir::ProgramModule& program,
                                         const PipelineConfig& config,
                                         Rng& rng) {
  StaticPipelineResult result;
  result.init_encoding = config.context_sensitive
                             ? hmm::ObservationEncoding::kContextSensitive
                             : hmm::ObservationEncoding::kContextFree;

  {
    ScopedPhase phase(result.timings, "cfg");
    result.module_cfg = cfg::build_module_cfg(program);
    result.call_graph = cfg::CallGraph::build(result.module_cfg);
  }

  analysis::FunctionMatrixOptions matrix_options = config.matrix;
  matrix_options.filter = config.filter;
  const auto heuristic = analysis::make_branch_heuristic(
      matrix_options.heuristic, matrix_options.loop_probability);
  analysis::AggregatedProgram aggregated = analysis::aggregate_program(
      result.module_cfg, result.call_graph, *heuristic, matrix_options,
      &result.timings);

  result.program_matrix =
      config.context_sensitive
          ? std::move(aggregated.program_matrix)
          : analysis::project_context_insensitive(aggregated.program_matrix);
  result.distinct_calls = result.program_matrix.external_indices().size();

  {
    ScopedPhase phase(result.timings, "clustering");
    reduction::ClusteringOptions clustering_options = config.clustering;
    clustering_options.num_threads = config.num_threads;
    result.clustering =
        reduction::cluster_calls(result.program_matrix, rng,
                                 clustering_options);
    result.reduced = reduction::reconstruct_reduced_model(
        result.program_matrix, result.clustering);
  }

  {
    ScopedPhase phase(result.timings, "initialization");
    result.init = hmm::statically_initialized_hmm(
        result.reduced, result.init_encoding, result.alphabet,
        config.static_init);
  }
  return result;
}

}  // namespace cmarkov::core
