// Serialized session state for idle-session eviction and daemon restarts.
//
// A SessionSnapshot captures everything an evicted session needs to resume
// exactly where it stopped: the monitor's scoring state (window ids,
// hysteresis, cumulative stats — all exact integers, so the round trip is
// bit-identical) plus the per-session queue counters and the identity of
// the model the window ids were encoded against. The SnapshotStore keeps
// snapshots in memory and, when given a directory, mirrors each one to a
// "<id>.session" file in the `cmarkov-session v1` text format — sessions
// then survive daemon restarts (load_directory at boot).
//
// Model identity is two numbers: the in-process registry `model_version`
// (cheap staleness check for evict/restore within one daemon) and the
// content `model_fingerprint` (stable across restarts). A restore whose
// fingerprint no longer matches the registry keeps the counters but starts
// a fresh window — the old window ids index a dead alphabet.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "src/core/online_monitor.hpp"

namespace cmarkov::serve {

struct SessionSnapshot {
  std::string id;
  std::string model;
  std::uint64_t model_version = 0;
  std::uint64_t model_fingerprint = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t rejected = 0;
  /// Queued events discarded when this session was evicted (satellite
  /// accounting: eviction losses are not backpressure losses).
  std::uint64_t evicted_dropped = 0;
  /// Hysteresis configuration the session was opened with, so a restore
  /// alarms exactly like the uninterrupted session would have.
  std::uint64_t windows_to_alarm = 1;
  std::uint64_t cooldown_events = 0;
  core::MonitorSnapshot monitor;
};

/// Renders the `cmarkov-session v1` text form (exact integer fields; the
/// id/model strings are length-prefixed, so any bytes the wire admits —
/// spaces and newlines included — survive: decode(encode(s)) == s).
std::string encode_session_snapshot(const SessionSnapshot& snapshot);

/// Parses the text form. Throws std::runtime_error naming the offending
/// key or value on malformed input (model_io error style).
SessionSnapshot decode_session_snapshot(const std::string& text);

/// Thread-safe id-keyed snapshot store. With an empty directory snapshots
/// live in memory only (evict/restore within one daemon); with a directory
/// every put/erase is mirrored to disk so sessions survive restarts.
class SnapshotStore {
 public:
  /// Creates `dir` (recursively) when non-empty. Throws std::runtime_error
  /// when the directory cannot be created.
  explicit SnapshotStore(std::string dir = "");

  /// Stores (and, with a directory, mirrors to disk) one snapshot. A disk
  /// write failure is logged and degrades that snapshot to memory-only —
  /// eviction never throws I/O errors into the serving path.
  void put(SessionSnapshot snapshot);

  /// Removes and returns the snapshot, or nullopt when absent.
  std::optional<SessionSnapshot> take(const std::string& id);

  /// A copy of the snapshot without consuming it (stats of an evicted
  /// session), or nullopt when absent.
  std::optional<SessionSnapshot> peek(const std::string& id) const;

  bool contains(const std::string& id) const;
  std::size_t size() const;

  /// Loads every "*.session" file of the store directory into memory
  /// (daemon boot). Malformed files are logged and skipped — one corrupt
  /// file must not abort startup. Returns the number of snapshots loaded.
  /// No-op without a dir.
  std::size_t load_directory();

  const std::string& directory() const { return dir_; }

 private:
  std::string file_path(const std::string& id) const;

  mutable std::mutex mu_;
  std::string dir_;
  std::map<std::string, SessionSnapshot> snapshots_;
};

}  // namespace cmarkov::serve
