// Graphviz DOT rendering of CFGs and call graphs, for debugging and the
// documentation examples (Figure 1 analogue).
#pragma once

#include <string>

#include "src/cfg/call_graph.hpp"
#include "src/cfg/cfg.hpp"

namespace cmarkov::cfg {

/// DOT digraph of one function's CFG. Call blocks are labeled with their
/// call (context-sensitive form `name@function`), branch edges with T/F.
std::string to_dot(const FunctionCfg& cfg);

/// DOT digraph of the call graph; edge labels carry site counts.
std::string to_dot(const CallGraph& graph);

}  // namespace cmarkov::cfg
