#!/usr/bin/env sh
# Guards the PR-7 serve hot path: the serving tier scores exclusively
# through the compiled core::ScoringKernel (shared per model version by
# the ModelRegistry). Raw HMM scoring entry points — the ForwardResult
# matrix recursion and friends — allocate per window and bypass the
# flat-scratch kernel, so they must never appear in src/serve. The one
# sanctioned exception is the decision-audit path, which needs the full
# alpha matrix and reaches the reference recursion through
# Detector::score_segment inside src/core, not from serve code.
#
# Wired into CTest as `check_scoring_kernel` (label: serve).
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

bad="$(grep -rnE '(forward_scaled|backward_scaled|viterbi_decode|sequence_log_likelihood|sequence_probability|score_segment)[[:space:]]*\(' \
  "$repo_root/src/serve" --include='*.hpp' --include='*.h' --include='*.cpp' || true)"

if [ -n "$bad" ]; then
  echo "error: src/serve must score through core::ScoringKernel (shared" >&2
  echo "via ModelRegistry), never the raw HMM forward passes:" >&2
  echo "$bad" >&2
  exit 1
fi

# The serving tier must also not compile private kernels per session: the
# only compile() call sites are the registry (one image per model version)
# and core itself (standalone monitors without a serve tier).
compiles="$(grep -rn 'ScoringKernel::compile' \
  "$repo_root/src/serve" --include='*.hpp' --include='*.h' --include='*.cpp' \
  | grep -v 'model_registry' || true)"

if [ -n "$compiles" ]; then
  echo "error: only ModelRegistry may compile kernel images in src/serve" >&2
  echo "(one shared image per model version, not one per session):" >&2
  echo "$compiles" >&2
  exit 1
fi
echo "ok: src/serve scores only through the shared ScoringKernel"
