#include "src/eval/cross_validation.hpp"

#include <stdexcept>

#include "src/util/parallel.hpp"

namespace cmarkov::eval {

std::vector<FoldSplit> k_fold_splits(std::vector<hmm::ObservationSeq> segments,
                                     Rng& rng,
                                     const CrossValidationOptions& options) {
  if (options.folds < 2) {
    throw std::invalid_argument("k_fold_splits: need at least 2 folds");
  }
  if (segments.size() < options.folds) {
    throw std::invalid_argument("k_fold_splits: fewer segments than folds");
  }
  if (options.termination_fraction < 0.0 ||
      options.termination_fraction >= 1.0) {
    throw std::invalid_argument(
        "k_fold_splits: termination fraction must be in [0, 1)");
  }
  rng.shuffle(segments);

  // Fold boundaries: fold f owns [f*n/k, (f+1)*n/k). Every fold's split is
  // a pure function of the shuffled order, so folds materialize in
  // parallel without changing the result.
  const std::size_t n = segments.size();
  std::vector<FoldSplit> splits(options.folds);
  parallel_for(options.exec.threads, options.folds, [&](std::size_t f) {
    const std::size_t begin = f * n / options.folds;
    const std::size_t end = (f + 1) * n / options.folds;
    FoldSplit& split = splits[f];
    std::vector<hmm::ObservationSeq> rest;
    for (std::size_t i = 0; i < n; ++i) {
      if (i >= begin && i < end) {
        split.test.push_back(segments[i]);
      } else {
        rest.push_back(segments[i]);
      }
    }
    const std::size_t termination_count = static_cast<std::size_t>(
        options.termination_fraction * static_cast<double>(rest.size()));
    split.termination.assign(
        rest.begin(), rest.begin() + static_cast<std::ptrdiff_t>(
                                         termination_count));
    split.train.assign(
        rest.begin() + static_cast<std::ptrdiff_t>(termination_count),
        rest.end());
    if (options.max_train_segments != 0 &&
        split.train.size() > options.max_train_segments) {
      split.train.resize(options.max_train_segments);
    }
  });
  return splits;
}

}  // namespace cmarkov::eval
