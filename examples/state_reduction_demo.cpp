// State-reduction walkthrough: the Section III-C pipeline in slow motion on
// the bash analogue — Definition 6 call-transition vectors, PCA, K-means,
// the clustered matrix, and what the merge does to model size and training
// cost.
#include <iostream>

#include "src/analysis/aggregation.hpp"
#include "src/hmm/trainer.hpp"
#include "src/hmm/static_init.hpp"
#include "src/reduction/cluster_calls.hpp"
#include "src/reduction/reconstruct.hpp"
#include "src/trace/segmenter.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/strings.hpp"
#include "src/workload/testcase_generator.hpp"

using namespace cmarkov;

int main() {
  const workload::ProgramSuite suite = workload::make_bash_suite();
  std::cout << "Program: bash analogue, libcall model\n\n";

  // Step 1: aggregated context-sensitive call-transition matrix.
  analysis::FunctionMatrixOptions matrix_options;
  matrix_options.filter = analysis::CallFilter::kLibcalls;
  const analysis::UniformBranchHeuristic heuristic;
  auto aggregated = analysis::aggregate_program(
      suite.cfg(), suite.call_graph(), heuristic, matrix_options);
  const auto& matrix = aggregated.program_matrix;
  const std::size_t n_calls = matrix.external_indices().size();
  std::cout << "Step 1 — aggregation: " << n_calls
            << " distinct context-sensitive libcalls, "
            << matrix.nonzero_count() << " non-zero transition cells\n";

  // Step 2: Definition 6 vectors.
  const auto vectors = reduction::build_call_vectors(matrix);
  std::cout << "Step 2 — call-transition vectors: " << vectors.calls.size()
            << " vectors of dimension " << vectors.features.cols()
            << " (2n, outgoing row ++ incoming column)\n";

  // Step 3: PCA + K-means with the paper's K = N/3.
  Rng rng(11);
  reduction::ClusteringOptions options;
  options.min_calls_for_reduction = 0;
  const auto clustering = reduction::cluster_calls(matrix, rng, options);
  std::cout << "Step 3 — PCA to " << clustering.pca_dimensions
            << " dimensions, K-means to " << clustering.clusters.size()
            << " clusters\n";
  std::cout << "  sample merged clusters:\n";
  std::size_t shown = 0;
  for (const auto& cluster : clustering.clusters) {
    if (cluster.size() < 2 || shown >= 3) continue;
    std::cout << "   {";
    for (std::size_t i = 0; i < cluster.size() && i < 5; ++i) {
      if (i > 0) std::cout << ", ";
      std::cout << clustering.calls[cluster[i]].name << "@"
                << clustering.calls[cluster[i]].context;
    }
    if (cluster.size() > 5) std::cout << ", ...";
    std::cout << "}\n";
    ++shown;
  }

  // Step 4: reconstruct reduced matrix and initialize both HMMs.
  const auto reduced = reduction::reconstruct_reduced_model(matrix, clustering);
  const auto identity = reduction::reconstruct_reduced_model(
      matrix, reduction::identity_clustering(matrix));
  hmm::Alphabet alphabet_reduced;
  hmm::Alphabet alphabet_full;
  auto clustered_init = hmm::statically_initialized_hmm(
      reduced, hmm::ObservationEncoding::kContextSensitive, alphabet_reduced);
  auto full_init = hmm::statically_initialized_hmm(
      identity, hmm::ObservationEncoding::kContextSensitive, alphabet_full);
  const double ratio =
      static_cast<double>(clustered_init.model.num_states()) /
      static_cast<double>(full_init.model.num_states());
  std::cout << "Step 4 — HMM init: " << full_init.model.num_states()
            << " states unclustered vs " << clustered_init.model.num_states()
            << " clustered; estimated training-time reduction 1-(k/N)^2 = "
            << format_double((1.0 - ratio * ratio) * 100.0, 1) << "%\n";

  // Step 5: measure an actual training iteration on shared segments.
  const auto collection = workload::collect_traces(suite, 20, 17);
  auto segments_for = [&](hmm::Alphabet& alphabet) {
    trace::SegmentSet set;
    for (const auto& trace : collection.traces) {
      set.add_trace(trace::encode_trace(
          trace, analysis::CallFilter::kLibcalls,
          hmm::ObservationEncoding::kContextSensitive, alphabet));
    }
    auto segments = set.to_vector();
    if (segments.size() > 150) segments.resize(150);
    return segments;
  };
  hmm::TrainingOptions train_options;
  train_options.max_iterations = 2;
  train_options.min_improvement = -1.0;

  auto time_training = [&](hmm::Hmm model, hmm::Alphabet& alphabet) {
    const auto segments = segments_for(alphabet);
    Stopwatch watch;
    hmm::Trainer trainer(std::move(model), train_options);
    trainer.fit(segments);
    return watch.seconds();
  };
  const double full_time = time_training(full_init.model, alphabet_full);
  const double reduced_time =
      time_training(clustered_init.model, alphabet_reduced);
  std::cout << "Step 5 — measured: 2 Baum-Welch iterations took "
            << format_double(full_time * 1e3, 1) << " ms unclustered vs "
            << format_double(reduced_time * 1e3, 1)
            << " ms clustered (speedup "
            << format_double(full_time / std::max(reduced_time, 1e-9), 1)
            << "x)\n";
  return 0;
}
