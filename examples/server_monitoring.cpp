// Server monitoring scenario: deploy a CMarkov detector on the proftpd
// analogue, train it on normal FTP sessions, persist the model to disk,
// reload it (the production hand-off), and screen live traffic containing
// the OSVDB-69562 backdoor payloads of Table IV.
#include <iostream>

#include "src/attack/exploit_driver.hpp"
#include "src/core/model_io.hpp"
#include "src/util/strings.hpp"
#include "src/util/table_printer.hpp"
#include "src/workload/testcase_generator.hpp"

using namespace cmarkov;

int main() {
  const workload::ProgramSuite suite = workload::make_proftpd_suite();
  std::cout << "Monitoring target: " << suite.info().name << " — "
            << suite.info().description << "\n\n";

  // Offline phase: build from the binary's control flow, train on recorded
  // normal sessions.
  core::DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  config.training.max_iterations = 10;
  config.target_fp = 0.001;
  core::Detector detector = core::Detector::build(suite.module(), config);

  const auto training = workload::collect_traces(suite, 60, 1001);
  const auto report = detector.train(training.traces);
  std::cout << "Trained on " << training.traces.size()
            << " normal sessions (" << training.total_events
            << " call events), " << report.iterations
            << " iterations, threshold "
            << format_double(detector.threshold(), 2) << "\n";

  // Persist and reload — the model file is what a production sensor ships.
  const std::string model_path = "/tmp/cmarkov_proftpd.model";
  core::save_detector_file(model_path, detector);
  const core::Detector sensor = core::load_detector_file(model_path);
  std::cout << "Model persisted to " << model_path << " and reloaded.\n\n";

  // Live phase: screen a mix of fresh benign sessions and attack sessions.
  TablePrinter table({"Session", "Verdict", "Flagged segments",
                      "Min log-likelihood"});

  const auto benign = workload::collect_traces(suite, 8, 2002);
  std::size_t false_alarms = 0;
  for (std::size_t i = 0; i < benign.traces.size(); ++i) {
    const auto verdict = sensor.classify(benign.traces[i]);
    if (verdict.anomalous) ++false_alarms;
    table.add_row({"benign #" + std::to_string(i),
                   verdict.anomalous ? "ANOMALY" : "ok",
                   std::to_string(verdict.flagged_segments) + "/" +
                       std::to_string(verdict.total_segments),
                   format_double(verdict.min_log_likelihood, 1)});
  }

  auto payloads = attack::proftpd_backdoor_payloads();
  payloads.push_back(attack::proftpd_buffer_overflow_payload());
  attack::ExploitOptions exploit_options;
  exploit_options.traces_per_payload = 1;
  const auto attacks =
      attack::build_attack_traces(suite, payloads, 31337, exploit_options);
  std::size_t detected = 0;
  for (const auto& attack : attacks) {
    const auto verdict = sensor.classify(attack.trace);
    if (verdict.anomalous) ++detected;
    table.add_row({attack.payload_name,
                   verdict.anomalous ? "ANOMALY" : "ok",
                   std::to_string(verdict.flagged_segments) + "/" +
                       std::to_string(verdict.total_segments),
                   verdict.min_log_likelihood ==
                           -std::numeric_limits<double>::infinity()
                       ? "-inf (unknown context)"
                       : format_double(verdict.min_log_likelihood, 1)});
  }
  table.print();

  std::cout << "\nSummary: " << detected << "/" << attacks.size()
            << " attack sessions detected, " << false_alarms << "/"
            << benign.traces.size() << " benign sessions flagged.\n";
  return 0;
}
