// Minimal leveled logging to stderr. Benches and examples keep stdout clean
// for table output; diagnostics go through here.
//
// Line format: "[LEVEL <seconds> t<ordinal>] <message>". The timestamp is
// monotonic (steady-clock seconds since the logger first ran) and
// non-decreasing in output order; the ordinal is a small per-thread id
// assigned in order of each thread's first log line — both matter once the
// cmarkovd worker pool logs from many threads at once.
#pragma once

#include <sstream>
#include <string>

namespace cmarkov {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits a single log line (thread-safe: concurrent writers never
/// interleave within a line and timestamps stay ordered).
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Stream-style log statement builder; flushes on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace cmarkov
