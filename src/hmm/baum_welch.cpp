#include "src/hmm/baum_welch.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/hmm/forward_backward.hpp"
#include "src/obs/metrics_registry.hpp"
#include "src/obs/run_profile.hpp"
#include "src/util/logging.hpp"
#include "src/util/parallel.hpp"
#include "src/util/stopwatch.hpp"

namespace cmarkov::hmm {

namespace {

/// Merge slots of the parallel E-step. Fixed (never derived from the thread
/// count) so the accumulator merge order — and therefore every
/// floating-point sum — is the same no matter how many workers run.
constexpr std::size_t kMergeSlots = 16;

/// Sequences per work item of the parallel scoring pass.
constexpr std::size_t kScoreChunk = 64;

/// Per-sequence log-likelihoods with the impossible/empty penalty applied.
/// Scoring fans out over the pool; the mean is reduced in sequence order on
/// the calling thread, so the result is independent of the thread count.
double pooled_mean_log_likelihood(const Hmm& model,
                                  const HmmKernelCache& cache,
                                  const std::vector<ObservationSeq>& sequences,
                                  double impossible_penalty,
                                  WorkerPool& pool) {
  if (sequences.empty()) return 0.0;
  std::vector<double> per_sequence(sequences.size());
  pool.run(chunk_count(sequences.size(), kScoreChunk), [&](std::size_t c) {
    const ChunkRange range =
        chunk_range(sequences.size(), kScoreChunk, c);
    for (std::size_t s = range.begin; s < range.end; ++s) {
      if (sequences[s].empty()) {
        per_sequence[s] = impossible_penalty;
        continue;
      }
      const double ll =
          forward_scaled(model, sequences[s], cache).log_likelihood;
      per_sequence[s] = std::isinf(ll) ? impossible_penalty : ll;
    }
  });
  double total = 0.0;
  for (double ll : per_sequence) total += ll;
  return total / static_cast<double>(sequences.size());
}

struct Accumulators {
  Matrix transition_num;               // N x N
  std::vector<double> transition_den;  // N
  Matrix emission_num;                 // N x M
  std::vector<double> emission_den;    // N
  std::vector<double> initial;         // N

  Accumulators(std::size_t n, std::size_t m)
      : transition_num(n, n),
        transition_den(n, 0.0),
        emission_num(n, m),
        emission_den(n, 0.0),
        initial(n, 0.0) {}

  void reset() {
    for (std::size_t r = 0; r < transition_num.rows(); ++r) {
      auto row = transition_num.row(r);
      std::fill(row.begin(), row.end(), 0.0);
    }
    for (std::size_t r = 0; r < emission_num.rows(); ++r) {
      auto row = emission_num.row(r);
      std::fill(row.begin(), row.end(), 0.0);
    }
    std::fill(transition_den.begin(), transition_den.end(), 0.0);
    std::fill(emission_den.begin(), emission_den.end(), 0.0);
    std::fill(initial.begin(), initial.end(), 0.0);
  }

  void merge(const Accumulators& other) {
    const std::size_t n = transition_den.size();
    for (std::size_t i = 0; i < n; ++i) {
      auto dst = transition_num.row(i);
      const auto src = other.transition_num.row(i);
      for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += src[j];
      auto edst = emission_num.row(i);
      const auto esrc = other.emission_num.row(i);
      for (std::size_t k = 0; k < edst.size(); ++k) edst[k] += esrc[k];
      transition_den[i] += other.transition_den[i];
      emission_den[i] += other.emission_den[i];
      initial[i] += other.initial[i];
    }
  }
};

/// Accumulates expected counts for one sequence; returns false if the
/// sequence is empty or impossible under the current model. On success,
/// `log_likelihood` receives the forward log-likelihood computed along the
/// way (the quantity the trainer previously re-derived with a second full
/// forward sweep).
bool accumulate_sequence(const Hmm& model, const HmmKernelCache& cache,
                         const ObservationSeq& seq, Accumulators& acc,
                         double& log_likelihood) {
  if (seq.empty()) return false;
  const ForwardResult fwd = forward_scaled(model, seq, cache);
  if (fwd.impossible) return false;
  log_likelihood = fwd.log_likelihood;
  const Matrix beta = backward_scaled(model, seq, fwd.scales, cache);

  const std::size_t n = model.num_states();
  const std::size_t t_len = seq.size();

  // gamma(t, i) = alpha(t, i) * beta(t, i) * c_t (scaled quantities).
  auto gamma = [&](std::size_t t, std::size_t i) {
    return fwd.alpha(t, i) * beta(t, i) * fwd.scales[t];
  };

  for (std::size_t i = 0; i < n; ++i) acc.initial[i] += gamma(0, i);

  for (std::size_t t = 0; t + 1 < t_len; ++t) {
    const auto emission_col = cache.emission_t.row(seq[t + 1]);
    const auto next_beta = beta.row(t + 1);
    for (std::size_t i = 0; i < n; ++i) {
      const double alpha_ti = fwd.alpha(t, i);
      if (alpha_ti == 0.0) continue;
      const auto out_of_i = model.transition.row(i);
      auto num_row = acc.transition_num.row(i);
      for (std::size_t j = 0; j < n; ++j) {
        // xi(t, i, j): scaled alpha/beta make the normalizer 1.
        const double xi =
            alpha_ti * out_of_i[j] * emission_col[j] * next_beta[j];
        num_row[j] += xi;
      }
    }
  }
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      const double g = gamma(t, i);
      acc.emission_num(i, seq[t]) += g;
      acc.emission_den[i] += g;
      if (t + 1 < t_len) acc.transition_den[i] += g;
    }
  }
  return true;
}

void reestimate(Hmm& model, const Accumulators& acc, double pseudocount,
                std::size_t observed_sequences) {
  const std::size_t n = model.num_states();
  const std::size_t m = model.num_symbols();

  for (std::size_t i = 0; i < n; ++i) {
    const double den =
        acc.transition_den[i] + pseudocount * static_cast<double>(n);
    for (std::size_t j = 0; j < n; ++j) {
      model.transition(i, j) = (acc.transition_num(i, j) + pseudocount) / den;
    }
    const double eden =
        acc.emission_den[i] + pseudocount * static_cast<double>(m);
    for (std::size_t k = 0; k < m; ++k) {
      model.emission(i, k) = (acc.emission_num(i, k) + pseudocount) / eden;
    }
  }
  const double iden = static_cast<double>(observed_sequences) +
                      pseudocount * static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    model.initial[i] = (acc.initial[i] + pseudocount) / iden;
  }
}

}  // namespace

double mean_log_likelihood(const Hmm& model,
                           const std::vector<ObservationSeq>& sequences,
                           double impossible_penalty,
                           std::size_t num_threads) {
  if (sequences.empty()) return 0.0;
  const HmmKernelCache cache(model);
  WorkerPool pool(num_threads);
  return pooled_mean_log_likelihood(model, cache, sequences,
                                    impossible_penalty, pool);
}

TrainingReport baum_welch_train(Hmm& model,
                                const std::vector<ObservationSeq>& sequences,
                                const std::vector<ObservationSeq>& holdout,
                                const TrainingOptions& options) {
  model.validate();
  TrainingReport report;
  if (sequences.empty()) return report;

  const std::size_t count = sequences.size();
  const std::size_t n = model.num_states();
  const std::size_t m = model.num_symbols();

  WorkerPool pool(options.exec.threads);
  HmmKernelCache cache(model);

  // Resolve instruments once; hot-loop recording is pointer-guarded.
  obs::MetricsRegistry* metrics = options.exec.metrics;
  obs::RunProfile* profile = options.exec.profile;
  obs::Counter* iterations_total = nullptr;
  obs::Histogram* estep_seconds = nullptr;
  obs::Histogram* mstep_seconds = nullptr;
  obs::Gauge* ll_delta_gauge = nullptr;
  obs::Gauge* pool_utilization = nullptr;
  if (metrics != nullptr) {
    iterations_total = &metrics->counter("cmarkov_train_iterations_total");
    estep_seconds = &metrics->histogram("cmarkov_train_estep_seconds",
                                        obs::seconds_bucket_bounds());
    mstep_seconds = &metrics->histogram("cmarkov_train_mstep_seconds",
                                        obs::seconds_bucket_bounds());
    ll_delta_gauge = &metrics->gauge("cmarkov_train_ll_delta");
    pool_utilization =
        &metrics->gauge("cmarkov_train_pool_utilization_ratio");
  }

  // Train-set termination starts from -infinity: its score is the E-step's
  // mean log-likelihood of the model *entering* the iteration (free — see
  // below), and iteration 1's score already equals the initial model's
  // likelihood. Holdout termination keeps its pre-training baseline.
  double best_score =
      holdout.empty()
          ? -std::numeric_limits<double>::infinity()
          : pooled_mean_log_likelihood(model, cache, holdout,
                                       options.impossible_penalty, pool);
  std::size_t stall = 0;

  // Sequence s accumulates into slot s % slots; each slot is processed by
  // exactly one worker in ascending-s order and slots merge in index order,
  // making every accumulator sum independent of the thread count.
  const std::size_t slots = std::min(count, kMergeSlots);
  std::vector<Accumulators> partial(slots, Accumulators(n, m));
  Accumulators total(n, m);
  std::vector<double> per_sequence_ll(count);
  std::vector<unsigned char> accepted(count);

  double prev_train_mean = 0.0;
  bool have_prev_train_mean = false;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Closes on every exit path out of the iteration, breaks included.
    const obs::ScopedTimer iteration_span(profile, "train-iteration");
    Stopwatch stage_watch;
    pool.run(slots, [&](std::size_t slot) {
      Accumulators& acc = partial[slot];
      acc.reset();
      for (std::size_t s = slot; s < count; s += slots) {
        double ll = options.impossible_penalty;
        accepted[s] =
            accumulate_sequence(model, cache, sequences[s], acc, ll) ? 1 : 0;
        per_sequence_ll[s] = accepted[s] ? ll : options.impossible_penalty;
      }
    });
    if (pool_utilization != nullptr) {
      pool_utilization->set(pool.last_run_stats().utilization());
    }

    std::size_t observed = 0;
    double ll_sum = 0.0;
    for (std::size_t s = 0; s < count; ++s) {
      observed += accepted[s];
      ll_sum += per_sequence_ll[s];
    }
    report.skipped_sequences = count - observed;
    if (observed == 0) {
      // Model rejects everything; nothing to learn.
      const double estep_s = stage_watch.seconds();
      if (estep_seconds != nullptr) estep_seconds->record(estep_s);
      if (profile != nullptr) profile->record("e-step", estep_s);
      break;
    }

    total.reset();
    for (const Accumulators& acc : partial) total.merge(acc);

    // The E-step forward passes already produced every train-set
    // log-likelihood; reuse them instead of a second full scoring sweep.
    // (This is the likelihood of the model entering the iteration.)
    const double train_mean = ll_sum / static_cast<double>(count);
    {
      const double estep_s = stage_watch.seconds();
      if (estep_seconds != nullptr) estep_seconds->record(estep_s);
      if (profile != nullptr) profile->record("e-step", estep_s);
    }

    stage_watch.reset();
    reestimate(model, total, options.pseudocount, observed);
    cache.rebuild(model);
    {
      const double mstep_s = stage_watch.seconds();
      if (mstep_seconds != nullptr) mstep_seconds->record(mstep_s);
      if (profile != nullptr) profile->record("m-step", mstep_s);
    }
    report.iterations = iter + 1;
    report.train_log_likelihood.push_back(train_mean);
    if (iterations_total != nullptr) iterations_total->add(1);
    if (ll_delta_gauge != nullptr && have_prev_train_mean) {
      ll_delta_gauge->set(train_mean - prev_train_mean);
    }
    prev_train_mean = train_mean;
    have_prev_train_mean = true;

    stage_watch.reset();
    const double score =
        holdout.empty()
            ? train_mean
            : pooled_mean_log_likelihood(model, cache, holdout,
                                         options.impossible_penalty, pool);
    if (!holdout.empty()) {
      report.holdout_log_likelihood.push_back(score);
      if (profile != nullptr) {
        profile->record("holdout-score", stage_watch.seconds());
      }
    }

    if (score - best_score < options.min_improvement) {
      ++stall;
      if (stall > options.patience) {
        report.converged = true;
        break;
      }
    } else {
      stall = 0;
    }
    if (score > best_score) best_score = score;
  }
  if (options.exec.wants_log(LogLevel::kDebug)) {
    log_debug() << "baum-welch: " << report.iterations << " iteration(s)"
                << (report.converged ? ", converged" : "") << ", "
                << report.skipped_sequences << " skipped";
  }
  return report;
}

}  // namespace cmarkov::hmm
