#include "src/eval/comparison.hpp"

#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "src/hmm/trainer.hpp"
#include "src/trace/segmenter.hpp"
#include "src/util/stopwatch.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::eval {

const ModelEvaluation& SuiteComparison::model(ModelKind kind) const {
  for (const auto& m : models) {
    if (m.kind == kind) return m;
  }
  throw std::invalid_argument("SuiteComparison: model not evaluated: " +
                              model_kind_name(kind));
}

SuiteComparison compare_models(const workload::ProgramSuite& suite,
                               analysis::CallFilter filter,
                               const ComparisonOptions& options) {
  SuiteComparison result;
  result.program = suite.info().name;
  result.filter = filter;

  // Normal traces and the shared abnormal corpus (event level, so every
  // model judges identical behaviour).
  const workload::TraceCollection collection =
      workload::collect_traces(suite, options.test_cases, options.seed);
  result.traces = collection.traces.size();

  Rng rng(options.seed ^ 0xc0ffee);
  const auto legitimate =
      attack::legitimate_call_set(collection.traces, filter);
  const auto normal_event_segments = attack::event_segments(
      collection.traces, filter, options.segment_length);
  if (normal_event_segments.empty()) {
    throw std::invalid_argument("compare_models: traces too short for " +
                                analysis::call_filter_name(filter) +
                                " segments");
  }
  attack::AbnormalSOptions abnormal_options;
  abnormal_options.segment_length = options.segment_length;
  const auto abnormal_segments = attack::generate_abnormal_s(
      normal_event_segments, legitimate, options.abnormal_count, rng,
      abnormal_options);
  result.abnormal_segments = abnormal_segments.size();

  ModelBuildOptions build = options.build;
  build.filter = filter;
  build.exec.adopt_runtime(options.exec);
  hmm::TrainingOptions training = options.training;
  training.exec.adopt_runtime(options.exec);
  CrossValidationOptions cv = options.cv;
  cv.exec.adopt_runtime(options.exec);

  for (ModelKind kind : options.kinds) {
    Rng model_rng = rng.fork();
    BuiltModel model =
        build_model(kind, suite, collection.traces, build, model_rng);

    // Encode + dedup normal segments under this model's encoding.
    trace::SegmentOptions seg_options;
    seg_options.length = options.segment_length;
    seg_options.keep_short_tail = false;
    trace::SegmentSet unique_segments(seg_options);
    for (const auto& trace : collection.traces) {
      unique_segments.add_trace(model.encode(trace));
    }
    std::vector<hmm::ObservationSeq> segments = unique_segments.to_vector();
    if (kind == options.kinds.front()) {
      result.unique_normal_segments = segments.size();
    }

    std::vector<hmm::ObservationSeq> encoded_abnormal;
    encoded_abnormal.reserve(abnormal_segments.size());
    for (const auto& segment : abnormal_segments) {
      encoded_abnormal.push_back(model.encode(segment));
    }

    ModelEvaluation evaluation;
    evaluation.kind = kind;
    evaluation.num_states = model.num_states;
    evaluation.alphabet_size = model.alphabet.size();
    evaluation.static_calls = model.static_calls;

    Rng fold_rng = model_rng.fork();
    const auto folds = k_fold_splits(segments, fold_rng, cv);
    for (const auto& fold : folds) {
      Stopwatch watch;
      hmm::Trainer trainer(model.hmm, training);  // fresh from the init
      const hmm::TrainingReport report =
          trainer.fit(fold.train, fold.termination);
      evaluation.train_seconds += watch.seconds();
      evaluation.train_iterations += report.iterations;

      // Score through a fold-local model so unknown-symbol handling in
      // BuiltModel::score applies.
      BuiltModel fold_model = model;
      fold_model.hmm = trainer.model();
      for (const auto& segment : fold.test) {
        evaluation.scores.normal.push_back(fold_model.score(segment));
      }
      for (const auto& segment : encoded_abnormal) {
        evaluation.scores.abnormal.push_back(fold_model.score(segment));
      }
    }
    result.models.push_back(std::move(evaluation));
  }
  return result;
}

bool full_mode_enabled(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) return true;
  }
  const char* env = std::getenv("CMARKOV_FULL");
  return env != nullptr && std::strcmp(env, "1") == 0;
}

ComparisonOptions default_comparison_options(bool full) {
  ComparisonOptions options;
  // Training is bit-identical at any thread count (see baum_welch.hpp), so
  // the figure benches default to one worker per hardware core.
  options.exec.threads = 0;
  if (full) {
    options.test_cases = 200;
    options.abnormal_count = 4000;
    options.cv.folds = 10;
    // Paper-scale protocol, but the O(T S^2) training cost is bounded so a
    // full figure sweep finishes in tens of minutes rather than days.
    options.cv.max_train_segments = 1500;
    options.training.max_iterations = 20;
  } else {
    options.test_cases = 40;
    options.abnormal_count = 800;
    options.cv.folds = 3;
    options.cv.max_train_segments = 250;
    options.training.max_iterations = 8;
  }
  return options;
}

}  // namespace cmarkov::eval
