// Unit tests for the static HMM initializer (the STILO/CMarkov construction)
// and the observation alphabet.
#include <gtest/gtest.h>

#include "src/analysis/aggregation.hpp"
#include "src/cfg/cfg_builder.hpp"
#include "src/hmm/forward_backward.hpp"
#include "src/hmm/static_init.hpp"
#include "src/ir/module.hpp"
#include "src/reduction/cluster_calls.hpp"

namespace cmarkov::hmm {
namespace {

reduction::ReducedModel reduced_of(const char* source,
                                   bool context_sensitive = true) {
  const auto module =
      cfg::build_module_cfg(ir::ProgramModule::from_source("t", source));
  const auto graph = cfg::CallGraph::build(module);
  static const analysis::UniformBranchHeuristic heuristic;
  auto aggregated = analysis::aggregate_program(module, graph, heuristic);
  auto matrix = context_sensitive
                    ? std::move(aggregated.program_matrix)
                    : analysis::project_context_insensitive(
                          aggregated.program_matrix);
  return reduction::reconstruct_reduced_model(
      matrix, reduction::identity_clustering(matrix));
}

TEST(AlphabetTest, InternAndLookup) {
  Alphabet alphabet;
  const auto a = alphabet.intern("read@f");
  const auto b = alphabet.intern("write@f");
  EXPECT_EQ(alphabet.intern("read@f"), a);
  EXPECT_EQ(alphabet.size(), 2u);
  EXPECT_EQ(alphabet.name(a), "read@f");
  EXPECT_EQ(alphabet.find("write@f"), std::optional<std::size_t>(b));
  EXPECT_EQ(alphabet.find("missing"), std::nullopt);
  EXPECT_THROW(alphabet.name(99), std::out_of_range);
}

TEST(EncodingTest, ContextSensitiveVsFree) {
  EXPECT_EQ(encode_observation("read", "f",
                               ObservationEncoding::kContextSensitive),
            "read@f");
  EXPECT_EQ(encode_observation("read", "f",
                               ObservationEncoding::kContextFree),
            "read");
  EXPECT_EQ(encode_observation("read", "",
                               ObservationEncoding::kContextSensitive),
            "read");
}

TEST(EncodingTest, SymbolOverloadRequiresExternal) {
  const auto sym =
      analysis::CallSymbol::external(ir::CallKind::kSyscall, "read", "f");
  EXPECT_EQ(encode_observation(sym, ObservationEncoding::kContextSensitive),
            "read@f");
  EXPECT_THROW(encode_observation(analysis::CallSymbol::entry("f"),
                                  ObservationEncoding::kContextSensitive),
               std::invalid_argument);
}

TEST(StaticInitTest, ChainProgramYieldsNearDeterministicModel) {
  const auto reduced = reduced_of(R"(
fn main() { sys("a"); sys("b"); sys("c"); }
)");
  Alphabet alphabet;
  const StaticInitResult result = statically_initialized_hmm(
      reduced, ObservationEncoding::kContextSensitive, alphabet);
  const Hmm& model = result.model;
  EXPECT_EQ(model.num_states(), 3u);
  EXPECT_NO_THROW(model.validate());

  // The state for "a" starts with pi ~ 1 and transitions to "b".
  const auto a_obs = alphabet.find("a@main");
  ASSERT_TRUE(a_obs.has_value());
  std::size_t a_state = 0;
  double best = -1.0;
  for (std::size_t s = 0; s < 3; ++s) {
    if (model.emission(s, *a_obs) > best) {
      best = model.emission(s, *a_obs);
      a_state = s;
    }
  }
  EXPECT_GT(model.initial[a_state], 0.9);
  EXPECT_GT(best, 0.9);
}

TEST(StaticInitTest, LegitimateSequenceOutscoresShuffled) {
  const auto reduced = reduced_of(R"(
fn main() {
  sys("open");
  sys("read");
  sys("write");
  sys("close");
}
)");
  Alphabet alphabet;
  const StaticInitResult result = statically_initialized_hmm(
      reduced, ObservationEncoding::kContextSensitive, alphabet);
  auto id = [&](const char* name) {
    return alphabet.find(std::string(name) + "@main").value();
  };
  const ObservationSeq good = {id("open"), id("read"), id("write"),
                               id("close")};
  const ObservationSeq bad = {id("close"), id("write"), id("read"),
                              id("open")};
  EXPECT_GT(sequence_log_likelihood(result.model, good),
            sequence_log_likelihood(result.model, bad) + 5.0);
}

TEST(StaticInitTest, AlphabetUnionCoversPreInternedTraceSymbols) {
  const auto reduced = reduced_of("fn main() { sys(\"a\"); }");
  Alphabet alphabet;
  alphabet.intern("dynamic_only@main");  // a symbol only traces produced
  const StaticInitResult result = statically_initialized_hmm(
      reduced, ObservationEncoding::kContextSensitive, alphabet);
  EXPECT_EQ(result.model.num_symbols(), alphabet.size());
  // The dynamic-only symbol is emittable (smoothing floor), not zero.
  const auto id = alphabet.find("dynamic_only@main").value();
  EXPECT_GT(result.model.emission(0, id), 0.0);
  EXPECT_LT(result.model.emission(0, id), 0.01);
}

TEST(StaticInitTest, ContextFreeEncodingMergesContexts) {
  const auto reduced = reduced_of(R"(
fn f() { sys("read"); }
fn g() { sys("read"); }
fn main() { f(); g(); }
)",
                                  /*context_sensitive=*/false);
  Alphabet alphabet;
  const StaticInitResult result = statically_initialized_hmm(
      reduced, ObservationEncoding::kContextFree, alphabet);
  // One merged "read" observation.
  EXPECT_TRUE(alphabet.find("read").has_value());
  EXPECT_FALSE(alphabet.find("read@f").has_value());
  EXPECT_EQ(result.model.num_states(), 1u);
}

TEST(StaticInitTest, ClusteredStatesEmitAllMembers) {
  const auto module = cfg::build_module_cfg(ir::ProgramModule::from_source(
      "t", R"(
fn main() {
  if (input()) { sys("a1"); } else { sys("a2"); }
  sys("end");
}
)"));
  const auto graph = cfg::CallGraph::build(module);
  static const analysis::UniformBranchHeuristic heuristic;
  auto aggregated = analysis::aggregate_program(module, graph, heuristic);
  Rng rng(7);
  reduction::ClusteringOptions clustering;
  clustering.min_calls_for_reduction = 0;
  clustering.k = 2;
  const auto clusters = reduction::cluster_calls(aggregated.program_matrix,
                                                 rng, clustering);
  const auto reduced = reduction::reconstruct_reduced_model(
      aggregated.program_matrix, clusters);

  Alphabet alphabet;
  const StaticInitResult result = statically_initialized_hmm(
      reduced, ObservationEncoding::kContextSensitive, alphabet);
  EXPECT_EQ(result.model.num_states(), 2u);
  // Some state emits both a1@main and a2@main with substantial mass.
  const auto a1 = alphabet.find("a1@main").value();
  const auto a2 = alphabet.find("a2@main").value();
  bool merged_state_found = false;
  for (std::size_t s = 0; s < 2; ++s) {
    if (result.model.emission(s, a1) > 0.25 &&
        result.model.emission(s, a2) > 0.25) {
      merged_state_found = true;
    }
  }
  EXPECT_TRUE(merged_state_found);
}

TEST(StaticInitTest, StateLabelsDescribeMembers) {
  const auto reduced = reduced_of("fn main() { sys(\"a\"); sys(\"b\"); }");
  Alphabet alphabet;
  const StaticInitResult result = statically_initialized_hmm(
      reduced, ObservationEncoding::kContextSensitive, alphabet);
  ASSERT_EQ(result.state_labels.size(), 2u);
  EXPECT_TRUE(result.state_labels[0] == "a@main" ||
              result.state_labels[1] == "a@main");
}

TEST(StaticInitTest, RejectsEmptyModel) {
  const auto reduced = reduced_of("fn main() { var x = 1; }");
  Alphabet alphabet;
  EXPECT_THROW(
      statically_initialized_hmm(
          reduced, ObservationEncoding::kContextSensitive, alphabet),
      std::invalid_argument);
}

}  // namespace
}  // namespace cmarkov::hmm
