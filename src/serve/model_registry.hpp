// Thread-safe store of trained detectors, shared immutably across every
// session of the serving layer. Models are reference-counted: replacing a
// name (hot swap) leaves sessions opened against the old model untouched —
// they keep their shared_ptr until they close.
#pragma once

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/core/detector.hpp"

namespace cmarkov::serve {

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers (or hot-swaps) a trained detector under `name`. Throws
  /// std::invalid_argument for untrained detectors: the serving layer only
  /// scores, it never trains.
  void add(const std::string& name, core::Detector detector);
  void add_shared(const std::string& name,
                  std::shared_ptr<const core::Detector> detector);

  /// Loads a detector file (core::load_detector_file format). Malformed
  /// files throw std::runtime_error naming the offending content; untrained
  /// models throw std::invalid_argument.
  void load_file(const std::string& name, const std::string& path);

  /// Loads every "*.model" file in `dir` under its stem name; returns the
  /// number of models loaded.
  std::size_t load_directory(const std::string& dir);

  /// nullptr when the name is unknown.
  std::shared_ptr<const core::Detector> get(const std::string& name) const;

  /// Throws std::invalid_argument when the name is unknown.
  std::shared_ptr<const core::Detector> require(const std::string& name) const;

  std::vector<std::string> names() const;
  std::size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::shared_ptr<const core::Detector>> models_;
};

}  // namespace cmarkov::serve
