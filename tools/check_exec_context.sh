#!/usr/bin/env sh
# Guards the PR-4 API redesign: thread counts flow through
# util::ExecContext (options.exec.threads), never through raw
# `num_threads` *fields* on option structs. Function/constructor
# parameters named num_threads (WorkerPool, parallel_for, transform)
# remain legitimate, so the pattern matches only field declarations with
# a default initializer.
#
# Wired into CTest as `check_exec_context` (label: obs).
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

bad="$(grep -rnE '(std::size_t|size_t|int|unsigned)[[:space:]]+num_threads[[:space:]]*=[[:space:]]*[0-9]+[[:space:]]*;' \
  "$repo_root/src" --include='*.hpp' --include='*.h' || true)"

if [ -n "$bad" ]; then
  echo "error: raw num_threads field(s) found; route thread counts through" >&2
  echo "ExecContext (options.exec.threads) instead:" >&2
  echo "$bad" >&2
  exit 1
fi

# The deprecated PR-4 compatibility aliases were removed in PR 5; they must
# not come back in any form (declaration, definition, or call).
aliases="$(grep -rn 'set_num_threads' \
  "$repo_root/src" "$repo_root/tests" "$repo_root/tools" "$repo_root/bench" \
  --include='*.hpp' --include='*.h' --include='*.cpp' || true)"

if [ -n "$aliases" ]; then
  echo "error: set_num_threads is a removed deprecated alias; use" >&2
  echo "ExecContext (options.exec.threads) instead:" >&2
  echo "$aliases" >&2
  exit 1
fi
echo "ok: no raw num_threads fields in src/ headers, no set_num_threads aliases"
