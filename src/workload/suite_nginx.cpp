// nginx analogue: HTTP server event loop — accept, parse request, route to
// static-file / PHP-proxy / TLS handling, send response, access logging.
// Matches the paper's nginx workload: static pages, dynamic PHP pages
// backed by SQL, media types, and both http and https accesses.
#include "src/workload/program_suite.hpp"

namespace cmarkov::workload {

namespace {

const char* const kNginxSource = R"(
fn main() {
  startup();
  listen_sockets();
  var connections = input() % 10 + 2;
  while (connections > 0) {
    event_cycle();
    connections = connections - 1;
  }
  shutdown_server();
  sys("exit_group");
}

fn startup() {
  sys("brk");
  sys("brk");
  lib("setlocale");
  lib("getenv");
  sys("rt_sigaction");
  sys("rt_sigaction");
  sys("rt_sigaction");
  lib("malloc");
  parse_config();
  init_log();
}

fn parse_config() {
  var fd = sys("open");
  if (fd < 1) {
    lib("fprintf");
    return;
  }
  var directives = input() % 10 + 3;
  while (directives > 0) {
    sys("read");
    lib("strtok");
    var block = input() % 4;
    if (block == 0) {
      push_server_block();
    } else {
      lib("strcmp");
    }
    directives = directives - 1;
  }
  sys("close");
}

fn push_server_block() {
  lib("malloc");
  lib("memset");
  lib("strcpy");
}

fn init_log() {
  sys("open");
  sys("fstat");
}

fn listen_sockets() {
  sys("socket");
  sys("setsockopt");
  sys("bind");
  sys("listen");
  var with_tls = input() % 2;
  if (with_tls == 1) {
    sys("socket");
    sys("bind");
    sys("listen");
    load_certificates();
  }
}

fn load_certificates() {
  sys("open");
  sys("read");
  sys("close");
  lib("malloc");
  lib("memcpy");
}

fn event_cycle() {
  sys("epoll_wait");
  var fd = sys("accept");
  if (fd < 1) {
    return;
  }
  var tls = input() % 3;
  if (tls == 0) {
    tls_handshake();
  }
  var keepalive = input() % 3 + 1;
  while (keepalive > 0) {
    var ok = read_request();
    if (ok > 0) {
      handle_request();
    }
    keepalive = keepalive - 1;
  }
  sys("close");
}

fn tls_handshake() {
  sys("recv");
  lib("memcpy");
  sys("send");
  sys("recv");
  lib("memcmp");
}

fn read_request() {
  var n = sys("recv");
  if (n == 0) {
    return 0;
  }
  parse_request_line();
  parse_headers();
  return 1;
}

fn parse_request_line() {
  lib("memchr");
  lib("strncmp");
  lib("memcpy");
}

fn parse_headers() {
  var headers = input() % 6 + 1;
  while (headers > 0) {
    lib("memchr");
    lib("strncasecmp");
    headers = headers - 1;
  }
}

fn handle_request() {
  var route = find_location();
  var cached = check_cache();
  if (cached > 0) {
    serve_from_cache();
  } else {
    if (route == 0) {
      serve_static();
    } else {
      if (route == 1) {
        serve_php();
      } else {
        send_error_page();
      }
    }
  }
  write_access_log();
}

fn check_cache() {
  var enabled = input() % 3;
  if (enabled > 0) {
    return 0;
  }
  lib("memcmp");
  var r = sys("stat");
  if (r < 5) {
    return 1;
  }
  return 0;
}

fn serve_from_cache() {
  var fd = sys("open");
  if (fd < 1) {
    send_error_page();
    return;
  }
  send_headers();
  sys("sendfile");
  sys("close");
}

fn find_location() {
  var candidates = input() % 4 + 1;
  while (candidates > 0) {
    var r = lib("strncmp");
    if (r == 0) {
      return input() % 3;
    }
    candidates = candidates - 1;
  }
  return 2;
}

fn serve_static() {
  map_uri_to_path();
  var fd = sys("open");
  if (fd < 1) {
    send_error_page();
    return;
  }
  sys("fstat");
  var not_modified = check_conditional_headers();
  if (not_modified > 0) {
    send_headers();
    sys("close");
    return;
  }
  send_headers();
  var media = input() % 4;
  if (media == 0) {
    sys("sendfile");
  } else {
    if (media == 1) {
      send_gzip_encoded();
    } else {
      var chunks = input() % 6 + 1;
      while (chunks > 0) {
        sys("read");
        sys("send");
        chunks = chunks - 1;
      }
    }
  }
  sys("close");
}

fn check_conditional_headers() {
  var has_etag = input() % 3;
  if (has_etag == 0) {
    lib("strncasecmp");
    var match = lib("memcmp");
    if (match == 0) {
      return 1;
    }
  }
  return 0;
}

fn send_gzip_encoded() {
  lib("malloc");
  var chunks = input() % 5 + 1;
  while (chunks > 0) {
    sys("read");
    lib("crc32");
    lib("memcpy");
    sys("send");
    chunks = chunks - 1;
  }
  lib("free");
}

fn map_uri_to_path() {
  lib("strlen");
  lib("memcpy");
  lib("strcat");
}

fn serve_php() {
  var up = connect_upstream();
  if (up < 1) {
    send_error_page();
    return;
  }
  forward_request();
  var rows = input() % 4;
  if (rows > 0) {
    query_database(rows);
  }
  relay_response();
  sys("close");
}

fn connect_upstream() {
  sys("socket");
  var c = sys("connect");
  return c;
}

fn forward_request() {
  lib("sprintf");
  sys("send");
}

fn query_database(rows) {
  sys("send");
  while (rows > 0) {
    sys("recv");
    lib("memcpy");
    rows = rows - 1;
  }
}

fn relay_response() {
  send_headers();
  var chunks = input() % 5 + 1;
  while (chunks > 0) {
    sys("recv");
    sys("send");
    chunks = chunks - 1;
  }
}

fn send_headers() {
  lib("sprintf");
  lib("strcat");
  sys("send");
}

fn send_error_page() {
  lib("sprintf");
  sys("send");
}

fn write_access_log() {
  sys("time");
  lib("sprintf");
  sys("write");
}

fn shutdown_server() {
  sys("close");
  sys("close");
  lib("free");
  lib("free");
}
)";

}  // namespace

ProgramSuite make_nginx_suite() {
  SuiteInfo info;
  info.name = "nginx";
  info.description =
      "HTTP server: event loop, request parsing, static/PHP/TLS routes, "
      "upstream+SQL interaction, access log";
  info.paper_test_cases = 400;  // request workload, Section V-A
  InputSpec spec;
  spec.min_inputs = 16;
  spec.max_inputs = 96;
  spec.max_value = 99;
  return ProgramSuite(info, kNginxSource, spec);
}

}  // namespace cmarkov::workload
