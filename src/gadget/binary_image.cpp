#include "src/gadget/binary_image.hpp"

#include <map>
#include <stdexcept>

namespace cmarkov::gadget {

namespace {

Opcode pick_filler(Rng& rng, const ImageOptions& options) {
  static const Opcode kFillerOps[] = {
      Opcode::kArith, Opcode::kMov,  Opcode::kLoad,   Opcode::kStore,
      Opcode::kPush,  Opcode::kPop,  Opcode::kCall,   Opcode::kJump,
      Opcode::kBranch, Opcode::kNop,
  };
  if (options.filler_weights.size() != std::size(kFillerOps)) {
    throw std::invalid_argument("ImageOptions: need 10 filler weights");
  }
  return kFillerOps[rng.weighted_index(options.filler_weights)];
}

Instruction filler_instruction(std::uint64_t address, Rng& rng,
                               const ImageOptions& options) {
  Instruction instr;
  instr.address = address;
  if (rng.chance(options.stray_ret_rate)) {
    instr.op = Opcode::kRet;
  } else if (rng.chance(options.stray_syscall_rate)) {
    instr.op = Opcode::kSyscall;  // unintended decoding, name unknown
  } else {
    instr.op = pick_filler(rng, options);
  }
  return instr;
}

}  // namespace

BinaryImage BinaryImage::synthesize(const cfg::ModuleCfg& module,
                                    std::uint64_t seed,
                                    const ImageOptions& options) {
  BinaryImage image;
  image.name_ = module.program_name;
  Rng rng(seed ^ 0xb17a6e);

  for (const auto& fn : module.functions) {
    // Real syscall sites of this function, by address.
    std::map<std::uint64_t, std::string> sites;
    for (const auto& block : fn.blocks) {
      const auto* call = block.external_call();
      if (call != nullptr && call->kind == ir::CallKind::kSyscall) {
        sites.emplace(call->address, call->callee);
      }
    }

    const std::uint64_t stride = 4;  // matches LoweringOptions default
    const std::uint64_t end = std::max(fn.end_address, fn.base_address + stride);
    for (std::uint64_t addr = fn.base_address; addr < end; addr += stride) {
      auto site = sites.find(addr);
      if (site != sites.end()) {
        Instruction instr;
        instr.address = addr;
        instr.op = Opcode::kSyscall;
        instr.syscall_name = site->second;
        image.instructions_.push_back(std::move(instr));
      } else if (addr + stride >= end) {
        // Function epilogue.
        image.instructions_.push_back({addr, Opcode::kRet, {}});
        continue;
      } else {
        image.instructions_.push_back(filler_instruction(addr, rng, options));
      }
      // Misaligned decodings: each 4-byte slot offers 3 more positions a
      // ROP compiler can jump into, decoding to unintended instructions.
      for (std::uint64_t sub = 1; sub < stride; ++sub) {
        image.instructions_.push_back(
            filler_instruction(addr + sub, rng, options));
      }
    }
  }
  return image;
}

BinaryImage BinaryImage::synthesize_library(
    std::string name, std::size_t function_count,
    std::size_t instructions_per_function, std::uint64_t seed,
    const ImageOptions& options) {
  BinaryImage image;
  image.name_ = std::move(name);
  Rng rng(seed ^ 0x11bc);

  // Library syscall wrappers: a fraction of functions contain one genuine
  // syscall instruction (read/write/open wrappers etc.).
  static const char* const kWrapperNames[] = {
      "read", "write", "open", "close", "mmap",  "brk",
      "stat", "ioctl", "recv", "send",  "fcntl", "lseek",
  };

  std::uint64_t base = 0x7f0000000000ULL;
  for (std::size_t f = 0; f < function_count; ++f) {
    const bool is_wrapper = rng.chance(0.2);
    const std::size_t wrapper_slot =
        is_wrapper ? 1 + rng.index(instructions_per_function > 2
                                       ? instructions_per_function - 2
                                       : 1)
                   : 0;
    for (std::size_t i = 0; i < instructions_per_function; ++i) {
      const std::uint64_t addr = base + i * 4;
      if (is_wrapper && i == wrapper_slot) {
        Instruction instr;
        instr.address = addr;
        instr.op = Opcode::kSyscall;
        instr.syscall_name =
            kWrapperNames[rng.index(std::size(kWrapperNames))];
        image.instructions_.push_back(std::move(instr));
      } else if (i + 1 == instructions_per_function) {
        image.instructions_.push_back({addr, Opcode::kRet, {}});
      } else {
        image.instructions_.push_back(filler_instruction(addr, rng, options));
      }
    }
    base += instructions_per_function * 4 + 0x40;
  }
  return image;
}

}  // namespace cmarkov::gadget
