// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
// PCA over call-transition vectors only needs the spectrum of a symmetric
// covariance matrix, for which Jacobi is simple, robust and accurate.
#pragma once

#include <cstddef>
#include <vector>

#include "src/linalg/matrix.hpp"

namespace cmarkov {

/// Result of a symmetric eigendecomposition: values are sorted descending,
/// vectors[k] is the unit eigenvector for values[k].
struct EigenDecomposition {
  std::vector<double> values;
  std::vector<std::vector<double>> vectors;
};

/// Options for the Jacobi solver.
struct JacobiOptions {
  /// Stop when the off-diagonal Frobenius mass falls below this.
  double tolerance = 1e-12;
  /// Safety bound on full sweeps.
  std::size_t max_sweeps = 100;
};

/// Decomposes a symmetric matrix. Throws std::invalid_argument when the
/// input is not square or not symmetric (within 1e-9 absolute).
EigenDecomposition jacobi_eigen(const Matrix& symmetric,
                                const JacobiOptions& options = {});

}  // namespace cmarkov
