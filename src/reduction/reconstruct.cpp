#include "src/reduction/reconstruct.hpp"

#include <map>
#include <stdexcept>

namespace cmarkov::reduction {

ReducedModel reconstruct_reduced_model(
    const analysis::CallTransitionMatrix& matrix,
    const CallClustering& clustering) {
  using analysis::CallSymbol;

  const std::size_t k = clustering.clusters.size();
  ReducedModel model;
  model.members.resize(k);
  model.member_weights.resize(k);
  model.transitions = Matrix(k, k);
  model.entry_mass.assign(k, 0.0);
  model.exit_mass.assign(k, 0.0);

  // Map matrix symbol index -> cluster id (externals only).
  std::map<std::size_t, std::size_t> cluster_of;
  for (std::size_t i = 0; i < clustering.calls.size(); ++i) {
    cluster_of.emplace(matrix.index_of(clustering.calls[i]),
                       clustering.assignment[i]);
  }

  std::size_t entry_idx = static_cast<std::size_t>(-1);
  std::size_t exit_idx = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    switch (matrix.symbol(i).kind) {
      case CallSymbol::Kind::kEntry:
        entry_idx = i;
        break;
      case CallSymbol::Kind::kExit:
        exit_idx = i;
        break;
      case CallSymbol::Kind::kInternal:
        throw std::invalid_argument(
            "reconstruct_reduced_model: matrix has unresolved internal "
            "symbol " +
            matrix.symbol(i).to_string());
      case CallSymbol::Kind::kExternal:
        break;
    }
  }

  // Member lists and emission weights (incoming mass per member).
  for (std::size_t c = 0; c < k; ++c) {
    double total = 0.0;
    for (std::size_t member : clustering.clusters[c]) {
      const CallSymbol& sym = clustering.calls[member];
      model.members[c].push_back(sym);
      const double mass = matrix.col_sum(matrix.index_of(sym));
      model.member_weights[c].push_back(mass);
      total += mass;
    }
    if (total > 0.0) {
      for (double& w : model.member_weights[c]) w /= total;
    } else {
      const double uniform =
          1.0 / static_cast<double>(model.member_weights[c].size());
      for (double& w : model.member_weights[c]) w = uniform;
    }
  }

  // Fold transition cells through the clustering.
  for (std::size_t from = 0; from < matrix.size(); ++from) {
    const bool from_entry = from == entry_idx;
    const auto from_cluster = cluster_of.find(from);
    for (const auto& [to, p] : matrix.row(from)) {
      const bool to_exit = to == exit_idx;
      const auto to_cluster = cluster_of.find(to);
      if (from_entry && to_cluster != cluster_of.end()) {
        model.entry_mass[to_cluster->second] += p;
      } else if (from_cluster != cluster_of.end() && to_exit) {
        model.exit_mass[from_cluster->second] += p;
      } else if (from_cluster != cluster_of.end() &&
                 to_cluster != cluster_of.end()) {
        model.transitions(from_cluster->second, to_cluster->second) += p;
      }
      // ENTRY -> EXIT (silent program) carries no state information.
    }
  }
  return model;
}

}  // namespace cmarkov::reduction
