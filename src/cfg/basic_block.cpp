#include "src/cfg/basic_block.hpp"

namespace cmarkov::cfg {

std::vector<BlockId> BasicBlock::successors() const {
  return std::visit(
      [](const auto& term) -> std::vector<BlockId> {
        using T = std::decay_t<decltype(term)>;
        if constexpr (std::is_same_v<T, JumpTerm>) {
          return {term.target};
        } else if constexpr (std::is_same_v<T, BranchTerm>) {
          return {term.if_true, term.if_false};
        } else {
          return {};
        }
      },
      terminator);
}

const ExternalCallInstr* BasicBlock::external_call() const {
  for (const auto& instr : instructions) {
    if (const auto* call = std::get_if<ExternalCallInstr>(&instr)) {
      return call;
    }
  }
  return nullptr;
}

const InternalCallInstr* BasicBlock::internal_call() const {
  for (const auto& instr : instructions) {
    if (const auto* call = std::get_if<InternalCallInstr>(&instr)) {
      return call;
    }
  }
  return nullptr;
}

bool BasicBlock::makes_call() const {
  return external_call() != nullptr || internal_call() != nullptr;
}

int instr_line(const Instr& instr) {
  return std::visit([](const auto& i) { return i.line; }, instr);
}

}  // namespace cmarkov::cfg
