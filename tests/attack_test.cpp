// Unit tests for attack synthesis: Abnormal-S segments, ROP chains, the
// Table IV payload library and the exploit driver.
#include <gtest/gtest.h>

#include "src/attack/exploit_driver.hpp"
#include "src/trace/symbolizer.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::attack {
namespace {

workload::TraceCollection gzip_traces() {
  static const workload::ProgramSuite suite = workload::make_gzip_suite();
  return workload::collect_traces(suite, 12, 3);
}

TEST(LegitimateCallSetTest, DistinctPairsOnly) {
  const auto collection = gzip_traces();
  const auto legit = legitimate_call_set(collection.traces,
                                         analysis::CallFilter::kSyscalls);
  EXPECT_GT(legit.size(), 5u);
  // Sorted unique.
  for (std::size_t i = 1; i < legit.size(); ++i) {
    EXPECT_LT(legit[i - 1], legit[i]);
  }
  for (const auto& call : legit) {
    EXPECT_EQ(call.kind, ir::CallKind::kSyscall);
    EXPECT_FALSE(call.caller.empty());
  }
}

TEST(EventSegmentsTest, FixedLengthFilteredWindows) {
  const auto collection = gzip_traces();
  const auto segments =
      event_segments(collection.traces, analysis::CallFilter::kLibcalls, 15);
  ASSERT_FALSE(segments.empty());
  for (const auto& segment : segments) {
    EXPECT_EQ(segment.size(), 15u);
    for (const auto& event : segment) {
      EXPECT_EQ(event.kind, ir::CallKind::kLibcall);
    }
  }
}

TEST(AbnormalSTest, ReplacesTailWithLegitimateCalls) {
  const auto collection = gzip_traces();
  const auto filter = analysis::CallFilter::kSyscalls;
  const auto legit = legitimate_call_set(collection.traces, filter);
  const auto normal = event_segments(collection.traces, filter, 15);
  Rng rng(1);
  const auto abnormal = generate_abnormal_s(normal, legit, 50, rng);
  ASSERT_EQ(abnormal.size(), 50u);

  const std::set<LegitimateCall> known(legit.begin(), legit.end());
  for (const auto& segment : abnormal) {
    EXPECT_EQ(segment.size(), 15u);
    // Every call in the segment (including the mutated tail) is from the
    // legitimate call set — that is what makes Abnormal-S a rigorous test.
    for (const auto& event : segment) {
      EXPECT_TRUE(known.contains({event.name, event.caller, event.kind}));
    }
  }
}

TEST(AbnormalSTest, SegmentsDifferFromSources) {
  const auto collection = gzip_traces();
  const auto filter = analysis::CallFilter::kSyscalls;
  const auto legit = legitimate_call_set(collection.traces, filter);
  const auto normal = event_segments(collection.traces, filter, 15);
  std::set<std::vector<std::pair<std::string, std::string>>> normal_keys;
  for (const auto& segment : normal) {
    std::vector<std::pair<std::string, std::string>> key;
    for (const auto& e : segment) key.emplace_back(e.name, e.caller);
    normal_keys.insert(std::move(key));
  }
  Rng rng(2);
  const auto abnormal = generate_abnormal_s(normal, legit, 100, rng);
  std::size_t coincide = 0;
  for (const auto& segment : abnormal) {
    std::vector<std::pair<std::string, std::string>> key;
    for (const auto& e : segment) key.emplace_back(e.name, e.caller);
    if (normal_keys.contains(key)) ++coincide;
  }
  // Random tails occasionally recreate normal behaviour, but rarely.
  EXPECT_LT(coincide, 20u);
}

TEST(AbnormalSTest, RejectsDegenerateInputs) {
  Rng rng(3);
  EXPECT_THROW(generate_abnormal_s({}, {{"a", "f"}}, 1, rng),
               std::invalid_argument);
  const std::vector<EventSegment> normal = {
      {{ir::CallKind::kSyscall, "a", 0, "f"}}};
  EXPECT_THROW(generate_abnormal_s(normal, {}, 1, rng),
               std::invalid_argument);
  AbnormalSOptions options;
  options.tail_length = 0;
  EXPECT_THROW(
      generate_abnormal_s(normal, {{"a", "f"}}, 1, rng, options),
      std::invalid_argument);
}

TEST(RopChainTest, PaperSegmentsHaveDocumentedShape) {
  EXPECT_EQ(gzip_rop_q1().size(), 15u);
  EXPECT_EQ(gzip_rop_q1().front().second, "uname");
  EXPECT_EQ(gzip_rop_q1().back().second, "chmod");
  EXPECT_EQ(gzip_rop_q2().size(), 18u);
  EXPECT_EQ(syscall_chain_payload().back().second, "execve");
}

TEST(RopChainTest, GadgetAddressesSymbolizeToWrongOrMissingContext) {
  const workload::ProgramSuite suite = workload::make_gzip_suite();
  Rng rng(4);
  trace::Trace rop = build_rop_trace(suite.cfg(), gzip_rop_q1(), rng);
  const trace::Symbolizer symbolizer(suite.cfg());
  symbolizer.symbolize(rop);
  ASSERT_EQ(rop.events.size(), 15u);
  std::size_t unknown = 0;
  for (const auto& event : rop.events) {
    EXPECT_FALSE(event.caller.empty());
    if (event.caller == trace::kUnknownCaller) ++unknown;
  }
  // With 75% mapped gadgets, some events resolve to functions (wrong
  // context) and some fall outside the image (missing context).
  EXPECT_GT(unknown, 0u);
  EXPECT_LT(unknown, rop.events.size());
}

TEST(PayloadLibraryTest, TableFourRoster) {
  EXPECT_EQ(gzip_payloads().size(), 2u);
  EXPECT_EQ(proftpd_backdoor_payloads().size(), 7u);
  const auto all = all_table4_payloads();
  EXPECT_EQ(all.size(), 10u);
  for (const auto& payload : all) {
    EXPECT_FALSE(payload.calls.empty()) << payload.name;
    EXPECT_FALSE(payload.vulnerability.empty());
  }
  // Every backdoor payload ends in command execution.
  for (const auto& payload : proftpd_backdoor_payloads()) {
    const auto& last = payload.calls.back().second;
    EXPECT_TRUE(last == "execve" || last == "write") << payload.name;
  }
}

TEST(ExploitDriverTest, AttackTracesSpliceBenignPrefixAndPayload) {
  const workload::ProgramSuite suite = workload::make_proftpd_suite();
  ExploitOptions options;
  options.traces_per_payload = 2;
  const auto attacks = build_attack_traces(
      suite, proftpd_backdoor_payloads(), 9, options);
  EXPECT_EQ(attacks.size(), 14u);
  for (const auto& attack : attacks) {
    EXPECT_GT(attack.payload_start, 0u);
    EXPECT_GT(attack.trace.events.size(), attack.payload_start);
    // Everything is symbolized.
    for (const auto& event : attack.trace.events) {
      EXPECT_FALSE(event.caller.empty());
    }
  }
}

TEST(ExploitDriverTest, AbnormalContextFractionInPaperRange) {
  const workload::ProgramSuite suite = workload::make_proftpd_suite();
  const auto collection = workload::collect_traces(suite, 20, 5);
  const auto legit = legitimate_call_set(collection.traces,
                                         analysis::CallFilter::kSyscalls);
  const auto attacks =
      build_attack_traces(suite, proftpd_backdoor_payloads(), 10);
  double total = 0.0;
  for (const auto& attack : attacks) {
    const double fraction = abnormal_context_fraction(
        attack, legit, analysis::CallFilter::kSyscalls);
    EXPECT_GE(fraction, 0.0);
    EXPECT_LE(fraction, 1.0);
    total += fraction;
  }
  // The paper reports 30-90% abnormal-context calls in exploit traces.
  const double mean = total / static_cast<double>(attacks.size());
  EXPECT_GT(mean, 0.3);
}

}  // namespace
}  // namespace cmarkov::attack
