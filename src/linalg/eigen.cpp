#include "src/linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace cmarkov {

namespace {

double off_diagonal_mass(const Matrix& m) {
  double total = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (i != j) total += m(i, j) * m(i, j);
    }
  }
  return total;
}

}  // namespace

EigenDecomposition jacobi_eigen(const Matrix& symmetric,
                                const JacobiOptions& options) {
  const std::size_t n = symmetric.rows();
  if (n == 0 || symmetric.cols() != n) {
    throw std::invalid_argument("jacobi_eigen: matrix must be square");
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (std::abs(symmetric(i, j) - symmetric(j, i)) > 1e-9) {
        throw std::invalid_argument("jacobi_eigen: matrix not symmetric");
      }
    }
  }

  Matrix a = symmetric;
  Matrix v = Matrix::identity(n);

  for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    if (off_diagonal_mass(a) < options.tolerance) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Classic Jacobi rotation angle selection.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t lhs, std::size_t rhs) {
              return a(lhs, lhs) > a(rhs, rhs);
            });

  EigenDecomposition out;
  out.values.reserve(n);
  out.vectors.reserve(n);
  for (std::size_t k : order) {
    out.values.push_back(a(k, k));
    out.vectors.push_back(v.col(k));
  }
  return out;
}

}  // namespace cmarkov
