// Fixed-size worker pool and deterministic data-parallel helpers.
//
// This generalizes the sharded worker-loop pattern of serve/session_manager
// into a reusable primitive for compute fan-out (Baum-Welch E-step, k-means
// assignment, PCA covariance accumulation). Two properties matter here:
//
//   1. Work items are claimed dynamically, but every item is executed
//      exactly once, so any computation whose items write disjoint outputs
//      is bit-identical run-to-run and across thread counts.
//   2. For reductions, callers split the input into *fixed-size* chunks
//      (chunk_count/chunk_range below, independent of the thread count),
//      compute one partial result per chunk, and merge the partials in
//      chunk-index order on the calling thread. Floating-point sums then
//      have one canonical association regardless of how many workers ran.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cmarkov {

/// Maps an options-level `num_threads` value to a concrete worker count:
/// 0 means "one per hardware core" (at least 1), anything else is itself.
std::size_t resolve_num_threads(std::size_t requested);

/// Utilization accounting for the most recent WorkerPool::run(): wall time
/// of the run and the summed per-worker time spent claiming/executing
/// items. Diagnostic (feeds the cmarkov_*_pool_utilization_ratio gauges) —
/// a worker that re-checks for work just after the run completes may land
/// its last few microseconds in the next run's accumulator.
struct PoolRunStats {
  double wall_seconds = 0.0;
  double busy_seconds = 0.0;
  std::size_t threads = 1;
  /// busy / (wall * threads), clamped to [0, 1]; 1.0 for an inline run.
  double utilization() const {
    const double capacity = wall_seconds * static_cast<double>(threads);
    if (capacity <= 0.0) return 1.0;
    const double ratio = busy_seconds / capacity;
    return ratio > 1.0 ? 1.0 : ratio;
  }
};

/// A fixed set of worker threads executing indexed work items.
///
/// run(n, fn) invokes fn(i) exactly once for every i in [0, n); the calling
/// thread participates, so WorkerPool(1) spawns no threads and runs inline.
/// Items are claimed dynamically (a slow item does not idle other workers).
/// If items throw, the exception with the lowest item index is rethrown
/// after all claimed items finish. run() must not be called concurrently or
/// reentered from within an item.
class WorkerPool {
 public:
  /// `num_threads` as in resolve_num_threads; the pool spawns one fewer
  /// thread than that since the caller of run() acts as a worker.
  explicit WorkerPool(std::size_t num_threads = 0);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total workers (spawned threads + the calling thread).
  std::size_t num_threads() const { return num_threads_; }

  void run(std::size_t num_items, const std::function<void(std::size_t)>& fn);

  /// Stats for the most recent completed run() (see PoolRunStats). Call
  /// from the thread that called run().
  PoolRunStats last_run_stats() const;

 private:
  void worker_loop();
  /// Claims and executes items of generation `gen` until none remain.
  void drain(std::uint64_t gen);

  std::size_t num_threads_;
  std::vector<std::thread> threads_;

  mutable std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t num_items_ = 0;
  std::size_t next_index_ = 0;
  std::size_t completed_ = 0;
  std::exception_ptr first_error_;
  std::size_t first_error_index_ = 0;
  double run_wall_seconds_ = 0.0;   // guarded by mu_
  double run_busy_seconds_ = 0.0;   // guarded by mu_
  std::size_t run_threads_ = 1;     // guarded by mu_
};

/// One-shot convenience: fn(i) for every i in [0, count) on a transient
/// pool. Runs inline when num_threads resolves to 1 or count < 2.
void parallel_for(std::size_t num_threads, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// Number of fixed-size chunks covering `count` items. Chunk geometry
/// depends only on (count, chunk_size) — never on the thread count — which
/// is what makes per-chunk partial reductions merge deterministically.
std::size_t chunk_count(std::size_t count, std::size_t chunk_size);

struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Half-open item range of chunk `chunk_index`.
ChunkRange chunk_range(std::size_t count, std::size_t chunk_size,
                       std::size_t chunk_index);

}  // namespace cmarkov
