#include "src/util/stopwatch.hpp"

namespace cmarkov {

double Stopwatch::seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

void PhaseTimer::add(const std::string& phase, double seconds) {
  totals_[phase] += seconds;
  counts_[phase] += 1;
}

double PhaseTimer::total(const std::string& phase) const {
  auto it = totals_.find(phase);
  return it == totals_.end() ? 0.0 : it->second;
}

std::uint64_t PhaseTimer::count(const std::string& phase) const {
  auto it = counts_.find(phase);
  return it == counts_.end() ? 0 : it->second;
}

double PhaseTimer::mean(const std::string& phase) const {
  const auto n = count(phase);
  return n == 0 ? 0.0 : total(phase) / static_cast<double>(n);
}

}  // namespace cmarkov
