#include "src/serve/model_registry.hpp"

#include <filesystem>
#include <mutex>
#include <stdexcept>

#include "src/core/model_io.hpp"
#include "src/util/logging.hpp"

namespace cmarkov::serve {

void ModelRegistry::add(const std::string& name, core::Detector detector) {
  add_shared(name,
             std::make_shared<const core::Detector>(std::move(detector)));
}

void ModelRegistry::add_shared(
    const std::string& name,
    std::shared_ptr<const core::Detector> detector) {
  if (!detector) {
    throw std::invalid_argument("ModelRegistry: null detector for '" + name +
                                "'");
  }
  if (!detector->trained()) {
    throw std::invalid_argument("ModelRegistry: detector '" + name +
                                "' is not trained");
  }
  const std::unique_lock lock(mu_);
  models_[name] = std::move(detector);
}

void ModelRegistry::load_file(const std::string& name,
                              const std::string& path) {
  add(name, core::load_detector_file(path));
  log_info() << "registry: loaded model '" << name << "' from " << path;
}

std::size_t ModelRegistry::load_directory(const std::string& dir) {
  std::size_t loaded = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".model") {
      continue;
    }
    load_file(entry.path().stem().string(), entry.path().string());
    ++loaded;
  }
  return loaded;
}

std::shared_ptr<const core::Detector> ModelRegistry::get(
    const std::string& name) const {
  const std::shared_lock lock(mu_);
  const auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

std::shared_ptr<const core::Detector> ModelRegistry::require(
    const std::string& name) const {
  auto detector = get(name);
  if (!detector) {
    throw std::invalid_argument("ModelRegistry: no model named '" + name +
                                "'");
  }
  return detector;
}

std::vector<std::string> ModelRegistry::names() const {
  const std::shared_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, detector] : models_) out.push_back(name);
  return out;
}

std::size_t ModelRegistry::size() const {
  const std::shared_lock lock(mu_);
  return models_.size();
}

}  // namespace cmarkov::serve
