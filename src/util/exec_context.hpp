// ExecContext — the one execution-environment knob bag threaded through
// every layer's options struct (PR 4 API redesign). It replaces the eight
// duplicated per-struct `num_threads` fields PR 2 left behind and carries
// the observability sinks (MetricsRegistry, RunProfile) plus a component
// RNG seed and log-level hint.
//
// Ownership: the pointers are non-owning. Callers keep the registry and
// profile alive for as long as any object holding the context (e.g. a
// Detector retaining its DetectorConfig) may run.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/util/logging.hpp"

namespace cmarkov::obs {
class MetricsRegistry;
class RunProfile;
}  // namespace cmarkov::obs

namespace cmarkov {

struct ExecContext {
  /// Worker threads for the component (0 = one per hardware core).
  /// Instrumented components keep the PR 2 guarantee: results are
  /// bit-identical at any thread count.
  std::size_t threads = 1;
  /// RNG seed for components without an explicit Rng& parameter (today:
  /// PCA's orthogonal-iteration start basis). Deliberately NOT copied by
  /// adopt_runtime() — each component keeps its own default.
  std::uint64_t seed = 0;
  /// Metrics sink; null disables metric recording entirely.
  obs::MetricsRegistry* metrics = nullptr;
  /// Stage profiler; null disables span recording. A RunProfile is driven
  /// by the orchestrating thread only (it is not thread-safe).
  obs::RunProfile* profile = nullptr;
  /// Minimum severity the component should emit through the global logger.
  LogLevel log_level = LogLevel::kWarn;

  /// True when instrumented code should emit a log line at `level`.
  bool wants_log(LogLevel level) const { return level >= log_level; }

  /// Copies the runtime facilities (threads, sinks, log level) from the
  /// enclosing component's context while keeping this context's own seed —
  /// the generalization of PR 2's "the outermost num_threads is
  /// authoritative" propagation.
  void adopt_runtime(const ExecContext& parent) {
    threads = parent.threads;
    metrics = parent.metrics;
    profile = parent.profile;
    log_level = parent.log_level;
  }
};

}  // namespace cmarkov
