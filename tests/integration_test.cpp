// Integration tests: the full paper pipeline — program analysis, model
// building, training, comparison of the four models, and exploit detection
// — exercised end to end on real suites.
#include <gtest/gtest.h>

#include <cmath>

#include "src/attack/exploit_driver.hpp"
#include "src/core/detector.hpp"
#include "src/core/pipeline.hpp"
#include "src/eval/comparison.hpp"
#include "src/hmm/forward_backward.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov {
namespace {

eval::ComparisonOptions quick_options() {
  eval::ComparisonOptions options;
  options.test_cases = 25;
  options.abnormal_count = 300;
  options.cv.folds = 2;
  options.cv.max_train_segments = 200;
  options.training.max_iterations = 6;
  options.seed = 3;
  return options;
}

TEST(IntegrationTest, StaticPipelineOnEverySuiteAndFilter) {
  for (const auto& name : workload::all_suite_names()) {
    const workload::ProgramSuite suite = workload::make_suite(name);
    for (const auto filter :
         {analysis::CallFilter::kSyscalls, analysis::CallFilter::kLibcalls}) {
      core::PipelineConfig config;
      config.filter = filter;
      Rng rng(1);
      const auto result =
          core::run_static_pipeline(suite.module(), config, rng);
      EXPECT_GT(result.distinct_calls, 0u) << name;
      EXPECT_NO_THROW(result.init.model.validate()) << name;
      // Phase timings recorded for Table V.
      EXPECT_GT(result.timings.total("cfg"), 0.0);
      EXPECT_GT(result.timings.total("probability"), 0.0);
      EXPECT_GT(result.timings.total("aggregation"), 0.0);
    }
  }
}

TEST(IntegrationTest, StaticModelScoresLegitimateTracesBeforeTraining) {
  // The statically initialized model must already assign finite likelihood
  // to most dynamically observed behaviour — the core STILO/CMarkov claim
  // that static analysis covers paths training data misses.
  const workload::ProgramSuite suite = workload::make_grep_suite();
  core::PipelineConfig config;
  config.filter = analysis::CallFilter::kSyscalls;
  Rng rng(2);
  auto pipeline = core::run_static_pipeline(suite.module(), config, rng);

  const auto collection = workload::collect_traces(suite, 30, 4);
  std::size_t finite = 0;
  std::size_t total = 0;
  for (const auto& trace : collection.traces) {
    const auto encoded = trace::encode_trace_frozen(
        trace, config.filter, hmm::ObservationEncoding::kContextSensitive,
        pipeline.alphabet, pipeline.alphabet.size());
    for (std::size_t start = 0; start + 15 <= encoded.size(); start += 15) {
      hmm::ObservationSeq segment(encoded.begin() + start,
                                  encoded.begin() + start + 15);
      bool in_alphabet = true;
      for (auto id : segment) {
        in_alphabet = in_alphabet && id < pipeline.alphabet.size();
      }
      ++total;
      if (in_alphabet &&
          std::isfinite(
              hmm::sequence_log_likelihood(pipeline.init.model, segment))) {
        ++finite;
      }
    }
  }
  ASSERT_GT(total, 20u);
  EXPECT_GT(static_cast<double>(finite) / static_cast<double>(total), 0.9);
}

TEST(IntegrationTest, FourModelComparisonReproducesPaperOrdering) {
  const workload::ProgramSuite suite = workload::make_vim_suite();
  const auto comparison = eval::compare_models(
      suite, analysis::CallFilter::kLibcalls, quick_options());
  ASSERT_EQ(comparison.models.size(), 4u);

  const double cmarkov =
      eval::fn_at_fp(comparison.model(eval::ModelKind::kCMarkov).scores, 0.05);
  const double stilo =
      eval::fn_at_fp(comparison.model(eval::ModelKind::kStilo).scores, 0.05);
  const double basic = eval::fn_at_fp(
      comparison.model(eval::ModelKind::kRegularBasic).scores, 0.05);

  // Headline result on libcalls: CMarkov dominates the context-free static
  // model, and both dominate the random baseline.
  EXPECT_LE(cmarkov, stilo + 1e-9);
  EXPECT_LT(cmarkov, basic);
  EXPECT_LT(stilo, basic);
}

TEST(IntegrationTest, ContextSensitiveAlphabetIsLargerOnLibcalls) {
  const workload::ProgramSuite suite = workload::make_bash_suite();
  const auto comparison = eval::compare_models(
      suite, analysis::CallFilter::kLibcalls, quick_options());
  const auto& cmarkov = comparison.model(eval::ModelKind::kCMarkov);
  const auto& stilo = comparison.model(eval::ModelKind::kStilo);
  // The paper attributes the libcall gap to context multiplying the
  // distinct-call set (bash: 1366 context-sensitive states).
  EXPECT_GT(cmarkov.alphabet_size, stilo.alphabet_size);
}

TEST(IntegrationTest, DetectorCatchesAllTable4PayloadsOnProftpd) {
  const workload::ProgramSuite suite = workload::make_proftpd_suite();
  core::DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  config.training.max_iterations = 6;
  core::Detector detector = core::Detector::build(suite.module(), config);
  const auto collection = workload::collect_traces(suite, 30, 8);
  detector.train(collection.traces);

  const auto payloads = attack::proftpd_backdoor_payloads();
  const auto attacks = attack::build_attack_traces(suite, payloads, 17);
  std::size_t detected = 0;
  for (const auto& attack : attacks) {
    if (detector.classify(attack.trace).anomalous) ++detected;
  }
  EXPECT_EQ(detected, attacks.size());
}

TEST(IntegrationTest, TrainedModelKeepsSegmentFpNearTarget) {
  const workload::ProgramSuite suite = workload::make_sed_suite();
  core::DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kLibcalls;
  config.training.max_iterations = 8;
  config.target_fp = 0.02;
  core::Detector detector = core::Detector::build(suite.module(), config);
  detector.train(workload::collect_traces(suite, 30, 9).traces);

  const auto fresh = workload::collect_traces(suite, 15, 1009);
  std::size_t flagged = 0;
  std::size_t total = 0;
  for (const auto& trace : fresh.traces) {
    const auto verdict = detector.classify(trace);
    flagged += verdict.flagged_segments;
    total += verdict.total_segments;
  }
  ASSERT_GT(total, 100u);
  EXPECT_LT(static_cast<double>(flagged) / static_cast<double>(total), 0.15);
}

TEST(IntegrationTest, ComparisonRunsOnServersSyscalls) {
  const workload::ProgramSuite suite = workload::make_nginx_suite();
  auto options = quick_options();
  options.kinds = {eval::ModelKind::kCMarkov, eval::ModelKind::kRegularBasic};
  const auto comparison =
      eval::compare_models(suite, analysis::CallFilter::kSyscalls, options);
  ASSERT_EQ(comparison.models.size(), 2u);
  EXPECT_GT(comparison.unique_normal_segments, 50u);
  EXPECT_EQ(comparison.abnormal_segments, options.abnormal_count);
  // Scores populated for both models.
  for (const auto& model : comparison.models) {
    EXPECT_FALSE(model.scores.normal.empty());
    EXPECT_EQ(model.scores.abnormal.size(),
              options.abnormal_count * options.cv.folds);
  }
}

}  // namespace
}  // namespace cmarkov
