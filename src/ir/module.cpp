#include "src/ir/module.hpp"

#include "src/ir/parser.hpp"
#include "src/ir/sema.hpp"
#include "src/util/strings.hpp"

namespace cmarkov::ir {

namespace {

void count_expr(const Expr& expr, ProgramStats& stats) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, BinaryExpr>) {
          count_expr(*node.lhs, stats);
          count_expr(*node.rhs, stats);
        } else if constexpr (std::is_same_v<T, UnaryExpr>) {
          count_expr(*node.operand, stats);
        } else if constexpr (std::is_same_v<T, ExternalCallExpr>) {
          stats.external_call_sites += 1;
          if (node.kind == CallKind::kSyscall) {
            stats.syscall_sites += 1;
          } else {
            stats.libcall_sites += 1;
          }
          for (const auto& a : node.args) count_expr(*a, stats);
        } else if constexpr (std::is_same_v<T, InternalCallExpr>) {
          stats.internal_call_sites += 1;
          for (const auto& a : node.args) count_expr(*a, stats);
        }
      },
      expr.node);
}

void count_block(const BlockStmt& block, ProgramStats& stats);

void count_stmt(const Stmt& stmt, ProgramStats& stats) {
  stats.statements += 1;
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, VarDeclStmt>) {
          if (node.init) count_expr(*node.init, stats);
        } else if constexpr (std::is_same_v<T, AssignStmt>) {
          count_expr(*node.value, stats);
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          stats.branch_statements += 1;
          count_expr(*node.condition, stats);
          count_block(node.then_block, stats);
          if (node.else_block) count_block(*node.else_block, stats);
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          stats.branch_statements += 1;
          count_expr(*node.condition, stats);
          count_block(node.body, stats);
        } else if constexpr (std::is_same_v<T, ReturnStmt>) {
          if (node.value) count_expr(*node.value, stats);
        } else {
          count_expr(*node.expr, stats);
        }
      },
      stmt.node);
}

void count_block(const BlockStmt& block, ProgramStats& stats) {
  for (const auto& s : block.statements) count_stmt(*s, stats);
}

std::size_t count_nonempty_lines(const std::string& source) {
  std::size_t count = 0;
  for (const auto& line : split(source, '\n')) {
    if (!trim(line).empty()) ++count;
  }
  return count;
}

}  // namespace

ProgramStats compute_stats(const Program& program) {
  ProgramStats stats;
  stats.functions = program.functions.size();
  for (const auto& fn : program.functions) count_block(fn.body, stats);
  return stats;
}

ProgramModule ProgramModule::from_source(std::string name, std::string source,
                                         const std::string& entry_point) {
  ProgramModule module;
  module.name_ = std::move(name);
  module.source_ = std::move(source);
  module.program_ = parse_program(module.source_);
  module.entry_point_ = entry_point;
  require_valid(module.program_, entry_point);
  module.stats_ = compute_stats(module.program_);
  module.stats_.source_lines = count_nonempty_lines(module.source_);
  return module;
}

ProgramModule ProgramModule::from_ast(std::string name, Program program,
                                      const std::string& entry_point) {
  ProgramModule module;
  module.name_ = std::move(name);
  module.program_ = std::move(program);
  module.entry_point_ = entry_point;
  require_valid(module.program_, entry_point);
  module.source_ = to_source(module.program_);
  module.stats_ = compute_stats(module.program_);
  module.stats_.source_lines = count_nonempty_lines(module.source_);
  return module;
}

}  // namespace cmarkov::ir
