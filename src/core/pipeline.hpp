// End-to-end static model construction with per-phase timing: CFG
// construction, probability forecast, call-transition aggregation,
// clustering and HMM initialization. This is the CMarkov workflow of
// Section III-A as one call, and the instrumented path behind Table V.
#pragma once

#include "src/analysis/aggregation.hpp"
#include "src/hmm/static_init.hpp"
#include "src/ir/module.hpp"
#include "src/reduction/cluster_calls.hpp"
#include "src/util/exec_context.hpp"
#include "src/util/rng.hpp"
#include "src/util/stopwatch.hpp"

namespace cmarkov::core {

struct PipelineConfig {
  analysis::CallFilter filter = analysis::CallFilter::kLibcalls;
  /// false builds the STILO (context-insensitive) variant.
  bool context_sensitive = true;
  /// Execution context: exec.threads drives the clustering phase (PCA +
  /// k-means; 0 = one per hardware core) and is authoritative over
  /// clustering.exec; exec.profile receives the analyze → reduce → init
  /// span tree; exec.metrics the cmarkov_pipeline_* instruments. All
  /// pipeline results are identical at any thread count.
  ExecContext exec;
  analysis::FunctionMatrixOptions matrix;
  reduction::ClusteringOptions clustering;
  hmm::StaticInitOptions static_init;
};

struct StaticPipelineResult {
  cfg::ModuleCfg module_cfg;
  cfg::CallGraph call_graph;
  analysis::CallTransitionMatrix program_matrix;
  reduction::CallClustering clustering;
  reduction::ReducedModel reduced;
  hmm::Alphabet alphabet;
  hmm::StaticInitResult init;
  /// Phases: "cfg", "probability", "aggregation", "clustering",
  /// "initialization".
  PhaseTimer timings;
  /// Distinct context-sensitive (or -free, for STILO) calls before
  /// reduction.
  std::size_t distinct_calls = 0;

  hmm::ObservationEncoding encoding() const {
    return init_encoding;
  }
  hmm::ObservationEncoding init_encoding =
      hmm::ObservationEncoding::kContextSensitive;
};

/// Runs CONTEXT IDENTIFICATION + PROBABILITY FORECAST + STATE REDUCTION AND
/// INITIALIZATION (Section III-A operations 1-3). Training (operation 4) is
/// the caller's job — see core::Detector.
StaticPipelineResult run_static_pipeline(const ir::ProgramModule& program,
                                         const PipelineConfig& config,
                                         Rng& rng);

}  // namespace cmarkov::core
