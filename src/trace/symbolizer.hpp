// Address-to-function resolution — the addr2line stand-in. Built from the
// synthetic code layout the CFG builder assigned; resolution results are
// cached implicitly by the O(log n) range lookup (the paper notes addr2line
// results "can be cached").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/cfg/cfg.hpp"
#include "src/trace/event.hpp"

namespace cmarkov::trace {

class Symbolizer {
 public:
  /// Indexes the address ranges of every function in the module.
  explicit Symbolizer(const cfg::ModuleCfg& module);

  /// Function containing `address`, or nullopt for addresses outside every
  /// function (e.g. forged ROP return addresses into unmapped regions).
  std::optional<std::string> resolve(std::uint64_t address) const;

  /// Fills `caller` on every event from its site address. Events whose
  /// address resolves nowhere get caller "?" — the distinguishable
  /// "missing/incorrect context" signal the paper reports for attack
  /// traces.
  void symbolize(Trace& trace) const;

  /// Address range of a function (for attack construction).
  std::optional<std::pair<std::uint64_t, std::uint64_t>> range_of(
      const std::string& function) const;

 private:
  struct Range {
    std::uint64_t begin;
    std::uint64_t end;  // exclusive
    std::string function;
  };
  std::vector<Range> ranges_;  // sorted by begin
};

/// Marker caller assigned to unresolvable addresses.
inline constexpr const char* kUnknownCaller = "?";

/// Marker grandcaller for events issued from the entry function (there is
/// no caller's caller).
inline constexpr const char* kNoGrandcaller = "-";

}  // namespace cmarkov::trace
