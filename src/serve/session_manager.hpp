// The concurrency heart of cmarkovd: one OnlineMonitor per monitored
// process (a "session"), sharded across a fixed worker pool by session id.
//
// Threading model (docs/SERVING.md has the full picture):
//   - Producers (transport threads) call submit(); the event lands on the
//     bounded MPSC queue of the worker that owns the session's shard.
//   - Each worker drains its own queue in FIFO batches, so events of one
//     session are always scored in arrival order by a single thread.
//   - Backpressure on a full queue is explicit policy: block the producer,
//     evict the oldest queued event (counted against the evicted event's
//     session), or reject the new event (counted against the submitter).
//
// Session lifecycle (new in the 1M-session PR): resident sessions hold a
// pool-allocated monitor; when max_resident_sessions is exceeded, the
// least-recently-active idle session is snapshotted into the SnapshotStore
// and released. A later submit (or HELLO) for that id transparently
// restores it — bit-identically when the model version is unchanged. Hot
// model reload (reload_model) atomically publishes a new version in the
// ModelRegistry and rebinds every affected session at a window boundary;
// epoch-based reclamation returns the retired model's registry reference
// once no worker can still observe it.
//
// Per-session verdicts are bit-identical to feeding the same events through
// a standalone core::OnlineMonitor, provided each session has one producer
// and no events are dropped (block policy) — serve_test asserts this.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/online_monitor.hpp"
#include "src/obs/metrics_registry.hpp"
#include "src/obs/trace/decision_log.hpp"
#include "src/obs/trace/tracer.hpp"
#include "src/serve/model_registry.hpp"
#include "src/serve/overload_governor.hpp"
#include "src/serve/service_metrics.hpp"
#include "src/serve/session_snapshot.hpp"
#include "src/serve/state_pool.hpp"
#include "src/util/stopwatch.hpp"

namespace cmarkov::serve {

class DriftMonitor;

enum class BackpressurePolicy { kBlock, kDropOldest, kReject };

const char* backpressure_policy_name(BackpressurePolicy policy);
/// "block" | "drop-oldest" | "reject"; nullopt for anything else.
std::optional<BackpressurePolicy> parse_backpressure_policy(
    std::string_view name);

struct ServiceConfig {
  std::size_t num_workers = 2;
  /// Maximum queued events per worker (must be > 0).
  std::size_t queue_capacity = 1024;
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  /// Monitor options for sessions opened without explicit options.
  core::MonitorOptions monitor;
  /// Resident-session budget: opening or restoring a session beyond this
  /// count evicts the least-recently-active idle session into the snapshot
  /// store (approximate LRU, Redis-style sampling). 0 = unlimited.
  std::size_t max_resident_sessions = 0;
  /// Directory persisting evicted-session snapshots ("" = memory only).
  /// With a directory, sessions survive daemon restarts
  /// (snapshot_store().load_directory() at boot).
  std::string snapshot_dir;
  /// Test hook: spawn no worker threads; queued events are processed
  /// synchronously by drain() on the calling thread. Makes backpressure
  /// accounting deterministic. (A full queue under the block policy is
  /// pumped inline instead of deadlocking.)
  bool manual_pump = false;
  /// Registry receiving the cmarkov_serve_* instruments. Non-owning; must
  /// outlive the manager. Null = the manager creates a private registry
  /// (exposed via metrics_registry()).
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-event span tracing (queue/score/reply); off by default. The
  /// sampling decision is taken once per event at submit time; events
  /// carrying an explicit protocol trace id (tid=) are always traced.
  /// Decision-record sampling is configured separately via
  /// monitor.decisions (cmarkovd's --trace-sample sets both).
  obs::TracerOptions tracing;
  /// Capacity of the service-wide JSONL decision log (appends beyond it
  /// are dropped and counted — flight-recorder semantics).
  std::size_t decision_log_capacity = 4096;
  /// Overload degradation ladder (overload_governor.hpp): deadline budget,
  /// water marks, hysteresis. `overload.enabled = false` turns the whole
  /// ladder off (no admission checks, no level gauge movement).
  OverloadOptions overload;
};

/// What happened to a submitted event.
enum class SubmitResult {
  kAccepted,
  /// Accepted, but the oldest queued event was evicted to make room.
  kDroppedOldest,
  /// Refused; the event was not queued.
  kRejected,
  kUnknownSession,
};

struct SessionStats {
  std::string id;
  std::string model;
  std::uint64_t enqueued = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;   ///< this session's events evicted from a queue
  std::uint64_t rejected = 0;  ///< this session's submissions refused
  /// Queued events discarded because the session itself was evicted
  /// (lifecycle loss, accounted separately from backpressure `dropped`).
  std::uint64_t evicted_dropped = 0;
  /// Cumulative monitor counters (alarms live in monitor.alarms).
  core::MonitorStats monitor;
};

/// Point-in-time per-shard breakdown (the admin plane's /statusz). All
/// fields come from relaxed atomics or counters plus one shared-lock sweep
/// of the resident list — no worker queue or monitor lock is touched, so
/// a scrape never stalls admission or scoring.
struct ShardStatus {
  std::size_t shard = 0;
  /// Resident sessions hashed onto this shard.
  std::size_t sessions = 0;
  /// Events queued on the shard worker right now.
  std::size_t queue_depth = 0;
  /// Events this shard's worker has processed (lifetime).
  std::uint64_t processed = 0;
  /// Sessions evicted from this shard into the snapshot store (lifetime).
  std::uint64_t evicted_sessions = 0;
  /// Scoring-state bytes of this shard's resident sessions.
  std::uint64_t state_bytes = 0;
};

/// Outcome of a hot model reload (reload_model).
struct ReloadReport {
  std::uint64_t version = 0;
  std::uint64_t fingerprint = 0;
  /// Live sessions rebound to the new version.
  std::size_t sessions_rebound = 0;
  /// Retired registry references reclaimed via the epoch check.
  std::size_t retired_reclaimed = 0;
  double micros = 0.0;
};

class SessionManager {
 public:
  SessionManager(ModelRegistry& registry, ServiceConfig config = {});
  ~SessionManager();
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session scoring against `model`. If a snapshot for `id` is
  /// pending in the store (evicted earlier, or persisted by a previous
  /// daemon run), the session is restored from it instead — `model` must
  /// then match the snapshot's model. Throws std::invalid_argument on
  /// duplicate id, unknown model, snapshot/model mismatch, or invalid
  /// monitor options; throws OverloadedError when the degradation ladder
  /// is at shed-hellos or above and `id` is genuinely new (restores of
  /// evicted sessions are still admitted — submit() would restore them
  /// transparently anyway).
  void open_session(const std::string& id, const std::string& model,
                    std::optional<core::MonitorOptions> options = std::nullopt);

  /// Queues one event for the session; applies the backpressure policy when
  /// the shard queue is full. Safe from any thread. Sessions evicted to the
  /// snapshot store are transparently restored first.
  SubmitResult submit(const std::string& id, trace::CallEvent event);

  /// Same, threading a protocol trace id through the worker queue into the
  /// scoring path. A non-empty `trace_id` forces span tracing for this
  /// event (sampling bypassed) and is stamped into any decision record the
  /// event produces. When the event is admitted for tracing, `seq_out` (if
  /// non-null) receives its span sequence number so the caller can record
  /// correlated spans (the protocol layer's "reply" span).
  SubmitResult submit(const std::string& id, trace::CallEvent event,
                      const std::string& trace_id,
                      std::uint64_t* seq_out = nullptr);

  /// True for resident sessions and for sessions evicted to the store.
  bool has_session(const std::string& id) const;

  /// Live counters (no drain; may lag concurrent processing). Works for
  /// resident and evicted sessions alike. Never blocks on a scoring batch:
  /// the monitor counters are read under a try-lock, falling back to a
  /// per-event refreshed cache when the owning worker holds the lock.
  SessionStats session_stats(const std::string& id) const;
  std::vector<SessionStats> all_session_stats() const;

  /// Drains outstanding events, then removes the session and returns its
  /// final stats (an evicted session's snapshot is consumed and reported).
  /// Throws std::invalid_argument for unknown ids.
  SessionStats close_session(const std::string& id);

  /// Snapshot-evicts one resident session into the store: queued events
  /// are discarded (counted as evicted_dropped, NOT backpressure drops),
  /// in-flight scoring finishes first, and the monitor buffers return to
  /// the state pool. Returns false for unknown/non-resident ids.
  bool evict_session(const std::string& id);

  /// Resident (in-memory) session count; evicted sessions don't count.
  std::size_t resident_sessions() const;

  /// Hot model reload: atomically publishes `detector` as the new version
  /// of `name` in the registry, rebinds every live session of that model
  /// at a window boundary (cumulative stats and cooldown carry over; the
  /// partial window resets — its ids encode the old alphabet), and
  /// reclaims retired registry references no worker can still observe.
  /// Zero-loss: events already queued are not discarded — an event scoring
  /// when the rebind lands finishes against the old version, everything
  /// behind it scores against the new one.
  ReloadReport reload_model(const std::string& name,
                            std::shared_ptr<const core::Detector> detector);

  /// Blocks until every event submitted before the call has been processed.
  /// Quiescent only if no producer submits concurrently.
  void drain();

  ServiceMetrics metrics() const;

  /// Per-shard breakdown for the admin plane's /statusz. Lock-cheap (see
  /// ShardStatus); safe from any thread, any time.
  std::vector<ShardStatus> shard_status() const;

  /// Refreshes the instantaneous gauges (uptime, sessions, queue depths,
  /// bytes/session) and returns the registry holding every cmarkov_serve_*
  /// instrument — the METRICS verb renders this via obs::to_kv_line.
  const obs::MetricsRegistry& metrics_registry();

  /// The mutable instrument registry (transports register their
  /// cmarkov_net_* instruments here so METRICS exposes one surface).
  obs::MetricsRegistry& instruments() { return *metrics_; }

  /// Fresh collision-free id ("s1", "s2", ...) for transports whose HELLO
  /// omits one.
  std::string next_session_id();

  /// The service's span tracer (always present; disabled unless
  /// config.tracing.enabled). Exposed for the reply-span instrumentation
  /// in the protocol layer and for exporters.
  obs::Tracer& tracer() { return *tracer_; }
  const obs::Tracer& tracer() const { return *tracer_; }

  /// Records a span through the tracer with cmarkov_trace_spans_* counter
  /// accounting (the path every span — worker- or transport-side — takes).
  void record_span(obs::SpanRecord span);

  /// Service-wide decision log (JSONL sink; --decision-log dumps it).
  const obs::DecisionLog& decision_log() const { return *decision_log_; }

  /// Microseconds on the service clock that timestamps every span (so
  /// transport-side spans line up with worker-side ones).
  double now_micros() const { return clock_.micros(); }

  /// Up to `n` most recent decision records of a session, oldest first
  /// (the TRACE verb). Empty unless the session's monitor has decision
  /// tracing enabled (and empty again right after a restore — the audit
  /// ring is a flight recorder, not snapshotted state). Throws
  /// std::invalid_argument for unknown ids.
  std::vector<obs::DecisionRecord> recent_decisions(const std::string& id,
                                                    std::size_t n) const;

  /// Store holding evicted-session snapshots (daemon boot calls
  /// load_directory(); tests inspect it).
  SnapshotStore& snapshot_store() { return snapshots_; }
  const SnapshotStore& snapshot_store() const { return snapshots_; }

  /// The overload degradation ladder's admission governor (level reads,
  /// options; tests drive transitions through submit pressure).
  OverloadGovernor& overload_governor() { return governor_; }
  const OverloadGovernor& overload_governor() const { return governor_; }

  /// Arms drift detection: every completed window of sessions serving
  /// `model_name` is also fed to `monitor` (from the worker thread, under
  /// the session's monitor_mu — the window span points into monitor
  /// scratch that a concurrent reload would clear). The monitor must
  /// outlive the manager or be detached first (pass null). Set before
  /// traffic; not synchronized against in-flight events.
  void set_drift_monitor(DriftMonitor* monitor, std::string model_name);

  const StatePool& state_pool() const { return pool_; }

  const ServiceConfig& config() const { return config_; }
  const ModelRegistry& registry() const { return registry_; }

 private:
  struct Session;
  struct Item;
  struct Worker;
  /// Service-wide counter deltas a worker accumulates across one batch and
  /// flushes with a single atomic add each — the per-event hot path touches
  /// only per-session atomics (ISSUE 7: the serve overhead around the
  /// kernel is part of the single-core budget).
  struct BatchCounters {
    std::uint64_t processed = 0;
    std::uint64_t windows = 0;
    std::uint64_t kernel_windows = 0;
  };

  std::shared_ptr<Session> find_session(const std::string& id) const;
  /// Restores an evicted session (lifecycle lock held inside). Returns the
  /// resident session, or null when no snapshot exists either.
  std::shared_ptr<Session> try_restore(const std::string& id);
  /// Builds a resident session from a snapshot. Caller holds lifecycle_mu_.
  std::shared_ptr<Session> restore_locked(SessionSnapshot snapshot);
  /// Inserts a session into the resident map/list. Caller holds
  /// lifecycle_mu_; takes sessions_mu_ itself.
  void insert_resident(std::shared_ptr<Session> session);
  /// Evicts `session` (must be resident). Caller holds lifecycle_mu_.
  void evict_locked(const std::shared_ptr<Session>& session);
  /// Enforces max_resident_sessions by evicting sampled-LRU idle sessions.
  /// Caller holds lifecycle_mu_. `keep` is never evicted.
  void enforce_residency_locked(const Session* keep);
  SessionStats stats_from_snapshot(const SessionSnapshot& snapshot) const;
  void process_item(Item& item, BatchCounters& batch);
  void flush_batch(std::size_t shard, const BatchCounters& batch);
  void pump_worker(Worker& worker);
  void worker_loop(Worker& worker);
  SessionStats snapshot(const Session& session) const;
  SessionSnapshot freeze(Session& session) const;
  void refresh_gauges();
  /// Submit-path governor tick: cheap counter check, full pressure update
  /// every 64th event (every event while the ladder is elevated, so
  /// recovery is observed promptly).
  void maybe_update_governor();
  /// Feeds one pressure observation to the governor and reacts to any
  /// transition (counter, log line, level-3 idle shed).
  void update_governor();
  /// Folds one per-event service-time sample into the EMA the governor's
  /// deadline signal uses.
  void note_service_time(double micros_per_event);
  double service_ema_micros() const;
  /// Mirrors failpoint lifetime hit counts onto the obs registry
  /// (cmarkov_failpoint_<name>_hits_total), delta-adding since last sync.
  void sync_failpoint_hits();

  ModelRegistry& registry_;
  ServiceConfig config_;
  Stopwatch clock_;
  std::vector<std::unique_ptr<Worker>> workers_;

  /// Serializes lifecycle transitions (open, evict, restore, close) so a
  /// session is always either resident or in the snapshot store — never
  /// both, never neither. The submit hot path takes it only on a resident
  /// miss. Ordering: lifecycle_mu_ > sessions_mu_ > worker.mu/monitor_mu.
  std::mutex lifecycle_mu_;

  mutable std::shared_mutex sessions_mu_;
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;
  /// Dense view of resident sessions for O(1) eviction sampling
  /// (Session::list_index tracks positions; swap-pop removal).
  std::vector<std::shared_ptr<Session>> session_list_;

  SnapshotStore snapshots_;
  StatePool pool_;
  OverloadGovernor governor_;

  /// Drift feed target (null = drift disabled). The pointer is atomic so
  /// workers can read it lock-free; the name is written once before
  /// traffic (set_drift_monitor contract).
  std::atomic<DriftMonitor*> drift_monitor_{nullptr};
  std::string drift_model_name_;
  /// Aggregate queued-event count across all worker queues (the governor's
  /// occupancy signal without taking every worker lock per update).
  std::atomic<std::uint64_t> queued_events_{0};
  /// Submit counter driving the every-64th governor update cadence.
  std::atomic<std::uint64_t> governor_ticks_{0};
  /// Bit pattern of the per-event service-time EMA (double); lock-free
  /// load/store — a lost concurrent sample only delays the estimate.
  std::atomic<std::uint64_t> service_ema_bits_{0};
  /// Failpoint hit counts already mirrored onto the obs registry.
  std::mutex failpoint_sync_mu_;
  std::unordered_map<std::string, std::uint64_t> failpoint_hits_seen_;
  /// Monotonic activity tick; stamped per submit for LRU ordering.
  std::atomic<std::uint64_t> activity_clock_{1};
  /// Resident-session state bytes (sum) feeding the bytes/session gauge.
  std::atomic<std::uint64_t> state_bytes_sum_{0};
  std::uint64_t evict_rng_state_ = 0x9e3779b97f4a7c15ull;

  std::atomic<std::uint64_t> next_id_{0};

  // Service-wide instruments, resolved once in the constructor from the
  // caller's registry (or the private owned one).
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* enqueued_total_;
  obs::Counter* processed_total_;
  obs::Counter* dropped_total_;
  obs::Counter* rejected_total_;
  obs::Counter* windows_total_;
  obs::Counter* kernel_windows_total_;
  obs::Counter* alarms_total_;
  obs::Counter* sessions_evicted_total_;
  obs::Counter* sessions_restored_total_;
  obs::Counter* evicted_dropped_total_;
  obs::Counter* model_reloads_total_;
  obs::Counter* kernel_builds_total_;
  obs::Counter* overload_transitions_total_;
  obs::Counter* overload_shed_traces_total_;
  obs::Counter* overload_shed_hellos_total_;
  obs::Counter* overload_early_evicted_total_;
  obs::Histogram* reload_micros_;
  obs::Histogram* kernel_build_micros_;
  obs::Histogram* latency_micros_;
  obs::Gauge* uptime_gauge_;
  obs::Gauge* sessions_gauge_;
  obs::Gauge* state_bytes_gauge_;
  obs::Gauge* kernel_image_bytes_gauge_;
  obs::Gauge* overload_level_gauge_;
  std::vector<obs::Gauge*> queue_depth_gauges_;
  // Per-shard instruments behind /statusz (indexed by shard).
  std::vector<obs::Gauge*> shard_sessions_gauges_;
  std::vector<obs::Gauge*> shard_state_bytes_gauges_;
  std::vector<obs::Counter*> shard_processed_totals_;
  std::vector<obs::Counter*> shard_evicted_totals_;

  // Tracing sinks (always constructed; zero-capacity / disabled when off).
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::DecisionLog> decision_log_;
  obs::Counter* spans_total_;
  obs::Counter* spans_dropped_total_;
  obs::Counter* decisions_total_;
  obs::Counter* decisions_dropped_total_;
};

}  // namespace cmarkov::serve
