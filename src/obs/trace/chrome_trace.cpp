#include "src/obs/trace/chrome_trace.hpp"

#include "src/obs/export.hpp"

namespace cmarkov::obs {

namespace {

std::string micros(double seconds) {
  return format_metric_value(seconds * 1e6);
}

void append_profile_span(const TraceSpan& span, double start_seconds,
                         bool& first, std::string& out) {
  if (!first) out += ",\n";
  first = false;
  out += "{\"name\":\"" + span.name + "\",\"ph\":\"X\",\"ts\":" +
         micros(start_seconds) + ",\"dur\":" + micros(span.seconds) +
         ",\"pid\":1,\"tid\":1,\"args\":{\"count\":" +
         std::to_string(span.count) + "}}";
  // Children are contiguous by construction: lay them out sequentially
  // from this span's start.
  double child_start = start_seconds;
  for (const TraceSpan& child : span.children) {
    append_profile_span(child, child_start, first, out);
    child_start += child.seconds;
  }
}

}  // namespace

std::string chrome_trace_json(const RunProfile& profile) {
  std::string out = "[\n";
  bool first = true;
  append_profile_span(profile.root(), 0.0, first, out);
  out += "\n]\n";
  return out;
}

std::string chrome_trace_json(std::span<const SpanRecord> spans) {
  std::string out = "[\n";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"" + span.name + "\",\"ph\":\"X\",\"ts\":" +
           format_metric_value(span.start_micros) +
           ",\"dur\":" + format_metric_value(span.duration_micros) +
           ",\"pid\":1,\"tid\":" + std::to_string(span.thread) +
           ",\"args\":{\"session\":\"" + span.session + "\",\"tid\":\"" +
           span.trace_id + "\",\"seq\":" + std::to_string(span.seq) + "}}";
  }
  out += "\n]\n";
  return out;
}

}  // namespace cmarkov::obs
