#include "src/eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace cmarkov::eval {

double fp_rate(const ScoreSet& scores, double threshold) {
  if (scores.normal.empty()) return 0.0;
  std::size_t below = 0;
  for (double s : scores.normal) {
    if (s < threshold) ++below;
  }
  return static_cast<double>(below) /
         static_cast<double>(scores.normal.size());
}

double fn_rate(const ScoreSet& scores, double threshold) {
  if (scores.abnormal.empty()) return 0.0;
  std::size_t above = 0;
  for (double s : scores.abnormal) {
    if (s > threshold) ++above;
  }
  return static_cast<double>(above) /
         static_cast<double>(scores.abnormal.size());
}

std::vector<RocPoint> roc_curve(const ScoreSet& scores, std::size_t points) {
  if (points < 2) throw std::invalid_argument("roc_curve: points < 2");
  std::vector<double> sorted = scores.normal;
  std::sort(sorted.begin(), sorted.end());

  std::vector<double> thresholds;
  thresholds.push_back(-std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < points && !sorted.empty(); ++i) {
    const std::size_t idx =
        std::min(sorted.size() - 1, i * sorted.size() / points);
    // Both sides of each quantile score: at the score itself (that normal
    // segment not yet flagged) and just above it (flagged). The lower side
    // is what realizes FP = 0 with FN = 0 on separable score sets.
    thresholds.push_back(sorted[idx]);
    thresholds.push_back(std::nextafter(
        sorted[idx], std::numeric_limits<double>::infinity()));
  }
  thresholds.push_back(std::numeric_limits<double>::infinity());

  std::vector<RocPoint> curve;
  for (double t : thresholds) {
    curve.push_back({t, fp_rate(scores, t), fn_rate(scores, t)});
  }
  // Order by rising FP; FP ties (e.g. several thresholds below the lowest
  // normal score) keep descending FN so the curve stays monotone.
  std::sort(curve.begin(), curve.end(),
            [](const RocPoint& a, const RocPoint& b) {
              if (a.fp != b.fp) return a.fp < b.fp;
              return a.fn > b.fn;
            });
  curve.erase(std::unique(curve.begin(), curve.end(),
                          [](const RocPoint& a, const RocPoint& b) {
                            return a.fp == b.fp && a.fn == b.fn;
                          }),
              curve.end());
  return curve;
}

double threshold_for_fp(const ScoreSet& scores, double target_fp) {
  if (scores.normal.empty()) {
    return -std::numeric_limits<double>::infinity();
  }
  std::vector<double> sorted = scores.normal;
  std::sort(sorted.begin(), sorted.end());
  // The largest T with |{normal < T}| <= target_fp * N is just above the
  // floor(target_fp * N)-th smallest normal score.
  const auto budget = static_cast<std::size_t>(
      std::floor(target_fp * static_cast<double>(sorted.size())));
  if (budget >= sorted.size()) {
    return std::numeric_limits<double>::infinity();
  }
  return sorted[budget];  // scores strictly below this are flagged
}

double fn_at_fp(const ScoreSet& scores, double target_fp) {
  return fn_rate(scores, threshold_for_fp(scores, target_fp));
}

double detection_auc(const ScoreSet& scores, std::size_t points) {
  const auto curve = roc_curve(scores, points);
  double auc = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double width = curve[i].fp - curve[i - 1].fp;
    const double detect =
        1.0 - 0.5 * (curve[i].fn + curve[i - 1].fn);
    auc += width * detect;
  }
  // Extend the last segment to FP = 1 (detection there is trivially the
  // last point's).
  if (!curve.empty() && curve.back().fp < 1.0) {
    auc += (1.0 - curve.back().fp) * (1.0 - curve.back().fn);
  }
  return auc;
}

}  // namespace cmarkov::eval
