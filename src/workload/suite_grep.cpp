// grep analogue: pattern compilation, buffered line scanning over input
// files, match printing. Mirrors GNU grep's shape: regcomp up front, an
// outer per-file loop, an inner fill-buffer/scan-lines loop, bookkeeping
// calls on matches.
#include "src/workload/program_suite.hpp"

namespace cmarkov::workload {

namespace {

const char* const kGrepSource = R"(
fn main() {
  startup();
  var pattern_kind = input() % 3;
  compile_pattern(pattern_kind);
  var recursive = input() % 4;
  var total = 0;
  if (recursive == 0) {
    total = grep_directory(pattern_kind);
  } else {
    var files = input() % 5 + 1;
    while (files > 0) {
      total = total + grep_file(pattern_kind);
      files = files - 1;
    }
  }
  report_totals(total);
  sys("exit_group");
}

fn grep_directory(kind) {
  var fd = sys("openat");
  if (fd < 1) {
    file_error();
    return 0;
  }
  var total = 0;
  var entries = input() % 6 + 1;
  while (entries > 0) {
    sys("getdents");
    var is_dir = input() % 4;
    if (is_dir > 0) {
      var binary = check_binary_file();
      if (binary == 0) {
        total = total + grep_file(kind);
      }
    }
    entries = entries - 1;
  }
  sys("close");
  return total;
}

fn check_binary_file() {
  sys("read");
  var r = lib("memchr");
  if (r > 0 && r < 4) {
    lib("fprintf");
    return 1;
  }
  return 0;
}

fn startup() {
  sys("brk");
  lib("setlocale");
  lib("getenv");
  lib("getenv");
  sys("rt_sigaction");
  lib("malloc");
}

fn compile_pattern(kind) {
  lib("strlen");
  lib("malloc");
  if (kind == 0) {
    lib("regcomp");
  } else {
    if (kind == 1) {
      build_kws_table();
    } else {
      lib("strcpy");
    }
  }
}

fn build_kws_table() {
  lib("calloc");
  var entries = input() % 6 + 1;
  while (entries > 0) {
    lib("memcpy");
    entries = entries - 1;
  }
}

fn grep_file(kind) {
  var fd = sys("open");
  if (fd < 1) {
    file_error();
    return 0;
  }
  sys("fstat");
  var matches = 0;
  var chunks = input() % 8 + 1;
  while (chunks > 0) {
    var n = fill_buffer();
    if (n > 0) {
      matches = matches + scan_buffer(kind, n);
    }
    chunks = chunks - 1;
  }
  sys("close");
  return matches;
}

fn fill_buffer() {
  lib("memmove");
  var n = sys("read");
  return n;
}

fn scan_buffer(kind, n) {
  var lines = n % 6 + 1;
  var matches = 0;
  while (lines > 0) {
    var hit = match_line(kind);
    if (hit > 0) {
      var with_context = input() % 3;
      if (with_context == 0) {
        print_context_lines();
      }
      print_match();
      matches = matches + 1;
    }
    lines = lines - 1;
  }
  return matches;
}

fn print_context_lines() {
  var lines = input() % 3 + 1;
  while (lines > 0) {
    lib("fwrite");
    lines = lines - 1;
  }
  lib("fputs");
}

fn match_line(kind) {
  lib("memchr");
  if (kind == 0) {
    var r = lib("regexec");
    if (r == 0) {
      return 1;
    }
    return 0;
  }
  if (kind == 1) {
    var k = lib("kwsexec");
    if (k < 4) {
      return 1;
    }
    return 0;
  }
  var s = lib("strstr");
  if (s > 0) {
    return 1;
  }
  return 0;
}

fn print_match() {
  var with_name = input() % 2;
  if (with_name == 1) {
    lib("fputs");
  }
  lib("fwrite");
  sys("write");
}

fn file_error() {
  lib("strerror");
  lib("fprintf");
}

fn report_totals(total) {
  if (total > 0) {
    lib("printf");
  }
  lib("fflush");
  lib("free");
  sys("close");
}
)";

}  // namespace

ProgramSuite make_grep_suite() {
  SuiteInfo info;
  info.name = "grep";
  info.description =
      "pattern scanner: regex/KWS compilation, buffered per-file scan loop, "
      "match reporting";
  info.paper_test_cases = 809;
  InputSpec spec;
  spec.min_inputs = 10;
  spec.max_inputs = 64;
  spec.max_value = 99;
  return ProgramSuite(info, kGrepSource, spec);
}

}  // namespace cmarkov::workload
