// Figure 3: classification accuracy of the four models on the six utility
// programs, system-call traces. Expected shape: statically initialized
// models (CMarkov, STILO) dominate; context adds less than on libcalls
// because syscalls sit in wrapper functions with few distinct callers.
#include "bench/figure_common.hpp"

int main(int argc, char** argv) {
  cmarkov::benchfig::run_figure(
      "Figure 3: utility programs, syscall accuracy",
      cmarkov::workload::utility_suite_names(),
      cmarkov::analysis::CallFilter::kSyscalls, argc, argv);
  return 0;
}
