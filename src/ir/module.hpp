// ProgramModule bundles a parsed+checked MiniC program with its source text
// and summary statistics (the "binary" our pipeline analyzes and runs).
#pragma once

#include <cstddef>
#include <string>

#include "src/ir/ast.hpp"

namespace cmarkov::ir {

/// Static size statistics of a MiniC program, reported alongside Table I
/// (the paper reports lines of code and binary size per program).
struct ProgramStats {
  std::size_t functions = 0;
  std::size_t source_lines = 0;       // non-empty source lines
  std::size_t statements = 0;         // total AST statements
  std::size_t branch_statements = 0;  // if + while statements
  std::size_t external_call_sites = 0;
  std::size_t syscall_sites = 0;
  std::size_t libcall_sites = 0;
  std::size_t internal_call_sites = 0;
};

/// A named, validated program.
class ProgramModule {
 public:
  /// Parses and semantically checks `source`. Throws SyntaxError/SemaError.
  static ProgramModule from_source(std::string name, std::string source,
                                   const std::string& entry_point = "main");

  /// Wraps an already-built AST (programmatic construction path); still
  /// runs semantic checks.
  static ProgramModule from_ast(std::string name, Program program,
                                const std::string& entry_point = "main");

  const std::string& name() const { return name_; }
  const std::string& source() const { return source_; }
  const Program& program() const { return program_; }
  const std::string& entry_point() const { return entry_point_; }
  const ProgramStats& stats() const { return stats_; }

 private:
  ProgramModule() = default;

  std::string name_;
  std::string source_;
  Program program_;
  std::string entry_point_;
  ProgramStats stats_;
};

/// Computes statistics over an AST (source_lines filled only when source
/// text is available to the caller).
ProgramStats compute_stats(const Program& program);

}  // namespace cmarkov::ir
