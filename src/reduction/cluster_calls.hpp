// Clustering-based hidden-state reduction (Section III-C, Algorithm 1):
// PCA over call-transition vectors, then K-means, merging calls with similar
// incoming/outgoing transition behaviour into one hidden state.
#pragma once

#include <cstddef>
#include <vector>

#include "src/analysis/context.hpp"
#include "src/linalg/kmeans.hpp"
#include "src/linalg/pca.hpp"
#include "src/reduction/call_vector.hpp"
#include "src/util/rng.hpp"

namespace cmarkov::reduction {

struct ClusteringOptions {
  /// Target number of clusters; 0 derives it from `target_fraction`.
  std::size_t k = 0;
  /// Paper choice: the clustered model has 1/3 to 1/2 of the original
  /// states; the prototype uses 1/3.
  double target_fraction = 1.0 / 3.0;
  /// Apply clustering only when the call count exceeds this (the paper
  /// reduces models with > 800 states). Set to 0 to always cluster.
  std::size_t min_calls_for_reduction = 800;
  /// Skip the PCA step (ablation).
  bool use_pca = true;
  /// Execution context for PCA and k-means; authoritative — its runtime
  /// (threads, metrics, profile) overrides pca.exec / kmeans.exec, while
  /// their seeds are preserved. Clustering results are identical at any
  /// thread count.
  ExecContext exec;
  PcaOptions pca;
  KMeansOptions kmeans;
};

struct CallClustering {
  /// External symbols that were clustered, in feature-row order.
  std::vector<analysis::CallSymbol> calls;
  /// assignment[i] = cluster of calls[i].
  std::vector<std::size_t> assignment;
  /// Members per cluster (indices into `calls`).
  std::vector<std::vector<std::size_t>> clusters;
  /// True when reduction was skipped (each call its own cluster).
  bool reduced = false;
  /// PCA output dimensionality (0 when PCA skipped).
  std::size_t pca_dimensions = 0;
};

/// Clusters the external calls of an aggregated matrix. When the model is
/// below the reduction threshold (or k >= #calls) every call becomes a
/// singleton cluster, which downstream code treats as the unreduced model.
CallClustering cluster_calls(const analysis::CallTransitionMatrix& matrix,
                             Rng& rng, const ClusteringOptions& options = {});

/// Singleton clustering (the unreduced model), for the clustered/unclustered
/// comparisons of Table II.
CallClustering identity_clustering(
    const analysis::CallTransitionMatrix& matrix);

}  // namespace cmarkov::reduction
