// Plain-text persistence for trained detectors: HMM parameters, alphabet,
// threshold and the config bits needed to re-encode traces. The format is a
// line-oriented key/value + matrix dump, versioned for forward evolution.
//
// Also persists hmm::TrainerState (`cmarkov-trainer-state 1`) so
// incremental training resumes across process restarts. Every double in
// that format travels as its IEEE-754 bit pattern in hex: the whole point
// of the state is to continue a floating-point fold bit-identically, and
// decimal round trips are exact only with care — the bit pattern is exact
// by construction.
#pragma once

#include <iosfwd>
#include <string>

#include "src/core/detector.hpp"
#include "src/hmm/trainer.hpp"

namespace cmarkov::core {

/// Serializes a detector (trained or not) to a stream / file.
void save_detector(std::ostream& out, const Detector& detector);
void save_detector_file(const std::string& path, const Detector& detector);

/// Loads a detector. Throws std::runtime_error on malformed input or
/// version mismatch; messages name the offending key, matrix tag, or
/// value (a serving registry must reject bad model files loudly).
Detector load_detector(std::istream& in);
Detector load_detector_file(const std::string& path);

/// Serializes a trainer's resumable state (corpus, batch records, and the
/// iteration-0 prefix accumulators). A load + partial_fit continues
/// bit-identically with the uninterrupted run (model_io_test,
/// incremental_training_test).
void save_trainer_state(std::ostream& out, const hmm::TrainerState& state);
void save_trainer_state_file(const std::string& path,
                             const hmm::TrainerState& state);

/// Loads a trainer state. Throws std::runtime_error on malformed input
/// and std::invalid_argument when the decoded state is structurally
/// inconsistent (TrainerState::validate).
hmm::TrainerState load_trainer_state(std::istream& in);
hmm::TrainerState load_trainer_state_file(const std::string& path);

}  // namespace cmarkov::core
