// Generator for arbitrarily large synthetic MiniC programs (paper-scale
// model sizes; see suite_synthetic.cpp).
#pragma once

#include "src/workload/program_suite.hpp"

namespace cmarkov::workload {

struct SyntheticConfig {
  /// Subsystems; each gets its own slice of the call vocabulary and a
  /// dispatcher function reaching all of its functions.
  std::size_t modules = 22;
  std::size_t functions_per_module = 26;
  /// Distinct libcall / syscall names available program-wide.
  std::size_t libcall_vocab = 200;
  std::size_t syscall_vocab = 56;
  std::uint64_t seed = 1;
};

/// Generates a deterministic large program. With the defaults the libcall
/// model has on the order of 900+ context-sensitive calls — past the
/// paper's N > 800 clustering threshold.
ProgramSuite make_synthetic_suite(const SyntheticConfig& config = {});

}  // namespace cmarkov::workload
