// Tests for the streaming OnlineMonitor.
#include <gtest/gtest.h>

#include "src/attack/exploit_driver.hpp"
#include "src/core/online_monitor.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::core {
namespace {

struct Fixture {
  workload::ProgramSuite suite = workload::make_gzip_suite();
  Detector detector = [this] {
    DetectorConfig config;
    config.pipeline.filter = analysis::CallFilter::kSyscalls;
    config.training.max_iterations = 8;
    config.target_fp = 0.001;
    Detector d = Detector::build(suite.module(), config);
    d.train(workload::collect_traces(suite, 40, 91).traces);
    return d;
  }();
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(OnlineMonitorTest, RequiresTrainedDetector) {
  DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  const Detector untrained =
      Detector::build(fixture().suite.module(), config);
  EXPECT_THROW((OnlineMonitor{untrained}), std::invalid_argument);
  MonitorOptions bad;
  bad.windows_to_alarm = 0;
  EXPECT_THROW(OnlineMonitor(fixture().detector, nullptr, bad),
               std::invalid_argument);
}

TEST(OnlineMonitorTest, WindowFillsBeforeScoring) {
  OnlineMonitor monitor(fixture().detector);
  const auto collection = workload::collect_traces(fixture().suite, 1, 7);
  const auto& events = collection.traces.front().events;
  const std::size_t window =
      fixture().detector.config().segments.length;
  std::size_t syscalls_fed = 0;
  for (const auto& event : events) {
    const auto update = monitor.on_event(event);
    if (analysis::filter_matches(analysis::CallFilter::kSyscalls,
                                 event.kind)) {
      ++syscalls_fed;
      // On-stream events complete the window once `window` of them arrived.
      EXPECT_EQ(update.window_complete, syscalls_fed >= window);
    } else {
      // Off-stream events never produce a scored window.
      EXPECT_FALSE(update.window_complete);
    }
    if (syscalls_fed >= window + 3) break;
  }
}

TEST(OnlineMonitorTest, BenignStreamRaisesFewAlarms) {
  OnlineMonitor monitor(fixture().detector);
  const auto collection = workload::collect_traces(fixture().suite, 10, 77);
  std::size_t alarms = 0;
  for (const auto& trace : collection.traces) {
    alarms += monitor.on_trace(trace);
    monitor.reset_window();
  }
  const auto& stats = monitor.stats();
  EXPECT_GT(stats.windows_scored, 100u);
  // Calibrated at 0.1% segment FP.
  EXPECT_LT(static_cast<double>(stats.windows_flagged) /
                static_cast<double>(stats.windows_scored),
            0.05);
  EXPECT_EQ(stats.alarms, alarms);
}

TEST(OnlineMonitorTest, AttackStreamRaisesAlarm) {
  OnlineMonitor monitor(fixture().detector);
  const auto attacks = attack::build_attack_traces(
      fixture().suite, attack::gzip_payloads(), 5);
  std::size_t alarms = 0;
  for (const auto& attack : attacks) {
    alarms += monitor.on_trace(attack.trace);
    monitor.reset_window();
  }
  EXPECT_GT(alarms, 0u);
}

TEST(OnlineMonitorTest, SymbolizerResolvesRawEvents) {
  const trace::Symbolizer symbolizer(fixture().suite.cfg());
  OnlineMonitor monitor(fixture().detector, &symbolizer);
  auto collection = workload::collect_traces(fixture().suite, 2, 13);
  std::size_t flagged = 0;
  std::size_t scored = 0;
  for (auto& trace : collection.traces) {
    for (auto event : trace.events) {
      event.caller.clear();  // arrives raw, as from a kernel feed
      const auto update = monitor.on_event(event);
      if (update.window_complete) {
        ++scored;
        flagged += update.flagged;
      }
    }
  }
  ASSERT_GT(scored, 10u);
  // With on-the-fly symbolization the benign stream still mostly passes.
  EXPECT_LT(static_cast<double>(flagged) / static_cast<double>(scored),
            0.1);
}

TEST(OnlineMonitorTest, HysteresisRequiresConsecutiveWindows) {
  MonitorOptions options;
  options.windows_to_alarm = 1000000;  // effectively never
  OnlineMonitor monitor(fixture().detector, nullptr, options);
  const auto attacks = attack::build_attack_traces(
      fixture().suite, attack::gzip_payloads(), 5);
  std::size_t alarms = 0;
  for (const auto& attack : attacks) {
    alarms += monitor.on_trace(attack.trace);
  }
  EXPECT_EQ(alarms, 0u);
  EXPECT_GT(monitor.stats().windows_flagged, 0u);
}

TEST(OnlineMonitorTest, CooldownSuppressesAlarmBursts) {
  MonitorOptions noisy;
  noisy.cooldown_events = 0;
  MonitorOptions calm;
  calm.cooldown_events = 1000000;

  const auto attacks = attack::build_attack_traces(
      fixture().suite, attack::gzip_payloads(), 3);

  OnlineMonitor monitor_noisy(fixture().detector, nullptr, noisy);
  OnlineMonitor monitor_calm(fixture().detector, nullptr, calm);
  std::size_t noisy_alarms = 0;
  std::size_t calm_alarms = 0;
  for (const auto& attack : attacks) {
    noisy_alarms += monitor_noisy.on_trace(attack.trace);
    calm_alarms += monitor_calm.on_trace(attack.trace);
  }
  EXPECT_LE(calm_alarms, noisy_alarms);
  EXPECT_LE(calm_alarms, 1u);
}

// Deterministic flagged-window generator: an unknown call name is outside
// the model's alphabet, so every complete window containing it is flagged.
trace::CallEvent unknown_event() {
  trace::CallEvent event;
  event.kind = ir::CallKind::kSyscall;
  event.name = "__never_trained__";
  event.caller = "main";
  return event;
}

/// Feeds `count` always-flagged events and returns the 1-based indices of
/// the events on which an alarm fired.
std::vector<std::size_t> alarm_positions(MonitorOptions options,
                                         std::size_t count) {
  OnlineMonitor monitor(fixture().detector, nullptr, options);
  std::vector<std::size_t> positions;
  for (std::size_t i = 1; i <= count; ++i) {
    if (monitor.on_event(unknown_event()).alarm) positions.push_back(i);
  }
  return positions;
}

// The documented cooldown/hysteresis interaction (see MonitorOptions): with
// windows_to_alarm=3 and cooldown_events=10 over a persistently flagged
// stream, the first alarm needs the window to fill (L events) plus a
// 3-window streak, and every later alarm fires exactly when the cooldown
// expires — never inside it, and without needing a fresh 3-window streak.
TEST(OnlineMonitorTest, CooldownAndHysteresisInteractAsDocumented) {
  const std::size_t window = fixture().detector.config().segments.length;
  MonitorOptions options;
  options.windows_to_alarm = 3;
  options.cooldown_events = 10;

  const auto positions = alarm_positions(options, window + 45);
  const std::size_t first = window + 2;  // 3rd flagged window
  EXPECT_EQ(positions,
            (std::vector<std::size_t>{first, first + 10, first + 20,
                                      first + 30, first + 40}));
}

TEST(OnlineMonitorTest, AlarmNeverRefiresInsideCooldownWindow) {
  MonitorOptions options;
  options.windows_to_alarm = 2;
  options.cooldown_events = 25;
  const auto positions = alarm_positions(options, 120);
  ASSERT_GE(positions.size(), 2u);
  for (std::size_t i = 1; i < positions.size(); ++i) {
    // Strictly no alarm until the cooldown has fully elapsed.
    EXPECT_GE(positions[i] - positions[i - 1], options.cooldown_events);
  }
}

TEST(OnlineMonitorTest, ZeroCooldownAlarmsEveryStreak) {
  const std::size_t window = fixture().detector.config().segments.length;
  MonitorOptions options;
  options.windows_to_alarm = 3;
  options.cooldown_events = 0;

  // Streak resets on each alarm, so alarms fire every 3 flagged windows.
  const auto positions = alarm_positions(options, window + 8);
  const std::size_t first = window + 2;
  EXPECT_EQ(positions,
            (std::vector<std::size_t>{first, first + 3, first + 6}));
}

TEST(OnlineMonitorTest, ResetWindowClearsCooldownAndStreak) {
  MonitorOptions options;
  options.windows_to_alarm = 1;
  options.cooldown_events = 1000000;
  OnlineMonitor monitor(fixture().detector, nullptr, options);
  const std::size_t window = fixture().detector.config().segments.length;
  std::size_t alarms = 0;
  for (std::size_t i = 0; i < window + 5; ++i) {
    alarms += monitor.on_event(unknown_event()).alarm;
  }
  EXPECT_EQ(alarms, 1u);  // the huge cooldown suppresses everything after

  monitor.reset_window();  // process restart: hysteresis state is forgotten
  for (std::size_t i = 0; i < window + 5; ++i) {
    alarms += monitor.on_event(unknown_event()).alarm;
  }
  EXPECT_EQ(alarms, 2u);
}

TEST(OnlineMonitorTest, OffStreamEventsAreIgnoredButCounted) {
  OnlineMonitor monitor(fixture().detector);  // syscall model
  trace::CallEvent libcall;
  libcall.kind = ir::CallKind::kLibcall;
  libcall.name = "malloc";
  libcall.caller = "main";
  for (int i = 0; i < 50; ++i) {
    const auto update = monitor.on_event(libcall);
    EXPECT_FALSE(update.window_complete);
  }
  EXPECT_EQ(monitor.stats().events_seen, 50u);
  EXPECT_EQ(monitor.stats().events_observed, 0u);
}

std::vector<trace::CallEvent> benign_events(std::uint64_t seed,
                                            std::size_t runs = 3) {
  std::vector<trace::CallEvent> events;
  for (const auto& trace :
       workload::collect_traces(fixture().suite, runs, seed).traces) {
    events.insert(events.end(), trace.events.begin(), trace.events.end());
  }
  return events;
}

TEST(OnlineMonitorTest, SnapshotRestoreResumesBitIdentically) {
  MonitorOptions options;
  options.windows_to_alarm = 2;
  options.cooldown_events = 5;
  const std::vector<trace::CallEvent> events = benign_events(13);
  ASSERT_GT(events.size(), 20u);
  const std::size_t cut = events.size() / 2 + 1;  // mid-window on purpose

  OnlineMonitor straight(fixture().detector, nullptr, options);
  OnlineMonitor interrupted(fixture().detector, nullptr, options);
  for (std::size_t i = 0; i < cut; ++i) {
    straight.on_event(events[i]);
    interrupted.on_event(events[i]);
  }

  // Freeze, destroy, resume on a brand-new monitor: every per-event update
  // (score, flagged, alarm, window_complete) must match the monitor that
  // was never interrupted.
  const MonitorSnapshot frozen = interrupted.snapshot();
  OnlineMonitor resumed(fixture().detector, nullptr, options);
  resumed.restore(frozen);
  for (std::size_t i = cut; i < events.size(); ++i) {
    const MonitorUpdate a = straight.on_event(events[i]);
    const MonitorUpdate b = resumed.on_event(events[i]);
    EXPECT_EQ(a.window_complete, b.window_complete) << i;
    EXPECT_EQ(a.log_likelihood, b.log_likelihood) << i;  // exact, not near
    EXPECT_EQ(a.flagged, b.flagged) << i;
    EXPECT_EQ(a.alarm, b.alarm) << i;
  }
  const MonitorSnapshot end_a = straight.snapshot();
  const MonitorSnapshot end_b = resumed.snapshot();
  EXPECT_EQ(end_a.window, end_b.window);
  EXPECT_EQ(end_a.consecutive_flagged, end_b.consecutive_flagged);
  EXPECT_EQ(end_a.cooldown_remaining, end_b.cooldown_remaining);
  EXPECT_EQ(end_a.stats.events_seen, end_b.stats.events_seen);
  EXPECT_EQ(end_a.stats.windows_scored, end_b.stats.windows_scored);
  EXPECT_EQ(end_a.stats.windows_flagged, end_b.stats.windows_flagged);
  EXPECT_EQ(end_a.stats.alarms, end_b.stats.alarms);
}

TEST(OnlineMonitorTest, RestoreRejectsForeignWindow) {
  OnlineMonitor monitor(fixture().detector);
  MonitorSnapshot foreign;
  // A window longer than this detector's segment length can only have come
  // from a different model.
  foreign.window.assign(
      fixture().detector.config().segments.length + 1, 0);
  EXPECT_THROW(monitor.restore(foreign), std::invalid_argument);
}

TEST(OnlineMonitorTest, RebindKeepsStatsAndCooldownResetsWindow) {
  MonitorOptions options;
  options.windows_to_alarm = 1;
  options.cooldown_events = 10000;
  OnlineMonitor monitor(fixture().detector, nullptr, options);
  // Drive to an alarm so a cooldown is pending.
  const auto attacks = attack::build_attack_traces(
      fixture().suite, attack::gzip_payloads(), 5);
  for (const auto& attack : attacks) {
    if (monitor.stats().alarms > 0) break;
    monitor.on_trace(attack.trace);
  }
  ASSERT_GT(monitor.stats().alarms, 0u);
  const MonitorStats before = monitor.stats();
  const std::size_t cooldown_before = monitor.snapshot().cooldown_remaining;
  ASSERT_GT(cooldown_before, 0u);

  monitor.rebind(fixture().detector);
  const MonitorSnapshot after = monitor.snapshot();
  EXPECT_TRUE(after.window.empty());            // old alphabet is dead
  EXPECT_EQ(after.consecutive_flagged, 0u);
  EXPECT_EQ(after.cooldown_remaining, cooldown_before);  // carries over
  EXPECT_EQ(after.stats.events_seen, before.events_seen);
  EXPECT_EQ(after.stats.alarms, before.alarms);
}

TEST(OnlineMonitorTest, StateBytesAndStorageRecycling) {
  OnlineMonitor monitor(fixture().detector);
  const std::size_t bytes = monitor.state_bytes();
  EXPECT_GE(bytes, sizeof(OnlineMonitor));
  for (const auto& event : benign_events(19, 1)) monitor.on_event(event);
  // Scoring may grow the scratch buffers, never shrink them — and once a
  // window has been scored, the kernel's two alpha rows must be part of
  // the per-session bill (the shared kernel image must NOT be).
  ASSERT_GT(monitor.stats().windows_scored, 0u);
  const std::size_t states = fixture().detector.model().num_states();
  EXPECT_GE(monitor.state_bytes(), bytes + 2 * states * sizeof(double));
  EXPECT_LT(monitor.state_bytes(), monitor.kernel()->image_bytes());

  MonitorStorage recycled = monitor.release_storage();
  EXPECT_GE(recycled.window.capacity(),
            fixture().detector.config().segments.length);
  EXPECT_GE(recycled.scratch.capacity(), 2 * states);
  // A monitor built from recycled storage behaves like a cold one.
  OnlineMonitor fresh(fixture().detector, nullptr, {}, std::move(recycled));
  EXPECT_EQ(fresh.stats().events_seen, 0u);
  EXPECT_TRUE(fresh.snapshot().window.empty());
}

std::vector<trace::CallEvent> mixed_stream() {
  // Benign traffic, then attack traffic, with a call the model has never
  // seen in any context sprinkled in — exercising the healthy, flagged,
  // and unknown-symbol (-inf) scoring branches of both paths.
  std::vector<trace::CallEvent> events = benign_events(29, 2);
  for (const auto& attack : attack::build_attack_traces(
           fixture().suite, attack::gzip_payloads(), 2)) {
    events.insert(events.end(), attack.trace.events.begin(),
                  attack.trace.events.end());
  }
  trace::CallEvent unseen;
  unseen.kind = ir::CallKind::kSyscall;
  unseen.name = "__not_in_any_profile__";
  unseen.caller = "nowhere";
  for (std::size_t i = 40; i < events.size(); i += 97) {
    events.insert(events.begin() + static_cast<std::ptrdiff_t>(i), unseen);
  }
  return events;
}

TEST(OnlineMonitorTest, KernelPathBitIdenticalToReferencePath) {
  // Decision tracing keeps the reference forward recursion (it needs the
  // full alpha matrix for the audit record); every other window goes
  // through the compiled ScoringKernel. Over the same stream the two paths
  // must agree EXACTLY — same double bits, not approximately.
  MonitorOptions audited;
  audited.decisions.enabled = true;
  audited.decisions.ring_capacity = 4;
  audited.decisions.sample_every = 0;
  OnlineMonitor reference(fixture().detector, nullptr, audited);
  OnlineMonitor fast(fixture().detector);

  std::size_t windows = 0;
  std::size_t unknown_windows = 0;
  std::size_t flagged_windows = 0;
  for (const auto& event : mixed_stream()) {
    const MonitorUpdate a = reference.on_event(event);
    const MonitorUpdate b = fast.on_event(event);
    ASSERT_EQ(a.window_complete, b.window_complete);
    if (!a.window_complete) continue;
    ++windows;
    unknown_windows += a.unknown_symbol;
    flagged_windows += a.flagged;
    EXPECT_FALSE(a.scored_by_kernel);
    EXPECT_TRUE(b.scored_by_kernel);
    EXPECT_EQ(a.log_likelihood, b.log_likelihood);  // exact, not near
    EXPECT_EQ(a.flagged, b.flagged);
    EXPECT_EQ(a.unknown_symbol, b.unknown_symbol);
    EXPECT_EQ(a.alarm, b.alarm);
  }
  // All three scoring branches must actually have been compared.
  ASSERT_GT(windows, 100u);
  ASSERT_GT(unknown_windows, 0u);
  ASSERT_GT(flagged_windows, unknown_windows);
}

TEST(OnlineMonitorTest, SnapshotRestoresIdenticallyOnBothScoringPaths) {
  // Window ids are interchangeable between the kernel and the reference
  // path (the kernel interns to the same ids and unknown sentinel as the
  // alphabet), so a snapshot from a kernel-scoring monitor must rescore
  // identically whether restored into a kernel or an audited monitor.
  const std::vector<trace::CallEvent> events = mixed_stream();
  const std::size_t cut = events.size() / 2 + 3;  // mid-window on purpose
  OnlineMonitor source(fixture().detector);
  for (std::size_t i = 0; i < cut; ++i) source.on_event(events[i]);
  const MonitorSnapshot frozen = source.snapshot();

  MonitorOptions audited;
  audited.decisions.enabled = true;
  audited.decisions.ring_capacity = 4;
  OnlineMonitor kernel_resumed(fixture().detector);
  OnlineMonitor reference_resumed(fixture().detector, nullptr, audited);
  kernel_resumed.restore(frozen);
  reference_resumed.restore(frozen);
  for (std::size_t i = cut; i < events.size(); ++i) {
    const MonitorUpdate a = reference_resumed.on_event(events[i]);
    const MonitorUpdate b = kernel_resumed.on_event(events[i]);
    ASSERT_EQ(a.window_complete, b.window_complete) << i;
    EXPECT_EQ(a.log_likelihood, b.log_likelihood) << i;
    EXPECT_EQ(a.flagged, b.flagged) << i;
    EXPECT_EQ(a.unknown_symbol, b.unknown_symbol) << i;
  }
  ASSERT_GT(kernel_resumed.stats().windows_scored,
            frozen.stats.windows_scored);
}

}  // namespace
}  // namespace cmarkov::core
