// Multi-sequence Baum-Welch training with Rabiner scaling.
//
// Convergence follows the paper's protocol: 20% of the normal data is held
// out as a termination set; after each iteration the model is evaluated on
// it and training stops when the average held-out log-likelihood no longer
// improves significantly. Accumulators carry a small pseudocount so that
// training never zeroes an entire row.
#pragma once

#include <cstddef>
#include <vector>

#include "src/hmm/hmm.hpp"

namespace cmarkov::hmm {

struct TrainingOptions {
  std::size_t max_iterations = 30;
  /// Minimum improvement of mean held-out log-likelihood per iteration for
  /// training to continue.
  double min_improvement = 1e-3;
  /// Dirichlet-style pseudocount added to every accumulator cell.
  double pseudocount = 1e-6;
  /// Consecutive non-improving iterations tolerated before stopping.
  std::size_t patience = 1;
};

struct TrainingReport {
  std::size_t iterations = 0;
  bool converged = false;
  /// Mean train log-likelihood after each iteration.
  std::vector<double> train_log_likelihood;
  /// Mean held-out log-likelihood after each iteration (empty if no
  /// held-out data was supplied).
  std::vector<double> holdout_log_likelihood;
  /// Sequences skipped because the current model scored them impossible.
  std::size_t skipped_sequences = 0;
};

/// Mean per-sequence log-likelihood over a set (impossible sequences count
/// with a large negative penalty instead of -infinity so means stay finite).
double mean_log_likelihood(const Hmm& model,
                           const std::vector<ObservationSeq>& sequences,
                           double impossible_penalty = -1e4);

/// Trains `model` in place on `sequences`; `holdout` drives termination
/// (may be empty: then training runs until max_iterations or train-set
/// improvement stalls).
TrainingReport baum_welch_train(Hmm& model,
                                const std::vector<ObservationSeq>& sequences,
                                const std::vector<ObservationSeq>& holdout,
                                const TrainingOptions& options = {});

}  // namespace cmarkov::hmm
