#include "src/analysis/conditional_probability.hpp"

namespace cmarkov::analysis {

double EdgeProbabilities::edge(cfg::BlockId from, cfg::BlockId to) const {
  if (from >= outgoing.size()) return 0.0;
  double total = 0.0;
  for (const auto& [succ, p] : outgoing[from]) {
    if (succ == to) total += p;  // parallel edges (branch with equal arms) sum
  }
  return total;
}

bool can_reach(const cfg::FunctionCfg& cfg, cfg::BlockId source,
               cfg::BlockId destination) {
  std::vector<bool> seen(cfg.block_count(), false);
  std::vector<cfg::BlockId> frontier{source};
  while (!frontier.empty()) {
    const cfg::BlockId node = frontier.back();
    frontier.pop_back();
    if (node == destination) return true;
    if (seen[node]) continue;
    seen[node] = true;
    for (cfg::BlockId succ : cfg.block(node).successors()) {
      if (!seen[succ]) frontier.push_back(succ);
    }
  }
  return false;
}

EdgeProbabilities conditional_probabilities(const cfg::FunctionCfg& cfg,
                                            const BranchHeuristic& heuristic) {
  EdgeProbabilities out;
  out.outgoing.resize(cfg.block_count());
  for (const auto& block : cfg.blocks) {
    if (const auto* branch = std::get_if<cfg::BranchTerm>(&block.terminator)) {
      // A branch edge "enters a loop" when its target can flow back to the
      // branch itself.
      const bool true_loops = can_reach(cfg, branch->if_true, block.id);
      const double p_true =
          heuristic.taken_probability(cfg, block, true_loops);
      out.outgoing[block.id].emplace_back(branch->if_true, p_true);
      out.outgoing[block.id].emplace_back(branch->if_false, 1.0 - p_true);
    } else if (const auto* jump =
                   std::get_if<cfg::JumpTerm>(&block.terminator)) {
      out.outgoing[block.id].emplace_back(jump->target, 1.0);
    }
    // ReturnTerm: no outgoing edges.
  }
  return out;
}

}  // namespace cmarkov::analysis
