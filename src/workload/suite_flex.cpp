// flex analogue: scanner-generator pipeline — parse a lexer spec, build NFA
// from rules, subset-construct a DFA, compress tables, emit the generated
// scanner. Deep call chains (main -> gen -> dfa -> nfa -> alloc) give libc
// calls many distinct contexts, the trait that makes context sensitivity
// shine on libcall models.
#include "src/workload/program_suite.hpp"

namespace cmarkov::workload {

namespace {

const char* const kFlexSource = R"(
fn main() {
  startup();
  parse_options();
  var ok = read_spec();
  if (ok > 0) {
    var rules = input() % 8 + 2;
    build_nfa(rules);
    var states = build_dfa(rules);
    check_backtracking(states);
    compress_tables(states);
    emit_scanner(states);
    write_summary();
  } else {
    usage_error();
  }
  cleanup();
  sys("exit_group");
}

fn parse_options() {
  var opts = input() % 4;
  while (opts > 0) {
    var kind = input() % 3;
    if (kind == 0) {
      lib("strcmp");
      lib("strcpy");
    } else {
      if (kind == 1) {
        lib("atoi");
      } else {
        lib("getenv");
      }
    }
    opts = opts - 1;
  }
}

fn check_backtracking(states) {
  var report = input() % 3;
  if (report == 0) {
    var fd = sys("open");
    if (fd > 0) {
      var rows = states % 4 + 1;
      while (rows > 0) {
        lib("fprintf");
        rows = rows - 1;
      }
      sys("write");
      sys("close");
    }
  }
}

fn startup() {
  sys("brk");
  sys("brk");
  lib("setlocale");
  lib("getenv");
  sys("rt_sigaction");
  sys("rt_sigaction");
  lib("malloc");
  lib("malloc");
}

fn read_spec() {
  var fd = sys("open");
  if (fd < 1) {
    return 0;
  }
  sys("fstat");
  var sections = input() % 3 + 1;
  while (sections > 0) {
    read_section();
    sections = sections - 1;
  }
  sys("close");
  return 1;
}

fn read_section() {
  var lines = input() % 6 + 1;
  while (lines > 0) {
    sys("read");
    var directive = input() % 5;
    if (directive == 0) {
      handle_start_condition();
    } else {
      tokenize_line();
    }
    lines = lines - 1;
  }
}

fn handle_start_condition() {
  lib("strtok");
  var exists = lib("strcmp");
  if (exists != 0) {
    lib("realloc");
    lib("strcpy");
  }
}

fn tokenize_line() {
  lib("strchr");
  var tokens = input() % 4 + 1;
  while (tokens > 0) {
    lib("strtok");
    intern_symbol();
    tokens = tokens - 1;
  }
}

fn intern_symbol() {
  var found = lib("strcmp");
  if (found != 0) {
    lib("malloc");
    lib("strcpy");
  }
}

fn build_nfa(rules) {
  while (rules > 0) {
    parse_rule();
    add_nfa_states();
    rules = rules - 1;
  }
}

fn parse_rule() {
  lib("strlen");
  var ops = input() % 5 + 1;
  while (ops > 0) {
    var kind = input() % 4;
    if (kind == 0) {
      mkclosure();
    } else {
      if (kind == 1) {
        mkor();
      } else {
        mkcat();
      }
    }
    ops = ops - 1;
  }
}

fn mkclosure() {
  alloc_machine();
  lib("memcpy");
}

fn mkor() {
  alloc_machine();
  alloc_machine();
}

fn mkcat() {
  lib("memcpy");
}

fn alloc_machine() {
  lib("realloc");
  lib("memset");
}

fn add_nfa_states() {
  lib("realloc");
}

fn build_dfa(rules) {
  lib("calloc");
  var states = rules * 2 + 1;
  var work = states;
  while (work > 0) {
    subset_step();
    work = work - 1;
  }
  return states;
}

fn subset_step() {
  epsilon_closure();
  var moves = input() % 3 + 1;
  while (moves > 0) {
    lib("memcmp");
    moves = moves - 1;
  }
  lib("qsort");
}

fn epsilon_closure() {
  lib("memset");
  lib("memcpy");
}

fn compress_tables(states) {
  var rows = states % 7 + 1;
  while (rows > 0) {
    lib("memcmp");
    var dup = input() % 3;
    if (dup == 0) {
      lib("memcpy");
    }
    rows = rows - 1;
  }
  lib("realloc");
}

fn emit_scanner(states) {
  var ofd = sys("open");
  if (ofd < 1) {
    usage_error();
    return;
  }
  emit_prologue();
  var chunks = states % 5 + 2;
  while (chunks > 0) {
    emit_tables();
    chunks = chunks - 1;
  }
  emit_epilogue();
  sys("close");
}

fn emit_prologue() {
  lib("fprintf");
  sys("write");
}

fn emit_tables() {
  lib("sprintf");
  sys("write");
}

fn emit_epilogue() {
  lib("fprintf");
  sys("write");
  lib("fflush");
}

fn write_summary() {
  var verbose = input() % 2;
  if (verbose == 1) {
    lib("fprintf");
    lib("fprintf");
  }
}

fn usage_error() {
  lib("fprintf");
  lib("strerror");
}

fn cleanup() {
  lib("free");
  lib("free");
  lib("free");
  sys("close");
}
)";

}  // namespace

ProgramSuite make_flex_suite() {
  SuiteInfo info;
  info.name = "flex";
  info.description =
      "scanner generator: spec parsing, NFA/DFA construction, table "
      "compression, code emission";
  info.paper_test_cases = 325;
  InputSpec spec;
  spec.min_inputs = 12;
  spec.max_inputs = 72;
  spec.max_value = 99;
  return ProgramSuite(info, kFlexSource, spec);
}

}  // namespace cmarkov::workload
