// Unit tests for CallSymbol, CallFilter and the sparse labeled
// CallTransitionMatrix, plus the STILO context-insensitive projection.
#include <gtest/gtest.h>

#include "src/analysis/context.hpp"

namespace cmarkov::analysis {
namespace {

TEST(CallSymbolTest, FactoryAndToString) {
  const auto entry = CallSymbol::entry("main");
  const auto exit = CallSymbol::exit();
  const auto ext =
      CallSymbol::external(ir::CallKind::kSyscall, "read", "f");
  const auto internal = CallSymbol::internal("helper");
  EXPECT_EQ(entry.to_string(), "ENTRY(main)");
  EXPECT_EQ(exit.to_string(), "EXIT");
  EXPECT_EQ(ext.to_string(), "sys:read@f");
  EXPECT_EQ(internal.to_string(), "<helper>");
}

TEST(CallSymbolTest, OrderingDistinguishesContext) {
  const auto read_f = CallSymbol::external(ir::CallKind::kSyscall, "read", "f");
  const auto read_g = CallSymbol::external(ir::CallKind::kSyscall, "read", "g");
  EXPECT_NE(read_f, read_g);
  EXPECT_EQ(read_f.without_context(), read_g.without_context());
}

TEST(CallSymbolTest, KindDistinguishesSysAndLib) {
  const auto sys_open =
      CallSymbol::external(ir::CallKind::kSyscall, "open", "f");
  const auto lib_open =
      CallSymbol::external(ir::CallKind::kLibcall, "open", "f");
  EXPECT_NE(sys_open, lib_open);
  EXPECT_EQ(lib_open.to_string(), "lib:open@f");
}

TEST(CallFilterTest, Matching) {
  EXPECT_TRUE(filter_matches(CallFilter::kSyscalls, ir::CallKind::kSyscall));
  EXPECT_FALSE(filter_matches(CallFilter::kSyscalls, ir::CallKind::kLibcall));
  EXPECT_TRUE(filter_matches(CallFilter::kLibcalls, ir::CallKind::kLibcall));
  EXPECT_FALSE(filter_matches(CallFilter::kLibcalls, ir::CallKind::kSyscall));
  EXPECT_TRUE(filter_matches(CallFilter::kAll, ir::CallKind::kSyscall));
  EXPECT_TRUE(filter_matches(CallFilter::kAll, ir::CallKind::kLibcall));
  EXPECT_EQ(call_filter_name(CallFilter::kSyscalls), "syscall");
  EXPECT_EQ(call_filter_name(CallFilter::kLibcalls), "libcall");
}

TEST(CallTransitionMatrixTest, AddSymbolIsIdempotent) {
  CallTransitionMatrix m;
  const auto sym = CallSymbol::external(ir::CallKind::kSyscall, "a", "f");
  const auto i1 = m.add_symbol(sym);
  const auto i2 = m.add_symbol(sym);
  EXPECT_EQ(i1, i2);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.index_of(sym), i1);
}

TEST(CallTransitionMatrixTest, UnknownSymbolThrows) {
  CallTransitionMatrix m;
  EXPECT_THROW(m.index_of(CallSymbol::entry("x")), std::out_of_range);
  EXPECT_FALSE(m.contains(CallSymbol::entry("x")));
}

TEST(CallTransitionMatrixTest, ProbAccumulationAndOverwrite) {
  CallTransitionMatrix m;
  const auto a = m.add_symbol(CallSymbol::internal("a"));
  const auto b = m.add_symbol(CallSymbol::internal("b"));
  EXPECT_DOUBLE_EQ(m.prob(a, b), 0.0);
  m.add_prob(a, b, 0.25);
  m.add_prob(a, b, 0.25);
  EXPECT_DOUBLE_EQ(m.prob(a, b), 0.5);
  m.set_prob(a, b, 0.1);
  EXPECT_DOUBLE_EQ(m.prob(a, b), 0.1);
  m.set_prob(a, b, 0.0);
  EXPECT_DOUBLE_EQ(m.prob(a, b), 0.0);
  EXPECT_EQ(m.nonzero_count(), 0u);
}

TEST(CallTransitionMatrixTest, RowAndColumnSums) {
  CallTransitionMatrix m;
  const auto a = m.add_symbol(CallSymbol::internal("a"));
  const auto b = m.add_symbol(CallSymbol::internal("b"));
  const auto c = m.add_symbol(CallSymbol::internal("c"));
  m.set_prob(a, b, 0.3);
  m.set_prob(a, c, 0.7);
  m.set_prob(b, c, 1.0);
  EXPECT_DOUBLE_EQ(m.row_sum(a), 1.0);
  EXPECT_DOUBLE_EQ(m.col_sum(c), 1.7);
  EXPECT_DOUBLE_EQ(m.col_sum(a), 0.0);
}

TEST(CallTransitionMatrixTest, DenseConversionMatches) {
  CallTransitionMatrix m;
  const auto a = m.add_symbol(CallSymbol::internal("a"));
  const auto b = m.add_symbol(CallSymbol::internal("b"));
  m.set_prob(a, b, 0.4);
  m.set_prob(b, a, 0.6);
  const Matrix dense = m.to_dense();
  EXPECT_DOUBLE_EQ(dense(a, b), 0.4);
  EXPECT_DOUBLE_EQ(dense(b, a), 0.6);
  EXPECT_DOUBLE_EQ(dense(a, a), 0.0);
}

TEST(CallTransitionMatrixTest, ExternalIndicesFiltersKinds) {
  CallTransitionMatrix m;
  m.add_symbol(CallSymbol::entry("f"));
  const auto e1 =
      m.add_symbol(CallSymbol::external(ir::CallKind::kSyscall, "a", "f"));
  m.add_symbol(CallSymbol::internal("g"));
  const auto e2 =
      m.add_symbol(CallSymbol::external(ir::CallKind::kLibcall, "b", "f"));
  m.add_symbol(CallSymbol::exit("f"));
  EXPECT_EQ(m.external_indices(), (std::vector<std::size_t>{e1, e2}));
}

TEST(ProjectionTest, MergesContextsAndSumsProbabilities) {
  CallTransitionMatrix m;
  const auto entry = m.add_symbol(CallSymbol::entry("main"));
  const auto read_f =
      m.add_symbol(CallSymbol::external(ir::CallKind::kSyscall, "read", "f"));
  const auto read_g =
      m.add_symbol(CallSymbol::external(ir::CallKind::kSyscall, "read", "g"));
  const auto write_f =
      m.add_symbol(CallSymbol::external(ir::CallKind::kSyscall, "write", "f"));
  m.set_prob(entry, read_f, 0.5);
  m.set_prob(entry, read_g, 0.5);
  m.set_prob(read_f, write_f, 0.5);
  m.set_prob(read_g, write_f, 0.5);

  const CallTransitionMatrix projected = project_context_insensitive(m);
  const auto read =
      CallSymbol::external(ir::CallKind::kSyscall, "read", "");
  const auto write =
      CallSymbol::external(ir::CallKind::kSyscall, "write", "");
  EXPECT_EQ(projected.size(), 3u);  // ENTRY, read, write
  EXPECT_DOUBLE_EQ(projected.prob(CallSymbol::entry("main"), read), 1.0);
  EXPECT_DOUBLE_EQ(projected.prob(read, write), 1.0);
}

TEST(ProjectionTest, PreservesEntryExitAndInternalSymbols) {
  CallTransitionMatrix m;
  m.add_symbol(CallSymbol::entry("main"));
  m.add_symbol(CallSymbol::exit("main"));
  m.add_symbol(CallSymbol::internal("helper"));
  const CallTransitionMatrix projected = project_context_insensitive(m);
  EXPECT_TRUE(projected.contains(CallSymbol::entry("main")));
  EXPECT_TRUE(projected.contains(CallSymbol::exit("main")));
  EXPECT_TRUE(projected.contains(CallSymbol::internal("helper")));
}

TEST(CallTransitionMatrixTest, ToStringListsNonZeroCells) {
  CallTransitionMatrix m;
  const auto a = m.add_symbol(CallSymbol::internal("a"));
  const auto b = m.add_symbol(CallSymbol::internal("b"));
  m.set_prob(a, b, 0.5);
  const std::string text = m.to_string();
  EXPECT_NE(text.find("<a> -> <b> : 0.5"), std::string::npos);
}

}  // namespace
}  // namespace cmarkov::analysis
