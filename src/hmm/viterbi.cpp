#include "src/hmm/viterbi.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace cmarkov::hmm {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double safe_log(double v) { return v > 0.0 ? std::log(v) : kNegInf; }

}  // namespace

ViterbiResult viterbi_decode(const Hmm& model,
                             std::span<const std::size_t> observations) {
  ViterbiResult result;
  const std::size_t n = model.num_states();
  const std::size_t t_len = observations.size();
  if (t_len == 0) return result;
  for (std::size_t symbol : observations) {
    if (symbol >= model.num_symbols()) {
      throw std::out_of_range("viterbi_decode: observation id out of range");
    }
  }

  Matrix delta(t_len, n, kNegInf);
  std::vector<std::vector<std::size_t>> parent(
      t_len, std::vector<std::size_t>(n, 0));

  for (std::size_t i = 0; i < n; ++i) {
    delta(0, i) =
        safe_log(model.initial[i]) + safe_log(model.emission(i, observations[0]));
  }
  for (std::size_t t = 1; t < t_len; ++t) {
    for (std::size_t j = 0; j < n; ++j) {
      double best = kNegInf;
      std::size_t best_i = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double v = delta(t - 1, i) + safe_log(model.transition(i, j));
        if (v > best) {
          best = v;
          best_i = i;
        }
      }
      delta(t, j) = best + safe_log(model.emission(j, observations[t]));
      parent[t][j] = best_i;
    }
  }

  double best = kNegInf;
  std::size_t best_state = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (delta(t_len - 1, i) > best) {
      best = delta(t_len - 1, i);
      best_state = i;
    }
  }
  result.log_probability = best;
  if (std::isinf(best)) return result;  // impossible: no meaningful path

  result.path.resize(t_len);
  result.path[t_len - 1] = best_state;
  for (std::size_t t = t_len - 1; t-- > 0;) {
    result.path[t] = parent[t + 1][result.path[t + 1]];
  }
  return result;
}

}  // namespace cmarkov::hmm
