#include "src/eval/model_zoo.hpp"

#include <stdexcept>

#include "src/hmm/forward_backward.hpp"

namespace cmarkov::eval {

std::string model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kCMarkov:
      return "CMarkov";
    case ModelKind::kStilo:
      return "STILO";
    case ModelKind::kRegularContext:
      return "Regular-context";
    case ModelKind::kRegularBasic:
      return "Regular-basic";
    case ModelKind::kRegularSite:
      return "Regular-site";
    case ModelKind::kRegularDeep:
      return "Regular-deep";
  }
  return "?";
}

hmm::ObservationEncoding encoding_of(ModelKind kind) {
  switch (kind) {
    case ModelKind::kCMarkov:
    case ModelKind::kRegularContext:
      return hmm::ObservationEncoding::kContextSensitive;
    case ModelKind::kStilo:
    case ModelKind::kRegularBasic:
      return hmm::ObservationEncoding::kContextFree;
    case ModelKind::kRegularSite:
      return hmm::ObservationEncoding::kSiteSensitive;
    case ModelKind::kRegularDeep:
      return hmm::ObservationEncoding::kDeepContext;
  }
  return hmm::ObservationEncoding::kContextFree;
}

bool is_statically_initialized(ModelKind kind) {
  return kind == ModelKind::kCMarkov || kind == ModelKind::kStilo;
}

const std::vector<ModelKind>& all_model_kinds() {
  static const std::vector<ModelKind> kinds = {
      ModelKind::kCMarkov, ModelKind::kStilo, ModelKind::kRegularContext,
      ModelKind::kRegularBasic};
  return kinds;
}

const std::vector<ModelKind>& extended_model_kinds() {
  static const std::vector<ModelKind> kinds = {
      ModelKind::kCMarkov,      ModelKind::kStilo,
      ModelKind::kRegularContext, ModelKind::kRegularBasic,
      ModelKind::kRegularSite,  ModelKind::kRegularDeep};
  return kinds;
}

hmm::ObservationSeq BuiltModel::encode(const trace::Trace& trace) const {
  return trace::encode_trace_frozen(trace, filter, encoding, alphabet,
                                    alphabet.size());
}

hmm::ObservationSeq BuiltModel::encode(
    const attack::EventSegment& segment) const {
  trace::Trace wrapper;
  wrapper.events = segment;
  return encode(wrapper);
}

double BuiltModel::score(const hmm::ObservationSeq& segment) const {
  for (std::size_t id : segment) {
    if (id >= hmm.num_symbols()) {
      // Unknown observation (out-of-alphabet call or out-of-context pair):
      // the model assigns it probability zero.
      return -std::numeric_limits<double>::infinity();
    }
  }
  return hmm::sequence_log_likelihood(hmm, segment);
}

namespace {

/// Interns every observation appearing in the traces under the model's
/// encoding, so the emission matrix covers the dynamic vocabulary.
void intern_trace_symbols(const std::vector<trace::Trace>& traces,
                          analysis::CallFilter filter,
                          hmm::ObservationEncoding encoding,
                          hmm::Alphabet& alphabet) {
  for (const auto& trace : traces) {
    trace::encode_trace(trace, filter, encoding, alphabet);
  }
}

BuiltModel build_static_model(ModelKind kind,
                              const workload::ProgramSuite& suite,
                              const std::vector<trace::Trace>& traces,
                              const ModelBuildOptions& options, Rng& rng) {
  BuiltModel model;
  model.kind = kind;
  model.filter = options.filter;
  model.encoding = encoding_of(kind);

  analysis::FunctionMatrixOptions matrix_options = options.matrix;
  matrix_options.filter = options.filter;

  const auto heuristic = analysis::make_branch_heuristic(
      matrix_options.heuristic, matrix_options.loop_probability);
  analysis::AggregatedProgram aggregated = analysis::aggregate_program(
      suite.cfg(), suite.call_graph(), *heuristic, matrix_options);

  analysis::CallTransitionMatrix program_matrix =
      kind == ModelKind::kStilo
          ? analysis::project_context_insensitive(aggregated.program_matrix)
          : std::move(aggregated.program_matrix);

  model.static_calls = program_matrix.external_indices().size();

  reduction::ClusteringOptions clustering_options = options.clustering;
  clustering_options.exec.adopt_runtime(options.exec);
  reduction::CallClustering clustering =
      kind == ModelKind::kCMarkov
          ? reduction::cluster_calls(program_matrix, rng, clustering_options)
          : reduction::identity_clustering(program_matrix);

  const reduction::ReducedModel reduced =
      reduction::reconstruct_reduced_model(program_matrix, clustering);

  intern_trace_symbols(traces, options.filter, model.encoding,
                       model.alphabet);
  hmm::StaticInitResult init = hmm::statically_initialized_hmm(
      reduced, model.encoding, model.alphabet, options.static_init);
  model.hmm = std::move(init.model);
  model.state_labels = std::move(init.state_labels);
  model.num_states = model.hmm.num_states();
  return model;
}

BuiltModel build_regular_model(ModelKind kind,
                               const std::vector<trace::Trace>& traces,
                               const ModelBuildOptions& options, Rng& rng) {
  BuiltModel model;
  model.kind = kind;
  model.filter = options.filter;
  model.encoding = encoding_of(kind);

  intern_trace_symbols(traces, options.filter, model.encoding,
                       model.alphabet);
  if (model.alphabet.size() == 0) {
    throw std::invalid_argument(
        "build_model: traces contain no observable calls under this filter");
  }
  // The regular HMM's hidden-state count is the size of the observed call
  // set (Section V-A).
  model.num_states = model.alphabet.size();
  model.hmm = hmm::randomly_initialized_hmm(
      model.num_states, model.alphabet.size(), rng, options.random_init);
  return model;
}

}  // namespace

BuiltModel build_model(ModelKind kind, const workload::ProgramSuite& suite,
                       const std::vector<trace::Trace>& training_traces,
                       const ModelBuildOptions& options, Rng& rng) {
  if (is_statically_initialized(kind)) {
    return build_static_model(kind, suite, training_traces, options, rng);
  }
  return build_regular_model(kind, training_traces, options, rng);
}

}  // namespace cmarkov::eval
