// Table V: runtime of CMarkov's static analysis operations per program and
// call stream — CFG construction, probability estimation (per-function
// call-transition matrices), aggregation, clustering and HMM
// initialization. The paper reports most operations finishing in seconds.
#include <iostream>

#include "src/core/pipeline.hpp"
#include "src/eval/comparison.hpp"
#include "src/util/strings.hpp"
#include "src/util/table_printer.hpp"
#include "src/workload/program_suite.hpp"

using namespace cmarkov;

int main(int argc, char** argv) {
  const bool full = eval::full_mode_enabled(argc, argv);
  const int repeats = full ? 20 : 5;
  std::cout << "=== Table V: static-analysis runtime per program (mean of "
            << repeats << " runs, milliseconds) ===\n\n";

  for (const auto filter :
       {analysis::CallFilter::kLibcalls, analysis::CallFilter::kSyscalls}) {
    std::cout << "--- " << analysis::call_filter_name(filter)
              << " models ---\n";
    TablePrinter table({"Program", "CFG construction", "Probability",
                        "Aggregation", "Clustering", "HMM init", "Total"});
    for (const auto& name : workload::all_suite_names()) {
      const workload::ProgramSuite suite = workload::make_suite(name);
      PhaseTimer accumulated;
      for (int r = 0; r < repeats; ++r) {
        core::PipelineConfig config;
        config.filter = filter;
        config.clustering.min_calls_for_reduction = 0;  // exercise clustering
        Rng rng(static_cast<std::uint64_t>(r));
        const auto result =
            core::run_static_pipeline(suite.module(), config, rng);
        for (const auto& [phase, seconds] : result.timings.totals()) {
          accumulated.add(phase, seconds);
        }
      }
      auto mean_ms = [&](const char* phase) {
        return accumulated.total(phase) / repeats * 1e3;
      };
      const double total = mean_ms("cfg") + mean_ms("probability") +
                           mean_ms("aggregation") + mean_ms("clustering") +
                           mean_ms("initialization");
      table.add_row({name, format_double(mean_ms("cfg"), 3),
                     format_double(mean_ms("probability"), 3),
                     format_double(mean_ms("aggregation"), 3),
                     format_double(mean_ms("clustering"), 3),
                     format_double(mean_ms("initialization"), 3),
                     format_double(total, 3)});
    }
    table.print();
    std::cout << "\n";
  }
  std::cout << "Shape check: every operation completes in milliseconds on\n"
               "the synthetic programs (the paper reports seconds on real\n"
               "binaries); aggregation and probability estimation dominate.\n";
  return 0;
}
