#include "src/core/online_monitor.hpp"

#include <stdexcept>

#include "src/obs/metrics_registry.hpp"

namespace cmarkov::core {

OnlineMonitor::OnlineMonitor(const Detector& detector,
                             const trace::Symbolizer* symbolizer,
                             MonitorOptions options)
    : detector_(detector), symbolizer_(symbolizer), options_(options) {
  if (!detector.trained()) {
    throw std::invalid_argument("OnlineMonitor: detector is not trained");
  }
  if (options_.windows_to_alarm == 0) {
    throw std::invalid_argument("OnlineMonitor: windows_to_alarm must be >0");
  }
  if (options_.metrics != nullptr) {
    events_counter_ = &options_.metrics->counter("cmarkov_monitor_events_total");
    windows_counter_ =
        &options_.metrics->counter("cmarkov_monitor_windows_total");
    flagged_counter_ =
        &options_.metrics->counter("cmarkov_monitor_windows_flagged_total");
    alarms_counter_ = &options_.metrics->counter("cmarkov_monitor_alarms_total");
  }
}

MonitorUpdate OnlineMonitor::on_event(trace::CallEvent event) {
  MonitorUpdate update;
  stats_.events_seen += 1;
  if (events_counter_ != nullptr) events_counter_->add(1);
  if (cooldown_remaining_ > 0) --cooldown_remaining_;

  const auto& config = detector_.config();
  if (!analysis::filter_matches(config.pipeline.filter, event.kind)) {
    return update;
  }
  stats_.events_observed += 1;

  if (event.caller.empty() && symbolizer_ != nullptr) {
    event.caller = symbolizer_->resolve(event.site_address)
                       .value_or(trace::kUnknownCaller);
  }

  const std::string observation = hmm::encode_observation(
      event.name, event.caller,
      config.pipeline.context_sensitive
          ? hmm::ObservationEncoding::kContextSensitive
          : hmm::ObservationEncoding::kContextFree);
  const std::size_t id = detector_.alphabet()
                             .find(observation)
                             .value_or(detector_.alphabet().size());
  window_.push_back(id);
  if (window_.size() > config.segments.length) window_.pop_front();
  if (window_.size() < config.segments.length) return update;

  update.window_complete = true;
  const hmm::ObservationSeq segment(window_.begin(), window_.end());
  const bool tracing =
      options_.decisions.enabled && options_.decisions.ring_capacity > 0;
  hmm::ForwardResult forward;
  const SegmentVerdict verdict =
      tracing ? detector_.score_segment(segment, &forward)
              : detector_.score_segment(segment);
  update.log_likelihood = verdict.log_likelihood;
  update.flagged = verdict.flagged;
  update.unknown_symbol = verdict.unknown_symbol;
  stats_.windows_scored += 1;
  if (windows_counter_ != nullptr) windows_counter_->add(1);

  if (verdict.flagged) {
    stats_.windows_flagged += 1;
    if (flagged_counter_ != nullptr) flagged_counter_->add(1);
    consecutive_flagged_ += 1;
    if (consecutive_flagged_ >= options_.windows_to_alarm &&
        cooldown_remaining_ == 0) {
      update.alarm = true;
      stats_.alarms += 1;
      if (alarms_counter_ != nullptr) alarms_counter_->add(1);
      cooldown_remaining_ = options_.cooldown_events;
      consecutive_flagged_ = 0;
    }
  } else {
    consecutive_flagged_ = 0;
  }

  if (tracing) {
    const bool sampled =
        options_.decisions.sample_every > 0 &&
        stats_.windows_scored % options_.decisions.sample_every == 0;
    const bool forced = options_.decisions.always_on_flagged &&
                        (verdict.flagged || update.alarm);
    if (sampled || forced) {
      obs::DecisionRecord record =
          detector_.make_decision_record(segment, verdict, forward);
      record.window_index = stats_.windows_scored;
      record.alarm = update.alarm;
      record.sampled = sampled;
      decisions_.push_back(std::move(record));
      while (decisions_.size() > options_.decisions.ring_capacity) {
        decisions_.pop_front();
      }
      update.decision = &decisions_.back();
    }
  }
  return update;
}

std::size_t OnlineMonitor::on_trace(const trace::Trace& trace) {
  std::size_t alarms = 0;
  for (const auto& event : trace.events) {
    if (on_event(event).alarm) ++alarms;
  }
  return alarms;
}

void OnlineMonitor::reset_window() {
  window_.clear();
  consecutive_flagged_ = 0;
  cooldown_remaining_ = 0;
}

}  // namespace cmarkov::core
