// DecisionRecord — the per-window audit record behind every anomaly
// verdict (ISSUE 5). Where the detector's SegmentVerdict answers "was this
// window anomalous", a DecisionRecord answers "why": one entry per window
// symbol carrying its forward log-probability contribution (log c_t, the
// scale factor of Rabiner's normalized forward recursion — the per-symbol
// contributions sum EXACTLY to the window log-likelihood because the
// likelihood is computed as that very sum), the most probable
// cluster-reduced hidden state after consuming the symbol, and whether the
// symbol is a call@caller pair the model has never seen.
//
// Records render as one JSON line each (`cmarkov.decision.v1`); the
// rendering is deterministic (fixed key order, locale-independent numbers,
// infinities as the string "-inf"/"inf") so sinks can be golden-tested.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace cmarkov::obs {

/// Schema tag stamped into every JSONL decision line. Bump on any change
/// of key meaning; adding keys is backward compatible.
inline constexpr std::string_view kDecisionSchema = "cmarkov.decision.v1";

/// One window symbol's share of the verdict.
struct SymbolContribution {
  std::size_t position = 0;  ///< index within the scored window
  std::size_t symbol = 0;    ///< alphabet id (>= alphabet size when unknown)
  /// "callee@caller" ("<unknown>" when unnamed). A view into the producing
  /// detector's alphabet (or a string literal), NOT an owned copy: records
  /// are assembled on the scoring hot path for every sampled window, and
  /// copying 15+ label strings per window would dominate the tracing
  /// budget. Valid as long as that detector is alive — which every holder
  /// (monitor ring, service decision log, CLI replay) already guarantees.
  std::string_view label;
  /// log c_t: this symbol's additive share of the window log-likelihood.
  /// For an impossible window only the first failing symbol carries -inf
  /// (later positions report 0), so the sum still equals the window's -inf
  /// log-likelihood.
  double log_prob = 0.0;
  /// argmax_i alpha(t, i): most probable (cluster-reduced) hidden state
  /// after consuming this symbol; 0 when the forward pass never got here.
  std::size_t state = 0;
  /// Call@caller pair outside the model's vocabulary (the paper's
  /// out-of-context detection).
  bool unknown = false;
};

/// Full audit record for one scored window.
struct DecisionRecord {
  /// Ordinal of the scored window within its monitor (1-based,
  /// == MonitorStats::windows_scored at scoring time).
  std::uint64_t window_index = 0;
  std::string session;   ///< cmarkovd session id; empty outside the daemon
  std::string trace_id;  ///< protocol tid= value; empty when not supplied
  double log_likelihood = 0.0;
  double threshold = 0.0;
  /// log_likelihood - threshold (negative = below threshold = flagged).
  double margin = 0.0;
  bool flagged = false;
  bool unknown_symbol = false;
  bool alarm = false;
  /// True when the record exists because of 1-in-N sampling (as opposed to
  /// the always-on flagged/alarm path).
  bool sampled = false;
  std::vector<SymbolContribution> symbols;

  /// Sum of per-symbol log_prob values — equals log_likelihood (exactly
  /// for finite windows: same addends, same order).
  double contribution_sum() const;
};

/// Renders `value` for the decision schema: %.10g for finite values,
/// quoted "inf"/"-inf"/"nan" otherwise (JSON has no infinity literal).
std::string format_decision_value(double value);

/// One `cmarkov.decision.v1` JSON line (no trailing newline). Key order is
/// fixed and the output is byte-deterministic for a given record.
std::string decision_record_json(const DecisionRecord& record);

}  // namespace cmarkov::obs
