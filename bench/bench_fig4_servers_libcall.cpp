// Figure 4: proftpd and nginx, library-call models. Expected shape:
// context-sensitive models (CMarkov, Regular-context) outperform the
// context-free ones by a significant margin on libcalls.
#include "bench/figure_common.hpp"

int main(int argc, char** argv) {
  cmarkov::benchfig::run_figure(
      "Figure 4: server programs, libcall accuracy",
      cmarkov::workload::server_suite_names(),
      cmarkov::analysis::CallFilter::kLibcalls, argc, argv);
  return 0;
}
