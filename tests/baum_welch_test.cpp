// Unit tests for multi-sequence Baum-Welch training with held-out
// termination (the paper's training protocol).
#include <gtest/gtest.h>

#include <cmath>

#include "src/hmm/baum_welch.hpp"
#include "src/hmm/forward_backward.hpp"
#include "src/hmm/random_init.hpp"
#include "src/hmm/trainer.hpp"
#include "src/util/rng.hpp"

namespace cmarkov::hmm {
namespace {

/// Generates sequences from a known 2-state model.
std::vector<ObservationSeq> sample_sequences(const Hmm& model, Rng& rng,
                                             std::size_t count,
                                             std::size_t length) {
  std::vector<ObservationSeq> out;
  for (std::size_t s = 0; s < count; ++s) {
    ObservationSeq seq;
    std::vector<double> init = model.initial;
    std::size_t state = rng.weighted_index(init);
    for (std::size_t t = 0; t < length; ++t) {
      std::vector<double> em(model.num_symbols());
      for (std::size_t k = 0; k < em.size(); ++k) {
        em[k] = model.emission(state, k);
      }
      seq.push_back(rng.weighted_index(em));
      std::vector<double> tr(model.num_states());
      for (std::size_t j = 0; j < tr.size(); ++j) {
        tr[j] = model.transition(state, j);
      }
      state = rng.weighted_index(tr);
    }
    out.push_back(std::move(seq));
  }
  return out;
}

Hmm ground_truth() {
  Hmm model;
  model.transition = Matrix::from_rows({{0.9, 0.1}, {0.2, 0.8}});
  model.emission = Matrix::from_rows({{0.95, 0.05}, {0.1, 0.9}});
  model.initial = {0.7, 0.3};
  return model;
}

TEST(BaumWelchTest, TrainingImprovesLikelihood) {
  Rng rng(1);
  const auto data = sample_sequences(ground_truth(), rng, 40, 20);
  Hmm model = randomly_initialized_hmm(2, 2, rng);
  const double before = mean_log_likelihood(model, data);
  TrainingOptions options;
  options.max_iterations = 20;
  Trainer trainer(model, options);
  const TrainingReport report = trainer.fit(data);
  const double after = mean_log_likelihood(trainer.model(), data);
  EXPECT_GT(after, before);
  EXPECT_GE(report.iterations, 1u);
  EXPECT_NO_THROW(trainer.model().validate(1e-6));
}

TEST(BaumWelchTest, LikelihoodIsMonotoneNonDecreasing) {
  Rng rng(2);
  const auto data = sample_sequences(ground_truth(), rng, 30, 15);
  Hmm model = randomly_initialized_hmm(2, 2, rng);
  TrainingOptions options;
  options.max_iterations = 15;
  options.min_improvement = -1.0;  // never early-stop
  options.patience = 1000;
  Trainer trainer(model, options);
  const TrainingReport report = trainer.fit(data);
  for (std::size_t i = 1; i < report.train_log_likelihood.size(); ++i) {
    EXPECT_GE(report.train_log_likelihood[i],
              report.train_log_likelihood[i - 1] - 1e-6)
        << "iteration " << i;
  }
}

TEST(BaumWelchTest, RecoversDominantStructure) {
  // Baum-Welch is a local optimizer, so allow a few random restarts and
  // require that the best-likelihood solution recovers the structure.
  Rng rng(3);
  const Hmm truth = ground_truth();
  const auto data = sample_sequences(truth, rng, 120, 30);
  Hmm best;
  double best_ll = -std::numeric_limits<double>::infinity();
  for (int restart = 0; restart < 5; ++restart) {
    TrainingOptions options;
    options.max_iterations = 60;
    options.min_improvement = 1e-7;
    options.patience = 3;
    Trainer trainer(randomly_initialized_hmm(2, 2, rng), options);
    trainer.fit(data);
    const Hmm model = trainer.model();
    const double ll = mean_log_likelihood(model, data);
    if (ll > best_ll) {
      best_ll = ll;
      best = model;
    }
  }
  // Up to state relabeling, each state should emit one dominant symbol.
  const double e00 = best.emission(0, 0);
  const double e11 = best.emission(1, 1);
  const double e01 = best.emission(0, 1);
  const double e10 = best.emission(1, 0);
  const bool direct = e00 > 0.75 && e11 > 0.75;
  const bool swapped = e01 > 0.75 && e10 > 0.75;
  EXPECT_TRUE(direct || swapped)
      << "emissions: " << best.emission.to_string(3);
}

TEST(BaumWelchTest, HoldoutTerminationStopsEarly) {
  Rng rng(4);
  const auto data = sample_sequences(ground_truth(), rng, 60, 20);
  std::vector<ObservationSeq> train(data.begin(), data.begin() + 45);
  std::vector<ObservationSeq> holdout(data.begin() + 45, data.end());
  Hmm model = randomly_initialized_hmm(2, 2, rng);
  TrainingOptions options;
  options.max_iterations = 200;
  options.min_improvement = 1e-3;
  Trainer trainer(model, options);
  const TrainingReport report = trainer.fit(train, holdout);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(report.iterations, 200u);
  EXPECT_EQ(report.holdout_log_likelihood.size(), report.iterations);
}

TEST(BaumWelchTest, EmptyTrainingSetIsNoOp) {
  Rng rng(5);
  const Hmm before = randomly_initialized_hmm(2, 2, rng);
  Trainer trainer(before);
  const TrainingReport report = trainer.fit({});
  EXPECT_EQ(report.iterations, 0u);
  EXPECT_EQ(trainer.model().transition, before.transition);
}

TEST(BaumWelchTest, SkipsImpossibleSequences) {
  // A model that cannot emit symbol 1 at all must skip such sequences and
  // still learn from the possible ones.
  Hmm model;
  model.transition = Matrix::from_rows({{0.5, 0.5}, {0.5, 0.5}});
  model.emission = Matrix::from_rows({{1.0, 0.0}, {1.0, 0.0}});
  model.initial = {0.5, 0.5};
  const std::vector<ObservationSeq> data = {{0, 0, 0}, {0, 1, 0}};
  TrainingOptions options;
  // One iteration: the report's skip count reflects the last iteration, and
  // after re-estimation the pseudocount makes symbol 1 possible again.
  options.max_iterations = 1;
  options.min_improvement = -1.0;
  Trainer trainer(model, options);
  const TrainingReport report = trainer.fit(data);
  EXPECT_EQ(report.skipped_sequences, 1u);
  EXPECT_NO_THROW(trainer.model().validate(1e-6));
}

TEST(BaumWelchTest, PseudocountKeepsParametersPositive) {
  Rng rng(6);
  // Train on a single repetitive sequence; without pseudocounts many cells
  // would collapse to exactly zero.
  const std::vector<ObservationSeq> data = {{0, 0, 0, 0, 0, 0}};
  TrainingOptions options;
  options.max_iterations = 10;
  options.pseudocount = 1e-6;
  Trainer trainer(randomly_initialized_hmm(2, 2, rng), options);
  trainer.fit(data);
  const Hmm model = trainer.model();
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_GT(model.transition(i, j), 0.0);
      EXPECT_GT(model.emission(i, j), 0.0);
    }
  }
}

TEST(MeanLogLikelihoodTest, PenalizesImpossibleSequences) {
  Hmm model;
  model.transition = Matrix::from_rows({{1.0}});
  model.emission = Matrix::from_rows({{1.0, 0.0}});
  model.initial = {1.0};
  const std::vector<ObservationSeq> data = {{0, 0}, {0, 1}};
  const double mean = mean_log_likelihood(model, data, -100.0);
  EXPECT_NEAR(mean, -50.0, 1e-9);  // (0 + -100) / 2
}

}  // namespace
}  // namespace cmarkov::hmm
