// bash analogue: the read-parse-expand-execute REPL. Covers builtin
// execution, external command fork/exec/wait, pipelines, variable expansion
// and job bookkeeping — the widest call vocabulary of the six utilities
// (the paper's bash model is also its largest, 1366 libcall states).
#include "src/workload/program_suite.hpp"

namespace cmarkov::workload {

namespace {

const char* const kBashSource = R"(
fn main() {
  startup();
  read_startup_files();
  init_job_control();
  var commands = input() % 12 + 2;
  while (commands > 0) {
    check_mail();
    var n = read_command();
    if (n > 0) {
      var tree = parse_command();
      if (tree > 0) {
        execute_command(tree);
        run_trap_handlers();
      } else {
        syntax_error();
      }
    }
    reap_background_jobs();
    commands = commands - 1;
  }
  save_history();
  sys("exit_group");
}

fn init_job_control() {
  sys("getpgrp");
  sys("setpgid");
  sys("ioctl");
  sys("rt_sigaction");
}

fn check_mail() {
  var due = input() % 6;
  if (due == 0) {
    var r = sys("stat");
    if (r < 4) {
      lib("printf");
      sys("write");
    }
  }
}

fn run_trap_handlers() {
  var pending = input() % 5;
  if (pending == 0) {
    sys("rt_sigprocmask");
    execute_builtin();
    sys("rt_sigprocmask");
  }
}

fn reap_background_jobs() {
  var jobs = input() % 3;
  while (jobs > 0) {
    var r = sys("wait4");
    if (r > 0) {
      notify_job_done();
    }
    jobs = jobs - 1;
  }
}

fn notify_job_done() {
  lib("sprintf");
  sys("write");
}

fn startup() {
  sys("brk");
  sys("brk");
  lib("setlocale");
  lib("getenv");
  lib("getenv");
  lib("getenv");
  sys("rt_sigaction");
  sys("rt_sigaction");
  sys("rt_sigaction");
  sys("rt_sigaction");
  sys("ioctl");
  sys("getpid");
  lib("malloc");
  init_shell_variables();
}

fn init_shell_variables() {
  var vars = input() % 6 + 3;
  while (vars > 0) {
    lib("malloc");
    lib("strcpy");
    bind_variable();
    vars = vars - 1;
  }
}

fn bind_variable() {
  var found = lib("strcmp");
  if (found == 0) {
    lib("free");
  }
  lib("memcpy");
}

fn read_startup_files() {
  var fd = sys("open");
  if (fd > 0) {
    var lines = input() % 4 + 1;
    while (lines > 0) {
      sys("read");
      lines = lines - 1;
    }
    sys("close");
  }
}

fn read_command() {
  print_prompt();
  var n = sys("read");
  if (n > 0) {
    lib("memcpy");
    add_history();
  }
  return n;
}

fn print_prompt() {
  expand_prompt();
  sys("write");
}

fn expand_prompt() {
  lib("strlen");
  lib("getenv");
}

fn add_history() {
  lib("malloc");
  lib("strcpy");
}

fn parse_command() {
  var tokens = input() % 6 + 1;
  while (tokens > 0) {
    read_token();
    tokens = tokens - 1;
  }
  var ok = input() % 8;
  if (ok == 0) {
    return 0;
  }
  lib("malloc");
  return 1;
}

fn read_token() {
  lib("strchr");
  var quoted = input() % 3;
  if (quoted == 0) {
    lib("strcpy");
  } else {
    lib("memcpy");
  }
}

fn execute_command(tree) {
  expand_words();
  apply_redirections();
  var kind = input() % 6;
  if (kind == 0) {
    execute_builtin();
  } else {
    if (kind == 1) {
      execute_pipeline();
    } else {
      if (kind == 2) {
        execute_subshell();
      } else {
        if (kind == 3) {
          execute_function_body();
        } else {
          execute_external();
        }
      }
    }
  }
}

fn apply_redirections() {
  var redirs = input() % 3;
  while (redirs > 0) {
    var kind = input() % 3;
    if (kind == 0) {
      sys("open");
      sys("dup2");
    } else {
      if (kind == 1) {
        sys("dup2");
      } else {
        sys("pipe");
        here_document();
      }
    }
    redirs = redirs - 1;
  }
}

fn here_document() {
  sys("write");
  sys("close");
}

fn execute_subshell() {
  sys("fork");
  var child = input() % 2;
  if (child == 1) {
    sys("rt_sigaction");
    execute_builtin();
    sys("exit_group");
  }
  wait_for_job();
}

fn execute_function_body() {
  push_variable_scope();
  var stmts = input() % 4 + 1;
  while (stmts > 0) {
    var kind = input() % 3;
    if (kind == 0) {
      execute_builtin();
    } else {
      if (kind == 1) {
        evaluate_arithmetic();
      } else {
        execute_external();
      }
    }
    stmts = stmts - 1;
  }
  pop_variable_scope();
}

fn push_variable_scope() {
  lib("malloc");
  lib("memset");
}

fn pop_variable_scope() {
  lib("free");
}

fn evaluate_arithmetic() {
  lib("strtol");
  var ops = input() % 3 + 1;
  while (ops > 0) {
    lib("strchr");
    ops = ops - 1;
  }
  bind_variable();
}

fn expand_words() {
  var words = input() % 5 + 1;
  while (words > 0) {
    var kind = input() % 5;
    if (kind == 0) {
      expand_variable();
    } else {
      if (kind == 1) {
        expand_glob();
      } else {
        if (kind == 2) {
          expand_command_substitution();
        } else {
          if (kind == 3) {
            expand_tilde();
          } else {
            lib("strcpy");
          }
        }
      }
    }
    words = words - 1;
  }
}

fn expand_command_substitution() {
  sys("pipe");
  sys("fork");
  var child = input() % 2;
  if (child == 1) {
    sys("dup2");
    sys("execve");
  }
  sys("read");
  sys("wait4");
  lib("malloc");
  lib("memcpy");
}

fn expand_tilde() {
  lib("getenv");
  var found = input() % 4;
  if (found == 0) {
    lib("getpwnam");
  }
  lib("strcpy");
}

fn expand_variable() {
  lib("strchr");
  lib("getenv");
  lib("malloc");
}

fn expand_glob() {
  sys("openat");
  sys("getdents");
  var entries = input() % 4;
  while (entries > 0) {
    lib("fnmatch");
    entries = entries - 1;
  }
  sys("close");
}

fn execute_builtin() {
  var which = input() % 6;
  if (which == 0) {
    sys("chdir");
    bind_variable();
  } else {
    if (which == 1) {
      lib("printf");
      sys("write");
    } else {
      if (which == 2) {
        builtin_alias();
      } else {
        if (which == 3) {
          builtin_read();
        } else {
          if (which == 4) {
            builtin_test();
          } else {
            bind_variable();
          }
        }
      }
    }
  }
}

fn builtin_alias() {
  lib("strchr");
  var found = lib("strcmp");
  if (found == 0) {
    lib("free");
  }
  lib("malloc");
  lib("strcpy");
}

fn builtin_read() {
  sys("read");
  lib("memchr");
  bind_variable();
}

fn builtin_test() {
  var kind = input() % 3;
  if (kind == 0) {
    sys("stat");
  } else {
    if (kind == 1) {
      lib("strcmp");
    } else {
      lib("strtol");
      lib("strtol");
    }
  }
}

fn execute_pipeline() {
  sys("pipe");
  spawn_child();
  spawn_child();
  sys("close");
  sys("close");
  wait_for_job();
}

fn execute_external() {
  var found = find_in_path();
  if (found > 0) {
    spawn_child();
    wait_for_job();
  } else {
    command_not_found();
  }
}

fn find_in_path() {
  var dirs = input() % 4 + 1;
  while (dirs > 0) {
    lib("strcpy");
    var r = sys("stat");
    if (r < 8) {
      return 1;
    }
    dirs = dirs - 1;
  }
  return 0;
}

fn spawn_child() {
  sys("fork");
  var child = input() % 2;
  if (child == 1) {
    sys("dup2");
    sys("rt_sigaction");
    sys("execve");
  }
}

fn wait_for_job() {
  sys("wait4");
  set_exit_status();
}

fn set_exit_status() {
  lib("sprintf");
  bind_variable();
}

fn command_not_found() {
  lib("fprintf");
  lib("strerror");
}

fn syntax_error() {
  lib("fprintf");
}

fn save_history() {
  var fd = sys("open");
  if (fd > 0) {
    lib("fwrite");
    sys("write");
    sys("close");
  }
  lib("free");
}
)";

}  // namespace

ProgramSuite make_bash_suite() {
  SuiteInfo info;
  info.name = "bash";
  info.description =
      "interactive shell: REPL with parsing, word expansion, builtins, "
      "fork/exec pipelines, job control";
  info.paper_test_cases = 1061;
  InputSpec spec;
  spec.min_inputs = 16;
  spec.max_inputs = 96;
  spec.max_value = 99;
  return ProgramSuite(info, kBashSource, spec);
}

}  // namespace cmarkov::workload
