// Fixed-width ASCII table output used by the bench binaries to print
// paper-style tables (Table I-V) and figure series.
#pragma once

#include <string>
#include <vector>

namespace cmarkov {

/// Collects rows of string cells and renders an aligned ASCII table.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with a header separator line.
  std::string to_string() const;

  /// Convenience: renders to stdout.
  void print() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cmarkov
