// Abstract syntax tree for MiniC. Expression and statement nodes are
// std::variant alternatives wrapped in owning node structs, so consumers
// pattern-match with std::visit instead of a visitor hierarchy.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace cmarkov::ir {

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
};

enum class UnaryOp { kNeg, kNot };

/// Which external trace stream a call belongs to. Mirrors the paper's two
/// model families: syscall models (strace view) and libcall models (ltrace
/// view).
enum class CallKind { kSyscall, kLibcall };

std::string binary_op_name(BinaryOp op);
std::string call_kind_name(CallKind kind);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct IntLiteral {
  std::int64_t value = 0;
};

struct VarRef {
  std::string name;
};

struct BinaryExpr {
  BinaryOp op;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct UnaryExpr {
  UnaryOp op;
  ExprPtr operand;
};

/// sys("name") or lib("name"): an observable external call. The value it
/// evaluates to comes from the interpreter's external environment.
struct ExternalCallExpr {
  CallKind kind;
  std::string name;
  std::vector<ExprPtr> args;
};

/// Call to another MiniC function.
struct InternalCallExpr {
  std::string callee;
  std::vector<ExprPtr> args;
};

/// input(): next value of the test-case input stream.
struct InputExpr {};

struct Expr {
  std::variant<IntLiteral, VarRef, BinaryExpr, UnaryExpr, ExternalCallExpr,
               InternalCallExpr, InputExpr>
      node;
  int line = 0;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct BlockStmt {
  std::vector<StmtPtr> statements;
};

struct VarDeclStmt {
  std::string name;
  ExprPtr init;  // may be null (defaults to 0)
};

struct AssignStmt {
  std::string name;
  ExprPtr value;
};

struct IfStmt {
  ExprPtr condition;
  BlockStmt then_block;
  std::optional<BlockStmt> else_block;
};

struct WhileStmt {
  ExprPtr condition;
  BlockStmt body;
};

struct ReturnStmt {
  ExprPtr value;  // may be null (returns 0)
};

struct ExprStmt {
  ExprPtr expr;
};

struct Stmt {
  std::variant<VarDeclStmt, AssignStmt, IfStmt, WhileStmt, ReturnStmt,
               ExprStmt>
      node;
  int line = 0;
};

struct Function {
  std::string name;
  std::vector<std::string> params;
  BlockStmt body;
  int line = 0;
};

/// A whole MiniC translation unit.
struct Program {
  std::vector<Function> functions;

  /// Returns the function with the given name, or nullptr.
  const Function* find_function(const std::string& name) const;
};

// --- Construction helpers (shared by the parser and the programmatic
// builder; every helper allocates an owning node) ---

ExprPtr make_int(std::int64_t value, int line = 0);
ExprPtr make_var(std::string name, int line = 0);
ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs, int line = 0);
ExprPtr make_unary(UnaryOp op, ExprPtr operand, int line = 0);
ExprPtr make_external_call(CallKind kind, std::string name,
                           std::vector<ExprPtr> args = {}, int line = 0);
ExprPtr make_internal_call(std::string callee, std::vector<ExprPtr> args = {},
                           int line = 0);
ExprPtr make_input(int line = 0);

StmtPtr make_var_decl(std::string name, ExprPtr init, int line = 0);
StmtPtr make_assign(std::string name, ExprPtr value, int line = 0);
StmtPtr make_if(ExprPtr condition, BlockStmt then_block,
                std::optional<BlockStmt> else_block = std::nullopt,
                int line = 0);
StmtPtr make_while(ExprPtr condition, BlockStmt body, int line = 0);
StmtPtr make_return(ExprPtr value, int line = 0);
StmtPtr make_expr_stmt(ExprPtr expr, int line = 0);

/// Deep copies (AST nodes are move-only otherwise).
ExprPtr clone(const Expr& expr);
StmtPtr clone(const Stmt& stmt);
BlockStmt clone(const BlockStmt& block);

/// Pretty-prints a program back to MiniC source (round-trippable through
/// the parser; used by tests and the DOT/debug tooling).
std::string to_source(const Program& program);
std::string to_source(const Function& function);

}  // namespace cmarkov::ir
