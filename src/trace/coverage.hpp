// Branch and line coverage tracking over interpreted executions — the
// measurements behind Table I's test-suite coverage columns.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>

#include "src/cfg/cfg.hpp"

namespace cmarkov::trace {

struct CoverageSummary {
  std::size_t branch_edges_total = 0;
  std::size_t branch_edges_covered = 0;
  std::size_t lines_total = 0;
  std::size_t lines_covered = 0;

  double branch_coverage() const {
    return branch_edges_total == 0
               ? 1.0
               : static_cast<double>(branch_edges_covered) /
                     static_cast<double>(branch_edges_total);
  }
  double line_coverage() const {
    return lines_total == 0 ? 1.0
                            : static_cast<double>(lines_covered) /
                                  static_cast<double>(lines_total);
  }
};

/// Accumulates coverage across any number of runs of one module.
class CoverageTracker {
 public:
  explicit CoverageTracker(const cfg::ModuleCfg& module);

  /// Marks a block's instructions (lines) as executed.
  void on_block(const std::string& function, cfg::BlockId block);

  /// Marks one branch outcome as taken.
  void on_branch(const std::string& function, cfg::BlockId block, bool taken);

  CoverageSummary summary() const;

 private:
  const cfg::ModuleCfg& module_;
  std::size_t branch_edges_total_ = 0;
  std::size_t lines_total_ = 0;
  /// (function, block, direction) covered branch outcomes.
  std::set<std::tuple<std::string, cfg::BlockId, bool>> branches_covered_;
  /// (function, line) covered lines.
  std::set<std::pair<std::string, int>> lines_covered_;
};

}  // namespace cmarkov::trace
