#include "src/obs/run_profile.hpp"

#include <stdexcept>

namespace cmarkov::obs {

const TraceSpan* TraceSpan::child(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

RunProfile::RunProfile(std::string root_name) {
  root_.name = std::move(root_name);
  root_.count = 1;
  stack_.push_back(&root_);
}

void RunProfile::begin(std::string_view name) {
  assert_owner();
  TraceSpan* parent = stack_.back();
  TraceSpan* span = nullptr;
  for (auto& c : parent->children) {
    if (c.name == name) {
      span = &c;
      break;
    }
  }
  if (span == nullptr) {
    span = &parent->children.emplace_back();
    span->name = std::string(name);
  }
  span->count += 1;
  stack_.push_back(span);
}

void RunProfile::end(double seconds) {
  assert_owner();
  if (stack_.size() <= 1) {
    throw std::logic_error("RunProfile::end: no open span (root is closed "
                           "via finish())");
  }
  stack_.back()->seconds += seconds;
  stack_.pop_back();
}

void RunProfile::record(std::string_view name, double seconds) {
  begin(name);
  end(seconds);
}

void RunProfile::finish() { finish(watch_.seconds()); }

void RunProfile::finish(double total_seconds) {
  assert_owner();
  if (stack_.size() != 1) {
    throw std::logic_error("RunProfile::finish: " +
                           std::to_string(stack_.size() - 1) +
                           " span(s) still open");
  }
  root_.seconds = total_seconds;
}

}  // namespace cmarkov::obs
