// Unit tests for the synthetic binary image and the [SYSCALL...RET] gadget
// scanner (Table III machinery).
#include <gtest/gtest.h>

#include "src/attack/abnormal_s.hpp"
#include "src/gadget/gadget_scanner.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::gadget {
namespace {

TEST(BinaryImageTest, SynthesizeFromModuleKeepsRealSyscallSites) {
  const workload::ProgramSuite suite = workload::make_gzip_suite();
  const BinaryImage image = BinaryImage::synthesize(suite.cfg(), 42);
  EXPECT_EQ(image.name(), "gzip");

  // Every genuine syscall site appears as a named kSyscall instruction at
  // its real address.
  std::map<std::uint64_t, std::string> sites;
  for (const auto& fn : suite.cfg().functions) {
    for (const auto& block : fn.blocks) {
      const auto* call = block.external_call();
      if (call != nullptr && call->kind == ir::CallKind::kSyscall) {
        sites.emplace(call->address, call->callee);
      }
    }
  }
  ASSERT_FALSE(sites.empty());
  std::map<std::uint64_t, const Instruction*> by_address;
  for (const auto& instr : image.instructions()) {
    by_address.emplace(instr.address, &instr);
  }
  for (const auto& [address, name] : sites) {
    auto it = by_address.find(address);
    ASSERT_NE(it, by_address.end());
    EXPECT_EQ(it->second->op, Opcode::kSyscall);
    EXPECT_EQ(it->second->syscall_name, name);
  }
}

TEST(BinaryImageTest, AddressesAreStrictlyIncreasing) {
  const workload::ProgramSuite suite = workload::make_grep_suite();
  const BinaryImage image = BinaryImage::synthesize(suite.cfg(), 1);
  for (std::size_t i = 1; i < image.instructions().size(); ++i) {
    EXPECT_LT(image.instructions()[i - 1].address,
              image.instructions()[i].address);
  }
}

TEST(BinaryImageTest, DeterministicPerSeed) {
  const workload::ProgramSuite suite = workload::make_sed_suite();
  const BinaryImage a = BinaryImage::synthesize(suite.cfg(), 7);
  const BinaryImage b = BinaryImage::synthesize(suite.cfg(), 7);
  ASSERT_EQ(a.instructions().size(), b.instructions().size());
  for (std::size_t i = 0; i < a.instructions().size(); ++i) {
    EXPECT_EQ(a.instructions()[i].op, b.instructions()[i].op);
  }
}

TEST(BinaryImageTest, LibrarySynthesisHasWrappersAndRets) {
  const BinaryImage libc =
      BinaryImage::synthesize_library("libc.so", 200, 40, 3);
  EXPECT_EQ(libc.name(), "libc.so");
  std::size_t rets = 0;
  std::size_t named_syscalls = 0;
  for (const auto& instr : libc.instructions()) {
    if (instr.op == Opcode::kRet) ++rets;
    if (instr.op == Opcode::kSyscall && !instr.syscall_name.empty()) {
      ++named_syscalls;
    }
  }
  EXPECT_GE(rets, 200u);  // one epilogue per function at minimum
  EXPECT_GT(named_syscalls, 10u);
}

TEST(GadgetScannerTest, FindsWindowsEndingInRet) {
  const BinaryImage libc =
      BinaryImage::synthesize_library("libc.so", 300, 30, 5);
  const auto short_gadgets = find_syscall_ret_gadgets(libc, 2);
  const auto long_gadgets = find_syscall_ret_gadgets(libc, 10);
  // Longer windows can only find more gadgets.
  EXPECT_GE(long_gadgets.size(), short_gadgets.size());
  for (const auto& gadget : long_gadgets) {
    EXPECT_GE(gadget.length, 2u);
    EXPECT_LE(gadget.length, 10u);
    EXPECT_LT(gadget.syscall_address, gadget.ret_address);
  }
}

TEST(GadgetScannerTest, ControlTransfersBreakGadgets) {
  // A gadget window must be straight-line: the scanner never reports a
  // gadget whose intermediate instructions include call/jump/branch/ret.
  const BinaryImage libc =
      BinaryImage::synthesize_library("libc.so", 100, 50, 9);
  const auto& instrs = libc.instructions();
  std::map<std::uint64_t, std::size_t> index_of;
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    index_of.emplace(instrs[i].address, i);
  }
  for (const auto& gadget : find_syscall_ret_gadgets(libc, 10)) {
    const std::size_t begin = index_of.at(gadget.syscall_address);
    const std::size_t end = index_of.at(gadget.ret_address);
    for (std::size_t i = begin + 1; i < end; ++i) {
      EXPECT_NE(instrs[i].op, Opcode::kCall);
      EXPECT_NE(instrs[i].op, Opcode::kJump);
      EXPECT_NE(instrs[i].op, Opcode::kBranch);
      EXPECT_NE(instrs[i].op, Opcode::kRet);
    }
  }
}

TEST(GadgetScannerTest, ContextCompatibilityRequiresLegitimatePair) {
  const workload::ProgramSuite suite = workload::make_gzip_suite();
  const BinaryImage image = BinaryImage::synthesize(suite.cfg(), 11);
  const trace::Symbolizer symbolizer(suite.cfg());

  const auto collection = workload::collect_traces(suite, 20, 2);
  const auto legit_vec = attack::legitimate_call_set(
      collection.traces, analysis::CallFilter::kSyscalls);
  const std::set<attack::LegitimateCall> legit(legit_vec.begin(),
                                               legit_vec.end());

  const GadgetCounts with_context =
      count_gadgets(image, 10, &symbolizer, legit);
  const GadgetCounts no_context = count_gadgets(image, 10, nullptr, legit);
  EXPECT_EQ(with_context.raw, no_context.raw);
  EXPECT_EQ(no_context.context_compatible, 0u);
  // Context enforcement prunes the census (the paper's core claim).
  EXPECT_LE(with_context.context_compatible, with_context.raw);
}

TEST(GadgetScannerTest, CountsGrowWithLength) {
  const workload::ProgramSuite suite = workload::make_bash_suite();
  const BinaryImage image = BinaryImage::synthesize(suite.cfg(), 13);
  const trace::Symbolizer symbolizer(suite.cfg());
  const std::set<attack::LegitimateCall> empty;
  const auto len2 = count_gadgets(image, 2, &symbolizer, empty);
  const auto len6 = count_gadgets(image, 6, &symbolizer, empty);
  const auto len10 = count_gadgets(image, 10, &symbolizer, empty);
  EXPECT_LE(len2.raw, len6.raw);
  EXPECT_LE(len6.raw, len10.raw);
}

TEST(ImageOptionsTest, RejectsBadFillerWeights) {
  const workload::ProgramSuite suite = workload::make_gzip_suite();
  ImageOptions options;
  options.filler_weights = {1.0, 2.0};  // needs 10
  EXPECT_THROW(BinaryImage::synthesize(suite.cfg(), 1, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace cmarkov::gadget
