// Tests for ProgramModule construction paths and program statistics.
#include <gtest/gtest.h>

#include "src/ir/lexer.hpp"
#include "src/ir/module.hpp"
#include "src/ir/parser.hpp"
#include "src/ir/sema.hpp"

namespace cmarkov::ir {
namespace {

constexpr const char* kSource = R"(
fn helper(a) {
  if (a > 0) {
    sys("read");
  }
  return a;
}
fn main() {
  var x = input();
  while (x > 0) {
    lib("malloc");
    helper(x);
    x = x - 1;
  }
  sys("exit_group");
}
)";

TEST(ModuleTest, FromSourceParsesAndValidates) {
  const ProgramModule module = ProgramModule::from_source("demo", kSource);
  EXPECT_EQ(module.name(), "demo");
  EXPECT_EQ(module.entry_point(), "main");
  EXPECT_NE(module.program().find_function("helper"), nullptr);
  EXPECT_EQ(module.program().find_function("missing"), nullptr);
}

TEST(ModuleTest, StatsCountTheRightThings) {
  const ProgramModule module = ProgramModule::from_source("demo", kSource);
  const ProgramStats& stats = module.stats();
  EXPECT_EQ(stats.functions, 2u);
  EXPECT_EQ(stats.syscall_sites, 2u);   // read, exit_group
  EXPECT_EQ(stats.libcall_sites, 1u);   // malloc
  EXPECT_EQ(stats.external_call_sites, 3u);
  EXPECT_EQ(stats.internal_call_sites, 1u);  // helper(x)
  EXPECT_EQ(stats.branch_statements, 2u);    // if + while
  EXPECT_GT(stats.statements, 5u);
  EXPECT_GT(stats.source_lines, 10u);
}

TEST(ModuleTest, FromSourceRejectsSyntaxAndSemaErrors) {
  EXPECT_THROW(ProgramModule::from_source("bad", "fn main( {"), SyntaxError);
  EXPECT_THROW(ProgramModule::from_source("bad", "fn main() { x = 1; }"),
               SemaError);
  EXPECT_THROW(ProgramModule::from_source("bad", "fn notmain() { }"),
               SemaError);
}

TEST(ModuleTest, CustomEntryPoint) {
  const ProgramModule module =
      ProgramModule::from_source("svc", "fn serve() { sys(\"accept\"); }",
                                 "serve");
  EXPECT_EQ(module.entry_point(), "serve");
}

TEST(ModuleTest, FromAstGeneratesSource) {
  Program program = parse_program(kSource);
  const ProgramModule module =
      ProgramModule::from_ast("ast-built", std::move(program));
  EXPECT_FALSE(module.source().empty());
  // The generated source reparses to the same statistics.
  const ProgramModule reparsed =
      ProgramModule::from_source("reparsed", module.source());
  EXPECT_EQ(reparsed.stats().statements, module.stats().statements);
  EXPECT_EQ(reparsed.stats().external_call_sites,
            module.stats().external_call_sites);
}

TEST(ModuleTest, SourceLinesSkipBlanks) {
  const ProgramModule module = ProgramModule::from_source(
      "spaced", "fn main() {\n\n\n  sys(\"a\");\n\n}\n");
  EXPECT_EQ(module.stats().source_lines, 3u);  // fn, sys, closing brace
}

TEST(ComputeStatsTest, CountsNestedExpressions) {
  const Program program = parse_program(
      "fn main() { var x = sys(\"a\") + lib(\"b\", sys(\"c\")); }");
  const ProgramStats stats = compute_stats(program);
  EXPECT_EQ(stats.syscall_sites, 2u);
  EXPECT_EQ(stats.libcall_sites, 1u);
}

}  // namespace
}  // namespace cmarkov::ir
