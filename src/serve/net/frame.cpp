#include "src/serve/net/frame.hpp"

#include <cstring>
#include <stdexcept>

namespace cmarkov::serve::net {

namespace {

void put_u16(std::string& out, std::uint16_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
  out.push_back(static_cast<char>((value >> 16) & 0xff));
  out.push_back(static_cast<char>((value >> 24) & 0xff));
}

void put_str(std::string& out, std::string_view value) {
  if (value.size() > 0xffff) {
    throw std::runtime_error("frame: string field exceeds 65535 bytes");
  }
  put_u16(out, static_cast<std::uint16_t>(value.size()));
  out.append(value);
}

/// Bounds-checked little-endian reader over a payload. Every decoder
/// below reads through one of these, so a truncated or lying length in
/// hostile input surfaces as a thrown error, never an overread.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : payload_(payload) {}

  std::uint8_t u8(const char* what) {
    need(1, what);
    return static_cast<std::uint8_t>(payload_[pos_++]);
  }

  std::uint16_t u16(const char* what) {
    need(2, what);
    const auto* p =
        reinterpret_cast<const unsigned char*>(payload_.data() + pos_);
    pos_ += 2;
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  }

  std::uint32_t u32(const char* what) {
    need(4, what);
    const auto* p =
        reinterpret_cast<const unsigned char*>(payload_.data() + pos_);
    pos_ += 4;
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  }

  std::string str(const char* what) {
    const std::uint16_t len = u16(what);
    need(len, what);
    std::string out(payload_.substr(pos_, len));
    pos_ += len;
    return out;
  }

  void expect_end(const char* op) {
    if (pos_ != payload_.size()) {
      throw std::runtime_error(std::string("frame: ") +
                               std::to_string(payload_.size() - pos_) +
                               " trailing byte(s) after " + op + " payload");
    }
  }

 private:
  void need(std::size_t n, const char* what) {
    if (payload_.size() - pos_ < n) {
      throw std::runtime_error(std::string("frame: truncated payload while "
                                           "reading ") +
                               what);
    }
  }

  std::string_view payload_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode_frame(FrameOp op, std::uint16_t flags,
                         std::string_view payload) {
  if (payload.size() > kMaxPayload) {
    throw std::runtime_error("frame: payload exceeds kMaxPayload");
  }
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  put_u32(out, kFrameMagic);
  out.push_back(static_cast<char>(kFrameVersion));
  out.push_back(static_cast<char>(op));
  put_u16(out, flags);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

std::string encode_hello_payload(std::string_view model,
                                 std::string_view session,
                                 std::string_view trace_id) {
  std::string out;
  put_str(out, model);
  put_str(out, session);
  put_str(out, trace_id);
  return out;
}

std::string encode_event_batch_payload(
    const std::vector<trace::CallEvent>& events) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(events.size()));
  for (const trace::CallEvent& event : events) {
    out.push_back(event.kind == ir::CallKind::kSyscall ? '\0' : '\1');
    put_str(out, event.caller);
    put_str(out, event.name);
  }
  return out;
}

std::string encode_trace_payload(std::uint32_t n) {
  std::string out;
  put_u32(out, n);
  return out;
}

HelloRequest decode_hello_payload(std::string_view payload) {
  PayloadReader reader(payload);
  HelloRequest request;
  request.model = reader.str("HELLO model");
  request.session = reader.str("HELLO session");
  request.trace_id = reader.str("HELLO trace id");
  reader.expect_end("HELLO");
  if (request.model.empty()) {
    throw std::runtime_error("frame: HELLO with empty model name");
  }
  return request;
}

std::vector<trace::CallEvent> decode_event_batch_payload(
    std::string_view payload) {
  PayloadReader reader(payload);
  const std::uint32_t count = reader.u32("event count");
  // A hostile count cannot make us allocate ahead of the data it lies
  // about: each event needs at least 5 payload bytes (kind + two empty
  // strings), so an impossible count fails before any big reserve.
  if (count > payload.size() / 5) {
    throw std::runtime_error(
        "frame: event count " + std::to_string(count) +
        " exceeds what the payload could hold");
  }
  std::vector<trace::CallEvent> events;
  events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    trace::CallEvent event;
    const std::uint8_t kind = reader.u8("event kind");
    if (kind > 1) {
      throw std::runtime_error("frame: unknown event kind " +
                               std::to_string(kind));
    }
    event.kind = kind == 0 ? ir::CallKind::kSyscall : ir::CallKind::kLibcall;
    event.caller = reader.str("event site");
    event.name = reader.str("event callee");
    events.push_back(std::move(event));
  }
  reader.expect_end("event batch");
  return events;
}

std::uint32_t decode_trace_payload(std::string_view payload) {
  PayloadReader reader(payload);
  const std::uint32_t n = reader.u32("TRACE n");
  reader.expect_end("TRACE");
  return n;
}

void FrameParser::feed(const char* data, std::size_t size) {
  if (!error_.empty()) return;  // latched; the connection is doomed anyway
  // Compact lazily: only once the dead prefix dominates the buffer, so a
  // hot connection is not memmoving bytes on every frame.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

std::optional<Frame> FrameParser::next() {
  if (!error_.empty()) return std::nullopt;
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderSize) return std::nullopt;
  const auto* p =
      reinterpret_cast<const unsigned char*>(buffer_.data() + consumed_);
  const std::uint32_t magic = static_cast<std::uint32_t>(p[0]) |
                              (static_cast<std::uint32_t>(p[1]) << 8) |
                              (static_cast<std::uint32_t>(p[2]) << 16) |
                              (static_cast<std::uint32_t>(p[3]) << 24);
  if (magic != kFrameMagic) {
    error_ = "frame: bad magic (expected \"CMKB\")";
    return std::nullopt;
  }
  if (p[4] != kFrameVersion) {
    error_ = "frame: unsupported version " + std::to_string(p[4]) +
             " (this server speaks version " + std::to_string(kFrameVersion) +
             ")";
    return std::nullopt;
  }
  const std::uint32_t payload_len = static_cast<std::uint32_t>(p[8]) |
                                    (static_cast<std::uint32_t>(p[9]) << 8) |
                                    (static_cast<std::uint32_t>(p[10]) << 16) |
                                    (static_cast<std::uint32_t>(p[11]) << 24);
  if (payload_len > kMaxPayload) {
    error_ = "frame: payload length " + std::to_string(payload_len) +
             " exceeds the " + std::to_string(kMaxPayload) + " byte limit";
    return std::nullopt;
  }
  if (available < kFrameHeaderSize + payload_len) return std::nullopt;
  Frame frame;
  frame.op = static_cast<FrameOp>(p[5]);
  frame.flags = static_cast<std::uint16_t>(p[6] | (p[7] << 8));
  frame.payload =
      buffer_.substr(consumed_ + kFrameHeaderSize, payload_len);
  consumed_ += kFrameHeaderSize + payload_len;
  return frame;
}

}  // namespace cmarkov::serve::net
