// Unit tests for Definition 2: conditional edge probabilities and branch
// heuristics.
#include <gtest/gtest.h>

#include "src/analysis/conditional_probability.hpp"
#include "src/cfg/cfg_builder.hpp"
#include "src/ir/module.hpp"

namespace cmarkov::analysis {
namespace {

cfg::ModuleCfg lower(const char* source) {
  return cfg::build_module_cfg(ir::ProgramModule::from_source("t", source));
}

TEST(ConditionalProbabilityTest, JumpEdgesGetProbabilityOne) {
  const auto module = lower("fn main() { sys(\"a\"); sys(\"b\"); }");
  const auto& fn = module.require("main");
  const UniformBranchHeuristic heuristic;
  const auto edges = conditional_probabilities(fn, heuristic);
  for (const auto& block : fn.blocks) {
    if (std::holds_alternative<cfg::JumpTerm>(block.terminator)) {
      ASSERT_EQ(edges.outgoing[block.id].size(), 1u);
      EXPECT_DOUBLE_EQ(edges.outgoing[block.id][0].second, 1.0);
    }
  }
}

TEST(ConditionalProbabilityTest, UniformBranchSplitsEvenly) {
  const auto module = lower(R"(
fn main() {
  if (input()) { sys("a"); } else { sys("b"); }
}
)");
  const auto& fn = module.require("main");
  const UniformBranchHeuristic heuristic;
  const auto edges = conditional_probabilities(fn, heuristic);
  const auto& entry = fn.block(fn.entry);
  const auto* branch = std::get_if<cfg::BranchTerm>(&entry.terminator);
  ASSERT_NE(branch, nullptr);
  EXPECT_DOUBLE_EQ(edges.edge(fn.entry, branch->if_true), 0.5);
  EXPECT_DOUBLE_EQ(edges.edge(fn.entry, branch->if_false), 0.5);
}

TEST(ConditionalProbabilityTest, OutgoingMassSumsToOneForNonReturn) {
  const auto module = lower(R"(
fn main() {
  var n = input();
  while (n > 0) {
    if (n % 2 == 0) { sys("even"); } else { sys("odd"); }
    n = n - 1;
  }
}
)");
  const auto& fn = module.require("main");
  const UniformBranchHeuristic heuristic;
  const auto edges = conditional_probabilities(fn, heuristic);
  for (const auto& block : fn.blocks) {
    if (std::holds_alternative<cfg::ReturnTerm>(block.terminator)) {
      EXPECT_TRUE(edges.outgoing[block.id].empty());
      continue;
    }
    double total = 0.0;
    for (const auto& [succ, p] : edges.outgoing[block.id]) total += p;
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(ConditionalProbabilityTest, EdgeLookupForMissingEdgeIsZero) {
  const auto module = lower("fn main() { sys(\"a\"); }");
  const auto& fn = module.require("main");
  const UniformBranchHeuristic heuristic;
  const auto edges = conditional_probabilities(fn, heuristic);
  EXPECT_DOUBLE_EQ(edges.edge(fn.entry, 999), 0.0);
  EXPECT_DOUBLE_EQ(edges.edge(999, fn.entry), 0.0);
}

TEST(ConditionalProbabilityTest, CanReachDetectsLoops) {
  const auto module = lower(R"(
fn main() {
  var n = input();
  while (n > 0) { n = n - 1; }
  sys("done");
}
)");
  const auto& fn = module.require("main");
  const auto backs = fn.back_edges();
  ASSERT_EQ(backs.size(), 1u);
  // The loop body can reach the header (that is what makes it a loop).
  EXPECT_TRUE(can_reach(fn, backs[0].first, backs[0].second));
}

TEST(LoopBiasedHeuristicTest, BiasesLoopEntryEdges) {
  const auto module = lower(R"(
fn main() {
  var n = input();
  while (n > 0) { n = n - 1; }
  if (n == 0) { sys("done"); }
}
)");
  const auto& fn = module.require("main");
  const LoopBiasedBranchHeuristic heuristic(0.9);
  const auto edges = conditional_probabilities(fn, heuristic);

  std::size_t biased = 0;
  std::size_t uniform = 0;
  for (const auto& block : fn.blocks) {
    const auto* branch = std::get_if<cfg::BranchTerm>(&block.terminator);
    if (branch == nullptr) continue;
    const double p_true = edges.edge(block.id, branch->if_true);
    if (p_true == 0.9) {
      ++biased;  // the while-loop header
    } else if (p_true == 0.5) {
      ++uniform;  // the plain if
    }
  }
  EXPECT_EQ(biased, 1u);
  EXPECT_EQ(uniform, 1u);
}

TEST(LoopBiasedHeuristicTest, RejectsDegenerateProbability) {
  EXPECT_THROW(LoopBiasedBranchHeuristic(0.0), std::invalid_argument);
  EXPECT_THROW(LoopBiasedBranchHeuristic(1.0), std::invalid_argument);
}

TEST(BranchHeuristicFactoryTest, NamesAreDistinct) {
  EXPECT_EQ(make_uniform_heuristic()->name(), "uniform");
  EXPECT_EQ(make_loop_biased_heuristic()->name(), "loop-biased");
}

}  // namespace
}  // namespace cmarkov::analysis
