// sed analogue: compile an edit script, then run it over input streams —
// per-line read, address matching, substitute/delete/print command
// execution, pattern-space maintenance.
#include "src/workload/program_suite.hpp"

namespace cmarkov::workload {

namespace {

const char* const kSedSource = R"(
fn main() {
  startup();
  var cmds = compile_script();
  var files = input() % 4 + 1;
  while (files > 0) {
    process_file(cmds);
    files = files - 1;
  }
  finish_output();
  sys("exit_group");
}

fn startup() {
  sys("brk");
  lib("setlocale");
  lib("getenv");
  sys("rt_sigaction");
  lib("malloc");
}

fn compile_script() {
  var from_file = input() % 2;
  if (from_file == 1) {
    sys("open");
    sys("read");
    sys("close");
  }
  var cmds = input() % 6 + 1;
  var left = cmds;
  while (left > 0) {
    compile_command();
    left = left - 1;
  }
  return cmds;
}

fn compile_command() {
  var kind = input() % 4;
  compile_address();
  if (kind == 0) {
    compile_substitute();
  } else {
    if (kind == 1) {
      lib("strchr");
    } else {
      lib("malloc");
    }
  }
}

fn compile_address() {
  var has_regex = input() % 2;
  if (has_regex == 1) {
    lib("regcomp");
  } else {
    lib("atoi");
  }
}

fn compile_substitute() {
  lib("regcomp");
  lib("malloc");
  lib("strcpy");
}

fn process_file(cmds) {
  var fd = sys("open");
  if (fd < 1) {
    io_error();
    return;
  }
  var in_place = input() % 4;
  if (in_place == 0) {
    open_inplace_temp();
  }
  var lines = input() % 10 + 1;
  while (lines > 0) {
    var n = read_line();
    if (n > 0) {
      execute_program(cmds);
    }
    lines = lines - 1;
  }
  sys("close");
  if (in_place == 0) {
    finish_inplace_edit();
  }
}

fn open_inplace_temp() {
  lib("sprintf");
  sys("open");
  sys("fstat");
}

fn finish_inplace_edit() {
  sys("fsync");
  sys("close");
  sys("rename");
  sys("chmod");
}

fn read_line() {
  var n = sys("read");
  lib("memchr");
  return n;
}

fn execute_program(cmds) {
  var left = cmds;
  var deleted = 0;
  while (left > 0) {
    if (deleted == 0) {
      var act = match_address();
      if (act > 0) {
        deleted = execute_command();
      }
    }
    left = left - 1;
  }
  if (deleted == 0) {
    output_line();
  }
}

fn match_address() {
  var regex = input() % 2;
  if (regex == 1) {
    var r = lib("regexec");
    if (r == 0) {
      return 1;
    }
    return 0;
  }
  return 1;
}

fn execute_command() {
  var kind = input() % 6;
  if (kind == 0) {
    do_substitute();
    return 0;
  }
  if (kind == 1) {
    return 1;
  }
  if (kind == 2) {
    append_hold_space();
    return 0;
  }
  if (kind == 3) {
    do_transliterate();
    return 0;
  }
  if (kind == 4) {
    write_to_file();
    return 0;
  }
  output_line();
  return 0;
}

fn do_transliterate() {
  var chars = input() % 5 + 1;
  while (chars > 0) {
    lib("strchr");
    chars = chars - 1;
  }
}

fn write_to_file() {
  var fd = sys("open");
  if (fd < 1) {
    io_error();
    return;
  }
  sys("write");
  sys("close");
}

fn do_substitute() {
  var hits = input() % 3;
  lib("regexec");
  while (hits > 0) {
    lib("memmove");
    lib("memcpy");
    hits = hits - 1;
  }
}

fn append_hold_space() {
  lib("realloc");
  lib("memcpy");
}

fn output_line() {
  lib("fwrite");
  sys("write");
}

fn io_error() {
  lib("strerror");
  lib("fprintf");
}

fn finish_output() {
  lib("fflush");
  lib("free");
  sys("close");
}
)";

}  // namespace

ProgramSuite make_sed_suite() {
  SuiteInfo info;
  info.name = "sed";
  info.description =
      "stream editor: script compilation, per-line command execution, "
      "pattern/hold space edits";
  info.paper_test_cases = 370;
  InputSpec spec;
  spec.min_inputs = 10;
  spec.max_inputs = 60;
  spec.max_value = 99;
  return ProgramSuite(info, kSedSource, spec);
}

}  // namespace cmarkov::workload
