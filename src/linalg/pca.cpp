#include "src/linalg/pca.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/linalg/eigen.hpp"
#include "src/obs/metrics_registry.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"

namespace cmarkov {

namespace {

/// Sample rows per parallel work item of the row-independent sweeps.
constexpr std::size_t kRowChunk = 64;

/// Total variance = sum of per-column variances (trace of the covariance),
/// computable without forming the covariance matrix.
double total_variance_of(const Matrix& samples,
                         const std::vector<double>& means) {
  double total = 0.0;
  for (std::size_t c = 0; c < samples.cols(); ++c) {
    double ss = 0.0;
    for (std::size_t r = 0; r < samples.rows(); ++r) {
      const double d = samples(r, c) - means[c];
      ss += d * d;
    }
    total += ss / static_cast<double>(samples.rows() - 1);
  }
  return total;
}

/// Gram-Schmidt orthonormalization of the rows of q (in place). Rows that
/// collapse numerically are re-randomized.
void orthonormalize_rows(Matrix& q, Rng& rng) {
  for (std::size_t i = 0; i < q.rows(); ++i) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      for (std::size_t j = 0; j < i; ++j) {
        double dot = 0.0;
        for (std::size_t c = 0; c < q.cols(); ++c) dot += q(i, c) * q(j, c);
        for (std::size_t c = 0; c < q.cols(); ++c) q(i, c) -= dot * q(j, c);
      }
      double norm = 0.0;
      for (std::size_t c = 0; c < q.cols(); ++c) norm += q(i, c) * q(i, c);
      norm = std::sqrt(norm);
      if (norm > 1e-12) {
        for (std::size_t c = 0; c < q.cols(); ++c) q(i, c) /= norm;
        break;
      }
      for (std::size_t c = 0; c < q.cols(); ++c) {
        q(i, c) = rng.gaussian();
      }
    }
  }
}

}  // namespace

Pca Pca::fit(const Matrix& samples, const PcaOptions& options) {
  if (samples.rows() < 2) {
    throw std::invalid_argument("Pca::fit: need at least 2 samples");
  }
  Pca model;
  model.mean_ = column_means(samples);

  std::vector<double> eigenvalues;
  Matrix axes;  // rows are principal axes

  if (samples.cols() <= options.exact_dimension_limit) {
    // Exact path: covariance + Jacobi.
    const Matrix cov = covariance(samples);
    const EigenDecomposition eig = jacobi_eigen(cov);
    axes = Matrix(eig.vectors.size(), samples.cols());
    eigenvalues.reserve(eig.values.size());
    for (std::size_t k = 0; k < eig.vectors.size(); ++k) {
      eigenvalues.push_back(eig.values[k]);
      for (std::size_t c = 0; c < samples.cols(); ++c) {
        axes(k, c) = eig.vectors[k][c];
      }
    }
  } else {
    // Truncated path: blocked orthogonal iteration extracts the dominant
    // subspace without ever materializing the d x d covariance. The data is
    // centered once into a dense scratch matrix so the inner products are
    // straight contiguous dot products.
    const std::size_t rows = samples.rows();
    const std::size_t dims = samples.cols();
    const std::size_t k = std::min<std::size_t>(
        {options.truncated_components, dims, rows});

    WorkerPool pool(options.exec.threads);
    const std::size_t row_chunks = chunk_count(rows, kRowChunk);

    Matrix centered(rows, dims);
    pool.run(row_chunks, [&](std::size_t chunk) {
      const ChunkRange range = chunk_range(rows, kRowChunk, chunk);
      for (std::size_t r = range.begin; r < range.end; ++r) {
        for (std::size_t c = 0; c < dims; ++c) {
          centered(r, c) = samples(r, c) - model.mean_[c];
        }
      }
    });
    const double denom = static_cast<double>(rows - 1);

    Rng rng(options.exec.seed);
    Matrix q(k, dims);  // rows are the current basis vectors
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t c = 0; c < dims; ++c) q(i, c) = rng.gaussian();
    }
    orthonormalize_rows(q, rng);

    // One blocked step: next = (Xc^T (Xc q^T))^T / (rows-1). Both sweeps
    // parallelize without changing any floating-point result: y rows are
    // written by disjoint tasks, and each output row i of the covariance
    // accumulation sums over samples in ascending-r order exactly as the
    // sequential loop does.
    auto covariance_step = [&](const Matrix& basis) {
      Matrix y(rows, k);  // y = Xc * basis^T
      pool.run(row_chunks, [&](std::size_t chunk) {
        const ChunkRange range = chunk_range(rows, kRowChunk, chunk);
        for (std::size_t r = range.begin; r < range.end; ++r) {
          for (std::size_t i = 0; i < k; ++i) {
            double dot = 0.0;
            for (std::size_t c = 0; c < dims; ++c) {
              dot += centered(r, c) * basis(i, c);
            }
            y(r, i) = dot;
          }
        }
      });
      Matrix next(k, dims);  // next = y^T * Xc
      pool.run(k, [&](std::size_t i) {
        auto out = next.row(i);
        for (std::size_t r = 0; r < rows; ++r) {
          const double w = y(r, i);
          if (w == 0.0) continue;
          const auto src = centered.row(r);
          for (std::size_t c = 0; c < dims; ++c) {
            out[c] += w * src[c];
          }
        }
        for (std::size_t c = 0; c < dims; ++c) out[c] /= denom;
      });
      return next;
    };

    for (std::size_t iter = 0; iter < options.power_iterations; ++iter) {
      Matrix next = covariance_step(q);
      orthonormalize_rows(next, rng);
      q = std::move(next);
    }

    // Rayleigh quotients as eigenvalue estimates; sort descending.
    const Matrix cq = covariance_step(q);
    std::vector<std::pair<double, std::size_t>> ranked;
    for (std::size_t i = 0; i < k; ++i) {
      double lambda = 0.0;
      for (std::size_t c = 0; c < dims; ++c) lambda += q(i, c) * cq(i, c);
      ranked.emplace_back(lambda, i);
    }
    std::sort(ranked.rbegin(), ranked.rend());
    axes = Matrix(k, dims);
    for (std::size_t out = 0; out < k; ++out) {
      eigenvalues.push_back(ranked[out].first);
      for (std::size_t c = 0; c < dims; ++c) {
        axes(out, c) = q(ranked[out].second, c);
      }
    }
  }

  const double total_variance =
      total_variance_of(samples, model.mean_);

  std::size_t keep = 0;
  double captured = 0.0;
  const std::size_t cap = options.max_components == 0
                              ? eigenvalues.size()
                              : std::min(options.max_components,
                                         eigenvalues.size());
  if (total_variance <= 0.0) {
    // Degenerate input (all samples identical): keep a single axis so the
    // transform is still well-defined.
    keep = 1;
  } else {
    for (std::size_t k = 0; k < cap; ++k) {
      keep = k + 1;
      captured += std::max(eigenvalues[k], 0.0);
      if (captured / total_variance >= options.variance_to_explain) break;
    }
  }
  keep = std::max<std::size_t>(keep, 1);

  model.basis_ = Matrix(keep, samples.cols());
  for (std::size_t k = 0; k < keep; ++k) {
    for (std::size_t c = 0; c < samples.cols(); ++c) {
      model.basis_(k, c) = axes(k, c);
    }
  }
  model.explained_ratio_ =
      total_variance <= 0.0 ? 1.0
                            : std::min(captured / total_variance, 1.0);
  if (options.exec.metrics != nullptr) {
    auto& m = *options.exec.metrics;
    m.counter("cmarkov_pca_fits_total").add(1);
    m.gauge("cmarkov_pca_components")
        .set(static_cast<double>(model.output_dimension()));
    m.gauge("cmarkov_pca_explained_variance_ratio")
        .set(model.explained_ratio_);
  }
  return model;
}

Matrix Pca::transform(const Matrix& samples, std::size_t num_threads) const {
  if (samples.cols() != mean_.size()) {
    throw std::invalid_argument("Pca::transform: dimension mismatch");
  }
  Matrix out(samples.rows(), basis_.rows());
  parallel_for(num_threads, chunk_count(samples.rows(), kRowChunk),
               [&](std::size_t chunk) {
    const ChunkRange range =
        chunk_range(samples.rows(), kRowChunk, chunk);
    for (std::size_t r = range.begin; r < range.end; ++r) {
      for (std::size_t k = 0; k < basis_.rows(); ++k) {
        double dot = 0.0;
        for (std::size_t c = 0; c < samples.cols(); ++c) {
          dot += (samples(r, c) - mean_[c]) * basis_(k, c);
        }
        out(r, k) = dot;
      }
    }
  });
  return out;
}

}  // namespace cmarkov
