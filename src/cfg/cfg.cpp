#include "src/cfg/cfg.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace cmarkov::cfg {

const BasicBlock& FunctionCfg::block(BlockId id) const {
  if (id >= blocks.size()) throw std::out_of_range("FunctionCfg::block");
  return blocks[id];
}

BasicBlock& FunctionCfg::block(BlockId id) {
  if (id >= blocks.size()) throw std::out_of_range("FunctionCfg::block");
  return blocks[id];
}

std::size_t FunctionCfg::edge_count() const {
  std::size_t count = 0;
  for (const auto& b : blocks) count += b.successors().size();
  return count;
}

std::vector<std::vector<BlockId>> FunctionCfg::predecessors() const {
  std::vector<std::vector<BlockId>> preds(blocks.size());
  for (const auto& b : blocks) {
    for (BlockId s : b.successors()) preds[s].push_back(b.id);
  }
  return preds;
}

namespace {

enum class Mark : std::uint8_t { kUnvisited, kOnStack, kDone };

void dfs_back_edges(const FunctionCfg& cfg, BlockId node,
                    std::vector<Mark>& marks,
                    std::vector<std::pair<BlockId, BlockId>>& out) {
  marks[node] = Mark::kOnStack;
  for (BlockId succ : cfg.block(node).successors()) {
    if (marks[succ] == Mark::kOnStack) {
      out.emplace_back(node, succ);
    } else if (marks[succ] == Mark::kUnvisited) {
      dfs_back_edges(cfg, succ, marks, out);
    }
  }
  marks[node] = Mark::kDone;
}

}  // namespace

std::vector<std::pair<BlockId, BlockId>> FunctionCfg::back_edges() const {
  std::vector<std::pair<BlockId, BlockId>> out;
  if (blocks.empty()) return out;
  std::vector<Mark> marks(blocks.size(), Mark::kUnvisited);
  dfs_back_edges(*this, entry, marks, out);
  return out;
}

std::vector<BlockId> FunctionCfg::reverse_post_order() const {
  std::vector<BlockId> order;
  if (blocks.empty()) return order;

  const auto backs = back_edges();
  std::set<std::pair<BlockId, BlockId>> back_set(backs.begin(), backs.end());

  std::vector<bool> visited(blocks.size(), false);
  std::vector<BlockId> post;
  // Iterative post-order DFS over forward edges only.
  struct Frame {
    BlockId node;
    std::vector<BlockId> succs;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  visited[entry] = true;
  stack.push_back({entry, block(entry).successors(), 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    bool descended = false;
    while (top.next < top.succs.size()) {
      const BlockId succ = top.succs[top.next++];
      if (back_set.contains({top.node, succ})) continue;
      if (visited[succ]) continue;
      visited[succ] = true;
      stack.push_back({succ, block(succ).successors(), 0});
      descended = true;
      break;
    }
    if (!descended && !stack.empty() && stack.back().next >= stack.back().succs.size()) {
      post.push_back(stack.back().node);
      stack.pop_back();
    }
  }
  order.assign(post.rbegin(), post.rend());
  return order;
}

std::vector<int> FunctionCfg::source_lines() const {
  std::set<int> lines;
  for (const auto& b : blocks) {
    for (const auto& instr : b.instructions) {
      const int line = instr_line(instr);
      if (line > 0) lines.insert(line);
    }
    if (const auto* branch = std::get_if<BranchTerm>(&b.terminator)) {
      if (branch->line > 0) lines.insert(branch->line);
    }
  }
  return {lines.begin(), lines.end()};
}

const FunctionCfg* ModuleCfg::find(const std::string& name) const {
  for (const auto& fn : functions) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

const FunctionCfg& ModuleCfg::require(const std::string& name) const {
  const FunctionCfg* fn = find(name);
  if (fn == nullptr) {
    throw std::invalid_argument("ModuleCfg: no function named '" + name +
                                "'");
  }
  return *fn;
}

std::map<std::string, std::size_t> ModuleCfg::index_by_name() const {
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < functions.size(); ++i) {
    index.emplace(functions[i].name, i);
  }
  return index;
}

std::size_t ModuleCfg::total_blocks() const {
  std::size_t total = 0;
  for (const auto& fn : functions) total += fn.block_count();
  return total;
}

}  // namespace cmarkov::cfg
