// Mimicry probe (Section II-A attack model): for each server program,
// estimate the attacker's best achievable segment likelihood when embedding
// a backdoor goal chain (socket/connect/dup2/execve), under each model.
// The probe quantifies the paper's argument that probabilistic scoring
// plus context sensitivity leaves little mimicry headroom: the context
// attacker is restricted to legitimate (call, caller) pairs, and even the
// best padding lands at or below the detection threshold far more often
// than under the context-free model.
#include <cmath>
#include <iostream>

#include "src/attack/mimicry.hpp"
#include "src/eval/comparison.hpp"
#include "src/hmm/trainer.hpp"
#include "src/trace/segmenter.hpp"
#include "src/util/strings.hpp"
#include "src/util/table_printer.hpp"
#include "src/workload/testcase_generator.hpp"

using namespace cmarkov;

namespace {

struct TrainedModel {
  eval::BuiltModel model;
  double threshold = 0.0;  // log-likelihood at 1% segment FP
};

TrainedModel train_model(eval::ModelKind kind,
                         const workload::ProgramSuite& suite,
                         const std::vector<trace::Trace>& traces,
                         std::size_t max_segments) {
  eval::ModelBuildOptions options;
  options.filter = analysis::CallFilter::kSyscalls;
  Rng rng(17);
  TrainedModel out{eval::build_model(kind, suite, traces, options, rng), 0.0};

  trace::SegmentSet set;
  for (const auto& trace : traces) set.add_trace(out.model.encode(trace));
  auto segments = set.to_vector();
  if (segments.size() > max_segments) segments.resize(max_segments);
  hmm::TrainingOptions training;
  training.max_iterations = 8;
  hmm::Trainer trainer(out.model.hmm, training);
  trainer.fit(segments);
  out.model.hmm = trainer.model();

  eval::ScoreSet calibration;
  for (const auto& segment : segments) {
    calibration.normal.push_back(out.model.score(segment));
  }
  out.threshold = eval::threshold_for_fp(calibration, 0.01);
  return out;
}

}  // namespace

namespace {

struct GoalChain {
  std::string label;
  std::vector<std::string> names;
};

}  // namespace

int main(int argc, char** argv) {
  const bool full = eval::full_mode_enabled(argc, argv);
  std::cout << "=== Mimicry probe: attacker's best segment per goal chain ("
            << (full ? "full" : "quick") << " mode) ===\n";
  std::cout << "Three attacker goals against proftpd, in decreasing "
               "difficulty:\n"
               "  backdoor      socket/connect/dup2/execve — calls the "
               "program never makes;\n"
               "  tampering     setuid/chmod/unlink — legitimate-yet-rare "
               "calls (the paper's mimicry caveat);\n"
               "  exfiltration  open/read/send — indistinguishable from "
               "normal serving (the open problem).\n\n";

  const workload::ProgramSuite suite = workload::make_proftpd_suite();
  const auto collection = workload::collect_traces(suite, full ? 80 : 30, 3);
  const auto legit = attack::legitimate_call_set(
      collection.traces, analysis::CallFilter::kSyscalls);

  const std::vector<GoalChain> chains = {
      {"backdoor", {"socket", "connect", "dup2", "execve"}},
      {"tampering", {"setuid", "chmod", "unlink"}},
      {"exfiltration", {"open", "read", "send"}},
  };

  TablePrinter table({"Goal chain", "Model", "Embedded?",
                      "Best log-likelihood", "Threshold@FP=1%",
                      "Mimicry evades?"});

  for (const auto kind :
       {eval::ModelKind::kRegularBasic, eval::ModelKind::kCMarkov}) {
    const TrainedModel trained =
        train_model(kind, suite, collection.traces, full ? 1200 : 300);
    const bool context_model =
        eval::encoding_of(kind) != hmm::ObservationEncoding::kContextFree;

    for (const auto& chain : chains) {
      std::vector<std::string> goals;
      for (const auto& name : chain.names) {
        if (!context_model) {
          goals.push_back(name);
          continue;
        }
        // Context attacker must commit to a legitimate caller.
        std::string chosen = name + "@<none>";
        for (const auto& call : legit) {
          if (call.name == name) {
            chosen = name + "@" + call.caller;
            break;
          }
        }
        goals.push_back(chosen);
      }

      attack::MimicryOptions options;
      options.beam_width = full ? 32 : 16;
      const attack::MimicryResult result =
          craft_mimicry(trained.model, goals, options);
      const bool evades = result.goal_embedded &&
                          result.log_likelihood > trained.threshold;
      table.add_row(
          {chain.label, eval::model_kind_name(kind),
           result.goal_embedded ? "yes" : "no",
           std::isinf(result.log_likelihood)
               ? "-inf"
               : format_double(result.log_likelihood, 2),
           format_double(trained.threshold, 2), evades ? "YES" : "no"});
    }
  }
  table.print();
  std::cout << "\nShape check: the backdoor chain is unembeddable under\n"
               "both models (its calls never occur in normal behaviour).\n"
               "The context-free model is evaded by the tampering and\n"
               "exfiltration chains; under CMarkov the probe's best\n"
               "segments fall below the (much sharper) threshold — the\n"
               "quantitative-measurement-plus-context argument of Section\n"
               "II-A. A stronger attacker than this beam search, or a goal\n"
               "matching normal behaviour exactly, remains the open mimicry\n"
               "problem the paper acknowledges.\n";
  return 0;
}
