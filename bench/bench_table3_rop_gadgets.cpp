// Table III: number of useful [SYSCALL...RET] gadgets per program under
// 1-level calling-context enforcement, at gadget lengths 2, 6 and 10.
// Expected shape: the raw gadget census is much larger than the
// context-compatible census, and the surviving counts are small — far from
// Turing complete (paper: 5-14 per program).
#include <iostream>
#include <set>

#include "src/attack/abnormal_s.hpp"
#include "src/eval/comparison.hpp"
#include "src/gadget/gadget_scanner.hpp"
#include "src/util/table_printer.hpp"
#include "src/workload/testcase_generator.hpp"

using namespace cmarkov;

int main(int argc, char** argv) {
  const bool full = eval::full_mode_enabled(argc, argv);
  std::cout << "=== Table III: useful [SYSCALL...RET] gadgets compatible "
               "with context-sensitive detection ===\n";
  std::cout << "Paper reference: gzip 5-6, grep 5-6, flex 5-6, bash 9-12, "
               "vim 6-7, proftpd 8-13, nginx 8-11, libc.so 8-14.\n\n";

  TablePrinter table({"Program", "len<=2 (ctx / raw)", "len<=6 (ctx / raw)",
                      "len<=10 (ctx / raw)"});

  const std::vector<std::string> programs = {"gzip", "grep",    "flex", "bash",
                                             "vim",  "proftpd", "nginx"};
  for (const auto& name : programs) {
    const workload::ProgramSuite suite = workload::make_suite(name);
    const gadget::BinaryImage image =
        gadget::BinaryImage::synthesize(suite.cfg(), 0xb0b + name.size());
    const trace::Symbolizer symbolizer(suite.cfg());
    const auto collection =
        workload::collect_traces(suite, full ? 60 : 20, 5);
    const auto legit_vec = attack::legitimate_call_set(
        collection.traces, analysis::CallFilter::kSyscalls);
    const std::set<attack::LegitimateCall> legit(legit_vec.begin(),
                                                 legit_vec.end());

    std::vector<std::string> row = {name};
    for (std::size_t len : {2u, 6u, 10u}) {
      const auto counts =
          gadget::count_gadgets(image, len, &symbolizer, legit);
      row.push_back(std::to_string(counts.context_compatible) + " / " +
                    std::to_string(counts.raw));
    }
    table.add_row(std::move(row));
  }

  // libc.so row: a shared library image; its gadgets have no legitimate
  // caller context inside the monitored program, so none are compatible.
  const gadget::BinaryImage libc =
      gadget::BinaryImage::synthesize_library("libc.so", full ? 2000 : 600,
                                              40, 0x11bc);
  std::vector<std::string> libc_row = {"libc.so"};
  for (std::size_t len : {2u, 6u, 10u}) {
    const auto counts = gadget::count_gadgets(libc, len, nullptr, {});
    libc_row.push_back("0 / " + std::to_string(counts.raw));
  }
  table.add_row(std::move(libc_row));

  table.print();
  std::cout << "\nShape check: context-compatible counts are small and grow\n"
               "slowly with gadget length, while the raw census is an order\n"
               "of magnitude larger — context enforcement strips attackers\n"
               "down to a handful of usable gadgets.\n";
  return 0;
}
