#include "src/reduction/call_vector.hpp"

namespace cmarkov::reduction {

CallVectors build_call_vectors(const analysis::CallTransitionMatrix& matrix) {
  CallVectors out;
  const std::vector<std::size_t> externals = matrix.external_indices();
  const std::size_t n = matrix.size();
  out.features = Matrix(externals.size(), 2 * n);
  out.calls.reserve(externals.size());

  for (std::size_t r = 0; r < externals.size(); ++r) {
    const std::size_t call = externals[r];
    out.calls.push_back(matrix.symbol(call));
    // Outgoing probabilities (transition-to, the matrix row).
    for (const auto& [to, p] : matrix.row(call)) {
      out.features(r, to) = p;
    }
    // Incoming probabilities (transition-from, the matrix column).
    for (std::size_t from = 0; from < n; ++from) {
      const double p = matrix.prob(from, call);
      if (p != 0.0) out.features(r, n + from) = p;
    }
  }
  return out;
}

}  // namespace cmarkov::reduction
