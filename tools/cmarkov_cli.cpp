// cmarkov — command-line front end for the library.
//
//   cmarkov list
//   cmarkov analyze <suite|file.minic> [--filter sys|lib]
//   cmarkov trace   <suite|file.minic> [--count N] [--seed S] --out <dir>
//   cmarkov train   <suite|file.minic> [--filter sys|lib] [--traces N]
//                   [--context 0|1] [--profile-json <path>] --out <model.txt>
//                   [--save-state <trainer.state>]
//   cmarkov train   <suite|file.minic> --incremental <base.detector>
//                   --resume-state <trainer.state> [--traces N] [--seed S]
//                   [--out <model.txt>] [--save-state <trainer.state>]
//   cmarkov scan    <model.txt> <trace.txt>...
//   cmarkov monitor <model.txt> <trace.txt>
//   cmarkov explain --model <model.txt> --trace <trace.txt>
//                   [--top N] [--json]
//   cmarkov top     --port <admin-port> [--host H] [--interval-ms N]
//                   [--iterations N] [--plain 1]
//
// `suite` is one of the built-in program analogues (gzip, bash, ...); a
// path ending in .minic is parsed as MiniC source. `top` polls a running
// cmarkovd's admin plane (--admin-port) and renders a live console view
// of throughput, latency quantiles, per-shard occupancy, and per-loop
// network counters (docs/SERVING.md).
#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <thread>

#include "src/cfg/cfg_builder.hpp"
#include "src/core/detector.hpp"
#include "src/core/model_io.hpp"
#include "src/core/online_monitor.hpp"
#include "src/core/pipeline.hpp"
#include "src/eval/comparison.hpp"
#include "src/gadget/gadget_scanner.hpp"
#include "src/obs/export.hpp"
#include "src/obs/trace/chrome_trace.hpp"
#include "src/obs/trace/decision_record.hpp"
#include "src/serve/net/admin.hpp"
#include "src/trace/interpreter.hpp"
#include "src/trace/trace_io.hpp"
#include "src/util/json.hpp"
#include "src/util/strings.hpp"
#include "src/util/table_printer.hpp"
#include "src/workload/testcase_generator.hpp"

using namespace cmarkov;

namespace {

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (starts_with(token, "--")) {
      if (i + 1 >= argc) {
        throw std::runtime_error("missing value for option " + token);
      }
      args.options[token.substr(2)] = argv[++i];
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

bool is_suite_name(const std::string& name) {
  const auto& names = workload::all_suite_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

ir::ProgramModule load_program(const std::string& target) {
  if (is_suite_name(target)) {
    // Re-parse the suite's source: ProgramModule owns its AST (move-only).
    const workload::ProgramSuite suite = workload::make_suite(target);
    return ir::ProgramModule::from_source(target, suite.module().source());
  }
  std::ifstream in(target);
  if (!in) {
    throw std::runtime_error("cannot open program '" + target +
                             "' (not a suite name or readable file)");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ir::ProgramModule::from_source(
      std::filesystem::path(target).stem().string(), buffer.str());
}

analysis::CallFilter parse_filter(const std::string& text) {
  if (text == "sys" || text == "syscall") return analysis::CallFilter::kSyscalls;
  if (text == "lib" || text == "libcall") return analysis::CallFilter::kLibcalls;
  if (text == "all") return analysis::CallFilter::kAll;
  throw std::runtime_error("unknown filter '" + text + "' (sys|lib|all)");
}

std::vector<trace::Trace> collect_program_traces(
    const ir::ProgramModule& program, std::size_t count,
    std::uint64_t seed) {
  const auto module_cfg = cfg::build_module_cfg(program);
  const trace::Interpreter interpreter(module_cfg);
  const trace::Symbolizer symbolizer(module_cfg);
  Rng rng(seed);
  std::vector<trace::Trace> traces;
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<std::int64_t> inputs;
    const std::size_t len = 16 + rng.index(80);
    for (std::size_t j = 0; j < len; ++j) {
      inputs.push_back(rng.uniform_int(0, 99));
    }
    trace::SeededEnvironment environment(rng.engine()());
    auto run = interpreter.run(inputs, environment);
    if (!run.completed) continue;
    symbolizer.symbolize(run.trace);
    run.trace.program = program.name();
    traces.push_back(std::move(run.trace));
  }
  return traces;
}

int cmd_list() {
  TablePrinter table({"Suite", "Paper test cases", "Description"});
  for (const auto& name : workload::all_suite_names()) {
    const workload::ProgramSuite suite = workload::make_suite(name);
    table.add_row({name, std::to_string(suite.info().paper_test_cases),
                   suite.info().description});
  }
  table.print();
  return 0;
}

int cmd_analyze(const Args& args) {
  if (args.positional.empty()) {
    throw std::runtime_error("analyze: need a suite name or .minic file");
  }
  const ir::ProgramModule program = load_program(args.positional[0]);
  const auto filter = parse_filter(args.get("filter", "sys"));

  core::PipelineConfig config;
  config.filter = filter;
  config.exec.threads =
      static_cast<std::size_t>(std::stoul(args.get("threads", "0")));
  Rng rng(1);
  const auto result = core::run_static_pipeline(program, config, rng);

  std::cout << "program:        " << program.name() << "\n";
  std::cout << "functions:      " << program.stats().functions << "\n";
  std::cout << "source lines:   " << program.stats().source_lines << "\n";
  std::cout << "syscall sites:  " << program.stats().syscall_sites << "\n";
  std::cout << "libcall sites:  " << program.stats().libcall_sites << "\n";
  std::cout << "stream:         " << analysis::call_filter_name(filter)
            << "\n";
  std::cout << "distinct calls: " << result.distinct_calls
            << " (context-sensitive)\n";
  std::cout << "hidden states:  " << result.init.model.num_states() << "\n";
  std::cout << "matrix cells:   " << result.program_matrix.nonzero_count()
            << " non-zero\n";
  std::cout << "analysis time:  ";
  for (const auto& [phase, seconds] : result.timings.totals()) {
    std::cout << phase << "=" << format_double(seconds * 1e3, 2) << "ms ";
  }
  std::cout << "\n";
  return 0;
}

int cmd_trace(const Args& args) {
  if (args.positional.empty()) {
    throw std::runtime_error("trace: need a suite name or .minic file");
  }
  const ir::ProgramModule program = load_program(args.positional[0]);
  const auto count = static_cast<std::size_t>(
      std::stoul(args.get("count", "10")));
  const auto seed = std::stoull(args.get("seed", "42"));
  const std::string out_dir = args.get("out", ".");
  std::filesystem::create_directories(out_dir);

  const auto traces = collect_program_traces(program, count, seed);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const std::string path = out_dir + "/" + program.name() + "_" +
                             std::to_string(i) + ".trace";
    trace::write_trace_file(path, traces[i]);
  }
  std::cout << "wrote " << traces.size() << " traces to " << out_dir << "\n";
  return 0;
}

/// `train --incremental <base.detector> --resume-state <trainer-state>`:
/// absorbs freshly collected traces into an existing model via
/// hmm::Trainer::partial_fit instead of retraining from scratch. The
/// refreshed detector is bit-identical to a full retrain on the combined
/// corpus (trainer.hpp explains why) at a fraction of the cost.
int cmd_train_incremental(const Args& args, const std::string& base_path) {
  const std::string state_path = args.get("resume-state", "");
  if (state_path.empty()) {
    throw std::runtime_error(
        "train: --incremental needs --resume-state <trainer-state> "
        "(written by a previous train --save-state)");
  }
  const ir::ProgramModule program = load_program(args.positional[0]);
  const core::Detector base = core::load_detector_file(base_path);
  hmm::Trainer trainer(core::load_trainer_state_file(state_path));

  const auto traces = collect_program_traces(
      program,
      static_cast<std::size_t>(std::stoul(args.get("traces", "60"))),
      std::stoull(args.get("seed", "43")));
  std::vector<hmm::ObservationSeq> segments;
  for (const auto& trace : traces) {
    auto encoded = base.encode_trace_segments(trace);
    segments.insert(segments.end(),
                    std::make_move_iterator(encoded.begin()),
                    std::make_move_iterator(encoded.end()));
  }
  if (segments.empty()) {
    throw std::runtime_error("train: collected traces yield no segments");
  }
  const hmm::TrainingReport report = trainer.partial_fit(segments);
  const hmm::TrainerState& state = trainer.state();
  const core::Detector refreshed = base.rebuilt_with(
      trainer.model(), state.holdout.empty() ? state.train : state.holdout);

  const std::string out = args.get("out", base_path);
  core::save_detector_file(out, refreshed);
  const std::string save_state = args.get("save-state", "");
  if (!save_state.empty()) {
    core::save_trainer_state_file(save_state, state);
    std::cout << "trainer state saved to " << save_state << "\n";
  }
  std::cout << "absorbed " << segments.size() << " segments from "
            << traces.size() << " traces (" << report.iterations
            << " iterations), threshold "
            << format_double(refreshed.threshold(), 3) << "\n";
  std::cout << "saved to " << out << "\n";
  return 0;
}

int cmd_train(const Args& args) {
  if (args.positional.empty()) {
    throw std::runtime_error("train: need a suite name or .minic file");
  }
  const std::string incremental_base = args.get("incremental", "");
  if (!incremental_base.empty()) {
    return cmd_train_incremental(args, incremental_base);
  }
  // --profile-json: instrument the whole run (stage spans + metrics) and
  // dump the machine-readable profile document on exit.
  // --chrome-trace: same instrumentation, exported as a Chrome-trace JSON
  // array loadable in chrome://tracing or Perfetto.
  const std::string profile_path = args.get("profile-json", "");
  const std::string chrome_path = args.get("chrome-trace", "");
  obs::MetricsRegistry registry;
  obs::RunProfile run_profile("train");
  obs::RunProfile* profile =
      profile_path.empty() && chrome_path.empty() ? nullptr : &run_profile;

  Stopwatch stage;
  const ir::ProgramModule program = load_program(args.positional[0]);
  if (profile != nullptr) profile->record("load-program", stage.seconds());
  const std::string out = args.get("out", program.name() + ".model");

  core::DetectorConfig config;
  config.pipeline.filter = parse_filter(args.get("filter", "sys"));
  config.pipeline.context_sensitive = args.get("context", "1") != "0";
  config.target_fp = std::stod(args.get("target-fp", "0.001"));
  // --save-state: persist the trainer's sufficient-statistics state next
  // to the model so a later `train --incremental` (or cmarkovd --drift)
  // can absorb new traces without retraining from scratch.
  const std::string save_state = args.get("save-state", "");
  config.keep_trainer_state = !save_state.empty();
  const auto threads =
      static_cast<std::size_t>(std::stoul(args.get("threads", "0")));
  config.pipeline.exec.threads = threads;
  config.training.exec.threads = threads;
  if (profile != nullptr) {
    config.pipeline.exec.metrics = &registry;
    config.pipeline.exec.profile = profile;
    config.training.exec.metrics = &registry;
    config.training.exec.profile = profile;
  }

  std::optional<core::Detector> detector;
  {
    const obs::ScopedTimer span(profile, "build");
    detector.emplace(core::Detector::build(program, config));
  }
  std::vector<trace::Trace> traces;
  {
    const obs::ScopedTimer span(profile, "collect-traces");
    traces = collect_program_traces(
        program, static_cast<std::size_t>(std::stoul(args.get("traces", "60"))),
        std::stoull(args.get("seed", "42")));
  }
  std::size_t iterations = 0;
  {
    const obs::ScopedTimer span(profile, "train");
    iterations = detector->train(traces).iterations;
  }
  {
    const obs::ScopedTimer span(profile, "save-model");
    core::save_detector_file(out, *detector);
  }
  if (!save_state.empty()) {
    core::save_trainer_state_file(save_state, *detector->trainer_state());
    std::cout << "trainer state saved to " << save_state << "\n";
  }

  std::cout << "trained " << (config.pipeline.context_sensitive
                                  ? "context-sensitive"
                                  : "context-insensitive")
            << " model on " << traces.size() << " traces ("
            << iterations << " iterations), threshold "
            << format_double(detector->threshold(), 3) << "\n";
  std::cout << "saved to " << out << "\n";

  if (profile != nullptr) {
    profile->finish();
    if (!profile_path.empty()) {
      std::ofstream json(profile_path);
      if (!json) {
        throw std::runtime_error("cannot write profile to " + profile_path);
      }
      json << obs::run_profile_json(*profile, &registry);
      std::cout << "profile written to " << profile_path << "\n";
    }
    if (!chrome_path.empty()) {
      std::ofstream json(chrome_path);
      if (!json) {
        throw std::runtime_error("cannot write chrome trace to " +
                                 chrome_path);
      }
      json << obs::chrome_trace_json(*profile);
      std::cout << "chrome trace written to " << chrome_path << "\n";
    }
  }
  return 0;
}

int cmd_compare(const Args& args) {
  if (args.positional.empty()) {
    throw std::runtime_error("compare: need a built-in suite name");
  }
  if (!is_suite_name(args.positional[0])) {
    throw std::runtime_error(
        "compare: the comparison harness needs a built-in suite (its "
        "test-case generator drives the workload)");
  }
  const workload::ProgramSuite suite = workload::make_suite(args.positional[0]);
  const auto filter = parse_filter(args.get("filter", "sys"));
  eval::ComparisonOptions options =
      eval::default_comparison_options(args.get("full", "0") == "1");
  options.seed = std::stoull(args.get("seed", "1"));
  options.exec.threads =
      static_cast<std::size_t>(std::stoul(args.get("threads", "0")));

  const eval::SuiteComparison comparison =
      eval::compare_models(suite, filter, options);
  TablePrinter table({"Model", "N states", "M symbols", "FN@FP=0.01",
                      "FN@FP=0.05", "AUC", "Train (s)"});
  for (const auto& model : comparison.models) {
    table.add_row({eval::model_kind_name(model.kind),
                   std::to_string(model.num_states),
                   std::to_string(model.alphabet_size),
                   format_double(eval::fn_at_fp(model.scores, 0.01), 4),
                   format_double(eval::fn_at_fp(model.scores, 0.05), 4),
                   format_double(eval::detection_auc(model.scores), 4),
                   format_double(model.train_seconds, 2)});
  }
  std::cout << comparison.program << " / "
            << analysis::call_filter_name(filter) << ": "
            << comparison.unique_normal_segments << " unique segments, "
            << comparison.abnormal_segments << " Abnormal-S segments\n";
  table.print();
  return 0;
}

int cmd_gadgets(const Args& args) {
  if (args.positional.empty() || !is_suite_name(args.positional[0])) {
    throw std::runtime_error("gadgets: need a built-in suite name");
  }
  const workload::ProgramSuite suite =
      workload::make_suite(args.positional[0]);
  const gadget::BinaryImage image =
      gadget::BinaryImage::synthesize(suite.cfg(),
                                      std::stoull(args.get("seed", "7")));
  const trace::Symbolizer symbolizer(suite.cfg());
  const auto collection = workload::collect_traces(
      suite, static_cast<std::size_t>(std::stoul(args.get("traces", "30"))),
      5);
  const auto legit_vec = attack::legitimate_call_set(
      collection.traces, analysis::CallFilter::kSyscalls);
  const std::set<attack::LegitimateCall> legit(legit_vec.begin(),
                                               legit_vec.end());

  TablePrinter table({"Max length", "Context-compatible", "Raw census"});
  for (std::size_t len : {2u, 4u, 6u, 8u, 10u}) {
    const auto counts = gadget::count_gadgets(image, len, &symbolizer, legit);
    table.add_row({std::to_string(len),
                   std::to_string(counts.context_compatible),
                   std::to_string(counts.raw)});
  }
  std::cout << "[SYSCALL...RET] gadget census for " << suite.info().name
            << " (" << image.instructions().size() << " decoded slots)\n";
  table.print();
  return 0;
}

int cmd_scan(const Args& args) {
  if (args.positional.size() < 2) {
    throw std::runtime_error("scan: need <model.txt> <trace.txt>...");
  }
  const core::Detector detector =
      core::load_detector_file(args.positional[0]);
  TablePrinter table({"Trace", "Verdict", "Flagged", "Min log-likelihood"});
  int anomalies = 0;
  for (std::size_t i = 1; i < args.positional.size(); ++i) {
    const trace::Trace trace = trace::read_trace_file(args.positional[i]);
    const auto verdict = detector.classify(trace);
    if (verdict.anomalous) ++anomalies;
    table.add_row({args.positional[i],
                   verdict.anomalous ? "ANOMALY" : "ok",
                   std::to_string(verdict.flagged_segments) + "/" +
                       std::to_string(verdict.total_segments),
                   format_double(verdict.min_log_likelihood, 2)});
  }
  table.print();
  return anomalies > 0 ? 2 : 0;  // grep-style exit code
}

int cmd_monitor(const Args& args) {
  if (args.positional.size() != 2) {
    throw std::runtime_error("monitor: need <model.txt> <trace.txt>");
  }
  const core::Detector detector =
      core::load_detector_file(args.positional[0]);
  const trace::Trace trace = trace::read_trace_file(args.positional[1]);

  core::MonitorOptions options;
  options.windows_to_alarm = static_cast<std::size_t>(
      std::stoul(args.get("windows-to-alarm", "1")));
  options.cooldown_events = static_cast<std::size_t>(
      std::stoul(args.get("cooldown", "30")));
  core::OnlineMonitor monitor(detector, nullptr, options);

  std::size_t event_index = 0;
  for (const auto& event : trace.events) {
    ++event_index;
    const auto update = monitor.on_event(event);
    if (update.alarm) {
      std::cout << "ALARM at event " << event_index << ": " << event.name
                << "@" << event.caller
                << (update.unknown_symbol ? " (unknown context)"
                                          : " (low likelihood)")
                << "\n";
    }
  }
  const auto& stats = monitor.stats();
  std::cout << "events=" << stats.events_seen
            << " observed=" << stats.events_observed
            << " windows=" << stats.windows_scored
            << " flagged=" << stats.windows_flagged
            << " alarms=" << stats.alarms << "\n";
  return stats.alarms > 0 ? 2 : 0;
}

// Replays a recorded trace through an OnlineMonitor with decision tracing
// set to record every scored window, then aggregates the per-symbol forward
// contributions into transitions `prev_label -> label` (the first window
// symbol is charged to `(start) -> label`). The table ranks transitions by
// total log-probability ascending, so the entries that cost the model the
// most likelihood — the explanation for an alarm — come first. Unknown
// call@caller pairs carry -inf and therefore always rank at the top.
int cmd_explain(const Args& args) {
  const std::string model_path = args.get(
      "model", args.positional.empty() ? "" : args.positional[0]);
  const std::string trace_path = args.get(
      "trace", args.positional.size() < 2 ? "" : args.positional[1]);
  if (model_path.empty() || trace_path.empty()) {
    throw std::runtime_error(
        "explain: need --model <model.txt> --trace <trace.txt>");
  }
  const core::Detector detector = core::load_detector_file(model_path);
  const trace::Trace trace = trace::read_trace_file(trace_path);

  core::MonitorOptions options;
  options.windows_to_alarm = static_cast<std::size_t>(
      std::stoul(args.get("windows-to-alarm", "1")));
  options.decisions.enabled = true;
  options.decisions.sample_every = 1;  // audit every scored window
  options.decisions.ring_capacity = trace.events.size() + 1;
  core::OnlineMonitor monitor(detector, nullptr, options);
  for (const auto& event : trace.events) monitor.on_event(event);

  const auto& records = monitor.recent_decisions();
  if (args.get("json", "0") == "1") {
    for (const auto& record : records) {
      std::cout << obs::decision_record_json(record) << "\n";
    }
    return monitor.stats().windows_flagged > 0 ? 2 : 0;
  }

  struct Transition {
    double total = 0.0;
    double worst = 0.0;
    std::size_t count = 0;
    bool unknown = false;
  };
  std::map<std::string, Transition> transitions;
  const obs::DecisionRecord* worst_window = nullptr;
  for (const auto& record : records) {
    if (worst_window == nullptr ||
        record.log_likelihood < worst_window->log_likelihood) {
      worst_window = &record;
    }
    std::string prev = "(start)";
    for (const auto& sym : record.symbols) {
      std::string key = prev;
      key += " -> ";
      key += sym.label;
      Transition& t = transitions[key];
      t.total += sym.log_prob;
      t.worst = std::min(t.worst, sym.log_prob);
      t.count += 1;
      t.unknown = t.unknown || sym.unknown;
      prev.assign(sym.label);
    }
  }

  const auto& stats = monitor.stats();
  std::cout << "trace:   " << trace_path << " (" << stats.events_seen
            << " events, " << stats.events_observed << " on-stream)\n";
  std::cout << "windows: " << stats.windows_scored << " scored, "
            << stats.windows_flagged << " flagged, " << stats.alarms
            << " alarms (threshold "
            << format_double(detector.threshold(), 3) << ")\n";
  if (worst_window != nullptr) {
    std::cout << "worst:   window " << worst_window->window_index
              << " log-likelihood "
              << format_double(worst_window->log_likelihood, 3)
              << " (margin " << format_double(worst_window->margin, 3)
              << ")\n";
  }

  std::vector<std::pair<std::string, Transition>> ranked(transitions.begin(),
                                                         transitions.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second.total != b.second.total) {
      return a.second.total < b.second.total;
    }
    return a.first < b.first;  // deterministic tie-break
  });
  const auto top = static_cast<std::size_t>(
      std::stoul(args.get("top", "10")));
  if (ranked.size() > top) ranked.resize(top);

  TablePrinter table({"Transition", "Count", "Total log-p", "Worst log-p",
                      "Unknown"});
  for (const auto& [name, t] : ranked) {
    table.add_row({name, std::to_string(t.count),
                   format_double(t.total, 3), format_double(t.worst, 3),
                   t.unknown ? "yes" : ""});
  }
  table.print();
  return stats.windows_flagged > 0 ? 2 : 0;  // grep-style exit code
}

/// One dashboard frame: /varz (ring-derived rates and quantiles) plus
/// /statusz (per-shard and per-loop ground truth). Returns the rendered
/// text so the caller can clear-and-repaint atomically.
std::string render_top_frame(const std::string& host, std::uint16_t port,
                             const util::JsonValue& varz,
                             const util::JsonValue& statusz) {
  const auto num = [](const util::JsonValue& doc, const std::string& path,
                      double fallback) {
    const util::JsonValue* value = doc.find_path(path);
    return value == nullptr ? fallback : value->number_or(fallback);
  };
  const auto str = [](const util::JsonValue& doc, const std::string& path,
                      const std::string& fallback) {
    const util::JsonValue* value = doc.find_path(path);
    return value == nullptr ? fallback : value->string_or(fallback);
  };
  const auto count = [](double value) {
    return std::to_string(static_cast<long long>(value));
  };
  const auto member = [](const util::JsonValue& obj, const char* key) {
    const util::JsonValue* value = obj.find(key);
    return value == nullptr ? 0.0 : value->number_or(0.0);
  };

  std::ostringstream out;
  out << "cmarkovd @ " << host << ":" << port << "   up "
      << count(num(statusz, "uptime_seconds", 0)) << "s   sessions "
      << count(num(statusz, "sessions_open", 0)) << "   workers "
      << count(num(statusz, "workers", 0)) << " (policy "
      << str(statusz, "policy", "?") << ")\n";
  out << "overload: " << str(statusz, "overload.name", "off") << " (L"
      << count(num(statusz, "overload.level", 0)) << ")   drift: ";
  const util::JsonValue* armed = statusz.find_path("drift.armed");
  if (armed != nullptr && armed->kind == util::JsonValue::Kind::kBool &&
      armed->boolean) {
    out << "armed ks=" << format_double(num(statusz, "drift.last_ks", 0), 4)
        << " streak=" << count(num(statusz, "drift.breach_streak", 0));
  } else {
    out << "off";
  }
  out << "\n\n";

  const std::string kEv = "counters.cmarkov_serve_events_processed_total.";
  const std::string kLat = "histograms.cmarkov_serve_latency_micros.";
  out << "ev/s " << format_double(num(varz, kEv + "rate_per_second", 0), 1)
      << "   windows/s "
      << format_double(
             num(varz,
                 "counters.cmarkov_serve_windows_total.rate_per_second", 0),
             1)
      << "   lat p50 " << format_double(num(varz, kLat + "p50", 0), 0)
      << "us p99 " << format_double(num(varz, kLat + "p99", 0), 0)
      << "us   drop/s "
      << format_double(
             num(varz,
                 "counters.cmarkov_serve_events_dropped_total"
                 ".rate_per_second",
                 0),
             1)
      << "   alarms +"
      << count(num(varz, "counters.cmarkov_serve_alarms_total.delta", 0))
      << " (" << count(num(varz, "counters.cmarkov_serve_alarms_total.value", 0))
      << " total)\n";
  out << "ring: " << count(num(varz, "samples", 0)) << " samples @ "
      << format_double(num(varz, "period_seconds", 0), 1) << "s (cap "
      << count(num(varz, "ring_capacity", 0)) << ")\n\n";

  const util::JsonValue* shards = statusz.find_path("shards");
  if (shards != nullptr && shards->is_array()) {
    TablePrinter table({"Shard", "Sessions", "Queue", "Processed", "Evicted",
                        "State KiB"});
    for (const auto& shard : shards->array) {
      table.add_row({count(member(shard, "shard")),
                     count(member(shard, "sessions")),
                     count(member(shard, "queue_depth")),
                     count(member(shard, "processed")),
                     count(member(shard, "evicted_sessions")),
                     format_double(member(shard, "state_bytes") / 1024.0, 1)});
    }
    out << table.to_string();
  }
  const util::JsonValue* loops = statusz.find_path("loops");
  if (loops != nullptr && loops->is_array() && !loops->array.empty()) {
    TablePrinter table({"Loop", "Conns", "Read KiB", "Written KiB", "Units"});
    for (const auto& loop : loops->array) {
      table.add_row({count(member(loop, "loop")),
                     count(member(loop, "connections_open")),
                     format_double(member(loop, "bytes_read") / 1024.0, 1),
                     format_double(member(loop, "bytes_written") / 1024.0, 1),
                     count(member(loop, "units"))});
    }
    out << table.to_string();
  }
  return out.str();
}

/// `cmarkov top`: live dashboard over a running cmarkovd's admin plane.
/// Repaints every --interval-ms from GET /varz + /statusz; --plain 1
/// appends frames instead of clearing (pipe/CI friendly), --iterations N
/// stops after N frames (0 = until interrupted).
int cmd_top(const Args& args) {
  const std::string port_text = args.get("port", "");
  if (port_text.empty()) {
    throw std::runtime_error(
        "top: need --port <admin-port> (start cmarkovd with --tcp and "
        "--admin-port)");
  }
  const auto port = static_cast<std::uint16_t>(std::stoul(port_text));
  const std::string host = args.get("host", "127.0.0.1");
  const auto interval_ms = std::stoull(args.get("interval-ms", "2000"));
  const auto iterations = std::stoull(args.get("iterations", "0"));
  const bool plain = args.get("plain", "0") == "1";

  std::size_t failures = 0;
  for (std::uint64_t frame = 0; iterations == 0 || frame < iterations;
       ++frame) {
    if (frame > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    try {
      const auto varz_reply = serve::net::admin_http_get(host, port, "/varz");
      const auto statusz_reply =
          serve::net::admin_http_get(host, port, "/statusz");
      if (varz_reply.status != 200 || statusz_reply.status != 200) {
        throw std::runtime_error("admin plane returned HTTP " +
                                 std::to_string(varz_reply.status != 200
                                                    ? varz_reply.status
                                                    : statusz_reply.status));
      }
      const util::JsonValue varz = util::parse_json(varz_reply.body);
      const util::JsonValue statusz = util::parse_json(statusz_reply.body);
      const std::string body = render_top_frame(host, port, varz, statusz);
      if (!plain) std::cout << "\x1b[H\x1b[2J";  // home + clear
      std::cout << body << std::flush;
      failures = 0;
    } catch (const std::exception& e) {
      // Transient poll failures (daemon restarting, collector warming up)
      // keep the dashboard alive; give up once they look permanent.
      std::cerr << "top: " << e.what() << "\n";
      if (++failures >= 5) {
        throw std::runtime_error("5 consecutive poll failures, giving up");
      }
    }
  }
  return 0;
}

int usage() {
  std::cerr << "usage: cmarkov "
               "<list|analyze|trace|train|scan|monitor|explain|compare|top> "
               "...\n"
            << "  list                              built-in program suites\n"
            << "  analyze <prog> [--filter sys|lib] static-analysis summary\n"
            << "  trace <prog> [--count N] [--seed S] [--out DIR]\n"
            << "  train <prog> [--filter sys|lib] [--context 0|1]\n"
            << "        [--traces N] [--target-fp P] [--out FILE]\n"
            << "        [--profile-json FILE] [--chrome-trace FILE]\n"
            << "  scan <model> <trace>...           classify recorded traces\n"
            << "  monitor <model> <trace>           streaming detection demo\n"
            << "  explain --model FILE --trace FILE [--top N] [--json 1]\n"
            << "        ranked audit of the transitions behind each verdict\n"
            << "  compare <suite> [--filter sys|lib] 4-model accuracy table\n"
            << "  gadgets <suite>                   ROP gadget census\n"
            << "  top --port N [--host H] [--interval-ms N] [--iterations N]\n"
            << "        [--plain 1]               live cmarkovd dashboard\n"
            << "        (polls the --admin-port plane; see docs/SERVING.md)\n"
            << "analyze/train/compare accept --threads N (0 = one worker per\n"
            << "hardware core, the default); results are identical at any N.\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Args args = parse_args(argc, argv);
    if (command == "list") return cmd_list();
    if (command == "analyze") return cmd_analyze(args);
    if (command == "trace") return cmd_trace(args);
    if (command == "train") return cmd_train(args);
    if (command == "scan") return cmd_scan(args);
    if (command == "monitor") return cmd_monitor(args);
    if (command == "explain") return cmd_explain(args);
    if (command == "compare") return cmd_compare(args);
    if (command == "gadgets") return cmd_gadgets(args);
    if (command == "top") return cmd_top(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "cmarkov " << command << ": " << e.what() << "\n";
    return 1;
  }
}
