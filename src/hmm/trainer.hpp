// Stateful Baum-Welch training engine: batch `fit`, incremental
// `partial_fit`, and a serializable TrainerState so training can resume
// across process restarts (ROADMAP item 3).
//
// The bit-identity contract (asserted by incremental_training_test):
//   fit(A ++ B)  ==  fit(A); partial_fit(B)      (exact double equality,
//                                                 at every thread count)
//
// How: every run replays the full EM trajectory from the immutable initial
// model θ₀ — iterations past the first depend on the whole corpus through
// the re-estimated parameters, so none of their work is reusable — but the
// iteration-0 E-step (the only one evaluated under θ₀, which never
// changes) is cached as the *in-place fold state* of the 16 fixed merge
// slots (PR 2). Floating-point addition is non-associative, so per-batch
// delta accumulators could not be recombined exactly; continuing the left
// fold cell-by-cell from the cached prefix is the one representation that
// reproduces a batch run's sums bit-for-bit. partial_fit therefore folds
// only the new sequences into iteration 0 and pays full price for the
// remaining iterations: the honest speedup is one E-step over the old data
// out of K, reported as such by bench_table5 (BENCH_train.json).
// docs/ALGORITHMS.md §8 has the full argument.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "src/hmm/baum_welch.hpp"
#include "src/hmm/hmm.hpp"

namespace cmarkov::hmm {

/// Merge slots of the parallel E-step. Fixed — never derived from the
/// thread count *or the corpus size* — so that sequence s lands in slot
/// s % 16 forever as the corpus grows, which is what lets a cached slot
/// fold be continued by partial_fit. (The legacy free function clamped the
/// slot count to the corpus size; for fewer than 16 sequences both
/// policies place sequence s alone in slot s and merge identically, so the
/// trained bits are unchanged.)
inline constexpr std::size_t kTrainerMergeSlots = 16;

/// Additive expected-count accumulators of one E-step merge slot
/// (the gamma/xi sufficient statistics of the sequences folded into it).
struct SuffStats {
  Matrix transition_num;               // N x N  (xi sums)
  std::vector<double> transition_den;  // N      (gamma sums, t < T-1)
  Matrix emission_num;                 // N x M  (gamma sums per symbol)
  std::vector<double> emission_den;    // N      (gamma sums, all t)
  std::vector<double> initial;         // N      (gamma at t = 0)

  SuffStats() = default;
  SuffStats(std::size_t n, std::size_t m)
      : transition_num(n, n),
        transition_den(n, 0.0),
        emission_num(n, m),
        emission_den(n, 0.0),
        initial(n, 0.0) {}

  void reset();
  void merge(const SuffStats& other);
};

/// Scalar summary of one absorbed trace batch, keyed by `id` (0 is the
/// fit() corpus, each partial_fit appends the next id). The gamma/xi
/// sufficient statistics of all batches live in TrainerState::slot_prefix
/// as one canonical fold in batch order — see the file comment for why the
/// per-batch deltas cannot be stored separately without losing exactness.
struct BatchRecord {
  std::size_t id = 0;
  std::size_t train_count = 0;
  std::size_t holdout_count = 0;
  /// EM iterations of the run that absorbed this batch.
  std::size_t iterations = 0;
  /// Mean train log-likelihood of θ₀ entering that run, and of the model
  /// entering its final iteration (the run's LL delta is the difference).
  double entry_train_ll = 0.0;
  double final_train_ll = 0.0;
};

/// Complete resumable training state (serialized by core::model_io as
/// `cmarkov-trainer-state 1`; doubles travel as hex bit patterns so a
/// save/load round trip is exact).
struct TrainerState {
  /// θ₀ — every fit/partial_fit replays EM from here. Immutable.
  Hmm initial_model;

  // The numeric knobs that shape the EM trajectory. A resumed Trainer
  // adopts these (not the caller's) so the replay stays exact; the
  // ExecContext is deliberately excluded — threads and sinks never change
  // results (PR 2 guarantee).
  std::size_t max_iterations = 30;
  double min_improvement = 1e-3;
  double pseudocount = 1e-6;
  std::size_t patience = 1;
  double impossible_penalty = -1e4;

  /// Absorbed corpus, in absorption order (batch 0 first).
  std::vector<ObservationSeq> train;
  std::vector<ObservationSeq> holdout;
  std::vector<BatchRecord> batches;

  // ---- iteration-0 prefix cache under θ₀ ----
  /// Sequences of `train` folded into `slot_prefix` (always a prefix).
  std::size_t cached_count = 0;
  /// The 16 merge-slot accumulators after folding train[0..cached_count):
  /// sequence s in slot s % 16, ascending-s in-place fold — exactly the
  /// state a batch run's iteration 0 reaches. Empty until the first run.
  std::vector<SuffStats> slot_prefix;
  /// Left fold (in s order) of the iteration-0 per-sequence
  /// log-likelihoods over train[0..cached_count), impossible/empty
  /// sequences contributing `impossible_penalty`.
  double ll_sum_prefix = 0.0;
  /// Sequences of the cached prefix that θ₀ accepts (not impossible).
  std::size_t observed_prefix = 0;
  /// Holdout baseline cache: left fold of θ₀ log-likelihoods over
  /// holdout[0..holdout_cached).
  std::size_t holdout_cached = 0;
  double holdout_ll_sum = 0.0;

  /// Structural sanity (shapes, prefix bounds, symbol range). Throws
  /// std::invalid_argument; used by the resume constructor and model_io.
  void validate() const;
};

/// Stateful training engine — the only Baum-Welch entry point (the old
/// free training function is gone; tools/check_trainer_api.sh keeps it
/// from coming back).
class Trainer {
 public:
  /// Fresh trainer starting from `initial_model` (θ₀). The options'
  /// numeric knobs are captured into the state; exec drives threading and
  /// observability sinks.
  explicit Trainer(Hmm initial_model, TrainingOptions options = {});

  /// Resumes from a (de)serialized state: the state's numeric knobs win,
  /// `options.exec` supplies the runtime (threads, metrics, profile). The
  /// model is not rematerialized until the next fit/partial_fit.
  explicit Trainer(TrainerState state, TrainingOptions options = {});

  /// Batch training: replaces any absorbed corpus with exactly this data
  /// and trains θ₀ on it. Mirrors the legacy free function bit-for-bit.
  TrainingReport fit(std::vector<ObservationSeq> corpus,
                     std::vector<ObservationSeq> holdout = {});

  /// Incremental training: appends the new sequences to the absorbed
  /// corpus and re-derives the model, bit-identical to fit() on the
  /// concatenated corpus at every thread count. New symbols must already
  /// be within θ₀'s emission width (throws std::invalid_argument
  /// otherwise — vocabulary growth requires a batch fit).
  TrainingReport partial_fit(
      const std::vector<ObservationSeq>& new_traces,
      const std::vector<ObservationSeq>& new_holdout = {});

  /// True once a fit/partial_fit has run (or a resumed state had one).
  bool has_model() const { return has_model_; }
  /// The trained model of the last run. Throws std::logic_error before
  /// the first fit/partial_fit.
  const Hmm& model() const;
  const Hmm& initial_model() const { return state_.initial_model; }
  const TrainerState& state() const { return state_; }
  const TrainingOptions& options() const { return options_; }

  /// One report per fit/partial_fit call on this object, oldest first
  /// (per-run iteration counts and LL trajectories — the TrainingReport
  /// ergonomics satellite; scalar per-batch summaries persist in
  /// state().batches across restarts).
  const std::vector<TrainingReport>& history() const { return history_; }
  const TrainingReport& last_report() const;

  /// Publish hook: the serving tier installs a callback that wraps the
  /// trained model into a core::Detector, compiles its ScoringKernel and
  /// pushes a new version into the ModelRegistry (src/hmm cannot see
  /// those layers, hence the inversion). publish() invokes it with this
  /// trainer; throws std::logic_error when no hook is installed or no
  /// model has been trained yet.
  using PublishHook = std::function<void(const Trainer&)>;
  void set_publish_hook(PublishHook hook) { publish_hook_ = std::move(hook); }
  void publish() const;

 private:
  /// Replays EM from θ₀ over the absorbed corpus. Iteration 0 continues
  /// the cached slot fold over train[0..cached_count) and snapshots the
  /// extended fold back into the state; later iterations run in full.
  TrainingReport run_em();

  void record_run_metrics(const TrainingReport& report,
                          std::size_t new_sequences) const;

  TrainerState state_;
  TrainingOptions options_;
  Hmm model_;
  bool has_model_ = false;
  std::vector<TrainingReport> history_;
  PublishHook publish_hook_;
};

}  // namespace cmarkov::hmm
