#include "src/ir/parser.hpp"

#include "src/ir/lexer.hpp"

namespace cmarkov::ir {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program run() {
    Program program;
    while (!check(TokenKind::kEnd)) {
      program.functions.push_back(parse_function());
    }
    return program;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }

  bool check(TokenKind kind) const { return peek().kind == kind; }

  Token advance() { return tokens_[pos_++]; }

  bool match(TokenKind kind) {
    if (!check(kind)) return false;
    ++pos_;
    return true;
  }

  Token expect(TokenKind kind, const char* what) {
    if (!check(kind)) {
      throw SyntaxError(std::string("expected ") + what + ", found " +
                            token_kind_name(peek().kind),
                        peek().line, peek().column);
    }
    return advance();
  }

  Function parse_function() {
    const Token fn = expect(TokenKind::kFn, "'fn'");
    Function out;
    out.line = fn.line;
    out.name = expect(TokenKind::kIdentifier, "function name").text;
    expect(TokenKind::kLParen, "'('");
    if (!check(TokenKind::kRParen)) {
      do {
        out.params.push_back(
            expect(TokenKind::kIdentifier, "parameter name").text);
      } while (match(TokenKind::kComma));
    }
    expect(TokenKind::kRParen, "')'");
    out.body = parse_block();
    return out;
  }

  BlockStmt parse_block() {
    expect(TokenKind::kLBrace, "'{'");
    BlockStmt block;
    while (!check(TokenKind::kRBrace)) {
      if (check(TokenKind::kEnd)) {
        throw SyntaxError("unterminated block", peek().line, peek().column);
      }
      block.statements.push_back(parse_statement());
    }
    expect(TokenKind::kRBrace, "'}'");
    return block;
  }

  StmtPtr parse_statement() {
    const Token& head = peek();
    switch (head.kind) {
      case TokenKind::kVar: {
        advance();
        const Token name = expect(TokenKind::kIdentifier, "variable name");
        ExprPtr init;
        if (match(TokenKind::kAssign)) init = parse_expr();
        expect(TokenKind::kSemicolon, "';'");
        return make_var_decl(name.text, std::move(init), head.line);
      }
      case TokenKind::kIf: {
        advance();
        expect(TokenKind::kLParen, "'('");
        ExprPtr cond = parse_expr();
        expect(TokenKind::kRParen, "')'");
        BlockStmt then_block = parse_block();
        std::optional<BlockStmt> else_block;
        if (match(TokenKind::kElse)) else_block = parse_block();
        return make_if(std::move(cond), std::move(then_block),
                       std::move(else_block), head.line);
      }
      case TokenKind::kWhile: {
        advance();
        expect(TokenKind::kLParen, "'('");
        ExprPtr cond = parse_expr();
        expect(TokenKind::kRParen, "')'");
        BlockStmt body = parse_block();
        return make_while(std::move(cond), std::move(body), head.line);
      }
      case TokenKind::kReturn: {
        advance();
        ExprPtr value;
        if (!check(TokenKind::kSemicolon)) value = parse_expr();
        expect(TokenKind::kSemicolon, "';'");
        return make_return(std::move(value), head.line);
      }
      case TokenKind::kIdentifier: {
        // Disambiguate assignment ("x = e;") from a call expression
        // statement ("f(...);") by one-token lookahead.
        if (tokens_[pos_ + 1].kind == TokenKind::kAssign) {
          const Token name = advance();
          advance();  // '='
          ExprPtr value = parse_expr();
          expect(TokenKind::kSemicolon, "';'");
          return make_assign(name.text, std::move(value), head.line);
        }
        ExprPtr expr = parse_expr();
        expect(TokenKind::kSemicolon, "';'");
        return make_expr_stmt(std::move(expr), head.line);
      }
      default: {
        ExprPtr expr = parse_expr();
        expect(TokenKind::kSemicolon, "';'");
        return make_expr_stmt(std::move(expr), head.line);
      }
    }
  }

  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (check(TokenKind::kOrOr)) {
      const Token op = advance();
      lhs = make_binary(BinaryOp::kOr, std::move(lhs), parse_and(), op.line);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_cmp();
    while (check(TokenKind::kAndAnd)) {
      const Token op = advance();
      lhs = make_binary(BinaryOp::kAnd, std::move(lhs), parse_cmp(), op.line);
    }
    return lhs;
  }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_add();
    BinaryOp op;
    switch (peek().kind) {
      case TokenKind::kLt: op = BinaryOp::kLt; break;
      case TokenKind::kLe: op = BinaryOp::kLe; break;
      case TokenKind::kGt: op = BinaryOp::kGt; break;
      case TokenKind::kGe: op = BinaryOp::kGe; break;
      case TokenKind::kEqEq: op = BinaryOp::kEq; break;
      case TokenKind::kNotEq: op = BinaryOp::kNe; break;
      default: return lhs;
    }
    const Token token = advance();
    return make_binary(op, std::move(lhs), parse_add(), token.line);
  }

  ExprPtr parse_add() {
    ExprPtr lhs = parse_mul();
    while (check(TokenKind::kPlus) || check(TokenKind::kMinus)) {
      const Token op = advance();
      lhs = make_binary(
          op.kind == TokenKind::kPlus ? BinaryOp::kAdd : BinaryOp::kSub,
          std::move(lhs), parse_mul(), op.line);
    }
    return lhs;
  }

  ExprPtr parse_mul() {
    ExprPtr lhs = parse_unary();
    while (check(TokenKind::kStar) || check(TokenKind::kSlash) ||
           check(TokenKind::kPercent)) {
      const Token op = advance();
      BinaryOp bop = BinaryOp::kMul;
      if (op.kind == TokenKind::kSlash) bop = BinaryOp::kDiv;
      if (op.kind == TokenKind::kPercent) bop = BinaryOp::kMod;
      lhs = make_binary(bop, std::move(lhs), parse_unary(), op.line);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (check(TokenKind::kMinus)) {
      const Token op = advance();
      return make_unary(UnaryOp::kNeg, parse_unary(), op.line);
    }
    if (check(TokenKind::kNot)) {
      const Token op = advance();
      return make_unary(UnaryOp::kNot, parse_unary(), op.line);
    }
    return parse_primary();
  }

  std::vector<ExprPtr> parse_call_args() {
    std::vector<ExprPtr> args;
    expect(TokenKind::kLParen, "'('");
    if (!check(TokenKind::kRParen)) {
      do {
        args.push_back(parse_expr());
      } while (match(TokenKind::kComma));
    }
    expect(TokenKind::kRParen, "')'");
    return args;
  }

  ExprPtr parse_primary() {
    const Token& head = peek();
    switch (head.kind) {
      case TokenKind::kInteger: {
        const Token token = advance();
        return make_int(token.int_value, token.line);
      }
      case TokenKind::kSys:
      case TokenKind::kLib: {
        const Token token = advance();
        const CallKind kind = token.kind == TokenKind::kSys
                                  ? CallKind::kSyscall
                                  : CallKind::kLibcall;
        expect(TokenKind::kLParen, "'('");
        const Token name = expect(TokenKind::kString, "call name string");
        std::vector<ExprPtr> args;
        while (match(TokenKind::kComma)) args.push_back(parse_expr());
        expect(TokenKind::kRParen, "')'");
        return make_external_call(kind, name.text, std::move(args),
                                  token.line);
      }
      case TokenKind::kInput: {
        const Token token = advance();
        expect(TokenKind::kLParen, "'('");
        expect(TokenKind::kRParen, "')'");
        return make_input(token.line);
      }
      case TokenKind::kIdentifier: {
        const Token token = advance();
        if (check(TokenKind::kLParen)) {
          return make_internal_call(token.text, parse_call_args(),
                                    token.line);
        }
        return make_var(token.text, token.line);
      }
      case TokenKind::kLParen: {
        advance();
        ExprPtr inner = parse_expr();
        expect(TokenKind::kRParen, "')'");
        return inner;
      }
      default:
        throw SyntaxError("expected expression, found " +
                              token_kind_name(head.kind),
                          head.line, head.column);
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse_program(std::string_view source) {
  return Parser(tokenize(source)).run();
}

}  // namespace cmarkov::ir
