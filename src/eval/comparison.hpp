// Whole-experiment driver: builds, trains and evaluates the four models on
// one (program, call stream) pair under the paper's protocol — dedup'd
// 15-call segments, 20% termination set, k-fold cross validation, FP on
// held-out normal segments, FN on Abnormal-S segments. Powers the
// Figure 2-5 benches.
#pragma once

#include <string>
#include <vector>

#include "src/eval/cross_validation.hpp"
#include "src/eval/metrics.hpp"
#include "src/eval/model_zoo.hpp"
#include "src/hmm/baum_welch.hpp"

namespace cmarkov::eval {

struct ComparisonOptions {
  /// Test cases executed to collect normal traces.
  std::size_t test_cases = 60;
  /// Abnormal-S segments generated.
  std::size_t abnormal_count = 1500;
  std::size_t segment_length = 15;
  std::uint64_t seed = 1;
  /// Which models to run (defaults to all four).
  std::vector<ModelKind> kinds = all_model_kinds();
  /// Execution context for building, training, and fold materialization
  /// (0 = one per hardware core); authoritative over the nested
  /// build/training/cv contexts. Results are identical at any thread count.
  ExecContext exec;
  CrossValidationOptions cv{.folds = 3,
                            .termination_fraction = 0.2,
                            .max_train_segments = 400,
                            .exec = {}};
  hmm::TrainingOptions training;
  ModelBuildOptions build;
};

struct ModelEvaluation {
  ModelKind kind = ModelKind::kCMarkov;
  /// Pooled normal/abnormal scores across folds.
  ScoreSet scores;
  std::size_t num_states = 0;
  std::size_t alphabet_size = 0;
  std::size_t static_calls = 0;
  double train_seconds = 0.0;
  std::size_t train_iterations = 0;
};

struct SuiteComparison {
  std::string program;
  analysis::CallFilter filter = analysis::CallFilter::kLibcalls;
  std::size_t traces = 0;
  std::size_t unique_normal_segments = 0;
  std::size_t abnormal_segments = 0;
  std::vector<ModelEvaluation> models;

  const ModelEvaluation& model(ModelKind kind) const;
};

/// Runs the full comparison for one suite and call stream.
SuiteComparison compare_models(const workload::ProgramSuite& suite,
                               analysis::CallFilter filter,
                               const ComparisonOptions& options);

/// Convenience for benches: environment-driven scaling. Returns true when
/// CMARKOV_FULL=1 (or --full was passed), selecting paper-scale parameters.
bool full_mode_enabled(int argc, char** argv);

/// Default comparison options for quick (CI-speed) or full runs.
ComparisonOptions default_comparison_options(bool full);

}  // namespace cmarkov::eval
