// The concurrency heart of cmarkovd: one OnlineMonitor per monitored
// process (a "session"), sharded across a fixed worker pool by session id.
//
// Threading model (docs/SERVING.md has the full picture):
//   - Producers (transport threads) call submit(); the event lands on the
//     bounded MPSC queue of the worker that owns the session's shard.
//   - Each worker drains its own queue in FIFO batches, so events of one
//     session are always scored in arrival order by a single thread.
//   - Backpressure on a full queue is explicit policy: block the producer,
//     evict the oldest queued event (counted against the evicted event's
//     session), or reject the new event (counted against the submitter).
//
// Per-session verdicts are bit-identical to feeding the same events through
// a standalone core::OnlineMonitor, provided each session has one producer
// and no events are dropped (block policy) — serve_test asserts this.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/core/online_monitor.hpp"
#include "src/obs/metrics_registry.hpp"
#include "src/obs/trace/decision_log.hpp"
#include "src/obs/trace/tracer.hpp"
#include "src/serve/model_registry.hpp"
#include "src/serve/service_metrics.hpp"
#include "src/util/stopwatch.hpp"

namespace cmarkov::serve {

enum class BackpressurePolicy { kBlock, kDropOldest, kReject };

const char* backpressure_policy_name(BackpressurePolicy policy);
/// "block" | "drop-oldest" | "reject"; nullopt for anything else.
std::optional<BackpressurePolicy> parse_backpressure_policy(
    std::string_view name);

struct ServiceConfig {
  std::size_t num_workers = 2;
  /// Maximum queued events per worker (must be > 0).
  std::size_t queue_capacity = 1024;
  BackpressurePolicy policy = BackpressurePolicy::kBlock;
  /// Monitor options for sessions opened without explicit options.
  core::MonitorOptions monitor;
  /// Test hook: spawn no worker threads; queued events are processed
  /// synchronously by drain() on the calling thread. Makes backpressure
  /// accounting deterministic. (A full queue under the block policy is
  /// pumped inline instead of deadlocking.)
  bool manual_pump = false;
  /// Registry receiving the cmarkov_serve_* instruments. Non-owning; must
  /// outlive the manager. Null = the manager creates a private registry
  /// (exposed via metrics_registry()).
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-event span tracing (queue/score/reply); off by default. The
  /// sampling decision is taken once per event at submit time; events
  /// carrying an explicit protocol trace id (tid=) are always traced.
  /// Decision-record sampling is configured separately via
  /// monitor.decisions (cmarkovd's --trace-sample sets both).
  obs::TracerOptions tracing;
  /// Capacity of the service-wide JSONL decision log (appends beyond it
  /// are dropped and counted — flight-recorder semantics).
  std::size_t decision_log_capacity = 4096;
};

/// What happened to a submitted event.
enum class SubmitResult {
  kAccepted,
  /// Accepted, but the oldest queued event was evicted to make room.
  kDroppedOldest,
  /// Refused; the event was not queued.
  kRejected,
  kUnknownSession,
};

struct SessionStats {
  std::string id;
  std::string model;
  std::uint64_t enqueued = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;   ///< this session's events evicted from a queue
  std::uint64_t rejected = 0;  ///< this session's submissions refused
  /// Cumulative monitor counters (alarms live in monitor.alarms).
  core::MonitorStats monitor;
};

class SessionManager {
 public:
  SessionManager(const ModelRegistry& registry, ServiceConfig config = {});
  ~SessionManager();
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session scoring against `model`. Throws std::invalid_argument
  /// on duplicate id, unknown model, or invalid monitor options.
  void open_session(const std::string& id, const std::string& model,
                    std::optional<core::MonitorOptions> options = std::nullopt);

  /// Queues one event for the session; applies the backpressure policy when
  /// the shard queue is full. Safe from any thread.
  SubmitResult submit(const std::string& id, trace::CallEvent event);

  /// Same, threading a protocol trace id through the worker queue into the
  /// scoring path. A non-empty `trace_id` forces span tracing for this
  /// event (sampling bypassed) and is stamped into any decision record the
  /// event produces. When the event is admitted for tracing, `seq_out` (if
  /// non-null) receives its span sequence number so the caller can record
  /// correlated spans (the protocol layer's "reply" span).
  SubmitResult submit(const std::string& id, trace::CallEvent event,
                      const std::string& trace_id,
                      std::uint64_t* seq_out = nullptr);

  bool has_session(const std::string& id) const;

  /// Live counters (no drain; may lag concurrent processing).
  SessionStats session_stats(const std::string& id) const;
  std::vector<SessionStats> all_session_stats() const;

  /// Drains outstanding events, then removes the session and returns its
  /// final stats. Throws std::invalid_argument for unknown ids.
  SessionStats close_session(const std::string& id);

  /// Blocks until every event submitted before the call has been processed.
  /// Quiescent only if no producer submits concurrently.
  void drain();

  ServiceMetrics metrics() const;

  /// Refreshes the instantaneous gauges (uptime, sessions, queue depths)
  /// and returns the registry holding every cmarkov_serve_* instrument —
  /// the METRICS verb renders this via obs::to_kv_line/to_prometheus.
  const obs::MetricsRegistry& metrics_registry();

  /// Fresh collision-free id ("s1", "s2", ...) for transports whose HELLO
  /// omits one.
  std::string next_session_id();

  /// The service's span tracer (always present; disabled unless
  /// config.tracing.enabled). Exposed for the reply-span instrumentation
  /// in the protocol layer and for exporters.
  obs::Tracer& tracer() { return *tracer_; }
  const obs::Tracer& tracer() const { return *tracer_; }

  /// Records a span through the tracer with cmarkov_trace_spans_* counter
  /// accounting (the path every span — worker- or transport-side — takes).
  void record_span(obs::SpanRecord span);

  /// Service-wide decision log (JSONL sink; --decision-log dumps it).
  const obs::DecisionLog& decision_log() const { return *decision_log_; }

  /// Microseconds on the service clock that timestamps every span (so
  /// transport-side spans line up with worker-side ones).
  double now_micros() const { return clock_.micros(); }

  /// Up to `n` most recent decision records of a session, oldest first
  /// (the TRACE verb). Empty unless the session's monitor has decision
  /// tracing enabled. Throws std::invalid_argument for unknown ids.
  std::vector<obs::DecisionRecord> recent_decisions(const std::string& id,
                                                    std::size_t n) const;

  const ServiceConfig& config() const { return config_; }

 private:
  struct Session;
  struct Item;
  struct Worker;

  std::shared_ptr<Session> find_session(const std::string& id) const;
  void process_item(Item& item);
  void pump_worker(Worker& worker);
  void worker_loop(Worker& worker);
  SessionStats snapshot(const Session& session) const;
  void refresh_gauges();

  const ModelRegistry& registry_;
  ServiceConfig config_;
  Stopwatch clock_;
  std::vector<std::unique_ptr<Worker>> workers_;

  mutable std::shared_mutex sessions_mu_;
  std::unordered_map<std::string, std::shared_ptr<Session>> sessions_;

  std::atomic<std::uint64_t> next_id_{0};

  // Service-wide instruments, resolved once in the constructor from the
  // caller's registry (or the private owned one).
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  obs::Counter* enqueued_total_;
  obs::Counter* processed_total_;
  obs::Counter* dropped_total_;
  obs::Counter* rejected_total_;
  obs::Counter* windows_total_;
  obs::Counter* alarms_total_;
  obs::Histogram* latency_micros_;
  obs::Gauge* uptime_gauge_;
  obs::Gauge* sessions_gauge_;
  std::vector<obs::Gauge*> queue_depth_gauges_;

  // Tracing sinks (always constructed; zero-capacity / disabled when off).
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::DecisionLog> decision_log_;
  obs::Counter* spans_total_;
  obs::Counter* spans_dropped_total_;
  obs::Counter* decisions_total_;
  obs::Counter* decisions_dropped_total_;
};

}  // namespace cmarkov::serve
