// n-gram (STIDE-style) baseline: the "simplest flow-sensitive solution" of
// the paper's related-work section [1, 32, 33]. Training records the set of
// all n-grams seen in normal traces; detection counts unseen n-grams in a
// segment. Exposed with a score interface compatible with eval::ScoreSet
// (higher = more normal), so the ablation bench can sweep thresholds over
// it like over the probabilistic models.
#pragma once

#include <cstddef>
#include <set>
#include <vector>

#include "src/hmm/hmm.hpp"

namespace cmarkov::eval {

class NgramDetector {
 public:
  /// `n` is the gram length (classic STIDE uses 6).
  explicit NgramDetector(std::size_t n = 6);

  /// Records every n-gram of every sequence (shorter sequences are recorded
  /// whole).
  void train(const std::vector<hmm::ObservationSeq>& sequences);

  /// True if every n-gram of the segment was seen in training.
  bool accepts(const hmm::ObservationSeq& segment) const;

  /// Score = -(number of unseen n-grams in the segment); 0 for a fully
  /// known segment. Monotone in "normality", so Eq. 3/4 threshold sweeps
  /// apply unchanged.
  double score(const hmm::ObservationSeq& segment) const;

  std::size_t gram_length() const { return n_; }
  std::size_t distinct_grams() const { return grams_.size(); }

 private:
  std::size_t n_;
  std::set<hmm::ObservationSeq> grams_;
};

}  // namespace cmarkov::eval
