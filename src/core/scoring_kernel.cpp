#include "src/core/scoring_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "src/util/stopwatch.hpp"

namespace cmarkov::core {

namespace {

/// FNV-1a over one byte span, continuing from a running digest. Processing
/// "name", then "@", then "caller" piece by piece yields exactly the digest
/// of the concatenated observation string — the property find_observation
/// relies on to skip building it.
inline std::uint64_t fnv1a(std::uint64_t hash, std::string_view bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;

std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// Bump-carves an 8-aligned section of `bytes` out of the arena cursor.
std::size_t carve(std::size_t& cursor, std::size_t bytes) {
  const std::size_t at = cursor;
  cursor += (bytes + 7) & ~std::size_t{7};
  return at;
}

}  // namespace

std::shared_ptr<const ScoringKernel> ScoringKernel::compile(
    const Detector& detector, KernelOptions options) {
  const Stopwatch watch;
  if (!detector.trained()) {
    throw std::invalid_argument(
        "ScoringKernel: detector is not trained; the serve tier only scores");
  }
  if (options.prune && options.prune_epsilon < 0.0) {
    throw std::invalid_argument(
        "ScoringKernel: prune_epsilon must be >= 0");
  }
  const hmm::Hmm& model = detector.model();
  const hmm::Alphabet& alphabet = detector.alphabet();
  const std::size_t n = model.num_states();
  const std::size_t m = model.num_symbols();
  const std::size_t a = alphabet.size();

  // A shared_ptr with a private-constructor payload: allocate then fill.
  std::shared_ptr<ScoringKernel> kernel(new ScoringKernel());
  kernel->num_states_ = n;
  kernel->num_symbols_ = m;
  kernel->alphabet_size_ = a;
  kernel->threshold_ = detector.threshold();
  kernel->context_sensitive_ = detector.config().pipeline.context_sensitive;
  kernel->options_ = options;

  // Pruned predecessor lists are shaped before sizing the arena. Entries
  // stay in ascending predecessor order so the pruned inner sum is
  // deterministic (same order every run, every host).
  std::vector<std::uint32_t> prune_offsets;
  std::vector<std::uint32_t> prune_idx;
  std::vector<double> prune_val;
  if (options.prune) {
    prune_offsets.reserve(n + 1);
    prune_offsets.push_back(0);
    std::vector<std::pair<double, std::uint32_t>> kept;
    for (std::size_t j = 0; j < n; ++j) {
      kept.clear();
      double dropped = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double value = model.transition(i, j);
        if (value <= options.prune_epsilon) {
          dropped += value;
        } else {
          kept.emplace_back(value, static_cast<std::uint32_t>(i));
        }
      }
      if (options.top_k > 0 && kept.size() > options.top_k) {
        // Keep the top_k heaviest entries; ties break to the lower
        // predecessor id so compilation is deterministic.
        std::sort(kept.begin(), kept.end(), [](const auto& x, const auto& y) {
          return x.first != y.first ? x.first > y.first
                                    : x.second < y.second;
        });
        for (std::size_t k = options.top_k; k < kept.size(); ++k) {
          dropped += kept[k].first;
        }
        kept.resize(options.top_k);
      }
      std::sort(kept.begin(), kept.end(), [](const auto& x, const auto& y) {
        return x.second < y.second;
      });
      for (const auto& [value, index] : kept) {
        prune_idx.push_back(index);
        prune_val.push_back(value);
      }
      prune_offsets.push_back(static_cast<std::uint32_t>(prune_idx.size()));
      kernel->pruned_entries_ += n - kept.size();
      kernel->max_dropped_mass_ = std::max(kernel->max_dropped_mass_, dropped);
    }
    if (prune_idx.empty() && n > 0) {
      throw std::invalid_argument(
          "ScoringKernel: pruning dropped every transition entry; "
          "lower prune_epsilon or raise top_k");
    }
  }

  std::size_t blob_bytes = 0;
  for (const std::string& symbol : alphabet.symbols()) {
    blob_bytes += symbol.size();
  }
  const std::size_t table_size = next_pow2(std::max<std::size_t>(16, 2 * a));

  // Single arena allocation: compute the layout, then fill the sections.
  std::size_t cursor = 0;
  const std::size_t initial_at = carve(cursor, n * sizeof(double));
  const std::size_t transition_at = carve(cursor, n * n * sizeof(double));
  const std::size_t emission_at = carve(cursor, m * n * sizeof(double));
  const std::size_t slots_at = carve(cursor, table_size * sizeof(Slot));
  const std::size_t blob_at = carve(cursor, blob_bytes);
  const std::size_t offsets_at =
      carve(cursor, options.prune ? prune_offsets.size() * sizeof(std::uint32_t)
                                  : 0);
  const std::size_t idx_at =
      carve(cursor, prune_idx.size() * sizeof(std::uint32_t));
  const std::size_t val_at = carve(cursor, prune_val.size() * sizeof(double));
  kernel->arena_.assign(cursor, std::byte{0});
  std::byte* base = kernel->arena_.data();

  const auto initial = reinterpret_cast<double*>(base + initial_at);
  for (std::size_t i = 0; i < n; ++i) initial[i] = model.initial[i];

  // Natural (source-major) layout: row i holds A(i, *) contiguously. The
  // forward step iterates sources outer / destinations inner, so the inner
  // loop updates n independent accumulators from one contiguous row — a
  // vectorizable form that still adds into each cur[j] in ascending-i
  // order, exactly like the reference recursion's per-destination sum.
  const auto transition = reinterpret_cast<double*>(base + transition_at);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      transition[i * n + j] = model.transition(i, j);
    }
  }
  const auto emission_t = reinterpret_cast<double*>(base + emission_at);
  for (std::size_t k = 0; k < m; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      emission_t[k * n + j] = model.emission(j, k);
    }
  }

  const auto slots = reinterpret_cast<Slot*>(base + slots_at);
  for (std::size_t s = 0; s < table_size; ++s) slots[s].offset = kEmptySlot;
  const auto blob = reinterpret_cast<char*>(base + blob_at);
  const std::size_t mask = table_size - 1;
  std::size_t blob_cursor = 0;
  for (std::size_t id = 0; id < a; ++id) {
    const std::string& symbol = alphabet.name(id);
    std::memcpy(blob + blob_cursor, symbol.data(), symbol.size());
    std::size_t slot = fnv1a(kFnvOffset, symbol) & mask;
    while (slots[slot].offset != kEmptySlot) slot = (slot + 1) & mask;
    slots[slot].offset = static_cast<std::uint32_t>(blob_cursor);
    slots[slot].length = static_cast<std::uint32_t>(symbol.size());
    slots[slot].id = static_cast<std::uint32_t>(id);
    blob_cursor += symbol.size();
  }

  kernel->initial_ = initial;
  kernel->transition_ = transition;
  kernel->emission_t_ = emission_t;
  kernel->slots_ = slots;
  kernel->slot_mask_ = mask;
  kernel->blob_ = blob;
  if (options.prune) {
    const auto offsets = reinterpret_cast<std::uint32_t*>(base + offsets_at);
    std::memcpy(offsets, prune_offsets.data(),
                prune_offsets.size() * sizeof(std::uint32_t));
    const auto idx = reinterpret_cast<std::uint32_t*>(base + idx_at);
    if (!prune_idx.empty()) {
      std::memcpy(idx, prune_idx.data(),
                  prune_idx.size() * sizeof(std::uint32_t));
    }
    const auto val = reinterpret_cast<double*>(base + val_at);
    if (!prune_val.empty()) {
      std::memcpy(val, prune_val.data(), prune_val.size() * sizeof(double));
    }
    kernel->prune_offsets_ = offsets;
    kernel->prune_idx_ = idx;
    kernel->prune_val_ = val;
  }
  kernel->build_micros_ = watch.micros();
  return kernel;
}

std::size_t ScoringKernel::probe(std::uint64_t hash, std::string_view name,
                                 bool joined,
                                 std::string_view caller) const {
  std::size_t slot = hash & slot_mask_;
  const std::size_t want = name.size() + (joined ? 1 + caller.size() : 0);
  for (;;) {
    const Slot& entry = slots_[slot];
    if (entry.offset == kEmptySlot) return unknown_id();
    if (entry.length == want) {
      const char* stored = blob_ + entry.offset;
      if (std::memcmp(stored, name.data(), name.size()) == 0 &&
          (!joined ||
           (stored[name.size()] == '@' &&
            std::memcmp(stored + name.size() + 1, caller.data(),
                        caller.size()) == 0))) {
        return entry.id;
      }
    }
    slot = (slot + 1) & slot_mask_;
  }
}

std::size_t ScoringKernel::find_observation(std::string_view name,
                                            std::string_view caller) const {
  // Mirrors hmm::encode_observation: context-free models (and events with
  // no caller) observe the bare call name. The stored interned string is
  // "name@caller"; hashing and comparing it piecewise skips building it.
  if (!context_sensitive_ || caller.empty()) {
    return probe(fnv1a(kFnvOffset, name), name, false, {});
  }
  std::uint64_t hash = fnv1a(kFnvOffset, name);
  hash = fnv1a(hash, "@");
  hash = fnv1a(hash, caller);
  return probe(hash, name, true, caller);
}

std::size_t ScoringKernel::find_symbol(std::string_view observation) const {
  return probe(fnv1a(kFnvOffset, observation), observation, false, {});
}

SegmentVerdict ScoringKernel::score_window(
    std::span<const std::size_t> window, KernelScratch& scratch) const {
  SegmentVerdict verdict;
  for (const std::size_t id : window) {
    if (id >= num_symbols_) {
      // Same contract as Detector::score_segment: out-of-vocabulary means
      // impossible, no recursion runs.
      verdict.unknown_symbol = true;
      verdict.log_likelihood = -std::numeric_limits<double>::infinity();
      verdict.flagged = true;
      return verdict;
    }
  }
  const std::size_t t_len = window.size();
  if (t_len == 0) {
    verdict.log_likelihood = 0.0;
    verdict.flagged = verdict.log_likelihood < threshold_;
    return verdict;
  }
  const std::size_t n = num_states_;
  double* prev = scratch.ensure(n);
  double* cur = prev + n;

  // Identical operations in identical order to hmm::forward_scaled (exact
  // mode): every cur[j] accumulates its predecessor terms in ascending-i
  // order, the emission multiply happens once after the sum, the per-step
  // scale is accumulated over destinations in ascending order, rows are
  // normalized in place, and log c_t is summed in step order. Interchanging
  // the i/j loops only changes WHEN each addition happens, not the sequence
  // of additions into any one accumulator — so not a single double differs,
  // while the inner loop becomes n independent lanes the compiler can
  // vectorize (a j-outer dot product is a serial FP reduction and cannot).
  double scale = 0.0;
  {
    const double* em = emission_col(window[0]);
    for (std::size_t i = 0; i < n; ++i) {
      const double v = initial_[i] * em[i];
      prev[i] = v;
      scale += v;
    }
  }
  if (scale <= 0.0) {
    verdict.log_likelihood = -std::numeric_limits<double>::infinity();
    verdict.flagged = verdict.log_likelihood < threshold_;
    return verdict;
  }
  double log_lik = std::log(scale);
  for (std::size_t i = 0; i < n; ++i) prev[i] /= scale;

  for (std::size_t t = 1; t < t_len; ++t) {
    const double* em = emission_col(window[t]);
    scale = 0.0;
    if (options_.prune) {
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint32_t begin = prune_offsets_[j];
        const std::uint32_t end = prune_offsets_[j + 1];
        double sum = 0.0;
        for (std::uint32_t e = begin; e < end; ++e) {
          sum += prev[prune_idx_[e]] * prune_val_[e];
        }
        const double v = sum * em[j];
        cur[j] = v;
        scale += v;
      }
    } else {
      for (std::size_t j = 0; j < n; ++j) cur[j] = 0.0;
      const double* row = transition_;
      for (std::size_t i = 0; i < n; ++i, row += n) {
        const double p = prev[i];
        for (std::size_t j = 0; j < n; ++j) {
          cur[j] += p * row[j];
        }
      }
      for (std::size_t j = 0; j < n; ++j) {
        const double v = cur[j] * em[j];
        cur[j] = v;
        scale += v;
      }
    }
    if (scale <= 0.0) {
      verdict.log_likelihood = -std::numeric_limits<double>::infinity();
      verdict.flagged = verdict.log_likelihood < threshold_;
      return verdict;
    }
    log_lik += std::log(scale);
    for (std::size_t j = 0; j < n; ++j) cur[j] /= scale;
    std::swap(prev, cur);
  }

  verdict.log_likelihood = log_lik;
  verdict.flagged = log_lik < threshold_;
  return verdict;
}

}  // namespace cmarkov::core
