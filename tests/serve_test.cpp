// Tests for the cmarkovd serving subsystem: model registry, sharded
// session manager (including the multi-session sequential-equivalence
// guarantee and backpressure accounting), latency metrics, the line
// protocol over the in-memory transport, and the decision audit trail
// (tid= threading, TRACE verb, METRICS golden exposition).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "src/core/model_io.hpp"
#include "src/serve/drift_monitor.hpp"
#include "src/serve/service.hpp"
#include "src/util/rng.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::serve {
namespace {

void compare_golden(const std::string& name, const std::string& actual) {
  const std::filesystem::path path =
      std::filesystem::path(CMARKOV_TEST_GOLDEN_DIR) / name;
  if (std::getenv("CMARKOV_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing golden " << path
                            << " (regenerate with CMARKOV_UPDATE_GOLDEN=1)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), actual);
}

core::Detector train_detector(const workload::ProgramSuite& suite,
                              std::uint64_t seed) {
  core::DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  config.training.max_iterations = 4;
  core::Detector detector = core::Detector::build(suite.module(), config);
  detector.train(workload::collect_traces(suite, 20, seed).traces);
  return detector;
}

/// Two trained models plus benign event streams, built once per process.
struct Fixture {
  workload::ProgramSuite gzip = workload::make_gzip_suite();
  workload::ProgramSuite sed = workload::make_sed_suite();
  std::shared_ptr<const core::Detector> gzip_model =
      std::make_shared<const core::Detector>(train_detector(gzip, 91));
  std::shared_ptr<const core::Detector> sed_model =
      std::make_shared<const core::Detector>(train_detector(sed, 17));
  ModelRegistry registry;

  Fixture() {
    registry.add_shared("gzip", gzip_model);
    registry.add_shared("sed", sed_model);
  }

  /// A session's event feed: the concatenated events of a few benign runs.
  std::vector<trace::CallEvent> events_for(const workload::ProgramSuite& suite,
                                           std::uint64_t seed,
                                           std::size_t runs = 3) const {
    std::vector<trace::CallEvent> events;
    for (const auto& trace :
         workload::collect_traces(suite, runs, seed).traces) {
      events.insert(events.end(), trace.events.begin(), trace.events.end());
    }
    return events;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

/// Expected counters from running the same events through a standalone
/// OnlineMonitor — the single-threaded ground truth.
core::MonitorStats sequential_stats(const core::Detector& detector,
                                    const std::vector<trace::CallEvent>& events,
                                    core::MonitorOptions options) {
  core::OnlineMonitor monitor(detector, nullptr, options);
  for (const auto& event : events) monitor.on_event(event);
  return monitor.stats();
}

void expect_matches_sequential(const SessionStats& stats,
                               const core::MonitorStats& expected) {
  EXPECT_EQ(stats.monitor.events_seen, expected.events_seen) << stats.id;
  EXPECT_EQ(stats.monitor.events_observed, expected.events_observed)
      << stats.id;
  EXPECT_EQ(stats.monitor.windows_scored, expected.windows_scored) << stats.id;
  EXPECT_EQ(stats.monitor.windows_flagged, expected.windows_flagged)
      << stats.id;
  EXPECT_EQ(stats.monitor.alarms, expected.alarms) << stats.id;
  EXPECT_EQ(stats.processed, expected.events_seen) << stats.id;
  EXPECT_EQ(stats.dropped, 0u) << stats.id;
  EXPECT_EQ(stats.rejected, 0u) << stats.id;
}

TEST(ModelRegistryTest, ServesSharedTrainedDetectors) {
  ModelRegistry registry;
  registry.add_shared("gzip", fixture().gzip_model);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.get("gzip"), fixture().gzip_model);
  EXPECT_EQ(registry.get("nope"), nullptr);
  EXPECT_THROW(registry.require("nope"), std::invalid_argument);
  EXPECT_EQ(registry.names(), std::vector<std::string>{"gzip"});
}

TEST(ModelRegistryTest, RejectsUntrainedDetectors) {
  ModelRegistry registry;
  core::DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  EXPECT_THROW(
      registry.add("raw",
                   core::Detector::build(fixture().gzip.module(), config)),
      std::invalid_argument);
}

TEST(ModelRegistryTest, LoadsFilesAndDirectories) {
  const std::string dir = ::testing::TempDir() + "/cmarkov_registry_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/registry_gzip.model";
  core::save_detector_file(path, *fixture().gzip_model);

  ModelRegistry registry;
  registry.load_file("from-file", path);
  EXPECT_TRUE(registry.get("from-file") != nullptr);
  EXPECT_GE(registry.load_directory(dir), 1u);  // picks up *.model files
  EXPECT_TRUE(registry.get("registry_gzip") != nullptr);

  std::ofstream(dir + "/broken.model") << "garbage\n";
  EXPECT_THROW(registry.load_file("broken", dir + "/broken.model"),
               std::runtime_error);
}

TEST(ModelRegistryTest, HotSwapKeepsOldSharedPtrAlive) {
  ModelRegistry registry;
  registry.add_shared("m", fixture().gzip_model);
  const auto before = registry.get("m");
  registry.add_shared("m", fixture().sed_model);
  EXPECT_EQ(registry.get("m"), fixture().sed_model);
  EXPECT_EQ(before, fixture().gzip_model);  // old handle still valid
}

// The tentpole guarantee: 2 models x 8 sessions fed interleaved from one
// producer thread (rng-seeded interleaving), scored concurrently by 4
// workers, must reproduce the sequential OnlineMonitor counters exactly.
TEST(SessionManagerTest, InterleavedSubmissionMatchesSequential) {
  ServiceConfig config;
  config.num_workers = 4;
  config.queue_capacity = 128;
  config.policy = BackpressurePolicy::kBlock;
  config.monitor.windows_to_alarm = 2;
  config.monitor.cooldown_events = 5;
  SessionManager manager(fixture().registry, config);

  std::vector<std::string> ids;
  std::vector<std::vector<trace::CallEvent>> feeds;
  std::vector<const core::Detector*> detectors;
  for (std::size_t i = 0; i < 8; ++i) {
    const bool is_gzip = i % 2 == 0;
    ids.push_back("session-" + std::to_string(i));
    manager.open_session(ids.back(), is_gzip ? "gzip" : "sed");
    feeds.push_back(fixture().events_for(
        is_gzip ? fixture().gzip : fixture().sed, 100 + i));
    detectors.push_back(is_gzip ? fixture().gzip_model.get()
                                : fixture().sed_model.get());
  }

  Rng rng(2024);
  std::vector<std::size_t> cursors(ids.size(), 0);
  std::vector<std::size_t> live;  // sessions with events remaining
  for (std::size_t i = 0; i < ids.size(); ++i) live.push_back(i);
  while (!live.empty()) {
    const std::size_t pick = rng.index(live.size());
    const std::size_t s = live[pick];
    ASSERT_EQ(manager.submit(ids[s], feeds[s][cursors[s]++]),
              SubmitResult::kAccepted);
    if (cursors[s] == feeds[s].size()) {
      live[pick] = live.back();
      live.pop_back();
    }
  }
  manager.drain();

  for (std::size_t i = 0; i < ids.size(); ++i) {
    expect_matches_sequential(
        manager.session_stats(ids[i]),
        sequential_stats(*detectors[i], feeds[i], config.monitor));
  }
  const ServiceMetrics metrics = manager.metrics();
  EXPECT_EQ(metrics.events_processed, metrics.events_enqueued);
  EXPECT_EQ(metrics.events_dropped, 0u);
  EXPECT_EQ(metrics.events_rejected, 0u);
  EXPECT_EQ(metrics.latency_samples, metrics.events_processed);
}

// Same guarantee under real MPSC contention: one producer thread per
// session, all eight hammering the pool at once.
TEST(SessionManagerTest, ConcurrentProducersMatchSequential) {
  ServiceConfig config;
  config.num_workers = 4;
  config.queue_capacity = 64;
  config.policy = BackpressurePolicy::kBlock;
  SessionManager manager(fixture().registry, config);

  std::vector<std::string> ids;
  std::vector<std::vector<trace::CallEvent>> feeds;
  std::vector<const core::Detector*> detectors;
  for (std::size_t i = 0; i < 8; ++i) {
    const bool is_gzip = i < 4;
    ids.push_back("p" + std::to_string(i));
    manager.open_session(ids.back(), is_gzip ? "gzip" : "sed");
    feeds.push_back(fixture().events_for(
        is_gzip ? fixture().gzip : fixture().sed, 200 + i, 2));
    detectors.push_back(is_gzip ? fixture().gzip_model.get()
                                : fixture().sed_model.get());
  }

  std::vector<std::thread> producers;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    producers.emplace_back([&, i] {
      for (const auto& event : feeds[i]) {
        ASSERT_EQ(manager.submit(ids[i], event), SubmitResult::kAccepted);
      }
    });
  }
  for (auto& producer : producers) producer.join();
  manager.drain();

  for (std::size_t i = 0; i < ids.size(); ++i) {
    expect_matches_sequential(
        manager.session_stats(ids[i]),
        sequential_stats(*detectors[i], feeds[i], config.monitor));
  }
}

// TSan-covered via tools/run_tsan_smoke.sh: shard workers keep scoring
// through the registry's shared ScoringKernel image while RELOAD hot-swaps
// model + kernel underneath them (epoch reclamation keeps retired images
// alive until no worker can still observe them).
TEST(SessionManagerTest, LiveReloadSwapsSharedKernelUnderTraffic) {
  ServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 256;
  config.policy = BackpressurePolicy::kBlock;
  ModelRegistry registry;
  registry.add_shared("m", fixture().gzip_model);
  const VersionedModel v1 = registry.require_versioned("m");
  ASSERT_NE(v1.kernel, nullptr);
  // One compiled image per model version, shared by every reader.
  EXPECT_EQ(registry.require_versioned("m").kernel, v1.kernel);
  EXPECT_GE(registry.kernel_image_bytes(), v1.kernel->image_bytes());

  SessionManager manager(registry, config);
  for (int s = 0; s < 6; ++s) {
    manager.open_session("k" + std::to_string(s), "m");
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&manager, p, &stop] {
      const auto feed = fixture().events_for(fixture().gzip, 400 + p, 1);
      std::size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        manager.submit("k" + std::to_string(p * 2), feed[i % feed.size()]);
        manager.submit("k" + std::to_string(p * 2 + 1),
                       feed[i % feed.size()]);
        ++i;
      }
    });
  }

  // Hot swaps while producers hammer the shard queues: every swap must
  // publish a fresh kernel image and rebind all six live sessions.
  std::shared_ptr<const core::ScoringKernel> last = v1.kernel;
  for (int r = 0; r < 4; ++r) {
    const auto& model =
        r % 2 == 0 ? fixture().sed_model : fixture().gzip_model;
    const ReloadReport report = manager.reload_model("m", model);
    EXPECT_EQ(report.sessions_rebound, 6u);
    const VersionedModel current = registry.require_versioned("m");
    EXPECT_NE(current.kernel, last);
    EXPECT_GT(current.version, v1.version);
    last = current.kernel;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_release);
  for (auto& producer : producers) producer.join();
  manager.drain();

  const ServiceMetrics metrics = manager.metrics();
  EXPECT_EQ(metrics.events_processed, metrics.events_enqueued);
  for (int s = 0; s < 6; ++s) {
    const SessionStats stats = manager.session_stats("k" + std::to_string(s));
    EXPECT_EQ(stats.model, "m");
    EXPECT_EQ(stats.processed, stats.enqueued);
    EXPECT_EQ(stats.dropped, 0u);
  }
}

TEST(SessionManagerTest, RejectPolicyCountsPerSession) {
  ServiceConfig config;
  config.num_workers = 1;  // both sessions share the one shard queue
  config.queue_capacity = 4;
  config.policy = BackpressurePolicy::kReject;
  config.manual_pump = true;
  SessionManager manager(fixture().registry, config);
  manager.open_session("a", "gzip");
  manager.open_session("b", "gzip");

  trace::CallEvent event;
  event.name = "read";
  event.caller = "main";
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(manager.submit("a", event), SubmitResult::kAccepted);
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(manager.submit("b", event), SubmitResult::kRejected);
  }
  EXPECT_EQ(manager.session_stats("a").enqueued, 4u);
  EXPECT_EQ(manager.session_stats("a").rejected, 0u);
  EXPECT_EQ(manager.session_stats("b").rejected, 3u);
  EXPECT_EQ(manager.metrics().events_rejected, 3u);

  manager.drain();  // frees the queue
  EXPECT_EQ(manager.session_stats("a").processed, 4u);
  EXPECT_EQ(manager.submit("b", event), SubmitResult::kAccepted);
}

TEST(SessionManagerTest, DropOldestEvictsVictimAndCountsIt) {
  ServiceConfig config;
  config.num_workers = 1;
  config.queue_capacity = 4;
  config.policy = BackpressurePolicy::kDropOldest;
  config.manual_pump = true;
  SessionManager manager(fixture().registry, config);
  manager.open_session("victim", "gzip");
  manager.open_session("hog", "gzip");

  trace::CallEvent event;
  event.name = "read";
  event.caller = "main";
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(manager.submit("victim", event), SubmitResult::kAccepted);
  }
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(manager.submit("hog", event), SubmitResult::kDroppedOldest);
  }
  // The two oldest queued events belonged to "victim".
  EXPECT_EQ(manager.session_stats("victim").dropped, 2u);
  EXPECT_EQ(manager.session_stats("hog").dropped, 0u);

  manager.drain();
  EXPECT_EQ(manager.session_stats("victim").processed, 2u);
  EXPECT_EQ(manager.session_stats("hog").processed, 2u);
  EXPECT_EQ(manager.metrics().events_dropped, 2u);
}

TEST(SessionManagerTest, BlockPolicyLosesNothingUnderSaturation) {
  ServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 8;  // tiny: forces producers to block constantly
  config.policy = BackpressurePolicy::kBlock;
  SessionManager manager(fixture().registry, config);

  const auto feed = fixture().events_for(fixture().gzip, 300, 2);
  std::vector<std::thread> producers;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::string id = "blocked-" + std::to_string(i);
    manager.open_session(id, "gzip");
    producers.emplace_back([&, id] {
      for (const auto& event : feed) manager.submit(id, event);
    });
  }
  for (auto& producer : producers) producer.join();
  manager.drain();

  const ServiceMetrics metrics = manager.metrics();
  EXPECT_EQ(metrics.events_enqueued, 4 * feed.size());
  EXPECT_EQ(metrics.events_processed, 4 * feed.size());
  EXPECT_EQ(metrics.events_dropped, 0u);
  EXPECT_EQ(metrics.events_rejected, 0u);
}

TEST(SessionManagerTest, LifecycleErrorsAreLoud) {
  ServiceConfig config;
  config.manual_pump = true;
  SessionManager manager(fixture().registry, config);
  manager.open_session("dup", "gzip");
  EXPECT_THROW(manager.open_session("dup", "gzip"), std::invalid_argument);
  EXPECT_THROW(manager.open_session("x", "no-such-model"),
               std::invalid_argument);
  EXPECT_EQ(manager.submit("ghost", {}), SubmitResult::kUnknownSession);
  EXPECT_THROW(manager.session_stats("ghost"), std::invalid_argument);
  EXPECT_THROW(manager.close_session("ghost"), std::invalid_argument);

  EXPECT_TRUE(manager.has_session("dup"));
  const SessionStats stats = manager.close_session("dup");
  EXPECT_EQ(stats.id, "dup");
  EXPECT_FALSE(manager.has_session("dup"));

  EXPECT_NE(manager.next_session_id(), manager.next_session_id());
}

TEST(LatencyHistogramTest, QuantilesLandInTheRightBucket) {
  // The serve latency histogram is a plain obs::Histogram over
  // latency_bucket_bounds(); this pins the quantile semantics the
  // SessionManager's p50/p99 snapshot fields rely on.
  obs::Histogram histogram(latency_bucket_bounds());
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.quantile(0.5), 0.0);
  for (int i = 0; i < 99; ++i) histogram.record(0.8);  // bucket <=1us
  histogram.record(900.0);                             // bucket <=1000us
  EXPECT_EQ(histogram.count(), 100u);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.99), 1.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 1000.0);
  histogram.record(1e9);  // overflow bucket saturates at the last bound
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), latency_bucket_bounds().back());
}

TEST(ServiceMetricsTest, RendersOneVersionedKeyValueLine) {
  ServiceMetrics metrics;
  metrics.uptime_seconds = 1.5;
  metrics.events_processed = 42;
  metrics.queue_depths = {3, 0};
  const std::string line = metrics.to_line();
  EXPECT_TRUE(line.starts_with("v=1 ")) << line;
  EXPECT_NE(line.find("uptime_s=1.500"), std::string::npos);
  EXPECT_NE(line.find("processed=42"), std::string::npos);
  EXPECT_NE(line.find("qdepth=3,0"), std::string::npos);
  EXPECT_NE(line.find("p99_us="), std::string::npos);
}

ServiceConfig protocol_config() {
  ServiceConfig config;
  config.num_workers = 1;
  config.manual_pump = true;
  return config;
}

TEST(ProtocolTest, HappyPathHelloEvStatsBye) {
  SessionManager manager(fixture().registry, protocol_config());
  ProtocolSession session(manager);
  EXPECT_FALSE(session.closed());
  EXPECT_EQ(session.handle_line("HELLO gzip watchman"),
            "OK session=watchman model=gzip");
  EXPECT_EQ(session.session_id(), "watchman");

  const auto feed = fixture().events_for(fixture().gzip, 55, 2);
  std::size_t fed = 0;
  for (const auto& event : feed) {
    if (event.kind != ir::CallKind::kSyscall) continue;
    EXPECT_EQ(session.handle_line("EV " + event.caller + " " + event.name),
              "OK");
    if (++fed >= 40) break;
  }
  ASSERT_GT(fed, 0u);
  const std::string stats = session.handle_line("STATS");
  EXPECT_TRUE(stats.starts_with("STATS v=1 session=watchman model=gzip"));
  const std::string fed_str = std::to_string(fed);
  EXPECT_NE(stats.find("enqueued=" + fed_str), std::string::npos) << stats;
  EXPECT_NE(stats.find("processed=" + fed_str), std::string::npos) << stats;
  EXPECT_NE(stats.find("alarms="), std::string::npos);

  const std::string metrics = session.handle_line("METRICS");
  EXPECT_TRUE(metrics.starts_with("METRICS v=1 "));
  EXPECT_NE(metrics.find("cmarkov_serve_sessions_open=1"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("cmarkov_serve_events_processed_total=" + fed_str),
            std::string::npos)
      << metrics;

  EXPECT_TRUE(session.handle_line("BYE").starts_with("OK session=watchman"));
  EXPECT_TRUE(session.closed());
  EXPECT_FALSE(manager.has_session("watchman"));
}

TEST(ProtocolTest, BlankAndCommentLinesAreSilent) {
  SessionManager manager(fixture().registry, protocol_config());
  ProtocolSession session(manager);
  EXPECT_EQ(session.handle_line(""), "");
  EXPECT_EQ(session.handle_line("   "), "");
  EXPECT_EQ(session.handle_line("# a comment"), "");
}

TEST(ProtocolTest, ErrorsAreLoudAndNeverThrow) {
  SessionManager manager(fixture().registry, protocol_config());
  ProtocolSession session(manager);
  EXPECT_TRUE(session.handle_line("EV main read").starts_with("ERR"));
  EXPECT_TRUE(session.handle_line("STATS").starts_with("ERR"));
  EXPECT_TRUE(session.handle_line("BYE").starts_with("ERR"));
  const std::string unknown_model = session.handle_line("HELLO no-such-model");
  EXPECT_TRUE(unknown_model.starts_with("ERR"));
  EXPECT_NE(unknown_model.find("no-such-model"), std::string::npos);

  EXPECT_TRUE(session.handle_line("HELLO gzip").starts_with("OK"));
  EXPECT_TRUE(session.handle_line("HELLO gzip").starts_with("ERR"));
  EXPECT_TRUE(session.handle_line("EV onlysite").starts_with("ERR"));
  EXPECT_TRUE(session.handle_line("EV a b weird-kind").starts_with("ERR"));
  EXPECT_TRUE(session.handle_line("NOSUCH").starts_with("ERR"));

  EXPECT_TRUE(session.handle_line("BYE").starts_with("OK"));
  EXPECT_TRUE(session.handle_line("EV main read").starts_with("ERR"));
}

TEST(ProtocolTest, RejectedEventsSurfaceInResponses) {
  ServiceConfig config = protocol_config();
  config.queue_capacity = 2;
  config.policy = BackpressurePolicy::kReject;
  SessionManager manager(fixture().registry, config);
  ProtocolSession session(manager);
  session.handle_line("HELLO gzip");
  EXPECT_EQ(session.handle_line("EV main read"), "OK");
  EXPECT_EQ(session.handle_line("EV main read"), "OK");
  EXPECT_EQ(session.handle_line("EV main read"), "ERR rejected queue-full");
  const std::string stats = session.handle_line("STATS");
  EXPECT_NE(stats.find("rejected=1"), std::string::npos);
}

TEST(ProtocolTest, DisconnectWithoutByeClosesSession) {
  SessionManager manager(fixture().registry, protocol_config());
  {
    ProtocolSession session(manager);
    session.handle_line("HELLO gzip dangling");
    EXPECT_TRUE(manager.has_session("dangling"));
  }
  EXPECT_FALSE(manager.has_session("dangling"));
}

TEST(ProtocolTest, TraceUsageErrorsAreLoud) {
  SessionManager manager(fixture().registry, protocol_config());
  ProtocolSession session(manager);
  EXPECT_TRUE(session.handle_line("TRACE").starts_with("ERR no session"));
  session.handle_line("HELLO gzip");
  EXPECT_TRUE(session.handle_line("TRACE abc").starts_with("ERR usage"));
  EXPECT_TRUE(session.handle_line("TRACE 0").starts_with("ERR usage"));
  EXPECT_TRUE(session.handle_line("TRACE 4 5").starts_with("ERR usage"));
  EXPECT_TRUE(session.handle_line("EV main read tid=").starts_with("ERR usage"));
  // No decision tracing configured: the verb answers, with zero records.
  EXPECT_EQ(session.handle_line("TRACE 4"), "TRACE v=1 session=s1 n=0");
}

TEST(ProtocolTest, ExplicitTidIsEchoedAndSessionTidIsNot) {
  ServiceConfig config = protocol_config();
  config.tracing.enabled = true;
  config.tracing.sample_every = 0;  // only explicit trace ids trace
  SessionManager manager(fixture().registry, config);
  ProtocolSession session(manager);
  EXPECT_EQ(session.handle_line("HELLO gzip audit tid=t-1"),
            "OK session=audit model=gzip tid=t-1");
  // Session-default tid: traced, but replies stay terse.
  EXPECT_EQ(session.handle_line("EV main read"), "OK");
  // Per-event override: echoed back.
  EXPECT_EQ(session.handle_line("EV main read tid=ev-7"), "OK tid=ev-7");
  manager.drain();
  // Both events were force-traced: queue + score spans each, plus reply
  // spans recorded on the transport side.
  const auto spans = manager.tracer().snapshot();
  std::size_t queue = 0, score = 0, reply = 0;
  for (const auto& span : spans) {
    if (span.name == "queue") ++queue;
    if (span.name == "score") ++score;
    if (span.name == "reply") ++reply;
    EXPECT_EQ(span.session, "audit");
  }
  EXPECT_EQ(queue, 2u);
  EXPECT_EQ(score, 2u);
  EXPECT_EQ(reply, 2u);
}

// The PR-5 acceptance path: a flagged window produces a DecisionRecord
// whose per-symbol contributions sum (within 1e-9) to the window
// log-likelihood, retrievable over the wire via TRACE.
TEST(DecisionAuditTest, FlaggedWindowExplainsItsLogLikelihood) {
  // A detector that flags everything: same gzip model, +inf threshold.
  core::Detector strict = *fixture().gzip_model;
  strict.set_threshold(std::numeric_limits<double>::infinity());
  ModelRegistry registry;
  registry.add("strict", std::move(strict));

  ServiceConfig config = protocol_config();
  config.tracing.enabled = true;
  config.tracing.sample_every = 0;
  config.monitor.decisions.enabled = true;
  config.monitor.decisions.sample_every = 0;  // only flagged/alarm windows
  SessionManager manager(registry, config);
  ProtocolSession session(manager);
  EXPECT_EQ(session.handle_line("HELLO strict audit tid=t-1"),
            "OK session=audit model=strict tid=t-1");

  // Benign events from the training seed: symbols the model knows, so the
  // flagged windows carry FINITE log-likelihoods to decompose.
  const std::size_t window =
      fixture().gzip_model->config().segments.length;
  std::size_t fed = 0;
  for (const auto& event : fixture().events_for(fixture().gzip, 91, 2)) {
    if (event.kind != ir::CallKind::kSyscall) continue;
    EXPECT_EQ(session.handle_line("EV " + event.caller + " " + event.name),
              "OK");
    if (++fed >= window + 5) break;
  }
  ASSERT_EQ(fed, window + 5);  // 6 complete windows, all flagged
  manager.drain();  // manual_pump: scoring happens on drain

  const std::vector<obs::DecisionRecord> records =
      manager.recent_decisions("audit", 4);
  ASSERT_EQ(records.size(), 4u);
  for (const obs::DecisionRecord& record : records) {
    EXPECT_EQ(record.session, "audit");
    EXPECT_EQ(record.trace_id, "t-1");
    EXPECT_TRUE(record.flagged);
    EXPECT_FALSE(record.unknown_symbol);
    EXPECT_EQ(record.symbols.size(), window);
    ASSERT_TRUE(std::isfinite(record.log_likelihood));
    EXPECT_NEAR(record.contribution_sum(), record.log_likelihood, 1e-9);
  }

  // The same records, as the wire-format TRACE reply.
  const std::string reply = session.handle_line("TRACE 4");
  EXPECT_TRUE(reply.starts_with("TRACE v=1 session=audit n=4")) << reply;
  std::istringstream lines(reply);
  std::string line;
  std::getline(lines, line);  // header
  for (const obs::DecisionRecord& record : records) {
    ASSERT_TRUE(std::getline(lines, line));
    EXPECT_EQ(line, obs::decision_record_json(record));
    EXPECT_NE(line.find("\"schema\":\"cmarkov.decision.v1\""),
              std::string::npos);
  }
  EXPECT_FALSE(std::getline(lines, line));

  // The service-wide JSONL log captured every flagged window.
  EXPECT_EQ(manager.decision_log().appended(), 6u);
  EXPECT_EQ(manager.decision_log().dropped(), 0u);
}

TEST(MetricsGoldenTest, ScriptedSessionExposition) {
  // Deterministic script under manual_pump: 20 unknown-symbol events into
  // a capacity-8 drop-oldest queue (12 evicted), STATS drains (8 scored),
  // 12 more events (8 kept, 4 evicted), METRICS drains again — 16 scored
  // events = 2 windows of 15, both flagged and alarming.
  ServiceConfig config = protocol_config();
  config.queue_capacity = 8;
  config.policy = BackpressurePolicy::kDropOldest;
  SessionManager manager(fixture().registry, config);
  ProtocolSession session(manager);
  session.handle_line("HELLO gzip scripted");
  for (int i = 0; i < 20; ++i) session.handle_line("EV bogus read");
  session.handle_line("STATS");
  for (int i = 0; i < 12; ++i) session.handle_line("EV bogus read");
  manager.drain();

  // Exercise the lifecycle + reload instruments with pinned counts: a
  // second session with 5 queued events is evicted (5 evicted-drops, NOT
  // backpressure drops), transparently restored by the next submit, and
  // one hot reload rebinds both live gzip sessions.
  manager.open_session("aux", "gzip");
  trace::CallEvent aux_event;
  aux_event.caller = "bogus";
  aux_event.name = "read";
  for (int i = 0; i < 5; ++i) manager.submit("aux", aux_event);
  ASSERT_TRUE(manager.evict_session("aux"));
  ASSERT_EQ(manager.submit("aux", aux_event), SubmitResult::kAccepted);
  manager.reload_model(
      "gzip", std::make_shared<const core::Detector>(*fixture().gzip_model));

  std::string metrics = session.handle_line("METRICS");
  ASSERT_TRUE(metrics.starts_with("METRICS v=1 ")) << metrics;

  // Wall-clock-dependent values can't be golden-pinned: scrub them. The
  // state-bytes and kernel-image gauges depend on sizeof(OnlineMonitor) /
  // arena layout and allocator capacities, so they are scrubbed too (their
  // presence is what's pinned).
  for (const char* key : {"cmarkov_serve_uptime_seconds=",
                          "cmarkov_serve_latency_micros_sum=",
                          "cmarkov_serve_latency_micros_p50=",
                          "cmarkov_serve_latency_micros_p99=",
                          "cmarkov_serve_model_reload_micros_sum=",
                          "cmarkov_serve_model_reload_micros_p50=",
                          "cmarkov_serve_model_reload_micros_p99=",
                          "cmarkov_serve_kernel_build_micros_sum=",
                          "cmarkov_serve_kernel_build_micros_p50=",
                          "cmarkov_serve_kernel_build_micros_p99=",
                          "cmarkov_serve_kernel_image_bytes=",
                          "cmarkov_serve_session_state_bytes=",
                          "cmarkov_serve_shard_state_bytes_w0="}) {
    const std::size_t pos = metrics.find(key);
    ASSERT_NE(pos, std::string::npos) << key;
    const std::size_t start = pos + std::strlen(key);
    std::size_t end = metrics.find(' ', start);
    if (end == std::string::npos) end = metrics.size();
    metrics.replace(start, end - start, "X");
  }
  compare_golden("serve_metrics.kv", metrics + "\n");
}

// Drift-armed serving end-to-end (ROADMAP item 3): a detector trained
// with keep_trainer_state serves traffic; a workload shift breaches the
// windowed KS statistic over per-window log-likelihoods; poll() absorbs
// the buffered clean windows via Trainer::partial_fit and hot-publishes a
// new model version through the PR 6 reload path with zero accepted-event
// loss.
TEST(DriftRefreshTest, WorkloadShiftPublishesRefreshedModel) {
  core::DetectorConfig detector_config;
  detector_config.pipeline.filter = analysis::CallFilter::kSyscalls;
  detector_config.training.max_iterations = 4;
  detector_config.keep_trainer_state = true;
  core::Detector detector =
      core::Detector::build(fixture().gzip.module(), detector_config);
  detector.train(workload::collect_traces(fixture().gzip, 20, 91).traces);
  ASSERT_NE(detector.trainer_state(), nullptr);
  hmm::Trainer trainer(*detector.trainer_state());

  ModelRegistry registry;
  registry.add("drift", std::move(detector));
  const std::uint64_t v0 = registry.require_versioned("drift").version;

  SessionManager manager(registry, protocol_config());

  // Windows slide with stride 1, so consecutive windows are highly
  // correlated: epochs must span enough events to wash out run-phase
  // locality or benign traffic breaches spuriously.
  DriftOptions drift;
  drift.baseline_windows = 120;
  drift.recent_windows = 60;
  drift.buckets = 8;
  drift.ks_threshold = 0.6;
  drift.consecutive_epochs = 3;
  drift.min_absorb_segments = 16;
  drift.max_absorb_segments = 256;
  DriftRefresher refresher(manager, registry, "drift", std::move(trainer),
                           drift);
  manager.set_drift_monitor(&refresher.monitor(), "drift");
  manager.open_session("watched", "drift");
  const std::size_t window =
      registry.require("drift")->config().segments.length;

  // Benign traffic freezes the baseline and stocks the absorb ring with
  // clean windows (the future partial_fit batch).
  for (std::uint64_t seed = 700; !refresher.monitor().baseline_ready();
       ++seed) {
    ASSERT_LT(seed, 750u) << "baseline never froze";
    for (const auto& event : fixture().events_for(fixture().gzip, seed)) {
      ASSERT_EQ(manager.submit("watched", event), SubmitResult::kAccepted);
    }
    manager.drain();
    EXPECT_FALSE(refresher.poll());  // no drift confirmed yet
  }
  EXPECT_GE(refresher.monitor().absorb_depth(), drift.min_absorb_segments);

  // Workload shift: unknown-context events score at the penalty floor, so
  // the recent histogram's mass piles into the lowest bucket.
  trace::CallEvent shifted;
  shifted.caller = "bogus";
  shifted.name = "read";
  const std::size_t shift_events =
      window * drift.recent_windows * (drift.consecutive_epochs + 1);
  for (std::size_t i = 0; i < shift_events; ++i) {
    ASSERT_EQ(manager.submit("watched", shifted), SubmitResult::kAccepted);
  }
  manager.drain();
  EXPECT_GT(refresher.monitor().last_ks(), drift.ks_threshold);
  ASSERT_TRUE(refresher.monitor().refresh_due());

  ASSERT_TRUE(refresher.poll());
  EXPECT_EQ(refresher.refreshes(), 1u);
  const VersionedModel refreshed = registry.require_versioned("drift");
  EXPECT_GT(refreshed.version, v0);
  EXPECT_NE(refreshed.kernel, nullptr);
  EXPECT_TRUE(registry.require("drift")->trained());
  // The absorbed batch is on the trainer's persistent ledger.
  EXPECT_GE(refresher.trainer().state().batches.size(), 2u);
  // Old scores are meaningless under the new model: re-baselined.
  EXPECT_FALSE(refresher.monitor().baseline_ready());
  EXPECT_FALSE(refresher.poll());

  // Zero accepted-event loss across the refresh (the PR 6 guarantee).
  const ServiceMetrics metrics = manager.metrics();
  EXPECT_EQ(metrics.events_processed, metrics.events_enqueued);
  EXPECT_EQ(metrics.events_dropped, 0u);
  const SessionStats stats = manager.session_stats("watched");
  EXPECT_EQ(stats.processed, stats.enqueued);
  EXPECT_EQ(stats.dropped, 0u);

  // Detach before the refresher (declared later) is destroyed.
  manager.set_drift_monitor(nullptr, {});
}

TEST(ServiceTest, ServeStreamEndToEnd) {
  ServiceConfig config = protocol_config();
  CmarkovService service(config);
  service.registry().add_shared("gzip", fixture().gzip_model);

  std::istringstream in(
      "# scripted session\n"
      "HELLO gzip scripted\n"
      "EV main read\n"
      "EV main close sys\n"
      "STATS\n"
      "BYE\n"
      "EV main read\n");  // after BYE: stream ends first, never answered
  std::ostringstream out;
  service.serve_stream(in, out);

  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "OK session=scripted model=gzip");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "OK");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "OK");
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_TRUE(line.starts_with("STATS v=1 session=scripted"));
  EXPECT_NE(line.find("processed=2"), std::string::npos);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_TRUE(line.starts_with("OK session=scripted"));
  EXPECT_FALSE(std::getline(lines, line));  // nothing after BYE
  EXPECT_EQ(service.metrics().sessions_open, 0u);
}

}  // namespace
}  // namespace cmarkov::serve
