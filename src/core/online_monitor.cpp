#include "src/core/online_monitor.hpp"

#include <stdexcept>
#include <utility>

#include "src/obs/metrics_registry.hpp"

namespace cmarkov::core {

OnlineMonitor::OnlineMonitor(const Detector& detector,
                             const trace::Symbolizer* symbolizer,
                             MonitorOptions options, MonitorStorage storage,
                             std::shared_ptr<const ScoringKernel> kernel)
    : detector_(&detector),
      symbolizer_(symbolizer),
      options_(options),
      kernel_(std::move(kernel)),
      window_(std::move(storage.window)),
      segment_(std::move(storage.segment)) {
  if (!detector.trained()) {
    throw std::invalid_argument("OnlineMonitor: detector is not trained");
  }
  if (detector.config().segments.length == 0) {
    throw std::invalid_argument("OnlineMonitor: segment length must be > 0");
  }
  if (options_.windows_to_alarm == 0) {
    throw std::invalid_argument("OnlineMonitor: windows_to_alarm must be >0");
  }
  if (kernel_ == nullptr) kernel_ = ScoringKernel::compile(detector);
  scratch_.alpha = std::move(storage.scratch);
  scratch_.alpha.clear();
  const std::size_t length = detector.config().segments.length;
  window_.assign(length, 0);  // reuses donated capacity when large enough
  segment_.clear();
  segment_.reserve(length);
  if (options_.metrics != nullptr) {
    events_counter_ = &options_.metrics->counter("cmarkov_monitor_events_total");
    windows_counter_ =
        &options_.metrics->counter("cmarkov_monitor_windows_total");
    flagged_counter_ =
        &options_.metrics->counter("cmarkov_monitor_windows_flagged_total");
    alarms_counter_ = &options_.metrics->counter("cmarkov_monitor_alarms_total");
  }
}

MonitorUpdate OnlineMonitor::on_event(trace::CallEvent event) {
  MonitorUpdate update;
  stats_.events_seen += 1;
  if (events_counter_ != nullptr) events_counter_->add(1);
  if (cooldown_remaining_ > 0) --cooldown_remaining_;

  const auto& config = detector_->config();
  if (!analysis::filter_matches(config.pipeline.filter, event.kind)) {
    return update;
  }
  stats_.events_observed += 1;

  if (event.caller.empty() && symbolizer_ != nullptr) {
    event.caller = symbolizer_->resolve(event.site_address)
                       .value_or(trace::kUnknownCaller);
  }

  // Hot path: the kernel interns name[@caller] in place — same id and
  // unknown sentinel as Alphabet::find(encode_observation(...)), without
  // building the observation string or walking a node-based map.
  const std::size_t id = kernel_->find_observation(event.name, event.caller);
  // Ring arithmetic via conditional subtraction: `length` is the segment
  // length (15 in the paper's setup), not a power of two, so a `%` here
  // would cost an integer division per event — and 15 more per window in
  // the copy-out loop below.
  const std::size_t length = config.segments.length;
  if (window_count_ < length) {
    std::size_t at = window_head_ + window_count_;
    if (at >= length) at -= length;
    window_[at] = id;
    window_count_ += 1;
  } else {
    window_[window_head_] = id;  // overwrite the id sliding out
    window_head_ += 1;
    if (window_head_ == length) window_head_ = 0;
  }
  if (window_count_ < length) return update;

  update.window_complete = true;
  update.window = &segment_;
  segment_.clear();
  std::size_t at = window_head_;
  for (std::size_t i = 0; i < length; ++i) {
    segment_.push_back(window_[at]);
    at += 1;
    if (at == length) at = 0;
  }
  // Decision tracing needs the full alpha matrix for the audit record, so
  // it keeps the reference recursion; everything else scores through the
  // compiled kernel with flat scratch (bit-identical in exact mode).
  const bool tracing =
      options_.decisions.enabled && options_.decisions.ring_capacity > 0;
  hmm::ForwardResult forward;
  SegmentVerdict verdict;
  if (tracing) {
    verdict = detector_->score_segment(segment_, &forward);
  } else {
    verdict = kernel_->score_window(segment_, scratch_);
    update.scored_by_kernel = true;
  }
  update.log_likelihood = verdict.log_likelihood;
  update.flagged = verdict.flagged;
  update.unknown_symbol = verdict.unknown_symbol;
  stats_.windows_scored += 1;
  if (windows_counter_ != nullptr) windows_counter_->add(1);

  if (verdict.flagged) {
    stats_.windows_flagged += 1;
    if (flagged_counter_ != nullptr) flagged_counter_->add(1);
    consecutive_flagged_ += 1;
    if (consecutive_flagged_ >= options_.windows_to_alarm &&
        cooldown_remaining_ == 0) {
      update.alarm = true;
      stats_.alarms += 1;
      if (alarms_counter_ != nullptr) alarms_counter_->add(1);
      cooldown_remaining_ = options_.cooldown_events;
      consecutive_flagged_ = 0;
    }
  } else {
    consecutive_flagged_ = 0;
  }

  if (tracing) {
    const bool sampled =
        options_.decisions.sample_every > 0 &&
        stats_.windows_scored % options_.decisions.sample_every == 0;
    const bool forced = options_.decisions.always_on_flagged &&
                        (verdict.flagged || update.alarm);
    if (sampled || forced) {
      obs::DecisionRecord record =
          detector_->make_decision_record(segment_, verdict, forward);
      record.window_index = stats_.windows_scored;
      record.alarm = update.alarm;
      record.sampled = sampled;
      decisions_.push_back(std::move(record));
      while (decisions_.size() > options_.decisions.ring_capacity) {
        decisions_.pop_front();
      }
      update.decision = &decisions_.back();
    }
  }
  return update;
}

std::size_t OnlineMonitor::on_trace(const trace::Trace& trace) {
  std::size_t alarms = 0;
  for (const auto& event : trace.events) {
    if (on_event(event).alarm) ++alarms;
  }
  return alarms;
}

void OnlineMonitor::reset_window() {
  window_head_ = 0;
  window_count_ = 0;
  consecutive_flagged_ = 0;
  cooldown_remaining_ = 0;
}

MonitorSnapshot OnlineMonitor::snapshot() const {
  MonitorSnapshot snap;
  const std::size_t length = detector_->config().segments.length;
  snap.window.reserve(window_count_);
  for (std::size_t i = 0; i < window_count_; ++i) {
    snap.window.push_back(window_[(window_head_ + i) % length]);
  }
  snap.consecutive_flagged = consecutive_flagged_;
  snap.cooldown_remaining = cooldown_remaining_;
  snap.stats = stats_;
  return snap;
}

void OnlineMonitor::restore(const MonitorSnapshot& snapshot) {
  const std::size_t length = detector_->config().segments.length;
  if (snapshot.window.size() > length) {
    throw std::invalid_argument(
        "OnlineMonitor: snapshot window of " +
        std::to_string(snapshot.window.size()) +
        " ids does not fit segment length " + std::to_string(length));
  }
  window_head_ = 0;
  window_count_ = snapshot.window.size();
  for (std::size_t i = 0; i < window_count_; ++i) {
    window_[i] = snapshot.window[i];
  }
  consecutive_flagged_ = snapshot.consecutive_flagged;
  cooldown_remaining_ = snapshot.cooldown_remaining;
  stats_ = snapshot.stats;
}

void OnlineMonitor::rebind(const Detector& detector,
                           std::shared_ptr<const ScoringKernel> kernel) {
  if (!detector.trained()) {
    throw std::invalid_argument("OnlineMonitor: rebind detector not trained");
  }
  if (detector.config().segments.length == 0) {
    throw std::invalid_argument("OnlineMonitor: segment length must be > 0");
  }
  detector_ = &detector;
  kernel_ = kernel != nullptr ? std::move(kernel)
                              : ScoringKernel::compile(detector);
  const std::size_t length = detector.config().segments.length;
  window_.assign(length, 0);
  segment_.clear();
  segment_.reserve(length);
  window_head_ = 0;
  window_count_ = 0;
  consecutive_flagged_ = 0;  // streak evidence was against the old model
}

std::size_t OnlineMonitor::state_bytes() const {
  return sizeof(OnlineMonitor) +
         (window_.capacity() + segment_.capacity()) * sizeof(std::size_t) +
         scratch_.capacity_bytes();
}

MonitorStorage OnlineMonitor::release_storage() {
  MonitorStorage storage;
  storage.window = std::move(window_);
  storage.segment = std::move(segment_);
  storage.scratch = std::move(scratch_.alpha);
  window_.clear();
  segment_.clear();
  scratch_.alpha.clear();
  window_head_ = 0;
  window_count_ = 0;
  return storage;
}

}  // namespace cmarkov::core
