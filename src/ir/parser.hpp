// Recursive-descent parser for MiniC.
//
// Grammar (EBNF):
//   program   := function*
//   function  := "fn" IDENT "(" [ IDENT { "," IDENT } ] ")" block
//   block     := "{" statement* "}"
//   statement := "var" IDENT [ "=" expr ] ";"
//              | IDENT "=" expr ";"
//              | "if" "(" expr ")" block [ "else" block ]
//              | "while" "(" expr ")" block
//              | "return" [ expr ] ";"
//              | expr ";"
//   expr      := or_expr
//   or_expr   := and_expr { "||" and_expr }
//   and_expr  := cmp_expr { "&&" cmp_expr }
//   cmp_expr  := add_expr [ ("<"|"<="|">"|">="|"=="|"!=") add_expr ]
//   add_expr  := mul_expr { ("+"|"-") mul_expr }
//   mul_expr  := unary { ("*"|"/"|"%") unary }
//   unary     := ("-"|"!") unary | primary
//   primary   := INTEGER | IDENT [ "(" args ")" ] | "input" "(" ")"
//              | ("sys"|"lib") "(" STRING { "," expr } ")" | "(" expr ")"
#pragma once

#include <string_view>

#include "src/ir/ast.hpp"

namespace cmarkov::ir {

/// Parses a full MiniC source buffer. Throws SyntaxError on malformed input.
/// The result is purely syntactic; run check_program (sema.hpp) afterwards.
Program parse_program(std::string_view source);

}  // namespace cmarkov::ir
