// Section V-C summary: average accuracy-improvement factors of CMarkov
// over STILO and Regular-basic, computed as ratios of FN at matched FP
// across all evaluated programs. Paper reference: ~452x over STILO and
// ~31x over Regular-basic on libcalls; ~2x over STILO and ~10x over
// Regular-basic on syscalls.
#include <algorithm>
#include <iostream>

#include "src/eval/comparison.hpp"
#include "src/util/strings.hpp"
#include "src/util/table_printer.hpp"

using namespace cmarkov;

namespace {

/// FN floored away from zero so perfect detection yields a finite ratio
/// (one miss in the evaluated abnormal corpus).
double floored_fn(const eval::ScoreSet& scores, double fp,
                  std::size_t corpus) {
  const double fn = eval::fn_at_fp(scores, fp);
  const double floor = 1.0 / static_cast<double>(std::max<std::size_t>(
                                 corpus, 1));
  return std::max(fn, floor);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = eval::full_mode_enabled(argc, argv);
  eval::ComparisonOptions options = eval::default_comparison_options(full);
  const double fp = 0.01;

  std::cout << "=== Accuracy-improvement summary (FN ratio at FP="
            << format_double(fp, 2) << ", " << (full ? "full" : "quick")
            << " mode) ===\n";
  std::cout << "Paper reference: libcall 452x vs STILO / 31x vs "
               "Regular-basic; syscall 2x vs STILO / 10x vs Regular-basic."
               "\n\n";

  for (const auto filter :
       {analysis::CallFilter::kLibcalls, analysis::CallFilter::kSyscalls}) {
    TablePrinter table({"Program", "CMarkov FN", "STILO FN",
                        "Regular-basic FN", "vs STILO", "vs Regular-basic"});
    double stilo_ratio_product = 1.0;
    double basic_ratio_product = 1.0;
    std::size_t rows = 0;

    for (const auto& name : workload::all_suite_names()) {
      const workload::ProgramSuite suite = workload::make_suite(name);
      const auto comparison = eval::compare_models(suite, filter, options);
      const std::size_t corpus =
          comparison.model(eval::ModelKind::kCMarkov).scores.abnormal.size();

      const double cmarkov = floored_fn(
          comparison.model(eval::ModelKind::kCMarkov).scores, fp, corpus);
      const double stilo = floored_fn(
          comparison.model(eval::ModelKind::kStilo).scores, fp, corpus);
      const double basic = floored_fn(
          comparison.model(eval::ModelKind::kRegularBasic).scores, fp,
          corpus);

      stilo_ratio_product *= stilo / cmarkov;
      basic_ratio_product *= basic / cmarkov;
      ++rows;

      table.add_row({name, format_double(cmarkov, 4),
                     format_double(stilo, 4), format_double(basic, 4),
                     format_double(stilo / cmarkov, 1) + "x",
                     format_double(basic / cmarkov, 1) + "x"});
    }
    const double stilo_geo =
        std::pow(stilo_ratio_product, 1.0 / static_cast<double>(rows));
    const double basic_geo =
        std::pow(basic_ratio_product, 1.0 / static_cast<double>(rows));
    table.add_row({"Geo-mean", "", "", "",
                   format_double(stilo_geo, 1) + "x",
                   format_double(basic_geo, 1) + "x"});

    std::cout << "--- " << analysis::call_filter_name(filter)
              << " models ---\n";
    table.print();
    std::cout << "\n";
  }
  std::cout << "Shape check: improvement factors are large on libcalls and\n"
               "moderate on syscalls; CMarkov never loses to either "
               "baseline.\n";
  return 0;
}
