#include "src/serve/service.hpp"

#include <istream>
#include <ostream>
#include <string>

namespace cmarkov::serve {

CmarkovService::CmarkovService(ServiceConfig config)
    : sessions_(registry_, config) {}

void CmarkovService::serve_stream(std::istream& in, std::ostream& out) {
  ProtocolSession session(sessions_);
  std::string line;
  while (!session.closed() && std::getline(in, line)) {
    const std::string response = session.handle_line(line);
    if (!response.empty()) {
      out << response << "\n";
      out.flush();
    }
  }
}

}  // namespace cmarkov::serve
