#include "src/obs/trace/decision_record.hpp"

#include <cmath>
#include <cstdio>

namespace cmarkov::obs {

namespace {

/// Minimal JSON string escaping (labels are call@caller identifiers, but
/// trace ids arrive over the wire and may contain anything printable).
void append_json_string(std::string_view text, std::string& out) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

const char* bool_name(bool value) { return value ? "true" : "false"; }

}  // namespace

double DecisionRecord::contribution_sum() const {
  double sum = 0.0;
  for (const auto& symbol : symbols) sum += symbol.log_prob;
  return sum;
}

std::string format_decision_value(double value) {
  if (std::isnan(value)) return "\"nan\"";
  if (std::isinf(value)) return value > 0 ? "\"inf\"" : "\"-inf\"";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

std::string decision_record_json(const DecisionRecord& record) {
  std::string out = "{\"schema\":\"";
  out += kDecisionSchema;
  out += "\",\"session\":";
  append_json_string(record.session, out);
  out += ",\"tid\":";
  append_json_string(record.trace_id, out);
  out += ",\"window\":" + std::to_string(record.window_index);
  out += ",\"ll\":" + format_decision_value(record.log_likelihood);
  out += ",\"threshold\":" + format_decision_value(record.threshold);
  out += ",\"margin\":" + format_decision_value(record.margin);
  out += ",\"flagged\":";
  out += bool_name(record.flagged);
  out += ",\"unknown\":";
  out += bool_name(record.unknown_symbol);
  out += ",\"alarm\":";
  out += bool_name(record.alarm);
  out += ",\"sampled\":";
  out += bool_name(record.sampled);
  out += ",\"symbols\":[";
  for (std::size_t i = 0; i < record.symbols.size(); ++i) {
    const SymbolContribution& symbol = record.symbols[i];
    if (i > 0) out += ',';
    out += "{\"i\":" + std::to_string(symbol.position);
    out += ",\"sym\":" + std::to_string(symbol.symbol);
    out += ",\"label\":";
    append_json_string(symbol.label, out);
    out += ",\"logp\":" + format_decision_value(symbol.log_prob);
    out += ",\"state\":" + std::to_string(symbol.state);
    out += ",\"unknown\":";
    out += bool_name(symbol.unknown);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace cmarkov::obs
