#include "src/serve/protocol.hpp"

#include <memory>
#include <sstream>

#include "src/core/model_io.hpp"
#include "src/obs/export.hpp"
#include "src/util/failpoint.hpp"
#include "src/util/strings.hpp"

namespace cmarkov::serve {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> words;
  std::istringstream stream{std::string(trim(line))};
  std::string word;
  while (stream >> word) words.push_back(std::move(word));
  return words;
}

/// Detaches a trailing "tid=<id>" token. Returns false (leaving `words`
/// untouched) when the last token is not a tid; the id may not be empty —
/// that surfaces as a usage error in the caller's arity check, since the
/// token is consumed with an empty value.
bool take_trace_id(std::vector<std::string>& words, std::string& tid) {
  if (words.size() < 2 || words.back().rfind("tid=", 0) != 0) return false;
  tid = words.back().substr(4);
  words.pop_back();
  return true;
}

}  // namespace

std::string format_session_stats(const SessionStats& stats) {
  std::ostringstream out;
  out << "STATS v=1 session=" << stats.id << " model=" << stats.model
      << " enqueued=" << stats.enqueued << " processed=" << stats.processed
      << " dropped=" << stats.dropped << " rejected=" << stats.rejected
      << " evicted_dropped=" << stats.evicted_dropped
      << " events=" << stats.monitor.events_seen
      << " observed=" << stats.monitor.events_observed
      << " windows=" << stats.monitor.windows_scored
      << " flagged=" << stats.monitor.windows_flagged
      << " alarms=" << stats.monitor.alarms;
  return out.str();
}

ProtocolSession::ProtocolSession(SessionManager& manager)
    : manager_(manager) {}

ProtocolSession::~ProtocolSession() {
  if (!session_id_.empty() && !closed_) {
    try {
      manager_.close_session(session_id_);
    } catch (const std::exception&) {
      // Disconnect raced with an explicit close; nothing left to release.
    }
  }
}

std::string ProtocolSession::handle_line(std::string_view line) {
  const std::string_view trimmed = trim(line);
  if (trimmed.empty() || trimmed.front() == '#') return "";
  const std::vector<std::string> words = tokenize(trimmed);
  const std::string& command = words.front();
  if (closed_) return "ERR session closed (BYE already processed)";
  try {
    if (command == "HELLO") return handle_hello(words);
    if (command == "EV") return handle_event(words);
    if (command == "STATS") {
      if (session_id_.empty()) return "ERR no session (send HELLO first)";
      manager_.drain();  // verdicts are async; settle before reporting
      return format_session_stats(manager_.session_stats(session_id_));
    }
    if (command == "METRICS") {
      manager_.drain();
      // Versioned key=value exposition generated from the metrics
      // registry (docs/SERVING.md documents the schema).
      return "METRICS " + obs::to_kv_line(manager_.metrics_registry());
    }
    if (command == "TRACE") return handle_trace(words);
    if (command == "EVICT") return handle_evict();
    if (command == "RELOAD") return handle_reload(words);
    if (command == "FAILPOINT") return handle_failpoint(words);
    if (command == "BYE") return handle_bye();
    return "ERR unknown command '" + command + "'";
  } catch (const std::exception& e) {
    return std::string("ERR ") + e.what();
  }
}

std::string ProtocolSession::handle_hello(std::vector<std::string> words) {
  if (!session_id_.empty()) {
    return "ERR session already bound to '" + session_id_ + "'";
  }
  std::string tid;
  const bool has_tid = take_trace_id(words, tid);
  if (words.size() < 2 || words.size() > 3 || (has_tid && tid.empty())) {
    return "ERR usage: HELLO <model> [session-id] [tid=<id>]";
  }
  const std::string& model = words[1];
  const std::string id =
      words.size() == 3 ? words[2] : manager_.next_session_id();
  manager_.open_session(id, model);
  session_id_ = id;
  default_trace_id_ = tid;
  std::string reply = "OK session=" + id + " model=" + model;
  if (has_tid) reply += " tid=" + tid;
  return reply;
}

std::string ProtocolSession::handle_event(std::vector<std::string> words) {
  if (session_id_.empty()) return "ERR no session (send HELLO first)";
  std::string tid;
  const bool has_tid = take_trace_id(words, tid);
  if (words.size() < 3 || words.size() > 4 || (has_tid && tid.empty())) {
    return "ERR usage: EV <site> <callee> [sys|lib] [tid=<id>]";
  }
  trace::CallEvent event;
  event.caller = words[1];
  event.name = words[2];
  if (words.size() == 4) {
    if (words[3] == "sys") {
      event.kind = ir::CallKind::kSyscall;
    } else if (words[3] == "lib") {
      event.kind = ir::CallKind::kLibcall;
    } else {
      return "ERR unknown call kind '" + words[3] + "' (sys|lib)";
    }
  }
  const std::string& trace_id = has_tid ? tid : default_trace_id_;
  const std::string suffix = has_tid ? " tid=" + tid : std::string();
  // A non-empty trace id bypasses sampling, so the submit outcome below is
  // the only thing deciding whether a reply span exists for this event.
  const bool traced = manager_.tracer().enabled() && !trace_id.empty();
  const double reply_start = traced ? manager_.now_micros() : 0.0;
  std::uint64_t seq = 0;
  const SubmitResult result =
      manager_.submit(session_id_, std::move(event), trace_id, &seq);
  std::string reply;
  switch (result) {
    case SubmitResult::kAccepted:
      reply = "OK" + suffix;
      break;
    case SubmitResult::kDroppedOldest:
      reply = "OK dropped-oldest" + suffix;
      break;
    case SubmitResult::kRejected:
      return "ERR rejected queue-full";
    case SubmitResult::kUnknownSession:
      return "ERR session vanished";
  }
  if (traced) {
    obs::SpanRecord span;
    span.name = "reply";
    span.session = session_id_;
    span.trace_id = trace_id;
    span.seq = seq;
    span.start_micros = reply_start;
    span.duration_micros = manager_.now_micros() - reply_start;
    span.thread = 0;  // transport side; worker spans use the shard id
    manager_.record_span(std::move(span));
  }
  return reply;
}

std::string ProtocolSession::handle_trace(
    const std::vector<std::string>& words) {
  if (session_id_.empty()) return "ERR no session (send HELLO first)";
  if (words.size() > 2) return "ERR usage: TRACE [n]";
  std::size_t n = 16;
  if (words.size() == 2) {
    const std::string& arg = words[1];
    if (arg.empty() ||
        arg.find_first_not_of("0123456789") != std::string::npos) {
      return "ERR usage: TRACE [n]";
    }
    n = static_cast<std::size_t>(std::stoull(arg));
    if (n == 0) return "ERR usage: TRACE [n] (n must be > 0)";
  }
  manager_.drain();  // decisions are recorded by workers; settle first
  const std::vector<obs::DecisionRecord> records =
      manager_.recent_decisions(session_id_, n);
  std::string reply = "TRACE v=1 session=" + session_id_ +
                      " n=" + std::to_string(records.size());
  for (const obs::DecisionRecord& record : records) {
    reply += '\n';
    reply += obs::decision_record_json(record);
  }
  return reply;
}

std::string ProtocolSession::handle_evict() {
  if (session_id_.empty()) return "ERR no session (send HELLO first)";
  if (!manager_.evict_session(session_id_)) {
    // Already frozen (an earlier EVICT, or the residency budget beat us).
    return "OK session=" + session_id_ + " evicted_dropped=" +
           std::to_string(manager_.session_stats(session_id_).evicted_dropped);
  }
  const SessionStats stats = manager_.session_stats(session_id_);
  return "OK session=" + session_id_ +
         " evicted_dropped=" + std::to_string(stats.evicted_dropped);
}

std::string ProtocolSession::handle_reload(
    const std::vector<std::string>& words) {
  if (words.size() != 3) return "ERR usage: RELOAD <model> <path>";
  const ReloadReport report =
      manager_.reload_model(words[1], std::make_shared<const core::Detector>(
                                          core::load_detector_file(words[2])));
  return "OK model=" + words[1] + " version=" + std::to_string(report.version) +
         " rebound=" + std::to_string(report.sessions_rebound);
}

std::string ProtocolSession::handle_failpoint(
    const std::vector<std::string>& words) {
  auto& registry = util::FailpointRegistry::instance();
  if (words.size() == 1) {
    const std::vector<util::FailpointInfo> points = registry.snapshot();
    std::string reply =
        "FAILPOINT v=1 n=" + std::to_string(points.size());
    for (const util::FailpointInfo& info : points) {
      reply += '\n';
      reply += info.name + " " + util::failpoint_spec_name(info.spec) +
               " hits=" + std::to_string(info.hits);
    }
    return reply;
  }
  if (words.size() != 3) {
    return "ERR usage: FAILPOINT [<name> <off|always|once|every:N|after:N>]";
  }
  const auto spec = util::parse_failpoint_spec(words[2]);
  if (!spec) {
    return "ERR bad failpoint spec '" + words[2] +
           "' (off|always|once|every:N|after:N)";
  }
  registry.arm(words[1], *spec);
  return "OK failpoint=" + words[1] +
         " spec=" + util::failpoint_spec_name(*spec);
}

std::string ProtocolSession::handle_bye() {
  if (session_id_.empty()) return "ERR no session (send HELLO first)";
  const SessionStats stats = manager_.close_session(session_id_);
  closed_ = true;
  return "OK session=" + stats.id +
         " alarms=" + std::to_string(stats.monitor.alarms) +
         " processed=" + std::to_string(stats.processed);
}

}  // namespace cmarkov::serve
