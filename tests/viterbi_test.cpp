// Unit tests for Viterbi decoding, including brute-force cross-checks.
#include <gtest/gtest.h>

#include <cmath>

#include "src/hmm/viterbi.hpp"

namespace cmarkov::hmm {
namespace {

Hmm weather_model() {
  Hmm model;
  model.transition = Matrix::from_rows({{0.7, 0.3}, {0.4, 0.6}});
  model.emission = Matrix::from_rows({{0.1, 0.9}, {0.8, 0.2}});
  model.initial = {0.5, 0.5};
  return model;
}

/// Brute-force best path by enumeration.
std::pair<std::vector<std::size_t>, double> brute_force_best(
    const Hmm& model, const std::vector<std::size_t>& obs) {
  const std::size_t n = model.num_states();
  const std::size_t t_len = obs.size();
  std::vector<std::size_t> path(t_len, 0);
  std::vector<std::size_t> best_path;
  double best = -1.0;
  while (true) {
    double p = model.initial[path[0]] * model.emission(path[0], obs[0]);
    for (std::size_t t = 1; t < t_len; ++t) {
      p *= model.transition(path[t - 1], path[t]) *
           model.emission(path[t], obs[t]);
    }
    if (p > best) {
      best = p;
      best_path = path;
    }
    std::size_t pos = 0;
    while (pos < t_len && ++path[pos] == n) {
      path[pos] = 0;
      ++pos;
    }
    if (pos == t_len) break;
  }
  return {best_path, best};
}

TEST(ViterbiTest, MatchesBruteForce) {
  const Hmm model = weather_model();
  const std::vector<std::vector<std::size_t>> sequences = {
      {0}, {1, 0}, {0, 0, 1}, {1, 1, 0, 0, 1}};
  for (const auto& obs : sequences) {
    const auto [expected_path, expected_p] = brute_force_best(model, obs);
    const ViterbiResult result = viterbi_decode(model, obs);
    EXPECT_EQ(result.path, expected_path);
    EXPECT_NEAR(result.log_probability, std::log(expected_p), 1e-10);
  }
}

TEST(ViterbiTest, EmptySequence) {
  const ViterbiResult result = viterbi_decode(weather_model(), {});
  EXPECT_TRUE(result.path.empty());
  EXPECT_DOUBLE_EQ(result.log_probability, 0.0);
}

TEST(ViterbiTest, DeterministicChainDecodesExactly) {
  Hmm model;
  model.transition = Matrix::from_rows({{0, 1, 0}, {0, 0, 1}, {1, 0, 0}});
  model.emission = Matrix::identity(3);
  model.initial = {1.0, 0.0, 0.0};
  const std::vector<std::size_t> obs = {0, 1, 2, 0, 1};
  const ViterbiResult result = viterbi_decode(model, obs);
  EXPECT_EQ(result.path, obs);
  EXPECT_NEAR(result.log_probability, 0.0, 1e-12);
}

TEST(ViterbiTest, ImpossibleSequenceYieldsMinusInfinity) {
  Hmm model;
  model.transition = Matrix::from_rows({{1.0, 0.0}, {0.0, 1.0}});
  model.emission = Matrix::from_rows({{1.0, 0.0}, {1.0, 0.0}});
  model.initial = {1.0, 0.0};
  const std::vector<std::size_t> obs = {0, 1};
  const ViterbiResult result = viterbi_decode(model, obs);
  EXPECT_TRUE(std::isinf(result.log_probability));
  EXPECT_TRUE(result.path.empty());
}

TEST(ViterbiTest, RejectsOutOfRangeObservation) {
  EXPECT_THROW(viterbi_decode(weather_model(), std::vector<std::size_t>{5}),
               std::out_of_range);
}

TEST(ViterbiTest, PathProbabilityNeverExceedsSequenceProbability) {
  const Hmm model = weather_model();
  const std::vector<std::size_t> obs = {0, 1, 0, 0, 1, 1};
  const ViterbiResult result = viterbi_decode(model, obs);
  const auto [path, best_p] = brute_force_best(model, obs);
  (void)path;
  EXPECT_NEAR(result.log_probability, std::log(best_p), 1e-10);
}

}  // namespace
}  // namespace cmarkov::hmm
