#include "src/ir/ast.hpp"

#include <sstream>

namespace cmarkov::ir {

std::string binary_op_name(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
  }
  return "?";
}

std::string call_kind_name(CallKind kind) {
  return kind == CallKind::kSyscall ? "sys" : "lib";
}

const Function* Program::find_function(const std::string& name) const {
  for (const auto& fn : functions) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

ExprPtr make_int(std::int64_t value, int line) {
  auto e = std::make_unique<Expr>();
  e->node = IntLiteral{value};
  e->line = line;
  return e;
}

ExprPtr make_var(std::string name, int line) {
  auto e = std::make_unique<Expr>();
  e->node = VarRef{std::move(name)};
  e->line = line;
  return e;
}

ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs, int line) {
  auto e = std::make_unique<Expr>();
  e->node = BinaryExpr{op, std::move(lhs), std::move(rhs)};
  e->line = line;
  return e;
}

ExprPtr make_unary(UnaryOp op, ExprPtr operand, int line) {
  auto e = std::make_unique<Expr>();
  e->node = UnaryExpr{op, std::move(operand)};
  e->line = line;
  return e;
}

ExprPtr make_external_call(CallKind kind, std::string name,
                           std::vector<ExprPtr> args, int line) {
  auto e = std::make_unique<Expr>();
  e->node = ExternalCallExpr{kind, std::move(name), std::move(args)};
  e->line = line;
  return e;
}

ExprPtr make_internal_call(std::string callee, std::vector<ExprPtr> args,
                           int line) {
  auto e = std::make_unique<Expr>();
  e->node = InternalCallExpr{std::move(callee), std::move(args)};
  e->line = line;
  return e;
}

ExprPtr make_input(int line) {
  auto e = std::make_unique<Expr>();
  e->node = InputExpr{};
  e->line = line;
  return e;
}

StmtPtr make_var_decl(std::string name, ExprPtr init, int line) {
  auto s = std::make_unique<Stmt>();
  s->node = VarDeclStmt{std::move(name), std::move(init)};
  s->line = line;
  return s;
}

StmtPtr make_assign(std::string name, ExprPtr value, int line) {
  auto s = std::make_unique<Stmt>();
  s->node = AssignStmt{std::move(name), std::move(value)};
  s->line = line;
  return s;
}

StmtPtr make_if(ExprPtr condition, BlockStmt then_block,
                std::optional<BlockStmt> else_block, int line) {
  auto s = std::make_unique<Stmt>();
  s->node = IfStmt{std::move(condition), std::move(then_block),
                   std::move(else_block)};
  s->line = line;
  return s;
}

StmtPtr make_while(ExprPtr condition, BlockStmt body, int line) {
  auto s = std::make_unique<Stmt>();
  s->node = WhileStmt{std::move(condition), std::move(body)};
  s->line = line;
  return s;
}

StmtPtr make_return(ExprPtr value, int line) {
  auto s = std::make_unique<Stmt>();
  s->node = ReturnStmt{std::move(value)};
  s->line = line;
  return s;
}

StmtPtr make_expr_stmt(ExprPtr expr, int line) {
  auto s = std::make_unique<Stmt>();
  s->node = ExprStmt{std::move(expr)};
  s->line = line;
  return s;
}

namespace {

std::vector<ExprPtr> clone_args(const std::vector<ExprPtr>& args) {
  std::vector<ExprPtr> out;
  out.reserve(args.size());
  for (const auto& a : args) out.push_back(clone(*a));
  return out;
}

}  // namespace

ExprPtr clone(const Expr& expr) {
  auto out = std::make_unique<Expr>();
  out->line = expr.line;
  out->node = std::visit(
      [](const auto& node) -> decltype(out->node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, IntLiteral>) {
          return IntLiteral{node.value};
        } else if constexpr (std::is_same_v<T, VarRef>) {
          return VarRef{node.name};
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          return BinaryExpr{node.op, clone(*node.lhs), clone(*node.rhs)};
        } else if constexpr (std::is_same_v<T, UnaryExpr>) {
          return UnaryExpr{node.op, clone(*node.operand)};
        } else if constexpr (std::is_same_v<T, ExternalCallExpr>) {
          return ExternalCallExpr{node.kind, node.name,
                                  clone_args(node.args)};
        } else if constexpr (std::is_same_v<T, InternalCallExpr>) {
          return InternalCallExpr{node.callee, clone_args(node.args)};
        } else {
          return InputExpr{};
        }
      },
      expr.node);
  return out;
}

BlockStmt clone(const BlockStmt& block) {
  BlockStmt out;
  out.statements.reserve(block.statements.size());
  for (const auto& s : block.statements) out.statements.push_back(clone(*s));
  return out;
}

StmtPtr clone(const Stmt& stmt) {
  auto out = std::make_unique<Stmt>();
  out->line = stmt.line;
  out->node = std::visit(
      [](const auto& node) -> decltype(out->node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, VarDeclStmt>) {
          return VarDeclStmt{node.name,
                             node.init ? clone(*node.init) : nullptr};
        } else if constexpr (std::is_same_v<T, AssignStmt>) {
          return AssignStmt{node.name, clone(*node.value)};
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          std::optional<BlockStmt> else_block;
          if (node.else_block) else_block = clone(*node.else_block);
          return IfStmt{clone(*node.condition), clone(node.then_block),
                        std::move(else_block)};
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          return WhileStmt{clone(*node.condition), clone(node.body)};
        } else if constexpr (std::is_same_v<T, ReturnStmt>) {
          return ReturnStmt{node.value ? clone(*node.value) : nullptr};
        } else {
          return ExprStmt{clone(*node.expr)};
        }
      },
      stmt.node);
  return out;
}

namespace {

void print_expr(std::ostream& os, const Expr& expr);

void print_args(std::ostream& os, const std::vector<ExprPtr>& args) {
  os << "(";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) os << ", ";
    print_expr(os, *args[i]);
  }
  os << ")";
}

void print_expr(std::ostream& os, const Expr& expr) {
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, IntLiteral>) {
          os << node.value;
        } else if constexpr (std::is_same_v<T, VarRef>) {
          os << node.name;
        } else if constexpr (std::is_same_v<T, BinaryExpr>) {
          os << "(";
          print_expr(os, *node.lhs);
          os << " " << binary_op_name(node.op) << " ";
          print_expr(os, *node.rhs);
          os << ")";
        } else if constexpr (std::is_same_v<T, UnaryExpr>) {
          os << (node.op == UnaryOp::kNeg ? "-" : "!");
          print_expr(os, *node.operand);
        } else if constexpr (std::is_same_v<T, ExternalCallExpr>) {
          os << call_kind_name(node.kind) << "(\"" << node.name << "\"";
          for (const auto& a : node.args) {
            os << ", ";
            print_expr(os, *a);
          }
          os << ")";
        } else if constexpr (std::is_same_v<T, InternalCallExpr>) {
          os << node.callee;
          print_args(os, node.args);
        } else {
          os << "input()";
        }
      },
      expr.node);
}

void print_block(std::ostream& os, const BlockStmt& block, int indent);

void print_stmt(std::ostream& os, const Stmt& stmt, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::visit(
      [&](const auto& node) {
        using T = std::decay_t<decltype(node)>;
        if constexpr (std::is_same_v<T, VarDeclStmt>) {
          os << pad << "var " << node.name;
          if (node.init) {
            os << " = ";
            print_expr(os, *node.init);
          }
          os << ";\n";
        } else if constexpr (std::is_same_v<T, AssignStmt>) {
          os << pad << node.name << " = ";
          print_expr(os, *node.value);
          os << ";\n";
        } else if constexpr (std::is_same_v<T, IfStmt>) {
          os << pad << "if (";
          print_expr(os, *node.condition);
          os << ") {\n";
          print_block(os, node.then_block, indent + 1);
          os << pad << "}";
          if (node.else_block) {
            os << " else {\n";
            print_block(os, *node.else_block, indent + 1);
            os << pad << "}";
          }
          os << "\n";
        } else if constexpr (std::is_same_v<T, WhileStmt>) {
          os << pad << "while (";
          print_expr(os, *node.condition);
          os << ") {\n";
          print_block(os, node.body, indent + 1);
          os << pad << "}\n";
        } else if constexpr (std::is_same_v<T, ReturnStmt>) {
          os << pad << "return";
          if (node.value) {
            os << " ";
            print_expr(os, *node.value);
          }
          os << ";\n";
        } else {
          os << pad;
          print_expr(os, *node.expr);
          os << ";\n";
        }
      },
      stmt.node);
}

void print_block(std::ostream& os, const BlockStmt& block, int indent) {
  for (const auto& s : block.statements) print_stmt(os, *s, indent);
}

}  // namespace

std::string to_source(const Function& function) {
  std::ostringstream os;
  os << "fn " << function.name << "(";
  for (std::size_t i = 0; i < function.params.size(); ++i) {
    if (i > 0) os << ", ";
    os << function.params[i];
  }
  os << ") {\n";
  print_block(os, function.body, 1);
  os << "}\n";
  return os.str();
}

std::string to_source(const Program& program) {
  std::string out;
  for (const auto& fn : program.functions) {
    out += to_source(fn);
    out += "\n";
  }
  return out;
}

}  // namespace cmarkov::ir
