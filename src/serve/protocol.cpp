#include "src/serve/protocol.hpp"

#include <sstream>

#include "src/obs/export.hpp"
#include "src/util/strings.hpp"

namespace cmarkov::serve {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> words;
  std::istringstream stream{std::string(trim(line))};
  std::string word;
  while (stream >> word) words.push_back(std::move(word));
  return words;
}

}  // namespace

std::string format_session_stats(const SessionStats& stats) {
  std::ostringstream out;
  out << "STATS v=1 session=" << stats.id << " model=" << stats.model
      << " enqueued=" << stats.enqueued << " processed=" << stats.processed
      << " dropped=" << stats.dropped << " rejected=" << stats.rejected
      << " events=" << stats.monitor.events_seen
      << " observed=" << stats.monitor.events_observed
      << " windows=" << stats.monitor.windows_scored
      << " flagged=" << stats.monitor.windows_flagged
      << " alarms=" << stats.monitor.alarms;
  return out.str();
}

ProtocolSession::ProtocolSession(SessionManager& manager)
    : manager_(manager) {}

ProtocolSession::~ProtocolSession() {
  if (!session_id_.empty() && !closed_) {
    try {
      manager_.close_session(session_id_);
    } catch (const std::exception&) {
      // Disconnect raced with an explicit close; nothing left to release.
    }
  }
}

std::string ProtocolSession::handle_line(std::string_view line) {
  const std::string_view trimmed = trim(line);
  if (trimmed.empty() || trimmed.front() == '#') return "";
  const std::vector<std::string> words = tokenize(trimmed);
  const std::string& command = words.front();
  if (closed_) return "ERR session closed (BYE already processed)";
  try {
    if (command == "HELLO") return handle_hello(words);
    if (command == "EV") return handle_event(words);
    if (command == "STATS") {
      if (session_id_.empty()) return "ERR no session (send HELLO first)";
      manager_.drain();  // verdicts are async; settle before reporting
      return format_session_stats(manager_.session_stats(session_id_));
    }
    if (command == "METRICS") {
      manager_.drain();
      // Versioned key=value exposition generated from the metrics
      // registry (docs/SERVING.md documents the schema).
      return "METRICS " + obs::to_kv_line(manager_.metrics_registry());
    }
    if (command == "BYE") return handle_bye();
    return "ERR unknown command '" + command + "'";
  } catch (const std::exception& e) {
    return std::string("ERR ") + e.what();
  }
}

std::string ProtocolSession::handle_hello(
    const std::vector<std::string>& words) {
  if (!session_id_.empty()) {
    return "ERR session already bound to '" + session_id_ + "'";
  }
  if (words.size() < 2 || words.size() > 3) {
    return "ERR usage: HELLO <model> [session-id]";
  }
  const std::string& model = words[1];
  const std::string id =
      words.size() == 3 ? words[2] : manager_.next_session_id();
  manager_.open_session(id, model);
  session_id_ = id;
  return "OK session=" + id + " model=" + model;
}

std::string ProtocolSession::handle_event(
    const std::vector<std::string>& words) {
  if (session_id_.empty()) return "ERR no session (send HELLO first)";
  if (words.size() < 3 || words.size() > 4) {
    return "ERR usage: EV <site> <callee> [sys|lib]";
  }
  trace::CallEvent event;
  event.caller = words[1];
  event.name = words[2];
  if (words.size() == 4) {
    if (words[3] == "sys") {
      event.kind = ir::CallKind::kSyscall;
    } else if (words[3] == "lib") {
      event.kind = ir::CallKind::kLibcall;
    } else {
      return "ERR unknown call kind '" + words[3] + "' (sys|lib)";
    }
  }
  switch (manager_.submit(session_id_, std::move(event))) {
    case SubmitResult::kAccepted:
      return "OK";
    case SubmitResult::kDroppedOldest:
      return "OK dropped-oldest";
    case SubmitResult::kRejected:
      return "ERR rejected queue-full";
    case SubmitResult::kUnknownSession:
      return "ERR session vanished";
  }
  return "ERR unreachable";
}

std::string ProtocolSession::handle_bye() {
  if (session_id_.empty()) return "ERR no session (send HELLO first)";
  const SessionStats stats = manager_.close_session(session_id_);
  closed_ = true;
  return "OK session=" + stats.id +
         " alarms=" + std::to_string(stats.monitor.alarms) +
         " processed=" + std::to_string(stats.processed);
}

}  // namespace cmarkov::serve
