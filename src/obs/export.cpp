#include "src/obs/export.hpp"

#include <cstdio>
#include <map>

namespace cmarkov::obs {

namespace {

void append_span_json(const TraceSpan& span, std::string& out) {
  out += "{\"name\":\"" + span.name + "\"";
  out += ",\"seconds\":" + format_metric_value(span.seconds);
  out += ",\"count\":" + std::to_string(span.count);
  if (!span.children.empty()) {
    out += ",\"children\":[";
    for (std::size_t i = 0; i < span.children.size(); ++i) {
      if (i > 0) out += ",";
      append_span_json(span.children[i], out);
    }
    out += "]";
  }
  out += "}";
}

void append_metrics_json(const MetricsRegistry::Snapshot& snap,
                         std::string& out) {
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + format_metric_value(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + format_metric_value(h.sum) +
           ",\"p50\":" + format_metric_value(h.p50) +
           ",\"p99\":" + format_metric_value(h.p99) + "}";
  }
  out += "}}";
}

}  // namespace

std::string format_metric_value(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

std::string to_prometheus(const MetricsRegistry& registry) {
  const auto snap = registry.snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + format_metric_value(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      out += name + "_bucket{le=\"" + format_metric_value(h.bounds[i]) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += name + "_sum " + format_metric_value(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string to_kv_line(const MetricsRegistry& registry) {
  const auto snap = registry.snapshot();
  // One flat sorted key space: histogram summary keys interleave with the
  // scalar instruments in lexical order.
  std::map<std::string, std::string> pairs;
  for (const auto& [name, value] : snap.counters) {
    pairs.emplace(name, std::to_string(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    pairs.emplace(name, format_metric_value(value));
  }
  for (const auto& [name, h] : snap.histograms) {
    pairs.emplace(name + "_count", std::to_string(h.count));
    pairs.emplace(name + "_sum", format_metric_value(h.sum));
    pairs.emplace(name + "_p50", format_metric_value(h.p50));
    pairs.emplace(name + "_p99", format_metric_value(h.p99));
  }
  std::string out = "v=" + std::to_string(kKvSchemaVersion);
  for (const auto& [key, value] : pairs) {
    out += " " + key + "=" + value;
  }
  return out;
}

std::string run_profile_json(const RunProfile& profile,
                             const MetricsRegistry* registry) {
  std::string out = "{\"schema\":\"cmarkov.profile.v1\"";
  out += ",\"total_seconds\":" + format_metric_value(profile.root().seconds);
  out += ",\"profile\":";
  append_span_json(profile.root(), out);
  if (registry != nullptr) {
    out += ",\"metrics\":";
    append_metrics_json(registry->snapshot(), out);
  }
  out += "}\n";
  return out;
}

}  // namespace cmarkov::obs
