// The overload degradation ladder: when cmarkovd is pushed past sustained
// capacity, it sheds load in a deliberate, documented order instead of
// letting queue pressure pick victims at random (DESIGN.md §8 has the
// rationale; MaMaDroid's abstraction fallback is the analogous idea on the
// modeling side — degrade along a known ladder, never off a cliff).
//
// The ladder, in shedding order:
//   level 0  normal       full service
//   level 1  shed-traces  sampled span/decision tracing suspended
//                         (tid=-forced traces still honored)
//   level 2  shed-hellos  new sessions refused with a retry-after hint
//                         ("ERR overloaded retry-after=<ms>"); existing
//                         sessions — resident or snapshotted — unaffected
//   level 3  shed-idle    idle resident sessions evicted early (snapshot
//                         + restore, so nothing is lost — they just pay a
//                         restore later)
//
// Accepted events are NEVER dropped by the ladder: every rung sheds work
// the protocol lets us refuse or defer, not events already acknowledged.
//
// Pressure is the max of two signals: queue occupancy (queued / capacity)
// and the per-event deadline budget (estimated queue delay, queued x EMA
// service time, over ServiceConfig's event_deadline_micros). The ladder
// moves one rung at a time, and only after the breach (or the relief) has
// persisted for sustain_micros — transient bursts don't shed, and recovery
// is as deliberate as degradation (hysteresis via the low/high water pair).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>

namespace cmarkov::serve {

struct OverloadOptions {
  bool enabled = true;
  /// Per-event latency budget: estimated queue delay beyond this counts as
  /// pressure even while queues have headroom. 0 disables the delay signal
  /// (occupancy still governs).
  double event_deadline_micros = 50'000.0;
  /// Occupancy (or deadline-normalized delay) at/above which the breach
  /// timer runs.
  double high_water_ratio = 0.75;
  /// Occupancy at/below which the relief timer runs (the gap between the
  /// two is the hysteresis hold band).
  double low_water_ratio = 0.25;
  /// Breach/relief must persist this long before the ladder moves a rung.
  double sustain_micros = 250'000.0;
  /// Retry hint (milliseconds) sent with shed HELLOs.
  std::uint64_t retry_after_ms = 1000;
  /// At level 3, residency is enforced against
  /// max_resident_sessions * this fraction (early idle eviction).
  double shed_resident_fraction = 0.75;
};

enum class OverloadLevel : int {
  kNormal = 0,
  kShedTraces = 1,
  kShedHellos = 2,
  kShedIdle = 3,
};

/// "normal" | "shed-traces" | "shed-hellos" | "shed-idle".
const char* overload_level_name(OverloadLevel level);

/// Thrown by SessionManager::open_session when the ladder refuses a new
/// session. Deliberately NOT a std::runtime_error: the binary protocol
/// maps runtime_error to a connection-dropping framing violation, and an
/// overloaded server must answer with a retryable application error
/// instead. what() is protocol-ready: "overloaded retry-after=<ms>".
class OverloadedError : public std::exception {
 public:
  explicit OverloadedError(std::uint64_t retry_after_ms)
      : message_("overloaded retry-after=" + std::to_string(retry_after_ms)) {}
  const char* what() const noexcept override { return message_.c_str(); }

 private:
  std::string message_;
};

/// The admission governor. level() reads are one relaxed atomic load (the
/// submit hot path checks it per event); update() is called periodically
/// with aggregate queue state and moves the ladder.
class OverloadGovernor {
 public:
  explicit OverloadGovernor(OverloadOptions options);

  bool enabled() const { return options_.enabled; }
  const OverloadOptions& options() const { return options_; }

  OverloadLevel level() const {
    return static_cast<OverloadLevel>(level_.load(std::memory_order_relaxed));
  }
  bool shed_trace_sampling() const {
    return level_.load(std::memory_order_relaxed) >=
           static_cast<int>(OverloadLevel::kShedTraces);
  }
  bool shed_new_sessions() const {
    return level_.load(std::memory_order_relaxed) >=
           static_cast<int>(OverloadLevel::kShedHellos);
  }
  bool shed_idle_sessions() const {
    return level_.load(std::memory_order_relaxed) >=
           static_cast<int>(OverloadLevel::kShedIdle);
  }
  std::uint64_t retry_after_ms() const { return options_.retry_after_ms; }

  struct Update {
    OverloadLevel level = OverloadLevel::kNormal;
    /// Rungs moved by this update (0 almost always; the ladder moves one
    /// rung per sustained breach/relief).
    int transitions = 0;
  };

  /// Feeds one pressure observation. `queued` is the aggregate queued
  /// event count across workers, `capacity` the aggregate queue capacity,
  /// `est_service_micros` the EMA per-event service time (0 = unknown).
  /// Thread-safe; concurrent callers serialize on an internal mutex.
  Update update(double now_micros, std::size_t queued, std::size_t capacity,
                double est_service_micros);

  /// The combined pressure signal update() acts on (exposed for tests and
  /// the overload gauge): max(occupancy, estimated delay / deadline).
  double pressure(std::size_t queued, std::size_t capacity,
                  double est_service_micros) const;

 private:
  const OverloadOptions options_;
  std::mutex mu_;  ///< guards the breach/relief timers below
  std::atomic<int> level_{0};
  double breach_since_ = -1.0;  ///< -1 = no running breach timer
  double relief_since_ = -1.0;  ///< -1 = no running relief timer
};

}  // namespace cmarkov::serve
