// Tests for detector persistence: save/load round trips and malformed-input
// rejection.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>

#include "src/core/model_io.hpp"
#include "src/hmm/random_init.hpp"
#include "src/util/rng.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::core {
namespace {

Detector trained_detector() {
  static const workload::ProgramSuite suite = workload::make_gzip_suite();
  DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  config.training.max_iterations = 5;
  Detector detector = Detector::build(suite.module(), config);
  const auto collection = workload::collect_traces(suite, 20, 31);
  detector.train(collection.traces);
  return detector;
}

TEST(ModelIoTest, RoundTripPreservesEverything) {
  const Detector original = trained_detector();
  std::stringstream buffer;
  save_detector(buffer, original);
  const Detector loaded = load_detector(buffer);

  EXPECT_EQ(loaded.trained(), original.trained());
  EXPECT_DOUBLE_EQ(loaded.threshold(), original.threshold());
  EXPECT_EQ(loaded.alphabet().symbols(), original.alphabet().symbols());
  EXPECT_EQ(loaded.model().num_states(), original.model().num_states());
  EXPECT_EQ(loaded.model().num_symbols(), original.model().num_symbols());
  EXPECT_LT(loaded.model().transition.max_abs_diff(
                original.model().transition),
            1e-15);
  EXPECT_LT(loaded.model().emission.max_abs_diff(original.model().emission),
            1e-15);
  EXPECT_EQ(loaded.config().pipeline.filter,
            original.config().pipeline.filter);
  EXPECT_EQ(loaded.config().pipeline.context_sensitive,
            original.config().pipeline.context_sensitive);
  EXPECT_EQ(loaded.config().segments.length,
            original.config().segments.length);
}

TEST(ModelIoTest, LoadedDetectorClassifiesIdentically) {
  const Detector original = trained_detector();
  std::stringstream buffer;
  save_detector(buffer, original);
  const Detector loaded = load_detector(buffer);

  static const workload::ProgramSuite suite = workload::make_gzip_suite();
  const auto fresh = workload::collect_traces(suite, 5, 999);
  for (const auto& trace : fresh.traces) {
    const TraceVerdict a = original.classify(trace);
    const TraceVerdict b = loaded.classify(trace);
    EXPECT_EQ(a.anomalous, b.anomalous);
    EXPECT_EQ(a.flagged_segments, b.flagged_segments);
    EXPECT_NEAR(a.min_log_likelihood, b.min_log_likelihood, 1e-9);
  }
}

TEST(ModelIoTest, FileRoundTrip) {
  const Detector original = trained_detector();
  const std::string path = ::testing::TempDir() + "/cmarkov_model.txt";
  save_detector_file(path, original);
  const Detector loaded = load_detector_file(path);
  EXPECT_EQ(loaded.model().num_states(), original.model().num_states());
}

TEST(ModelIoTest, RejectsWrongMagic) {
  std::stringstream buffer("not-a-detector 1\n");
  EXPECT_THROW(load_detector(buffer), std::runtime_error);
}

TEST(ModelIoTest, RejectsWrongVersion) {
  std::stringstream buffer("cmarkov-detector 999\n");
  EXPECT_THROW(load_detector(buffer), std::runtime_error);
}

TEST(ModelIoTest, RejectsTruncatedBody) {
  const Detector original = trained_detector();
  std::stringstream buffer;
  save_detector(buffer, original);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(load_detector(truncated), std::runtime_error);
}

/// Serialized form of the shared trained detector, computed once.
const std::string& saved_model_text() {
  static const std::string text = [] {
    std::stringstream buffer;
    save_detector(buffer, trained_detector());
    return buffer.str();
  }();
  return text;
}

/// Asserts load_detector throws std::runtime_error whose message names the
/// offending content via `expected_substring`.
void expect_load_error(const std::string& text,
                       const std::string& expected_substring) {
  std::stringstream in(text);
  try {
    load_detector(in);
    FAIL() << "expected std::runtime_error mentioning '"
           << expected_substring << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(expected_substring),
              std::string::npos)
        << "error message '" << e.what() << "' does not name '"
        << expected_substring << "'";
  }
}

/// Replaces the whole "key value" line with "key <replacement>".
std::string with_key_value(const std::string& text, const std::string& key,
                           const std::string& replacement) {
  const std::size_t key_pos = text.find("\n" + key + " ") + 1;
  EXPECT_NE(key_pos, std::string::npos);
  const std::size_t line_end = text.find('\n', key_pos);
  std::string mutated = text;
  mutated.replace(key_pos, line_end - key_pos, key + " " + replacement);
  return mutated;
}

TEST(ModelIoTest, RejectsNaNAndInfThreshold) {
  for (const char* bad : {"nan", "inf", "-inf", "NaN", "0x", "1.0.0"}) {
    expect_load_error(with_key_value(saved_model_text(), "threshold", bad),
                      "threshold");
  }
}

TEST(ModelIoTest, RejectsBadVersionLine) {
  expect_load_error("cmarkov-detector one\nfilter syscall\n", "version");
  expect_load_error("cmarkov-detector\n", "version");
  expect_load_error("cmarkov-detector 2\n", "version 2");
}

TEST(ModelIoTest, TruncatedMatrixNamesTheTag) {
  const std::string& text = saved_model_text();
  // Cut a few characters into the transition matrix body.
  const std::size_t tag = text.find("transition ");
  ASSERT_NE(tag, std::string::npos);
  const std::size_t body = text.find('\n', tag) + 1;
  expect_load_error(text.substr(0, body + 3), "transition");

  // Same for a matrix body poisoned with a non-numeric token.
  std::string poisoned = text;
  poisoned.replace(body, 4, "zzzz");
  expect_load_error(poisoned, "transition");
}

TEST(ModelIoTest, MalformedNumericKeysNameTheKey) {
  expect_load_error(
      with_key_value(saved_model_text(), "segment_length", "banana"),
      "segment_length");
  expect_load_error(with_key_value(saved_model_text(), "alphabet", "-"),
                    "alphabet");
}

TEST(ModelIoTest, TruncatedInitialVectorNamesIt) {
  const std::string& text = saved_model_text();
  const std::size_t tag = text.find("\ninitial ");
  ASSERT_NE(tag, std::string::npos);
  const std::size_t body = text.find('\n', tag + 1) + 1;
  expect_load_error(text.substr(0, body), "initial");
}

TEST(ModelIoTest, MissingFileThrows) {
  EXPECT_THROW(load_detector_file("/nonexistent/path/model.txt"),
               std::runtime_error);
}

// ---- trainer-state persistence (`cmarkov-trainer-state 1`) ----

/// A small trained Trainer whose state exercises every serialized field:
/// absorbed corpus, holdout, two batch records, and a populated
/// iteration-0 prefix cache.
hmm::TrainerState trained_state() {
  Rng rng(7);
  std::vector<hmm::ObservationSeq> corpus;
  for (std::size_t s = 0; s < 12; ++s) {
    hmm::ObservationSeq seq;
    for (std::size_t t = 0; t < 10; ++t) {
      seq.push_back(rng.index(3));
    }
    corpus.push_back(std::move(seq));
  }
  hmm::TrainingOptions options;
  options.max_iterations = 4;
  hmm::Trainer trainer(hmm::randomly_initialized_hmm(2, 3, rng), options);
  trainer.fit({corpus.begin(), corpus.begin() + 8},
              {corpus.begin() + 8, corpus.begin() + 10});
  trainer.partial_fit({corpus.begin() + 10, corpus.end()});
  return trainer.state();
}

/// Serialized form of the shared trainer state, computed once.
const std::string& saved_trainer_text() {
  static const std::string text = [] {
    std::stringstream buffer;
    save_trainer_state(buffer, trained_state());
    return buffer.str();
  }();
  return text;
}

// save → load → save must reproduce the byte-identical text: doubles
// travel as IEEE-754 bit patterns, so nothing can drift in transit.
TEST(ModelIoTest, TrainerStateRoundTripIsByteExact) {
  std::stringstream first(saved_trainer_text());
  const hmm::TrainerState loaded = load_trainer_state(first);
  std::stringstream second;
  save_trainer_state(second, loaded);
  EXPECT_EQ(second.str(), saved_trainer_text());

  const hmm::TrainerState original = trained_state();
  EXPECT_EQ(loaded.train, original.train);
  EXPECT_EQ(loaded.holdout, original.holdout);
  EXPECT_EQ(loaded.batches.size(), original.batches.size());
  EXPECT_EQ(loaded.cached_count, original.cached_count);
  EXPECT_EQ(loaded.slot_prefix.size(), original.slot_prefix.size());
  EXPECT_EQ(loaded.ll_sum_prefix, original.ll_sum_prefix);  // exact bits
  EXPECT_EQ(loaded.holdout_ll_sum, original.holdout_ll_sum);
}

// The hex codec must preserve values decimal formatting mangles: signed
// zero, subnormals, and values with no short decimal representation.
TEST(ModelIoTest, TrainerStateHexDoublesPreserveSpecialValues) {
  hmm::TrainerState state = trained_state();
  state.min_improvement = -0.0;
  state.impossible_penalty = -std::numeric_limits<double>::denorm_min();
  state.ll_sum_prefix = std::nextafter(-123.456, -1000.0);
  std::stringstream wire;
  save_trainer_state(wire, state);
  const hmm::TrainerState loaded = load_trainer_state(wire);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(loaded.min_improvement),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(loaded.impossible_penalty, state.impossible_penalty);
  EXPECT_EQ(loaded.ll_sum_prefix, state.ll_sum_prefix);
}

TEST(ModelIoTest, TrainerStateFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/cmarkov_trainer_state.txt";
  save_trainer_state_file(path, trained_state());
  const hmm::TrainerState loaded = load_trainer_state_file(path);
  EXPECT_EQ(loaded.train, trained_state().train);
  EXPECT_THROW(load_trainer_state_file("/nonexistent/trainer.state"),
               std::runtime_error);
}

TEST(ModelIoTest, TrainerStateRejectsWrongMagicAndVersion) {
  std::stringstream not_trainer("cmarkov-detector 1\n");
  EXPECT_THROW(load_trainer_state(not_trainer), std::runtime_error);
  std::stringstream bad_version("cmarkov-trainer-state banana\n");
  EXPECT_THROW(load_trainer_state(bad_version), std::runtime_error);
  std::stringstream future("cmarkov-trainer-state 999\n");
  EXPECT_THROW(load_trainer_state(future), std::runtime_error);
}

TEST(ModelIoTest, TrainerStateRejectsBadSlotCount) {
  // The prefix cache is all 16 merge slots or nothing; a partial slot set
  // could not continue the fold and must be refused at load time.
  std::string text = saved_trainer_text();
  const std::size_t pos = text.find("\nslots ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, text.find('\n', pos + 1) - pos, "\nslots 3");
  std::stringstream in(text);
  try {
    load_trainer_state(in);
    FAIL() << "expected rejection of a 3-slot prefix cache";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("merge slots"), std::string::npos)
        << e.what();
  }
}

TEST(ModelIoTest, TrainerStateRejectsMalformedHexDouble) {
  std::stringstream in(
      with_key_value(saved_trainer_text(), "ll_sum_prefix", "zznothex"));
  try {
    load_trainer_state(in);
    FAIL() << "expected rejection of a malformed hex double";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("ll_sum_prefix"), std::string::npos)
        << e.what();
  }
}

TEST(ModelIoTest, TrainerStateRejectsInconsistentPrefix) {
  // Structurally well-formed but semantically impossible: the cached
  // prefix claims more sequences than the corpus holds. validate() fires.
  std::stringstream in(
      with_key_value(saved_trainer_text(), "cached_count", "99999"));
  EXPECT_THROW(load_trainer_state(in), std::invalid_argument);
}

TEST(ModelIoTest, TrainerStateRejectsTruncation) {
  const std::string& full = saved_trainer_text();
  std::stringstream truncated(full.substr(0, full.size() / 3));
  EXPECT_THROW(load_trainer_state(truncated), std::runtime_error);
}

TEST(ModelIoTest, FromPartsValidatesShape) {
  const Detector original = trained_detector();
  hmm::Hmm narrow = original.model();
  hmm::Alphabet alphabet = original.alphabet();
  alphabet.intern("extra_symbol_beyond_emission");
  EXPECT_THROW(Detector::from_parts(original.config(), std::move(narrow),
                                    std::move(alphabet), 0.0, true),
               std::invalid_argument);
}

}  // namespace
}  // namespace cmarkov::core
