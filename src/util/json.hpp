// Minimal strict JSON parser for cmarkov's own machine-readable outputs
// (/varz, /statusz, decision records). Recursive descent over the full
// RFC 8259 grammar minus \uXXXX surrogate pairs (escapes decode to '?').
//
// This exists so tools like `cmarkov top` can consume the admin plane
// without a third-party dependency; it is not a general-purpose or
// performance-oriented parser. Objects preserve insertion order.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cmarkov::util {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// First member named `key` (null when absent or not an object).
  const JsonValue* find(std::string_view key) const;
  /// Dotted-path lookup: find_path("histograms.latency.p99").
  const JsonValue* find_path(std::string_view path) const;

  double number_or(double fallback) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  std::string string_or(std::string fallback) const {
    return kind == Kind::kString ? string : std::move(fallback);
  }
};

/// Parses one JSON document (trailing whitespace allowed, trailing content
/// is an error). Throws std::invalid_argument on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace cmarkov::util
