// Call graph over MiniC functions, with SCC condensation. The aggregation
// step (Section IV) inlines callee call-transition matrices bottom-up, so it
// needs callees ordered before callers; call-graph cycles (recursion) are
// collapsed and treated as pass-through, matching the paper's policy of
// leaving recursion to dynamic training.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/cfg/cfg.hpp"

namespace cmarkov::cfg {

/// One caller -> callee edge with the number of syntactic call sites.
struct CallEdge {
  std::string caller;
  std::string callee;
  std::size_t site_count = 0;
};

class CallGraph {
 public:
  /// Builds from lowered CFGs. Unknown callees throw (run sema first).
  static CallGraph build(const ModuleCfg& module);

  const std::vector<std::string>& functions() const { return functions_; }
  const std::vector<CallEdge>& edges() const { return edges_; }

  /// Callees of `caller` (deduplicated, sorted).
  std::vector<std::string> callees(const std::string& caller) const;

  /// Callers of `callee` (deduplicated, sorted).
  std::vector<std::string> callers(const std::string& callee) const;

  bool has_edge(const std::string& caller, const std::string& callee) const;

  /// Functions reachable from the entry point (inclusive).
  std::set<std::string> reachable_from(const std::string& entry) const;

  /// Strongly connected components in reverse topological order of the
  /// condensation: every call from component i lands in some component j <=
  /// i, so processing components in index order visits callees before
  /// callers. Within a component the order is arbitrary.
  const std::vector<std::vector<std::string>>& scc_order() const {
    return sccs_;
  }

  /// True if `a` and `b` are in the same SCC (mutual recursion), or a == b
  /// with a self-loop.
  bool in_cycle_with(const std::string& a, const std::string& b) const;

 private:
  std::vector<std::string> functions_;
  std::vector<CallEdge> edges_;
  std::map<std::string, std::set<std::string>> out_;
  std::map<std::string, std::set<std::string>> in_;
  std::vector<std::vector<std::string>> sccs_;
  std::map<std::string, std::size_t> scc_of_;
};

}  // namespace cmarkov::cfg
