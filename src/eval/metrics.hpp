// Detection metrics (Equations 3 and 4): given a threshold T on segment
// probability, FP is the fraction of normal segments scoring below T and FN
// the fraction of abnormal segments scoring above T. Scores here are
// log-likelihoods (monotone in probability, so the equations carry over);
// impossible segments score -infinity and are caught at every threshold.
#pragma once

#include <cstddef>
#include <vector>

namespace cmarkov::eval {

struct ScoreSet {
  std::vector<double> normal;    ///< log P of normal test segments
  std::vector<double> abnormal;  ///< log P of abnormal segments
};

/// Equation 4: |{S_N : P < T}| / |S_N|.
double fp_rate(const ScoreSet& scores, double threshold);

/// Equation 3: |{S_A : P > T}| / |S_A|.
double fn_rate(const ScoreSet& scores, double threshold);

struct RocPoint {
  double threshold = 0.0;
  double fp = 0.0;
  double fn = 0.0;
};

/// FP/FN pairs swept over thresholds placed at normal-score quantiles
/// (plus -infinity and +infinity sentinels). Points are ordered by
/// increasing FP.
std::vector<RocPoint> roc_curve(const ScoreSet& scores,
                                std::size_t points = 50);

/// FN at the largest threshold whose FP does not exceed `target_fp` — the
/// "FN at matched FP" numbers behind Figures 2-5 and the fold-improvement
/// claims of Section V-C.
double fn_at_fp(const ScoreSet& scores, double target_fp);

/// The threshold used by fn_at_fp.
double threshold_for_fp(const ScoreSet& scores, double target_fp);

/// Area under the FP-vs-detection curve (1 - FN over FP in [0,1]); a
/// single-number summary used by the ablation bench.
double detection_auc(const ScoreSet& scores, std::size_t points = 200);

}  // namespace cmarkov::eval
