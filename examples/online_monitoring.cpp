// Streaming deployment: an OnlineMonitor fed one call event at a time, the
// way an auditd-style sensor would consume a live kernel feed. Events
// arrive raw (addresses only); the monitor symbolizes on the fly, slides a
// 15-call window, and raises alarms with hysteresis when a code-reuse
// payload fires mid-session.
#include <iostream>

#include "src/attack/exploit_driver.hpp"
#include "src/core/online_monitor.hpp"
#include "src/util/strings.hpp"
#include "src/workload/testcase_generator.hpp"

using namespace cmarkov;

int main() {
  const workload::ProgramSuite suite = workload::make_nginx_suite();
  std::cout << "Live monitoring demo: " << suite.info().name << "\n\n";

  // Offline: build + train + calibrate the detector.
  core::DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  config.training.max_iterations = 10;
  config.target_fp = 0.001;
  core::Detector detector = core::Detector::build(suite.module(), config);
  detector.train(workload::collect_traces(suite, 60, 7).traces);
  std::cout << "Detector ready: " << detector.num_states()
            << " states, threshold "
            << format_double(detector.threshold(), 2) << "\n";

  // Online: raw events stream in; the symbolizer resolves callers from
  // site addresses (cached addr2line in the paper's deployment).
  const trace::Symbolizer symbolizer(suite.cfg());
  core::MonitorOptions options;
  options.windows_to_alarm = 2;  // two consecutive bad windows
  options.cooldown_events = 50;  // then stay quiet for a while
  core::OnlineMonitor monitor(detector, &symbolizer, options);

  // The feed: two benign sessions, then a session hijacked by a reverse
  // shell payload, then one more benign session.
  std::vector<trace::Trace> feed;
  auto benign = workload::collect_traces(suite, 3, 777).traces;
  attack::ExploitOptions exploit_options;
  exploit_options.traces_per_payload = 1;
  auto attacks = attack::build_attack_traces(
      suite,
      {attack::ExploitPayload{
          "Buffer Overflow (nginx, simulated)", "reverse_shell",
          {{ir::CallKind::kSyscall, "socket"},
           {ir::CallKind::kSyscall, "connect"},
           {ir::CallKind::kSyscall, "dup2"},
           {ir::CallKind::kSyscall, "dup2"},
           {ir::CallKind::kSyscall, "dup2"},
           {ir::CallKind::kSyscall, "execve"}}}},
      99, exploit_options);
  feed.push_back(std::move(benign[0]));
  feed.push_back(std::move(benign[1]));
  feed.push_back(std::move(attacks[0].trace));
  feed.push_back(std::move(benign[2]));

  const char* kLabels[] = {"benign session", "benign session",
                           "HIJACKED session", "benign session"};
  std::size_t total_events = 0;
  for (std::size_t s = 0; s < feed.size(); ++s) {
    const std::size_t alarms_before = monitor.stats().alarms;
    for (auto event : feed[s].events) {
      ++total_events;
      event.caller.clear();  // simulate a raw kernel feed
      const auto update = monitor.on_event(event);
      if (update.alarm) {
        std::cout << "  !! ALARM at event " << total_events << " ("
                  << event.name << " from "
                  << (symbolizer.resolve(event.site_address)
                          .value_or("<unmapped>"))
                  << "), window log-likelihood "
                  << (update.unknown_symbol
                          ? std::string("-inf")
                          : format_double(update.log_likelihood, 1))
                  << "\n";
      }
    }
    const std::size_t alarms = monitor.stats().alarms - alarms_before;
    std::cout << "session " << s + 1 << " (" << kLabels[s] << "): "
              << feed[s].events.size() << " events, " << alarms
              << " alarm(s)\n";
    monitor.reset_window();  // session boundary
  }

  const auto& stats = monitor.stats();
  std::cout << "\nFeed summary: " << stats.events_seen << " events, "
            << stats.windows_scored << " windows scored, "
            << stats.windows_flagged << " flagged, " << stats.alarms
            << " alarms.\n";
  std::cout << "Expected: alarms only inside the hijacked session.\n";
  return 0;
}
