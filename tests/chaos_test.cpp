// Chaos harness for cmarkovd (ISSUE 8): failpoint trigger policies and
// activation paths, crash-safe snapshot persistence (dirty-retry, torn
// writes, boot quarantine, byte-level corruption fuzzing), the crash-and-
// restart loop (no acked-event loss, bit-identical recovery), the overload
// degradation ladder (documented shedding order, zero accepted-event
// drops, one-rung-at-a-time recovery), and the FAILPOINT admin verb.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/model_io.hpp"
#include "src/serve/overload_governor.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/session_manager.hpp"
#include "src/serve/session_snapshot.hpp"
#include "src/util/failpoint.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::serve {
namespace {

using util::FailpointMode;
using util::FailpointRegistry;
using util::FailpointSpec;
using util::ScopedFailpoint;

/// Every test leaves the process-wide registry clean, even on failure.
class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { FailpointRegistry::instance().disarm_all(); }
};

core::Detector train_detector(const workload::ProgramSuite& suite,
                              std::uint64_t seed) {
  core::DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  config.training.max_iterations = 4;
  core::Detector detector = core::Detector::build(suite.module(), config);
  detector.train(workload::collect_traces(suite, 20, seed).traces);
  return detector;
}

struct Fixture {
  workload::ProgramSuite gzip = workload::make_gzip_suite();
  std::shared_ptr<const core::Detector> gzip_model =
      std::make_shared<const core::Detector>(train_detector(gzip, 91));

  std::vector<trace::CallEvent> events_for(std::uint64_t seed,
                                           std::size_t runs = 3) const {
    std::vector<trace::CallEvent> events;
    for (const auto& trace :
         workload::collect_traces(gzip, runs, seed).traces) {
      events.insert(events.end(), trace.events.begin(), trace.events.end());
    }
    return events;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

std::unique_ptr<ModelRegistry> make_registry() {
  auto registry = std::make_unique<ModelRegistry>();
  registry->add_shared("gzip", fixture().gzip_model);
  return registry;
}

ServiceConfig pump_config() {
  ServiceConfig config;
  config.num_workers = 1;
  config.manual_pump = true;
  return config;
}

void feed(SessionManager& manager, const std::string& id,
          const std::vector<trace::CallEvent>& events, std::size_t begin,
          std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    ASSERT_EQ(manager.submit(id, events[i]), SubmitResult::kAccepted) << i;
  }
  manager.drain();
}

void expect_same_frozen_state(const SessionSnapshot& a,
                              const SessionSnapshot& b) {
  EXPECT_EQ(a.monitor.window, b.monitor.window);
  EXPECT_EQ(a.monitor.consecutive_flagged, b.monitor.consecutive_flagged);
  EXPECT_EQ(a.monitor.cooldown_remaining, b.monitor.cooldown_remaining);
  EXPECT_EQ(a.monitor.stats.events_seen, b.monitor.stats.events_seen);
  EXPECT_EQ(a.monitor.stats.events_observed, b.monitor.stats.events_observed);
  EXPECT_EQ(a.monitor.stats.windows_scored, b.monitor.stats.windows_scored);
  EXPECT_EQ(a.monitor.stats.windows_flagged, b.monitor.stats.windows_flagged);
  EXPECT_EQ(a.monitor.stats.alarms, b.monitor.stats.alarms);
}

SessionSnapshot sample_snapshot(const std::string& id) {
  SessionSnapshot snap;
  snap.id = id;
  snap.model = "gzip";
  snap.model_version = 2;
  snap.model_fingerprint = 0xfeedbeef;
  snap.enqueued = 31;
  snap.processed = 30;
  snap.dropped = 1;
  snap.windows_to_alarm = 2;
  snap.cooldown_events = 5;
  snap.monitor.window = {3, 1, 4, 1, 5, 9, 2, 6};
  snap.monitor.consecutive_flagged = 1;
  snap.monitor.stats.events_seen = 30;
  snap.monitor.stats.windows_scored = 2;
  return snap;
}

// -- Failpoint policies and activation --------------------------------------

TEST_F(ChaosTest, SpecParseAndRenderRoundTrip) {
  const char* good[] = {"off", "always", "once", "every:3", "after:12"};
  for (const char* text : good) {
    const auto spec = util::parse_failpoint_spec(text);
    ASSERT_TRUE(spec.has_value()) << text;
    EXPECT_EQ(util::failpoint_spec_name(*spec), text);
  }
  const char* bad[] = {"",       "sometimes", "every:",  "every:0",
                       "every:x", "after:",   "after:-1", "always "};
  for (const char* text : bad) {
    EXPECT_FALSE(util::parse_failpoint_spec(text).has_value()) << text;
  }
  // after:0 is legal (fire from the first evaluation on).
  EXPECT_EQ(util::parse_failpoint_spec("after:0")->mode,
            FailpointMode::kAfterN);
}

TEST_F(ChaosTest, TriggerPoliciesAreDeterministic) {
  auto& registry = FailpointRegistry::instance();
  util::Failpoint& point = registry.point("chaos.policy");

  registry.arm("chaos.policy", *util::parse_failpoint_spec("every:3"));
  std::vector<bool> fired;
  for (int i = 0; i < 7; ++i) fired.push_back(point.should_fire());
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false}));

  // Re-arming resets the call ordinal: after:2 skips the next two.
  registry.arm("chaos.policy", *util::parse_failpoint_spec("after:2"));
  EXPECT_FALSE(point.should_fire());
  EXPECT_FALSE(point.should_fire());
  EXPECT_TRUE(point.should_fire());
  EXPECT_TRUE(point.should_fire());

  // once fires exactly once, then self-disarms (the process-wide armed
  // count drops with it, restoring the macro's zero-cost fast path).
  registry.disarm_all();
  EXPECT_FALSE(FailpointRegistry::any_armed());
  registry.arm("chaos.policy", *util::parse_failpoint_spec("once"));
  EXPECT_TRUE(FailpointRegistry::any_armed());
  EXPECT_TRUE(point.should_fire());
  EXPECT_FALSE(FailpointRegistry::any_armed());
  EXPECT_FALSE(point.should_fire());

  // Hit counts are lifetime-monotonic across re-arms.
  EXPECT_EQ(point.hits(), 2u + 2u + 1u);
}

TEST_F(ChaosTest, ScopedArmingNeverLeaks) {
  auto& registry = FailpointRegistry::instance();
  {
    ScopedFailpoint fp("chaos.scoped", "always");
    EXPECT_TRUE(FailpointRegistry::any_armed());
    EXPECT_TRUE(registry.point("chaos.scoped").should_fire());
  }
  EXPECT_FALSE(FailpointRegistry::any_armed());
  EXPECT_FALSE(registry.point("chaos.scoped").should_fire());
}

TEST_F(ChaosTest, EnvActivationArmsAndSkipsMalformedEntries) {
  ::setenv("CMARKOV_FAILPOINTS",
           "chaos.env_a=always, chaos.env_b=every:3;broken=sometimes;"
           "=always;chaos.env_c",
           1);
  // Bare names default to always; the two malformed entries are skipped
  // with a logged error instead of taking the daemon down.
  EXPECT_EQ(util::arm_failpoints_from_env(), 3u);
  ::unsetenv("CMARKOV_FAILPOINTS");

  auto& registry = FailpointRegistry::instance();
  EXPECT_EQ(registry.point("chaos.env_a").spec().mode, FailpointMode::kAlways);
  EXPECT_EQ(registry.point("chaos.env_b").spec().mode,
            FailpointMode::kEveryNth);
  EXPECT_EQ(registry.point("chaos.env_b").spec().n, 3u);
  EXPECT_EQ(registry.point("chaos.env_c").spec().mode, FailpointMode::kAlways);
  EXPECT_EQ(registry.point("broken").spec().mode, FailpointMode::kOff);
}

// -- Overload governor unit behavior ----------------------------------------

TEST_F(ChaosTest, GovernorMovesOneRungAtATimeWithHysteresis) {
  OverloadOptions options;
  options.event_deadline_micros = 0.0;  // occupancy-only: deterministic
  options.sustain_micros = 100.0;
  OverloadGovernor governor(options);

  // A breach must persist for sustain_micros before the first rung.
  EXPECT_EQ(governor.update(0.0, 90, 100, 0.0).transitions, 0);
  EXPECT_EQ(governor.level(), OverloadLevel::kNormal);
  EXPECT_EQ(governor.update(99.0, 90, 100, 0.0).transitions, 0);
  EXPECT_EQ(governor.update(100.0, 90, 100, 0.0).transitions, 1);
  EXPECT_EQ(governor.level(), OverloadLevel::kShedTraces);

  // Each further rung needs its own sustained breach; the ladder tops out
  // at shed-idle and stays there while the breach holds.
  EXPECT_EQ(governor.update(200.0, 90, 100, 0.0).transitions, 1);
  EXPECT_EQ(governor.level(), OverloadLevel::kShedHellos);
  EXPECT_EQ(governor.update(300.0, 90, 100, 0.0).transitions, 1);
  EXPECT_EQ(governor.level(), OverloadLevel::kShedIdle);
  EXPECT_EQ(governor.update(400.0, 90, 100, 0.0).transitions, 0);
  EXPECT_EQ(governor.level(), OverloadLevel::kShedIdle);

  // The hold band (between low and high water) freezes the ladder: a dip
  // into it resets the breach timer instead of recovering.
  EXPECT_EQ(governor.update(500.0, 50, 100, 0.0).transitions, 0);
  EXPECT_EQ(governor.level(), OverloadLevel::kShedIdle);

  // Recovery needs sustained relief, and is one rung at a time too.
  EXPECT_EQ(governor.update(600.0, 0, 100, 0.0).transitions, 0);
  EXPECT_EQ(governor.update(700.0, 0, 100, 0.0).transitions, 1);
  EXPECT_EQ(governor.level(), OverloadLevel::kShedHellos);
  EXPECT_EQ(governor.update(800.0, 0, 100, 0.0).transitions, 1);
  EXPECT_EQ(governor.update(900.0, 0, 100, 0.0).transitions, 1);
  EXPECT_EQ(governor.level(), OverloadLevel::kNormal);
  EXPECT_EQ(governor.update(1000.0, 0, 100, 0.0).transitions, 0);
}

TEST_F(ChaosTest, GovernorDeadlineSignalCountsAsPressure) {
  OverloadOptions options;
  options.event_deadline_micros = 1000.0;
  options.sustain_micros = 0.0;
  OverloadGovernor governor(options);

  // 10% occupancy is calm, but 100 queued events at 50us each is a 5000us
  // estimated delay against a 1000us budget: pressure 5.0 breaches.
  EXPECT_DOUBLE_EQ(governor.pressure(100, 1000, 0.0), 0.1);
  EXPECT_DOUBLE_EQ(governor.pressure(100, 1000, 50.0), 5.0);
  EXPECT_EQ(governor.update(1.0, 100, 1000, 50.0).transitions, 1);
  EXPECT_EQ(governor.level(), OverloadLevel::kShedTraces);

  EXPECT_THROW(OverloadGovernor(OverloadOptions{.high_water_ratio = 0.2,
                                                .low_water_ratio = 0.5}),
               std::invalid_argument);
}

// -- Crash-safe snapshot persistence ----------------------------------------

TEST_F(ChaosTest, WriteFailureGoesDirtyAndRetriesUntilClean) {
  const std::string dir = ::testing::TempDir() + "/cmarkov_chaos_dirty";
  std::filesystem::remove_all(dir);
  obs::MetricsRegistry metrics;
  SnapshotStore store(dir);
  store.bind_instruments(metrics);
  store.set_retry_backoff(0, 0);

  {
    ScopedFailpoint fp("snapshot.write_fail", "always");
    store.put(sample_snapshot("flaky"));
    store.put(sample_snapshot("flaky"));  // retries the dirty entry too
  }
  EXPECT_EQ(store.dirty_count(), 1u);
  EXPECT_FALSE(std::filesystem::exists(dir + "/flaky.session"));
  EXPECT_TRUE(store.contains("flaky"));  // degraded to memory, not lost
  EXPECT_GE(metrics.counter("cmarkov_snapshot_write_failures_total").value(),
            2u);

  // Once the fault clears, the pending write flushes and the entry comes
  // off the dirty list; the file now exists and carries a valid CRC.
  EXPECT_EQ(store.retry_pending_writes(), 1u);
  EXPECT_EQ(store.dirty_count(), 0u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/flaky.session"));
  EXPECT_GE(metrics.counter("cmarkov_snapshot_write_retries_total").value(),
            1u);

  SnapshotStore reborn(dir);
  EXPECT_EQ(reborn.load_directory(), 1u);
  const auto loaded = reborn.peek("flaky");
  ASSERT_TRUE(loaded.has_value());
  expect_same_frozen_state(*loaded, sample_snapshot("flaky"));
  std::filesystem::remove_all(dir);
}

TEST_F(ChaosTest, OpenAndFsyncFailuresDegradeWithoutThrowing) {
  const std::string dir = ::testing::TempDir() + "/cmarkov_chaos_openfail";
  std::filesystem::remove_all(dir);
  SnapshotStore store(dir);
  store.set_retry_backoff(0, 0);
  {
    ScopedFailpoint fp("snapshot.open_fail", "always");
    EXPECT_NO_THROW(store.put(sample_snapshot("o")));
    EXPECT_EQ(store.dirty_count(), 1u);
  }
  {
    // put("f") retries "o" first (which eats this one-shot fsync fault and
    // stays dirty), then lands its own write clean — faults on the retry
    // path re-queue the entry instead of losing it.
    ScopedFailpoint fp("snapshot.fsync_fail", "once");
    EXPECT_NO_THROW(store.put(sample_snapshot("f")));
  }
  EXPECT_EQ(store.dirty_count(), 1u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/f.session"));
  EXPECT_EQ(store.retry_pending_writes(), 1u);
  EXPECT_EQ(store.dirty_count(), 0u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/o.session"));
  std::filesystem::remove_all(dir);
}

TEST_F(ChaosTest, TornWriteIsQuarantinedAtBootNotSilentlySkipped) {
  const std::string dir = ::testing::TempDir() + "/cmarkov_chaos_torn";
  std::filesystem::remove_all(dir);
  {
    SnapshotStore store(dir);
    store.put(sample_snapshot("intact"));
    ScopedFailpoint fp("snapshot.write_torn", "always");
    // The torn write lands half the payload at the FINAL path and reports
    // success — exactly the failure atomic-rename prevents, injected past
    // it, so only the boot-time CRC check can catch it.
    store.put(sample_snapshot("torn"));
  }
  // Plus an orphaned tmp, as a crash between write and rename leaves.
  { std::ofstream tmp(dir + "/orphan.session.tmp"); tmp << "partial"; }

  SnapshotStore store(dir);
  EXPECT_EQ(store.load_directory(), 1u);
  EXPECT_TRUE(store.contains("intact"));
  EXPECT_FALSE(store.contains("torn"));
  EXPECT_EQ(store.quarantined_count(), 1u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/quarantine/torn.session"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/torn.session"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/orphan.session.tmp"));
  std::filesystem::remove_all(dir);
}

/// Satellite (c): corrupt one snapshot file at EVERY byte offset — a
/// truncation at each length and a bit flip at each position — and assert
/// boot quarantines every mutant while the intact sibling loads and
/// round-trips bit-identically.
TEST_F(ChaosTest, EveryByteOffsetCorruptionIsQuarantinedWithoutLosingSiblings) {
  const std::string dir = ::testing::TempDir() + "/cmarkov_chaos_fuzz";
  std::filesystem::remove_all(dir);
  {
    SnapshotStore store(dir);
    store.put(sample_snapshot("good"));
  }
  std::ifstream in(dir + "/good.session", std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  ASSERT_GT(bytes.size(), 15u);  // body + crc footer

  std::size_t mutants = 0;
  const auto spawn = [&](const std::string& name, const std::string& data) {
    std::ofstream out(dir + "/" + name + ".session", std::ios::binary);
    out << data;
    ++mutants;
  };
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    spawn("trunc_" + std::to_string(cut), bytes.substr(0, cut));
  }
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x20);
    spawn("flip_" + std::to_string(pos), flipped);
  }

  SnapshotStore store(dir);
  EXPECT_EQ(store.load_directory(), 1u);
  EXPECT_EQ(store.quarantined_count(), mutants);
  const auto loaded = store.peek("good");
  ASSERT_TRUE(loaded.has_value());
  expect_same_frozen_state(*loaded, sample_snapshot("good"));
  EXPECT_EQ(loaded->model_fingerprint, 0xfeedbeefu);

  // Nothing vanished: every mutant is sitting in quarantine for forensics,
  // and the healthy file is still in place.
  std::size_t quarantined_files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir + "/quarantine")) {
    quarantined_files += entry.is_regular_file() ? 1 : 0;
  }
  EXPECT_EQ(quarantined_files, mutants);
  EXPECT_TRUE(std::filesystem::exists(dir + "/good.session"));
  std::filesystem::remove_all(dir);
}

// -- Crash-and-restart loop --------------------------------------------------

/// The tentpole's end-to-end guarantee: a daemon that persists, "crashes"
/// (manager destroyed, memory gone, disk survives), and restarts — several
/// times, at arbitrary points in the stream — loses no acknowledged event
/// and ends bit-identical to a session that never stopped.
TEST_F(ChaosTest, CrashRestartLoopLosesNoAckedEventsAndRecoversExactly) {
  const std::string dir = ::testing::TempDir() + "/cmarkov_chaos_restart";
  std::filesystem::remove_all(dir);
  auto registry = make_registry();
  ServiceConfig config = pump_config();
  config.snapshot_dir = dir;
  const std::vector<trace::CallEvent> events = fixture().events_for(61);
  ASSERT_GT(events.size(), 8u);

  constexpr std::size_t kRestarts = 4;
  std::size_t done = 0;
  for (std::size_t run = 0; run < kRestarts; ++run) {
    SessionManager manager(*registry, config);
    if (run == 0) {
      manager.open_session("durable", "gzip");
    } else {
      ASSERT_EQ(manager.snapshot_store().load_directory(), 1u) << run;
      ASSERT_TRUE(manager.has_session("durable")) << run;
    }
    const std::size_t next = events.size() * (run + 1) / kRestarts;
    feed(manager, "durable", events, done, next);
    done = next;
    ASSERT_TRUE(manager.evict_session("durable")) << run;
    ASSERT_TRUE(std::filesystem::exists(dir + "/durable.session")) << run;
  }  // each scope exit is a crash: resident state is simply gone

  SessionManager final_run(*registry, config);
  ASSERT_EQ(final_run.snapshot_store().load_directory(), 1u);
  final_run.open_session("straight", "gzip");
  feed(final_run, "straight", events, 0, events.size());

  // Zero acked-event loss across all four lifetimes...
  const SessionStats durable = final_run.session_stats("durable");
  EXPECT_EQ(durable.enqueued, events.size());
  EXPECT_EQ(durable.processed, events.size());
  EXPECT_EQ(durable.dropped, 0u);
  EXPECT_EQ(durable.evicted_dropped, 0u);

  // ...and the full scoring state matches the uninterrupted run exactly.
  ASSERT_TRUE(final_run.evict_session("straight"));
  const auto interrupted = final_run.snapshot_store().peek("durable");
  const auto straight = final_run.snapshot_store().peek("straight");
  ASSERT_TRUE(interrupted.has_value());
  ASSERT_TRUE(straight.has_value());
  expect_same_frozen_state(*interrupted, *straight);
  std::filesystem::remove_all(dir);
}

// -- Overload degradation ladder in the serving path -------------------------

TEST_F(ChaosTest, LadderShedsInDocumentedOrderWithZeroAcceptedDrops) {
  auto registry = make_registry();
  ServiceConfig config = pump_config();
  config.queue_capacity = 8;
  config.policy = BackpressurePolicy::kReject;
  config.max_resident_sessions = 4;
  config.overload.sustain_micros = 0.0;        // deterministic transitions
  config.overload.event_deadline_micros = 0.0;  // occupancy-only signal
  config.overload.shed_resident_fraction = 0.5;
  config.overload.retry_after_ms = 250;
  SessionManager manager(*registry, config);
  const auto level = [&] { return manager.overload_governor().level(); };
  const auto counter = [&](const char* name) {
    return manager.instruments().counter(name).value();
  };

  manager.open_session("busy", "gzip");
  manager.open_session("idle-a", "gzip");
  manager.open_session("idle-b", "gzip");
  manager.open_session("idle-c", "gzip");

  // Fill the one worker queue to 100% occupancy without pumping.
  trace::CallEvent event;
  event.caller = "main";
  event.name = "read";
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(manager.submit("busy", event), SubmitResult::kAccepted) << i;
  }
  EXPECT_EQ(level(), OverloadLevel::kNormal);

  // Each METRICS refresh feeds the governor one observation; with zero
  // sustain the ladder climbs exactly one rung per refresh — in order.
  manager.metrics_registry();
  EXPECT_EQ(level(), OverloadLevel::kShedTraces);
  EXPECT_TRUE(manager.overload_governor().shed_trace_sampling());
  EXPECT_FALSE(manager.overload_governor().shed_new_sessions());

  manager.metrics_registry();
  EXPECT_EQ(level(), OverloadLevel::kShedHellos);
  try {
    manager.open_session("newbie", "gzip");
    FAIL() << "shed-hellos must refuse genuinely new sessions";
  } catch (const OverloadedError& e) {
    EXPECT_STREQ(e.what(), "overloaded retry-after=250");
  }
  EXPECT_EQ(counter("cmarkov_serve_overload_shed_hellos_total"), 1u);
  EXPECT_FALSE(manager.has_session("newbie"));

  // Rung 3 shrinks the resident working set right away: the budget drops
  // to max_resident * 0.5 = 2, evicting the two least-recently-active
  // idle sessions ("busy" holds queued events and is untouchable).
  manager.metrics_registry();
  EXPECT_EQ(level(), OverloadLevel::kShedIdle);
  EXPECT_EQ(manager.resident_sessions(), 2u);
  EXPECT_TRUE(manager.snapshot_store().contains("idle-a"));
  EXPECT_TRUE(manager.snapshot_store().contains("idle-b"));
  EXPECT_EQ(counter("cmarkov_serve_overload_early_evicted_total"), 2u);

  // The ladder tops out: another breach observation moves nothing.
  manager.metrics_registry();
  EXPECT_EQ(level(), OverloadLevel::kShedIdle);
  EXPECT_EQ(counter("cmarkov_serve_overload_transitions_total"), 3u);

  // Under the whole episode, not one ACCEPTED event was dropped: draining
  // scores all eight, and nothing was rejected or lost to the ladder.
  manager.drain();
  const SessionStats busy = manager.session_stats("busy");
  EXPECT_EQ(busy.enqueued, 8u);
  EXPECT_EQ(busy.processed, 8u);
  EXPECT_EQ(busy.dropped, 0u);
  EXPECT_EQ(busy.rejected, 0u);
  EXPECT_EQ(busy.evicted_dropped, 0u);

  // Recovery is as deliberate as degradation: one rung per observation,
  // all the way back to normal service.
  manager.metrics_registry();
  EXPECT_EQ(level(), OverloadLevel::kShedHellos);
  manager.metrics_registry();
  EXPECT_EQ(level(), OverloadLevel::kShedTraces);
  manager.metrics_registry();
  EXPECT_EQ(level(), OverloadLevel::kNormal);
  EXPECT_EQ(counter("cmarkov_serve_overload_transitions_total"), 6u);

  // New sessions are admitted again, and the early-evicted sessions come
  // back transparently with nothing lost.
  EXPECT_NO_THROW(manager.open_session("newbie", "gzip"));
  ASSERT_EQ(manager.submit("idle-a", event), SubmitResult::kAccepted);
  manager.drain();
  EXPECT_EQ(manager.session_stats("idle-a").processed, 1u);
}

TEST_F(ChaosTest, LadderShedsSampledTracingButHonorsForcedTraces) {
  auto registry = make_registry();
  ServiceConfig config = pump_config();
  config.tracing.enabled = true;
  config.tracing.sample_every = 1;  // every event would normally trace
  config.overload.sustain_micros = 0.0;
  SessionManager manager(*registry, config);
  manager.open_session("t", "gzip");
  trace::CallEvent event;
  event.caller = "main";
  event.name = "read";

  // Push the governor to shed-traces with a synthetic pressure reading.
  manager.overload_governor().update(1.0, 100, 100, 0.0);
  ASSERT_EQ(manager.overload_governor().level(), OverloadLevel::kShedTraces);

  // An unforced event is shed; a tid=-forced one is a debugging request
  // and stays traced even while shedding.
  ASSERT_EQ(manager.submit("t", event), SubmitResult::kAccepted);
  EXPECT_EQ(manager.instruments()
                .counter("cmarkov_serve_overload_shed_traces_total")
                .value(),
            1u);
  manager.overload_governor().update(2.0, 100, 100, 0.0);
  ASSERT_EQ(manager.submit("t", event, "tid-forced"), SubmitResult::kAccepted);
  EXPECT_EQ(manager.instruments()
                .counter("cmarkov_serve_overload_shed_traces_total")
                .value(),
            1u);  // unchanged: the forced trace was honored, not shed
  manager.drain();
}

// -- Failpoints wired through the serving path -------------------------------

TEST_F(ChaosTest, AdmitFullFailpointForcesBackpressureAndMirrorsHits) {
  auto registry = make_registry();
  ServiceConfig config = pump_config();
  config.policy = BackpressurePolicy::kReject;
  SessionManager manager(*registry, config);
  manager.open_session("af", "gzip");
  trace::CallEvent event;
  event.caller = "main";
  event.name = "read";

  {
    ScopedFailpoint fp("serve.admit_full", "always");
    EXPECT_EQ(manager.submit("af", event), SubmitResult::kRejected);
    EXPECT_EQ(manager.session_stats("af").rejected, 1u);
  }
  EXPECT_EQ(manager.submit("af", event), SubmitResult::kAccepted);
  manager.drain();

  // The METRICS refresh mirrors lifetime failpoint hits onto the registry.
  manager.metrics_registry();
  EXPECT_GE(manager.instruments()
                .counter("cmarkov_failpoint_serve_admit_full_hits_total")
                .value(),
            1u);
}

TEST_F(ChaosTest, FailpointVerbListsArmsAndDisarms) {
  const std::string model_path =
      ::testing::TempDir() + "/cmarkov_chaos_reload.model";
  core::save_detector_file(model_path, *fixture().gzip_model);
  auto registry = make_registry();
  SessionManager manager(*registry, pump_config());
  ProtocolSession session(manager);

  EXPECT_TRUE(session.handle_line("FAILPOINT").starts_with("FAILPOINT v=1 n="));
  EXPECT_TRUE(session.handle_line("FAILPOINT serve.reload_fail sometimes")
                  .starts_with("ERR bad failpoint spec"));
  EXPECT_EQ(session.handle_line("FAILPOINT serve.reload_fail always"),
            "OK failpoint=serve.reload_fail spec=always");

  // The armed failpoint turns a hot reload into a clean application error:
  // the old model keeps serving, no connection is dropped.
  const std::string failed =
      session.handle_line("RELOAD gzip " + model_path);
  EXPECT_TRUE(failed.starts_with("ERR")) << failed;
  EXPECT_NE(failed.find("serve.reload_fail"), std::string::npos) << failed;

  // The listing reflects both the spec and the recorded hit.
  const std::string listing = session.handle_line("FAILPOINT");
  EXPECT_NE(listing.find("serve.reload_fail always hits=1"),
            std::string::npos)
      << listing;

  EXPECT_EQ(session.handle_line("FAILPOINT serve.reload_fail off"),
            "OK failpoint=serve.reload_fail spec=off");
  EXPECT_TRUE(session.handle_line("RELOAD gzip " + model_path)
                  .starts_with("OK model=gzip"))
      << "disarming must restore normal reloads";
  std::filesystem::remove(model_path);
}

}  // namespace
}  // namespace cmarkov::serve
