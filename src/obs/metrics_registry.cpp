#include "src/obs/metrics_registry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cmarkov::obs {

namespace detail {

std::size_t thread_ordinal() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

void atomic_add(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace detail

namespace {

void validate_metric_name(std::string_view name) {
  if (name.empty()) {
    throw std::invalid_argument("metric name must be non-empty");
  }
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) {
      throw std::invalid_argument("metric name '" + std::string(name) +
                                  "' has characters outside [a-zA-Z0-9_:]");
    }
  }
}

}  // namespace

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()) {
  if (bounds_.empty()) {
    throw std::invalid_argument("histogram bucket bounds must be non-empty");
  }
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (!std::isfinite(bounds_[i])) {
      throw std::invalid_argument("histogram bucket bounds must be finite");
    }
    if (i > 0 && bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument(
          "histogram bucket bounds must be strictly increasing");
    }
  }
  buckets_ = std::make_unique<detail::PaddedCell[]>(bounds_.size() + 1);
}

void Histogram::record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // == size() → overflow
  buckets_[bucket].value.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sum_, value);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    total += buckets_[i].value.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::quantile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(std::ceil(clamped * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    seen += buckets_[i].value.load(std::memory_order_relaxed);
    if (seen >= target) return bounds_[i];
  }
  return bounds_.back();  // overflow bucket saturates at the last bound
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].value.load(std::memory_order_relaxed);
  }
  return counts;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  validate_metric_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  validate_metric_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> upper_bounds) {
  validate_metric_name(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(upper_bounds))
             .first;
    return *it->second;
  }
  const auto& existing = it->second->bounds();
  if (!std::equal(existing.begin(), existing.end(), upper_bounds.begin(),
                  upper_bounds.end())) {
    throw std::invalid_argument("histogram '" + std::string(name) +
                                "' re-registered with different bounds");
  }
  return *it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.bounds = histogram->bounds();
    h.buckets = histogram->bucket_counts();
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.p50 = histogram->quantile(0.50);
    h.p99 = histogram->quantile(0.99);
    snap.histograms.emplace(name, std::move(h));
  }
  return snap;
}

std::span<const double> seconds_bucket_bounds() {
  static constexpr double kBounds[] = {
      1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2,
      1e-1, 2e-1, 5e-1, 1.0,  2.0,  5.0,  10.0, 20.0, 50.0, 100.0};
  return kBounds;
}

}  // namespace cmarkov::obs
