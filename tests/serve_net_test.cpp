// Tests for the epoll TCP front-end and the session lifecycle that backs
// it: CMKB frame encode/decode round trips, a table of hostile frames
// (reject, account, never crash), the BinarySession conversation, the
// bit-identical snapshot/evict/restore guarantee, snapshot persistence
// across manager instances, LRU residency enforcement, eviction drop
// accounting, hot model reload under live traffic, and end-to-end socket
// conversations in both text and binary mode against a real EpollServer.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/net/binary_session.hpp"
#include "src/serve/net/epoll_server.hpp"
#include "src/serve/net/frame.hpp"
#include "src/serve/protocol.hpp"
#include "src/serve/session_manager.hpp"
#include "src/util/strings.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::serve::net {
namespace {

core::Detector train_detector(const workload::ProgramSuite& suite,
                              std::uint64_t seed) {
  core::DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  config.training.max_iterations = 4;
  core::Detector detector = core::Detector::build(suite.module(), config);
  detector.train(workload::collect_traces(suite, 20, seed).traces);
  return detector;
}

struct Fixture {
  workload::ProgramSuite gzip = workload::make_gzip_suite();
  std::shared_ptr<const core::Detector> gzip_model =
      std::make_shared<const core::Detector>(train_detector(gzip, 91));

  std::vector<trace::CallEvent> events_for(std::uint64_t seed,
                                           std::size_t runs = 3) const {
    std::vector<trace::CallEvent> events;
    for (const auto& trace :
         workload::collect_traces(gzip, runs, seed).traces) {
      events.insert(events.end(), trace.events.begin(), trace.events.end());
    }
    return events;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

/// A registry per lifecycle test keeps version bumps from one test out of
/// the restore staleness checks of the next (the detector itself is shared).
std::unique_ptr<ModelRegistry> make_registry() {
  auto registry = std::make_unique<ModelRegistry>();
  registry->add_shared("gzip", fixture().gzip_model);
  return registry;
}

ServiceConfig pump_config() {
  ServiceConfig config;
  config.num_workers = 1;
  config.manual_pump = true;
  return config;
}

// -- Frame round trips -----------------------------------------------------

TEST(FrameTest, EncodeDecodeRoundTrip) {
  const std::string payload = encode_hello_payload("gzip", "s-9", "tid-1");
  const std::string wire = encode_frame(FrameOp::kHello, 0, payload);
  ASSERT_EQ(wire.size(), kFrameHeaderSize + payload.size());

  FrameParser parser;
  parser.feed(wire.data(), wire.size());
  const auto frame = parser.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->op, FrameOp::kHello);
  EXPECT_EQ(frame->flags, 0u);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_TRUE(parser.error().empty());
  EXPECT_EQ(parser.buffered(), 0u);
  EXPECT_FALSE(parser.next().has_value());

  const HelloRequest hello = decode_hello_payload(frame->payload);
  EXPECT_EQ(hello.model, "gzip");
  EXPECT_EQ(hello.session, "s-9");
  EXPECT_EQ(hello.trace_id, "tid-1");
}

TEST(FrameTest, EventBatchRoundTrip) {
  std::vector<trace::CallEvent> events(3);
  events[0].kind = ir::CallKind::kSyscall;
  events[0].caller = "main";
  events[0].name = "read";
  events[1].kind = ir::CallKind::kLibcall;
  events[1].caller = "compress_block";
  events[1].name = "malloc";
  events[2].kind = ir::CallKind::kSyscall;
  events[2].caller = "";
  events[2].name = "close";

  const std::string payload = encode_event_batch_payload(events);
  const std::vector<trace::CallEvent> decoded =
      decode_event_batch_payload(payload);
  ASSERT_EQ(decoded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(decoded[i].kind, events[i].kind) << i;
    EXPECT_EQ(decoded[i].caller, events[i].caller) << i;
    EXPECT_EQ(decoded[i].name, events[i].name) << i;
  }

  EXPECT_EQ(decode_trace_payload(encode_trace_payload(17)), 17u);
}

TEST(FrameTest, ParserHandlesByteAtATimeAndBackToBackFrames) {
  const std::string one = encode_frame(FrameOp::kStats, 0, "");
  const std::string two =
      encode_frame(FrameOp::kReply, kFlagNoReply, "OK n=5");

  FrameParser parser;
  for (char byte : one) {
    EXPECT_FALSE(parser.next().has_value());
    parser.feed(&byte, 1);
  }
  const auto first = parser.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->op, FrameOp::kStats);

  // Two complete frames in a single feed come out one next() at a time.
  const std::string both = two + two;
  parser.feed(both.data(), both.size());
  for (int i = 0; i < 2; ++i) {
    const auto frame = parser.next();
    ASSERT_TRUE(frame.has_value()) << i;
    EXPECT_EQ(frame->op, FrameOp::kReply) << i;
    EXPECT_EQ(frame->flags, kFlagNoReply) << i;
    EXPECT_EQ(frame->payload, "OK n=5") << i;
  }
  EXPECT_FALSE(parser.next().has_value());
  EXPECT_EQ(parser.buffered(), 0u);
}

// -- Hostile input ---------------------------------------------------------

/// Framing-level attacks: the parser must latch its error state and stop
/// producing frames — the connection is beyond resynchronization.
TEST(FrameTest, HostileHeadersLatchParserError) {
  struct Case {
    const char* name;
    std::string bytes;
    const char* error_substring;
  };
  const std::string good = encode_frame(FrameOp::kStats, 0, "");

  std::string bad_magic = good;
  bad_magic[0] = 'X';

  std::string bad_version = good;
  bad_version[4] = 2;

  std::string oversized = good;
  const std::uint32_t huge = kMaxPayload + 1;
  std::memcpy(&oversized[8], &huge, sizeof(huge));

  const Case cases[] = {
      {"bad magic", bad_magic, "bad magic"},
      {"unsupported version", bad_version, "unsupported version"},
      {"oversized payload_len", oversized, "exceeds the"},
  };
  for (const Case& c : cases) {
    FrameParser parser;
    parser.feed(c.bytes.data(), c.bytes.size());
    EXPECT_FALSE(parser.next().has_value()) << c.name;
    EXPECT_NE(parser.error().find(c.error_substring), std::string::npos)
        << c.name << ": " << parser.error();
    // Latched: further feeding cannot resurrect the stream.
    parser.feed(good.data(), good.size());
    EXPECT_FALSE(parser.next().has_value()) << c.name;
  }
}

/// Payload-level attacks: well-framed bytes whose contents lie. Every one
/// must surface as a kError reply + connection close from BinarySession —
/// decoded, rejected, never crashing, never allocating ahead of the data.
TEST(FrameTest, HostilePayloadsAnswerErrorFrameAndClose) {
  struct Case {
    const char* name;
    FrameOp op;
    std::string payload;
  };

  // count=100000 with 8 payload bytes: the count guard must fire before
  // any reserve.
  std::string lying_count;
  const std::uint32_t count = 100000;
  lying_count.append(reinterpret_cast<const char*>(&count), 4);
  lying_count.append(4, '\0');

  // One event whose kind byte is not 0/1.
  std::string bad_kind;
  const std::uint32_t one = 1;
  bad_kind.append(reinterpret_cast<const char*>(&one), 4);
  bad_kind.push_back(7);
  bad_kind.append(4, '\0');  // two empty strings

  // A string length that runs past the payload end.
  std::string lying_str;
  lying_str.push_back(static_cast<char>(0xff));
  lying_str.push_back(static_cast<char>(0xff));
  lying_str.append("gz");

  const Case cases[] = {
      {"truncated HELLO", FrameOp::kHello, std::string("\x04\x00gz", 4)},
      {"HELLO string length lies", FrameOp::kHello, lying_str},
      {"HELLO trailing bytes", FrameOp::kHello,
       encode_hello_payload("gzip", "", "") + "junk"},
      {"empty model name", FrameOp::kHello, encode_hello_payload("", "", "")},
      {"event count lies", FrameOp::kEventBatch, lying_count},
      {"unknown event kind", FrameOp::kEventBatch, bad_kind},
      {"truncated event batch", FrameOp::kEventBatch, std::string("\x01", 1)},
      {"truncated TRACE", FrameOp::kTrace, std::string("\x05\x00", 2)},
      {"server-side op from client", FrameOp::kReply, "spoof"},
      {"unknown op", static_cast<FrameOp>(0x42), ""},
  };
  for (const Case& c : cases) {
    auto registry = make_registry();
    SessionManager manager(*registry, pump_config());
    BinarySession session(manager);
    // The lifecycle verbs require a bound session; bind one so the hostile
    // payload is what gets rejected, not the missing HELLO.
    if (c.op != FrameOp::kHello) {
      Frame hello;
      hello.op = FrameOp::kHello;
      hello.payload = encode_hello_payload("gzip", "victim", "");
      const auto bound = session.handle_frame(hello);
      ASSERT_FALSE(bound.close) << c.name;
    }
    Frame frame;
    frame.op = c.op;
    frame.payload = c.payload;
    const BinarySession::Output out = session.handle_frame(frame);
    EXPECT_TRUE(out.close) << c.name;
    FrameParser parser;
    parser.feed(out.bytes.data(), out.bytes.size());
    const auto error_frame = parser.next();
    ASSERT_TRUE(error_frame.has_value()) << c.name;
    EXPECT_EQ(error_frame->op, FrameOp::kError) << c.name;
    EXPECT_FALSE(error_frame->payload.empty()) << c.name;
  }
}

// -- BinarySession conversation --------------------------------------------

std::string reply_text(const BinarySession::Output& out) {
  FrameParser parser;
  parser.feed(out.bytes.data(), out.bytes.size());
  const auto frame = parser.next();
  if (!frame.has_value()) return "<no frame>";
  return frame->payload;
}

Frame make_frame(FrameOp op, std::string payload, std::uint16_t flags = 0) {
  Frame frame;
  frame.op = op;
  frame.flags = flags;
  frame.payload = std::move(payload);
  return frame;
}

TEST(BinarySessionTest, FullConversationMatchesTextProtocolReplies) {
  auto registry = make_registry();
  SessionManager manager(*registry, pump_config());
  BinarySession session(manager);

  // Application errors before HELLO are kReply "ERR ...", not kError.
  const auto early = session.handle_frame(
      make_frame(FrameOp::kEventBatch, encode_event_batch_payload({})));
  EXPECT_FALSE(early.close);
  EXPECT_TRUE(starts_with(reply_text(early), "ERR no session"));

  const auto unknown_model = session.handle_frame(
      make_frame(FrameOp::kHello, encode_hello_payload("nope", "", "")));
  EXPECT_FALSE(unknown_model.close);
  EXPECT_TRUE(starts_with(reply_text(unknown_model), "ERR"));

  const auto hello = session.handle_frame(
      make_frame(FrameOp::kHello, encode_hello_payload("gzip", "bin-1", "")));
  EXPECT_FALSE(hello.close);
  EXPECT_EQ(reply_text(hello), "OK session=bin-1 model=gzip");
  EXPECT_EQ(session.session_id(), "bin-1");

  const std::vector<trace::CallEvent> events = fixture().events_for(5, 1);
  const auto batch = session.handle_frame(
      make_frame(FrameOp::kEventBatch, encode_event_batch_payload(events)));
  EXPECT_FALSE(batch.close);
  EXPECT_EQ(reply_text(batch), "OK n=" + std::to_string(events.size()) +
                                   " dropped=0 rejected=0");

  // kFlagNoReply suppresses the ack entirely.
  const auto silent = session.handle_frame(make_frame(
      FrameOp::kEventBatch, encode_event_batch_payload(events), kFlagNoReply));
  EXPECT_FALSE(silent.close);
  EXPECT_TRUE(silent.bytes.empty());

  const auto stats = session.handle_frame(make_frame(FrameOp::kStats, ""));
  manager.drain();
  const std::string expected_stats =
      format_session_stats(manager.session_stats("bin-1"));
  EXPECT_EQ(reply_text(stats), expected_stats);
  EXPECT_NE(expected_stats.find("evicted_dropped=0"), std::string::npos);

  const auto bye = session.handle_frame(make_frame(FrameOp::kBye, ""));
  EXPECT_TRUE(bye.close);
  EXPECT_TRUE(starts_with(reply_text(bye), "OK session=bin-1"));
  EXPECT_TRUE(session.closed());
  EXPECT_FALSE(manager.has_session("bin-1"));
}

TEST(BinarySessionTest, DestructorClosesUnfinishedSession) {
  auto registry = make_registry();
  SessionManager manager(*registry, pump_config());
  {
    BinarySession session(manager);
    session.handle_frame(
        make_frame(FrameOp::kHello, encode_hello_payload("gzip", "gone", "")));
    EXPECT_TRUE(manager.has_session("gone"));
  }
  EXPECT_FALSE(manager.has_session("gone"));
}

TEST(BinarySessionTest, EvictVerbReportsLifecycleDrops) {
  auto registry = make_registry();
  SessionManager manager(*registry, pump_config());
  BinarySession session(manager);
  session.handle_frame(
      make_frame(FrameOp::kHello, encode_hello_payload("gzip", "ev-1", "")));
  // Queue three events and evict before pumping: the purge is lifecycle
  // loss and must be reported on the eviction counter.
  std::vector<trace::CallEvent> events(3);
  for (auto& event : events) {
    event.caller = "main";
    event.name = "read";
  }
  session.handle_frame(
      make_frame(FrameOp::kEventBatch, encode_event_batch_payload(events)));
  const auto evicted = session.handle_frame(make_frame(FrameOp::kEvict, ""));
  EXPECT_FALSE(evicted.close);
  EXPECT_EQ(reply_text(evicted), "OK session=ev-1 evicted_dropped=3");
}

// -- Session lifecycle: snapshot / evict / restore -------------------------

void feed(SessionManager& manager, const std::string& id,
          const std::vector<trace::CallEvent>& events, std::size_t begin,
          std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    ASSERT_EQ(manager.submit(id, events[i]), SubmitResult::kAccepted) << i;
  }
  manager.drain();
}

void expect_same_frozen_state(const SessionSnapshot& a,
                              const SessionSnapshot& b) {
  EXPECT_EQ(a.monitor.window, b.monitor.window);
  EXPECT_EQ(a.monitor.consecutive_flagged, b.monitor.consecutive_flagged);
  EXPECT_EQ(a.monitor.cooldown_remaining, b.monitor.cooldown_remaining);
  EXPECT_EQ(a.monitor.stats.events_seen, b.monitor.stats.events_seen);
  EXPECT_EQ(a.monitor.stats.events_observed, b.monitor.stats.events_observed);
  EXPECT_EQ(a.monitor.stats.windows_scored, b.monitor.stats.windows_scored);
  EXPECT_EQ(a.monitor.stats.windows_flagged, b.monitor.stats.windows_flagged);
  EXPECT_EQ(a.monitor.stats.alarms, b.monitor.stats.alarms);
  EXPECT_EQ(a.windows_to_alarm, b.windows_to_alarm);
  EXPECT_EQ(a.cooldown_events, b.cooldown_events);
}

TEST(SessionLifecycleTest, EvictRestoreIsBitIdentical) {
  auto registry = make_registry();
  ServiceConfig config = pump_config();
  config.monitor.windows_to_alarm = 2;
  config.monitor.cooldown_events = 7;
  SessionManager manager(*registry, config);

  const std::vector<trace::CallEvent> events = fixture().events_for(23);
  ASSERT_GT(events.size(), 20u);
  // An odd cut point well inside the stream, deliberately mid-window.
  const std::size_t cut = events.size() / 2 + 1;

  manager.open_session("interrupted", "gzip");
  manager.open_session("straight", "gzip");
  feed(manager, "interrupted", events, 0, cut);
  feed(manager, "straight", events, 0, events.size());

  ASSERT_TRUE(manager.evict_session("interrupted"));
  EXPECT_FALSE(manager.evict_session("interrupted"));  // already evicted
  EXPECT_TRUE(manager.snapshot_store().contains("interrupted"));
  EXPECT_TRUE(manager.has_session("interrupted"));  // still addressable
  EXPECT_EQ(manager.resident_sessions(), 1u);

  // Stats of the evicted session remain queryable from its snapshot.
  const SessionStats frozen = manager.session_stats("interrupted");
  EXPECT_EQ(frozen.processed, cut);
  EXPECT_EQ(frozen.monitor.events_seen, cut);

  // Submitting to the evicted id transparently restores it.
  feed(manager, "interrupted", events, cut, events.size());
  EXPECT_FALSE(manager.snapshot_store().contains("interrupted"));
  EXPECT_EQ(manager.resident_sessions(), 2u);

  // Freeze both and compare the complete scoring state: the interrupted
  // session must be bit-identical to the one that never stopped.
  ASSERT_TRUE(manager.evict_session("interrupted"));
  ASSERT_TRUE(manager.evict_session("straight"));
  const auto a = manager.snapshot_store().peek("interrupted");
  const auto b = manager.snapshot_store().peek("straight");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  expect_same_frozen_state(*a, *b);
  EXPECT_EQ(a->processed, events.size());
  EXPECT_EQ(a->enqueued, events.size());
  EXPECT_EQ(a->dropped, 0u);
  EXPECT_EQ(a->evicted_dropped, 0u);

  // The text round trip itself is exact.
  const SessionSnapshot reparsed =
      decode_session_snapshot(encode_session_snapshot(*a));
  expect_same_frozen_state(reparsed, *a);
  EXPECT_EQ(reparsed.id, a->id);
  EXPECT_EQ(reparsed.model_fingerprint, a->model_fingerprint);
}

/// The CMKB HELLO admits arbitrary bytes in session and model names; the
/// snapshot text format length-prefixes those fields so whitespace (which
/// would derail a tokenizing reader) survives the round trip.
TEST(SessionSnapshotTest, WhitespaceIdAndModelSurviveTheRoundTrip) {
  SessionSnapshot snap;
  snap.id = "a b\nc\td ";
  snap.model = " gzip v2\n";
  snap.model_version = 3;
  snap.model_fingerprint = 0x1234;
  snap.enqueued = 17;
  snap.processed = 16;
  snap.windows_to_alarm = 2;
  snap.cooldown_events = 5;
  snap.monitor.window = {4, 7, 0};
  snap.monitor.consecutive_flagged = 1;
  snap.monitor.stats.events_seen = 16;

  const SessionSnapshot reparsed =
      decode_session_snapshot(encode_session_snapshot(snap));
  EXPECT_EQ(reparsed.id, snap.id);
  EXPECT_EQ(reparsed.model, snap.model);
  EXPECT_EQ(reparsed.model_version, snap.model_version);
  EXPECT_EQ(reparsed.enqueued, snap.enqueued);
  EXPECT_EQ(reparsed.processed, snap.processed);
  expect_same_frozen_state(reparsed, snap);

  // An empty id is legal too (the daemon names such sessions itself, but
  // the codec must not choke on the zero-length prefix).
  SessionSnapshot empty;
  empty.model = "m";
  const SessionSnapshot empty_back =
      decode_session_snapshot(encode_session_snapshot(empty));
  EXPECT_EQ(empty_back.id, "");
  EXPECT_EQ(empty_back.model, "m");
}

/// One corrupt .session file must not abort daemon startup: load moves it
/// into <dir>/quarantine/ (visible for forensics, never silently skipped)
/// and every healthy snapshot — including one whose id carries whitespace
/// straight off the wire — still comes back.
TEST(SessionLifecycleTest, BootLoadSkipsMalformedSnapshotFiles) {
  const std::string dir = ::testing::TempDir() + "/cmarkov_net_snap_corrupt";
  std::filesystem::remove_all(dir);
  const std::vector<trace::CallEvent> events = fixture().events_for(53, 1);
  const std::string spaced_id = "fleet host-7 pid 4242";

  auto registry = make_registry();
  ServiceConfig config = pump_config();
  config.snapshot_dir = dir;
  {
    SessionManager first(*registry, config);
    first.open_session(spaced_id, "gzip");
    feed(first, spaced_id, events, 0, 6);
    ASSERT_TRUE(first.evict_session(spaced_id));
  }
  {
    std::ofstream junk(dir + "/junk.session", std::ios::binary);
    junk << "cmarkov-session 1\nid 4 oops\nmodel";  // truncated mid-stream
  }
  {
    std::ofstream noise(dir + "/noise.session", std::ios::binary);
    noise << "not a snapshot at all";
  }

  SessionManager second(*registry, config);
  EXPECT_EQ(second.snapshot_store().load_directory(), 1u);
  EXPECT_TRUE(second.has_session(spaced_id));
  // Both corrupt files were quarantined, not deleted and not left behind.
  EXPECT_EQ(second.snapshot_store().quarantined_count(), 2u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/quarantine/junk.session"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/quarantine/noise.session"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/junk.session"));
  EXPECT_FALSE(std::filesystem::exists(dir + "/noise.session"));
  feed(second, spaced_id, events, 6, events.size());
  const SessionStats stats = second.session_stats(spaced_id);
  EXPECT_EQ(stats.processed, events.size());
  std::filesystem::remove_all(dir);
}

/// A disk-write failure during eviction degrades the snapshot to
/// memory-only instead of throwing into the serving path — but not
/// forever: the id goes on the dirty list and the write is re-attempted
/// once the obstruction clears.
TEST(SessionSnapshotTest, PutDegradesToMemoryOnlyWhenDiskWriteFails) {
  const std::string dir = ::testing::TempDir() + "/cmarkov_net_snap_degrade";
  std::filesystem::remove_all(dir);
  SnapshotStore store(dir);
  store.set_retry_backoff(0, 0);
  // Occupy the target path with a directory so the atomic rename fails
  // (permission tricks don't bite when the tests run as root).
  std::filesystem::create_directories(dir + "/blocked.session");

  SessionSnapshot snap;
  snap.id = "blocked";
  snap.model = "gzip";
  snap.processed = 9;
  EXPECT_NO_THROW(store.put(std::move(snap)));
  EXPECT_TRUE(store.contains("blocked"));
  EXPECT_EQ(store.dirty_count(), 1u);

  // While blocked, retries keep failing (and keep the entry dirty)...
  EXPECT_EQ(store.retry_pending_writes(), 0u);
  EXPECT_EQ(store.dirty_count(), 1u);

  // ...and once the obstruction clears, the pending write lands.
  std::filesystem::remove_all(dir + "/blocked.session");
  EXPECT_EQ(store.retry_pending_writes(), 1u);
  EXPECT_EQ(store.dirty_count(), 0u);
  EXPECT_TRUE(std::filesystem::is_regular_file(dir + "/blocked.session"));

  const auto taken = store.take("blocked");
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(taken->processed, 9u);
  // take() removes the on-disk mirror with the memory entry.
  EXPECT_FALSE(std::filesystem::exists(dir + "/blocked.session"));
  std::filesystem::remove_all(dir);
}

TEST(SessionLifecycleTest, SnapshotsPersistAcrossManagerInstances) {
  const std::string dir = ::testing::TempDir() + "/cmarkov_net_snapshots";
  std::filesystem::remove_all(dir);
  const std::vector<trace::CallEvent> events = fixture().events_for(29);
  const std::size_t cut = events.size() / 2;

  auto registry = make_registry();
  ServiceConfig config = pump_config();
  config.snapshot_dir = dir;
  {
    SessionManager first(*registry, config);
    first.open_session("persist", "gzip");
    feed(first, "persist", events, 0, cut);
    ASSERT_TRUE(first.evict_session("persist"));
    ASSERT_TRUE(std::filesystem::exists(dir + "/persist.session"));
  }  // daemon restart

  SessionManager second(*registry, config);
  EXPECT_FALSE(second.has_session("persist"));
  EXPECT_EQ(second.snapshot_store().load_directory(), 1u);
  EXPECT_TRUE(second.has_session("persist"));
  feed(second, "persist", events, cut, events.size());

  second.open_session("straight", "gzip");
  feed(second, "straight", events, 0, events.size());

  ASSERT_TRUE(second.evict_session("persist"));
  ASSERT_TRUE(second.evict_session("straight"));
  const auto restored = second.snapshot_store().peek("persist");
  const auto straight = second.snapshot_store().peek("straight");
  ASSERT_TRUE(restored.has_value());
  ASSERT_TRUE(straight.has_value());
  expect_same_frozen_state(*restored, *straight);
  std::filesystem::remove_all(dir);
}

TEST(SessionLifecycleTest, ResidencyBudgetEvictsLeastRecentlyActive) {
  auto registry = make_registry();
  ServiceConfig config = pump_config();
  config.max_resident_sessions = 2;
  SessionManager manager(*registry, config);
  const std::vector<trace::CallEvent> events = fixture().events_for(31, 1);

  manager.open_session("lru-a", "gzip");
  manager.open_session("lru-b", "gzip");
  feed(manager, "lru-a", events, 0, 4);
  feed(manager, "lru-b", events, 0, 4);  // a is now the least recent

  manager.open_session("lru-c", "gzip");
  EXPECT_EQ(manager.resident_sessions(), 2u);
  EXPECT_TRUE(manager.snapshot_store().contains("lru-a"));
  EXPECT_FALSE(manager.snapshot_store().contains("lru-b"));
  EXPECT_FALSE(manager.snapshot_store().contains("lru-c"));

  // Touching the evicted session restores it and pushes another one out.
  feed(manager, "lru-a", events, 4, 8);
  EXPECT_EQ(manager.resident_sessions(), 2u);
  EXPECT_FALSE(manager.snapshot_store().contains("lru-a"));
  EXPECT_EQ(manager.snapshot_store().size(), 1u);
  const SessionStats stats = manager.session_stats("lru-a");
  EXPECT_EQ(stats.processed, 8u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.evicted_dropped, 0u);
}

/// Satellite: queued events purged by an eviction are lifecycle loss and
/// must land on evicted_dropped — never on the backpressure drop counter.
TEST(SessionLifecycleTest, EvictionDropsAreNotBackpressureDrops) {
  auto registry = make_registry();
  SessionManager manager(*registry, pump_config());
  manager.open_session("acct", "gzip");

  trace::CallEvent event;
  event.caller = "main";
  event.name = "read";
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(manager.submit("acct", event), SubmitResult::kAccepted);
  }
  // No drain: all five are still queued when the eviction lands.
  ASSERT_TRUE(manager.evict_session("acct"));

  const SessionStats stats = manager.session_stats("acct");
  EXPECT_EQ(stats.enqueued, 5u);
  EXPECT_EQ(stats.processed, 0u);
  EXPECT_EQ(stats.evicted_dropped, 5u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  // The service-wide backpressure counter must not move either.
  EXPECT_EQ(manager.metrics().events_dropped, 0u);

  // The loss is permanent but the accounting survives restore.
  ASSERT_EQ(manager.submit("acct", event), SubmitResult::kAccepted);
  manager.drain();
  const SessionStats after = manager.session_stats("acct");
  EXPECT_EQ(after.evicted_dropped, 5u);
  EXPECT_EQ(after.processed, 1u);
}

TEST(SessionLifecycleTest, HotReloadUnderLiveTrafficLosesNothing) {
  auto registry = make_registry();
  ServiceConfig config;
  config.num_workers = 2;
  config.queue_capacity = 64;  // small: force real backpressure blocking
  config.policy = BackpressurePolicy::kBlock;
  SessionManager manager(*registry, config);

  const std::vector<trace::CallEvent> events = fixture().events_for(37);
  const std::size_t kRounds = 4;
  manager.open_session("live-a", "gzip");
  manager.open_session("live-b", "gzip");

  std::atomic<bool> reloads_done{false};
  std::vector<std::thread> producers;
  for (const std::string id : {"live-a", "live-b"}) {
    producers.emplace_back([&, id] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        for (const auto& event : events) {
          ASSERT_EQ(manager.submit(id, event), SubmitResult::kAccepted);
        }
      }
    });
  }
  std::thread reloader([&] {
    for (int i = 0; i < 3; ++i) {
      const ReloadReport report = manager.reload_model(
          "gzip",
          std::make_shared<const core::Detector>(*fixture().gzip_model));
      EXPECT_EQ(report.sessions_rebound, 2u) << i;
      EXPECT_GT(report.version, 1u) << i;
      EXPECT_GT(report.micros, 0.0) << i;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    reloads_done.store(true);
  });
  for (auto& producer : producers) producer.join();
  reloader.join();
  ASSERT_TRUE(reloads_done.load());
  manager.drain();

  // Zero-loss: every accepted event was scored; nothing dropped, nothing
  // rejected, no lifecycle loss.
  const std::size_t expected = kRounds * events.size();
  for (const std::string id : {"live-a", "live-b"}) {
    const SessionStats stats = manager.session_stats(id);
    EXPECT_EQ(stats.enqueued, expected) << id;
    EXPECT_EQ(stats.processed, expected) << id;
    EXPECT_EQ(stats.dropped, 0u) << id;
    EXPECT_EQ(stats.rejected, 0u) << id;
    EXPECT_EQ(stats.evicted_dropped, 0u) << id;
    EXPECT_EQ(stats.monitor.events_seen, expected) << id;
  }

  // With the system quiescent, one more reload reclaims every retired
  // registry reference (epoch-based reclamation converges).
  manager.reload_model(
      "gzip", std::make_shared<const core::Detector>(*fixture().gzip_model));
  EXPECT_EQ(registry->retired_count(), 0u);
}

// -- End-to-end: EpollServer sockets ---------------------------------------

/// Minimal blocking client for the e2e tests; 5s receive timeout so a
/// server bug fails the test instead of hanging it.
class TcpClient {
 public:
  /// `rcvbuf` > 0 shrinks SO_RCVBUF before connecting (set then so the
  /// advertised TCP window honors it) — the slow-reader test uses it to
  /// fill the server's send path with little data.
  explicit TcpClient(std::uint16_t port, int rcvbuf = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval timeout{};
    timeout.tv_sec = 5;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    if (rcvbuf > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0)
        << std::strerror(errno);
  }
  ~TcpClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_all(std::string_view data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, 0);
      ASSERT_GT(n, 0) << std::strerror(errno);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// One text-protocol response line, '\n' stripped.
  std::string read_line() {
    std::string line;
    while (true) {
      const auto newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      if (!fill()) return line;
    }
  }

  /// One complete CMKB frame (empty optional on EOF/timeout). The parser
  /// persists across calls so pipelined replies — several frames landing
  /// in one recv — are handed out one at a time, none dropped.
  std::optional<Frame> read_frame() {
    while (true) {
      if (auto frame = parser_.next()) return frame;
      if (!parser_.error().empty()) {
        ADD_FAILURE() << "client-side framing error: " << parser_.error();
        return std::nullopt;
      }
      if (!buffer_.empty()) {
        parser_.feed(buffer_.data(), buffer_.size());
        buffer_.clear();
        continue;
      }
      if (!fill()) return std::nullopt;
    }
  }

  /// True when the server has closed the connection (orderly EOF).
  bool at_eof() {
    if (!buffer_.empty()) return false;
    return !fill();
  }

 private:
  bool fill() {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
  FrameParser parser_;
};

struct ServerHarness {
  std::unique_ptr<ModelRegistry> registry = make_registry();
  std::unique_ptr<SessionManager> manager;
  std::unique_ptr<EpollServer> server;

  /// `handshake_timeout_micros` == 0 keeps the NetOptions default (the
  /// tests that want the reaper pass a short explicit window).
  explicit ServerHarness(std::size_t num_loops = 2,
                         std::size_t outbuf_high_water = 4 * 1024 * 1024,
                         std::uint64_t handshake_timeout_micros = 0) {
    ServiceConfig config;
    config.num_workers = 2;
    manager = std::make_unique<SessionManager>(*registry, config);
    NetOptions net;
    net.port = 0;  // ephemeral
    net.num_loops = num_loops;
    net.outbuf_high_water = outbuf_high_water;
    if (handshake_timeout_micros > 0) {
      net.handshake_timeout_micros = handshake_timeout_micros;
    }
    server = std::make_unique<EpollServer>(*manager, net);
    server->start();
  }
  ~ServerHarness() { server->stop(); }
};

std::string event_line(const trace::CallEvent& event) {
  const std::string site = event.caller.empty() ? "?" : event.caller;
  const char* kind = event.kind == ir::CallKind::kLibcall ? "lib" : "sys";
  return "EV " + site + " " + event.name + " " + kind + "\n";
}

TEST(EpollServerTest, TextAndBinaryClientsScoreIdentically) {
  ServerHarness harness;
  const std::vector<trace::CallEvent> events = fixture().events_for(41, 2);

  // Text client: the classic line conversation, one reply per line.
  TcpClient text(harness.server->port());
  text.send_all("HELLO gzip text-1\n");
  EXPECT_EQ(text.read_line(), "OK session=text-1 model=gzip");
  std::string lines;
  for (const auto& event : events) lines += event_line(event);
  text.send_all(lines);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(text.read_line(), "OK") << i;
  }
  text.send_all("STATS\n");
  const std::string text_stats = text.read_line();

  // Binary client: the same events in one batched frame, one ack.
  TcpClient binary(harness.server->port());
  binary.send_all(
      encode_frame(FrameOp::kHello, 0,
                   encode_hello_payload("gzip", "bin-1", "")));
  auto hello = binary.read_frame();
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->op, FrameOp::kReply);
  EXPECT_EQ(hello->payload, "OK session=bin-1 model=gzip");
  binary.send_all(encode_frame(FrameOp::kEventBatch, 0,
                               encode_event_batch_payload(events)));
  auto ack = binary.read_frame();
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->payload, "OK n=" + std::to_string(events.size()) +
                              " dropped=0 rejected=0");
  binary.send_all(encode_frame(FrameOp::kStats, 0, ""));
  auto stats = binary.read_frame();
  ASSERT_TRUE(stats.has_value());

  // Same events, same model: the two transports must report identical
  // scoring state (only the session id differs).
  std::string text_normalized = text_stats;
  std::string binary_normalized = stats->payload;
  auto scrub_id = [](std::string& line, const std::string& id) {
    const auto pos = line.find(id);
    ASSERT_NE(pos, std::string::npos) << line;
    line.replace(pos, id.size(), "X");
  };
  scrub_id(text_normalized, "text-1");
  scrub_id(binary_normalized, "bin-1");
  EXPECT_EQ(text_normalized, binary_normalized);

  text.send_all("BYE\n");
  EXPECT_TRUE(starts_with(text.read_line(), "OK"));
  binary.send_all(encode_frame(FrameOp::kBye, 0, ""));
  auto bye = binary.read_frame();
  ASSERT_TRUE(bye.has_value());
  EXPECT_TRUE(starts_with(bye->payload, "OK session=bin-1"));
  EXPECT_TRUE(binary.at_eof());  // BYE closes the binary connection
}

TEST(EpollServerTest, NoReplyBatchesAreAccountedWithoutAcks) {
  ServerHarness harness;
  const std::vector<trace::CallEvent> events = fixture().events_for(43, 1);
  TcpClient client(harness.server->port());
  client.send_all(encode_frame(
      FrameOp::kHello, 0, encode_hello_payload("gzip", "quiet", "")));
  ASSERT_TRUE(client.read_frame().has_value());
  for (int i = 0; i < 3; ++i) {
    client.send_all(encode_frame(FrameOp::kEventBatch, kFlagNoReply,
                                 encode_event_batch_payload(events)));
  }
  // The only reply in flight is the STATS one: no acks were sent.
  client.send_all(encode_frame(FrameOp::kStats, 0, ""));
  auto stats = client.read_frame();
  ASSERT_TRUE(stats.has_value());
  EXPECT_NE(stats->payload.find(
                "processed=" + std::to_string(3 * events.size())),
            std::string::npos)
      << stats->payload;
}

/// A client that pipelines requests without reading its socket must not
/// grow the server's reply buffer without bound: reads pause at the
/// high-water mark and resume as the backlog drains, and once the client
/// finally reads, every reply arrives intact.
TEST(EpollServerTest, SlowReaderBacklogPausesAndResumesWithoutLoss) {
  ServerHarness harness(/*num_loops=*/1, /*outbuf_high_water=*/8 * 1024);
  TcpClient client(harness.server->port(), /*rcvbuf=*/4096);
  client.send_all(encode_frame(
      FrameOp::kHello, 0, encode_hello_payload("gzip", "slow", "")));
  auto hello = client.read_frame();
  ASSERT_TRUE(hello.has_value());

  // ~2000 STATS replies (~100 bytes each) dwarf the 8 KiB high-water mark
  // many times over while the client refuses to read.
  constexpr int kRequests = 2000;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += encode_frame(FrameOp::kStats, 0, "");
  }
  client.send_all(burst);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Now drain: the pause must lift as the backlog empties, and all
  // replies must come through in order, none lost, none mangled.
  for (int i = 0; i < kRequests; ++i) {
    auto reply = client.read_frame();
    ASSERT_TRUE(reply.has_value()) << "reply " << i;
    EXPECT_EQ(reply->op, FrameOp::kReply) << i;
    EXPECT_TRUE(starts_with(reply->payload, "STATS v=1 session=slow"))
        << reply->payload;
  }
  client.send_all(encode_frame(FrameOp::kBye, 0, ""));
  auto bye = client.read_frame();
  ASSERT_TRUE(bye.has_value());
  EXPECT_TRUE(starts_with(bye->payload, "OK session=slow"));
}

TEST(EpollServerTest, HostileFrameGetsErrorFrameThenClose) {
  ServerHarness harness;
  TcpClient client(harness.server->port());
  // Valid magic+version so the binary mode binds, then a hostile payload.
  client.send_all(encode_frame(FrameOp::kHello, 0, "\x01junk"));
  auto error = client.read_frame();
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->op, FrameOp::kError);
  EXPECT_TRUE(starts_with(error->payload, "frame:")) << error->payload;
  EXPECT_TRUE(client.at_eof());
}

TEST(EpollServerTest, BadMagicOnBinaryLookingStreamStaysText) {
  ServerHarness harness;
  // Garbage that is not CMKB is sniffed as text; an unknown verb answers
  // an ERR line and the connection survives.
  TcpClient client(harness.server->port());
  client.send_all("BOGUS gzip\n");
  EXPECT_TRUE(starts_with(client.read_line(), "ERR"));
  client.send_all("HELLO gzip still-alive\n");
  EXPECT_EQ(client.read_line(), "OK session=still-alive model=gzip");
}

TEST(EpollServerTest, DisconnectWithoutByeClosesTheSession) {
  ServerHarness harness;
  {
    TcpClient client(harness.server->port());
    client.send_all(encode_frame(
        FrameOp::kHello, 0, encode_hello_payload("gzip", "drop-out", "")));
    ASSERT_TRUE(client.read_frame().has_value());
    EXPECT_TRUE(harness.manager->has_session("drop-out"));
  }  // client vanishes
  // The loop reaps the connection asynchronously; poll briefly.
  for (int i = 0; i < 200 && harness.manager->has_session("drop-out"); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(harness.manager->has_session("drop-out"));
}

/// A connection that never completes its first protocol unit is closed
/// once the handshake window elapses — half-open scanners and silent
/// clients cannot pin fds — while a handshaken connection on the same
/// loop is untouched.
TEST(EpollServerTest, SilentConnectionIsReapedAfterHandshakeTimeout) {
  ServerHarness harness(/*num_loops=*/1,
                        /*outbuf_high_water=*/4 * 1024 * 1024,
                        /*handshake_timeout_micros=*/100'000);

  // A healthy client handshakes immediately; the reaper must skip it.
  TcpClient healthy(harness.server->port());
  healthy.send_all("HELLO gzip keeper\n");
  EXPECT_EQ(healthy.read_line(), "OK session=keeper model=gzip");

  // The silent client sends nothing. at_eof() blocks in recv until the
  // server's orderly close arrives (~100-150ms; the client's own 5s
  // receive timeout is the failure backstop).
  TcpClient silent(harness.server->port());
  EXPECT_TRUE(silent.at_eof());
  EXPECT_EQ(harness.manager->instruments()
                .counter("cmarkov_net_handshake_timeouts_total")
                .value(),
            1u);

  // The handshaken connection survived the sweeps and still serves.
  healthy.send_all("STATS\n");
  const std::string stats = healthy.read_line();
  EXPECT_NE(stats.find("session=keeper"), std::string::npos) << stats;
}

TEST(EpollServerTest, ManyConcurrentConnectionsAcrossLoops) {
  ServerHarness harness(3);
  const std::vector<trace::CallEvent> events = fixture().events_for(47, 1);
  constexpr int kClients = 12;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      TcpClient client(harness.server->port());
      const std::string id = "conc-" + std::to_string(c);
      client.send_all(encode_frame(
          FrameOp::kHello, 0, encode_hello_payload("gzip", id, "")));
      auto hello = client.read_frame();
      ASSERT_TRUE(hello.has_value()) << id;
      client.send_all(encode_frame(FrameOp::kEventBatch, 0,
                                   encode_event_batch_payload(events)));
      auto ack = client.read_frame();
      ASSERT_TRUE(ack.has_value()) << id;
      EXPECT_TRUE(starts_with(ack->payload, "OK n=")) << ack->payload;
      client.send_all(encode_frame(FrameOp::kBye, 0, ""));
      auto bye = client.read_frame();
      ASSERT_TRUE(bye.has_value()) << id;
      EXPECT_TRUE(starts_with(bye->payload, "OK session=" + id));
    });
  }
  for (auto& thread : threads) thread.join();
  harness.manager->drain();
  EXPECT_EQ(harness.manager->resident_sessions(), 0u);
}

}  // namespace
}  // namespace cmarkov::serve::net
