// Programmatic AST construction. Tests and examples use this fluent builder
// to assemble small programs without writing MiniC source text.
#pragma once

#include <string>
#include <vector>

#include "src/ir/ast.hpp"
#include "src/ir/module.hpp"

namespace cmarkov::ir {

/// Builds one function body statement-by-statement.
class FunctionBuilder {
 public:
  FunctionBuilder(std::string name, std::vector<std::string> params = {});

  /// var name = init; (init may be null for "var name;")
  FunctionBuilder& declare(std::string name, ExprPtr init = nullptr);
  /// name = value;
  FunctionBuilder& assign(std::string name, ExprPtr value);
  /// sys("name"); as a statement.
  FunctionBuilder& syscall(std::string name);
  /// lib("name"); as a statement.
  FunctionBuilder& libcall(std::string name);
  /// callee(args...); as a statement.
  FunctionBuilder& call(std::string callee, std::vector<ExprPtr> args = {});
  /// if (cond) { then } else { els } — blocks supplied as statement lists.
  FunctionBuilder& if_else(ExprPtr cond, std::vector<StmtPtr> then_stmts,
                           std::vector<StmtPtr> else_stmts = {});
  /// while (cond) { body }
  FunctionBuilder& loop(ExprPtr cond, std::vector<StmtPtr> body);
  /// return value; (null → plain return)
  FunctionBuilder& ret(ExprPtr value = nullptr);
  /// Appends an arbitrary statement.
  FunctionBuilder& append(StmtPtr stmt);

  Function build();

 private:
  Function fn_;
};

/// Accumulates functions into a Program / ProgramModule.
class ProgramBuilder {
 public:
  ProgramBuilder& add(Function fn);
  ProgramBuilder& add(FunctionBuilder& builder);

  Program build();
  /// Builds and validates into a named module.
  ProgramModule build_module(std::string name,
                             const std::string& entry_point = "main");

 private:
  Program program_;
};

// Expression shorthands for test code readability.
namespace dsl {

inline ExprPtr lit(std::int64_t v) { return make_int(v); }
inline ExprPtr var(std::string name) { return make_var(std::move(name)); }
inline ExprPtr in() { return make_input(); }
inline ExprPtr sys(std::string name) {
  return make_external_call(CallKind::kSyscall, std::move(name));
}
inline ExprPtr lib(std::string name) {
  return make_external_call(CallKind::kLibcall, std::move(name));
}
inline ExprPtr call(std::string callee, std::vector<ExprPtr> args = {}) {
  return make_internal_call(std::move(callee), std::move(args));
}
inline ExprPtr lt(ExprPtr a, ExprPtr b) {
  return make_binary(BinaryOp::kLt, std::move(a), std::move(b));
}
inline ExprPtr gt(ExprPtr a, ExprPtr b) {
  return make_binary(BinaryOp::kGt, std::move(a), std::move(b));
}
inline ExprPtr eq(ExprPtr a, ExprPtr b) {
  return make_binary(BinaryOp::kEq, std::move(a), std::move(b));
}
inline ExprPtr add(ExprPtr a, ExprPtr b) {
  return make_binary(BinaryOp::kAdd, std::move(a), std::move(b));
}
inline ExprPtr sub(ExprPtr a, ExprPtr b) {
  return make_binary(BinaryOp::kSub, std::move(a), std::move(b));
}
inline ExprPtr mod(ExprPtr a, ExprPtr b) {
  return make_binary(BinaryOp::kMod, std::move(a), std::move(b));
}

}  // namespace dsl

}  // namespace cmarkov::ir
