// CFG interpreter: executes a lowered MiniC module on a test-case input
// stream, emitting the call-event trace a strace/ltrace monitor would see.
// Data-dependent branching on input() values gives each test case its own
// path through the program — the source of trace diversity the detection
// models train on.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "src/cfg/cfg.hpp"
#include "src/trace/coverage.hpp"
#include "src/trace/event.hpp"
#include "src/util/rng.hpp"

namespace cmarkov::trace {

/// Supplies return values of external (sys/lib) calls — the world the
/// program talks to.
class ExternalEnvironment {
 public:
  virtual ~ExternalEnvironment() = default;
  virtual std::int64_t on_external_call(ir::CallKind kind,
                                        const std::string& name,
                                        std::span<const std::int64_t> args) = 0;
};

/// Deterministic pseudo-random environment (seeded per test case).
class SeededEnvironment final : public ExternalEnvironment {
 public:
  explicit SeededEnvironment(std::uint64_t seed, std::int64_t max_value = 16)
      : rng_(seed), max_value_(max_value) {}

  std::int64_t on_external_call(ir::CallKind, const std::string&,
                                std::span<const std::int64_t>) override {
    return rng_.uniform_int(0, max_value_);
  }

 private:
  Rng rng_;
  std::int64_t max_value_;
};

struct RunResult {
  Trace trace;
  bool completed = false;     ///< reached a normal return from the entry fn
  bool hit_step_limit = false;
  bool hit_depth_limit = false;
  std::int64_t exit_value = 0;
  std::size_t steps = 0;
};

struct InterpreterOptions {
  std::size_t max_steps = 2'000'000;
  std::size_t max_call_depth = 256;
  /// When the input stream is exhausted, input() yields this value.
  std::int64_t exhausted_input_value = 0;
};

/// Executes the module's entry function.
///
/// Semantics: 64-bit signed integers; x/0 == x%0 == 0; comparisons yield
/// 0/1; &&, || are strict ("both operands evaluated", matching lowering).
class Interpreter {
 public:
  explicit Interpreter(const cfg::ModuleCfg& module,
                       InterpreterOptions options = {});

  /// Runs one test case. `coverage` may be null.
  RunResult run(std::span<const std::int64_t> inputs,
                ExternalEnvironment& environment,
                CoverageTracker* coverage = nullptr) const;

 private:
  const cfg::ModuleCfg& module_;
  InterpreterOptions options_;
  std::map<std::string, std::size_t> fn_index_;
};

}  // namespace cmarkov::trace
