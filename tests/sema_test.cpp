// Unit tests for MiniC semantic checking.
#include <gtest/gtest.h>

#include "src/ir/parser.hpp"
#include "src/ir/sema.hpp"

namespace cmarkov::ir {
namespace {

std::vector<std::string> diagnose(const char* source) {
  return check_program(parse_program(source));
}

TEST(SemaTest, ValidProgramHasNoDiagnostics) {
  EXPECT_TRUE(diagnose(R"(
fn helper(a, b) { return a + b; }
fn main() { var x = helper(1, 2); sys("write"); }
)").empty());
}

TEST(SemaTest, MissingMain) {
  const auto diags = diagnose("fn helper() { return; }");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find("no entry function"), std::string::npos);
}

TEST(SemaTest, CustomEntryPoint) {
  const Program program = parse_program("fn start() { return; }");
  EXPECT_TRUE(check_program(program, "start").empty());
  EXPECT_FALSE(check_program(program, "main").empty());
}

TEST(SemaTest, EntryPointMustTakeNoParams) {
  const auto diags = diagnose("fn main(argc) { return; }");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find("must take no parameters"), std::string::npos);
}

TEST(SemaTest, DuplicateFunction) {
  const auto diags = diagnose("fn main() { } fn main() { }");
  ASSERT_GE(diags.size(), 1u);
  EXPECT_NE(diags[0].find("duplicate function"), std::string::npos);
}

TEST(SemaTest, UndefinedCallee) {
  const auto diags = diagnose("fn main() { ghost(); }");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find("undefined function 'ghost'"), std::string::npos);
}

TEST(SemaTest, ArityMismatch) {
  const auto diags =
      diagnose("fn f(a, b) { return a + b; } fn main() { f(1); }");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find("expected 2"), std::string::npos);
}

TEST(SemaTest, UndeclaredVariableUse) {
  const auto diags = diagnose("fn main() { var x = y; }");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find("undeclared variable 'y'"), std::string::npos);
}

TEST(SemaTest, AssignmentToUndeclared) {
  const auto diags = diagnose("fn main() { x = 1; }");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find("undeclared variable 'x'"), std::string::npos);
}

TEST(SemaTest, RedeclarationInFunction) {
  const auto diags = diagnose("fn main() { var x = 1; var x = 2; }");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find("redeclaration of 'x'"), std::string::npos);
}

TEST(SemaTest, VariablesAreFunctionScoped) {
  // Declared inside an if-block, used after: allowed by MiniC scoping.
  EXPECT_TRUE(diagnose(R"(
fn main() {
  if (input()) { var x = 1; } else { }
  x = 2;
}
)").empty());
}

TEST(SemaTest, ParametersActAsDeclarations) {
  EXPECT_TRUE(diagnose("fn f(n) { return n; } fn main() { f(1); }").empty());
}

TEST(SemaTest, DuplicateParameter) {
  const auto diags = diagnose("fn f(a, a) { return a; } fn main() { f(1, 2); }");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find("duplicate parameter"), std::string::npos);
}

TEST(SemaTest, ChecksInsideNestedBlocksAndConditions) {
  const auto diags = diagnose(R"(
fn main() {
  while (missing > 0) {
    if (also_missing) { }
  }
}
)");
  EXPECT_EQ(diags.size(), 2u);
}

TEST(SemaTest, ChecksCallArgumentsRecursively) {
  const auto diags =
      diagnose("fn f(a) { return a; } fn main() { f(nope); }");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find("'nope'"), std::string::npos);
}

TEST(SemaTest, RequireValidThrowsWithAllDiagnostics) {
  const Program program = parse_program("fn main() { x = y; }");
  try {
    require_valid(program);
    FAIL() << "expected SemaError";
  } catch (const SemaError& e) {
    EXPECT_EQ(e.diagnostics().size(), 2u);
    EXPECT_NE(std::string(e.what()).find("semantic errors"),
              std::string::npos);
  }
}

TEST(SemaTest, DiagnosticsCarryLineNumbers) {
  const auto diags = diagnose("fn main() {\n\n  x = 1;\n}");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].find("line 3"), std::string::npos);
}

}  // namespace
}  // namespace cmarkov::ir
