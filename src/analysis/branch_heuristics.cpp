#include "src/analysis/branch_heuristics.hpp"

#include <stdexcept>

namespace cmarkov::analysis {

LoopBiasedBranchHeuristic::LoopBiasedBranchHeuristic(double loop_probability)
    : loop_probability_(loop_probability) {
  if (loop_probability <= 0.0 || loop_probability >= 1.0) {
    throw std::invalid_argument(
        "LoopBiasedBranchHeuristic: probability must be in (0, 1)");
  }
}

double LoopBiasedBranchHeuristic::taken_probability(
    const cfg::FunctionCfg&, const cfg::BasicBlock&,
    bool true_edge_enters_loop) const {
  return true_edge_enters_loop ? loop_probability_ : 0.5;
}

std::unique_ptr<BranchHeuristic> make_uniform_heuristic() {
  return std::make_unique<UniformBranchHeuristic>();
}

std::unique_ptr<BranchHeuristic> make_loop_biased_heuristic(
    double loop_probability) {
  return std::make_unique<LoopBiasedBranchHeuristic>(loop_probability);
}

}  // namespace cmarkov::analysis
