#include "src/util/parallel.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/util/stopwatch.hpp"

namespace cmarkov {

std::size_t resolve_num_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

WorkerPool::WorkerPool(std::size_t num_threads)
    : num_threads_(resolve_num_threads(num_threads)) {
  threads_.reserve(num_threads_ - 1);
  for (std::size_t t = 0; t + 1 < num_threads_; ++t) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void WorkerPool::run(std::size_t num_items,
                     const std::function<void(std::size_t)>& fn) {
  if (num_items == 0) return;
  const Stopwatch wall;
  if (threads_.empty() || num_items == 1) {
    for (std::size_t i = 0; i < num_items; ++i) fn(i);
    std::lock_guard<std::mutex> lock(mu_);
    run_wall_seconds_ = run_busy_seconds_ = wall.seconds();
    run_threads_ = 1;
    return;
  }
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &fn;
    num_items_ = num_items;
    next_index_ = 0;
    completed_ = 0;
    first_error_ = nullptr;
    first_error_index_ = num_items;
    run_busy_seconds_ = 0.0;
    run_threads_ = num_threads_;
    gen = ++generation_;
  }
  start_cv_.notify_all();
  drain(gen);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return completed_ == num_items_; });
    task_ = nullptr;
    error = first_error_;
    run_wall_seconds_ = wall.seconds();
  }
  if (error) std::rethrow_exception(error);
}

PoolRunStats WorkerPool::last_run_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PoolRunStats stats;
  stats.threads = run_threads_;
  stats.wall_seconds = run_wall_seconds_;
  stats.busy_seconds = run_busy_seconds_;
  return stats;
}

void WorkerPool::drain(std::uint64_t gen) {
  // Busy time is accumulated per item under the completion lock (with a
  // generation check), so a worker that finishes its last item after the
  // run's caller has already started the next run cannot credit a whole
  // drain's elapsed time to the wrong run.
  Stopwatch busy;
  while (true) {
    std::size_t item;
    const std::function<void(std::size_t)>* task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // A stale wake-up (generation moved on, or the run already finished
      // and cleared task_) claims nothing.
      if (generation_ != gen || task_ == nullptr ||
          next_index_ >= num_items_) {
        break;
      }
      item = next_index_++;
      task = task_;
    }
    std::exception_ptr error;
    try {
      (*task)(item);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (generation_ == gen) run_busy_seconds_ += busy.seconds();
      busy.reset();
      if (error && (first_error_ == nullptr || item < first_error_index_)) {
        first_error_ = error;
        first_error_index_ = item;
      }
      if (++completed_ == num_items_) done_cv_.notify_all();
    }
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    std::uint64_t gen;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = gen = generation_;
    }
    drain(gen);
  }
}

void parallel_for(std::size_t num_threads, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  const std::size_t threads = resolve_num_threads(num_threads);
  if (threads <= 1 || count < 2) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  WorkerPool pool(std::min(threads, count));
  pool.run(count, fn);
}

std::size_t chunk_count(std::size_t count, std::size_t chunk_size) {
  if (chunk_size == 0) throw std::invalid_argument("chunk_count: size 0");
  return (count + chunk_size - 1) / chunk_size;
}

ChunkRange chunk_range(std::size_t count, std::size_t chunk_size,
                       std::size_t chunk_index) {
  ChunkRange range;
  range.begin = std::min(count, chunk_index * chunk_size);
  range.end = std::min(count, range.begin + chunk_size);
  return range;
}

}  // namespace cmarkov
