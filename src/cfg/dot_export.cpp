#include "src/cfg/dot_export.hpp"

#include <sstream>

namespace cmarkov::cfg {

namespace {

std::string block_label(const FunctionCfg& cfg, const BasicBlock& block) {
  std::ostringstream label;
  label << "B" << block.id;
  if (block.id == cfg.entry) label << " (entry)";
  if (const auto* call = block.external_call()) {
    label << "\\n" << ir::call_kind_name(call->kind) << ":" << call->callee
          << "@" << cfg.name;
  } else if (const auto* call = block.internal_call()) {
    label << "\\ncall " << call->callee;
  }
  if (std::holds_alternative<ReturnTerm>(block.terminator)) {
    label << "\\nreturn";
  }
  return label.str();
}

}  // namespace

std::string to_dot(const FunctionCfg& cfg) {
  std::ostringstream os;
  os << "digraph \"" << cfg.name << "\" {\n";
  os << "  node [shape=box, fontname=\"monospace\"];\n";
  for (const auto& block : cfg.blocks) {
    os << "  b" << block.id << " [label=\"" << block_label(cfg, block)
       << "\"];\n";
  }
  for (const auto& block : cfg.blocks) {
    if (const auto* branch = std::get_if<BranchTerm>(&block.terminator)) {
      os << "  b" << block.id << " -> b" << branch->if_true
         << " [label=\"T\"];\n";
      os << "  b" << block.id << " -> b" << branch->if_false
         << " [label=\"F\"];\n";
    } else if (const auto* jump = std::get_if<JumpTerm>(&block.terminator)) {
      os << "  b" << block.id << " -> b" << jump->target << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const CallGraph& graph) {
  std::ostringstream os;
  os << "digraph callgraph {\n";
  os << "  node [shape=ellipse, fontname=\"monospace\"];\n";
  for (const auto& fn : graph.functions()) {
    os << "  \"" << fn << "\";\n";
  }
  for (const auto& edge : graph.edges()) {
    os << "  \"" << edge.caller << "\" -> \"" << edge.callee
       << "\" [label=\"" << edge.site_count << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace cmarkov::cfg
