// gzip analogue: block-based compress/decompress/list over input files.
// Shapes mirrored from the real tool: per-file open/stat, a deflate loop
// that fills and flushes buffers, CRC updates, and utime/chmod/unlink on
// completion.
#include "src/workload/program_suite.hpp"

namespace cmarkov::workload {

namespace {

const char* const kGzipSource = R"(
fn main() {
  startup();
  var mode = input() % 4;
  var files = input() % 4 + 1;
  while (files > 0) {
    if (mode == 3) {
      test_integrity();
    } else {
      var ok = open_files();
      if (ok > 0) {
        if (mode == 0) {
          compress_file();
        } else {
          if (mode == 1) {
            decompress_file();
          } else {
            list_file();
          }
        }
        finish_file(mode);
      } else {
        report_error();
      }
    }
    files = files - 1;
  }
  cleanup();
  sys("exit_group");
}

fn test_integrity() {
  var fd = sys("open");
  if (fd < 1) {
    report_error();
    return;
  }
  read_header();
  var blocks = input() % 8 + 1;
  while (blocks > 0) {
    var n = sys("read");
    if (n > 0) {
      update_crc(n);
    }
    blocks = blocks - 1;
  }
  check_crc();
  sys("close");
  lib("printf");
}

fn startup() {
  sys("brk");
  sys("brk");
  lib("setlocale");
  lib("getenv");
  lib("textdomain");
  sys("rt_sigaction");
  sys("rt_sigaction");
  sys("rt_sigaction");
  lib("malloc");
}

fn open_files() {
  var fd = sys("open");
  if (fd < 1) {
    return 0;
  }
  sys("fstat");
  lib("malloc");
  var ofd = sys("open");
  if (ofd < 1) {
    sys("close");
    return 0;
  }
  return 1;
}

fn compress_file() {
  write_header();
  var blocks = input() % 12 + 1;
  while (blocks > 0) {
    var got = fill_window();
    if (got > 0) {
      deflate_block(got);
    }
    blocks = blocks - 1;
  }
  flush_outbuf();
  write_trailer();
}

fn write_header() {
  lib("memset");
  sys("write");
}

fn fill_window() {
  lib("memcpy");
  var n = sys("read");
  if (n == 0) {
    return 0;
  }
  update_crc(n);
  return n;
}

fn deflate_block(len) {
  var strategy = len % 3;
  lib("memchr");
  if (strategy == 0) {
    longest_match(len);
  } else {
    lib("memcpy");
  }
  var flush = len % 4;
  if (flush == 0) {
    flush_outbuf();
  }
}

fn longest_match(len) {
  var probes = len % 5 + 1;
  while (probes > 0) {
    lib("memcmp");
    probes = probes - 1;
  }
}

fn update_crc(n) {
  var chunks = n % 3 + 1;
  while (chunks > 0) {
    lib("crc32");
    chunks = chunks - 1;
  }
}

fn flush_outbuf() {
  sys("write");
}

fn write_trailer() {
  lib("memcpy");
  sys("write");
}

fn decompress_file() {
  read_header();
  var blocks = input() % 10 + 1;
  while (blocks > 0) {
    var n = sys("read");
    if (n > 0) {
      inflate_block(n);
      update_crc(n);
    }
    blocks = blocks - 1;
  }
  flush_outbuf();
  check_crc();
}

fn read_header() {
  sys("read");
  lib("memcmp");
}

fn inflate_block(n) {
  var huff = n % 2;
  if (huff == 1) {
    build_huffman_tables();
  }
  lib("memcpy");
  sys("write");
}

fn build_huffman_tables() {
  lib("malloc");
  lib("memset");
  var codes = input() % 4 + 1;
  while (codes > 0) {
    lib("memcpy");
    codes = codes - 1;
  }
  lib("free");
}

fn check_crc() {
  lib("crc32");
  lib("memcmp");
}

fn list_file() {
  read_header();
  sys("lseek");
  sys("read");
  lib("printf");
}

fn finish_file(mode) {
  sys("close");
  sys("close");
  if (mode < 2) {
    copy_attributes();
    sys("unlink");
  }
}

fn copy_attributes() {
  sys("chmod");
  sys("utime");
  sys("chown");
}

fn report_error() {
  lib("fprintf");
  lib("strerror");
}

fn cleanup() {
  lib("free");
  lib("free");
  sys("close");
}
)";

}  // namespace

ProgramSuite make_gzip_suite() {
  SuiteInfo info;
  info.name = "gzip";
  info.description =
      "block compressor: per-file deflate/inflate loops, CRC maintenance, "
      "attribute copying";
  info.paper_test_cases = 214;
  InputSpec spec;
  spec.min_inputs = 8;
  spec.max_inputs = 48;
  spec.max_value = 99;
  return ProgramSuite(info, kGzipSource, spec);
}

}  // namespace cmarkov::workload
