#include "src/hmm/alphabet.hpp"

#include <cstdio>
#include <stdexcept>

namespace cmarkov::hmm {

std::string observation_encoding_name(ObservationEncoding encoding) {
  switch (encoding) {
    case ObservationEncoding::kContextSensitive:
      return "context";
    case ObservationEncoding::kContextFree:
      return "basic";
    case ObservationEncoding::kSiteSensitive:
      return "site";
    case ObservationEncoding::kDeepContext:
      return "deep";
  }
  return "?";
}

std::string encode_observation(const std::string& call_name,
                               const std::string& caller,
                               ObservationEncoding encoding) {
  // Without a site address (static-analysis symbols), site encoding falls
  // back to caller context — the static matrix merges sites by design.
  if (encoding == ObservationEncoding::kContextFree || caller.empty()) {
    return call_name;
  }
  return call_name + "@" + caller;
}

std::string encode_site_observation(const std::string& call_name,
                                    const std::string& caller,
                                    std::uint64_t site_address) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), "+0x%llx",
                static_cast<unsigned long long>(site_address));
  if (caller.empty()) return call_name + suffix;
  return call_name + "@" + caller + suffix;
}

std::string encode_observation(const analysis::CallSymbol& symbol,
                               ObservationEncoding encoding) {
  if (symbol.kind != analysis::CallSymbol::Kind::kExternal) {
    throw std::invalid_argument(
        "encode_observation: not an external call symbol: " +
        symbol.to_string());
  }
  return encode_observation(symbol.name, symbol.context, encoding);
}

std::size_t Alphabet::intern(const std::string& symbol) {
  auto it = index_.find(symbol);
  if (it != index_.end()) return it->second;
  const std::size_t id = symbols_.size();
  symbols_.push_back(symbol);
  index_.emplace(symbol, id);
  return id;
}

std::optional<std::size_t> Alphabet::find(const std::string& symbol) const {
  auto it = index_.find(symbol);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Alphabet::name(std::size_t id) const {
  if (id >= symbols_.size()) throw std::out_of_range("Alphabet::name");
  return symbols_[id];
}

}  // namespace cmarkov::hmm
