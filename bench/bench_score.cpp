// Microbenchmark for the compiled ScoringKernel (ISSUE 7, BENCH_score.json):
// the serve hot path's per-window cost, kernel vs the reference forward
// pass, on a small-alphabet syscall model and a large-alphabet
// context-sensitive libcall model.
//
//   bench_score [--repeat R] [--full]
//
// Three scoring configurations per model:
//   reference — Detector::score_segment (ForwardResult matrix + scales
//               allocation per window, the pre-kernel serve path);
//   kernel    — ScoringKernel::score_window, exact mode (flat two-row
//               scratch, bit-identical doubles);
//   pruned    — opt-in top-K kernel (never enabled implicitly in serving).
//
// The bench also verifies, over every window it times, that the exact
// kernel's log-likelihoods are BIT-IDENTICAL to the reference, and
// characterizes the opt-in pruned kernel empirically: pruning can only
// remove path probability, so LL_pruned <= LL_exact always, but there is
// NO unconditional deficit bound (see ScoringKernel::max_dropped_mass) —
// the numbers that matter are the worst observed deficit and how many
// window verdicts flip on a representative feed. Finally it reports the
// monitor-level event rate (OnlineMonitor::on_event with the kernel, no
// serve layer) — the ceiling a single worker thread can reach before
// queueing costs.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/online_monitor.hpp"
#include "src/core/scoring_kernel.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/strings.hpp"
#include "src/util/table_printer.hpp"
#include "src/workload/testcase_generator.hpp"

using namespace cmarkov;

namespace {

core::Detector train_detector(const workload::ProgramSuite& suite,
                              analysis::CallFilter filter,
                              std::uint64_t seed) {
  core::DetectorConfig config;
  config.pipeline.filter = filter;
  config.training.max_iterations = 6;
  core::Detector detector = core::Detector::build(suite.module(), config);
  detector.train(workload::collect_traces(suite, 30, seed).traces);
  return detector;
}

/// Every complete sliding window of the suite's benign traces, encoded to
/// observation ids exactly as OnlineMonitor would (unknowns included — both
/// paths must agree on them too).
std::vector<hmm::ObservationSeq> build_windows(
    const core::Detector& detector, const workload::ProgramSuite& suite,
    std::uint64_t seed) {
  const auto& config = detector.config();
  const std::size_t length = config.segments.length;
  const auto encoding = config.pipeline.context_sensitive
                            ? hmm::ObservationEncoding::kContextSensitive
                            : hmm::ObservationEncoding::kContextFree;
  std::vector<hmm::ObservationSeq> windows;
  for (const auto& trace : workload::collect_traces(suite, 5, seed).traces) {
    hmm::ObservationSeq ids;
    for (const auto& event : trace.events) {
      if (!analysis::filter_matches(config.pipeline.filter, event.kind)) {
        continue;
      }
      const std::string obs =
          hmm::encode_observation(event.name, event.caller, encoding);
      ids.push_back(
          detector.alphabet().find(obs).value_or(detector.alphabet().size()));
    }
    for (std::size_t start = 0; start + length <= ids.size(); ++start) {
      windows.emplace_back(ids.begin() + start, ids.begin() + start + length);
    }
  }
  return windows;
}

double bits_equal(double a, double b) {
  std::uint64_t ua = 0;
  std::uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(a));
  std::memcpy(&ub, &b, sizeof(b));
  return ua == ub;
}

struct ModelReport {
  std::string name;
  std::size_t states = 0;
  std::size_t symbols = 0;
  std::size_t windows = 0;
  double reference_ns = 0.0;
  double kernel_ns = 0.0;
  double pruned_ns = 0.0;
  bool bit_identical = true;
  std::size_t pruned_entries = 0;
  double pruned_dropped_mass = 0.0;  ///< max dropped incoming mass D
  double pruned_worst = 0.0;         ///< worst observed LL deficit
  std::size_t pruned_flips = 0;      ///< windows whose verdict changed
  bool pruned_monotone = true;       ///< LL_pruned <= LL_exact everywhere
  double monitor_events_per_sec = 0.0;
  std::size_t kernel_image_bytes = 0;
};

ModelReport run_model(const std::string& name, const core::Detector& detector,
                      const workload::ProgramSuite& suite, std::size_t repeat,
                      std::uint64_t seed) {
  ModelReport report;
  report.name = name;
  report.states = detector.model().num_states();
  report.symbols = detector.model().num_symbols();

  const std::vector<hmm::ObservationSeq> windows =
      build_windows(detector, suite, seed);
  report.windows = windows.size();

  const auto kernel = core::ScoringKernel::compile(detector);
  core::KernelOptions prune_options;
  prune_options.prune = true;
  prune_options.prune_epsilon = 1e-4;
  const auto pruned = core::ScoringKernel::compile(detector, prune_options);
  report.kernel_image_bytes = kernel->image_bytes();
  report.pruned_entries = pruned->pruned_entries();
  report.pruned_dropped_mass = pruned->max_dropped_mass();

  // Timed loops accumulate the summed LL so the work cannot be elided; the
  // sums also cross-check that repeats scored identical values.
  double reference_sum = 0.0;
  {
    Stopwatch watch;
    for (std::size_t r = 0; r < repeat; ++r) {
      for (const auto& window : windows) {
        reference_sum += detector.score_segment(window).log_likelihood;
      }
    }
    report.reference_ns =
        watch.micros() * 1e3 / static_cast<double>(repeat * windows.size());
  }
  double kernel_sum = 0.0;
  core::KernelScratch scratch;
  {
    Stopwatch watch;
    for (std::size_t r = 0; r < repeat; ++r) {
      for (const auto& window : windows) {
        kernel_sum += kernel->score_window(window, scratch).log_likelihood;
      }
    }
    report.kernel_ns =
        watch.micros() * 1e3 / static_cast<double>(repeat * windows.size());
  }
  double pruned_sum = 0.0;
  {
    Stopwatch watch;
    for (std::size_t r = 0; r < repeat; ++r) {
      for (const auto& window : windows) {
        pruned_sum += pruned->score_window(window, scratch).log_likelihood;
      }
    }
    report.pruned_ns =
        watch.micros() * 1e3 / static_cast<double>(repeat * windows.size());
  }
  static_cast<void>(reference_sum + kernel_sum + pruned_sum);

  for (const auto& window : windows) {
    const core::SegmentVerdict ref = detector.score_segment(window);
    const core::SegmentVerdict fast = kernel->score_window(window, scratch);
    if (!bits_equal(ref.log_likelihood, fast.log_likelihood) ||
        ref.flagged != fast.flagged ||
        ref.unknown_symbol != fast.unknown_symbol) {
      report.bit_identical = false;
    }
    const core::SegmentVerdict approx = pruned->score_window(window, scratch);
    if (approx.flagged != ref.flagged) ++report.pruned_flips;
    if (std::isfinite(ref.log_likelihood)) {
      const double deficit = ref.log_likelihood - approx.log_likelihood;
      if (deficit > report.pruned_worst) report.pruned_worst = deficit;
      if (deficit < -1e-12) report.pruned_monotone = false;
    }
  }

  // Monitor-level rate: the full per-event hot path (filter, piecewise
  // intern, window slide, kernel score) on one thread.
  {
    std::vector<trace::CallEvent> feed;
    for (const auto& trace :
         workload::collect_traces(suite, 5, seed + 1).traces) {
      feed.insert(feed.end(), trace.events.begin(), trace.events.end());
    }
    core::OnlineMonitor monitor(detector, nullptr, {}, {}, kernel);
    Stopwatch watch;
    std::size_t events = 0;
    for (std::size_t r = 0; r < repeat; ++r) {
      for (const auto& event : feed) {
        monitor.on_event(event);
        ++events;
      }
    }
    report.monitor_events_per_sec =
        static_cast<double>(events) / watch.seconds();
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = [&] {
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--full") return true;
    }
    return std::getenv("CMARKOV_FULL") != nullptr;
  }();
  std::size_t repeat = full ? 40 : 10;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--repeat") repeat = std::stoul(argv[i + 1]);
  }

  const workload::ProgramSuite gzip = workload::make_gzip_suite();
  const workload::ProgramSuite vim = workload::make_vim_suite();
  const core::Detector small =
      train_detector(gzip, analysis::CallFilter::kSyscalls, 91);
  const core::Detector large =
      train_detector(vim, analysis::CallFilter::kLibcalls, 23);

  std::vector<ModelReport> reports;
  reports.push_back(run_model("gzip-syscall", small, gzip, repeat, 7));
  reports.push_back(run_model("vim-libcall", large, vim, repeat, 7));

  TablePrinter table({"Model", "N", "M", "Windows", "Ref ns/win",
                      "Kernel ns/win", "Speedup", "Pruned ns/win",
                      "Bit-identical", "Monitor ev/s"});
  for (const auto& r : reports) {
    table.add_row({r.name, std::to_string(r.states), std::to_string(r.symbols),
                   std::to_string(r.windows), format_double(r.reference_ns, 0),
                   format_double(r.kernel_ns, 0),
                   format_double(r.reference_ns / r.kernel_ns, 2) + "x",
                   format_double(r.pruned_ns, 0),
                   r.bit_identical ? "yes" : "NO",
                   format_double(r.monitor_events_per_sec, 0)});
  }
  table.print();

  bool pass = true;
  for (const auto& r : reports) {
    std::cout << r.name << ": image=" << r.kernel_image_bytes
              << "B pruned_entries=" << r.pruned_entries
              << " dropped_mass=" << format_double(r.pruned_dropped_mass, 6)
              << " worst_deficit=" << format_double(r.pruned_worst, 4)
              << " verdict_flips=" << r.pruned_flips << "/" << r.windows
              << (r.pruned_monotone ? "" : " (MONOTONICITY VIOLATED)") << "\n";
    pass = pass && r.bit_identical && r.pruned_monotone;
  }
  std::cout << "exact kernel bit-compatibility + pruned monotonicity: "
            << (pass ? "PASS" : "FAIL") << "\n";
  return pass ? 0 : 1;
}
