// cmarkovd's TCP front-end: a non-blocking, edge-triggered epoll server.
//
// Thread layout:
//   - one acceptor thread owns the listening socket and hands accepted
//     connections to the event loops round-robin (eventfd wakeup);
//   - N event-loop threads (NetOptions::num_loops) each run their own
//     epoll instance over their own connections — no connection is ever
//     touched by two loop threads, so per-connection state needs no locks;
//   - scoring stays where it was: loops only parse and enqueue into the
//     SessionManager's sharded worker queues, replies are written back
//     from the loop thread.
//
// Each connection speaks either the CMKB binary frame protocol or the text
// line protocol; the server sniffs the first bytes (frames start with
// "CMKB", no text verb does) and binds the matching conversation object.
// Writes that would block park the residue in a per-connection buffer and
// arm EPOLLOUT; once that backlog exceeds NetOptions::outbuf_high_water
// the connection's reads are paused until it drains (slow-reader
// protection — TCP flow control pushes back on the client). A connection
// whose parser reports a framing violation gets one kError frame and is
// closed.
//
// Backpressure: the block submit policy intentionally blocks the loop
// thread (and thus every connection on that loop) when a worker queue is
// full — the same producer-slowdown semantics the stdio transport has.
// Deployments that prefer isolation run drop-oldest/reject policies.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/net/admin.hpp"
#include "src/serve/session_manager.hpp"

namespace cmarkov::serve::net {

struct NetOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral (the bound port is available via port() after start).
  std::uint16_t port = 0;
  /// Event-loop threads. One loop handles thousands of idle connections;
  /// add loops when parse/enqueue work saturates a core.
  std::size_t num_loops = 1;
  /// Per-connection write-backlog cap: once the unflushed reply bytes
  /// exceed this, the connection's reads are paused (its kernel receive
  /// buffer fills and TCP flow control pushes back on the client) until
  /// the backlog drains below a quarter of the cap. Bounds the memory a
  /// pipelining client that never reads its socket can pin. Must be > 0.
  std::size_t outbuf_high_water = 4 * 1024 * 1024;
  /// Handshake idle timeout: a connection that has not completed its first
  /// protocol unit (text line or binary frame) within this window is
  /// closed and counted on cmarkov_net_handshake_timeouts_total — half-open
  /// scanners and silent clients cannot pin fds forever. 0 disables the
  /// reaper (event loops then block indefinitely in epoll_wait, exactly
  /// the pre-timeout behavior).
  std::uint64_t handshake_timeout_micros = 30'000'000;
  /// Admin-plane handler. Non-null enables a second listening socket on
  /// `admin_port` whose connections speak HTTP/1.1 to this handler instead
  /// of being protocol-sniffed; they share the event loops with traffic.
  /// Non-owning; must outlive the server.
  AdminHandler* admin = nullptr;
  /// Admin listener port (0 = ephemeral, resolved via admin_port() after
  /// start). Ignored unless `admin` is set.
  std::uint16_t admin_port = 0;
};

class EpollServer {
 public:
  /// Transports register their cmarkov_net_* instruments on
  /// manager.instruments(), so METRICS exposes one combined surface.
  EpollServer(SessionManager& manager, NetOptions options);
  ~EpollServer();
  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  /// Binds, listens, and spawns the acceptor + loop threads. Throws
  /// std::runtime_error on socket/bind/listen failure.
  void start();

  /// The bound TCP port (after start); resolves ephemeral binds.
  std::uint16_t port() const { return port_; }

  /// The bound admin port (after start, with NetOptions::admin set).
  std::uint16_t admin_port() const { return admin_port_; }

  /// Per-event-loop counters for /statusz (wired into the AdminHandler via
  /// set_loop_status_fn). Backed by registry instruments, so it is safe
  /// from any thread and keeps its final values after stop().
  std::vector<LoopStatus> loop_status() const;

  /// Stops accepting, closes every connection (open sessions are closed
  /// through their conversation objects), joins all threads. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  struct Conn;
  struct Loop;

  /// Binds + listens one nonblocking socket on options_.bind_address;
  /// returns the fd and stores the resolved port into `bound_port`.
  int open_listener(std::uint16_t port, std::uint16_t& bound_port);
  void acceptor_main();
  void loop_main(Loop& loop);
  void adopt_pending(Loop& loop);
  void handle_readable(Loop& loop, Conn& conn);
  /// Re-enters the read path of a connection whose reads were paused by
  /// the write-backlog cap, once the backlog has drained far enough.
  void resume_reads(Loop& loop, Conn& conn);
  void flush_writes(Loop& loop, Conn& conn);
  void update_interest(Loop& loop, Conn& conn);
  void close_conn(Loop& loop, Conn& conn);
  /// Closes connections whose handshake deadline passed (rate-limited
  /// per-loop sweep off the periodic epoll_wait timeout).
  void reap_stalled_handshakes(Loop& loop);
  void process_input(Loop& loop, Conn& conn, const char* data,
                     std::size_t size);
  void process_text(Loop& loop, Conn& conn);
  void process_frames(Loop& loop, Conn& conn);

  SessionManager& manager_;
  NetOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  int admin_listen_fd_ = -1;
  std::uint16_t admin_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int acceptor_wake_fd_ = -1;
  std::thread acceptor_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::size_t next_loop_ = 0;

  obs::Counter* connections_total_;
  obs::Counter* frames_total_;
  obs::Counter* frame_errors_total_;
  obs::Counter* text_lines_total_;
  obs::Counter* bytes_read_total_;
  obs::Counter* bytes_written_total_;
  obs::Counter* handshake_timeouts_total_;
  obs::Gauge* connections_open_;
  /// Per-event-loop instruments behind loop_status() (indexed by loop).
  /// Registered at construction, so the values survive stop().
  struct LoopInstruments {
    obs::Counter* bytes_read;
    obs::Counter* bytes_written;
    obs::Counter* units;
    obs::Gauge* connections_open;
  };
  std::vector<LoopInstruments> loop_instruments_;
};

}  // namespace cmarkov::serve::net
