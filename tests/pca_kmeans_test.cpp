// Unit and property tests for PCA and K-means — the model-reduction math of
// Section III-C.
#include <gtest/gtest.h>

#include <cmath>

#include "src/linalg/kmeans.hpp"
#include "src/linalg/pca.hpp"
#include "src/util/rng.hpp"

namespace cmarkov {
namespace {

Matrix two_blob_samples(Rng& rng, std::size_t per_blob, std::size_t dims,
                        double separation) {
  Matrix samples(2 * per_blob, dims);
  for (std::size_t i = 0; i < 2 * per_blob; ++i) {
    const double center = i < per_blob ? 0.0 : separation;
    for (std::size_t d = 0; d < dims; ++d) {
      samples(i, d) = center + rng.gaussian(0.0, 0.3);
    }
  }
  return samples;
}

TEST(PcaTest, RecoversDominantAxis) {
  // Points along y = 2x with small noise: first component should capture
  // nearly all variance.
  Rng rng(1);
  Matrix samples(200, 2);
  for (std::size_t i = 0; i < 200; ++i) {
    const double t = rng.gaussian(0.0, 2.0);
    samples(i, 0) = t + rng.gaussian(0.0, 0.01);
    samples(i, 1) = 2.0 * t + rng.gaussian(0.0, 0.01);
  }
  PcaOptions options;
  options.max_components = 1;
  options.variance_to_explain = 1.0;
  const Pca pca = Pca::fit(samples, options);
  EXPECT_EQ(pca.output_dimension(), 1u);
  EXPECT_GT(pca.explained_variance_ratio(), 0.99);
  // Axis direction ~ (1, 2)/sqrt(5).
  const double ratio =
      std::abs(pca.basis()(0, 1)) / std::abs(pca.basis()(0, 0));
  EXPECT_NEAR(ratio, 2.0, 0.05);
}

TEST(PcaTest, VarianceTargetSelectsComponentCount) {
  Rng rng(2);
  // 3 independent dimensions with very different variances.
  Matrix samples(300, 3);
  for (std::size_t i = 0; i < 300; ++i) {
    samples(i, 0) = rng.gaussian(0.0, 10.0);
    samples(i, 1) = rng.gaussian(0.0, 1.0);
    samples(i, 2) = rng.gaussian(0.0, 0.01);
  }
  PcaOptions options;
  options.variance_to_explain = 0.95;
  const Pca pca = Pca::fit(samples, options);
  EXPECT_LE(pca.output_dimension(), 2u);
  EXPECT_GE(pca.explained_variance_ratio(), 0.95);
}

TEST(PcaTest, TransformPreservesPairwiseDistancesWhenFullRank) {
  Rng rng(3);
  Matrix samples(50, 4);
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t d = 0; d < 4; ++d) samples(i, d) = rng.gaussian();
  }
  PcaOptions options;
  options.variance_to_explain = 1.0;
  const Pca pca = Pca::fit(samples, options);
  ASSERT_EQ(pca.output_dimension(), 4u);
  const Matrix projected = pca.transform(samples);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i + 1; j < 10; ++j) {
      const double before =
          euclidean_distance(samples.row(i), samples.row(j));
      const double after =
          euclidean_distance(projected.row(i), projected.row(j));
      EXPECT_NEAR(before, after, 1e-8);
    }
  }
}

TEST(PcaTest, DegenerateIdenticalSamples) {
  Matrix samples(5, 3, 1.0);
  const Pca pca = Pca::fit(samples);
  EXPECT_GE(pca.output_dimension(), 1u);
  const Matrix projected = pca.transform(samples);
  for (std::size_t i = 0; i < projected.rows(); ++i) {
    EXPECT_NEAR(projected(i, 0), 0.0, 1e-12);
  }
}

TEST(PcaTest, RejectsTooFewSamplesAndWrongDims) {
  EXPECT_THROW(Pca::fit(Matrix(1, 3)), std::invalid_argument);
  Rng rng(4);
  Matrix samples(10, 3);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t d = 0; d < 3; ++d) samples(i, d) = rng.gaussian();
  }
  const Pca pca = Pca::fit(samples);
  EXPECT_THROW(pca.transform(Matrix(2, 2)), std::invalid_argument);
}

TEST(PcaTest, TruncatedPathRecoversDominantAxis) {
  // Input dimensionality above exact_dimension_limit forces the
  // orthogonal-iteration solver; the dominant axis must still come out.
  Rng rng(21);
  const std::size_t dims = 220;
  Matrix samples(120, dims);
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    const double t = rng.gaussian(0.0, 5.0);
    for (std::size_t d = 0; d < dims; ++d) {
      // Signal lives along a fixed direction (alternating signs); small
      // isotropic noise on top.
      const double axis = (d % 2 == 0 ? 1.0 : -1.0);
      samples(i, d) = t * axis + rng.gaussian(0.0, 0.1);
    }
  }
  PcaOptions options;
  options.exact_dimension_limit = 160;  // force truncated path
  options.truncated_components = 8;
  options.max_components = 1;
  options.variance_to_explain = 1.0;
  const Pca pca = Pca::fit(samples, options);
  EXPECT_EQ(pca.output_dimension(), 1u);
  EXPECT_GT(pca.explained_variance_ratio(), 0.95);
  // First axis aligns with the alternating-sign direction.
  double aligned = 0.0;
  for (std::size_t d = 0; d < dims; ++d) {
    aligned += pca.basis()(0, d) * (d % 2 == 0 ? 1.0 : -1.0);
  }
  EXPECT_GT(std::abs(aligned) / std::sqrt(static_cast<double>(dims)), 0.95);
}

TEST(PcaTest, TruncatedAndExactPathsAgreeOnSpectrum) {
  // Same data fit with both solvers: leading eigenvalues should agree.
  Rng rng(22);
  Matrix samples(150, 40);
  for (std::size_t i = 0; i < samples.rows(); ++i) {
    const double a = rng.gaussian(0.0, 4.0);
    const double b = rng.gaussian(0.0, 1.5);
    for (std::size_t d = 0; d < samples.cols(); ++d) {
      samples(i, d) = a * std::sin(static_cast<double>(d)) +
                      b * std::cos(static_cast<double>(2 * d)) +
                      rng.gaussian(0.0, 0.05);
    }
  }
  PcaOptions exact;
  exact.exact_dimension_limit = 100;  // exact path
  exact.max_components = 2;
  exact.variance_to_explain = 1.0;
  PcaOptions truncated = exact;
  truncated.exact_dimension_limit = 10;  // truncated path
  truncated.truncated_components = 6;

  const Pca pe = Pca::fit(samples, exact);
  const Pca pt = Pca::fit(samples, truncated);
  EXPECT_NEAR(pe.explained_variance_ratio(), pt.explained_variance_ratio(),
              0.02);
  // Projections agree up to sign per component.
  const Matrix te = pe.transform(samples);
  const Matrix tt = pt.transform(samples);
  for (std::size_t k = 0; k < 2; ++k) {
    double dot = 0.0;
    double ne = 0.0;
    double nt = 0.0;
    for (std::size_t i = 0; i < samples.rows(); ++i) {
      dot += te(i, k) * tt(i, k);
      ne += te(i, k) * te(i, k);
      nt += tt(i, k) * tt(i, k);
    }
    EXPECT_GT(std::abs(dot) / std::sqrt(ne * nt), 0.99) << "component " << k;
  }
}

TEST(KMeansTest, SeparatesTwoBlobs) {
  Rng rng(5);
  const Matrix samples = two_blob_samples(rng, 30, 3, 10.0);
  const KMeansResult result = kmeans(samples, 2, rng);
  // All members of a blob share a cluster.
  for (std::size_t i = 1; i < 30; ++i) {
    EXPECT_EQ(result.assignment[i], result.assignment[0]);
    EXPECT_EQ(result.assignment[30 + i], result.assignment[30]);
  }
  EXPECT_NE(result.assignment[0], result.assignment[30]);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Rng rng(6);
  const Matrix samples = two_blob_samples(rng, 40, 4, 5.0);
  const double inertia1 = kmeans(samples, 1, rng).inertia;
  const double inertia2 = kmeans(samples, 2, rng).inertia;
  const double inertia8 = kmeans(samples, 8, rng).inertia;
  EXPECT_GT(inertia1, inertia2);
  EXPECT_GE(inertia2, inertia8);
}

TEST(KMeansTest, KEqualsNGivesSingletons) {
  Rng rng(7);
  Matrix samples(6, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    samples(i, 0) = static_cast<double>(i) * 10.0;
    samples(i, 1) = 0.0;
  }
  const KMeansResult result = kmeans(samples, 6, rng);
  std::set<std::size_t> distinct(result.assignment.begin(),
                                 result.assignment.end());
  EXPECT_EQ(distinct.size(), 6u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, EveryClusterNonEmpty) {
  Rng rng(8);
  const Matrix samples = two_blob_samples(rng, 25, 2, 3.0);
  for (std::size_t k : {2u, 3u, 5u, 10u}) {
    const KMeansResult result = kmeans(samples, k, rng);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t a : result.assignment) counts[a] += 1;
    for (std::size_t c = 0; c < k; ++c) {
      EXPECT_GT(counts[c], 0u) << "k=" << k << " cluster " << c;
    }
  }
}

TEST(KMeansTest, HandlesDuplicatePoints) {
  Matrix samples(8, 2, 1.0);  // all identical
  Rng rng(9);
  const KMeansResult result = kmeans(samples, 3, rng);
  EXPECT_EQ(result.assignment.size(), 8u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, RejectsBadK) {
  Matrix samples(4, 2, 0.0);
  Rng rng(10);
  EXPECT_THROW(kmeans(samples, 0, rng), std::invalid_argument);
  EXPECT_THROW(kmeans(samples, 5, rng), std::invalid_argument);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  Rng rng_a(11);
  Rng rng_b(11);
  const Matrix samples = two_blob_samples(rng_a, 20, 3, 4.0);
  Rng rng_c(11);
  const Matrix samples_b = two_blob_samples(rng_c, 20, 3, 4.0);
  Rng ka(99);
  Rng kb(99);
  const auto ra = kmeans(samples, 4, ka);
  const auto rb = kmeans(samples_b, 4, kb);
  EXPECT_EQ(ra.assignment, rb.assignment);
  EXPECT_DOUBLE_EQ(ra.inertia, rb.inertia);
}

}  // namespace
}  // namespace cmarkov
